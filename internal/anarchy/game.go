// Package anarchy implements the bottleneck routing game of §6.1 (Banner &
// Orda's model specialized to 2-tier Leaf-Spine fabrics): selfish users
// split their leaf-to-leaf demands across spines to minimize their own
// bottleneck (the utilization of the most congested link they use). CONGA
// converges to Nash flows of this game, and Theorem 1 bounds the Price of
// Anarchy — the worst-case ratio of a Nash flow's network bottleneck to
// the coordinated optimum — at 2.
//
// The package computes:
//   - the optimal (coordinated) bottleneck via an LP (internal/lp), and
//   - Nash flows via best-response dynamics, which mirrors how CONGA's
//     leaves independently rebalance toward less-congested paths.
package anarchy

import (
	"fmt"
	"math"

	"conga/internal/lp"
	"conga/internal/sim"
)

// User is one leaf-to-leaf traffic demand.
type User struct {
	Src, Dst int
	Demand   float64
}

// Instance is a bottleneck routing game on a complete bipartite Leaf-Spine
// network with arbitrary link capacities.
type Instance struct {
	Leaves, Spines int
	// CapUp[l][s] is the capacity of the leaf-l → spine-s link; CapDown
	// [s][l] of spine-s → leaf-l. A zero capacity removes the link.
	CapUp   [][]float64
	CapDown [][]float64
	Users   []User
}

// Uniform returns an instance with all links at capacity c.
func Uniform(leaves, spines int, c float64, users []User) *Instance {
	in := &Instance{Leaves: leaves, Spines: spines, Users: users}
	in.CapUp = make([][]float64, leaves)
	for l := range in.CapUp {
		in.CapUp[l] = make([]float64, spines)
		for s := range in.CapUp[l] {
			in.CapUp[l][s] = c
		}
	}
	in.CapDown = make([][]float64, spines)
	for s := range in.CapDown {
		in.CapDown[s] = make([]float64, leaves)
		for l := range in.CapDown[s] {
			in.CapDown[s][l] = c
		}
	}
	return in
}

// Validate reports the first structural error.
func (in *Instance) Validate() error {
	if in.Leaves < 2 || in.Spines < 1 {
		return fmt.Errorf("anarchy: need ≥2 leaves and ≥1 spine")
	}
	if len(in.CapUp) != in.Leaves || len(in.CapDown) != in.Spines {
		return fmt.Errorf("anarchy: capacity matrix shape mismatch")
	}
	for _, row := range in.CapUp {
		if len(row) != in.Spines {
			return fmt.Errorf("anarchy: CapUp row length mismatch")
		}
	}
	for _, row := range in.CapDown {
		if len(row) != in.Leaves {
			return fmt.Errorf("anarchy: CapDown row length mismatch")
		}
	}
	for i, u := range in.Users {
		if u.Src < 0 || u.Src >= in.Leaves || u.Dst < 0 || u.Dst >= in.Leaves || u.Src == u.Dst {
			return fmt.Errorf("anarchy: user %d has invalid endpoints", i)
		}
		if u.Demand <= 0 {
			return fmt.Errorf("anarchy: user %d has non-positive demand", i)
		}
	}
	return nil
}

// Flow is a routing: Flow[u][s] is user u's traffic through spine s.
type Flow [][]float64

// linkLoads accumulates per-link flow.
func (in *Instance) linkLoads(f Flow) (up [][]float64, down [][]float64) {
	up = make([][]float64, in.Leaves)
	for l := range up {
		up[l] = make([]float64, in.Spines)
	}
	down = make([][]float64, in.Spines)
	for s := range down {
		down[s] = make([]float64, in.Leaves)
	}
	for u, user := range in.Users {
		for s, v := range f[u] {
			up[user.Src][s] += v
			down[s][user.Dst] += v
		}
	}
	return up, down
}

func util(load, cap float64) float64 {
	if cap <= 0 {
		if load > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return load / cap
}

// Bottleneck returns the network bottleneck B(f): the maximum link
// utilization.
func (in *Instance) Bottleneck(f Flow) float64 {
	up, down := in.linkLoads(f)
	b := 0.0
	for l := range up {
		for s, v := range up[l] {
			if u := util(v, in.CapUp[l][s]); u > b {
				b = u
			}
		}
	}
	for s := range down {
		for l, v := range down[s] {
			if u := util(v, in.CapDown[s][l]); u > b {
				b = u
			}
		}
	}
	return b
}

// UserBottleneck returns b_u(f): the max utilization among links user u
// actually uses.
func (in *Instance) UserBottleneck(f Flow, u int) float64 {
	up, down := in.linkLoads(f)
	user := in.Users[u]
	b := 0.0
	for s, v := range f[u] {
		if v <= 1e-12 {
			continue
		}
		if x := util(up[user.Src][s], in.CapUp[user.Src][s]); x > b {
			b = x
		}
		if x := util(down[s][user.Dst], in.CapDown[s][user.Dst]); x > b {
			b = x
		}
	}
	return b
}

// OptimalBottleneck computes min over feasible flows of the network
// bottleneck via LP, returning the optimum flow as well.
func (in *Instance) OptimalBottleneck() (Flow, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	nU := len(in.Users)
	nS := in.Spines
	// Variables: f[u][s] (u·nS of them), then B.
	nVar := nU*nS + 1
	idx := func(u, s int) int { return u*nS + s }
	bIdx := nVar - 1

	p := &lp.Problem{C: make([]float64, nVar)}
	p.C[bIdx] = -1 // maximize −B ⇔ minimize B

	// Demand satisfaction: Σ_s f[u][s] = γ_u.
	for u, user := range in.Users {
		row := make([]float64, nVar)
		for s := 0; s < nS; s++ {
			row[idx(u, s)] = 1
		}
		p.A = append(p.A, row)
		p.B = append(p.B, user.Demand)
		p.Eq = append(p.Eq, true)
	}
	// Uplink capacities: Σ_{u: src=l} f[u][s] − B·c ≤ 0; zero-capacity
	// links force f = 0.
	addCap := func(users []int, cap float64) {
		row := make([]float64, nVar)
		any := false
		for _, v := range users {
			row[v] = 1
			any = true
		}
		if !any {
			return
		}
		if cap > 0 {
			row[bIdx] = -cap
		}
		p.A = append(p.A, row)
		p.B = append(p.B, 0)
		p.Eq = append(p.Eq, false)
	}
	for l := 0; l < in.Leaves; l++ {
		for s := 0; s < nS; s++ {
			var vars []int
			for u, user := range in.Users {
				if user.Src == l {
					vars = append(vars, idx(u, s))
				}
			}
			addCap(vars, in.CapUp[l][s])
		}
	}
	for s := 0; s < nS; s++ {
		for l := 0; l < in.Leaves; l++ {
			var vars []int
			for u, user := range in.Users {
				if user.Dst == l {
					vars = append(vars, idx(u, s))
				}
			}
			addCap(vars, in.CapDown[s][l])
		}
	}

	x, _, err := lp.Solve(p)
	if err != nil {
		return nil, 0, err
	}
	f := make(Flow, nU)
	for u := range f {
		f[u] = make([]float64, nS)
		for s := 0; s < nS; s++ {
			f[u][s] = x[idx(u, s)]
		}
	}
	return f, in.Bottleneck(f), nil
}

// NashOptions tunes best-response dynamics.
type NashOptions struct {
	// MaxRounds bounds best-response sweeps (default 500).
	MaxRounds int
	// Tol is the improvement threshold for convergence (default 1e-6).
	Tol float64
	// Seed randomizes the initial flow; 0 starts from single-path
	// assignments (each user entirely on its first usable spine), which
	// tends to find worse equilibria — useful for stressing the PoA.
	Seed uint64
}

// Nash runs best-response dynamics to (approximate) Nash equilibrium and
// returns the flow and its network bottleneck.
func (in *Instance) Nash(opt NashOptions) (Flow, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 500
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	nU := len(in.Users)
	f := make(Flow, nU)
	var rng *sim.Rand
	if opt.Seed != 0 {
		rng = sim.NewRand(opt.Seed)
	}
	for u, user := range in.Users {
		f[u] = make([]float64, in.Spines)
		usable := in.usableSpines(user)
		if len(usable) == 0 {
			return nil, 0, fmt.Errorf("anarchy: user %d has no usable path", u)
		}
		if rng == nil {
			f[u][usable[0]] = user.Demand
		} else {
			// Random split over usable spines.
			weights := make([]float64, len(usable))
			total := 0.0
			for i := range weights {
				weights[i] = rng.Float64()
				total += weights[i]
			}
			for i, s := range usable {
				f[u][s] = user.Demand * weights[i] / total
			}
		}
	}

	for round := 0; round < opt.MaxRounds; round++ {
		improved := false
		for u := range in.Users {
			before := in.UserBottleneck(f, u)
			newSplit, after := in.bestResponse(f, u)
			if after < before-opt.Tol {
				f[u] = newSplit
				improved = true
			}
		}
		if !improved {
			return f, in.Bottleneck(f), nil
		}
	}
	return f, in.Bottleneck(f), nil
}

func (in *Instance) usableSpines(u User) []int {
	var out []int
	for s := 0; s < in.Spines; s++ {
		if in.CapUp[u.Src][s] > 0 && in.CapDown[s][u.Dst] > 0 {
			out = append(out, s)
		}
	}
	return out
}

// bestResponse computes user u's bottleneck-minimizing split against the
// other users' fixed flows, by bisection on the achievable bottleneck.
func (in *Instance) bestResponse(f Flow, u int) ([]float64, float64) {
	user := in.Users[u]
	up, down := in.linkLoads(f)
	// Remove u's own contribution.
	otherUp := make([]float64, in.Spines)
	otherDown := make([]float64, in.Spines)
	for s := 0; s < in.Spines; s++ {
		otherUp[s] = up[user.Src][s] - f[u][s]
		otherDown[s] = down[s][user.Dst] - f[u][s]
	}
	usable := in.usableSpines(user)

	// capacityAt(B) = how much u can route while keeping each of its
	// links at utilization ≤ B.
	room := func(s int, b float64) float64 {
		r := math.Min(
			b*in.CapUp[user.Src][s]-otherUp[s],
			b*in.CapDown[s][user.Dst]-otherDown[s])
		if r < 0 {
			return 0
		}
		return r
	}
	capacityAt := func(b float64) float64 {
		total := 0.0
		for _, s := range usable {
			total += room(s, b)
		}
		return total
	}

	lo, hi := 0.0, 1.0
	for capacityAt(hi) < user.Demand {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if capacityAt(mid) >= user.Demand {
			hi = mid
		} else {
			lo = mid
		}
	}
	b := hi
	// Assign demand proportionally to room at the achieved bottleneck, so
	// every used link sits at utilization ≤ b.
	split := make([]float64, in.Spines)
	total := capacityAt(b)
	if total <= 0 {
		return f[u], in.UserBottleneck(f, u)
	}
	remaining := user.Demand
	for _, s := range usable {
		v := room(s, b) / total * user.Demand
		if v > remaining {
			v = remaining
		}
		split[s] = v
		remaining -= v
	}
	// Numerical slack: dump any residue on the roomiest spine.
	if remaining > 1e-12 {
		best, bestRoom := usable[0], -1.0
		for _, s := range usable {
			if r := room(s, b); r > bestRoom {
				bestRoom, best = r, s
			}
		}
		split[best] += remaining
	}
	// Evaluate the achieved bottleneck for the candidate split.
	g := make(Flow, len(f))
	copy(g, f)
	g[u] = split
	return split, in.UserBottleneck(g, u)
}

// PoA computes the Price of Anarchy for the instance: the worst Nash
// bottleneck found over the provided seeds divided by the optimal
// bottleneck.
func (in *Instance) PoA(seeds []uint64) (float64, error) {
	_, opt, err := in.OptimalBottleneck()
	if err != nil {
		return 0, err
	}
	if opt <= 0 {
		return 1, nil
	}
	worst := 0.0
	for _, seed := range seeds {
		_, b, err := in.Nash(NashOptions{Seed: seed})
		if err != nil {
			return 0, err
		}
		if b > worst {
			worst = b
		}
	}
	return worst / opt, nil
}
