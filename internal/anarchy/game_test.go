package anarchy

import (
	"math"
	"testing"

	"conga/internal/sim"
)

func TestValidate(t *testing.T) {
	good := Uniform(2, 2, 1, []User{{Src: 0, Dst: 1, Demand: 1}})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Uniform(2, 2, 1, []User{{Src: 0, Dst: 0, Demand: 1}})
	if err := bad.Validate(); err == nil {
		t.Fatal("self-loop user accepted")
	}
	bad2 := Uniform(2, 2, 1, []User{{Src: 0, Dst: 1, Demand: 0}})
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero demand accepted")
	}
}

func TestOptimalSymmetricSplitsEvenly(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 10}})
	f, b, err := in.OptimalBottleneck()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-6 {
		t.Fatalf("optimal bottleneck %v, want 0.5", b)
	}
	if math.Abs(f[0][0]-5) > 1e-6 || math.Abs(f[0][1]-5) > 1e-6 {
		t.Fatalf("optimal split %v, want (5,5)", f[0])
	}
}

// TestOptimalAsymmetric mirrors Figure 2: paths of capacity 10 and 5
// sharing 15 units of demand must split 2:1 with bottleneck 1.
func TestOptimalAsymmetric(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 15}})
	in.CapDown[1][1] = 5 // spine1 → leaf1 is the thin link
	f, b, err := in.OptimalBottleneck()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-1) > 1e-6 {
		t.Fatalf("bottleneck %v, want 1", b)
	}
	if math.Abs(f[0][0]-10) > 1e-6 || math.Abs(f[0][1]-5) > 1e-6 {
		t.Fatalf("split %v, want (10, 5)", f[0])
	}
}

func TestNashConvergesSymmetric(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 10}})
	f, b, err := in.Nash(NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-3 {
		t.Fatalf("Nash bottleneck %v, want 0.5 (split %v)", b, f[0])
	}
}

// TestNashMatchesOptimalOnFig2 verifies the paper's claim that CONGA-style
// selfish splitting is optimal in simple asymmetric cases: the Figure 2
// scenario has PoA 1.
func TestNashMatchesOptimalOnFig2(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 15}})
	in.CapDown[1][1] = 5
	_, nash, err := in.Nash(NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nash-1) > 1e-3 {
		t.Fatalf("Nash bottleneck %v, want 1 (optimal)", nash)
	}
}

// TestNashIsEquilibrium checks the defining property: at the returned
// flow, no user's best response improves its bottleneck.
func TestNashIsEquilibrium(t *testing.T) {
	rng := sim.NewRand(5)
	for trial := 0; trial < 20; trial++ {
		leaves, spines := 2+rng.Intn(3), 1+rng.Intn(3)
		var users []User
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			src := rng.Intn(leaves)
			dst := rng.Intn(leaves)
			for dst == src {
				dst = rng.Intn(leaves)
			}
			users = append(users, User{Src: src, Dst: dst, Demand: 1 + rng.Float64()*9})
		}
		in := Uniform(leaves, spines, 5+rng.Float64()*10, users)
		f, _, err := in.Nash(NashOptions{Seed: uint64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for u := range users {
			before := in.UserBottleneck(f, u)
			_, after := in.bestResponse(f, u)
			if after < before-1e-4 {
				t.Fatalf("trial %d: user %d can still improve %v → %v", trial, u, before, after)
			}
		}
	}
}

// TestPoABoundedByTwo is Theorem 1, empirically: across random Leaf-Spine
// instances with capacity asymmetry, the worst Nash bottleneck stays
// within 2× the coordinated optimum.
func TestPoABoundedByTwo(t *testing.T) {
	rng := sim.NewRand(77)
	worst := 1.0
	for trial := 0; trial < 60; trial++ {
		leaves, spines := 2+rng.Intn(3), 2+rng.Intn(3)
		var users []User
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			src := rng.Intn(leaves)
			dst := rng.Intn(leaves)
			for dst == src {
				dst = rng.Intn(leaves)
			}
			users = append(users, User{Src: src, Dst: dst, Demand: 0.5 + rng.Float64()*9})
		}
		in := Uniform(leaves, spines, 0, users)
		for l := 0; l < leaves; l++ {
			for s := 0; s < spines; s++ {
				in.CapUp[l][s] = 1 + rng.Float64()*9
			}
		}
		for s := 0; s < spines; s++ {
			for l := 0; l < leaves; l++ {
				in.CapDown[s][l] = 1 + rng.Float64()*9
			}
		}
		poa, err := in.PoA([]uint64{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if poa > 2.01 {
			t.Fatalf("trial %d: PoA %v exceeds Theorem 1's bound of 2", trial, poa)
		}
		if poa > worst {
			worst = poa
		}
	}
	if worst < 1.0 {
		t.Fatalf("worst PoA %v below 1; solver inconsistency", worst)
	}
	t.Logf("worst PoA over random instances: %.3f", worst)
}

// TestPoAStrictlyAboveOneExists exhibits inefficiency: an instance where a
// bad-initialization Nash is strictly worse than optimal. Two users with
// crossing demands can lock each other into a 2× worse bottleneck.
func TestPoAStrictlyAboveOneExists(t *testing.T) {
	// u0: L0→L1, u1: L1→L0 on a 2-spine fabric where each user has one
	// wide and one narrow private-ish path... search a few random heavy
	// instances for any PoA > 1.05.
	rng := sim.NewRand(31)
	for trial := 0; trial < 300; trial++ {
		in := Uniform(3, 2, 0, []User{
			{Src: 0, Dst: 2, Demand: 1 + rng.Float64()*5},
			{Src: 1, Dst: 2, Demand: 1 + rng.Float64()*5},
			{Src: 2, Dst: 0, Demand: 1 + rng.Float64()*5},
		})
		for l := 0; l < 3; l++ {
			for s := 0; s < 2; s++ {
				in.CapUp[l][s] = 0.5 + rng.Float64()*6
				in.CapDown[s][l] = 0.5 + rng.Float64()*6
			}
		}
		poa, err := in.PoA([]uint64{0, 5, 9})
		if err != nil {
			t.Fatal(err)
		}
		if poa > 1.05 {
			t.Logf("found inefficient equilibrium: PoA %.3f at trial %d", poa, trial)
			return
		}
	}
	t.Skip("no inefficient equilibrium found in this search budget (bound still holds)")
}

func TestUserBottleneckIgnoresUnusedLinks(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 5}})
	f := Flow{{5, 0}} // everything on spine 0
	// Saturate spine 1's links via a phantom user? Instead: user only
	// uses spine 0, so its bottleneck must equal spine-0 utilization.
	if got := in.UserBottleneck(f, 0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("user bottleneck %v, want 0.5", got)
	}
}

func TestBottleneckInfiniteOnZeroCapacityUse(t *testing.T) {
	in := Uniform(2, 2, 1, []User{{Src: 0, Dst: 1, Demand: 1}})
	in.CapUp[0][0] = 0
	f := Flow{{1, 0}} // routes over a dead link
	if !math.IsInf(in.Bottleneck(f), 1) {
		t.Fatal("flow over zero-capacity link not flagged")
	}
}

func TestNashRespectsDeadLinks(t *testing.T) {
	in := Uniform(2, 2, 10, []User{{Src: 0, Dst: 1, Demand: 5}})
	in.CapUp[0][0] = 0 // spine 0 unusable for this user
	f, b, err := in.Nash(NashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f[0][0] != 0 {
		t.Fatalf("Nash routed %v over a dead link", f[0][0])
	}
	if math.Abs(b-0.5) > 1e-6 {
		t.Fatalf("bottleneck %v, want 0.5 (all on spine 1)", b)
	}
}
