package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
)

func TestSampleEmptyIsSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample returned non-zero statistics")
	}
	if s.CDF() != nil {
		t.Fatal("empty sample produced a CDF")
	}
}

func TestSampleMeanQuantile(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median %v, want 3", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("q1.0 %v, want 5", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 %v, want 1", q)
	}
}

func TestSampleQuantileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev %v, want 2", s.StdDev())
	}
}

func TestSampleCDF(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 2, 3} {
		s.Add(v)
	}
	cdf := s.CDF()
	want := [][2]float64{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF %v, want %v", cdf, want)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("CDF %v, want %v", cdf, want)
		}
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("Add after Quantile lost sortedness invalidation")
	}
}

func TestFCTRecorderBuckets(t *testing.T) {
	var r FCTRecorder
	r.Record(50<<10, 2*sim.Millisecond, sim.Millisecond)      // small
	r.Record(20<<20, 100*sim.Millisecond, 25*sim.Millisecond) // large
	r.Record(1<<20, 10*sim.Millisecond, 5*sim.Millisecond)    // mid: neither bucket
	if r.Flows != 3 || r.Overall.N() != 3 {
		t.Fatalf("flows %d / overall %d", r.Flows, r.Overall.N())
	}
	if r.Small.N() != 1 || r.Large.N() != 1 {
		t.Fatalf("bucket counts small=%d large=%d", r.Small.N(), r.Large.N())
	}
	if got := r.SmallNorm.Mean(); got != 2 {
		t.Fatalf("small norm %v, want 2", got)
	}
	if got := r.LargeNorm.Mean(); got != 4 {
		t.Fatalf("large norm %v, want 4", got)
	}
}

func TestFCTRecorderZeroOptimalSkipsNorm(t *testing.T) {
	var r FCTRecorder
	r.Record(1000, sim.Millisecond, 0)
	if r.OverallNorm.N() != 0 {
		t.Fatal("normalized series recorded without an optimal FCT")
	}
	if r.Overall.N() != 1 {
		t.Fatal("raw series missing")
	}
}

func buildNet(t testing.TB) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.New()
	p := core.DefaultParams()
	p.FlowletTableSize = 1024
	return eng, fabric.MustNetwork(eng, fabric.Config{
		NumLeaves: 2, NumSpines: 2, HostsPerLeaf: 2, LinksPerSpine: 1,
		AccessRateBps: 1e9, FabricRateBps: 1e9,
		Scheme: fabric.SchemeSpray, Params: p, Seed: 1,
	})
}

func TestImbalanceSamplerBalancedTraffic(t *testing.T) {
	eng, n := buildNet(t)
	up := n.Leaves[0].Uplinks()
	s := NewImbalanceSampler(up, sim.Millisecond)
	s.Start(eng)
	// Spray scheme: packets alternate uplinks → near-zero imbalance.
	sink := nullSink{}
	n.Host(2).Bind(700, sink)
	var seq int64
	sim.NewTicker(eng, 10*sim.Microsecond, func(now sim.Time) {
		p := &fabric.Packet{FlowID: 1, DstHost: 2, DstPort: 700, Seq: seq, Payload: 1000}
		seq += 1000
		n.Host(0).Send(p, now)
	})
	eng.Run(20 * sim.Millisecond)
	if s.Values.N() < 10 {
		t.Fatalf("only %d imbalance samples", s.Values.N())
	}
	if m := s.Values.Mean(); m > 0.1 {
		t.Fatalf("sprayed traffic imbalance %v, want ≈ 0", m)
	}
}

func TestImbalanceSamplerSkewedTraffic(t *testing.T) {
	eng, n := buildNet(t)
	up := n.Leaves[0].Uplinks()
	// Force all traffic on one uplink by failing the other.
	n.FailLink(0, 1, 0)
	s := NewImbalanceSampler(up, sim.Millisecond)
	s.Start(eng)
	sink := nullSink{}
	n.Host(2).Bind(700, sink)
	var seq int64
	sim.NewTicker(eng, 10*sim.Microsecond, func(now sim.Time) {
		p := &fabric.Packet{FlowID: 1, DstHost: 2, DstPort: 700, Seq: seq, Payload: 1000}
		seq += 1000
		n.Host(0).Send(p, now)
	})
	eng.Run(20 * sim.Millisecond)
	// One link carries everything: imbalance = (max−0)/avg = 2.
	if m := s.Values.Mean(); math.Abs(m-2) > 0.05 {
		t.Fatalf("fully skewed imbalance %v, want 2", m)
	}
}

func TestImbalanceSamplerSkipsIdleWindows(t *testing.T) {
	eng, n := buildNet(t)
	s := NewImbalanceSampler(n.Leaves[0].Uplinks(), sim.Millisecond)
	s.Start(eng)
	eng.Run(10 * sim.Millisecond)
	if s.Values.N() != 0 {
		t.Fatalf("%d samples from an idle fabric", s.Values.N())
	}
}

type nullSink struct{}

func (nullSink) Receive(*fabric.Packet, sim.Time) {}

func TestQueueSamplerSeesBacklog(t *testing.T) {
	eng, n := buildNet(t)
	// Two hosts flood one destination: its downlink queue fills.
	down := n.Leaves[1].Downlink(2)
	qs := NewQueueSampler([]*fabric.Link{down}, 100*sim.Microsecond)
	qs.Start(eng)
	n.Host(2).Bind(700, nullSink{})
	var seq int64
	for h := 0; h < 2; h++ {
		host := n.Host(h)
		sim.NewTicker(eng, 9*sim.Microsecond, func(now sim.Time) {
			p := &fabric.Packet{FlowID: uint64(h), DstHost: 2, DstPort: 700, Seq: seq, Payload: 1000}
			seq += 1000
			host.Send(p, now)
		})
	}
	eng.Run(20 * sim.Millisecond)
	if qs.All.N() == 0 {
		t.Fatal("no queue samples")
	}
	if qs.All.Max() == 0 {
		t.Fatal("oversubscribed port never showed a queue")
	}
	if qs.PerLink[0].Max() != qs.All.Max() {
		t.Fatal("per-link and aggregate series disagree")
	}
}

// Pin nearest-rank semantics: Quantile(q) is the value at rank ceil(q*n).
// The old int(q*n) indexing was off by one rank whenever q*n was integral
// (the median of {1,2,3,4} returned 3, and the median of two samples
// returned the maximum), which this table would have caught.
func TestSampleQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		q      float64
		want   float64
	}{
		{"median-of-2", []float64{1, 2}, 0.5, 1},
		{"median-of-4", []float64{1, 2, 3, 4}, 0.5, 2},
		{"median-of-5", []float64{1, 2, 3, 4, 5}, 0.5, 3},
		{"p25-of-4", []float64{1, 2, 3, 4}, 0.25, 1},
		{"p75-of-4", []float64{1, 2, 3, 4}, 0.75, 3},
		{"p99-of-100", seq100(), 0.99, 99},
		{"p999-of-100", seq100(), 0.999, 100},
		{"p95-of-20", seq(20), 0.95, 19},
		{"zero-is-min", []float64{3, 1, 2}, 0, 1},
		{"one-is-max", []float64{3, 1, 2}, 1, 3},
		{"negative-clamps", []float64{3, 1, 2}, -0.5, 1},
		{"above-one-clamps", []float64{3, 1, 2}, 1.5, 3},
		{"single", []float64{7}, 0.5, 7},
		{"tiny-q", seq100(), 0.001, 1},
	}
	for _, c := range cases {
		var s Sample
		for _, v := range c.values {
			s.Add(v)
		}
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
}

func seq(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i + 1)
	}
	return v
}

func seq100() []float64 { return seq(100) }

func TestSampleReservePreservesValues(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(1)
	s.Reserve(1000)
	s.Add(3)
	if s.N() != 3 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("after Reserve: N=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
}

// TestReservoirQuantileAccuracy feeds the same deterministic stream to an
// exact Sample and a bounded Reservoir one and checks the reservoir's
// quantile estimates against the exact quantiles in rank space: the true
// CDF position of the estimate must sit within a few standard errors
// (sqrt(q(1-q)/limit)) of q. Rank-space comparison keeps the tolerance
// distribution-free, so one table covers uniform, heavy-tailed, and
// discrete inputs alike.
func TestReservoirQuantileAccuracy(t *testing.T) {
	const n = 100000
	dists := []struct {
		name string
		gen  func(r *sim.Rand) float64
	}{
		{"uniform", func(r *sim.Rand) float64 { return r.Float64() }},
		{"exponential", func(r *sim.Rand) float64 { return r.ExpFloat64() }},
		{"pareto-ish", func(r *sim.Rand) float64 { return math.Pow(1-r.Float64(), -2) }},
		{"discrete", func(r *sim.Rand) float64 { return float64(r.Intn(10)) }},
	}
	limits := []int{512, 4096}
	quantiles := []float64{0.1, 0.5, 0.9, 0.99}

	for _, d := range dists {
		for _, limit := range limits {
			t.Run(fmt.Sprintf("%s/limit%d", d.name, limit), func(t *testing.T) {
				r := sim.NewRand(7)
				var exact, res Sample
				res.Reservoir(limit, 11)
				for i := 0; i < n; i++ {
					v := d.gen(r)
					exact.Add(v)
					res.Add(v)
				}
				if res.N() != n {
					t.Fatalf("N=%d, want %d", res.N(), n)
				}
				if res.Retained() != limit {
					t.Fatalf("Retained=%d, want %d", res.Retained(), limit)
				}
				if res.Mean() != exact.Mean() || res.Min() != exact.Min() || res.Max() != exact.Max() {
					t.Fatalf("scalar stats diverged: mean %v/%v min %v/%v max %v/%v",
						res.Mean(), exact.Mean(), res.Min(), exact.Min(), res.Max(), exact.Max())
				}
				for _, q := range quantiles {
					est := res.Quantile(q)
					// Rank of the estimate in the exact sample.
					rank := 0
					for _, p := range exact.CDF() {
						if p[0] <= est {
							rank = int(p[1] * float64(n))
						}
					}
					gotQ := float64(rank) / float64(n)
					tol := 6*math.Sqrt(q*(1-q)/float64(limit)) + 1e-9
					// Discrete inputs quantize the CDF: an estimate can
					// only land on one of the ten step positions, so allow
					// one full step of slack on top.
					if d.name == "discrete" {
						tol += 0.1
					}
					if math.Abs(gotQ-q) > tol {
						t.Errorf("q=%.2f: estimate %v sits at rank %.4f (tolerance %.4f)",
							q, est, gotQ, tol)
					}
				}
			})
		}
	}
}

// TestReservoirExtremesSurviveEviction checks that Min/Max/Mean stay exact
// after the reservoir has evicted most observations, including the extremes.
func TestReservoirExtremesSurviveEviction(t *testing.T) {
	var s Sample
	s.Reservoir(8, 3)
	s.Add(-1e9) // first in, almost surely evicted from an 8-slot reservoir
	sum := -1e9
	for i := 0; i < 10000; i++ {
		v := float64(i)
		s.Add(v)
		sum += v
	}
	s.Add(1e9)
	sum += 1e9
	if s.Min() != -1e9 || s.Max() != 1e9 {
		t.Fatalf("min/max %v/%v, want -1e9/1e9", s.Min(), s.Max())
	}
	if want := sum / float64(s.N()); s.Mean() != want {
		t.Fatalf("mean %v, want %v", s.Mean(), want)
	}
	if s.Quantile(0) != -1e9 || s.Quantile(1) != 1e9 {
		t.Fatalf("q0/q1 %v/%v", s.Quantile(0), s.Quantile(1))
	}
	if s.Retained() != 8 {
		t.Fatalf("retained %d, want 8", s.Retained())
	}
}

// TestReservoirMisuse locks the precondition panics in.
func TestReservoirMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("non-positive limit", func() { var s Sample; s.Reservoir(0, 1) })
	mustPanic("after Add", func() { var s Sample; s.Add(1); s.Reservoir(8, 1) })
}
