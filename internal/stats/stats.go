// Package stats collects and summarizes the measurements the paper
// reports: flow completion times by size bucket (Figures 9–11),
// throughput-imbalance CDFs over 10 ms windows (Figure 12), and queue
// occupancy CDFs (Figures 11c and 16).
package stats

import (
	"fmt"
	"math"
	"sort"

	"conga/internal/fabric"
	"conga/internal/sim"
)

// Sample is an online collection of float64 observations with quantile
// support. The zero value is ready to use and retains every observation;
// Reservoir switches it to bounded memory.
type Sample struct {
	values []float64
	sorted bool
	sum    float64

	// Reservoir state. limit == 0 means unbounded (retain everything);
	// otherwise at most limit observations are kept via Algorithm R. The
	// scalar statistics are tracked online over all seen observations so
	// they stay exact either way.
	limit    int
	rng      *sim.Rand
	seen     int
	min, max float64
}

// Reservoir switches the sample into bounded-memory mode: at most limit
// observations are retained, each of the n seen so far kept with equal
// probability limit/n (Vitter's Algorithm R, seeded deterministically).
// Mean, Min, Max and N remain exact — they are tracked online over every
// observation — while Quantile, StdDev and CDF become estimates computed
// over the retained subset. It must be called before the first Add.
func (s *Sample) Reservoir(limit int, seed uint64) {
	if limit <= 0 {
		panic("stats: Reservoir with non-positive limit")
	}
	if s.seen > 0 {
		panic("stats: Reservoir after observations were added")
	}
	s.limit = limit
	s.rng = sim.NewRand(seed)
	s.Reserve(limit)
}

// Retained returns how many observations are held in memory. It equals N()
// unless a Reservoir limit has evicted some.
func (s *Sample) Retained() int { return len(s.values) }

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.seen == 0 || v < s.min {
		s.min = v
	}
	if s.seen == 0 || v > s.max {
		s.max = v
	}
	s.seen++
	s.sum += v
	if s.limit > 0 && len(s.values) >= s.limit {
		// Replace a uniformly random slot with probability limit/seen.
		// Sorting between adds is harmless: Algorithm R only needs the
		// victim to be a uniform member of the retained multiset.
		if j := s.rng.Intn(s.seen); j < s.limit {
			s.values[j] = v
			s.sorted = false
		}
		return
	}
	s.values = append(s.values, v)
	s.sorted = false
}

// Reserve grows the sample's capacity to hold at least n observations, so
// experiments that know their flow or sample count up front avoid repeated
// reallocation while recording.
func (s *Sample) Reserve(n int) {
	if n <= cap(s.values) {
		return
	}
	v := make([]float64, len(s.values), n)
	copy(v, s.values)
	s.values = v
}

// N returns the observation count — everything seen, including
// observations a Reservoir limit has since evicted.
func (s *Sample) N() int { return s.seen }

// Mean returns the average over all observations (0 for an empty sample).
// It is exact even in reservoir mode.
func (s *Sample) Mean() float64 {
	if s.seen == 0 {
		return 0
	}
	return s.sum / float64(s.seen)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank: the smallest
// value v such that at least q·n observations are ≤ v, i.e. the value at
// rank ⌈q·n⌉. q ≤ 0 returns the minimum and q ≥ 1 the maximum.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	s.sort()
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s.values[idx]
}

// Max returns the largest observation. Exact even in reservoir mode.
func (s *Sample) Max() float64 { return s.max }

// Min returns the smallest observation. Exact even in reservoir mode.
func (s *Sample) Min() float64 { return s.min }

// StdDev returns the population standard deviation, computed over the
// retained observations (an estimate in reservoir mode).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CDF returns (value, cumulative fraction) pairs at each distinct
// observation, suitable for plotting against the paper's CDF figures.
func (s *Sample) CDF() [][2]float64 {
	if len(s.values) == 0 {
		return nil
	}
	s.sort()
	out := make([][2]float64, 0, len(s.values))
	n := float64(len(s.values))
	for i, v := range s.values {
		if i+1 < len(s.values) && s.values[i+1] == v {
			continue
		}
		out = append(out, [2]float64{v, float64(i+1) / n})
	}
	return out
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Merge folds every observation of o into s. Both samples must be
// unbounded — merging reservoirs would need weighted subsampling to stay
// uniform, which no caller needs — so it panics on a Reservoir sample.
func (s *Sample) Merge(o *Sample) {
	if s.limit > 0 || o.limit > 0 {
		panic("stats: Merge on a reservoir-mode sample")
	}
	if o.seen == 0 {
		return
	}
	if s.seen == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.seen == 0 || o.max > s.max {
		s.max = o.max
	}
	s.seen += o.seen
	s.sum += o.sum
	s.values = append(s.values, o.values...)
	s.sorted = false
}

// FCT size buckets follow §5.2: small < 100 KB, large > 10 MB.
const (
	SmallFlowMax = 100 << 10
	LargeFlowMin = 10 << 20
)

// FCTRecorder accumulates flow completion times overall and by size bucket.
// FCTs are recorded both raw (seconds) and normalized to the optimal FCT an
// idle network would give the flow, the metric of Figures 9a/10a/11.
type FCTRecorder struct {
	Overall, OverallNorm Sample
	Small, SmallNorm     Sample
	Large, LargeNorm     Sample
	Bytes                int64
	Flows                int
	// OptimalSum accumulates the per-flow optimal FCTs so callers can
	// report the outlier-robust ratio-of-means mean(FCT)/mean(optimal)
	// alongside the per-flow-normalized mean.
	OptimalSum float64
}

// NewFCTRecorder returns a recorder with its sample buffers pre-sized for
// roughly expectedFlows completions, so recording stays allocation-free on
// the hot path. Empirical datacenter workloads (§5.2) are dominated by
// small flows, so the small buckets get full capacity and the large ones a
// fraction; the buffers still grow if an experiment overshoots.
func NewFCTRecorder(expectedFlows int) *FCTRecorder {
	r := &FCTRecorder{}
	if expectedFlows > 0 {
		r.Overall.Reserve(expectedFlows)
		r.OverallNorm.Reserve(expectedFlows)
		r.Small.Reserve(expectedFlows)
		r.SmallNorm.Reserve(expectedFlows)
		r.Large.Reserve(expectedFlows/8 + 1)
		r.LargeNorm.Reserve(expectedFlows/8 + 1)
	}
	return r
}

// Bound switches every sample into reservoir mode retaining at most limit
// observations each (sub-seeds derived from seed), so million-flow sweeps
// record at bounded memory. Mean/Min/Max/N stay exact; quantiles become
// reservoir estimates. Must be called before the first Record.
func (r *FCTRecorder) Bound(limit int, seed uint64) {
	for i, s := range []*Sample{
		&r.Overall, &r.OverallNorm, &r.Small, &r.SmallNorm, &r.Large, &r.LargeNorm,
	} {
		s.Reservoir(limit, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
}

// NormOfMeans returns mean(FCT)/mean(optimal), the headline normalization
// of Figures 9a/10a/11.
func (r *FCTRecorder) NormOfMeans() float64 {
	if r.OptimalSum == 0 || r.Flows == 0 {
		return 0
	}
	return r.Overall.Mean() / (r.OptimalSum / float64(r.Flows))
}

// Record adds a completed flow. optimal is the idle-network FCT used for
// normalization; pass 0 to skip the normalized series.
func (r *FCTRecorder) Record(size int64, fct, optimal sim.Time) {
	sec := fct.Seconds()
	r.Overall.Add(sec)
	r.Flows++
	r.Bytes += size
	var norm float64
	if optimal > 0 {
		norm = float64(fct) / float64(optimal)
		r.OverallNorm.Add(norm)
		r.OptimalSum += optimal.Seconds()
	}
	switch {
	case size < SmallFlowMax:
		r.Small.Add(sec)
		if optimal > 0 {
			r.SmallNorm.Add(norm)
		}
	case size > LargeFlowMin:
		r.Large.Add(sec)
		if optimal > 0 {
			r.LargeNorm.Add(norm)
		}
	}
}

// Merge folds o's completions into r. The space-parallel harness keeps one
// recorder per domain and merges them in domain order after the run; like
// Sample.Merge it requires unbounded (non-Reservoir) recorders.
func (r *FCTRecorder) Merge(o *FCTRecorder) {
	r.Overall.Merge(&o.Overall)
	r.OverallNorm.Merge(&o.OverallNorm)
	r.Small.Merge(&o.Small)
	r.SmallNorm.Merge(&o.SmallNorm)
	r.Large.Merge(&o.Large)
	r.LargeNorm.Merge(&o.LargeNorm)
	r.Bytes += o.Bytes
	r.Flows += o.Flows
	r.OptimalSum += o.OptimalSum
}

// String summarizes the recorder for logs.
func (r *FCTRecorder) String() string {
	return fmt.Sprintf("flows=%d avgFCT=%.3fms normFCT=%.2f small=%.2f large=%.2f",
		r.Flows, r.Overall.Mean()*1e3, r.OverallNorm.Mean(), r.SmallNorm.Mean(), r.LargeNorm.Mean())
}

// ImbalanceSampler measures the throughput imbalance across a set of links
// in fixed windows: (MAX − MIN)/AVG of the byte counts per window, as in
// Figure 12. Windows with zero traffic are skipped.
type ImbalanceSampler struct {
	links  []*fabric.Link
	prev   []uint64
	Window sim.Time
	Values Sample
}

// NewImbalanceSampler samples the given links every window; attach it with
// Start.
func NewImbalanceSampler(links []*fabric.Link, window sim.Time) *ImbalanceSampler {
	return &ImbalanceSampler{links: links, prev: make([]uint64, len(links)), Window: window}
}

// Start begins periodic sampling on the engine.
func (s *ImbalanceSampler) Start(eng *sim.Engine) {
	for i, l := range s.links {
		s.prev[i] = l.TxBytes
	}
	sim.NewTicker(eng, s.Window, func(sim.Time) { s.take() })
}

func (s *ImbalanceSampler) take() {
	min, max, sum := math.MaxFloat64, 0.0, 0.0
	for i, l := range s.links {
		d := float64(l.TxBytes - s.prev[i])
		s.prev[i] = l.TxBytes
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		sum += d
	}
	if sum == 0 {
		return
	}
	avg := sum / float64(len(s.links))
	s.Values.Add((max - min) / avg)
}

// QueueSampler records the queued bytes of a set of links at a fixed
// period, for the queue-occupancy CDFs of Figures 11c and 16.
type QueueSampler struct {
	links  []*fabric.Link
	Period sim.Time
	// PerLink[i] holds link i's samples; All aggregates every link.
	PerLink []Sample
	All     Sample
}

// NewQueueSampler prepares a sampler; attach it with Start.
func NewQueueSampler(links []*fabric.Link, period sim.Time) *QueueSampler {
	return &QueueSampler{links: links, Period: period, PerLink: make([]Sample, len(links))}
}

// Start begins periodic sampling on the engine.
func (s *QueueSampler) Start(eng *sim.Engine) {
	sim.NewTicker(eng, s.Period, func(sim.Time) {
		for i, l := range s.links {
			q := float64(l.QueuedBytes())
			s.PerLink[i].Add(q)
			s.All.Add(q)
		}
	})
}
