package stats

import (
	"math"
	"sort"

	"conga/internal/sim"
)

// PairedSample holds matched observations of the same experimental units
// under two conditions — here, the same replayed flow's FCT under scheme A
// and scheme B. Because the pairing removes the between-flow variance
// (flow size and arrival time are identical by construction), the paired
// mean delta is a far sharper comparison than differencing two independent
// means, and its uncertainty is estimated by bootstrap resampling of the
// pairs.
type PairedSample struct {
	a, b []float64
}

// Add appends one matched pair.
func (p *PairedSample) Add(a, b float64) {
	p.a = append(p.a, a)
	p.b = append(p.b, b)
}

// Reserve pre-sizes for n pairs.
func (p *PairedSample) Reserve(n int) {
	if cap(p.a) < n {
		p.a = append(make([]float64, 0, n), p.a...)
		p.b = append(make([]float64, 0, n), p.b...)
	}
}

// N returns the number of pairs.
func (p *PairedSample) N() int { return len(p.a) }

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MeanA and MeanB return the per-condition means.
func (p *PairedSample) MeanA() float64 { return mean(p.a) }
func (p *PairedSample) MeanB() float64 { return mean(p.b) }

// MeanDelta returns mean(B−A): negative means condition B is smaller
// (faster, for FCTs) on average.
func (p *PairedSample) MeanDelta() float64 { return mean(p.b) - mean(p.a) }

// MeanRatio returns mean(B)/mean(A) (NaN with no pairs or zero mean A):
// 0.8 means B's mean is 20% below A's.
func (p *PairedSample) MeanRatio() float64 {
	ma := mean(p.a)
	if p.N() == 0 || ma == 0 {
		return math.NaN()
	}
	return mean(p.b) / ma
}

// DeltaQuantile returns the q-quantile (nearest-rank) of the per-pair
// deltas B−A.
func (p *PairedSample) DeltaQuantile(q float64) float64 {
	if p.N() == 0 {
		return 0
	}
	d := make([]float64, p.N())
	for i := range d {
		d[i] = p.b[i] - p.a[i]
	}
	sort.Float64s(d)
	k := int(math.Ceil(q*float64(len(d)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(d) {
		k = len(d) - 1
	}
	return d[k]
}

// WinFraction returns the fraction of pairs where B < A (B "wins").
func (p *PairedSample) WinFraction() float64 {
	if p.N() == 0 {
		return 0
	}
	wins := 0
	for i := range p.a {
		if p.b[i] < p.a[i] {
			wins++
		}
	}
	return float64(wins) / float64(p.N())
}

// Bootstrap estimates a conf (e.g. 0.95) percentile-bootstrap confidence
// interval for an arbitrary statistic of the paired sample: resamples
// whole pairs with replacement (preserving the within-pair dependence),
// recomputes stat on each resample, and returns the (1−conf)/2 and
// (1+conf)/2 empirical quantiles. The PRNG is seeded, so results are
// deterministic.
func (p *PairedSample) Bootstrap(stat func(a, b []float64) float64, resamples int, conf float64, seed uint64) (lo, hi float64) {
	n := p.N()
	if n == 0 || resamples <= 0 {
		return 0, 0
	}
	rng := sim.NewRand(seed)
	ra := make([]float64, n)
	rb := make([]float64, n)
	vals := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			ra[i], rb[i] = p.a[j], p.b[j]
		}
		vals[r] = stat(ra, rb)
	}
	sort.Float64s(vals)
	alpha := (1 - conf) / 2
	idx := func(q float64) int {
		k := int(math.Ceil(q*float64(len(vals)))) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(vals) {
			k = len(vals) - 1
		}
		return k
	}
	return vals[idx(alpha)], vals[idx(1-alpha)]
}

// MeanDeltaCI bootstraps a confidence interval for mean(B−A).
func (p *PairedSample) MeanDeltaCI(resamples int, conf float64, seed uint64) (lo, hi float64) {
	return p.Bootstrap(func(a, b []float64) float64 { return mean(b) - mean(a) }, resamples, conf, seed)
}

// MeanRatioCI bootstraps a confidence interval for mean(B)/mean(A).
func (p *PairedSample) MeanRatioCI(resamples int, conf float64, seed uint64) (lo, hi float64) {
	return p.Bootstrap(func(a, b []float64) float64 {
		ma := mean(a)
		if ma == 0 {
			return math.NaN()
		}
		return mean(b) / ma
	}, resamples, conf, seed)
}
