package stats

import (
	"math"
	"testing"
)

func TestPairedSampleMoments(t *testing.T) {
	var p PairedSample
	if p.N() != 0 || p.WinFraction() != 0 || p.DeltaQuantile(0.5) != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if !math.IsNaN(p.MeanRatio()) {
		t.Fatal("empty sample mean ratio should be NaN")
	}

	p.Reserve(4)
	p.Add(10, 8)  // B wins by 2
	p.Add(20, 22) // A wins by 2
	p.Add(30, 15) // B wins by 15
	p.Add(40, 40) // tie
	if p.N() != 4 {
		t.Fatalf("N = %d", p.N())
	}
	if got := p.MeanA(); got != 25 {
		t.Errorf("MeanA = %v", got)
	}
	if got := p.MeanB(); got != 21.25 {
		t.Errorf("MeanB = %v", got)
	}
	if got := p.MeanDelta(); got != -3.75 {
		t.Errorf("MeanDelta = %v", got)
	}
	if got := p.MeanRatio(); got != 21.25/25 {
		t.Errorf("MeanRatio = %v", got)
	}
	// Ties are not wins: exactly 2 of 4 pairs have B strictly smaller.
	if got := p.WinFraction(); got != 0.5 {
		t.Errorf("WinFraction = %v", got)
	}
	// Sorted deltas: -15, -2, 0, 2.
	if got := p.DeltaQuantile(0.5); got != -2 {
		t.Errorf("median delta = %v", got)
	}
	if got := p.DeltaQuantile(0); got != -15 {
		t.Errorf("min delta = %v", got)
	}
	if got := p.DeltaQuantile(1); got != 2 {
		t.Errorf("max delta = %v", got)
	}
}

func TestPairedBootstrapDeterministicAndSane(t *testing.T) {
	var p PairedSample
	// B is consistently ~20% below A with small per-pair jitter, so the
	// delta CI must sit strictly below zero and bracket the point estimate.
	for i := 0; i < 200; i++ {
		a := 100 + float64(i%17)
		p.Add(a, 0.8*a+float64(i%5)-2)
	}
	lo, hi := p.MeanDeltaCI(500, 0.95, 42)
	if lo > hi {
		t.Fatalf("inverted CI [%v, %v]", lo, hi)
	}
	if d := p.MeanDelta(); d < lo || d > hi {
		t.Errorf("point estimate %v outside its own CI [%v, %v]", d, lo, hi)
	}
	if hi >= 0 {
		t.Errorf("a consistent 20%% improvement should exclude zero: [%v, %v]", lo, hi)
	}

	rLo, rHi := p.MeanRatioCI(500, 0.95, 43)
	if rLo > rHi || rLo <= 0 {
		t.Fatalf("ratio CI [%v, %v]", rLo, rHi)
	}
	if r := p.MeanRatio(); r < rLo || r > rHi {
		t.Errorf("ratio %v outside CI [%v, %v]", r, rLo, rHi)
	}
	if rHi >= 1 {
		t.Errorf("ratio CI should exclude 1: [%v, %v]", rLo, rHi)
	}

	// Same seed → identical interval; different seed → (almost surely)
	// different resamples but an interval in the same place.
	lo2, hi2 := p.MeanDeltaCI(500, 0.95, 42)
	if lo2 != lo || hi2 != hi {
		t.Error("bootstrap is not deterministic for a fixed seed")
	}
	lo3, hi3 := p.MeanDeltaCI(500, 0.95, 7)
	if lo3 == lo && hi3 == hi {
		t.Log("different seed produced the same CI (possible but suspicious)")
	}
	if math.Abs(lo3-lo) > 2 || math.Abs(hi3-hi) > 2 {
		t.Errorf("seed change moved the CI implausibly: [%v, %v] vs [%v, %v]", lo, hi, lo3, hi3)
	}

	// Widening confidence widens the interval.
	wLo, wHi := p.MeanDeltaCI(500, 0.99, 42)
	if wLo > lo || wHi < hi {
		t.Errorf("99%% CI [%v, %v] narrower than 95%% [%v, %v]", wLo, wHi, lo, hi)
	}

	// Degenerate inputs return the zero interval rather than panicking.
	var empty PairedSample
	if lo, hi := empty.MeanDeltaCI(100, 0.95, 1); lo != 0 || hi != 0 {
		t.Errorf("empty bootstrap = [%v, %v]", lo, hi)
	}
	if lo, hi := p.MeanDeltaCI(0, 0.95, 1); lo != 0 || hi != 0 {
		t.Errorf("zero resamples = [%v, %v]", lo, hi)
	}
}
