package hdfs

import (
	"testing"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

func testNet(t testing.TB, scheme fabric.Scheme) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.New()
	p := core.DefaultParams()
	p.FlowletTableSize = 2048
	n := fabric.MustNetwork(eng, fabric.Config{
		NumLeaves: 2, NumSpines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessRateBps: 1e9, FabricRateBps: 2e9,
		Scheme: scheme, Params: p, Seed: 13,
	})
	return eng, n
}

func testCfg() Config {
	c := tcp.DefaultConfig()
	c.MinRTO = 10 * sim.Millisecond
	c.InitRTO = 50 * sim.Millisecond
	return Config{
		Writers:        8,
		BytesPerWriter: 2 << 20,
		BlockBytes:     512 << 10,
		DiskBps:        4e8, // 50 MB/s
		TCP:            c,
		Seed:           1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Writers = 0 },
		func(c *Config) { c.BytesPerWriter = 0 },
		func(c *Config) { c.BlockBytes = 0 },
		func(c *Config) { c.DiskBps = 0 },
		func(c *Config) { c.TCP.MSS = 0 },
	}
	for i, mutate := range bad {
		c := testCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestJobCompletes(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeCONGA)
	finished := false
	res, err := Run(eng, n, testCfg(), func(r *Result, now sim.Time) { finished = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.MaxTime)
	if !finished {
		t.Fatal("job never finished")
	}
	if res.CompletionTime <= 0 {
		t.Fatal("no completion time recorded")
	}
	// 8 writers × 2 MB / 512 KB blocks = 32 blocks; 2 replica transfers
	// each.
	if res.Blocks != 32 {
		t.Fatalf("%d blocks, want 32", res.Blocks)
	}
	if res.ReplicaBytes != 2*8*(2<<20) {
		t.Fatalf("replica bytes %d", res.ReplicaBytes)
	}
	for w, wt := range res.WriterTimes {
		if wt <= 0 || wt > res.CompletionTime {
			t.Fatalf("writer %d finish time %v outside job window", w, wt)
		}
	}
}

// TestDiskBoundFloor: with a slow disk, job time is bounded below by the
// serial disk time of one writer's share.
func TestDiskBoundFloor(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := testCfg()
	cfg.DiskBps = 1e8 // 12.5 MB/s → 2 MB takes ≥ 160 ms on disk alone
	res, err := Run(eng, n, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.MaxTime)
	minDisk := sim.Time(float64(cfg.BytesPerWriter) * 8 / cfg.DiskBps * float64(sim.Second))
	if res.CompletionTime < minDisk {
		t.Fatalf("job finished in %v, below the disk floor %v", res.CompletionTime, minDisk)
	}
}

// TestReplicaPlacementCrossesRacks: every block's first replica transfer
// must cross the fabric (off-rack placement), which is what couples the
// benchmark to fabric load balancing.
func TestReplicaPlacementCrossesRacks(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	_, err := Run(eng, n, testCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.MaxTime)
	var fabricBytes uint64
	for _, l := range n.FabricLinks() {
		fabricBytes += l.TxBytes
	}
	if fabricBytes == 0 {
		t.Fatal("no replication traffic crossed the fabric")
	}
}

func TestTooManyWritersRejected(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := testCfg()
	cfg.Writers = 100
	if _, err := Run(eng, n, cfg, nil); err == nil {
		t.Fatal("100 writers on 8 hosts accepted")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() sim.Time {
		eng, n := testNet(t, fabric.SchemeCONGA)
		res, err := Run(eng, n, testCfg(), nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(sim.MaxTime)
		return res.CompletionTime
	}
	if run() != run() {
		t.Fatal("same seed, different completion time")
	}
}

// TestFailureHurtsECMPMoreThanCONGA is Figure 14's claim at small scale:
// with a degraded fabric and the job's replication traffic, CONGA's job
// time degrades less than ECMP's.
func TestFailureHurtsECMPMoreThanCONGA(t *testing.T) {
	run := func(scheme fabric.Scheme, fail bool) sim.Time {
		eng, n := testNet(t, scheme)
		if fail {
			n.FailLink(0, 1, 0)
		}
		cfg := testCfg()
		cfg.DiskBps = 2e9 // generous disks so the network is the binding constraint
		res, err := Run(eng, n, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(sim.MaxTime)
		return res.CompletionTime
	}
	ecmpDeg := float64(run(fabric.SchemeECMP, true)) / float64(run(fabric.SchemeECMP, false))
	congaDeg := float64(run(fabric.SchemeCONGA, true)) / float64(run(fabric.SchemeCONGA, false))
	if congaDeg > ecmpDeg*1.05 {
		t.Fatalf("CONGA degraded more than ECMP under failure: %.2f vs %.2f", congaDeg, ecmpDeg)
	}
}
