// Package hdfs models the §5.4 TestDFSIO benchmark: a MapReduce job whose
// writer tasks store a large file into HDFS with 3-way replication, on a
// cluster whose fabric also carries background traffic. The paper measures
// the job completion time over 40 trials, with and without a failed fabric
// link (Figure 14).
//
// The model captures the benchmark's structure rather than Hadoop's code:
// each writer streams its share block by block; each block is written to
// the local disk and replicated in a pipeline to a random host in the
// other rack and then to a host in that host's rack (HDFS default
// placement); disks bound throughput (the paper notes the benchmark is
// disk-bound), and the network matters through the replication transfers
// sharing the fabric with background load.
package hdfs

import (
	"fmt"

	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

// Config parameterizes one TestDFSIO-like job.
type Config struct {
	// Writers is the number of writer tasks (the paper uses one per
	// DataNode, 63).
	Writers int
	// BytesPerWriter is each writer's share of the file.
	BytesPerWriter int64
	// BlockBytes is the HDFS block size.
	BlockBytes int64
	// DiskBps caps each node's disk write rate.
	DiskBps float64
	// TCP configures the replication transfers.
	TCP tcp.Config
	// Pool, when non-nil, recycles the replication flows' objects; the
	// caller shares its per-engine tcp.FlowPool.
	Pool *tcp.FlowPool
	// Seed drives replica placement.
	Seed uint64
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Writers <= 0:
		return fmt.Errorf("hdfs: Writers %d must be positive", c.Writers)
	case c.BytesPerWriter <= 0:
		return fmt.Errorf("hdfs: BytesPerWriter %d must be positive", c.BytesPerWriter)
	case c.BlockBytes <= 0:
		return fmt.Errorf("hdfs: BlockBytes %d must be positive", c.BlockBytes)
	case c.DiskBps <= 0:
		return fmt.Errorf("hdfs: DiskBps %v must be positive", c.DiskBps)
	}
	return c.TCP.Validate()
}

// Result reports a completed job.
type Result struct {
	// CompletionTime is when the last writer finished (job completion).
	CompletionTime sim.Time
	// WriterTimes holds each writer's finish time.
	WriterTimes []sim.Time
	// Blocks is the total number of blocks written.
	Blocks int
	// ReplicaBytes is the total bytes shipped over the fabric for
	// replication.
	ReplicaBytes int64
}

// Run schedules the job on the network and returns after wiring the
// simulation; the result is valid once the engine has run to completion.
// done fires when the job finishes.
func Run(eng *sim.Engine, net *fabric.Network, cfg Config, done func(*Result, sim.Time)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hosts := len(net.Hosts)
	if cfg.Writers > hosts {
		return nil, fmt.Errorf("hdfs: %d writers exceed %d hosts", cfg.Writers, hosts)
	}
	rng := sim.NewRand(cfg.Seed + 0xD15C)
	res := &Result{WriterTimes: make([]sim.Time, cfg.Writers)}
	remaining := cfg.Writers

	flowID := uint64(1 << 32) // keep clear of background-traffic IDs

	for w := 0; w < cfg.Writers; w++ {
		w := w
		writerHost := net.Host(w % hosts)
		var writeBlock func(left int64, now sim.Time)
		writeBlock = func(left int64, now sim.Time) {
			if left <= 0 {
				res.WriterTimes[w] = now
				remaining--
				if remaining == 0 {
					res.CompletionTime = now
					if done != nil {
						done(res, now)
					}
				}
				return
			}
			block := cfg.BlockBytes
			if left < block {
				block = left
			}
			res.Blocks++

			// Replica placement: DN2 in the other rack, DN3 in DN2's rack
			// (HDFS default: one off-rack, two in that rack).
			dn2 := pickHost(net, rng, func(h *fabric.Host) bool { return h.Leaf != writerHost.Leaf })
			dn3 := pickHost(net, rng, func(h *fabric.Host) bool { return h.Leaf == dn2.Leaf && h.ID != dn2.ID })
			if dn3 == nil {
				dn3 = dn2 // degenerate tiny topologies
			}

			diskDone := false
			netDone := false
			maybeNext := func(now sim.Time) {
				if diskDone && netDone {
					writeBlock(left-block, now)
				}
			}
			// Local disk write (all three replicas write disks; the
			// writer's own is the one that gates its pipeline).
			diskTime := sim.Time(float64(block) * 8 / cfg.DiskBps * float64(sim.Second))
			eng.At(now+diskTime, func(t sim.Time) {
				diskDone = true
				maybeNext(t)
			})
			// Replication pipeline: writer→DN2, then DN2→DN3.
			id1 := flowID
			flowID += 2
			res.ReplicaBytes += 2 * block
			// Pipeline stages draw from the shared pool; the outer flow's
			// objects are released only after its callback returns, so the
			// inner StartFlow can never reacquire them mid-frame.
			cfg.Pool.StartFlow(eng, writerHost, dn2, id1, block, cfg.TCP, func(_ *tcp.Flow, t1 sim.Time) {
				cfg.Pool.StartFlow(eng, dn2, dn3, id1+1, block, cfg.TCP, func(_ *tcp.Flow, t2 sim.Time) {
					netDone = true
					maybeNext(t2)
				})
			})
		}
		eng.At(0, func(now sim.Time) { writeBlock(cfg.BytesPerWriter, now) })
	}
	return res, nil
}

func pickHost(net *fabric.Network, rng *sim.Rand, ok func(*fabric.Host) bool) *fabric.Host {
	for tries := 0; tries < 1000; tries++ {
		h := net.Host(rng.Intn(len(net.Hosts)))
		if ok(h) {
			return h
		}
	}
	return nil
}
