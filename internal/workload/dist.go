// Package workload generates the traffic the paper evaluates with:
// empirical flow-size distributions (the enterprise and data-mining
// workloads of Figure 8, plus the web-search workload used in the
// large-scale simulations), open-loop Poisson flow arrivals targeting a
// fabric load level, and synchronized Incast request patterns.
package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"conga/internal/sim"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Name() string
	// Sample draws one flow size.
	Sample(r *sim.Rand) int64
	// Mean returns the expected flow size in bytes.
	Mean() float64
}

// Fixed is a degenerate distribution: every flow has the same size.
type Fixed int64

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed-%d", int64(f)) }

// Sample implements SizeDist.
func (f Fixed) Sample(*sim.Rand) int64 { return int64(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Empirical is a flow-size distribution given as CDF points, interpolated
// log-linearly in size (flow sizes span six orders of magnitude, so linear
// interpolation in log-space matches how the paper plots and reports them).
type Empirical struct {
	name  string
	sizes []float64 // ascending
	cdf   []float64 // ascending, cdf[len-1] == 1
	// logSizes precomputes math.Log of each size: Quantile interpolates
	// log-linearly and is the inner loop of every numeric integration over
	// the distribution (Mean, BytesFraction, CV), so hoisting the two
	// endpoint logs out of it cuts its transcendental work to one Exp.
	logSizes []float64
	mean     float64
	meanOK   bool
}

// NewEmpirical builds a distribution from (size, cdf) points. Points must
// be strictly increasing in both coordinates, with the final CDF equal to 1.
func NewEmpirical(name string, points [][2]float64) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: %s: need ≥2 CDF points", name)
	}
	e := &Empirical{name: name}
	for i, pt := range points {
		size, c := pt[0], pt[1]
		if size <= 0 {
			return nil, fmt.Errorf("workload: %s: non-positive size %v", name, size)
		}
		if i > 0 {
			if size <= e.sizes[i-1] {
				return nil, fmt.Errorf("workload: %s: sizes not increasing at %d", name, i)
			}
			if c < e.cdf[i-1] {
				return nil, fmt.Errorf("workload: %s: CDF not monotone at %d", name, i)
			}
		}
		if c < 0 || c > 1 {
			return nil, fmt.Errorf("workload: %s: CDF value %v out of [0,1]", name, c)
		}
		e.sizes = append(e.sizes, size)
		e.cdf = append(e.cdf, c)
		e.logSizes = append(e.logSizes, math.Log(size))
	}
	if e.cdf[len(e.cdf)-1] != 1 {
		return nil, fmt.Errorf("workload: %s: final CDF %v ≠ 1", name, e.cdf[len(e.cdf)-1])
	}
	return e, nil
}

// MustEmpirical is NewEmpirical that panics; for the package's built-ins.
func MustEmpirical(name string, points [][2]float64) *Empirical {
	e, err := NewEmpirical(name, points)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return e.name }

// Quantile returns the flow size at CDF value u in [0, 1).
func (e *Empirical) Quantile(u float64) float64 {
	if u <= e.cdf[0] {
		return e.sizes[0]
	}
	i := sort.SearchFloat64s(e.cdf, u)
	if i >= len(e.cdf) {
		return e.sizes[len(e.sizes)-1]
	}
	lo, hi := i-1, i
	span := e.cdf[hi] - e.cdf[lo]
	if span <= 0 {
		return e.sizes[hi]
	}
	frac := (u - e.cdf[lo]) / span
	// Log-linear interpolation in size.
	return math.Exp(e.logSizes[lo] + frac*(e.logSizes[hi]-e.logSizes[lo]))
}

// Sample implements SizeDist via inverse-transform sampling.
func (e *Empirical) Sample(r *sim.Rand) int64 {
	s := int64(e.Quantile(r.Float64()))
	if s < 1 {
		s = 1
	}
	return s
}

// Mean implements SizeDist. It integrates the inverse CDF numerically once
// and caches the result.
func (e *Empirical) Mean() float64 {
	if !e.meanOK {
		const steps = 200000
		sum := 0.0
		for i := 0; i < steps; i++ {
			u := (float64(i) + 0.5) / steps
			sum += e.Quantile(u)
		}
		e.mean = sum / steps
		e.meanOK = true
	}
	return e.mean
}

// BytesFraction returns the fraction of all traffic bytes carried by flows
// of size ≤ s — the "Bytes CDF" curve of Figure 8.
func (e *Empirical) BytesFraction(s float64) float64 {
	const steps = 200000
	total, below := 0.0, 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		q := e.Quantile(u)
		total += q
		if q <= s {
			below += q
		}
	}
	if total == 0 {
		return 0
	}
	return below / total
}

// CV returns the coefficient of variation σ/µ of the flow size — the
// quantity Theorem 2 says governs load-balancing difficulty.
func (e *Empirical) CV() float64 {
	const steps = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		q := e.Quantile(u)
		sum += q
		sumSq += q * q
	}
	mean := sum / steps
	variance := sumSq/steps - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}

// Enterprise returns the paper's enterprise workload (Figure 8a),
// reconstructed from the published flow-size CDF. Roughly half of all bytes
// come from flows smaller than 35 MB, which is why ECMP does comparatively
// well on it (§5.2.1).
func Enterprise() *Empirical {
	return builtin(&enterpriseOnce, "enterprise", [][2]float64{
		{100, 0},
		{200, 0.10},
		{400, 0.25},
		{1e3, 0.50},
		{5e3, 0.70},
		{2e4, 0.80},
		{1e5, 0.875},
		{5e5, 0.92},
		{2e6, 0.955},
		{1e7, 0.98},
		{3.5e7, 0.9935},
		{1e8, 0.999},
		{2.5e8, 1.0},
	})
}

// DataMining returns the data-mining workload (Figure 8b), following the
// widely used VL2 tabulation. Its tail is very heavy: ~3.6% of flows are
// larger than 35 MB yet carry ~95% of the bytes.
func DataMining() *Empirical {
	return builtin(&dataMiningOnce, "data-mining", [][2]float64{
		{100, 0},
		{180, 0.10},
		{250, 0.20},
		{560, 0.30},
		{900, 0.40},
		{1100, 0.50},
		{1870, 0.60},
		{3160, 0.70},
		{1e4, 0.80},
		{4e5, 0.90},
		{3.16e6, 0.95},
		{1e8, 0.98},
		{1e9, 1.0},
	})
}

// WebSearch returns the web-search workload (from the DCTCP measurement
// study) used by the paper's large-scale simulations (Figures 15 and 16).
func WebSearch() *Empirical {
	return builtin(&webSearchOnce, "web-search", [][2]float64{
		{6e3, 0.15},
		{1.3e4, 0.30},
		{1.9e4, 0.45},
		{3.3e4, 0.60},
		{5.3e4, 0.70},
		{1.33e5, 0.80},
		{6.67e5, 0.90},
		{1.34e6, 0.95},
		{3.3e6, 0.98},
		{6.65e6, 1.0},
	})
}

// The built-in distributions are immutable process-wide singletons. Each
// sweep run used to rebuild its distribution and re-integrate the 200k-step
// mean; constructing once (with the mean precomputed inside the Once, so
// the shared value is read-only afterwards and safe under concurrent
// engines) makes that a one-time cost.
var enterpriseOnce, dataMiningOnce, webSearchOnce builtinDist

type builtinDist struct {
	once sync.Once
	dist *Empirical
}

func builtin(b *builtinDist, name string, points [][2]float64) *Empirical {
	b.once.Do(func() {
		b.dist = MustEmpirical(name, points)
		b.dist.Mean()
	})
	return b.dist
}
