package workload

import (
	"fmt"

	"conga/internal/fabric"
	"conga/internal/sim"
)

// Starter launches one flow; the experiment harness binds it to a transport
// (TCP or MPTCP) and a results recorder. The workload package itself is
// transport-agnostic.
type Starter func(src, dst *fabric.Host, flowID uint64, size int64)

// GenConfig configures an open-loop Poisson flow generator, the traffic
// model of §5.2: clients request flows at Poisson arrivals from randomly
// chosen servers under other leaves, with sizes drawn from an empirical
// distribution, at a target fraction of the fabric's bisection bandwidth.
type GenConfig struct {
	// Load is the offered load as a fraction of the per-direction leaf
	// bisection bandwidth (uplink capacity of one leaf).
	Load float64
	// Dist draws flow sizes.
	Dist SizeDist
	// Duration is the arrival window; flows arriving inside it may finish
	// after it.
	Duration sim.Time
	// MaxFlows caps the number of generated flows (0 = unlimited), which
	// bounds experiment cost at high loads.
	MaxFlows int
	// InterLeafOnly restricts src/dst pairs to distinct leaves (the
	// testbed setup: leaf-0 clients use leaf-1 servers and vice versa).
	// When false, destinations are any other host.
	InterLeafOnly bool
	// FlowIDBase offsets generated flow IDs; keep generators' ID spaces
	// disjoint. Flow IDs advance by Stride per flow (MPTCP needs room
	// for its subflows).
	FlowIDBase uint64
	Stride     uint64
	// Seed isolates this generator's randomness.
	Seed uint64
	// Observe, when non-nil, is called with every arrival as it is drawn —
	// live (launch time) or pregenerated (draw time) — in arrival order.
	// The record/replay subsystem hooks trace capture here; observation
	// must not mutate anything the generator or flows depend on.
	Observe func(Arrival)
}

// Generator produces flows on a network.
type Generator struct {
	eng *sim.Engine
	net *fabric.Network
	cfg GenConfig
	rng *sim.Rand

	start    Starter
	arriveFn sim.Event // bound once so each arrival schedules allocation-free
	nextID   uint64
	created  int

	// Generated counts flows started; OfferedBytes sums their sizes.
	Generated    int
	OfferedBytes int64
}

// NewGenerator prepares a generator; Start begins the arrival process.
func NewGenerator(eng *sim.Engine, net *fabric.Network, cfg GenConfig, start Starter) (*Generator, error) {
	if cfg.Load <= 0 {
		return nil, fmt.Errorf("workload: load %v must be positive", cfg.Load)
	}
	if cfg.Dist == nil {
		return nil, fmt.Errorf("workload: no size distribution")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %v must be positive", cfg.Duration)
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if net.NumLeaves() < 2 {
		return nil, fmt.Errorf("workload: need ≥ 2 leaves")
	}
	g := &Generator{
		eng:    eng,
		net:    net,
		cfg:    cfg,
		rng:    sim.NewRand(cfg.Seed + 0x9e37),
		start:  start,
		nextID: cfg.FlowIDBase,
	}
	g.arriveFn = g.arrive
	return g, nil
}

// BisectionBps returns the nominal per-direction uplink capacity of one
// leaf, the reference for the Load fraction. It uses configured rates, so a
// failed link does not change the offered load (matching §5.2.2, where the
// same load levels are offered to the degraded fabric).
func (g *Generator) BisectionBps() float64 {
	cfg := g.net.Cfg
	rate := 0.0
	if cfg.FabricLinkRate != nil {
		for s := 0; s < cfg.NumSpines; s++ {
			for k := 0; k < cfg.LinksPerSpine; k++ {
				if r := cfg.FabricLinkRate(0, s, k); r > 0 {
					rate += r
				} else {
					rate += cfg.FabricRateBps
				}
			}
		}
		return rate
	}
	return cfg.FabricRateBps * float64(cfg.NumSpines*cfg.LinksPerSpine)
}

// ArrivalRate returns the flow arrival rate in flows/second implied by the
// load target: λ = load · C / E[S], counting both directions (each leaf
// offers load·C toward the others).
func (g *Generator) ArrivalRate() float64 {
	bytesPerSec := g.cfg.Load * g.BisectionBps() / 8
	perDirection := bytesPerSec / g.cfg.Dist.Mean()
	return perDirection * float64(g.net.NumLeaves())
}

// Start begins the Poisson arrival process.
func (g *Generator) Start() {
	g.scheduleNext(g.eng.Now())
}

func (g *Generator) scheduleNext(now sim.Time) {
	if g.cfg.MaxFlows > 0 && g.created >= g.cfg.MaxFlows {
		return
	}
	gap := sim.Time(g.rng.ExpFloat64() / g.ArrivalRate() * float64(sim.Second))
	next := now + gap
	if next > g.cfg.Duration {
		return
	}
	g.eng.At(next, g.arriveFn)
}

// arrive is the per-arrival event body (bound once as arriveFn): launch
// the flow, then schedule the next arrival.
func (g *Generator) arrive(t sim.Time) {
	g.launch(t)
	g.scheduleNext(t)
}

func (g *Generator) launch(now sim.Time) {
	src := g.pickHost(-1)
	var dst *fabric.Host
	if g.cfg.InterLeafOnly {
		dst = g.pickHost(src.Leaf)
	} else {
		for dst = g.pickHost(-1); dst == src; dst = g.pickHost(-1) {
		}
	}
	size := g.cfg.Dist.Sample(g.rng)
	id := g.nextID
	g.nextID += g.cfg.Stride
	g.created++
	g.Generated++
	g.OfferedBytes += size
	if g.cfg.Observe != nil {
		g.cfg.Observe(Arrival{At: now, Src: src.ID, Dst: dst.ID, FlowID: id, Size: size})
	}
	g.start(src, dst, id, size)
}

// Arrival is one pregenerated flow arrival.
type Arrival struct {
	At     sim.Time
	Src    int
	Dst    int
	FlowID uint64
	Size   int64
}

// Pregenerate draws the entire arrival sequence up front instead of
// scheduling live events, consuming the RNG in exactly the order the live
// process would (gap, then source, destination and size per arrival), so a
// pregenerated run offers the identical workload to a Started one. The
// space-parallel harness uses it to distribute arrivals across per-domain
// engines before the run begins. Counters (Generated, OfferedBytes) are
// updated as if the flows had launched; a pregenerated generator must not
// also be Started.
func (g *Generator) Pregenerate() []Arrival {
	var out []Arrival
	now := g.eng.Now()
	for {
		if g.cfg.MaxFlows > 0 && g.created >= g.cfg.MaxFlows {
			break
		}
		gap := sim.Time(g.rng.ExpFloat64() / g.ArrivalRate() * float64(sim.Second))
		next := now + gap
		if next > g.cfg.Duration {
			break
		}
		src := g.pickHost(-1)
		var dst *fabric.Host
		if g.cfg.InterLeafOnly {
			dst = g.pickHost(src.Leaf)
		} else {
			for dst = g.pickHost(-1); dst == src; dst = g.pickHost(-1) {
			}
		}
		size := g.cfg.Dist.Sample(g.rng)
		id := g.nextID
		g.nextID += g.cfg.Stride
		g.created++
		g.Generated++
		g.OfferedBytes += size
		a := Arrival{At: next, Src: src.ID, Dst: dst.ID, FlowID: id, Size: size}
		if g.cfg.Observe != nil {
			g.cfg.Observe(a)
		}
		out = append(out, a)
		now = next
	}
	return out
}

// pickHost selects a host uniformly; when avoidLeaf ≥ 0 the host must be
// under a different leaf.
func (g *Generator) pickHost(avoidLeaf int) *fabric.Host {
	for {
		h := g.net.Host(g.rng.Intn(len(g.net.Hosts)))
		if avoidLeaf < 0 || h.Leaf != avoidLeaf {
			return h
		}
	}
}
