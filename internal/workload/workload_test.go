package workload

import (
	"math"
	"testing"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
)

func TestNewEmpiricalValidation(t *testing.T) {
	bad := [][][2]float64{
		{{100, 0}},               // too few points
		{{100, 0}, {50, 1}},      // sizes not increasing
		{{100, 0.5}, {200, 0.2}}, // CDF not monotone
		{{100, 0}, {200, 0.5}},   // does not reach 1
		{{0, 0}, {100, 1}},       // non-positive size
		{{100, -0.1}, {200, 1}},  // CDF below 0
		{{100, 0}, {200, 0.5}, {300, 2}} /* CDF above 1 */}
	for i, pts := range bad {
		if _, err := NewEmpirical("bad", pts); err == nil {
			t.Errorf("bad distribution %d accepted", i)
		}
	}
	if _, err := NewEmpirical("ok", [][2]float64{{100, 0}, {1000, 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalQuantileMonotone(t *testing.T) {
	e := DataMining()
	prev := 0.0
	for u := 0.001; u < 1; u += 0.001 {
		q := e.Quantile(u)
		if q < prev {
			t.Fatalf("quantile not monotone at u=%v: %v < %v", u, q, prev)
		}
		prev = q
	}
}

func TestEmpiricalSampleWithinSupport(t *testing.T) {
	r := sim.NewRand(1)
	for _, e := range []*Empirical{Enterprise(), DataMining(), WebSearch()} {
		min, max := e.sizes[0], e.sizes[len(e.sizes)-1]
		for i := 0; i < 10000; i++ {
			s := float64(e.Sample(r))
			if s < 1 || s > max+1 {
				t.Fatalf("%s: sample %v outside [1, %v]", e.Name(), s, max)
			}
			_ = min
		}
	}
}

func TestEmpiricalSampleMatchesCDF(t *testing.T) {
	e := DataMining()
	r := sim.NewRand(2)
	const n = 200000
	below1100 := 0
	for i := 0; i < n; i++ {
		if e.Sample(r) <= 1100 {
			below1100++
		}
	}
	frac := float64(below1100) / n
	if math.Abs(frac-0.50) > 0.01 {
		t.Fatalf("P[S ≤ 1100] = %.3f, want ≈ 0.50 (the published median)", frac)
	}
}

// TestWorkloadHeaviness pins the property §5.2.1 hinges on: in the
// enterprise workload about half the bytes come from flows ≤ 35 MB, while
// in data-mining those flows carry only a few percent.
func TestWorkloadHeaviness(t *testing.T) {
	ent := Enterprise().BytesFraction(35e6)
	if ent < 0.35 || ent > 0.65 {
		t.Fatalf("enterprise bytes ≤ 35MB = %.2f, want ≈ 0.5", ent)
	}
	dm := DataMining().BytesFraction(35e6)
	if dm > 0.15 {
		t.Fatalf("data-mining bytes ≤ 35MB = %.2f, want ≤ 0.15 (very heavy tail)", dm)
	}
}

func TestCVOrdering(t *testing.T) {
	// Theorem 2: higher CV ⇒ harder to balance. Data-mining must have a
	// larger coefficient of variation than web-search.
	dm, ws := DataMining().CV(), WebSearch().CV()
	if dm <= ws {
		t.Fatalf("CV(data-mining)=%.2f ≤ CV(web-search)=%.2f", dm, ws)
	}
	if dm < 3 {
		t.Fatalf("CV(data-mining)=%.2f implausibly small", dm)
	}
}

func TestFixedDist(t *testing.T) {
	f := Fixed(1000)
	if f.Sample(sim.NewRand(1)) != 1000 || f.Mean() != 1000 {
		t.Fatal("Fixed distribution broken")
	}
}

func TestMeanStableAndPositive(t *testing.T) {
	for _, e := range []*Empirical{Enterprise(), DataMining(), WebSearch()} {
		m1, m2 := e.Mean(), e.Mean()
		if m1 != m2 {
			t.Fatalf("%s: Mean not cached deterministically", e.Name())
		}
		if m1 <= 0 {
			t.Fatalf("%s: non-positive mean %v", e.Name(), m1)
		}
	}
	// Sanity: data-mining mean is megabytes (heavy tail), web-search is
	// hundreds of KB.
	if DataMining().Mean() < 1e6 {
		t.Fatalf("data-mining mean %v too small", DataMining().Mean())
	}
}

func testNet(t testing.TB) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.New()
	p := core.DefaultParams()
	p.FlowletTableSize = 1024
	n := fabric.MustNetwork(eng, fabric.Config{
		NumLeaves: 2, NumSpines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessRateBps: 1e9, FabricRateBps: 1e9,
		Scheme: fabric.SchemeECMP, Params: p, Seed: 3,
	})
	return eng, n
}

func TestGeneratorConfigValidation(t *testing.T) {
	eng, n := testNet(t)
	bad := []GenConfig{
		{Load: 0, Dist: Fixed(1), Duration: 1},
		{Load: 0.5, Dist: nil, Duration: 1},
		{Load: 0.5, Dist: Fixed(1), Duration: 0},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(eng, n, cfg, func(*fabric.Host, *fabric.Host, uint64, int64) {}); err == nil {
			t.Errorf("bad generator config %d accepted", i)
		}
	}
}

func TestGeneratorOfferedLoad(t *testing.T) {
	eng, n := testNet(t)
	cfg := GenConfig{
		Load:          0.5,
		Dist:          Fixed(100_000),
		Duration:      200 * sim.Millisecond,
		InterLeafOnly: true,
		Seed:          9,
	}
	type rec struct{ src, dst, size int64 }
	var flows []rec
	g, err := NewGenerator(eng, n, cfg, func(src, dst *fabric.Host, id uint64, size int64) {
		flows = append(flows, rec{int64(src.ID), int64(dst.ID), size})
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(cfg.Duration)

	// Offered bytes ≈ load × bisection × duration × numLeaves (both
	// directions): 0.5 × 2 Gbps/8 × 0.2 s × 2 = 50 MB.
	want := cfg.Load * g.BisectionBps() / 8 * cfg.Duration.Seconds() * 2
	got := float64(g.OfferedBytes)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("offered %0.f bytes, want ≈ %.0f", got, want)
	}
	// Every flow crosses leaves.
	for _, f := range flows {
		if f.src/4 == f.dst/4 {
			t.Fatalf("intra-leaf flow generated with InterLeafOnly: %+v", f)
		}
	}
}

func TestGeneratorMaxFlowsCap(t *testing.T) {
	eng, n := testNet(t)
	cfg := GenConfig{Load: 0.9, Dist: Fixed(1000), Duration: sim.Second, MaxFlows: 25, Seed: 4}
	g, err := NewGenerator(eng, n, cfg, func(*fabric.Host, *fabric.Host, uint64, int64) {})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(sim.Second)
	if g.Generated != 25 {
		t.Fatalf("generated %d flows, want capped at 25", g.Generated)
	}
}

func TestGeneratorFlowIDStride(t *testing.T) {
	eng, n := testNet(t)
	cfg := GenConfig{Load: 0.9, Dist: Fixed(1000), Duration: sim.Second,
		MaxFlows: 10, FlowIDBase: 1000, Stride: 8, Seed: 4}
	var ids []uint64
	g, _ := NewGenerator(eng, n, cfg, func(_, _ *fabric.Host, id uint64, _ int64) {
		ids = append(ids, id)
	})
	g.Start()
	eng.Run(sim.Second)
	for i, id := range ids {
		if want := uint64(1000 + 8*i); id != want {
			t.Fatalf("flow %d has ID %d, want %d", i, id, want)
		}
	}
}

func TestGeneratorDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		eng, n := testNet(t)
		var sizes []int64
		cfg := GenConfig{Load: 0.6, Dist: DataMining(), Duration: 50 * sim.Millisecond, Seed: 77}
		g, _ := NewGenerator(eng, n, cfg, func(_, _ *fabric.Host, _ uint64, size int64) {
			sizes = append(sizes, size)
		})
		g.Start()
		eng.Run(cfg.Duration)
		return sizes
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at flow %d", i)
		}
	}
}

// TestGeneratorObserveHook: the Observe hook sees every arrival, in
// arrival order, with exactly the data the start callback receives — and
// the live and pregenerated paths observe the identical sequence (the
// record/replay subsystem depends on this equivalence).
func TestGeneratorObserveHook(t *testing.T) {
	cfgFor := func(observe func(Arrival)) GenConfig {
		return GenConfig{Load: 0.6, Dist: Enterprise(), Duration: 20 * sim.Millisecond,
			MaxFlows: 50, Seed: 5, Observe: observe}
	}

	var live []Arrival
	var started []Arrival
	eng, n := testNet(t)
	g, err := NewGenerator(eng, n, cfgFor(func(a Arrival) { live = append(live, a) }),
		func(src, dst *fabric.Host, id uint64, size int64) {
			started = append(started, Arrival{At: eng.Now(), Src: src.ID, Dst: dst.ID, FlowID: id, Size: size})
		})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run(sim.Second)

	if len(live) == 0 || len(live) != g.Generated {
		t.Fatalf("observed %d arrivals, generated %d", len(live), g.Generated)
	}
	if len(live) != len(started) {
		t.Fatalf("observed %d arrivals but started %d flows", len(live), len(started))
	}
	for i := range live {
		if live[i] != started[i] {
			t.Fatalf("arrival %d: observed %+v, started %+v", i, live[i], started[i])
		}
		if i > 0 && live[i].At < live[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}

	var pre []Arrival
	eng2, n2 := testNet(t)
	g2, err := NewGenerator(eng2, n2, cfgFor(func(a Arrival) { pre = append(pre, a) }),
		func(*fabric.Host, *fabric.Host, uint64, int64) {})
	if err != nil {
		t.Fatal(err)
	}
	out := g2.Pregenerate()
	if len(pre) != len(out) {
		t.Fatalf("pregenerate observed %d of %d arrivals", len(pre), len(out))
	}
	for i := range pre {
		if pre[i] != out[i] {
			t.Fatalf("pregenerate arrival %d: observed %+v, returned %+v", i, pre[i], out[i])
		}
		if pre[i] != live[i] {
			t.Fatalf("live/pregenerate diverge at arrival %d: %+v vs %+v", i, live[i], pre[i])
		}
	}
}
