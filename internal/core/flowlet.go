package core

import "conga/internal/sim"

// FlowletTable detects and tracks flowlets (§3.4). Each entry holds a port
// number, a valid bit and an age bit; packets index the table by a hash of
// their 5-tuple. A periodic sweep (every Tfl) expires entries whose age bit
// is still set, which detects inactivity gaps between Tfl and 2·Tfl with
// just one bit of state — the trick that lets the ASIC keep 64K entries.
//
// Hash collisions map distinct flows to the same entry. As the paper's
// Remark 1 observes, this only costs a load-balancing opportunity (the
// colliding flow rides the cached port), never correctness, so the table
// makes no attempt to resolve them.
//
// In GapModeTimestamp the table instead records a last-packet timestamp per
// entry and expires lazily on lookup; see GapMode for why both exist.
type FlowletTable struct {
	port  []int16
	valid []bool
	age   []bool
	last  []sim.Time // GapModeTimestamp only
	// GapModeAgeBit keeps an index list of entries that may need sweeping,
	// so Sweep walks the handful of live flowlets instead of all 64K slots.
	// Invariant: valid[i] ⇒ listed[i]; listed[i] is cleared only when the
	// sweep drops i from the list.
	active []int32
	listed []bool
	mode   GapMode
	tfl    sim.Time
	mask   uint64 // len(port)-1 when the size is a power of two, else 0
	// Expired counts entries invalidated by gap detection; Collisions is
	// not observable (hash collisions are indistinguishable from flowlet
	// reuse by design), but Installs and Hits support the concurrency
	// analysis in §2.6.1. Evicts counts installs that overwrote a
	// still-valid entry (only possible via direct Install without a prior
	// miss — the strategy path never does it, so nonzero Evicts flags an
	// unexpected reuse pattern).
	Installs, Hits, Expired, Evicts uint64
	live                            int // valid-entry count, maintained O(1)
}

// NewFlowletTable returns a table with p.FlowletTableSize entries using
// p.GapMode for gap detection.
func NewFlowletTable(p Params) *FlowletTable {
	n := p.FlowletTableSize
	t := &FlowletTable{
		port:  make([]int16, n),
		valid: make([]bool, n),
		mode:  p.GapMode,
		tfl:   p.Tfl,
	}
	for i := range t.port {
		t.port[i] = -1
	}
	if n&(n-1) == 0 {
		t.mask = uint64(n - 1)
	}
	if p.GapMode == GapModeAgeBit {
		t.age = make([]bool, n)
		t.listed = make([]bool, n)
	} else {
		t.last = make([]sim.Time, n)
	}
	return t
}

// Len returns the number of entries.
func (t *FlowletTable) Len() int { return len(t.port) }

func (t *FlowletTable) index(hash uint64) int {
	if t.mask != 0 {
		return int(hash & t.mask)
	}
	return int(hash % uint64(len(t.port)))
}

// Lookup processes a packet of the flow identified by hash. If the flowlet
// is active it returns (port, true) and refreshes the entry's age state.
// Otherwise it returns (lastPort, false): the packet starts a new flowlet,
// the caller must make a load-balancing decision and Install it. lastPort
// is the port the previous flowlet in this entry used (−1 if none); §3.5
// uses it as the tie-break preference so a flow only moves when a strictly
// better uplink exists.
func (t *FlowletTable) Lookup(hash uint64, now sim.Time) (port int, active bool) {
	i := t.index(hash)
	if t.mode == GapModeTimestamp && t.valid[i] && now-t.last[i] > t.tfl {
		t.valid[i] = false
		t.Expired++
		t.live--
	}
	if t.valid[i] {
		t.Hits++
		if t.mode == GapModeAgeBit {
			t.age[i] = false
		} else {
			t.last[i] = now
		}
		return int(t.port[i]), true
	}
	return int(t.port[i]), false
}

// Install caches the decision for a new flowlet: sets the port, the valid
// bit, and clears the age bit.
func (t *FlowletTable) Install(hash uint64, port int, now sim.Time) {
	i := t.index(hash)
	t.port[i] = int16(port)
	if t.valid[i] {
		t.Evicts++
	} else {
		t.valid[i] = true
		t.live++
	}
	t.Installs++
	if t.mode == GapModeAgeBit {
		t.age[i] = false
		if !t.listed[i] {
			t.listed[i] = true
			t.active = append(t.active, int32(i))
		}
	} else {
		t.last[i] = now
	}
}

// Sweep implements the periodic age-bit check: entries whose age bit is
// still set have seen no packet for at least Tfl and are invalidated;
// surviving entries have their age bit set for the next round. The owning
// switch calls it every Tfl. In GapModeTimestamp it is a no-op.
func (t *FlowletTable) Sweep() {
	if t.mode != GapModeAgeBit {
		return
	}
	// Only listed entries can be valid, so walking the active list visits
	// every live flowlet; expired entries are compacted out in place.
	kept := t.active[:0]
	for _, i := range t.active {
		if !t.valid[i] {
			t.listed[i] = false
			continue
		}
		if t.age[i] {
			t.valid[i] = false
			t.listed[i] = false
			t.Expired++
			t.live--
		} else {
			t.age[i] = true
			kept = append(kept, i)
		}
	}
	t.active = kept
}

// Live returns the number of currently valid entries in O(1); the counter
// is maintained by Install/Lookup/Sweep. In GapModeTimestamp it can
// overcount entries whose gap has passed but which haven't been looked up
// yet (expiry is lazy) — the same caveat the real table has.
func (t *FlowletTable) Live() int { return t.live }

// Active returns the number of currently valid entries; §2.6.1's
// measurement analysis argues this stays small (hundreds) even on heavily
// loaded leaves.
func (t *FlowletTable) Active() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// FlowHash hashes a flow 5-tuple-like identity into the table index space.
// It is FNV-1a over the packed words followed by a murmur-style finalizer.
// The finalizer matters: raw FNV-1a's low bit is the parity of the input
// bytes, so structured tuples (e.g. src port derived from flow ID) collapse
// onto one ECMP bucket without it.
func FlowHash(src, dst, srcPort, dstPort, proto uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range [5]uint64{src, dst, srcPort, dstPort, proto} {
		for i := 0; i < 8; i++ {
			h ^= w >> (8 * i) & 0xff
			h *= prime
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
