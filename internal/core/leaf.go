package core

import (
	"fmt"

	"conga/internal/sim"
	"conga/internal/telemetry"
)

// combine composes one uplink's local and remote metrics per the chosen
// path metric (saturating at 255 for the sum; wire saturation happens in
// MarkCE).
func combine(pm PathMetric, local, remote uint8) uint8 {
	if pm == PathMetricSum {
		s := int(local) + int(remote)
		if s > 255 {
			s = 255
		}
		return uint8(s)
	}
	if remote > local {
		return remote
	}
	return local
}

// MarkCE updates a packet's CE field for a traversed link with metric m,
// saturating at the header's 3-bit limit. Max mode is the paper's §3.3
// hop-by-hop maximum; sum mode is the §7 alternative.
func MarkCE(pm PathMetric, ce, m uint8) uint8 {
	if pm == PathMetricSum {
		s := int(ce) + int(m)
		if s > maxCE {
			s = maxCE
		}
		return uint8(s)
	}
	if m > ce {
		return m
	}
	return ce
}

// Decide implements the load-balancing decision logic of §3.5 for the first
// packet of a flowlet with the paper's max path metric: among allowed
// uplinks, pick the one minimizing max(localMetric, remoteMetric).
func Decide(localMetrics, remoteMetrics []uint8, allowed []bool, preferred int, rng *sim.Rand) int {
	return DecideMetric(PathMetricMax, localMetrics, remoteMetrics, allowed, preferred, rng)
}

// DecideMetric is Decide with an explicit path-metric composition. Ties
// prefer the uplink the flow's last flowlet used (preferred, −1 if none)
// so a flow only moves when a strictly better uplink exists; remaining
// ties break uniformly at random.
//
// localMetrics and remoteMetrics must have equal length; allowed may be
// nil (all uplinks usable). It returns −1 if no uplink is allowed.
func DecideMetric(pm PathMetric, localMetrics, remoteMetrics []uint8, allowed []bool, preferred int, rng *sim.Rand) int {
	if len(localMetrics) != len(remoteMetrics) {
		panic(fmt.Sprintf("core: metric slices of unequal length %d vs %d",
			len(localMetrics), len(remoteMetrics)))
	}
	best := uint8(255)
	count := 0 // number of uplinks achieving best
	for i := range localMetrics {
		if allowed != nil && !allowed[i] {
			continue
		}
		m := combine(pm, localMetrics[i], remoteMetrics[i])
		if m < best {
			best = m
			count = 1
		} else if m == best {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	// Preferred uplink wins ties.
	if preferred >= 0 && preferred < len(localMetrics) && (allowed == nil || allowed[preferred]) {
		if combine(pm, localMetrics[preferred], remoteMetrics[preferred]) == best {
			return preferred
		}
	}
	// Uniform choice among the minima.
	pick := 0
	if rng != nil {
		pick = rng.Intn(count)
	}
	for i := range localMetrics {
		if allowed != nil && !allowed[i] {
			continue
		}
		if combine(pm, localMetrics[i], remoteMetrics[i]) == best {
			if pick == 0 {
				return i
			}
			pick--
		}
	}
	panic("core: unreachable: minimum disappeared")
}

// Leaf bundles the per-leaf CONGA state: the flowlet table, both congestion
// tables, and the decision RNG. It is the algorithmic content of the Leaf
// ASIC; the fabric's leaf switch owns one and additionally owns the per-
// uplink DREs (which belong to the links themselves).
type Leaf struct {
	ID     int
	Params Params

	Flowlets *FlowletTable
	ToLeaf   *CongestionToLeaf
	FromLeaf *CongestionFromLeaf

	rng        *sim.Rand
	numUplinks int
	remoteBuf  []uint8

	// Decisions counts flowlet-level LB decisions; Moves counts decisions
	// that picked a different uplink than the previous flowlet.
	Decisions, Moves uint64

	// Hooks is the decision-plane observability seam: nil when telemetry is
	// off (every SelectUplink site is then a single branch, same pattern as
	// fabric.Link and tcp.Sender hooks). Hooks never feed back into the
	// decision: they read state after the verdict and consume no engine
	// randomness.
	Hooks *telemetry.DecisionHooks

	// hookBuf holds the combined max(local, remote) candidate vector handed
	// to Hooks, computed only when Hooks is non-nil.
	hookBuf []uint8
}

// NewLeaf returns the CONGA state for leaf id in a fabric of numLeaves
// leaves where this leaf has numUplinks uplinks. It panics on invalid
// Params so misconfiguration fails loudly at construction.
func NewLeaf(id, numLeaves, numUplinks int, p Params, rng *sim.Rand) *Leaf {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numUplinks > p.MaxUplinks {
		panic(fmt.Sprintf("core: %d uplinks exceeds MaxUplinks %d", numUplinks, p.MaxUplinks))
	}
	return &Leaf{
		ID:         id,
		Params:     p,
		Flowlets:   NewFlowletTable(p),
		ToLeaf:     NewCongestionToLeaf(numLeaves, numUplinks, p),
		FromLeaf:   NewCongestionFromLeaf(numLeaves, p.MaxUplinks, p),
		rng:        rng,
		numUplinks: numUplinks,
		remoteBuf:  make([]uint8, numUplinks),
	}
}

// SelectUplink makes the forwarding decision for one packet of the flow
// identified by flowHash, destined to dstLeaf. localMetrics are the current
// quantized DRE values of this leaf's uplinks, and allowed marks uplinks
// that are up (nil = all). It returns the chosen uplink and whether this
// packet started a new flowlet. A return of −1 means no uplink is usable.
func (l *Leaf) SelectUplink(flowHash uint64, dstLeaf int, localMetrics []uint8, allowed []bool, now sim.Time) (uplink int, newFlowlet bool) {
	port, active := l.Flowlets.Lookup(flowHash, now)
	if active && (allowed == nil || (port < len(allowed) && allowed[port])) {
		if l.Hooks != nil {
			l.Hooks.Decision(now, dstLeaf, port, telemetry.ReasonSticky, -1, nil)
		}
		return port, false
	}
	remote := l.ToLeaf.Metrics(dstLeaf, now, l.remoteBuf)
	choice := DecideMetric(l.Params.PathMetric, localMetrics, remote, allowed, port, l.rng)
	if choice < 0 {
		return -1, true
	}
	l.Decisions++
	if port >= 0 && choice != port {
		l.Moves++
	}
	if l.Hooks != nil {
		l.recordDecision(dstLeaf, choice, port, active, localMetrics, remote, now)
	}
	l.Flowlets.Install(flowHash, choice, now)
	return choice, true
}

// recordDecision reports one congestion-aware pick through the hook seam:
// the reason (new-flowlet / expired / evicted), the candidate vector the
// decision minimized over, and the feedback age of the winning uplink's
// remote metric. Kept out of the inline path so the hooks-off SelectUplink
// body stays small; only runs when Hooks != nil.
func (l *Leaf) recordDecision(dstLeaf, choice, port int, active bool, localMetrics, remote []uint8, now sim.Time) {
	reason := telemetry.ReasonNewFlowlet
	switch {
	case active:
		reason = telemetry.ReasonEvicted
	case port >= 0:
		reason = telemetry.ReasonExpired
	}
	age := int64(-1)
	if a, ok := l.ToLeaf.FeedbackAge(dstLeaf, choice, now); ok {
		age = int64(a)
	}
	// Allocated on the first hooked decision, not in NewLeaf, so hooks-off
	// runs stay allocation-identical to a build without the decision plane.
	if cap(l.hookBuf) < len(localMetrics) {
		l.hookBuf = make([]uint8, l.numUplinks)
	}
	buf := l.hookBuf[:len(localMetrics)]
	for i := range localMetrics {
		buf[i] = combine(l.Params.PathMetric, localMetrics[i], remote[i])
	}
	l.Hooks.Decision(now, dstLeaf, choice, reason, age, buf)
}

// OnFabricArrival processes the CONGA header of a packet received from the
// fabric (this leaf is the destination TEP): it stores the path congestion
// in the Congestion-From-Leaf table and applies any piggybacked feedback to
// the Congestion-To-Leaf table.
func (l *Leaf) OnFabricArrival(srcLeaf int, h Header, now sim.Time) {
	l.FromLeaf.Observe(srcLeaf, h.LBTag, h.CE, now)
	if h.FBValid && int(h.FBLBTag) < l.numUplinks {
		l.ToLeaf.Update(srcLeaf, int(h.FBLBTag), h.FBMetric, now)
	}
}

// PrepareHeader builds the CONGA header for a packet this leaf is sending
// to dstLeaf on the given uplink, piggybacking one feedback metric if any
// is pending.
func (l *Leaf) PrepareHeader(dstLeaf, uplink int, vni uint32, now sim.Time) Header {
	h := Header{VNI: vni, LBTag: uint8(uplink)}
	if tag, metric, ok := l.FromLeaf.PickFeedback(dstLeaf, now); ok {
		h.FBValid = true
		h.FBLBTag = tag
		h.FBMetric = metric
	}
	return h
}

// SweepFlowlets runs the periodic age-bit sweep; the owning switch calls it
// every Tfl.
func (l *Leaf) SweepFlowlets() { l.Flowlets.Sweep() }
