package core

import "conga/internal/sim"

// metricAge tracks a quantized congestion metric together with its last
// update time so stale values can decay (§3.3, "metric aging"). A metric
// untouched for AgeTimeout decays linearly to zero over a further
// AgeTimeout, which both prevents routing on stale state and guarantees
// that a path that looked congested is eventually probed again.
type metricAge struct {
	value   uint8
	updated sim.Time
	touched bool
}

func (m *metricAge) set(v uint8, now sim.Time) {
	m.value = v
	m.updated = now
	m.touched = true
}

func (m *metricAge) get(now sim.Time, ageTimeout sim.Time) uint8 {
	if !m.touched || m.value == 0 {
		return 0
	}
	idle := now - m.updated
	if idle <= ageTimeout {
		return m.value
	}
	// Linear decay from full value at ageTimeout to zero at 2·ageTimeout.
	excess := idle - ageTimeout
	if excess >= ageTimeout {
		return 0
	}
	remain := float64(ageTimeout-excess) / float64(ageTimeout)
	return uint8(float64(m.value) * remain)
}

// CongestionToLeaf is the source-side table (§3): for each destination leaf
// and each local uplink it stores the maximum congestion over the fabric
// path(s) that start at that uplink, as learned from feedback. The LB
// decision takes the max of this remote metric and the local uplink DRE.
type CongestionToLeaf struct {
	metrics    [][]metricAge // [destLeaf][uplink]
	ageTimeout sim.Time
}

// NewCongestionToLeaf returns a table covering numLeaves destinations and
// numUplinks local uplinks. Remote metrics start at zero: an unknown path
// is assumed uncongested, which is what makes new paths get probed.
func NewCongestionToLeaf(numLeaves, numUplinks int, p Params) *CongestionToLeaf {
	t := &CongestionToLeaf{
		metrics:    make([][]metricAge, numLeaves),
		ageTimeout: p.AgeTimeout,
	}
	for i := range t.metrics {
		t.metrics[i] = make([]metricAge, numUplinks)
	}
	return t
}

// Update records feedback: the path to destLeaf via uplink has congestion
// metric value.
func (t *CongestionToLeaf) Update(destLeaf, uplink int, value uint8, now sim.Time) {
	t.metrics[destLeaf][uplink].set(value, now)
}

// Metric returns the (aged) remote congestion metric for destLeaf via
// uplink.
func (t *CongestionToLeaf) Metric(destLeaf, uplink int, now sim.Time) uint8 {
	return t.metrics[destLeaf][uplink].get(now, t.ageTimeout)
}

// Metrics fills dst with the aged metrics for every uplink toward destLeaf
// and returns it; dst must have length ≥ the uplink count.
func (t *CongestionToLeaf) Metrics(destLeaf int, now sim.Time, dst []uint8) []uint8 {
	row := t.metrics[destLeaf]
	for i := range row {
		dst[i] = row[i].get(now, t.ageTimeout)
	}
	return dst[:len(row)]
}

// FeedbackAge returns how long ago the entry for destLeaf via uplink last
// received piggybacked feedback (its per-entry update timestamp is written
// only by Update, i.e. the feedback path). ok is false when the entry has
// never been fed back — the decision plane reports such picks as "cold".
func (t *CongestionToLeaf) FeedbackAge(destLeaf, uplink int, now sim.Time) (age sim.Time, ok bool) {
	m := &t.metrics[destLeaf][uplink]
	if !m.touched {
		return 0, false
	}
	return now - m.updated, true
}

// MaxMetric returns the largest aged metric for the given uplink across all
// destination leaves — "how congested do remote paths through this uplink
// look right now". Telemetry samples it per uplink; it reads (and ages)
// metrics but never mutates the table.
func (t *CongestionToLeaf) MaxMetric(uplink int, now sim.Time) uint8 {
	var max uint8
	for i := range t.metrics {
		if v := t.metrics[i][uplink].get(now, t.ageTimeout); v > max {
			max = v
		}
	}
	return max
}

// Uplinks returns the number of local uplinks the table covers.
func (t *CongestionToLeaf) Uplinks() int {
	if len(t.metrics) == 0 {
		return 0
	}
	return len(t.metrics[0])
}

// CongestionFromLeaf is the destination-side table (§3.3 step 3): per
// source leaf, per LBTag, the latest CE metric seen on arriving packets,
// waiting to be piggybacked back to that source. The table also tracks
// which entries changed since they were last fed back so feedback selection
// can favour fresh information.
type CongestionFromLeaf struct {
	metrics [][]metricAge // [srcLeaf][lbTag]
	changed [][]bool
	nChg    []int // per-srcLeaf count of set changed bits, so HasChanged is O(1)
	rr      []int // per-srcLeaf round-robin cursor
	ageOut  sim.Time
}

// NewCongestionFromLeaf returns a table covering numLeaves sources and
// numTags LBTag values.
func NewCongestionFromLeaf(numLeaves, numTags int, p Params) *CongestionFromLeaf {
	t := &CongestionFromLeaf{
		metrics: make([][]metricAge, numLeaves),
		changed: make([][]bool, numLeaves),
		nChg:    make([]int, numLeaves),
		rr:      make([]int, numLeaves),
		ageOut:  p.AgeTimeout,
	}
	for i := range t.metrics {
		t.metrics[i] = make([]metricAge, numTags)
		t.changed[i] = make([]bool, numTags)
	}
	return t
}

// Observe records the CE metric of a packet that arrived from srcLeaf with
// the given LBTag.
func (t *CongestionFromLeaf) Observe(srcLeaf int, lbTag uint8, ce uint8, now sim.Time) {
	m := &t.metrics[srcLeaf][lbTag]
	if (!m.touched || m.value != ce) && !t.changed[srcLeaf][lbTag] {
		t.changed[srcLeaf][lbTag] = true
		t.nChg[srcLeaf]++
	}
	m.set(ce, now)
}

// PickFeedback selects one (LBTag, metric) pair to piggyback on a packet
// going to dstLeaf (the leaf that originally sent us the observed traffic).
// Selection is round-robin over LBTags, favouring entries whose value has
// changed since they were last fed back (§3.3 step 4). It returns ok=false
// when nothing has ever been observed from that leaf.
func (t *CongestionFromLeaf) PickFeedback(dstLeaf int, now sim.Time) (lbTag uint8, metric uint8, ok bool) {
	row := t.metrics[dstLeaf]
	n := len(row)
	start := t.rr[dstLeaf]
	// First pass: the next changed entry in round-robin order. The nChg
	// counter says whether the row has any changed entry at all, which in
	// steady state (metrics stable between feedback rounds) skips the scan
	// entirely — this runs for every data packet leaving the leaf.
	if t.nChg[dstLeaf] > 0 {
		ch := t.changed[dstLeaf]
		for i, j := 0, start; i < n; i++ {
			if row[j].touched && ch[j] {
				return t.emit(dstLeaf, j, now)
			}
			if j++; j == n {
				j = 0
			}
		}
	}
	// Second pass: plain round-robin over touched entries, so metrics keep
	// refreshing (and re-arm aging) even in steady state.
	for i, j := 0, start; i < n; i++ {
		if row[j].touched {
			return t.emit(dstLeaf, j, now)
		}
		if j++; j == n {
			j = 0
		}
	}
	return 0, 0, false
}

// HasChanged reports whether any metric observed from srcLeaf has changed
// since it was last fed back — i.e. whether feedback toward that leaf is
// worth sending explicitly when no reverse traffic exists.
func (t *CongestionFromLeaf) HasChanged(srcLeaf int) bool {
	// A changed bit is only ever set together with touched (Observe), so
	// the counter alone answers the question.
	return t.nChg[srcLeaf] > 0
}

func (t *CongestionFromLeaf) emit(leaf, j int, now sim.Time) (uint8, uint8, bool) {
	t.rr[leaf] = (j + 1) % len(t.metrics[leaf])
	if t.changed[leaf][j] {
		t.changed[leaf][j] = false
		t.nChg[leaf]--
	}
	return uint8(j), t.metrics[leaf][j].get(now, t.ageOut), true
}
