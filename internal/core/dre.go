package core

// DRE is the Discounting Rate Estimator from §3.2: a single register X that
// is incremented by the packet size on every transmission over the link and
// decremented periodically (every TDRE) by a multiplicative factor
// X ← X·(1−α). If the traffic rate is R, then X ≈ R·τ with τ = TDRE/α; the
// congestion metric for the link is X/(C·τ) quantized to Q bits.
//
// Compared to an EWMA, the DRE needs one register instead of two and reacts
// immediately to bursts (increments happen on packet arrival, not on timer
// boundaries) while still retaining memory of past bursts.
//
// The caller drives time: the owning switch calls Add on every transmitted
// packet and Decay from a TDRE-period ticker. DRE itself holds no timers, so
// it can also be unit-tested and reused outside the simulator.
type DRE struct {
	x        float64 // the single ASIC register, in bytes
	scale    float64 // C·τ in bytes: link capacity × time constant
	alpha    float64
	quantLvl float64 // 2^Q
	maxQ     uint8   // 2^Q − 1
}

// NewDRE returns a DRE for a link of capacityBps bits per second, with the
// given parameters. It panics on a non-positive capacity because a DRE with
// no normalization scale would quantize everything to the maximum metric.
func NewDRE(capacityBps float64, p Params) *DRE {
	if capacityBps <= 0 {
		panic("core: DRE requires positive link capacity")
	}
	tauSec := p.Tau().Seconds()
	return &DRE{
		scale:    capacityBps / 8 * tauSec,
		alpha:    p.Alpha,
		quantLvl: float64(int(1) << p.Q),
		maxQ:     p.MaxMetric(),
	}
}

// Add records the transmission of a packet of the given wire size in bytes.
func (d *DRE) Add(bytes int) { d.x += float64(bytes) }

// dreEpsilon is the register value, in bytes, below which Decay snaps to
// exactly zero. Pure multiplicative decay only approaches zero, which would
// keep an idle link on the fabric's decay dirty-list forever; snapping lets
// the ticker drop it. With α = 1/8 a register holding one 9 KB packet
// reaches the threshold after ~170 decay periods (≈ 3.5 ms at the default
// TDRE), long after the value stopped mattering: the smallest nonzero
// quantized metric needs X ≥ C·τ/2^Q, which is ≥ tens of kilobytes for any
// realistic link.
const dreEpsilon = 1e-6

// Decay applies the periodic multiplicative decrement X ← X·(1−α). The
// owning switch calls it every TDRE.
func (d *DRE) Decay() {
	d.x *= 1 - d.alpha
	if d.x < dreEpsilon {
		d.x = 0
	}
}

// Active reports whether the register is nonzero, i.e. whether future
// Decay calls would still change it.
func (d *DRE) Active() bool { return d.x != 0 }

// X returns the current register value in bytes, exposed for tests and for
// debugging counters.
func (d *DRE) X() float64 { return d.x }

// Utilization returns the estimated link utilization X/(C·τ). Values above
// 1 are possible transiently when a burst arrives faster than the decay
// drains it; Quantized clamps them.
func (d *DRE) Utilization() float64 { return d.x / d.scale }

// Quantized returns the Q-bit congestion metric: floor(X/(C·τ) · 2^Q),
// clamped to [0, 2^Q−1].
func (d *DRE) Quantized() uint8 {
	q := d.Utilization() * d.quantLvl
	if q >= float64(d.maxQ) {
		return d.maxQ
	}
	if q <= 0 {
		return 0
	}
	return uint8(q)
}

// Reset clears the register, as on link flap.
func (d *DRE) Reset() { d.x = 0 }
