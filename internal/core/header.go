package core

import "fmt"

// CONGA piggybacks its congestion state on the VXLAN overlay header (§3.1).
// The standard VXLAN header is 8 bytes:
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|R|R|R|R|I|R|R|R|            Reserved                           |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|                VXLAN Network Identifier (VNI) |   Reserved    |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// CONGA repurposes reserved bits to carry four fields: LBTag (4 bits), CE
// (3 bits), FB_LBTag (4 bits) and FB_Metric (3 bits), plus one flag marking
// the feedback fields as valid. This file packs them into the first
// reserved region so the header stays a valid 8-byte VXLAN header:
//
//	byte 0: flags (0x08 = I bit, VNI valid)
//	byte 1: LBTag(4) | CE(3) | FBValid(1)
//	byte 2: FB_LBTag(4) | FB_Metric(3) | reserved(1)
//	byte 3: reserved
//	bytes 4..6: VNI
//	byte 7: reserved

// HeaderLen is the encoded size of the CONGA/VXLAN overlay header in bytes.
const HeaderLen = 8

// EncapOverhead is the total per-packet overlay encapsulation overhead on
// fabric links: outer Ethernet (18) + outer IPv4 (20) + outer UDP (8) +
// VXLAN/CONGA header (8), matching a standard VXLAN deployment.
const EncapOverhead = 18 + 20 + 8 + HeaderLen

// maxLBTag and maxCE are the largest values representable in the wire
// format's 4-bit tag and 3-bit metric fields.
const (
	maxLBTag = 15
	maxCE    = 7
)

const flagVNIValid = 0x08

// Header is the decoded CONGA overlay header.
type Header struct {
	// VNI is the 24-bit VXLAN network identifier of the tenant overlay.
	VNI uint32
	// LBTag partially identifies the packet's path: the source leaf sets
	// it to the uplink port number the packet was sent on (§3.1).
	LBTag uint8
	// CE carries the extent of congestion seen so far on the packet's
	// path: the maximum DRE metric over traversed links (§3.3 step 2).
	CE uint8
	// FBValid reports whether the FB fields carry a metric. The paper
	// assumes every packet carries feedback; a fresh leaf pair has
	// nothing to feed back yet, so a validity flag is required in
	// practice.
	FBValid bool
	// FBLBTag says which LBTag the piggybacked feedback is for.
	FBLBTag uint8
	// FBMetric is the congestion metric being fed back for FBLBTag.
	FBMetric uint8
}

// Validate reports whether all fields fit the wire format.
func (h Header) Validate() error {
	switch {
	case h.VNI >= 1<<24:
		return fmt.Errorf("core: VNI %d exceeds 24 bits", h.VNI)
	case h.LBTag > maxLBTag:
		return fmt.Errorf("core: LBTag %d exceeds 4 bits", h.LBTag)
	case h.CE > maxCE:
		return fmt.Errorf("core: CE %d exceeds 3 bits", h.CE)
	case h.FBLBTag > maxLBTag:
		return fmt.Errorf("core: FB_LBTag %d exceeds 4 bits", h.FBLBTag)
	case h.FBMetric > maxCE:
		return fmt.Errorf("core: FB_Metric %d exceeds 3 bits", h.FBMetric)
	}
	return nil
}

// Encode appends the 8-byte wire representation to dst and returns the
// extended slice. It returns an error if any field overflows its bit width.
func (h Header) Encode(dst []byte) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return dst, err
	}
	var b [HeaderLen]byte
	b[0] = flagVNIValid
	b[1] = h.LBTag<<4 | h.CE<<1
	if h.FBValid {
		b[1] |= 1
	}
	b[2] = h.FBLBTag<<4 | h.FBMetric<<1
	b[4] = byte(h.VNI >> 16)
	b[5] = byte(h.VNI >> 8)
	b[6] = byte(h.VNI)
	return append(dst, b[:]...), nil
}

// DecodeHeader parses the first 8 bytes of buf.
func DecodeHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderLen {
		return Header{}, fmt.Errorf("core: header truncated: %d bytes, need %d", len(buf), HeaderLen)
	}
	if buf[0]&flagVNIValid == 0 {
		return Header{}, fmt.Errorf("core: VXLAN I flag not set (byte 0 = %#02x)", buf[0])
	}
	h := Header{
		LBTag:    buf[1] >> 4,
		CE:       buf[1] >> 1 & maxCE,
		FBValid:  buf[1]&1 != 0,
		FBLBTag:  buf[2] >> 4,
		FBMetric: buf[2] >> 1 & maxCE,
		VNI:      uint32(buf[4])<<16 | uint32(buf[5])<<8 | uint32(buf[6]),
	}
	return h, nil
}
