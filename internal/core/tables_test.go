package core

import (
	"testing"

	"conga/internal/sim"
)

func TestCongestionToLeafStoresAndReads(t *testing.T) {
	p := testParams()
	ct := NewCongestionToLeaf(4, 4, p)
	ct.Update(2, 1, 5, 0)
	if got := ct.Metric(2, 1, 0); got != 5 {
		t.Fatalf("metric = %d, want 5", got)
	}
	if got := ct.Metric(2, 0, 0); got != 0 {
		t.Fatalf("untouched metric = %d, want 0", got)
	}
}

func TestCongestionToLeafAging(t *testing.T) {
	p := testParams() // AgeTimeout = 10ms
	ct := NewCongestionToLeaf(2, 2, p)
	ct.Update(0, 0, 6, 0)
	age := p.AgeTimeout

	// Within the age timeout: full value.
	if got := ct.Metric(0, 0, age); got != 6 {
		t.Fatalf("metric at exactly AgeTimeout = %d, want 6", got)
	}
	// Halfway through the decay window: roughly half.
	got := ct.Metric(0, 0, age+age/2)
	if got != 3 {
		t.Fatalf("metric halfway through decay = %d, want 3", got)
	}
	// Past 2× AgeTimeout: zero, guaranteeing stale paths get re-probed.
	if got := ct.Metric(0, 0, 2*age+1); got != 0 {
		t.Fatalf("metric after decay window = %d, want 0", got)
	}
}

func TestCongestionToLeafUpdateResetsAge(t *testing.T) {
	p := testParams()
	ct := NewCongestionToLeaf(1, 1, p)
	ct.Update(0, 0, 7, 0)
	ct.Update(0, 0, 7, p.AgeTimeout) // refresh at the boundary
	if got := ct.Metric(0, 0, 2*p.AgeTimeout-1); got != 7 {
		t.Fatalf("refreshed metric decayed early: %d, want 7", got)
	}
}

func TestCongestionToLeafMetricsBatch(t *testing.T) {
	p := testParams()
	ct := NewCongestionToLeaf(2, 3, p)
	ct.Update(1, 0, 1, 0)
	ct.Update(1, 2, 7, 0)
	buf := make([]uint8, 3)
	got := ct.Metrics(1, 0, buf)
	want := []uint8{1, 0, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Metrics = %v, want %v", got, want)
		}
	}
}

func TestCongestionFromLeafObserveAndFeedback(t *testing.T) {
	p := testParams()
	cf := NewCongestionFromLeaf(2, 4, p)
	cf.Observe(1, 2, 6, 0)
	tag, metric, ok := cf.PickFeedback(1, 0)
	if !ok || tag != 2 || metric != 6 {
		t.Fatalf("feedback = (%d, %d, %v), want (2, 6, true)", tag, metric, ok)
	}
}

func TestCongestionFromLeafNoFeedbackWhenEmpty(t *testing.T) {
	cf := NewCongestionFromLeaf(2, 4, testParams())
	if _, _, ok := cf.PickFeedback(0, 0); ok {
		t.Fatal("feedback available from a leaf never observed")
	}
}

// TestCongestionFromLeafFavoursChanged checks the §3.3 optimization: a
// changed metric is fed back before unchanged ones, regardless of
// round-robin position.
func TestCongestionFromLeafFavoursChanged(t *testing.T) {
	p := testParams()
	cf := NewCongestionFromLeaf(1, 4, p)
	for tag := uint8(0); tag < 4; tag++ {
		cf.Observe(0, tag, 1, 0)
	}
	// Drain all four as changed once.
	seen := map[uint8]bool{}
	for i := 0; i < 4; i++ {
		tag, _, ok := cf.PickFeedback(0, 0)
		if !ok {
			t.Fatal("feedback dried up")
		}
		seen[tag] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first four feedbacks covered %d tags, want 4", len(seen))
	}
	// Now change only tag 3; it must be picked next even though the
	// round-robin cursor points elsewhere.
	cf.Observe(0, 3, 5, 0)
	tag, metric, ok := cf.PickFeedback(0, 0)
	if !ok || tag != 3 || metric != 5 {
		t.Fatalf("changed entry not favoured: got (%d, %d, %v)", tag, metric, ok)
	}
}

// TestCongestionFromLeafRoundRobinWhenUnchanged checks that with no changed
// entries, feedback still cycles through all touched tags so they keep
// refreshing at the source.
func TestCongestionFromLeafRoundRobinWhenUnchanged(t *testing.T) {
	p := testParams()
	cf := NewCongestionFromLeaf(1, 4, p)
	cf.Observe(0, 0, 1, 0)
	cf.Observe(0, 2, 2, 0)
	// Drain changed flags.
	cf.PickFeedback(0, 0)
	cf.PickFeedback(0, 0)
	// Subsequent picks alternate between tags 0 and 2.
	got := []uint8{}
	for i := 0; i < 4; i++ {
		tag, _, ok := cf.PickFeedback(0, 0)
		if !ok {
			t.Fatal("steady-state feedback stopped")
		}
		got = append(got, tag)
	}
	if got[0] == got[1] || got[2] == got[3] {
		t.Fatalf("round robin not alternating: %v", got)
	}
}

func TestCongestionFromLeafSameValueNotChanged(t *testing.T) {
	p := testParams()
	cf := NewCongestionFromLeaf(1, 2, p)
	cf.Observe(0, 0, 4, 0)
	cf.PickFeedback(0, 0) // clears changed
	cf.Observe(0, 0, 4, 0)
	cf.Observe(0, 1, 1, 0) // a genuinely new entry
	tag, _, _ := cf.PickFeedback(0, 0)
	if tag != 1 {
		t.Fatalf("re-observing an identical value beat a changed entry: picked %d", tag)
	}
}

func TestCongestionFromLeafIsolatesSourceLeaves(t *testing.T) {
	cf := NewCongestionFromLeaf(3, 4, testParams())
	cf.Observe(1, 0, 7, 0)
	if _, _, ok := cf.PickFeedback(2, 0); ok {
		t.Fatal("feedback for leaf 2 produced from leaf 1's observations")
	}
}

// TestCongestionToLeafFeedbackAge pins the decision plane's staleness
// source: age counts from the last Update (the piggybacked feedback), and
// an entry that never received feedback reports ok=false (cold).
func TestCongestionToLeafFeedbackAge(t *testing.T) {
	p := testParams()
	ct := NewCongestionToLeaf(2, 2, p)
	if _, ok := ct.FeedbackAge(0, 0, 5*sim.Millisecond); ok {
		t.Fatal("untouched entry reported a feedback age")
	}
	ct.Update(0, 1, 3, 2*sim.Millisecond)
	age, ok := ct.FeedbackAge(0, 1, 5*sim.Millisecond)
	if !ok || age != 3*sim.Millisecond {
		t.Fatalf("age = (%v, %v), want (3ms, true)", age, ok)
	}
	ct.Update(0, 1, 3, 6*sim.Millisecond) // refresh resets the clock
	if age, _ := ct.FeedbackAge(0, 1, 6*sim.Millisecond); age != 0 {
		t.Fatalf("refreshed age = %v, want 0", age)
	}
}

func TestMetricAgeZeroValueNeverDecaysUpward(t *testing.T) {
	var m metricAge
	m.set(0, 0)
	for _, at := range []sim.Time{0, 5 * sim.Millisecond, 50 * sim.Millisecond} {
		if got := m.get(at, 10*sim.Millisecond); got != 0 {
			t.Fatalf("zero metric aged to %d", got)
		}
	}
}
