package core

// EWMA is the classical exponentially-weighted moving-average rate
// estimator that §3.2 compares the DRE against: it samples the byte count
// over each timer period and smooths it. It needs two registers (the
// accumulator and the average) where the DRE needs one, and it only
// reflects a burst after the period boundary, while the DRE's register
// jumps the moment the burst's bytes are added.
//
// It exists for the DESIGN.md ablation reproducing the paper's claim; the
// fabric always uses the DRE.
type EWMA struct {
	bucket float64 // bytes accumulated in the current period
	avg    float64 // smoothed bytes-per-period
	alpha  float64
	scale  float64 // C·Tdre in bytes: full-rate bytes per period
	quant  float64
	maxQ   uint8
}

// NewEWMA returns an estimator for a link of capacityBps using the same α,
// period and quantization as the DRE would.
func NewEWMA(capacityBps float64, p Params) *EWMA {
	if capacityBps <= 0 {
		panic("core: EWMA requires positive link capacity")
	}
	return &EWMA{
		alpha: p.Alpha,
		scale: capacityBps / 8 * p.TDRE.Seconds(),
		quant: float64(int(1) << p.Q),
		maxQ:  p.MaxMetric(),
	}
}

// Add records a transmitted packet's bytes.
func (e *EWMA) Add(bytes int) { e.bucket += float64(bytes) }

// Tick closes the current period: avg ← α·bucket + (1−α)·avg.
func (e *EWMA) Tick() {
	e.avg = e.alpha*e.bucket + (1-e.alpha)*e.avg
	e.bucket = 0
}

// Utilization returns the smoothed utilization estimate.
func (e *EWMA) Utilization() float64 { return e.avg / e.scale }

// Quantized returns the Q-bit congestion metric.
func (e *EWMA) Quantized() uint8 {
	q := e.Utilization() * e.quant
	if q >= float64(e.maxQ) {
		return e.maxQ
	}
	if q <= 0 {
		return 0
	}
	return uint8(q)
}
