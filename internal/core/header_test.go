package core

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{VNI: 0xABCDEF, LBTag: 11, CE: 5, FBValid: true, FBLBTag: 3, FBMetric: 7}
	buf, err := h.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen {
		t.Fatalf("encoded length %d, want %d", len(buf), HeaderLen)
	}
	got, err := DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: got %+v, want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	err := quick.Check(func(vni uint32, lbTag, ce, fbTag, fbMetric uint8, fbValid bool) bool {
		h := Header{
			VNI:      vni & 0xFFFFFF,
			LBTag:    lbTag & maxLBTag,
			CE:       ce & maxCE,
			FBValid:  fbValid,
			FBLBTag:  fbTag & maxLBTag,
			FBMetric: fbMetric & maxCE,
		}
		buf, err := h.Encode(nil)
		if err != nil {
			return false
		}
		got, err := DecodeHeader(buf)
		return err == nil && got == h
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderEncodeRejectsOverflow(t *testing.T) {
	cases := []Header{
		{VNI: 1 << 24},
		{LBTag: 16},
		{CE: 8},
		{FBLBTag: 16},
		{FBMetric: 8},
	}
	for i, h := range cases {
		if _, err := h.Encode(nil); err == nil {
			t.Errorf("case %d: overflowing header encoded without error", i)
		}
	}
}

func TestHeaderDecodeRejectsShortBuffer(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 7)); err == nil {
		t.Fatal("short buffer decoded")
	}
}

func TestHeaderDecodeRequiresIFlag(t *testing.T) {
	buf := make([]byte, HeaderLen)
	if _, err := DecodeHeader(buf); err == nil {
		t.Fatal("header without I flag decoded")
	}
}

func TestHeaderEncodeAppends(t *testing.T) {
	prefix := []byte{0xDE, 0xAD}
	buf, err := Header{VNI: 7}.Encode(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 2+HeaderLen || buf[0] != 0xDE || buf[1] != 0xAD {
		t.Fatalf("Encode did not append: %x", buf)
	}
	if _, err := DecodeHeader(buf[2:]); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderIsValidVXLAN(t *testing.T) {
	// With all CONGA fields zero the header must be a canonical VXLAN
	// header: flags byte 0x08, VNI in bytes 4..6, everything else zero.
	buf, err := Header{VNI: 0x123456}.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x08, 0, 0, 0, 0x12, 0x34, 0x56, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("byte %d = %#02x, want %#02x (buf %x)", i, buf[i], want[i], buf)
		}
	}
}

func TestEncapOverheadMatchesVXLANStack(t *testing.T) {
	// Outer Ethernet 18 + IPv4 20 + UDP 8 + VXLAN 8 = 54.
	if EncapOverhead != 54 {
		t.Fatalf("EncapOverhead = %d, want 54", EncapOverhead)
	}
}
