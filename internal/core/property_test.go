package core

import (
	"testing"
	"testing/quick"

	"conga/internal/sim"
)

// TestDecideAlwaysPicksAMinimum: for arbitrary metric vectors, the chosen
// uplink's max(local, remote) equals the global minimum over allowed
// uplinks.
func TestDecideAlwaysPicksAMinimum(t *testing.T) {
	rng := sim.NewRand(1)
	err := quick.Check(func(localRaw, remoteRaw [8]uint8, allowedRaw uint8, preferred int8) bool {
		local := make([]uint8, 8)
		remote := make([]uint8, 8)
		allowed := make([]bool, 8)
		anyAllowed := false
		for i := 0; i < 8; i++ {
			local[i] = localRaw[i] % 8
			remote[i] = remoteRaw[i] % 8
			allowed[i] = allowedRaw>>uint(i)&1 == 1
			anyAllowed = anyAllowed || allowed[i]
		}
		choice := Decide(local, remote, allowed, int(preferred)%8, rng)
		if !anyAllowed {
			return choice == -1
		}
		if choice < 0 || choice >= 8 || !allowed[choice] {
			return false
		}
		chosen := max8(local[choice], remote[choice])
		for i := 0; i < 8; i++ {
			if allowed[i] && max8(local[i], remote[i]) < chosen {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

// TestDREMonotoneInTraffic: more bytes never yields a smaller register or
// quantized metric.
func TestDREMonotoneInTraffic(t *testing.T) {
	err := quick.Check(func(addsRaw [16]uint16) bool {
		p := DefaultParams()
		a := NewDRE(10e9, p)
		b := NewDRE(10e9, p)
		for i, v := range addsRaw {
			a.Add(int(v))
			b.Add(int(v) + 100) // b always sees more traffic
			if i%4 == 3 {
				a.Decay()
				b.Decay()
			}
			if b.X() < a.X() || b.Quantized() < a.Quantized() {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlowletTableLookupInstallAgree: whatever hash is installed is
// returned active with the same port on an immediate lookup.
func TestFlowletTableLookupInstallAgree(t *testing.T) {
	p := DefaultParams()
	p.FlowletTableSize = 512
	for _, mode := range []GapMode{GapModeAgeBit, GapModeTimestamp} {
		p.GapMode = mode
		ft := NewFlowletTable(p)
		err := quick.Check(func(hash uint64, portRaw uint8) bool {
			port := int(portRaw % 16)
			ft.Install(hash, port, 0)
			got, active := ft.Lookup(hash, 0)
			return active && got == port
		}, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

// TestCongestionFromLeafFeedbackEventuallyCoversAll: every observed tag is
// fed back within one full rotation.
func TestCongestionFromLeafFeedbackEventuallyCoversAll(t *testing.T) {
	p := DefaultParams()
	cf := NewCongestionFromLeaf(1, 12, p)
	want := map[uint8]bool{}
	for tag := uint8(0); tag < 12; tag++ {
		cf.Observe(0, tag, tag%8, 0)
		want[tag] = true
	}
	for i := 0; i < 12; i++ {
		tag, _, ok := cf.PickFeedback(0, 0)
		if !ok {
			t.Fatal("feedback dried up early")
		}
		delete(want, tag)
	}
	if len(want) != 0 {
		t.Fatalf("tags never fed back: %v", want)
	}
}

// TestMetricAgingMonotoneDecay: once updates stop, the aged metric never
// increases over time.
func TestMetricAgingMonotoneDecay(t *testing.T) {
	p := DefaultParams()
	ct := NewCongestionToLeaf(1, 1, p)
	ct.Update(0, 0, 7, 0)
	prev := uint8(7)
	for at := sim.Time(0); at < 4*p.AgeTimeout; at += p.AgeTimeout / 8 {
		v := ct.Metric(0, 0, at)
		if v > prev {
			t.Fatalf("metric rose from %d to %d at %v", prev, v, at)
		}
		prev = v
	}
	if prev != 0 {
		t.Fatalf("metric never decayed to zero: %d", prev)
	}
}

// TestLeafDeterministicGivenSeed: identical call sequences on two leaves
// with equal seeds produce identical decisions.
func TestLeafDeterministicGivenSeed(t *testing.T) {
	p := DefaultParams()
	p.FlowletTableSize = 256
	mk := func() *Leaf { return NewLeaf(0, 4, 4, p, sim.NewRand(33)) }
	a, b := mk(), mk()
	rng := sim.NewRand(5)
	local := make([]uint8, 4)
	for i := 0; i < 3000; i++ {
		for j := range local {
			local[j] = uint8(rng.Intn(8))
		}
		hash := rng.Uint64()
		dst := 1 + rng.Intn(3)
		now := sim.Time(i) * 10 * sim.Microsecond
		ua, na := a.SelectUplink(hash, dst, local, nil, now)
		ub, nb := b.SelectUplink(hash, dst, local, nil, now)
		if ua != ub || na != nb {
			t.Fatalf("divergence at step %d: (%d,%v) vs (%d,%v)", i, ua, na, ub, nb)
		}
	}
}
