// Package core implements the CONGA load-balancing algorithm exactly as
// specified in §3 of "CONGA: Distributed Congestion-Aware Load Balancing for
// Datacenters" (Alizadeh et al., SIGCOMM 2014): the Discounting Rate
// Estimator, the flowlet table with valid/age bits, the Congestion-To-Leaf
// and Congestion-From-Leaf tables, opportunistic leaf-to-leaf feedback, and
// the per-flowlet load-balancing decision.
//
// The package is a pure algorithmic model of the paper's leaf/spine ASIC
// datapath. It has no notion of packets in flight or links — the fabric
// simulator (internal/fabric) feeds it observations and asks it for
// decisions, which mirrors how the ASIC pipeline hands the CONGA block
// header fields and receives an uplink selection.
package core

import (
	"fmt"

	"conga/internal/sim"
)

// GapMode selects how the flowlet table detects inactivity gaps.
type GapMode int

const (
	// GapModeAgeBit reproduces the ASIC mechanism from §3.4: one age bit
	// per entry and a periodic sweep every Tfl, which detects gaps between
	// Tfl and 2·Tfl.
	GapModeAgeBit GapMode = iota
	// GapModeTimestamp stores a full last-activity timestamp per entry and
	// detects gaps of exactly Tfl. It is what a software implementation
	// would do; it exists to quantify the cost of the ASIC's one-bit
	// approximation (an ablation in the benchmark harness) and to run very
	// large simulations without paying for table sweeps.
	GapModeTimestamp
)

func (m GapMode) String() string {
	switch m {
	case GapModeAgeBit:
		return "agebit"
	case GapModeTimestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("GapMode(%d)", int(m))
	}
}

// PathMetric selects how per-link congestion composes into a path metric.
type PathMetric int

const (
	// PathMetricMax is the paper's choice: the CE field carries the
	// maximum link metric along the path, emphasizing the bottleneck and
	// needing no extra header bits (§7, "Other path metrics").
	PathMetricMax PathMetric = iota
	// PathMetricSum accumulates link metrics with saturating addition.
	// In theory the sum metric has a better worst-case Price of Anarchy
	// (4/3 vs 2); the paper rejects it because it needs wider header
	// fields — here the 3-bit field simply saturates, which is the
	// honest hardware-constrained version. Provided for the DESIGN.md
	// ablation.
	PathMetricSum
)

func (m PathMetric) String() string {
	if m == PathMetricSum {
		return "sum"
	}
	return "max"
}

// Params holds the CONGA configuration knobs from §3.6. The zero value is
// not valid; start from DefaultParams.
type Params struct {
	// Q is the number of bits used to quantize congestion metrics. The
	// paper explores Q = 3..6 and ships Q = 3.
	Q int

	// TDRE is the period of the DRE decay timer.
	TDRE sim.Time

	// Alpha is the DRE multiplicative decay factor; the DRE time constant
	// is τ = TDRE/Alpha. The paper default is τ = 160 µs.
	Alpha float64

	// Tfl is the flowlet inactivity timeout. The paper default is 500 µs;
	// CONGA-Flow uses 13 ms (greater than the maximum path latency in the
	// testbed), which turns CONGA into one decision per flow.
	Tfl sim.Time

	// AgeTimeout is how long a congestion metric may go without an update
	// before it starts to decay toward zero (§3.3, "metric aging"). The
	// paper suggests 10 ms.
	AgeTimeout sim.Time

	// FlowletTableSize is the number of entries in the flowlet hash table.
	// The implementation in the paper's Leaf ASIC holds 64K entries.
	FlowletTableSize int

	// MaxUplinks bounds the LBTag space. The wire format carries a 4-bit
	// LBTag, so this may not exceed 16; the paper's hardware uses at most
	// 12 uplinks.
	MaxUplinks int

	// GapMode selects the flowlet gap-detection mechanism.
	GapMode GapMode

	// PathMetric selects max (paper default) or saturating-sum path
	// congestion composition.
	PathMetric PathMetric
}

// DefaultParams returns the paper's default configuration: Q = 3,
// τ = 160 µs (TDRE = 20 µs, α = 1/8), Tfl = 500 µs, 10 ms metric aging, and
// a 64K-entry flowlet table.
func DefaultParams() Params {
	return Params{
		Q:                3,
		TDRE:             20 * sim.Microsecond,
		Alpha:            0.125,
		Tfl:              500 * sim.Microsecond,
		AgeTimeout:       10 * sim.Millisecond,
		FlowletTableSize: 64 * 1024,
		MaxUplinks:       16,
		GapMode:          GapModeAgeBit,
	}
}

// CongaFlowParams returns the CONGA-Flow variant from §5: identical to
// CONGA except the flowlet timeout exceeds the maximum path latency (13 ms
// in the paper's testbed), so every flow makes exactly one — but still
// congestion-aware — path decision.
func CongaFlowParams() Params {
	p := DefaultParams()
	p.Tfl = 13 * sim.Millisecond
	return p
}

// Tau returns the DRE time constant τ = TDRE/α.
func (p Params) Tau() sim.Time {
	return sim.Time(float64(p.TDRE) / p.Alpha)
}

// MaxMetric returns the largest representable quantized congestion metric,
// 2^Q − 1.
func (p Params) MaxMetric() uint8 { return uint8(1<<p.Q - 1) }

// Validate reports the first configuration error, if any.
func (p Params) Validate() error {
	switch {
	case p.Q < 1 || p.Q > 6:
		return fmt.Errorf("core: Q = %d out of range [1, 6]", p.Q)
	case p.TDRE <= 0:
		return fmt.Errorf("core: TDRE = %v must be positive", p.TDRE)
	case p.Alpha <= 0 || p.Alpha >= 1:
		return fmt.Errorf("core: Alpha = %v out of range (0, 1)", p.Alpha)
	case p.Tfl <= 0:
		return fmt.Errorf("core: Tfl = %v must be positive", p.Tfl)
	case p.AgeTimeout <= 0:
		return fmt.Errorf("core: AgeTimeout = %v must be positive", p.AgeTimeout)
	case p.FlowletTableSize <= 0:
		return fmt.Errorf("core: FlowletTableSize = %d must be positive", p.FlowletTableSize)
	case p.MaxUplinks < 1 || p.MaxUplinks > maxLBTag+1:
		return fmt.Errorf("core: MaxUplinks = %d out of range [1, %d]", p.MaxUplinks, maxLBTag+1)
	case p.GapMode != GapModeAgeBit && p.GapMode != GapModeTimestamp:
		return fmt.Errorf("core: unknown GapMode %d", p.GapMode)
	case p.PathMetric != PathMetricMax && p.PathMetric != PathMetricSum:
		return fmt.Errorf("core: unknown PathMetric %d", p.PathMetric)
	}
	if p.Q > 3 {
		// The VXLAN header layout reserves exactly 3 bits for CE and
		// FB_Metric. Larger Q is allowed for simulation studies (§3.6
		// explores Q up to 6) but cannot be carried in the standard
		// header, so flag it where the caller can decide.
		// It is still a valid configuration for the in-memory model.
		_ = p.Q
	}
	return nil
}
