package core

import (
	"math"
	"testing"

	"conga/internal/sim"
)

func testParams() Params {
	p := DefaultParams()
	p.FlowletTableSize = 1024
	return p
}

func TestDREStartsAtZero(t *testing.T) {
	d := NewDRE(10e9, testParams())
	if d.X() != 0 || d.Quantized() != 0 || d.Utilization() != 0 {
		t.Fatalf("fresh DRE not zero: X=%v Q=%d U=%v", d.X(), d.Quantized(), d.Utilization())
	}
}

func TestDREPanicsOnNonPositiveCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDRE(0) did not panic")
		}
	}()
	NewDRE(0, testParams())
}

// TestDREConvergesToRate checks the §3.2 claim X ≈ R·τ: feed packets at a
// steady rate R and verify X converges to R·τ within a few time constants.
func TestDREConvergesToRate(t *testing.T) {
	p := testParams()
	const capacity = 10e9 // 10 Gbps
	for _, loadFrac := range []float64{0.1, 0.5, 0.9} {
		d := NewDRE(capacity, p)
		rate := loadFrac * capacity / 8 // bytes/sec
		const pktBytes = 1500
		interval := float64(pktBytes) / rate // seconds between packets
		tdreSec := p.TDRE.Seconds()
		// Simulate 20 time constants of steady traffic.
		dur := 20 * p.Tau().Seconds()
		nextDecay := tdreSec
		for now := 0.0; now < dur; now += interval {
			for nextDecay <= now {
				d.Decay()
				nextDecay += tdreSec
			}
			d.Add(pktBytes)
		}
		// In discrete time the register saw-tooths between (1−α)·R·τ just
		// after a decay and R·τ just before the next one, so accept the
		// whole band (α = 1/8 → ±12.5%).
		wantX := rate * p.Tau().Seconds()
		if d.X() < (1-p.Alpha)*wantX*0.98 || d.X() > wantX*1.02 {
			t.Errorf("load %.0f%%: X = %.0f, want in [%.0f, %.0f] (R·τ band)",
				loadFrac*100, d.X(), (1-p.Alpha)*wantX, wantX)
		}
		if u := d.Utilization(); u < loadFrac*(1-p.Alpha)*0.98 || u > loadFrac*1.02 {
			t.Errorf("load %.0f%%: utilization %.3f outside band around %.3f", loadFrac*100, u, loadFrac)
		}
	}
}

func TestDREQuantization(t *testing.T) {
	p := testParams() // Q = 3 → metrics 0..7
	d := NewDRE(10e9, p)
	scale := 10e9 / 8 * p.Tau().Seconds() // C·τ bytes
	cases := []struct {
		util float64
		want uint8
	}{
		{0, 0},
		{0.10, 0},   // floor(0.8) = 0
		{0.1251, 1}, // just past 1/8
		{0.505, 4},  // past 4/8 (exact 0.5 sits on a float boundary)
		{0.874, 6},  // floor(6.99)
		{0.876, 7},  // floor(7.008)
		{1.0, 7},    // clamp
		{2.5, 7},    // clamp transient overshoot
	}
	for _, c := range cases {
		d.Reset()
		d.Add(int(c.util * scale))
		if got := d.Quantized(); got != c.want {
			t.Errorf("utilization %.4f: quantized = %d, want %d", c.util, got, c.want)
		}
	}
}

func TestDREDecayIsMultiplicative(t *testing.T) {
	p := testParams()
	d := NewDRE(10e9, p)
	d.Add(80000)
	d.Decay()
	want := 80000 * (1 - p.Alpha)
	if math.Abs(d.X()-want) > 1e-9 {
		t.Fatalf("after one decay X = %v, want %v", d.X(), want)
	}
}

// TestDREReactsFasterThanEWMARemembersBursts verifies the §3.2 claim that
// the DRE responds immediately to bursts: right after a burst the register
// reflects the full burst, before any timer tick.
func TestDREBurstVisibleImmediately(t *testing.T) {
	p := testParams()
	d := NewDRE(10e9, p)
	scale := 10e9 / 8 * p.Tau().Seconds()
	d.Add(int(scale)) // a burst worth 100% of C·τ at once
	if d.Quantized() != p.MaxMetric() {
		t.Fatalf("burst not visible immediately: Q = %d", d.Quantized())
	}
}

func TestDREDecaysToZero(t *testing.T) {
	p := testParams()
	d := NewDRE(10e9, p)
	d.Add(1 << 20)
	for i := 0; i < 1000; i++ {
		d.Decay()
	}
	if d.Quantized() != 0 {
		t.Fatalf("idle DRE did not decay to zero: Q = %d, X = %v", d.Quantized(), d.X())
	}
}

func TestDREReset(t *testing.T) {
	d := NewDRE(10e9, testParams())
	d.Add(1 << 30)
	d.Reset()
	if d.X() != 0 {
		t.Fatal("Reset did not clear register")
	}
}

// TestDRERiseTime checks the documented (1 − e^−1) rise time of τ: starting
// from idle, after τ of steady full-rate traffic the register should be at
// ≈ 63% of its steady-state value.
func TestDRERiseTime(t *testing.T) {
	p := testParams()
	d := NewDRE(10e9, p)
	rate := 10e9 / 8.0
	tdreSec := p.TDRE.Seconds()
	steps := int(p.Tau().Seconds() / tdreSec) // τ worth of Tdre periods
	for i := 0; i < steps; i++ {
		d.Add(int(rate * tdreSec))
		d.Decay()
	}
	// Steady state of the add-then-decay recurrence is a·(1−α)/α; after
	// τ/Tdre steps the register reaches 1−(1−α)^(τ/Tdre) of it, which is
	// the discrete-time version of the documented 1−e^{−1} rise.
	steady := rate * tdreSec * (1 - p.Alpha) / p.Alpha
	frac := d.X() / steady
	if math.Abs(frac-(1-1/math.E)) > 0.08 {
		t.Fatalf("after τ, X at %.3f of steady state, want ≈ %.3f", frac, 1-1/math.E)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Q = 0 },
		func(p *Params) { p.Q = 7 },
		func(p *Params) { p.TDRE = 0 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1 },
		func(p *Params) { p.Tfl = -1 },
		func(p *Params) { p.AgeTimeout = 0 },
		func(p *Params) { p.FlowletTableSize = 0 },
		func(p *Params) { p.MaxUplinks = 0 },
		func(p *Params) { p.MaxUplinks = 17 },
		func(p *Params) { p.GapMode = GapMode(9) },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params case %d validated", i)
		}
	}
}

func TestCongaFlowParams(t *testing.T) {
	p := CongaFlowParams()
	if p.Tfl != 13*sim.Millisecond {
		t.Fatalf("CONGA-Flow Tfl = %v, want 13ms", p.Tfl)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsTau(t *testing.T) {
	p := DefaultParams()
	if got := p.Tau(); got != 160*sim.Microsecond {
		t.Fatalf("τ = %v, want 160µs", got)
	}
	if p.MaxMetric() != 7 {
		t.Fatalf("MaxMetric = %d, want 7", p.MaxMetric())
	}
}
