package core

import (
	"testing"

	"conga/internal/sim"
)

func TestDecidePicksMinOfMax(t *testing.T) {
	local := []uint8{3, 1, 6}
	remote := []uint8{2, 5, 0}
	// max per uplink: 3, 5, 6 → uplink 0 wins.
	if got := Decide(local, remote, nil, -1, nil); got != 0 {
		t.Fatalf("Decide = %d, want 0", got)
	}
}

func TestDecideRemoteDominates(t *testing.T) {
	local := []uint8{0, 0}
	remote := []uint8{7, 1}
	if got := Decide(local, remote, nil, -1, nil); got != 1 {
		t.Fatalf("Decide = %d, want 1 (remote congestion must matter)", got)
	}
}

func TestDecidePrefersStickyOnTie(t *testing.T) {
	local := []uint8{2, 2, 2}
	remote := []uint8{0, 0, 0}
	rng := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		if got := Decide(local, remote, nil, 1, rng); got != 1 {
			t.Fatalf("tie did not stick to preferred uplink: got %d", got)
		}
	}
}

func TestDecideMovesOnlyForStrictlyBetter(t *testing.T) {
	// Preferred uplink has metric 3; another has 3 too. Must not move.
	local := []uint8{3, 3}
	remote := []uint8{0, 0}
	if got := Decide(local, remote, nil, 0, sim.NewRand(1)); got != 0 {
		t.Fatalf("moved on equal metric: got %d", got)
	}
	// Now uplink 1 is strictly better. Must move.
	local = []uint8{3, 2}
	if got := Decide(local, remote, nil, 0, sim.NewRand(1)); got != 1 {
		t.Fatalf("did not move to strictly better uplink: got %d", got)
	}
}

func TestDecideRandomTieBreakCoversAllMinima(t *testing.T) {
	local := []uint8{1, 5, 1, 1}
	remote := []uint8{0, 0, 0, 0}
	rng := sim.NewRand(7)
	seen := map[int]int{}
	for i := 0; i < 3000; i++ {
		seen[Decide(local, remote, nil, -1, rng)]++
	}
	if seen[1] != 0 {
		t.Fatal("picked a non-minimal uplink")
	}
	for _, u := range []int{0, 2, 3} {
		if seen[u] < 700 {
			t.Fatalf("uplink %d picked only %d/3000 times; tie-break biased: %v", u, seen[u], seen)
		}
	}
}

func TestDecideRespectsAllowed(t *testing.T) {
	local := []uint8{0, 7}
	remote := []uint8{0, 0}
	allowed := []bool{false, true}
	if got := Decide(local, remote, allowed, -1, sim.NewRand(1)); got != 1 {
		t.Fatalf("picked disallowed uplink: got %d", got)
	}
}

func TestDecideNoAllowedUplinks(t *testing.T) {
	if got := Decide([]uint8{1}, []uint8{1}, []bool{false}, -1, nil); got != -1 {
		t.Fatalf("Decide with no allowed uplinks = %d, want -1", got)
	}
}

func TestDecideDisallowedPreferredIgnored(t *testing.T) {
	local := []uint8{0, 0}
	remote := []uint8{0, 0}
	allowed := []bool{true, false}
	if got := Decide(local, remote, allowed, 1, sim.NewRand(1)); got != 0 {
		t.Fatalf("preferred-but-down uplink selected: got %d", got)
	}
}

func TestDecideMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched metric slices did not panic")
		}
	}()
	Decide([]uint8{1, 2}, []uint8{1}, nil, -1, nil)
}

func newTestLeaf(t *testing.T) *Leaf {
	t.Helper()
	p := testParams()
	return NewLeaf(0, 4, 4, p, sim.NewRand(99))
}

func TestLeafSelectUplinkCachesFlowlet(t *testing.T) {
	l := newTestLeaf(t)
	local := []uint8{0, 0, 0, 0}
	up1, isNew := l.SelectUplink(123, 1, local, nil, 0)
	if !isNew {
		t.Fatal("first packet did not start a flowlet")
	}
	// Make the chosen uplink look terrible; packets of the same flowlet
	// must still follow the cached decision.
	local[up1] = 7
	up2, isNew := l.SelectUplink(123, 1, local, nil, 100)
	if isNew || up2 != up1 {
		t.Fatalf("mid-flowlet packet rerouted: (%d, %v), want (%d, false)", up2, isNew, up1)
	}
}

func TestLeafSelectUplinkUsesFeedback(t *testing.T) {
	l := newTestLeaf(t)
	// Feedback says uplinks 0-2 are congested toward leaf 1.
	for up := 0; up < 3; up++ {
		l.ToLeaf.Update(1, up, 7, 0)
	}
	local := []uint8{0, 0, 0, 0}
	up, _ := l.SelectUplink(55, 1, local, nil, 0)
	if up != 3 {
		t.Fatalf("ignored remote congestion: picked %d, want 3", up)
	}
	// Toward leaf 2 there is no feedback, so any uplink may win — but the
	// decision must not be influenced by leaf 1's metrics.
	counts := map[int]int{}
	for i := uint64(0); i < 400; i++ {
		u, _ := l.SelectUplink(1000+i, 2, local, nil, 0)
		counts[u]++
	}
	if len(counts) < 4 {
		t.Fatalf("leaf-1 congestion leaked into leaf-2 decisions: %v", counts)
	}
}

func TestLeafOnFabricArrivalFeedsBothTables(t *testing.T) {
	l := newTestLeaf(t)
	h := Header{LBTag: 2, CE: 6, FBValid: true, FBLBTag: 1, FBMetric: 4}
	l.OnFabricArrival(3, h, 0)
	// CE stored in FromLeaf for later piggybacking toward leaf 3.
	tag, metric, ok := l.FromLeaf.PickFeedback(3, 0)
	if !ok || tag != 2 || metric != 6 {
		t.Fatalf("CE not recorded: (%d, %d, %v)", tag, metric, ok)
	}
	// Piggybacked feedback applied to ToLeaf for paths to leaf 3.
	if got := l.ToLeaf.Metric(3, 1, 0); got != 4 {
		t.Fatalf("feedback not applied: metric = %d, want 4", got)
	}
}

func TestLeafOnFabricArrivalIgnoresOutOfRangeFeedback(t *testing.T) {
	l := NewLeaf(0, 4, 2, testParams(), sim.NewRand(1)) // only 2 uplinks
	h := Header{LBTag: 0, CE: 0, FBValid: true, FBLBTag: 9, FBMetric: 7}
	l.OnFabricArrival(1, h, 0) // must not panic or corrupt state
}

func TestLeafPrepareHeaderPiggybacksFeedback(t *testing.T) {
	l := newTestLeaf(t)
	l.FromLeaf.Observe(2, 3, 5, 0)
	h := l.PrepareHeader(2, 1, 42, 0)
	if h.LBTag != 1 || h.VNI != 42 {
		t.Fatalf("header fields wrong: %+v", h)
	}
	if !h.FBValid || h.FBLBTag != 3 || h.FBMetric != 5 {
		t.Fatalf("feedback not piggybacked: %+v", h)
	}
	if h.CE != 0 {
		t.Fatalf("fresh packet CE = %d, want 0", h.CE)
	}
}

func TestLeafPrepareHeaderNoFeedbackAvailable(t *testing.T) {
	l := newTestLeaf(t)
	h := l.PrepareHeader(1, 0, 1, 0)
	if h.FBValid {
		t.Fatal("FBValid set with nothing observed")
	}
}

func TestLeafFeedbackLoopEndToEnd(t *testing.T) {
	// Two leaves exchanging packets: congestion observed at B must reach
	// A's Congestion-To-Leaf table via piggybacking.
	p := testParams()
	a := NewLeaf(0, 2, 2, p, sim.NewRand(1))
	b := NewLeaf(1, 2, 2, p, sim.NewRand(2))

	// A sends to B on uplink 1; fabric marks CE = 6 en route.
	ha := a.PrepareHeader(1, 1, 0, 0)
	ha.CE = 6
	b.OnFabricArrival(0, ha, 10)

	// B sends any packet back to A; it carries the feedback.
	hb := b.PrepareHeader(0, 0, 0, 20)
	if !hb.FBValid || hb.FBLBTag != 1 || hb.FBMetric != 6 {
		t.Fatalf("reverse packet lacks feedback: %+v", hb)
	}
	a.OnFabricArrival(1, hb, 30)
	if got := a.ToLeaf.Metric(1, 1, 30); got != 6 {
		t.Fatalf("A's remote metric = %d, want 6", got)
	}

	// A's next flowlet decision toward B must avoid uplink 1.
	up, _ := a.SelectUplink(777, 1, []uint8{0, 0}, nil, 40)
	if up != 0 {
		t.Fatalf("A kept sending into known congestion: uplink %d", up)
	}
}

func TestLeafMovesCounter(t *testing.T) {
	l := newTestLeaf(t)
	local := []uint8{0, 7, 7, 7}
	l.SelectUplink(1, 1, local, nil, 0) // first decision: uplink 0
	if l.Decisions != 1 || l.Moves != 0 {
		t.Fatalf("counters after first decision: %d/%d", l.Decisions, l.Moves)
	}
	// Expire the flowlet and make uplink 0 congested; flow must move.
	p := l.Params
	for i := 0; i < 3; i++ {
		l.SweepFlowlets()
	}
	local = []uint8{7, 0, 7, 7}
	up, isNew := l.SelectUplink(1, 1, local, nil, 3*p.Tfl)
	if !isNew || up != 1 {
		t.Fatalf("flow did not move: (%d, %v)", up, isNew)
	}
	if l.Moves != 1 {
		t.Fatalf("Moves = %d, want 1", l.Moves)
	}
}

func TestLeafSelectUplinkAvoidsDownCachedPort(t *testing.T) {
	l := newTestLeaf(t)
	local := []uint8{0, 0, 0, 0}
	up, _ := l.SelectUplink(5, 1, local, nil, 0)
	// The cached uplink goes down; the very next packet must re-decide.
	allowed := []bool{true, true, true, true}
	allowed[up] = false
	up2, isNew := l.SelectUplink(5, 1, local, allowed, 1)
	if !isNew || up2 == up {
		t.Fatalf("packet followed a dead uplink: (%d, %v)", up2, isNew)
	}
}

func TestNewLeafValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLeaf with more uplinks than MaxUplinks did not panic")
		}
	}()
	p := testParams()
	p.MaxUplinks = 4
	NewLeaf(0, 2, 5, p, sim.NewRand(1))
}
