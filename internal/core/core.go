package core
