package core

import (
	"testing"
	"testing/quick"

	"conga/internal/sim"
)

func TestFlowletTableNewFlowletOnFirstPacket(t *testing.T) {
	ft := NewFlowletTable(testParams())
	port, active := ft.Lookup(42, 0)
	if active {
		t.Fatal("empty table reported an active flowlet")
	}
	if port != -1 {
		t.Fatalf("lastPort = %d for never-seen flow, want -1", port)
	}
}

func TestFlowletTableInstallThenHit(t *testing.T) {
	ft := NewFlowletTable(testParams())
	ft.Install(42, 3, 0)
	port, active := ft.Lookup(42, 100)
	if !active || port != 3 {
		t.Fatalf("lookup after install = (%d, %v), want (3, true)", port, active)
	}
}

// TestFlowletAgeBitGapDetection verifies the §3.4 semantics: with one age
// bit swept every Tfl, a gap shorter than Tfl never expires the entry, a
// gap longer than 2·Tfl always does, and gaps in between may or may not
// depending on phase.
func TestFlowletAgeBitGapDetection(t *testing.T) {
	p := testParams()
	p.GapMode = GapModeAgeBit
	tfl := p.Tfl

	run := func(gap sim.Time) bool {
		e := sim.New()
		ft := NewFlowletTable(p)
		sim.NewTicker(e, tfl, func(sim.Time) { ft.Sweep() })
		ft.Install(1, 2, 0)
		var active bool
		e.At(gap, func(now sim.Time) { _, active = ft.Lookup(1, now) })
		e.Run(gap)
		return active
	}

	// Gap clearly below Tfl: survives regardless of sweep phase.
	// (Install at 0, sweep at Tfl sets age, second packet before 2·Tfl...
	// actually a packet at 0.5·Tfl sees sweeps only at Tfl, so no sweep ran.)
	if !run(tfl / 2) {
		t.Error("flowlet expired after gap of Tfl/2")
	}
	// Gap of 1.5·Tfl: one sweep set the age bit, second hasn't run — survives.
	if !run(tfl + tfl/2) {
		t.Error("flowlet expired after 1.5·Tfl with this phase; age-bit scheme should keep it")
	}
	// Gap beyond 2·Tfl: two sweeps passed, must expire.
	if run(2*tfl + tfl/10) {
		t.Error("flowlet survived a gap > 2·Tfl")
	}
}

func TestFlowletAgeBitRefreshedByTraffic(t *testing.T) {
	p := testParams()
	e := sim.New()
	ft := NewFlowletTable(p)
	sim.NewTicker(e, p.Tfl, func(sim.Time) { ft.Sweep() })
	ft.Install(1, 5, 0)
	// Send a packet every 0.9·Tfl for 20 periods; the flowlet must stay
	// active throughout because every lookup clears the age bit.
	step := p.Tfl * 9 / 10
	ok := true
	for i := 1; i <= 20; i++ {
		at := sim.Time(i) * step
		e.At(at, func(now sim.Time) {
			if _, active := ft.Lookup(1, now); !active {
				ok = false
			}
		})
	}
	e.Run(21 * step) // bounded: the sweep ticker never stops on its own
	if !ok {
		t.Fatal("steadily refreshed flowlet expired")
	}
}

func TestFlowletTimestampModeExactGap(t *testing.T) {
	p := testParams()
	p.GapMode = GapModeTimestamp
	ft := NewFlowletTable(p)
	ft.Install(1, 4, 0)
	if _, active := ft.Lookup(1, p.Tfl); !active {
		t.Fatal("timestamp mode expired at exactly Tfl (boundary should be inclusive)")
	}
	ft.Install(2, 4, 0)
	if _, active := ft.Lookup(2, p.Tfl+1); active {
		t.Fatal("timestamp mode kept a flowlet past Tfl")
	}
}

func TestFlowletTimestampModeLastPortRetained(t *testing.T) {
	p := testParams()
	p.GapMode = GapModeTimestamp
	ft := NewFlowletTable(p)
	ft.Install(1, 4, 0)
	port, active := ft.Lookup(1, p.Tfl*10)
	if active {
		t.Fatal("expired flowlet still active")
	}
	if port != 4 {
		t.Fatalf("lastPort = %d after expiry, want 4 (tie-break preference)", port)
	}
}

func TestFlowletHashCollisionSharesEntry(t *testing.T) {
	p := testParams()
	p.FlowletTableSize = 8
	ft := NewFlowletTable(p)
	// Hashes 3 and 11 collide in an 8-entry table.
	ft.Install(3, 1, 0)
	port, active := ft.Lookup(11, 1)
	if !active || port != 1 {
		t.Fatalf("colliding flow = (%d, %v), want shared entry (1, true)", port, active)
	}
}

func TestFlowletTableNonPowerOfTwoSize(t *testing.T) {
	p := testParams()
	p.FlowletTableSize = 1000
	ft := NewFlowletTable(p)
	if ft.Len() != 1000 {
		t.Fatalf("table size %d, want 1000", ft.Len())
	}
	err := quick.Check(func(h uint64) bool {
		ft.Install(h, 2, 0)
		port, active := ft.Lookup(h, 0)
		return active && port == 2
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlowletActiveCount(t *testing.T) {
	p := testParams()
	ft := NewFlowletTable(p)
	for i := uint64(0); i < 10; i++ {
		ft.Install(i, 0, 0)
	}
	if got := ft.Active(); got != 10 {
		t.Fatalf("Active() = %d, want 10", got)
	}
	ft.Sweep()
	ft.Sweep() // all age bits set and swept → expired
	if got := ft.Active(); got != 0 {
		t.Fatalf("Active() after two sweeps = %d, want 0", got)
	}
	if ft.Expired != 10 {
		t.Fatalf("Expired = %d, want 10", ft.Expired)
	}
}

func TestFlowletSweepNoopInTimestampMode(t *testing.T) {
	p := testParams()
	p.GapMode = GapModeTimestamp
	ft := NewFlowletTable(p)
	ft.Install(1, 0, 0)
	ft.Sweep()
	ft.Sweep()
	if _, active := ft.Lookup(1, 0); !active {
		t.Fatal("Sweep expired entries in timestamp mode")
	}
}

func TestFlowHashDeterministicAndSpread(t *testing.T) {
	a := FlowHash(1, 2, 3, 4, 6)
	if a != FlowHash(1, 2, 3, 4, 6) {
		t.Fatal("FlowHash not deterministic")
	}
	if a == FlowHash(2, 1, 3, 4, 6) {
		t.Fatal("FlowHash ignores argument order")
	}
	// Spread: hashing 10k sequential flows into 1024 buckets should fill
	// most buckets.
	buckets := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		buckets[FlowHash(i, i+1, 1000+i, 80, 6)%1024] = true
	}
	if len(buckets) < 1000 {
		t.Fatalf("only %d/1024 buckets hit; hash clusters badly", len(buckets))
	}
}

func BenchmarkFlowletLookupHit(b *testing.B) {
	ft := NewFlowletTable(DefaultParams())
	ft.Install(12345, 3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(12345, sim.Time(i))
	}
}

func BenchmarkFlowletSweep64K(b *testing.B) {
	ft := NewFlowletTable(DefaultParams())
	for i := uint64(0); i < 64*1024; i += 2 {
		ft.Install(i, 1, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Sweep()
	}
}

// The incremental sweep drops expired entries from its active list; an
// entry re-installed afterwards must be re-registered or it would never
// expire again.
func TestFlowletSweepReinstallAfterExpiry(t *testing.T) {
	p := testParams()
	p.GapMode = GapModeAgeBit
	tbl := NewFlowletTable(p)
	const hash = 12345
	tbl.Install(hash, 3, 0)
	tbl.Sweep() // sets age bit
	tbl.Sweep() // expires
	if _, active := tbl.Lookup(hash, 0); active {
		t.Fatal("entry still active after two idle sweeps")
	}
	if tbl.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", tbl.Expired)
	}
	tbl.Install(hash, 5, 0)
	if port, active := tbl.Lookup(hash, 0); !active || port != 5 {
		t.Fatalf("reinstalled entry: port=%d active=%v, want 5 true", port, active)
	}
	tbl.Sweep()
	tbl.Sweep()
	if tbl.Expired != 2 {
		t.Fatalf("Expired = %d after reinstall + two sweeps, want 2", tbl.Expired)
	}
	if tbl.Active() != 0 {
		t.Fatalf("Active() = %d, want 0", tbl.Active())
	}
}
