// Package runner fans independent experiment configurations across a
// bounded worker pool. Each simulation engine is single-threaded and
// deterministic for a given seed, so experiments parallelize perfectly:
// one engine per goroutine, no shared mutable state, results collected in
// input order. This is what lets the figure sweeps in cmd/congabench use
// every core without perturbing any individual run's outcome.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn over every item on up to workers goroutines and returns the
// results in input order. workers <= 0 uses GOMAXPROCS. Every item is
// processed even when some fail; the returned error is the one from the
// lowest-indexed failing item, so the error surfaced does not depend on
// goroutine scheduling.
func Map[C, R any](workers int, items []C, fn func(C) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		for i, it := range items {
			results[i], errs[i] = fn(it)
		}
		return results, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
