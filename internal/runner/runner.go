// Package runner fans independent experiment configurations across a
// bounded worker pool. Each simulation engine is single-threaded and
// deterministic for a given seed, so experiments parallelize perfectly:
// one engine per goroutine, no shared mutable state, results collected in
// input order. This is what lets the figure sweeps in cmd/congabench use
// every core without perturbing any individual run's outcome.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn over every item on up to workers goroutines and returns the
// results in input order. workers <= 0 uses GOMAXPROCS. Every item is
// processed even when some fail; the returned error is the one from the
// lowest-indexed failing item, so the error surfaced does not depend on
// goroutine scheduling.
func Map[C, R any](workers int, items []C, fn func(C) (R, error)) ([]R, error) {
	return MapStream(workers, items, fn, nil)
}

// MapStream is Map with a per-completion callback: emit(i, result, err) is
// invoked once per item, in input order, as soon as the item and all its
// predecessors have finished. Long sweeps can therefore print rows while
// later items are still running, without giving up deterministic output
// order. emit runs on worker goroutines but never concurrently with itself;
// a nil emit makes MapStream identical to Map. Results and the first error
// (lowest index) are still returned when everything has completed.
func MapStream[C, R any](workers int, items []C, fn func(C) (R, error), emit func(i int, r R, err error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		for i, it := range items {
			results[i], errs[i] = fn(it)
			if emit != nil {
				emit(i, results[i], errs[i])
			}
		}
		return results, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	// done tracks finished items; cursor is the index of the next item to
	// emit. Whichever worker completes the item the cursor is waiting on
	// drains the whole contiguous finished prefix under the mutex, so
	// emissions are serialized and strictly in input order.
	var mu sync.Mutex
	done := make([]bool, len(items))
	cursor := 0
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = fn(items[i])
				if emit == nil {
					continue
				}
				mu.Lock()
				done[i] = true
				for cursor < len(items) && done[cursor] {
					emit(cursor, results[cursor], errs[cursor])
					cursor++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
