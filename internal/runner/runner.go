// Package runner fans independent experiment configurations across a
// bounded worker pool. Each simulation engine is single-threaded and
// deterministic for a given seed, so experiments parallelize perfectly:
// one engine per goroutine, no shared mutable state, results collected in
// input order. This is what lets the figure sweeps in cmd/congabench use
// every core without perturbing any individual run's outcome.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Progress tracks a sweep's completion state with atomic counters so a
// monitoring goroutine (the live-telemetry HTTP endpoint) can read it while
// workers run. One Progress may span several MapStreamP calls; totals
// accumulate.
type Progress struct {
	total, started, finished atomic.Int64
}

// Expect adds n items to the expected total (MapStreamP calls it for its
// batch; callers that know the whole sweep size up front may pre-add).
func (p *Progress) Expect(n int) {
	if p != nil {
		p.total.Add(int64(n))
	}
}

// Counts returns items started, finished, and expected in total. Safe from
// any goroutine.
func (p *Progress) Counts() (started, finished, total int64) {
	if p == nil {
		return
	}
	return p.started.Load(), p.finished.Load(), p.total.Load()
}

// Map runs fn over every item on up to workers goroutines and returns the
// results in input order. workers <= 0 uses GOMAXPROCS. Every item is
// processed even when some fail; the returned error is the one from the
// lowest-indexed failing item, so the error surfaced does not depend on
// goroutine scheduling.
func Map[C, R any](workers int, items []C, fn func(C) (R, error)) ([]R, error) {
	return MapStreamP(workers, items, fn, nil, nil)
}

// MapStream is Map with a per-completion callback: emit(i, result, err) is
// invoked once per item, in input order, as soon as the item and all its
// predecessors have finished. Long sweeps can therefore print rows while
// later items are still running, without giving up deterministic output
// order. emit runs on worker goroutines but never concurrently with itself;
// a nil emit makes MapStream identical to Map. Results and the first error
// (lowest index) are still returned when everything has completed.
func MapStream[C, R any](workers int, items []C, fn func(C) (R, error), emit func(i int, r R, err error)) ([]R, error) {
	return MapStreamP(workers, items, fn, emit, nil)
}

// MapStreamP is MapStream with optional progress tracking: when prog is
// non-nil, the batch size is added to its total and each item bumps
// started/finished around fn, so concurrent observers see the sweep
// advance. A nil prog makes it identical to MapStream.
func MapStreamP[C, R any](workers int, items []C, fn func(C) (R, error), emit func(i int, r R, err error), prog *Progress) ([]R, error) {
	prog.Expect(len(items))
	if prog != nil {
		inner := fn
		fn = func(c C) (R, error) {
			prog.started.Add(1)
			r, err := inner(c)
			prog.finished.Add(1)
			return r, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if workers <= 1 {
		for i, it := range items {
			results[i], errs[i] = fn(it)
			if emit != nil {
				emit(i, results[i], errs[i])
			}
		}
		return results, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	// done tracks finished items; cursor is the index of the next item to
	// emit. Whichever worker completes the item the cursor is waiting on
	// drains the whole contiguous finished prefix under the mutex, so
	// emissions are serialized and strictly in input order.
	var mu sync.Mutex
	done := make([]bool, len(items))
	cursor := 0
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = fn(items[i])
				if emit == nil {
					continue
				}
				mu.Lock()
				done[i] = true
				for cursor < len(items) && done[cursor] {
					emit(cursor, results[cursor], errs[cursor])
					cursor++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
