package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByInput(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(8, items, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsEveryItemOnce(t *testing.T) {
	var calls [64]atomic.Int32
	items := make([]int, len(calls))
	for i := range items {
		items[i] = i
	}
	_, err := Map(0, items, func(x int) (struct{}, error) {
		calls[x].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("item %d ran %d times", i, n)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	// The surfaced error must not depend on which goroutine finishes first.
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	want := errors.New("boom-2")
	_, err := Map(4, items, func(x int) (int, error) {
		if x == 5 {
			return 0, errors.New("boom-5")
		}
		if x == 2 {
			return 0, want
		}
		return x, nil
	})
	if err == nil || err.Error() != "boom-2" {
		t.Fatalf("err = %v, want boom-2", err)
	}
}

func TestMapProcessesAllDespiteErrors(t *testing.T) {
	var done atomic.Int32
	items := make([]int, 32)
	_, err := Map(4, items, func(int) (int, error) {
		done.Add(1)
		return 0, fmt.Errorf("always")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if done.Load() != 32 {
		t.Fatalf("ran %d items, want 32", done.Load())
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(4, nil, func(int) (int, error) { return 1, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err := Map(4, []int{7}, func(x int) (int, error) { return x + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 8 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}

func TestMapSequentialFallbackMatchesParallel(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i * 3
	}
	f := func(x int) (int, error) { return x + 1, nil }
	seq, err1 := Map(1, items, f)
	par, err2 := Map(8, items, f)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}
