package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByInput(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(8, items, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsEveryItemOnce(t *testing.T) {
	var calls [64]atomic.Int32
	items := make([]int, len(calls))
	for i := range items {
		items[i] = i
	}
	_, err := Map(0, items, func(x int) (struct{}, error) {
		calls[x].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("item %d ran %d times", i, n)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	// The surfaced error must not depend on which goroutine finishes first.
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	want := errors.New("boom-2")
	_, err := Map(4, items, func(x int) (int, error) {
		if x == 5 {
			return 0, errors.New("boom-5")
		}
		if x == 2 {
			return 0, want
		}
		return x, nil
	})
	if err == nil || err.Error() != "boom-2" {
		t.Fatalf("err = %v, want boom-2", err)
	}
}

func TestMapProcessesAllDespiteErrors(t *testing.T) {
	var done atomic.Int32
	items := make([]int, 32)
	_, err := Map(4, items, func(int) (int, error) {
		done.Add(1)
		return 0, fmt.Errorf("always")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if done.Load() != 32 {
		t.Fatalf("ran %d items, want 32", done.Load())
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(4, nil, func(int) (int, error) { return 1, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err := Map(4, []int{7}, func(x int) (int, error) { return x + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 8 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}

func TestMapSequentialFallbackMatchesParallel(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i * 3
	}
	f := func(x int) (int, error) { return x + 1, nil }
	seq, err1 := Map(1, items, f)
	par, err2 := Map(8, items, f)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestMapStreamEmitsInInputOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	var emitted []int
	// Skewed work: make early items slow so later items finish first and
	// have to wait for the cursor.
	got, err := MapStream(8, items, func(x int) (int, error) {
		if x%10 == 0 {
			n := 0
			for i := 0; i < 100000; i++ {
				n += i
			}
			_ = n
		}
		return x * 2, nil
	}, func(i int, r int, err error) {
		if err != nil {
			t.Errorf("item %d: %v", i, err)
		}
		if r != i*2 {
			t.Errorf("emit(%d) got result %d, want %d", i, r, i*2)
		}
		emitted = append(emitted, i) // serialized by MapStream's mutex
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(items) {
		t.Fatalf("emitted %d items, want %d", len(emitted), len(items))
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emission order broke at %d: got item %d", i, v)
		}
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestMapStreamEmitsErrors(t *testing.T) {
	items := []int{0, 1, 2, 3}
	var gotErrs []int
	_, err := MapStream(2, items, func(x int) (int, error) {
		if x%2 == 1 {
			return 0, fmt.Errorf("odd %d", x)
		}
		return x, nil
	}, func(i int, _ int, err error) {
		if err != nil {
			gotErrs = append(gotErrs, i)
		}
	})
	if err == nil || err.Error() != "odd 1" {
		t.Fatalf("err = %v, want odd 1", err)
	}
	if len(gotErrs) != 2 || gotErrs[0] != 1 || gotErrs[1] != 3 {
		t.Fatalf("error emissions = %v, want [1 3]", gotErrs)
	}
}

func TestMapStreamSequentialFallback(t *testing.T) {
	var emitted []int
	got, err := MapStream(1, []int{5, 6, 7}, func(x int) (int, error) { return x, nil },
		func(i int, _ int, _ error) { emitted = append(emitted, i) })
	if err != nil || len(got) != 3 {
		t.Fatal(got, err)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("sequential emission order: %v", emitted)
		}
	}
}
