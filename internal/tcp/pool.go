package tcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
)

// FlowPool recycles Flow, Sender and Receiver objects within one engine,
// mirroring fabric.PacketPool and the event free list: the simulator is
// single-threaded per engine, so the pool needs no locking, and parallel
// sweeps use one pool per engine (per goroutine). With it, the steady
// state of an experiment's flow lifecycle — start, transfer, complete,
// start the next — allocates nothing: the Flow, both endpoints, their
// SACK spanSets and retransmit state, and the completion callback are all
// reused.
//
// Reset invariant: acquisition fully re-initializes an object through the
// same code path fresh construction uses (Sender.rebind, Receiver.rebind),
// so a recycled endpoint is bit-for-bit indistinguishable from a new one.
// Release clears the caller-owned callback fields (OnAllAcked, OnAcked,
// CAIncrease, OnDelivered) so a previous owner's hooks can never fire on a
// later flow; the bound-once internal callbacks (timers, completion) are
// kept, which is the point of pooling them.
//
// Ownership rule: a pooled Flow and its endpoints return to the pool when
// the flow completes, after the onDone callback has run. Callers must not
// retain the *Flow or its endpoints past that callback. Endpoints acquired
// directly via NewSender/NewReceiver stay with the caller until explicitly
// released with PutSender/PutReceiver (after Close).
//
// A nil *FlowPool is valid everywhere and falls back to fresh allocation,
// so tcp.StartFlow keeps its historical semantics.
type FlowPool struct {
	flows     []*Flow
	halves    []*HalfFlow // sender-only shells for cross-domain flows (split.go)
	senders   []*Sender
	receivers []*Receiver

	// Allocs counts pool misses (fresh heap allocations); Recycled counts
	// acquisitions served from the free lists. Exported for tests and the
	// benchmark harness.
	FlowAllocs       uint64
	FlowRecycled     uint64
	SenderAllocs     uint64
	SenderRecycled   uint64
	ReceiverAllocs   uint64
	ReceiverRecycled uint64
}

// NewFlowPool returns an empty pool for one engine.
func NewFlowPool() *FlowPool { return &FlowPool{} }

// NewSender is tcp.NewSender drawing from the pool; a nil pool allocates
// fresh.
func (p *FlowPool) NewSender(eng *sim.Engine, host *fabric.Host, flowID uint64, dstHost, dstPort int, cfg Config) *Sender {
	if p != nil {
		if n := len(p.senders); n > 0 {
			if err := cfg.Validate(); err != nil {
				panic(err)
			}
			s := p.senders[n-1]
			p.senders[n-1] = nil
			p.senders = p.senders[:n-1]
			p.SenderRecycled++
			s.inPool = false
			s.rebind(eng, host, flowID, dstHost, dstPort, cfg)
			return s
		}
		p.SenderAllocs++
	}
	return NewSender(eng, host, flowID, dstHost, dstPort, cfg)
}

// PutSender releases a closed sender to the pool. Senders that are still
// open, already pooled, or given to a nil pool are left alone.
func (p *FlowPool) PutSender(s *Sender) {
	if p == nil || s == nil || !s.freed || s.inPool {
		return
	}
	s.CAIncrease = nil
	s.OnAllAcked = nil
	s.OnAcked = nil
	s.inPool = true
	p.senders = append(p.senders, s)
}

// NewReceiver is tcp.NewReceiver drawing from the pool; a nil pool
// allocates fresh.
func (p *FlowPool) NewReceiver(host *fabric.Host, port int) *Receiver {
	if p != nil {
		if n := len(p.receivers); n > 0 {
			r := p.receivers[n-1]
			p.receivers[n-1] = nil
			p.receivers = p.receivers[:n-1]
			p.ReceiverRecycled++
			r.inPool = false
			r.rebind(host, port)
			return r
		}
		p.ReceiverAllocs++
	}
	return NewReceiver(host, port)
}

// PutReceiver releases a closed receiver to the pool. Receivers that are
// still bound, already pooled, or given to a nil pool are left alone.
func (p *FlowPool) PutReceiver(r *Receiver) {
	if p == nil || r == nil || !r.freed || r.inPool {
		return
	}
	r.OnDelivered = nil
	r.inPool = true
	p.receivers = append(p.receivers, r)
}

// getFlow acquires a Flow shell, from the free list when possible. The
// completion callback is bound once per object, on first construction.
func (p *FlowPool) getFlow() *Flow {
	if p != nil {
		if n := len(p.flows); n > 0 {
			f := p.flows[n-1]
			p.flows[n-1] = nil
			p.flows = p.flows[:n-1]
			p.FlowRecycled++
			f.inPool = false
			return f
		}
		p.FlowAllocs++
	}
	f := &Flow{}
	f.onAllAckedFn = f.finish
	return f
}

// putFlow releases a completed flow and its endpoints. Called by
// Flow.finish after the onDone callback has returned, so a callback that
// starts a new flow reuses earlier releases, never the objects of the
// frame still on the stack.
func (p *FlowPool) putFlow(f *Flow) {
	if p == nil || f == nil || f.inPool {
		return
	}
	p.PutSender(f.Sender)
	p.PutReceiver(f.Receiver)
	f.Sender = nil
	f.Receiver = nil
	f.onDone = nil
	f.inPool = true
	p.flows = append(p.flows, f)
}
