package tcp

// span is a half-open byte range [start, end).
type span struct{ start, end int64 }

// spanSet maintains a sorted set of disjoint spans, merging on insert. It
// backs both the sender's SACK scoreboard and the receiver's out-of-order
// buffer. Real transfers rarely have more than a few holes at once (the
// receiver reports at most 3 SACK blocks per ACK), so the first four spans
// live in an inline array and inserts are allocation-free; a fifth
// concurrent span spills the set onto the heap via ordinary slice growth.
// The set must not be copied once used: spans aliases inline.
type spanSet struct {
	inline [4]span
	spans  []span
}

// insert merges [start, end) into the set in place and returns the index
// of the span that now contains it. Overlapping and adjacent spans
// coalesce. Caller guarantees start < end.
func (s *spanSet) insert(start, end int64) int {
	if s.spans == nil {
		s.spans = s.inline[:0]
	}
	sp := s.spans
	n := len(sp)
	i := 0
	for i < n && sp[i].end < start {
		i++
	}
	nr := span{start, end}
	j := i
	for j < n && sp[j].start <= end {
		if sp[j].start < nr.start {
			nr.start = sp[j].start
		}
		if sp[j].end > nr.end {
			nr.end = sp[j].end
		}
		j++
	}
	if j == i {
		// Pure insertion: open a gap at i. append reuses the inline array
		// until a fifth span forces heap growth.
		sp = append(sp, span{})
		copy(sp[i+1:], sp[i:])
		sp[i] = nr
		s.spans = sp
		return i
	}
	// sp[i:j] merged into nr: write it at i and close the gap.
	sp[i] = nr
	m := copy(sp[i+1:], sp[j:])
	s.spans = sp[:i+1+m]
	return i
}

// popFront removes the first span, compacting in place so the set keeps
// its inline backing (reslicing would orphan inline[0] forever).
func (s *spanSet) popFront() {
	copy(s.spans, s.spans[1:])
	s.spans = s.spans[:len(s.spans)-1]
}
