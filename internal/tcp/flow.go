package tcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
)

// Flow is a one-shot transfer: size bytes from one host to another over a
// fresh connection, reporting its completion time. Workload generators
// create one Flow per arrival.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
	Size     int64
	Started  sim.Time
}

// StartFlow begins transferring size bytes from src to dst immediately.
// onDone (optional) receives the flow and its completion time; both
// endpoints are closed before the callback so ports recycle even if the
// callback panics the experiment.
func StartFlow(eng *sim.Engine, src, dst *fabric.Host, flowID uint64, size int64,
	cfg Config, onDone func(f *Flow, now sim.Time)) *Flow {
	if size <= 0 {
		size = 1
	}
	now := eng.Now()
	dstPort := dst.AllocPort()
	f := &Flow{
		Receiver: NewReceiver(dst, dstPort),
		Size:     size,
		Started:  now,
	}
	f.Sender = NewSender(eng, src, flowID, dst.ID, dstPort, cfg)
	f.Sender.OnAllAcked = func(done sim.Time) {
		f.Sender.Close()
		f.Receiver.Close()
		if onDone != nil {
			onDone(f, done)
		}
	}
	f.Sender.Queue(size, now)
	return f
}

// FCT returns the flow completion time given the completion timestamp.
func (f *Flow) FCT(done sim.Time) sim.Time { return done - f.Started }
