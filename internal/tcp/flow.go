package tcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
)

// Flow is a one-shot transfer: size bytes from one host to another over a
// fresh connection, reporting its completion time. Workload generators
// create one Flow per arrival — or recycle one through a FlowPool.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
	Size     int64
	Started  sim.Time

	// pool, when non-nil, receives the flow and its endpoints back after
	// completion; onDone is the caller's completion callback. onAllAckedFn
	// is finish bound once per Flow object, so wiring a sender's
	// completion hook allocates nothing on reuse.
	pool         *FlowPool
	onDone       func(f *Flow, now sim.Time)
	onAllAckedFn func(now sim.Time)
	inPool       bool
}

// StartFlow begins transferring size bytes from src to dst immediately.
// onDone (optional) receives the flow and its completion time; both
// endpoints are closed before the callback so ports recycle even if the
// callback panics the experiment.
func StartFlow(eng *sim.Engine, src, dst *fabric.Host, flowID uint64, size int64,
	cfg Config, onDone func(f *Flow, now sim.Time)) *Flow {
	return (*FlowPool)(nil).StartFlow(eng, src, dst, flowID, size, cfg, onDone)
}

// StartFlow is tcp.StartFlow drawing the Flow and both endpoints from the
// pool (nil pool = fresh allocation). When pooled, the flow returns to the
// pool right after onDone, so the callback must not retain the *Flow or
// its endpoints.
func (p *FlowPool) StartFlow(eng *sim.Engine, src, dst *fabric.Host, flowID uint64, size int64,
	cfg Config, onDone func(f *Flow, now sim.Time)) *Flow {
	if size <= 0 {
		size = 1
	}
	now := eng.Now()
	f := p.getFlow()
	f.pool = p
	f.onDone = onDone
	f.Size = size
	f.Started = now
	dstPort := dst.AllocPort()
	f.Receiver = p.NewReceiver(dst, dstPort)
	f.Sender = p.NewSender(eng, src, flowID, dst.ID, dstPort, cfg)
	f.Sender.OnAllAcked = f.onAllAckedFn
	f.Sender.Queue(size, now)
	return f
}

// finish is the flow's completion path (the sender's OnAllAcked): close
// the endpoints first so ports recycle even if the callback panics, run
// the caller's callback, then hand everything back to the pool.
func (f *Flow) finish(now sim.Time) {
	f.Sender.Close()
	f.Receiver.Close()
	if f.onDone != nil {
		f.onDone(f, now)
	}
	if f.pool != nil {
		f.pool.putFlow(f)
	}
}

// FCT returns the flow completion time given the completion timestamp.
func (f *Flow) FCT(done sim.Time) sim.Time { return done - f.Started }
