package tcp

import (
	"testing"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
)

// testNet builds a small 2-leaf fabric with 1 Gbps links for fast tests.
func testNet(t testing.TB, scheme fabric.Scheme) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.New()
	p := core.DefaultParams()
	p.FlowletTableSize = 4096
	n := fabric.MustNetwork(eng, fabric.Config{
		NumLeaves:     2,
		NumSpines:     2,
		HostsPerLeaf:  4,
		LinksPerSpine: 1,
		AccessRateBps: 1e9,
		FabricRateBps: 1e9,
		Scheme:        scheme,
		Params:        p,
		Seed:          11,
	})
	return eng, n
}

func dcConfig() Config {
	c := DefaultConfig()
	c.MinRTO = 10 * sim.Millisecond
	c.InitRTO = 50 * sim.Millisecond
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MSS = 0 },
		func(c *Config) { c.InitCwnd = 0 },
		func(c *Config) { c.MinRTO = 0 },
		func(c *Config) { c.MaxRTO = c.MinRTO - 1 },
		func(c *Config) { c.InitRTO = 0 },
		func(c *Config) { c.DupThresh = 0 },
		func(c *Config) { c.MaxCwnd = 10 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMTUToMSS(t *testing.T) {
	if MTUToMSS(1500) != 1460 || MTUToMSS(9000) != 8960 {
		t.Fatal("MSS derivation wrong")
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	var fct sim.Time
	done := false
	StartFlow(eng, n.Host(0), n.Host(4), 1, 1<<20, dcConfig(), func(f *Flow, now sim.Time) {
		fct = f.FCT(now)
		done = true
	})
	eng.Run(sim.MaxTime)
	if !done {
		t.Fatal("1 MB flow never completed")
	}
	// 1 MB at 1 Gbps ≈ 8.4 ms ideal + headers/slow-start; allow 8–40 ms.
	if fct < 8*sim.Millisecond || fct > 40*sim.Millisecond {
		t.Fatalf("FCT = %v, want ≈ 10 ms", fct)
	}
	if n.TotalDrops() != 0 {
		t.Fatalf("%d drops for a single flow on an idle fabric", n.TotalDrops())
	}
}

func TestFlowDeliversExactByteCount(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	const size = 777777 // deliberately not a multiple of MSS
	var f *Flow
	f = StartFlow(eng, n.Host(0), n.Host(4), 2, size, dcConfig(), nil)
	eng.Run(sim.MaxTime)
	if got := f.Receiver.Delivered(); got != size {
		t.Fatalf("delivered %d bytes, want %d", got, size)
	}
	if f.Sender.Stats().BytesAcked != size {
		t.Fatalf("acked %d bytes, want %d", f.Sender.Stats().BytesAcked, size)
	}
}

func TestSlowStartDoublesWindow(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := dcConfig()
	f := StartFlow(eng, n.Host(0), n.Host(4), 3, 10<<20, cfg, nil)
	// After a couple of RTTs of an unconstrained 10 MB transfer the
	// window must have grown well past the initial 10 segments.
	eng.Run(2 * sim.Millisecond)
	if f.Sender.Cwnd() <= float64(2*cfg.InitCwnd*cfg.MSS) {
		t.Fatalf("cwnd = %.0f after 2 ms, expected exponential growth", f.Sender.Cwnd())
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	const size = 8 << 20
	var fct sim.Time
	StartFlow(eng, n.Host(0), n.Host(4), 4, size, dcConfig(), func(f *Flow, now sim.Time) {
		fct = f.FCT(now)
	})
	eng.Run(sim.MaxTime)
	if fct == 0 {
		t.Fatal("flow did not complete")
	}
	goodput := float64(size*8) / fct.Seconds()
	// ≥80% of the 1 Gbps access rate (headers + slow start overheads).
	if goodput < 0.80e9 {
		t.Fatalf("goodput %.2f Mbps, want ≥800", goodput/1e6)
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	// Both flows target host 4: its access downlink is the bottleneck.
	var bytes [2]int64
	mk := func(i int, src *fabric.Host) *Flow {
		return StartFlow(eng, src, n.Host(4), uint64(10+i), 64<<20, dcConfig(), nil)
	}
	f0, f1 := mk(0, n.Host(0)), mk(1, n.Host(1))
	eng.Run(100 * sim.Millisecond)
	bytes[0] = f0.Sender.Stats().BytesAcked
	bytes[1] = f1.Sender.Stats().BytesAcked
	total := bytes[0] + bytes[1]
	// Combined goodput near line rate.
	if total < 9e6 {
		t.Fatalf("combined transfer %d bytes in 100 ms, want ≥9 MB", total)
	}
	// Rough fairness: neither flow below 25% of the total.
	for i, b := range bytes {
		if float64(b) < 0.25*float64(total) {
			t.Fatalf("flow %d starved: %v of %v bytes", i, b, total)
		}
	}
}

func TestFastRetransmitRecoversFromSingleLoss(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	// Force a loss by briefly failing the path after ~50 packets.
	var fct sim.Time
	f := StartFlow(eng, n.Host(0), n.Host(4), 5, 4<<20, dcConfig(), func(fl *Flow, now sim.Time) {
		fct = fl.FCT(now)
	})
	// Drop everything in the host uplink queue once, mid-transfer, by
	// flapping it down/up instantly.
	eng.At(2*sim.Millisecond, func(now sim.Time) {
		n.Host(0).AccessLink().SetUp(false)
		n.Host(0).AccessLink().SetUp(true)
	})
	eng.Run(sim.MaxTime)
	if fct == 0 {
		t.Fatal("flow did not complete after loss")
	}
	st := f.Sender.Stats()
	if st.FastRetx == 0 && st.Timeouts == 0 {
		t.Fatal("loss recovered without any retransmission event recorded")
	}
	// With a healthy dup-ACK stream, fast retransmit should beat the
	// 10 ms minRTO: total time well under a timeout-dominated run.
	if st.FastRetx == 0 {
		t.Fatalf("recovery used timeouts only: %+v", st)
	}
}

func TestRTOFiresWhenAllAcksLost(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := dcConfig()
	f := StartFlow(eng, n.Host(0), n.Host(4), 6, 200<<10, cfg, nil)
	// Kill the whole fabric briefly: everything in flight dies, no dup
	// ACKs are possible, so only the RTO can recover.
	eng.At(500*sim.Microsecond, func(sim.Time) {
		n.FailLink(0, 0, 0)
		n.FailLink(0, 1, 0)
	})
	eng.At(30*sim.Millisecond, func(sim.Time) {
		n.RestoreLink(0, 0, 0)
		n.RestoreLink(0, 1, 0)
	})
	eng.Run(sim.MaxTime)
	st := f.Sender.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("no RTO despite a black-holed path: %+v", st)
	}
	if f.Receiver.Delivered() != 200<<10 {
		t.Fatalf("delivered %d bytes, want all after recovery", f.Receiver.Delivered())
	}
}

func TestRTORespectsMinRTO(t *testing.T) {
	for _, minRTO := range []sim.Time{sim.Millisecond, 200 * sim.Millisecond} {
		eng, n := testNet(t, fabric.SchemeECMP)
		cfg := DefaultConfig()
		cfg.MinRTO = minRTO
		cfg.InitRTO = 500 * sim.Millisecond
		var doneAt sim.Time
		StartFlow(eng, n.Host(0), n.Host(4), 7, 50<<10, cfg, func(f *Flow, now sim.Time) {
			doneAt = now
		})
		// Let slow start gather RTT samples first, then black-hole both
		// directions for 30 ms: all in-flight traffic (including ACKs)
		// dies, no dup-ACKs are possible, so only the RTO can recover.
		eng.At(300*sim.Microsecond, func(sim.Time) {
			n.FailLink(0, 0, 0)
			n.FailLink(0, 1, 0)
		})
		eng.At(30*sim.Millisecond, func(sim.Time) {
			n.RestoreLink(0, 0, 0)
			n.RestoreLink(0, 1, 0)
		})
		eng.Run(sim.MaxTime)
		if doneAt == 0 {
			t.Fatalf("minRTO %v: flow stuck", minRTO)
		}
		if doneAt < minRTO {
			t.Fatalf("minRTO %v: recovered at %v, before the timer could legally fire", minRTO, doneAt)
		}
		// With the 1 ms clamp, backed-off retries probe through the
		// outage and finish shortly after the 30 ms restore; with the
		// 200 ms clamp nothing can happen before 200 ms.
		if minRTO == sim.Millisecond && doneAt > 80*sim.Millisecond {
			t.Fatalf("minRTO 1ms: took %v, timer not respecting the lower clamp", doneAt)
		}
		if minRTO == 200*sim.Millisecond && (doneAt < 200*sim.Millisecond || doneAt > 600*sim.Millisecond) {
			t.Fatalf("minRTO 200ms: finished at %v, want shortly after the first 200 ms timeout", doneAt)
		}
	}
}

func TestKarnNoRTTFromRetransmits(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	f := StartFlow(eng, n.Host(0), n.Host(4), 8, 1<<20, dcConfig(), nil)
	eng.At(sim.Millisecond, func(sim.Time) {
		n.Host(0).AccessLink().SetUp(false)
		n.Host(0).AccessLink().SetUp(true)
	})
	eng.Run(sim.MaxTime)
	st := f.Sender.Stats()
	// SRTT must stay in the microsecond range of the physical path; a
	// retransmission-tainted sample would jump it by milliseconds.
	if st.LastSRTT > 5*sim.Millisecond {
		t.Fatalf("SRTT %v polluted by retransmission ambiguity", st.LastSRTT)
	}
}

func TestReceiverReassemblesOutOfOrder(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	h := n.Host(0)
	r := NewReceiver(h, 4000)
	var delivered int64
	r.OnDelivered = func(total int64, _ sim.Time) { delivered = total }

	seg := func(seq int64, size int) *fabric.Packet {
		return &fabric.Packet{FlowID: 1, SrcHost: 4, DstHost: 0, SrcPort: 9, DstPort: 4000,
			Seq: seq, Payload: size}
	}
	// Deliver 2,3,1 of three 100-byte segments.
	r.Receive(seg(100, 100), 0)
	r.Receive(seg(200, 100), 0)
	if delivered != 0 {
		t.Fatalf("delivered %d before the hole filled", delivered)
	}
	if r.OutOfOrder != 2 {
		t.Fatalf("OutOfOrder = %d, want 2", r.OutOfOrder)
	}
	r.Receive(seg(0, 100), 0)
	if delivered != 300 {
		t.Fatalf("delivered %d after hole filled, want 300", delivered)
	}
	_ = eng
}

func TestReceiverMergesOverlappingIntervals(t *testing.T) {
	_, n := testNet(t, fabric.SchemeECMP)
	r := NewReceiver(n.Host(0), 4001)
	seg := func(seq int64, size int) *fabric.Packet {
		return &fabric.Packet{SrcHost: 4, DstHost: 0, SrcPort: 9, DstPort: 4001, Seq: seq, Payload: size}
	}
	r.Receive(seg(300, 100), 0)
	r.Receive(seg(100, 100), 0)
	r.Receive(seg(150, 200), 0) // bridges both
	r.Receive(seg(0, 100), 0)
	if got := r.Delivered(); got != 400 {
		t.Fatalf("delivered %d, want 400", got)
	}
}

func TestReceiverCountsDuplicates(t *testing.T) {
	_, n := testNet(t, fabric.SchemeECMP)
	r := NewReceiver(n.Host(0), 4002)
	seg := &fabric.Packet{SrcHost: 4, DstHost: 0, SrcPort: 9, DstPort: 4002, Seq: 0, Payload: 100}
	r.Receive(seg, 0)
	r.Receive(seg, 0)
	if r.DupSegments != 1 {
		t.Fatalf("DupSegments = %d, want 1", r.DupSegments)
	}
}

func TestSenderPortsRecycleAfterClose(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	for i := 0; i < 100; i++ {
		f := StartFlow(eng, n.Host(0), n.Host(4), uint64(100+i), 10<<10, dcConfig(), nil)
		eng.Run(sim.MaxTime)
		if f.Receiver.Delivered() != 10<<10 {
			t.Fatalf("flow %d incomplete", i)
		}
	}
}

func TestQueuePanicsOnNonPositive(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	s := NewSender(eng, n.Host(0), 1, 4, 5000, dcConfig())
	defer func() {
		if recover() == nil {
			t.Error("Queue(0) did not panic")
		}
	}()
	s.Queue(0, 0)
}

func TestMultipleQueuedTransfersOnOneConnection(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	dst := n.Host(4)
	r := NewReceiver(dst, 5001)
	s := NewSender(eng, n.Host(0), 42, dst.ID, 5001, dcConfig())
	completions := 0
	s.OnAllAcked = func(now sim.Time) {
		completions++
		if completions < 3 {
			s.Queue(100<<10, now)
		}
	}
	s.Queue(100<<10, 0)
	eng.Run(sim.MaxTime)
	if completions != 3 {
		t.Fatalf("%d completions, want 3", completions)
	}
	if r.Delivered() != 300<<10 {
		t.Fatalf("delivered %d, want %d", r.Delivered(), 300<<10)
	}
}

func BenchmarkFlow1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, n := testNet(b, fabric.SchemeCONGA)
		StartFlow(eng, n.Host(0), n.Host(4), uint64(i), 1<<20, dcConfig(), nil)
		eng.Run(sim.MaxTime)
	}
}
