package tcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
)

// HalfFlow is the sender half of a transfer whose receiver lives in another
// space-parallel partition domain (see internal/fabric/partition.go). The
// parallel harness pre-binds a Receiver on the destination host inside the
// destination's domain and passes its port here, so the sender side — the
// part that owns the flow's lifecycle and completion time — runs entirely
// inside the source domain. The receiver is purely reactive (it schedules
// nothing and just ACKs what arrives), so leaving it bound after the flow
// completes changes no observable behavior: late retransmits are re-ACKed
// exactly as a real closed-but-lingering endpoint would.
type HalfFlow struct {
	Sender  *Sender
	Size    int64
	Started sim.Time

	pool         *FlowPool
	onDone       func(f *HalfFlow, now sim.Time)
	onAllAckedFn func(now sim.Time) // finish, bound once per HalfFlow object
	inPool       bool
}

// StartHalfFlow begins transferring size bytes from src to the receiver
// already bound at (dstHost, dstPort). onDone (optional) receives the flow
// and its completion time; the sender is closed before the callback, and
// the flow returns to the pool right after, so the callback must not retain
// it. The destination receiver is the caller's to manage.
func (p *FlowPool) StartHalfFlow(eng *sim.Engine, src *fabric.Host, flowID uint64,
	dstHost, dstPort int, size int64, cfg Config, onDone func(f *HalfFlow, now sim.Time)) *HalfFlow {
	if size <= 0 {
		size = 1
	}
	now := eng.Now()
	f := p.getHalf()
	f.pool = p
	f.onDone = onDone
	f.Size = size
	f.Started = now
	f.Sender = p.NewSender(eng, src, flowID, dstHost, dstPort, cfg)
	f.Sender.OnAllAcked = f.onAllAckedFn
	f.Sender.Queue(size, now)
	return f
}

// finish is the half-flow's completion path (the sender's OnAllAcked):
// close the sender first so its port recycles even if the callback panics,
// run the caller's callback, then hand the shell back to the pool.
func (f *HalfFlow) finish(now sim.Time) {
	f.Sender.Close()
	if f.onDone != nil {
		f.onDone(f, now)
	}
	if f.pool != nil {
		f.pool.putHalf(f)
	}
}

// FCT returns the flow completion time given the completion timestamp.
func (f *HalfFlow) FCT(done sim.Time) sim.Time { return done - f.Started }

// getHalf acquires a HalfFlow shell, from the free list when possible. The
// completion callback is bound once per object, on first construction.
func (p *FlowPool) getHalf() *HalfFlow {
	if p != nil {
		if n := len(p.halves); n > 0 {
			f := p.halves[n-1]
			p.halves[n-1] = nil
			p.halves = p.halves[:n-1]
			p.FlowRecycled++
			f.inPool = false
			return f
		}
		p.FlowAllocs++
	}
	f := &HalfFlow{}
	f.onAllAckedFn = f.finish
	return f
}

// putHalf releases a completed half-flow and its sender.
func (p *FlowPool) putHalf(f *HalfFlow) {
	if p == nil || f == nil || f.inPool {
		return
	}
	p.PutSender(f.Sender)
	f.Sender = nil
	f.onDone = nil
	f.inPool = true
	p.halves = append(p.halves, f)
}
