package tcp

import (
	"testing"

	"conga/internal/fabric"
	"conga/internal/sim"
)

// flowRecord captures everything observable about one completed flow, for
// bit-identical comparison between fresh-allocation and recycled runs.
type flowRecord struct {
	fct   sim.Time
	stats Stats
	rcvd  int64
}

// runMeasuredFlows starts three flows host0→host4 at fixed absolute times
// and returns their records. The caller controls whether the pool is warm
// (objects recycle) or cold (every flow allocates fresh); either way the
// measured flows use the same hosts, flow IDs, ports and start times, so
// the records must match exactly.
func runMeasuredFlows(t *testing.T, eng *sim.Engine, n *fabric.Network, pool *FlowPool) []flowRecord {
	t.Helper()
	sizes := []int64{1 << 20, 200_000, 50_000}
	recs := make([]flowRecord, len(sizes))
	got := 0
	for i, size := range sizes {
		i, size := i, size
		at := 100*sim.Millisecond + sim.Time(i)*sim.Millisecond
		eng.At(at, func(now sim.Time) {
			pool.StartFlow(eng, n.Host(0), n.Host(4), uint64(11+i), size, dcConfig(),
				func(f *Flow, done sim.Time) {
					recs[i] = flowRecord{fct: f.FCT(done), stats: f.Sender.Stats(), rcvd: f.Receiver.Delivered()}
					got++
				})
		})
	}
	eng.Run(sim.MaxTime)
	if got != len(sizes) {
		t.Fatalf("only %d of %d measured flows completed", got, len(sizes))
	}
	return recs
}

// TestRecycledFlowsBitIdentical is the pool's reset-invariant regression
// test: a flow running on recycled Sender/Receiver/Flow objects must be
// indistinguishable from one on freshly allocated objects. The warm run
// first cycles flows through the pool on *other* hosts (1→5), so the
// measured hosts' port sequences are untouched and any difference can only
// come from state leaking through recycling.
func TestRecycledFlowsBitIdentical(t *testing.T) {
	run := func(warm bool) ([]flowRecord, *FlowPool) {
		eng, n := testNet(t, fabric.SchemeECMP)
		pool := NewFlowPool()
		if warm {
			done := 0
			for i := 0; i < 4; i++ {
				pool.StartFlow(eng, n.Host(1), n.Host(5), uint64(900+i), 64<<10, dcConfig(),
					func(*Flow, sim.Time) { done++ })
			}
			eng.Run(80 * sim.Millisecond)
			if done != 4 {
				t.Fatalf("warm-up: %d of 4 flows completed", done)
			}
		}
		return runMeasuredFlows(t, eng, n, pool), pool
	}

	fresh, _ := run(false)
	warm, pool := run(true)
	if pool.FlowRecycled == 0 || pool.SenderRecycled == 0 || pool.ReceiverRecycled == 0 {
		t.Fatalf("warm run did not recycle: flows %d senders %d receivers %d",
			pool.FlowRecycled, pool.SenderRecycled, pool.ReceiverRecycled)
	}
	for i := range fresh {
		if fresh[i] != warm[i] {
			t.Errorf("flow %d: fresh %+v != recycled %+v", i, fresh[i], warm[i])
		}
	}
}

// TestPoolSteadyStateAllocationFree proves the tentpole claim directly:
// once the pools (flow, packet, event) are warm, a complete flow lifecycle
// — start, slow-start, data transfer, close, recycle — performs zero heap
// allocations.
func TestPoolSteadyStateAllocationFree(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	pool := NewFlowPool()
	cfg := dcConfig()
	done := false
	onDone := func(*Flow, sim.Time) { done = true } // hoisted: the lifecycle under test must not charge for the caller's closure
	runOne := func() {
		done = false
		pool.StartFlow(eng, n.Host(0), n.Host(4), 7, 256<<10, cfg, onDone)
		eng.Run(sim.MaxTime)
		if !done {
			t.Fatal("flow did not complete")
		}
	}
	for i := 0; i < 3; i++ {
		runOne() // warm the free lists and the engine's wheel
	}
	if allocs := testing.AllocsPerRun(10, runOne); allocs > 0 {
		t.Fatalf("steady-state flow lifecycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPoolRefusesLiveEndpoints checks the pool's ownership guards: a
// sender or receiver that is still open must not enter the free list, and
// a double put must not alias one object into two slots.
func TestPoolRefusesLiveEndpoints(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	pool := NewFlowPool()
	cfg := dcConfig()

	port := n.Host(4).AllocPort()
	r := pool.NewReceiver(n.Host(4), port)
	s := pool.NewSender(eng, n.Host(0), 1, n.Host(4).ID, port, cfg)

	pool.PutSender(s) // still open: must be refused
	pool.PutReceiver(r)
	s2 := pool.NewSender(eng, n.Host(0), 2, n.Host(4).ID, port+1000, cfg)
	if s2 == s {
		t.Fatal("pool recycled a sender that was still open")
	}
	r2 := pool.NewReceiver(n.Host(4), port+1000)
	if r2 == r {
		t.Fatal("pool recycled a receiver that was still bound")
	}

	s.Close()
	r.Close()
	pool.PutSender(s)
	pool.PutSender(s) // double put: second must be a no-op
	a := pool.NewSender(eng, n.Host(0), 3, n.Host(4).ID, port+2000, cfg)
	b := pool.NewSender(eng, n.Host(0), 4, n.Host(4).ID, port+3000, cfg)
	if a == b {
		t.Fatal("double put aliased one sender into two live endpoints")
	}
	if a != s {
		t.Fatal("closed sender was not recycled")
	}
}

// TestRebindPanicsOnOpenEndpoint: Rebind is only legal on a closed
// endpoint — rebinding a live one would orphan its bound port and timers.
func TestRebindPanicsOnOpenEndpoint(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := dcConfig()
	port := n.Host(4).AllocPort()
	NewReceiver(n.Host(4), port)
	s := NewSender(eng, n.Host(0), 1, n.Host(4).ID, port, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("Rebind of an open sender did not panic")
		}
	}()
	s.Rebind(eng, n.Host(0), 2, n.Host(4).ID, port+1, cfg)
}

// TestNilPoolFallback: a nil *FlowPool behaves exactly like the unpooled
// API, so call sites that never recycle (persistent flows in asymmetry
// experiments) need no special casing.
func TestNilPoolFallback(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	var pool *FlowPool
	done := false
	pool.StartFlow(eng, n.Host(0), n.Host(4), 1, 100_000, dcConfig(),
		func(*Flow, sim.Time) { done = true })
	eng.Run(sim.MaxTime)
	if !done {
		t.Fatal("nil-pool flow did not complete")
	}
}
