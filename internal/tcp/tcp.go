// Package tcp implements a NewReno-style TCP data transfer over the fabric
// simulator: slow start, congestion avoidance, fast retransmit/recovery on
// three duplicate ACKs, and an RFC 6298 retransmission timer with
// configurable minimum RTO (the knob the paper's Incast experiments turn).
//
// It substitutes for the Linux stack the paper drives through the Network
// Simulation Cradle. Connections are modelled post-handshake: a Receiver is
// bound to a port, a Sender streams bytes at it, and ACKs flow back on the
// reverse path through the same fabric (so they experience the same queues
// and carry CONGA feedback).
//
// The congestion-avoidance window growth is pluggable (Config.CAIncrease),
// which is how internal/mptcp couples subflows with LIA without forking the
// loss-recovery machinery.
package tcp

import (
	"fmt"

	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/telemetry"
)

// Config holds transport parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// MSS is the maximum segment (payload) size. DefaultConfig derives it
	// from a 1500-byte MTU; the Incast experiments also use 9000.
	MSS int
	// InitCwnd is the initial congestion window in segments (Linux: 10).
	InitCwnd int
	// MinRTO clamps the retransmission timer from below. Linux default is
	// 200 ms; Vasudevan et al. recommend 1 ms for Incast-heavy clusters.
	MinRTO sim.Time
	// MaxRTO caps exponential backoff.
	MaxRTO sim.Time
	// InitRTO is the timer value before the first RTT sample (RFC 6298
	// says 1 s).
	InitRTO sim.Time
	// DupThresh is the duplicate-ACK count that triggers fast retransmit.
	DupThresh int
	// MaxCwnd caps the window in bytes (models the receive/socket buffer).
	MaxCwnd int
	// ReorderWindow, when positive, makes the sender reordering-resilient
	// (RACK-style): on reaching DupThresh duplicate ACKs it waits this
	// long before declaring loss, and stands down if the cumulative ACK
	// advances meanwhile. The paper's per-packet CONGA variant (§1,
	// Figure 1's "optimal, needs reordering-resilient TCP") requires
	// this; classic fast retransmit uses 0.
	ReorderWindow sim.Time
}

// MTUToMSS converts an Ethernet MTU to the TCP payload size (IPv4 20 + TCP
// 20 bytes of headers).
func MTUToMSS(mtu int) int { return mtu - 40 }

// DefaultConfig returns Linux-like defaults for a 1500-byte MTU.
func DefaultConfig() Config {
	return Config{
		MSS:       MTUToMSS(1500),
		InitCwnd:  10,
		MinRTO:    200 * sim.Millisecond,
		MaxRTO:    30 * sim.Second,
		InitRTO:   sim.Second,
		DupThresh: 3,
		MaxCwnd:   12 << 20, // 12 MB: enough for 10 Gbps × 10 ms
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.MSS <= 0:
		return fmt.Errorf("tcp: MSS %d must be positive", c.MSS)
	case c.InitCwnd <= 0:
		return fmt.Errorf("tcp: InitCwnd %d must be positive", c.InitCwnd)
	case c.MinRTO <= 0:
		return fmt.Errorf("tcp: MinRTO %v must be positive", c.MinRTO)
	case c.MaxRTO < c.MinRTO:
		return fmt.Errorf("tcp: MaxRTO %v < MinRTO %v", c.MaxRTO, c.MinRTO)
	case c.InitRTO <= 0:
		return fmt.Errorf("tcp: InitRTO %v must be positive", c.InitRTO)
	case c.DupThresh <= 0:
		return fmt.Errorf("tcp: DupThresh %d must be positive", c.DupThresh)
	case c.MaxCwnd < c.MSS:
		return fmt.Errorf("tcp: MaxCwnd %d smaller than one MSS", c.MaxCwnd)
	}
	return nil
}

// Stats aggregates a sender's loss-recovery activity.
type Stats struct {
	SegmentsSent   uint64
	BytesSent      uint64
	FastRetx       uint64
	Timeouts       uint64
	RetxSegments   uint64
	DupAcksSeen    uint64
	RTTSamples     uint64
	LastSRTT       sim.Time
	BytesAcked     int64
	RecoveryEvents uint64
}

type senderState int

const (
	stateOpen senderState = iota
	stateRecovery
)

// Sender is the transmitting half of a connection. Create with NewSender,
// add data with Queue, and watch completion with OnAllAcked.
type Sender struct {
	eng  *sim.Engine
	host *fabric.Host
	cfg  Config

	flowID  uint64
	srcPort int
	dstHost int
	dstPort int
	lbHash  uint64 // precomputed fabric LB hash for outgoing segments

	// Sequence space (bytes).
	sndUna int64 // oldest unacknowledged
	sndNxt int64 // next to send
	avail  int64 // total bytes queued by the application

	cwnd     float64
	ssthresh float64
	state    senderState
	recover  int64 // recovery point: sndNxt when loss was detected
	dupAcks  int
	// SACK scoreboard: disjoint sorted ranges in (sndUna, sndNxt) the
	// receiver has reported holding. retxMark is the high-water mark of
	// hole retransmissions in the current recovery episode.
	sacked   spanSet
	retxMark int64
	retxPipe int64 // retransmitted bytes not yet cumulatively acked

	// RTO state (RFC 6298). The retransmission timer is lazily re-armed:
	// ACKs only advance the deadline field, and a fire before the deadline
	// reschedules itself instead of timing out. With per-segment ACKs this
	// turns a cancel+schedule pair per ACK into one field write — the
	// engine event exists only at the (rarely reached) fire times.
	srtt, rttvar sim.Time
	rto          sim.Time
	backoff      uint
	deadline     sim.Time // when the timeout should really fire
	timerAt      sim.Time // when the pending timer event fires (≤ deadline)
	timer        sim.EventHandle
	reorderTimer sim.EventHandle // deferred loss declaration (ReorderWindow)
	reorderArmed int64           // sndUna when the reorder timer was armed
	lastRetx     sim.Time        // Karn: suppress samples older than this
	onTimeoutFn  sim.Event       // bound once so arming the timer allocates nothing
	onReorderFn  sim.Event       // bound once so deferring loss allocates nothing

	// CAIncrease, when set, replaces the Reno additive increase during
	// congestion avoidance. It receives the freshly acknowledged byte
	// count and must adjust the window through AddCwnd.
	CAIncrease func(ackedBytes int)

	// OnAllAcked fires whenever every queued byte has been acknowledged.
	OnAllAcked func(now sim.Time)
	// OnAcked fires on every cumulative ACK advance with the newly
	// acknowledged byte count.
	OnAcked func(bytes int64, now sim.Time)

	stats Stats
	// tel mirrors loss-recovery counters into the engine-wide telemetry
	// registry; nil when telemetry is off (every bump is one nil check).
	tel *telemetry.TCPCounters
	// trace is the engine-wide packet trace; its nil-safe TriggerRTO fires
	// the flight-recorder stop on the first timeout when armed.
	trace  *telemetry.PacketTrace
	freed  bool
	inPool bool // currently parked on a FlowPool free list
}

// NewSender creates a sender on host addressed at (dstHost, dstPort) and
// binds a fresh local port for its ACKs. flowID must be unique fabric-wide;
// it seeds ECMP and flowlet hashing.
func NewSender(eng *sim.Engine, host *fabric.Host, flowID uint64, dstHost, dstPort int, cfg Config) *Sender {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sender{}
	s.onTimeoutFn = s.onTimeout
	s.onReorderFn = s.onReorderExpire
	s.rebind(eng, host, flowID, dstHost, dstPort, cfg)
	return s
}

// Rebind resets every piece of per-connection protocol state and attaches
// the (closed) sender to a new connection, allocating a fresh local port.
// Unlike FlowPool recycling, the owner-set callbacks (CAIncrease, OnAcked,
// OnAllAcked) are preserved: internal/mptcp reuses pooled connections
// whose subflow callbacks are bound once at construction.
func (s *Sender) Rebind(eng *sim.Engine, host *fabric.Host, flowID uint64, dstHost, dstPort int, cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if s.host != nil && !s.freed {
		panic("tcp: Rebind of a sender that is still open")
	}
	s.rebind(eng, host, flowID, dstHost, dstPort, cfg)
}

// rebind is the single place a sender's mutable state is initialized; both
// fresh construction and pool recycling funnel through it, so a recycled
// sender is indistinguishable from a new one (the FlowPool's reset
// invariant). It deliberately leaves the bound-once callbacks
// (onTimeoutFn, onReorderFn) and the caller-owned callback fields alone.
func (s *Sender) rebind(eng *sim.Engine, host *fabric.Host, flowID uint64, dstHost, dstPort int, cfg Config) {
	s.eng = eng
	s.host = host
	s.cfg = cfg
	s.flowID = flowID
	s.srcPort = host.AllocPort()
	s.dstHost = dstHost
	s.dstPort = dstPort
	s.lbHash = fabric.HashFlow(flowID, host.ID, dstHost, s.srcPort, dstPort)
	s.sndUna, s.sndNxt, s.avail = 0, 0, 0
	s.cwnd = float64(cfg.InitCwnd * cfg.MSS)
	s.ssthresh = float64(cfg.MaxCwnd)
	s.state = stateOpen
	s.recover = 0
	s.dupAcks = 0
	// Zero-assignment is the spanSet's documented full reset: insert
	// re-anchors spans onto the inline array lazily.
	s.sacked = spanSet{}
	s.retxMark, s.retxPipe = 0, 0
	s.srtt, s.rttvar = 0, 0
	s.rto = cfg.InitRTO
	s.backoff = 0
	s.deadline, s.timerAt = 0, 0
	s.timer = sim.EventHandle{}
	s.reorderTimer = sim.EventHandle{}
	s.reorderArmed = 0
	s.lastRetx = -1
	s.stats = Stats{}
	// Telemetry hooks are per-host (per-engine): refetch, since a recycled
	// sender may land on a different host than its previous life.
	s.tel = host.TCPCounters()
	s.trace = host.PacketTrace()
	s.freed = false
	host.Bind(s.srcPort, s)
}

// Close unbinds the sender's ACK port and cancels its timer. Further use is
// invalid.
func (s *Sender) Close() {
	if s.freed {
		return
	}
	s.freed = true
	s.timer.Cancel()
	s.reorderTimer.Cancel()
	s.host.Unbind(s.srcPort)
}

// FlowID returns the sender's fabric flow identity.
func (s *Sender) FlowID() uint64 { return s.flowID }

// SrcPort returns the sender's bound local port.
func (s *Sender) SrcPort() int { return s.srcPort }

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() Stats {
	st := s.stats
	st.LastSRTT = s.srtt
	st.BytesAcked = s.sndUna
	return st
}

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// AddCwnd adjusts the congestion window by delta bytes, clamped to
// [MSS, MaxCwnd]. It is the hook CAIncrease implementations use.
func (s *Sender) AddCwnd(delta float64) {
	s.cwnd += delta
	if s.cwnd < float64(s.cfg.MSS) {
		s.cwnd = float64(s.cfg.MSS)
	}
	if s.cwnd > float64(s.cfg.MaxCwnd) {
		s.cwnd = float64(s.cfg.MaxCwnd)
	}
}

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// InSlowStart reports whether the window is below ssthresh.
func (s *Sender) InSlowStart() bool { return s.cwnd < s.ssthresh }

// Outstanding returns the bytes in flight.
func (s *Sender) Outstanding() int64 { return s.sndNxt - s.sndUna }

// QueuedUnsent returns bytes queued but not yet transmitted.
func (s *Sender) QueuedUnsent() int64 { return s.avail - s.sndNxt }

// Queue appends n bytes to the stream and starts transmitting as the window
// allows. It panics on non-positive n.
func (s *Sender) Queue(n int64, now sim.Time) {
	if n <= 0 {
		panic(fmt.Sprintf("tcp: Queue(%d)", n))
	}
	s.avail += n
	s.trySend(now)
}

func (s *Sender) trySend(now sim.Time) {
	for s.sndNxt < s.avail && s.sndNxt-s.sndUna+int64(s.cfg.MSS) <= int64(s.cwnd) {
		// After an RTO rewound sndNxt, skip over ranges the receiver has
		// SACKed — resending them would only trigger duplicate ACKs.
		if skipped := s.skipSacked(); skipped {
			continue
		}
		payload := int64(s.cfg.MSS)
		if rem := s.avail - s.sndNxt; rem < payload {
			payload = rem
		}
		if next := s.nextSackAbove(s.sndNxt); next > s.sndNxt && next-s.sndNxt < payload {
			payload = next - s.sndNxt
		}
		s.emit(s.sndNxt, int(payload), now)
		s.sndNxt += payload
	}
	// Tail case: less than one MSS of window left but data pending and
	// nothing in flight — send a short segment rather than deadlock.
	if s.sndNxt < s.avail && s.sndNxt == s.sndUna {
		payload := s.avail - s.sndNxt
		if payload > int64(s.cfg.MSS) {
			payload = int64(s.cfg.MSS)
		}
		s.emit(s.sndNxt, int(payload), now)
		s.sndNxt += payload
	}
	if s.Outstanding() > 0 && !s.timer.Pending() {
		s.armTimer(now)
	}
}

func (s *Sender) emit(seq int64, payload int, now sim.Time) {
	p := s.host.NewPacket()
	p.FlowID = s.flowID
	p.DstHost = s.dstHost
	p.SrcPort = s.srcPort
	p.DstPort = s.dstPort
	p.Seq = seq
	p.Payload = payload
	p.SentAt = now
	p.SetLBHash(s.lbHash)
	s.stats.SegmentsSent++
	s.stats.BytesSent += uint64(payload)
	s.host.Send(p, now)
}

func (s *Sender) armTimer(now sim.Time) {
	d := s.rto << s.backoff
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.deadline = now + d
	if !s.timer.Pending() {
		s.timerAt = s.deadline
		s.timer = s.eng.At(s.deadline, s.onTimeoutFn)
	} else if s.deadline < s.timerAt {
		// The RTO shrank below the armed fire time (a large RTT-variance
		// drop); a lazy fire would then be late, so re-arm eagerly. With
		// the MinRTO floor this is rare enough not to matter.
		s.timer.Cancel()
		s.timerAt = s.deadline
		s.timer = s.eng.At(s.deadline, s.onTimeoutFn)
	}
	// Otherwise the pending fire at timerAt ≤ deadline re-checks the
	// deadline and reschedules itself (onTimeout's lazy re-arm).
}

func (s *Sender) onTimeout(now sim.Time) {
	if s.sndUna >= s.avail {
		return // everything acked while the timer raced
	}
	if now < s.deadline {
		// Stale fire: ACKs advanced the deadline without touching the
		// event. Chase it.
		s.timerAt = s.deadline
		s.timer = s.eng.At(s.deadline, s.onTimeoutFn)
		return
	}
	s.stats.Timeouts++
	if s.tel != nil {
		s.tel.Timeouts++
	}
	s.trace.TriggerRTO(now)
	// RFC 5681 §3.1 / RFC 6298 §5: collapse to one segment, halve
	// ssthresh, back the timer off, and go back to snd.una.
	flight := float64(s.Outstanding())
	s.ssthresh = flight / 2
	if min := float64(2 * s.cfg.MSS); s.ssthresh < min {
		s.ssthresh = min
	}
	s.cwnd = float64(s.cfg.MSS)
	s.sndNxt = s.sndUna
	s.state = stateOpen
	s.dupAcks = 0
	// The scoreboard is retained (RFC 6675): the go-back-N resend skips
	// SACKed ranges, so already-delivered data is not resent.
	s.retxMark = 0
	s.retxPipe = 0
	if s.backoff < 16 {
		s.backoff++
	}
	s.lastRetx = now
	s.stats.RetxSegments++
	if s.tel != nil {
		s.tel.Retransmits++
	}
	// Retransmit one segment; trySend re-arms the timer with the
	// backed-off RTO.
	s.trySend(now)
}

// sackRange is the scoreboard's span type; the scoreboard itself is a
// spanSet, which keeps the common ≤4-hole case in an inline array.
type sackRange = span

// Receive handles an ACK (the sender's bound port only ever sees ACKs).
func (s *Sender) Receive(p *fabric.Packet, now sim.Time) {
	if !p.IsAck || s.freed {
		return
	}
	for i := 0; i < p.SackN; i++ {
		s.addSack(p.Sack[i][0], p.Sack[i][1])
	}
	ack := p.AckNo
	if ack > s.sndUna {
		s.onNewAck(ack, p.EchoTS, now)
	} else if ack == s.sndUna && s.Outstanding() > 0 {
		s.onDupAck(now)
	}
}

// addSack merges one reported range into the scoreboard.
func (s *Sender) addSack(start, end int64) {
	if end <= start || end <= s.sndUna {
		return
	}
	if start < s.sndUna {
		start = s.sndUna
	}
	s.sacked.insert(start, end)
}

// skipSacked advances sndNxt over a SACKed range it sits in, reporting
// whether it moved.
func (s *Sender) skipSacked() bool {
	for _, r := range s.sacked.spans {
		if s.sndNxt >= r.start && s.sndNxt < r.end {
			s.sndNxt = r.end
			return true
		}
	}
	return false
}

// nextSackAbove returns the start of the first SACKed range beginning
// strictly above seq, or −1 if none.
func (s *Sender) nextSackAbove(seq int64) int64 {
	for _, r := range s.sacked.spans {
		if r.start > seq {
			return r.start
		}
	}
	return -1
}

// pruneSack drops scoreboard state at or below the cumulative ACK.
func (s *Sender) pruneSack() {
	sp := s.sacked.spans
	k := 0
	for _, r := range sp {
		if r.end <= s.sndUna {
			continue
		}
		if r.start < s.sndUna {
			r.start = s.sndUna
		}
		sp[k] = r
		k++
	}
	s.sacked.spans = sp[:k]
}

// nextHole returns the start of the next unretransmitted, unsacked segment
// below the recovery point, and how many bytes may be retransmitted there;
// ok is false when no hole remains.
func (s *Sender) nextHole() (seq int64, size int, ok bool) {
	cand := s.sndUna
	if s.retxMark > cand {
		cand = s.retxMark
	}
	limit := s.recover
	if s.avail < limit {
		limit = s.avail
	}
	for _, r := range s.sacked.spans {
		if cand >= limit {
			return 0, 0, false
		}
		if cand < r.start {
			// Hole before this sacked range.
			n := int64(s.cfg.MSS)
			if r.start-cand < n {
				n = r.start - cand
			}
			if limit-cand < n {
				n = limit - cand
			}
			return cand, int(n), n > 0
		}
		if cand < r.end {
			cand = r.end
		}
	}
	if cand >= limit {
		return 0, 0, false
	}
	n := int64(s.cfg.MSS)
	if limit-cand < n {
		n = limit - cand
	}
	return cand, int(n), n > 0
}

// retransmitNextHole resends the next unsacked hole, if any remains in
// this recovery episode.
func (s *Sender) retransmitNextHole(now sim.Time) bool {
	seq, size, ok := s.nextHole()
	if !ok {
		return false
	}
	s.lastRetx = now
	s.stats.RetxSegments++
	if s.tel != nil {
		s.tel.Retransmits++
	}
	s.emit(seq, size, now)
	s.retxMark = seq + int64(size)
	s.retxPipe += int64(size)
	return true
}

func (s *Sender) sackedBytes() int64 {
	var n int64
	for _, r := range s.sacked.spans {
		n += r.end - r.start
	}
	return n
}

// lostBytes estimates the bytes the network has dropped, RFC 6675 style: a
// byte is deemed lost when at least 3·MSS of data above it has been
// SACKed. With H the highest SACKed offset, that is every unsacked byte
// below H − 3·MSS.
func (s *Sender) lostBytes() int64 {
	if len(s.sacked.spans) == 0 {
		return 0
	}
	limit := s.sacked.spans[len(s.sacked.spans)-1].end - int64(3*s.cfg.MSS)
	if limit <= s.sndUna {
		return 0
	}
	lost := limit - s.sndUna
	for _, r := range s.sacked.spans {
		if r.start >= limit {
			break
		}
		end := r.end
		if end > limit {
			end = limit
		}
		lost -= end - r.start
	}
	if lost < 0 {
		lost = 0
	}
	return lost
}

// recoveryAllowance estimates how many more bytes may enter the network
// during recovery: cwnd minus the pipe, where the pipe is outstanding data
// less SACKed and inferred-lost bytes, plus unacked retransmissions
// (RFC 6675's pipe, approximated at byte granularity).
func (s *Sender) recoveryAllowance() int64 {
	pipe := s.sndNxt - s.sndUna - s.sackedBytes() - s.lostBytes() + s.retxPipe
	return int64(s.cwnd) - pipe
}

// recoverySend transmits as much as the recovery pipe allows: hole
// retransmissions first, then new data.
func (s *Sender) recoverySend(now sim.Time) {
	for s.recoveryAllowance() >= int64(s.cfg.MSS) {
		if s.retransmitNextHole(now) {
			continue
		}
		if s.sndNxt >= s.avail {
			return
		}
		payload := int64(s.cfg.MSS)
		if rem := s.avail - s.sndNxt; rem < payload {
			payload = rem
		}
		s.emit(s.sndNxt, int(payload), now)
		s.sndNxt += payload
	}
}

func (s *Sender) onNewAck(ack int64, echo sim.Time, now sim.Time) {
	acked := ack - s.sndUna
	s.sndUna = ack
	s.backoff = 0
	s.pruneSack()

	// RTT sampling with Karn's rule: skip samples that could stem from a
	// retransmitted segment.
	if echo > s.lastRetx {
		s.sampleRTT(now - echo)
	}

	if s.state == stateRecovery {
		s.retxPipe -= acked
		if s.retxPipe < 0 {
			s.retxPipe = 0
		}
		if ack > s.recover {
			// Full recovery: deflate to ssthresh and leave recovery.
			s.state = stateOpen
			s.cwnd = s.ssthresh
			s.dupAcks = 0
			s.retxMark = 0
			s.retxPipe = 0
		} else {
			// Partial ACK: the hole at the new snd.una is definitely
			// still missing (its earlier retransmission may itself have
			// been lost), so repair restarts there — this retransmission
			// is mandatory, outside the pipe allowance.
			s.retxMark = s.sndUna
			s.retransmitNextHole(now)
			s.recoverySend(now)
		}
	} else {
		s.dupAcks = 0
		s.grow(int(acked))
	}

	if s.Outstanding() > 0 {
		s.armTimer(now)
	} else {
		s.timer.Cancel()
	}
	if s.OnAcked != nil {
		s.OnAcked(acked, now)
	}
	s.trySend(now)
	if s.sndUna >= s.avail && s.OnAllAcked != nil {
		s.OnAllAcked(now)
	}
}

func (s *Sender) grow(acked int) {
	if s.InSlowStart() {
		inc := acked
		if inc > s.cfg.MSS {
			// One MSS per ACK, as without ABC; with per-segment ACKs
			// the distinction is cosmetic.
			inc = s.cfg.MSS
		}
		s.AddCwnd(float64(inc))
		return
	}
	if s.CAIncrease != nil {
		s.CAIncrease(acked)
		return
	}
	// Reno: one MSS per RTT ≈ MSS²/cwnd per ACK.
	s.AddCwnd(float64(s.cfg.MSS) * float64(s.cfg.MSS) / s.cwnd)
}

func (s *Sender) onDupAck(now sim.Time) {
	s.stats.DupAcksSeen++
	if s.tel != nil {
		s.tel.DupAcks++
	}
	if s.state == stateRecovery {
		// Each arriving ACK signals a departure; send what the pipe
		// allows (hole repairs before new data).
		s.recoverySend(now)
		return
	}
	s.dupAcks++
	if s.dupAcks < s.cfg.DupThresh {
		return
	}
	if s.cfg.ReorderWindow > 0 {
		// Reordering resilience: defer the loss declaration; a path
		// change (flowlet move, packet spraying) produces dup ACKs that
		// resolve on their own within the reordering window.
		if !s.reorderTimer.Pending() {
			if s.tel != nil {
				s.tel.ReorderDefers++
			}
			s.reorderArmed = s.sndUna
			// At(now+...), not After: transport handlers schedule relative
			// to their logical now, never the engine clock (the two could
			// drift if a handler ever ran under a fused hop chain).
			s.reorderTimer = s.eng.At(now+s.cfg.ReorderWindow, s.onReorderFn)
		}
		return
	}
	s.enterRecovery(now)
}

// onReorderExpire is the reorder timer body (bound once as onReorderFn):
// the deferred loss declaration fires only if the cumulative ACK has not
// moved since the timer was armed.
func (s *Sender) onReorderExpire(now sim.Time) {
	if s.freed || s.state == stateRecovery {
		return
	}
	if s.sndUna == s.reorderArmed && s.Outstanding() > 0 {
		s.enterRecovery(now)
	}
}

// enterRecovery starts SACK-based fast recovery (RFC 6675 style).
func (s *Sender) enterRecovery(now sim.Time) {
	s.stats.FastRetx++
	s.stats.RecoveryEvents++
	if s.tel != nil {
		s.tel.FastRetx++
	}
	s.state = stateRecovery
	s.recover = s.sndNxt
	s.retxMark = s.sndUna
	s.retxPipe = 0
	flight := float64(s.Outstanding())
	s.ssthresh = flight / 2
	if min := float64(2 * s.cfg.MSS); s.ssthresh < min {
		s.ssthresh = min
	}
	s.cwnd = s.ssthresh
	// The first retransmission is mandatory regardless of pipe state.
	s.retransmitNextHole(now)
	s.armTimer(now)
}

func (s *Sender) sampleRTT(r sim.Time) {
	if r <= 0 {
		r = 1
	}
	s.stats.RTTSamples++
	if s.srtt == 0 {
		s.srtt = r
		s.rttvar = r / 2
	} else {
		// RFC 6298 with α=1/8, β=1/4.
		d := s.srtt - r
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}
