package tcp

import (
	"testing"

	"conga/internal/fabric"
	"conga/internal/sim"
)

func newBareSender(t *testing.T) (*Sender, *fabric.Network, *sim.Engine) {
	t.Helper()
	eng, n := testNet(t, fabric.SchemeECMP)
	s := NewSender(eng, n.Host(0), 1, 4, 7000, dcConfig())
	return s, n, eng
}

func TestAddSackMergesRanges(t *testing.T) {
	s, _, _ := newBareSender(t)
	s.avail = 100000
	s.sndNxt = 100000
	s.addSack(1000, 2000)
	s.addSack(3000, 4000)
	s.addSack(1500, 3500) // bridges both
	if len(s.sacked.spans) != 1 || s.sacked.spans[0] != (sackRange{1000, 4000}) {
		t.Fatalf("scoreboard %v, want [{1000 4000}]", s.sacked.spans)
	}
}

func TestAddSackKeepsDisjointSorted(t *testing.T) {
	s, _, _ := newBareSender(t)
	s.addSack(5000, 6000)
	s.addSack(1000, 2000)
	s.addSack(3000, 4000)
	want := []sackRange{{1000, 2000}, {3000, 4000}, {5000, 6000}}
	if len(s.sacked.spans) != 3 {
		t.Fatalf("scoreboard %v", s.sacked.spans)
	}
	for i, r := range want {
		if s.sacked.spans[i] != r {
			t.Fatalf("scoreboard %v, want %v", s.sacked.spans, want)
		}
	}
}

func TestAddSackIgnoresBelowUna(t *testing.T) {
	s, _, _ := newBareSender(t)
	s.sndUna = 5000
	s.addSack(1000, 3000) // entirely stale
	if len(s.sacked.spans) != 0 {
		t.Fatalf("stale SACK retained: %v", s.sacked.spans)
	}
	s.addSack(4000, 7000) // partially stale: clamp to una
	if len(s.sacked.spans) != 1 || s.sacked.spans[0].start != 5000 {
		t.Fatalf("clamping failed: %v", s.sacked.spans)
	}
}

func TestPruneSack(t *testing.T) {
	s, _, _ := newBareSender(t)
	s.addSack(1000, 2000)
	s.addSack(3000, 4000)
	s.sndUna = 3500
	s.pruneSack()
	if len(s.sacked.spans) != 1 || s.sacked.spans[0] != (sackRange{3500, 4000}) {
		t.Fatalf("prune result %v", s.sacked.spans)
	}
}

// TestAddSackOverflowsInlineCapacity: more than four disjoint holes spill
// the scoreboard past the spanSet's inline array; ordering, merging, and
// the containing-index contract must survive the spill and the collapse
// back to a single range.
func TestAddSackOverflowsInlineCapacity(t *testing.T) {
	s, _, _ := newBareSender(t)
	// Six disjoint ranges, inserted out of order.
	for _, r := range []sackRange{{9000, 9500}, {1000, 1500}, {5000, 5500}, {3000, 3500}, {11000, 11500}, {7000, 7500}} {
		s.addSack(r.start, r.end)
	}
	want := []sackRange{{1000, 1500}, {3000, 3500}, {5000, 5500}, {7000, 7500}, {9000, 9500}, {11000, 11500}}
	if len(s.sacked.spans) != len(want) {
		t.Fatalf("scoreboard %v, want %v", s.sacked.spans, want)
	}
	for i, r := range want {
		if s.sacked.spans[i] != r {
			t.Fatalf("scoreboard %v, want %v", s.sacked.spans, want)
		}
	}
	// Inserting into the spilled set still reports the containing index.
	if got := s.sacked.insert(5600, 5700); got != 3 {
		t.Fatalf("containing index %d, want 3", got)
	}
	// One bridging range collapses everything back below inline capacity.
	s.addSack(1000, 12000)
	if len(s.sacked.spans) != 1 || s.sacked.spans[0] != (sackRange{1000, 12000}) {
		t.Fatalf("collapse result %v", s.sacked.spans)
	}
	// And the set keeps working after the collapse.
	s.addSack(20000, 21000)
	if len(s.sacked.spans) != 2 || s.sacked.spans[1] != (sackRange{20000, 21000}) {
		t.Fatalf("post-collapse insert %v", s.sacked.spans)
	}
}

func TestNextHoleWalksGaps(t *testing.T) {
	s, _, _ := newBareSender(t)
	mss := int64(s.cfg.MSS)
	s.avail = 100 * mss
	s.sndNxt = 20 * mss
	s.recover = 20 * mss
	s.retxMark = 0
	s.addSack(2*mss, 4*mss)
	s.addSack(6*mss, 8*mss)

	// First hole: [0, mss) bounded by MSS.
	seq, size, ok := s.nextHole()
	if !ok || seq != 0 || size != int(mss) {
		t.Fatalf("hole 1 = (%d,%d,%v)", seq, size, ok)
	}
	s.retxMark = seq + int64(size)
	// Second hole: [mss, 2mss).
	seq, size, ok = s.nextHole()
	if !ok || seq != mss || size != int(mss) {
		t.Fatalf("hole 2 = (%d,%d,%v)", seq, size, ok)
	}
	s.retxMark = 4 * mss // jump past the first sacked range
	seq, _, ok = s.nextHole()
	if !ok || seq != 4*mss {
		t.Fatalf("hole 3 = (%d,%v), want start 4·MSS", seq, ok)
	}
	s.retxMark = 20 * mss
	if _, _, ok := s.nextHole(); ok {
		t.Fatal("hole found beyond recovery point")
	}
}

func TestNextHoleBoundedBySackStart(t *testing.T) {
	s, _, _ := newBareSender(t)
	mss := int64(s.cfg.MSS)
	s.avail = 100 * mss
	s.sndNxt = 20 * mss
	s.recover = 20 * mss
	s.addSack(mss/2, 2*mss) // hole is only half an MSS
	seq, size, ok := s.nextHole()
	if !ok || seq != 0 || int64(size) != mss/2 {
		t.Fatalf("short hole = (%d,%d,%v), want (0,%d,true)", seq, size, ok, mss/2)
	}
}

func TestLostBytesRFC6675Heuristic(t *testing.T) {
	s, _, _ := newBareSender(t)
	mss := int64(s.cfg.MSS)
	s.sndNxt = 20 * mss
	// SACKed [10mss, 20mss): everything below 20mss−3mss = 17mss that is
	// unsacked counts as lost → [0, 10mss).
	s.addSack(10*mss, 20*mss)
	if got := s.lostBytes(); got != 10*mss {
		t.Fatalf("lostBytes = %d, want %d", got, 10*mss)
	}
	// Nothing sacked → nothing provably lost.
	s.sacked = spanSet{}
	if got := s.lostBytes(); got != 0 {
		t.Fatalf("lostBytes = %d with empty scoreboard", got)
	}
}

func TestSkipSackedAdvancesSndNxt(t *testing.T) {
	s, _, _ := newBareSender(t)
	s.addSack(1000, 5000)
	s.sndNxt = 2000 // as after an RTO rewind
	if !s.skipSacked() {
		t.Fatal("skipSacked did not move")
	}
	if s.sndNxt != 5000 {
		t.Fatalf("sndNxt = %d, want 5000", s.sndNxt)
	}
	if s.skipSacked() {
		t.Fatal("skipSacked moved outside a sacked range")
	}
}

// TestSingleLossRecoversWithoutSpuriousRetx: with exactly one lost segment
// and SACK, recovery must retransmit (almost) only that segment.
func TestSingleLossRecoversWithoutSpuriousRetx(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := dcConfig()
	// Interpose on the path: drop exactly one data packet mid-flow by
	// briefly failing the host access link at a precise moment... too
	// blunt; instead use a tiny edge buffer so a short overshoot drops a
	// couple of segments, and bound the retransmission overhead.
	f := StartFlow(eng, n.Host(0), n.Host(4), 5, 2<<20, cfg, nil)
	eng.At(1200*sim.Microsecond, func(sim.Time) {
		// Flap: drops whatever is queued right now (a handful of
		// segments), leaving later segments to generate SACKs.
		n.Host(0).AccessLink().SetUp(false)
		n.Host(0).AccessLink().SetUp(true)
	})
	eng.Run(sim.MaxTime)
	st := f.Sender.Stats()
	if f.Receiver.Delivered() != 2<<20 {
		t.Fatal("flow incomplete")
	}
	if st.RetxSegments == 0 {
		t.Skip("flap dropped nothing in flight; nothing to verify")
	}
	// SACK recovery should not retransmit more than ~3× the actual loss
	// (NewReno without SACK would resend the entire window).
	drops := n.Host(0).AccessLink().Drops
	if st.RetxSegments > 3*drops+10 {
		t.Fatalf("%d retransmissions for %d drops; SACK not limiting recovery", st.RetxSegments, drops)
	}
}

// TestReorderingTriggersDupAcksNotCollapse: mild reordering (as caused by
// a flowlet path move) produces dup ACKs; SACK keeps goodput healthy.
func TestReorderingUnderSprayStillCompletes(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeSpray) // per-packet spraying reorders across 2 paths
	var fct sim.Time
	f := StartFlow(eng, n.Host(0), n.Host(4), 6, 4<<20, dcConfig(), func(fl *Flow, now sim.Time) {
		fct = fl.FCT(now)
	})
	eng.Run(sim.MaxTime)
	if fct == 0 {
		t.Fatal("sprayed flow never completed")
	}
	if f.Receiver.Delivered() != 4<<20 {
		t.Fatal("bytes missing")
	}
	// Equal-length paths at equal rates: spraying costs little here; the
	// flow should still finish near line rate despite any reordering.
	goodput := float64(4<<20*8) / fct.Seconds()
	if goodput < 0.5e9 {
		t.Fatalf("goodput %.0f Mbps under spraying; reordering handling broken", goodput/1e6)
	}
}

func TestSackCarriedOnWire(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	r := NewReceiver(n.Host(0), 7100)
	var lastSack [][2]int64
	// Interpose: watch ACKs arriving back at a fake sender port. The packet
	// is recycled after delivery, so copy the blocks out.
	n.Host(4).Bind(7101, recvProbe(func(p *fabric.Packet) {
		lastSack = lastSack[:0]
		for i := 0; i < p.SackN; i++ {
			lastSack = append(lastSack, p.Sack[i])
		}
	}))
	seg := func(seq int64, size int) *fabric.Packet {
		return &fabric.Packet{FlowID: 2, SrcHost: 4, DstHost: 0, SrcPort: 7101, DstPort: 7100,
			Seq: seq, Payload: size}
	}
	r.Receive(seg(1460, 1460), 0) // out of order → SACK block
	eng.Run(sim.MaxTime)
	if len(lastSack) != 1 || lastSack[0] != [2]int64{1460, 2920} {
		t.Fatalf("SACK on wire = %v, want [[1460 2920]]", lastSack)
	}
}

type recvProbe func(p *fabric.Packet)

func (f recvProbe) Receive(p *fabric.Packet, _ sim.Time) { f(p) }

// TestReorderWindowSuppressesSpuriousRecovery: under per-packet spraying
// (pure reordering, no loss), classic TCP fires spurious fast retransmits;
// a reordering window suppresses them.
func TestReorderWindowSuppressesSpuriousRecovery(t *testing.T) {
	run := func(window sim.Time) (fastRetx uint64, fct sim.Time) {
		eng, n := testNet(t, fabric.SchemeSpray)
		cfg := dcConfig()
		cfg.ReorderWindow = window
		var done sim.Time
		f := StartFlow(eng, n.Host(0), n.Host(4), 11, 4<<20, cfg, func(fl *Flow, now sim.Time) {
			done = fl.FCT(now)
		})
		eng.Run(sim.MaxTime)
		return f.Sender.Stats().FastRetx, done
	}
	classicRetx, classicFCT := run(0)
	resilientRetx, resilientFCT := run(500 * sim.Microsecond)
	if classicFCT == 0 || resilientFCT == 0 {
		t.Fatal("flows did not finish")
	}
	if resilientRetx > classicRetx {
		t.Fatalf("reorder window increased spurious recoveries: %d vs %d", resilientRetx, classicRetx)
	}
	// Equal-cost equal-length paths: there is no real loss, so resilient
	// TCP should see (almost) no recovery episodes at all.
	if resilientRetx > 2 && classicRetx > 0 && resilientRetx >= classicRetx {
		t.Fatalf("reordering still misread as loss: %d episodes", resilientRetx)
	}
}

// TestReorderWindowStillRecoversRealLoss: deferral must not break actual
// loss recovery.
func TestReorderWindowStillRecoversRealLoss(t *testing.T) {
	eng, n := testNet(t, fabric.SchemeECMP)
	cfg := dcConfig()
	cfg.ReorderWindow = 200 * sim.Microsecond
	var done sim.Time
	StartFlow(eng, n.Host(0), n.Host(4), 12, 1<<20, cfg, func(fl *Flow, now sim.Time) {
		done = fl.FCT(now)
	})
	eng.At(sim.Millisecond, func(sim.Time) {
		n.Host(0).AccessLink().SetUp(false)
		n.Host(0).AccessLink().SetUp(true)
	})
	eng.Run(sim.MaxTime)
	if done == 0 {
		t.Fatal("flow with reorder window never recovered from real loss")
	}
}
