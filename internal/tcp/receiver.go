package tcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
)

// Receiver is the receiving half of a connection: it reassembles the byte
// stream, acknowledges every arriving segment cumulatively, and buffers
// out-of-order data. Reordering (e.g. caused by flowlet moves or packet
// spraying) surfaces to the sender as duplicate ACKs, exactly the TCP
// behaviour CONGA's flowlet gap is sized to avoid.
type Receiver struct {
	host *fabric.Host
	port int

	rcvNxt int64
	// ooo holds disjoint, sorted out-of-order intervals [start, end);
	// the common few-hole case stays in the spanSet's inline array.
	ooo spanSet

	// ACK flow-hash cache. The reverse-direction 5-tuple is fixed per
	// sender, so the fabric LB hash is computed once and stamped on every
	// ACK. The identity key matters: a receiver port can serve many
	// senders (incast half-flows), and each has its own reverse tuple.
	ackFlowID uint64
	ackSrc    int // data packet's SrcHost the cache was computed for
	ackPort   int // data packet's SrcPort likewise
	ackHash   uint64

	// OnDelivered fires whenever the in-order prefix advances, with the
	// new prefix length. Applications use it to delimit responses.
	OnDelivered func(total int64, now sim.Time)

	// Counters.
	SegmentsIn  uint64
	BytesIn     uint64
	OutOfOrder  uint64
	DupSegments uint64
	AcksOut     uint64

	freed  bool
	inPool bool // currently parked on a FlowPool free list
}

// NewReceiver binds a receiver to (host, port).
func NewReceiver(host *fabric.Host, port int) *Receiver {
	r := &Receiver{}
	r.rebind(host, port)
	return r
}

// Rebind resets the (closed) receiver and binds it to a new (host, port).
// The OnDelivered callback is preserved, mirroring Sender.Rebind.
func (r *Receiver) Rebind(host *fabric.Host, port int) {
	if r.host != nil && !r.freed {
		panic("tcp: Rebind of a receiver that is still bound")
	}
	r.rebind(host, port)
}

// rebind resets all reassembly state; fresh construction and pool
// recycling both funnel through it (the FlowPool's reset invariant).
func (r *Receiver) rebind(host *fabric.Host, port int) {
	r.host = host
	r.port = port
	r.rcvNxt = 0
	r.ooo = spanSet{} // zero-assignment is the spanSet's full reset
	r.ackFlowID, r.ackSrc, r.ackPort, r.ackHash = 0, 0, 0, 0
	r.SegmentsIn, r.BytesIn = 0, 0
	r.OutOfOrder, r.DupSegments, r.AcksOut = 0, 0, 0
	r.freed = false
	host.Bind(port, r)
}

// Close unbinds the receiver.
func (r *Receiver) Close() {
	if r.freed {
		return
	}
	r.freed = true
	r.host.Unbind(r.port)
}

// Delivered returns the length of the contiguous received prefix.
func (r *Receiver) Delivered() int64 { return r.rcvNxt }

// Receive handles a data segment: update reassembly state and emit a
// cumulative ACK echoing the segment's timestamp.
func (r *Receiver) Receive(p *fabric.Packet, now sim.Time) {
	if p.IsAck || r.freed {
		return
	}
	r.SegmentsIn++
	r.BytesIn += uint64(p.Payload)
	start, end := p.Seq, p.Seq+int64(p.Payload)

	recent := -1
	switch {
	case end <= r.rcvNxt:
		r.DupSegments++
	case start <= r.rcvNxt:
		r.rcvNxt = end
		r.drainOOO()
		if r.OnDelivered != nil {
			r.OnDelivered(r.rcvNxt, now)
		}
	default:
		r.OutOfOrder++
		recent = r.insertOOO(start, end)
	}
	r.sendAck(p, recent, now)
}

// insertOOO merges [start, end) into the buffer and returns the index of
// the interval now containing it.
func (r *Receiver) insertOOO(start, end int64) int {
	return r.ooo.insert(start, end)
}

func (r *Receiver) drainOOO() {
	for len(r.ooo.spans) > 0 && r.ooo.spans[0].start <= r.rcvNxt {
		if r.ooo.spans[0].end > r.rcvNxt {
			r.rcvNxt = r.ooo.spans[0].end
		}
		r.ooo.popFront()
	}
}

func (r *Receiver) sendAck(data *fabric.Packet, recent int, now sim.Time) {
	r.AcksOut++
	ack := r.host.NewPacket()
	ack.FlowID = data.FlowID // same 5-tuple identity, reverse direction
	ack.DstHost = data.SrcHost
	ack.SrcPort = r.port
	ack.DstPort = data.SrcPort
	ack.IsAck = true
	ack.AckNo = r.rcvNxt
	ack.EchoTS = data.SentAt
	ack.SentAt = now
	if r.ackFlowID != data.FlowID || r.ackSrc != data.SrcHost || r.ackPort != data.SrcPort {
		r.ackFlowID, r.ackSrc, r.ackPort = data.FlowID, data.SrcHost, data.SrcPort
		r.ackHash = fabric.HashFlow(data.FlowID, r.host.ID, data.SrcHost, r.port, data.SrcPort)
	}
	ack.SetLBHash(r.ackHash)
	// SACK blocks (3-block limit, as with a timestamp option on the
	// wire). Per RFC 2018 the first block reports the range containing
	// the segment that triggered this ACK; the rest rotate through the
	// other buffered ranges so the sender's scoreboard converges even
	// with many holes.
	if n := len(r.ooo.spans); n > 0 {
		start := recent
		if start < 0 || start >= n {
			start = 0
		}
		for k := 0; k < n && k < 3; k++ {
			iv := r.ooo.spans[(start+k)%n]
			ack.Sack[ack.SackN] = [2]int64{iv.start, iv.end}
			ack.SackN++
		}
	}
	r.host.Send(ack, now)
}
