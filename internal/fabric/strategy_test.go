package fabric

import (
	"testing"

	"conga/internal/core"
	"conga/internal/sim"
)

func TestPathUsableWithdrawsSpineForUnreachableLeaf(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	// Kill spine 1's only link to leaf 1: leaf 0 must stop using spine 1
	// for leaf-1 traffic, while leaf-0-bound paths are untouched.
	n.FailLink(1, 1, 0)
	usable := n.Leaves[0].PathUsable(1)
	if usable[1] {
		t.Fatal("leaf 0 still considers spine 1 usable toward leaf 1")
	}
	if !usable[0] {
		t.Fatal("healthy path marked unusable")
	}
}

func TestPathUsableRequiresLocalUplink(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	n.FailLink(0, 0, 0) // leaf 0's own uplink to spine 0
	usable := n.Leaves[0].PathUsable(1)
	if usable[0] || !usable[1] {
		t.Fatalf("usable = %v, want [false true]", usable)
	}
}

func TestPathUsableLAGSurvivesPartialFailure(t *testing.T) {
	cfg := smallTestConfig(SchemeECMP)
	cfg.LinksPerSpine = 2
	n := MustNetwork(sim.New(), cfg)
	n.FailLink(1, 1, 0) // one of two members on the spine1→leaf1 pair
	usable := n.Leaves[0].PathUsable(1)
	for i, ok := range usable {
		if !ok {
			t.Fatalf("uplink %d withdrawn though spine 1 still reaches leaf 1: %v", i, usable)
		}
	}
}

// TestCEMarkingTakesPathMaximum drives packets across two DRE-loaded links
// and checks the CE field ends at the maximum.
func TestCEMarkingTakesPathMaximum(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.NumSpines = 1
	n := MustNetwork(eng, cfg)
	// Preload the spine downlink's DRE so it reports high congestion.
	down := n.Spines[0].Downlinks(1)[0]
	scale := down.Rate() / 8 * core.DefaultParams().Tau().Seconds()
	down.DRE().Add(int(scale)) // utilization ≈ 1 → metric 7

	var seenCE uint8
	probe := &congaProbe{onArrival: func(p *Packet) { seenCE = p.Hdr.CE }}
	orig := n.Leaves[1].strategy
	n.Leaves[1].strategy = &tapStrategy{Strategy: orig, probe: probe}

	sink := &testSink{}
	n.Host(4).Bind(800, sink)
	p := &Packet{FlowID: 3, DstHost: 4, DstPort: 800, Payload: 1000}
	eng.At(0, func(now sim.Time) { n.Host(0).Send(p, now) })
	eng.Run(sim.MaxTime)

	if sink.packets != 1 {
		t.Fatal("probe packet not delivered")
	}
	if seenCE != 7 {
		t.Fatalf("CE at destination leaf = %d, want 7 (max over path)", seenCE)
	}
}

type congaProbe struct {
	onArrival func(p *Packet)
}

type tapStrategy struct {
	Strategy
	probe *congaProbe
}

func (s *tapStrategy) OnFabricArrival(p *Packet, srcLeaf int, now sim.Time) {
	s.probe.onArrival(p)
	s.Strategy.OnFabricArrival(p, srcLeaf, now)
}

// TestCongaFlowStickyWithinFlow: with the 13 ms flowlet timeout, every
// packet of a flow rides the same uplink even across millisecond gaps.
func TestCongaFlowStickyWithinFlow(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGAFlow)
	cfg.Params = core.CongaFlowParams()
	cfg.Params.FlowletTableSize = 1024
	n := MustNetwork(eng, cfg)
	ls := n.Leaves[0]
	p := &Packet{FlowID: 9, SrcHost: 0, DstHost: 4, SrcPort: 1, DstPort: 2}
	first := ls.Strategy().SelectUplink(p, 1, 0)
	for _, at := range []sim.Time{sim.Millisecond, 5 * sim.Millisecond, 12 * sim.Millisecond} {
		eng.Run(at)
		if got := ls.Strategy().SelectUplink(p, 1, at); got != first {
			t.Fatalf("CONGA-Flow moved the flow at %v: %d → %d", at, first, got)
		}
	}
}

// TestCongaMovesOnFlowletGap: with the default 500µs timeout and a
// congested cached path, a gap lets the flow move.
func TestCongaMovesOnFlowletGap(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	n := MustNetwork(eng, cfg)
	ls := n.Leaves[0]
	strat := ls.Strategy().(*congaStrategy)
	p := &Packet{FlowID: 9, SrcHost: 0, DstHost: 4, SrcPort: 1, DstPort: 2}
	first := strat.SelectUplink(p, 1, 0)

	// Make the cached uplink look congested via remote feedback.
	strat.Core().ToLeaf.Update(1, first, 7, 0)

	// Within the flowlet: must not move despite congestion.
	if got := strat.SelectUplink(p, 1, 100*sim.Microsecond); got != first {
		t.Fatal("flow moved mid-flowlet")
	}
	// After a >2·Tfl gap (sweeps run on the network ticker): must move.
	eng.Run(2 * sim.Millisecond)
	if got := strat.SelectUplink(p, 1, eng.Now()); got == first {
		t.Fatal("flow did not move to the uncongested path after a flowlet gap")
	}
}

func TestSprayCountersSkipDownPaths(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeSpray))
	n.FailLink(0, 0, 0)
	ls := n.Leaves[0]
	p := &Packet{FlowID: 1, DstHost: 4}
	for i := 0; i < 10; i++ {
		if got := ls.Strategy().SelectUplink(p, 1, 0); got != 1 {
			t.Fatalf("spray used failed uplink %d", got)
		}
	}
}

func TestLinkSetUpDropsQueueAndResetsDRE(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.NumSpines = 1
	n := MustNetwork(eng, cfg)
	up := n.Leaves[0].Uplinks()[0]
	// Saturate so the queue holds packets, then fail.
	sink := &testSink{}
	n.Host(4).Bind(900, sink)
	flood(eng, n, 1, n.Host(0), n.Host(4), 900, 1400, 1e9, 0, sim.Millisecond)
	eng.Run(500 * sim.Microsecond)
	if up.QueuedBytes() == 0 {
		t.Skip("no queue built; cannot exercise drop-on-fail")
	}
	up.SetUp(false)
	if up.QueuedBytes() != 0 {
		t.Fatal("queue survived link failure")
	}
	if up.DRE().X() != 0 {
		t.Fatal("DRE survived link failure")
	}
}

func TestNetworkTotalDropsCountsEverything(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeECMP)
	cfg.EdgeBufBytes = 5000
	cfg.FabricRateBps = 4e9 // keep the bottleneck at the access downlink
	n := MustNetwork(eng, cfg)
	sink := &testSink{}
	n.Host(4).Bind(901, sink)
	flood(eng, n, 1, n.Host(0), n.Host(4), 901, 1400, 1e9, 0, 2*sim.Millisecond)
	flood(eng, n, 2, n.Host(1), n.Host(4), 901, 1400, 1e9, 0, 2*sim.Millisecond)
	eng.Run(3 * sim.Millisecond)
	if n.TotalDrops() == 0 {
		t.Fatal("oversubscription dropped nothing")
	}
}
