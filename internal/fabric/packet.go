// Package fabric is a packet-level discrete-event model of a datacenter
// Leaf-Spine fabric: hosts, access and fabric links with drop-tail queues,
// leaf switches running a pluggable load-balancing strategy (ECMP, CONGA,
// CONGA-Flow, local congestion-aware, packet spraying, weighted random),
// and spine switches with per-link DREs and CONGA congestion marking.
//
// It substitutes for the paper's hardware testbed and OMNET++ simulator:
// store-and-forward switching, serialization and propagation delay, finite
// buffers, link failures, and the VXLAN-style overlay between leaf TEPs are
// all modelled; the CONGA algorithm itself lives in internal/core and is
// driven by this package exactly as the ASIC pipeline drives the CONGA
// block.
package fabric

import (
	"conga/internal/core"
	"conga/internal/sim"
)

// Wire overheads, in bytes. Packets carry their transport payload length;
// links compute wire size from it.
const (
	// HeaderOverhead is Ethernet (18, incl. preamble-less frame with FCS)
	// + IPv4 (20) + TCP (20).
	HeaderOverhead = 58
	// MinFrame is the minimum Ethernet frame size; pure ACKs pad to it.
	MinFrame = 64
)

// Packet is the simulated unit of transfer. One struct serves both data and
// ACK segments; transports interpret the sequence fields.
type Packet struct {
	// Flow identity. FlowID is unique per (sub)flow and is what ECMP and
	// the flowlet table hash.
	FlowID  uint64
	SrcHost int
	DstHost int
	SrcPort int
	DstPort int

	// Transport state.
	Seq     int64 // first payload byte's offset
	Payload int   // payload bytes carried (0 for pure ACKs)
	IsAck   bool
	AckNo   int64 // cumulative ACK (valid when IsAck)
	// Sack carries up to SackN selective-acknowledgement ranges
	// [start, end) above AckNo, mirroring the TCP SACK option's 3-block
	// limit when a timestamp option is present. A fixed array keeps pure
	// ACKs allocation-free on the hot path.
	Sack  [3][2]int64
	SackN int
	// EchoTS carries the send timestamp for RTT measurement, echoing the
	// data packet's SentAt in the ACK.
	EchoTS sim.Time

	// Overlay state, valid while the packet is inside the fabric.
	Hdr     core.Header
	SrcLeaf int
	DstLeaf int
	// Ctrl marks a leaf-to-leaf control packet (explicit CONGA feedback):
	// it terminates at the destination TEP instead of a host.
	Ctrl bool

	// Measurement.
	SentAt sim.Time

	// lbHash memoizes the load-balancing flow hash (see strategy.go's
	// flowHash): the hashed identity fields are immutable once the packet
	// enters the fabric, and every hop's strategy would otherwise recompute
	// the same 40-round byte hash. Zero means "not yet computed"; the pool
	// clears it on recycle.
	lbHash uint64

	// pooled marks packets allocated from a PacketPool; only those are
	// recycled on release (see PacketPool).
	pooled bool
}

// SetLBHash stamps the packet's memoized load-balancing flow hash. h must
// be HashFlow of the packet's identity fields — callers precompute it once
// per connection; a wrong value would silently change every LB decision for
// the packet. Zero is ignored (it is the "not computed" sentinel).
func (p *Packet) SetLBHash(h uint64) { p.lbHash = h }

// WireSize returns the packet's size on an access link in bytes.
func (p *Packet) WireSize() int {
	s := p.Payload + HeaderOverhead
	if s < MinFrame {
		s = MinFrame
	}
	return s
}

// FabricWireSize returns the packet's size on a fabric link, where it
// additionally carries the VXLAN/CONGA encapsulation.
func (p *Packet) FabricWireSize() int { return p.WireSize() + core.EncapOverhead }

// Receiver consumes packets delivered to a host port. Transport endpoints
// implement it.
type Receiver interface {
	Receive(p *Packet, now sim.Time)
}

// node is anything a link can deliver packets to: a switch or a host.
type node interface {
	handle(p *Packet, from *Link, now sim.Time)
}
