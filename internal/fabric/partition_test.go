package fabric

import (
	"strings"
	"testing"

	"conga/internal/sim"
	"conga/internal/telemetry"
)

func partCfg(leaves, spines int) Config {
	return Config{
		NumLeaves: leaves, NumSpines: spines, HostsPerLeaf: 2, LinksPerSpine: 1,
		AccessRateBps: 10e9, FabricRateBps: 40e9,
		Scheme: SchemeCONGA,
	}
}

func partEngines(p int) []*sim.Engine {
	engines := make([]*sim.Engine, p)
	for i := range engines {
		engines[i] = sim.New()
	}
	return engines
}

// TestPartitionAssignment checks the ownership rules: leaf l and everything
// below it in domain l%P, spine s in s%P, every link owned by its
// transmitter's domain, and a mailbox on exactly the links whose two ends
// live in different domains.
func TestPartitionAssignment(t *testing.T) {
	n, err := NewPartitionedNetwork(partEngines(2), partCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if n.Domains() != 2 {
		t.Fatalf("Domains() = %d, want 2", n.Domains())
	}
	if n.DomainPool(0) != n.pool {
		t.Fatal("pools[0] must alias the sequential pool field")
	}
	for leaf, ls := range n.Leaves {
		want := leaf % 2
		if got := n.LeafDomain(leaf); got != want {
			t.Fatalf("LeafDomain(%d) = %d, want %d", leaf, got, want)
		}
		for i, up := range ls.uplinks {
			if up.dom != want {
				t.Fatalf("%s owned by domain %d, want %d (transmitter side)", up.Name, up.dom, want)
			}
			spineDom := ls.uplinkSpine[i] % 2
			if cross := up.xq != nil; cross != (want != spineDom) {
				t.Fatalf("%s: mailbox presence %v, want %v", up.Name, cross, want != spineDom)
			}
		}
	}
	for _, h := range n.Hosts {
		want := h.Leaf % 2
		if n.HostDomain(h.ID) != want || h.out.dom != want || h.out.xq != nil {
			t.Fatalf("host %d: access link must be intra-domain %d", h.ID, want)
		}
	}
	for s, ss := range n.Spines {
		for leaf := range ss.down {
			for _, down := range ss.down[leaf] {
				if down.dom != s%2 {
					t.Fatalf("%s owned by domain %d, want %d", down.Name, down.dom, s%2)
				}
				if cross := down.xq != nil; cross != (s%2 != leaf%2) {
					t.Fatalf("%s: mailbox presence %v, want %v", down.Name, cross, s%2 != leaf%2)
				}
			}
		}
	}
}

// TestSequentialBuildHasNoPartitionMachinery checks P=1 (the NewNetwork
// path) carries no mailboxes and marks every link intra-domain — the
// sequential hot path must not grow a branch that does anything.
func TestSequentialBuildHasNoPartitionMachinery(t *testing.T) {
	n, err := NewNetwork(sim.New(), partCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if n.Domains() != 1 || n.mail != nil || n.deliv != nil {
		t.Fatalf("sequential network grew partition state: domains=%d mail=%v", n.Domains(), n.mail)
	}
	for _, l := range n.fabricLinks {
		if l.xq != nil || l.dom != 0 {
			t.Fatalf("%s: sequential link has xq=%v dom=%d", l.Name, l.xq, l.dom)
		}
	}
}

// TestExchangeMergeOrder white-boxes the deterministic merge: entries from
// several source domains with equal and unequal timestamps must be
// scheduled in (time, srcDomain, srcSeq) order, regardless of drain order.
func TestExchangeMergeOrder(t *testing.T) {
	n, err := NewPartitionedNetwork(partEngines(3), partCfg(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	l := n.Leaves[0].uplinks[0]
	mk := func(id uint64) *Packet {
		p := n.DomainPool(0).Get()
		p.FlowID = id
		return p
	}
	const we = sim.Time(2000) // windowEnd
	// Source domain 0: out-of-time-order entries (seq still per-mailbox).
	n.mail[0][2].push(mk(1), 5000, l)
	n.mail[0][2].push(mk(2), 3000, l)
	// Source domain 1: a tie at 3000 with domain 0 and an earlier arrival.
	n.mail[1][2].push(mk(3), 3000, l)
	n.mail[1][2].push(mk(4), 3000, l)
	n.mail[1][2].push(mk(5), 2000, l)

	n.Exchange(2, we)

	want := []uint64{5, 2, 3, 4, 1} // (2000,s1) (3000,s0) (3000,s1,q0) (3000,s1,q1) (5000,s0)
	b := n.deliv[2].last
	if b == nil || len(b.queue) != len(want) {
		t.Fatalf("exchange batch queued %v arrivals, want %d", b, len(want))
	}
	for i, w := range want {
		if got := b.queue[i].p.FlowID; got != w {
			t.Fatalf("merge position %d: flow %d, want %d", i, got, w)
		}
	}
	if got := n.DomainEngine(2).Live(); got != len(want) {
		t.Fatalf("engine 2 has %d live delivery events, want %d", got, len(want))
	}
	for s := 0; s < 3; s++ {
		if s != 2 && len(n.mail[s][2].entries) != 0 {
			t.Fatalf("mailbox %d->2 not drained", s)
		}
	}
}

// TestExchangeLookaheadViolationPanics: an arrival inside the window being
// exchanged is a partitioning bug and must fail loudly, not corrupt time.
func TestExchangeLookaheadViolationPanics(t *testing.T) {
	n, err := NewPartitionedNetwork(partEngines(2), partCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	n.mail[0][1].push(n.DomainPool(0).Get(), 100, n.Leaves[0].uplinks[0])
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on lookahead violation")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "lookahead") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	n.Exchange(1, 2000)
}

// TestExportSurvivesLinkFailure mirrors the sequential semantics of
// SetUp(false), which drops the queue but not packets already in flight: a
// packet exported to a mailbox has left the transmitter, so failing the
// link afterwards must neither drop it nor stop its delivery event from
// being scheduled on the destination domain at the exported time.
func TestExportSurvivesLinkFailure(t *testing.T) {
	n, err := NewPartitionedNetwork(partEngines(2), partCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// leaf0's uplink to spine1 crosses domain 0 -> 1.
	ls := n.Leaves[0]
	var l *Link
	for i, up := range ls.uplinks {
		if ls.uplinkSpine[i] == 1 {
			l = up
		}
	}
	if l == nil || l.xq == nil {
		t.Fatal("expected a cross-domain uplink l0->s1")
	}

	p := n.DomainPool(0).Get()
	p.Payload = 1000
	eng0 := n.DomainEngine(0)
	eng0.At(0, func(now sim.Time) { l.Send(p, now) })
	window := n.Cfg.FabricPropDelay
	eng0.Run(window - 1) // run domain 0's first window: tx completes, export happens

	if len(l.xq.entries) != 1 {
		t.Fatalf("mailbox has %d entries after tx, want 1", len(l.xq.entries))
	}
	exportAt := l.xq.entries[0].at

	l.SetUp(false)
	if len(l.xq.entries) != 1 || l.Drops != 0 {
		t.Fatalf("link failure touched the exported packet: %d entries, %d drops",
			len(l.xq.entries), l.Drops)
	}

	n.Exchange(1, window)
	b := n.deliv[1].last
	if b == nil || len(b.queue) != 1 || b.queue[0].p != p {
		t.Fatalf("exported packet not queued for delivery: %+v", b)
	}
	if next, ok := n.DomainEngine(1).NextAt(); !ok || next != exportAt {
		t.Fatalf("delivery scheduled at %v (ok=%v), want %v", next, ok, exportAt)
	}
}

// TestPartitionedValidation exercises the build-time guards.
func TestPartitionedValidation(t *testing.T) {
	if _, err := NewPartitionedNetwork(nil, partCfg(2, 2)); err == nil {
		t.Error("no engines: expected error")
	}
	if _, err := NewPartitionedNetwork(partEngines(3), partCfg(2, 2)); err == nil {
		t.Error("more domains than leaves: expected error")
	}
	neg := partCfg(2, 2)
	neg.FabricPropDelay = -1
	if _, err := NewPartitionedNetwork(partEngines(1), neg); err == nil {
		t.Error("negative FabricPropDelay: expected error")
	}
	nega := partCfg(2, 2)
	nega.AccessPropDelay = -1
	if _, err := NewPartitionedNetwork(partEngines(1), nega); err == nil {
		t.Error("negative AccessPropDelay: expected error")
	}
	trace := partCfg(2, 2)
	trace.Telemetry = telemetry.New(telemetry.Options{Trace: true})
	if _, err := NewPartitionedNetwork(partEngines(2), trace); err == nil {
		t.Error("trace under P>1: expected error")
	}
	if _, err := NewPartitionedNetwork(partEngines(1), trace); err != nil {
		t.Errorf("trace under P=1 must stay allowed: %v", err)
	}
	tap := partCfg(2, 2)
	tap.Telemetry = telemetry.New(telemetry.Options{Tap: true})
	if _, err := NewPartitionedNetwork(partEngines(2), tap); err == nil {
		t.Error("tap under P>1: expected error")
	}
}
