package fabric

import (
	"testing"

	"conga/internal/sim"
)

// nopReceiver is a minimal Receiver for demux-table tests.
type nopReceiver struct{ id int }

func (*nopReceiver) Receive(*Packet, sim.Time) {}

// TestPortTableOps exercises the open-addressed demux table against a map
// reference across a mixed insert/lookup/delete sequence that forces
// several growths.
func TestPortTableOps(t *testing.T) {
	var pt portTable
	ref := map[int]*nopReceiver{}
	rng := sim.NewRand(7)
	for i := 0; i < 5000; i++ {
		port := 1 + rng.Intn(800) // small space: plenty of collisions and reuse
		switch {
		case rng.Intn(3) == 0:
			delete(ref, port)
			pt.delete(port)
		default:
			if _, ok := ref[port]; !ok {
				r := &nopReceiver{id: i}
				ref[port] = r
				if !pt.insert(port, r) {
					t.Fatalf("insert(%d) refused a free port", port)
				}
			} else if pt.insert(port, &nopReceiver{}) {
				t.Fatalf("insert(%d) accepted a taken port", port)
			}
		}
	}
	if pt.len() != len(ref) {
		t.Fatalf("table has %d entries, reference has %d", pt.len(), len(ref))
	}
	for port := 1; port <= 800; port++ {
		got, ok := pt.get(port)
		want, wok := ref[port]
		if ok != wok || (ok && got.(*nopReceiver) != want) {
			t.Fatalf("port %d: table (%v, %v) disagrees with reference (%v, %v)", port, got, ok, want, wok)
		}
	}
}

// TestPortTableCollisionDelete forces same-slot collisions and checks the
// backward-shift deletion keeps the probe chain intact — the classic
// open-addressing bug is deleting mid-chain and stranding later keys.
func TestPortTableCollisionDelete(t *testing.T) {
	var pt portTable
	pt.init(minPortTableSize)
	target := pt.slotFor(1)
	chain := []int{1}
	for p := 2; len(chain) < 4 && p < 1<<22; p++ {
		if pt.slotFor(int32(p)) == target {
			chain = append(chain, p)
		}
	}
	if len(chain) < 4 {
		t.Skip("could not find 4 colliding ports (hash changed?)")
	}
	recvs := make([]*nopReceiver, len(chain))
	for i, p := range chain {
		recvs[i] = &nopReceiver{id: i}
		pt.insert(p, recvs[i])
	}
	pt.delete(chain[1]) // mid-chain removal
	for i, p := range chain {
		if i == 1 {
			if pt.has(p) {
				t.Fatalf("deleted port %d still present", p)
			}
			continue
		}
		got, ok := pt.get(p)
		if !ok || got.(*nopReceiver) != recvs[i] {
			t.Fatalf("port %d lost after mid-chain delete (probe chain broken)", p)
		}
	}
}

// TestAllocPortSkipsLiveReceiver: the wraparound path must never hand out
// a port that still has a bound receiver.
func TestAllocPortSkipsLiveReceiver(t *testing.T) {
	h := newHost(0, 0, nil)
	h.Bind(101, &nopReceiver{})
	var got []int
	for i := 0; i < 7; i++ {
		got = append(got, h.allocPortIn(100, 105))
	}
	// nextPort starts at minPort, outside [100,105], so the first call
	// wraps to 100; 101 stays bound and must be skipped on every lap.
	want := []int{100, 102, 103, 104, 105, 100, 102}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocation sequence %v, want %v", got, want)
		}
	}
}

// TestAllocPortExhaustionPanics: when every port in the range is live the
// allocator must fail loudly instead of spinning or double-allocating.
func TestAllocPortExhaustionPanics(t *testing.T) {
	h := newHost(0, 0, nil)
	for p := 200; p <= 203; p++ {
		h.Bind(p, &nopReceiver{})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted port range did not panic")
		}
	}()
	h.allocPortIn(200, 203)
}

// TestBindPanics: port 0 is the table's empty sentinel and duplicate binds
// are harness bugs; both must panic.
func TestBindPanics(t *testing.T) {
	for name, bind := range map[string]func(h *Host){
		"zero port":      func(h *Host) { h.Bind(0, &nopReceiver{}) },
		"negative port":  func(h *Host) { h.Bind(-5, &nopReceiver{}) },
		"duplicate port": func(h *Host) { h.Bind(80, &nopReceiver{}); h.Bind(80, &nopReceiver{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Bind did not panic", name)
				}
			}()
			bind(newHost(0, 0, nil))
		}()
	}
}
