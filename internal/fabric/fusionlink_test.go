package fabric

import (
	"testing"

	"conga/internal/sim"
)

// failRunStats is everything observable about a fail/restore scenario run:
// delivery counts at the sink plus transmit/drop totals over every link in
// the fabric. Fused and unfused runs must agree on all of it.
type failRunStats struct {
	packets  int
	bytes    int64
	tx       uint64
	txBytes  uint64
	drops    uint64
	executed uint64
}

// runFailScenario floods one flow across the fabric, fails leaf 0's uplink
// `up` at failAt, restores it at restoreAt, and runs to 400 µs.
func runFailScenario(t *testing.T, disableFusion bool, up int, failAt, restoreAt sim.Time) failRunStats {
	t.Helper()
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.DisableFusion = disableFusion
	n, err := NewNetwork(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &testSink{}
	dst := n.Hosts[4] // first host on the other leaf
	dst.Bind(7777, sink)
	// Slightly below line rate: links are mostly idle, so the fused run
	// really has claims outstanding when the failure lands.
	flood(eng, n, 1, n.Hosts[0], dst, 7777, 1000, 8e8, 0, 300*sim.Microsecond)

	link := n.Leaves[0].uplinks[up]
	eng.At(failAt, func(sim.Time) { link.SetUp(false) })
	if restoreAt > 0 {
		eng.At(restoreAt, func(sim.Time) { link.SetUp(true) })
	}
	eng.Run(400 * sim.Microsecond)

	st := failRunStats{packets: sink.packets, bytes: sink.bytes, executed: eng.Executed()}
	all := append([]*Link{}, n.fabricLinks...)
	for _, h := range n.Hosts {
		all = append(all, h.out)
	}
	for _, l := range all {
		st.tx += l.TxPackets
		st.txBytes += l.TxBytes
		st.drops += l.Drops
	}
	return st
}

// TestFusionSetUpMidClaimMatchesSlowPath sweeps a link failure (and a later
// restore) across a fine time grid so it lands in every phase of the fused
// transmit lifecycle: before a claim, mid-serialization (the claim-kill
// path: the fused packet is hunted down in the inflight ring and dropped at
// failure time, exactly when the slow path would kill its txPkt), during
// propagation (committed to the wire; must deliver), and while queued. For
// every offset the fused run must match the unfused run packet for packet
// and drop for drop — and must have executed fewer events overall, or the
// sweep never exercised the fast path.
func TestFusionSetUpMidClaimMatchesSlowPath(t *testing.T) {
	for up := 0; up < 2; up++ { // the flow hashes onto one of the two uplinks
		fusedFaster := false
		for off := sim.Time(0); off <= 30*sim.Microsecond; off += 500 * sim.Nanosecond {
			failAt := 20*sim.Microsecond + off
			restoreAt := 120 * sim.Microsecond
			fused := runFailScenario(t, false, up, failAt, restoreAt)
			slow := runFailScenario(t, true, up, failAt, restoreAt)
			f, s := fused, slow
			f.executed, s.executed = 0, 0
			if f != s {
				t.Fatalf("uplink %d failAt %v: fused %+v != unfused %+v", up, failAt, fused, slow)
			}
			if fused.executed < slow.executed {
				fusedFaster = true
			}
		}
		if !fusedFaster {
			t.Fatalf("uplink %d: no sweep point had the fused run execute fewer events", up)
		}
	}
}

// TestExchangeAcceptsBoundaryArrival pins the window-edge contract: a
// fused cross-domain hop whose arrival lands exactly on windowEnd is legal
// (the lookahead guarantee is "at or after"), must survive the merge, and
// must schedule at precisely the boundary tick.
func TestExchangeAcceptsBoundaryArrival(t *testing.T) {
	n, err := NewPartitionedNetwork(partEngines(2), partCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ls := n.Leaves[0]
	var l *Link
	for i, up := range ls.uplinks {
		if ls.uplinkSpine[i] == 1 {
			l = up
		}
	}
	if l == nil || l.xq == nil {
		t.Fatal("expected a cross-domain uplink l0->s1")
	}
	p := n.DomainPool(0).Get()
	const we = sim.Time(2000)
	n.mail[0][1].push(p, we, l) // arrival == windowEnd: the legal edge
	n.Exchange(1, we)           // must not panic

	b := n.deliv[1].last
	if b == nil || len(b.queue) != 1 || b.queue[0].p != p {
		t.Fatalf("boundary arrival not queued: %+v", b)
	}
	if next, ok := n.DomainEngine(1).NextAt(); !ok || next != we {
		t.Fatalf("boundary arrival scheduled at %v (ok=%v), want %v", next, ok, we)
	}
}
