package fabric

import (
	"fmt"

	"conga/internal/core"
	"conga/internal/sim"
	"conga/internal/telemetry"
)

// Config describes a Leaf-Spine fabric. Zero fields take the defaults of
// the paper's testbed topology (Figure 7a): 2 leaves × 2 spines with 2
// parallel 40 Gbps links each, 32 hosts per leaf on 10 Gbps access links —
// a 2:1 oversubscription.
type Config struct {
	NumLeaves     int
	NumSpines     int
	HostsPerLeaf  int
	LinksPerSpine int // parallel links between each leaf-spine pair (LAG)

	AccessRateBps float64
	FabricRateBps float64

	AccessPropDelay sim.Time
	FabricPropDelay sim.Time

	// EdgeBufBytes bounds each leaf→host access-port queue and
	// FabricBufBytes each fabric-port queue; both mimic the per-port
	// share of a shared-buffer ASIC. HostBufBytes bounds the host→leaf
	// NIC queue; it defaults large because a real sender's qdisc
	// backpressures the stack instead of dropping its own packets.
	EdgeBufBytes   int
	FabricBufBytes int
	HostBufBytes   int

	// FabricLinkRate, when non-nil, overrides the rate of the parallel
	// link k between leaf and spine (both directions). Returning 0 keeps
	// FabricRateBps. This is how the §2.4 capacity-asymmetry scenarios
	// (Figures 2 and 3) are modelled.
	FabricLinkRate func(leaf, spine, k int) float64

	Scheme Scheme
	// LeafSchemes optionally overrides the scheme per leaf (incremental
	// deployment, §7: CONGA can run on a subset of leaves and adapts to
	// the traffic the others produce). Entries beyond the list, or in a
	// nil list, use Scheme.
	LeafSchemes []Scheme
	// ExplicitFeedback makes CONGA leaves emit a small feedback-only
	// packet toward leaves with changed metrics and no recent reverse
	// traffic to piggyback on. The paper chose pure piggybacking (§3.3);
	// this option exists to quantify that choice under one-way traffic.
	ExplicitFeedback bool

	Params      core.Params // zero value → core.DefaultParams (or CongaFlowParams for SchemeCONGAFlow)
	WCMPWeights []float64   // SchemeWCMP only; per-uplink weights

	Seed uint64
	VNI  uint32

	// Telemetry, when non-nil, wires the registry's probes through the
	// fabric: per-link counters and trace hooks, and series sampled on the
	// existing DRE-decay and flowlet-sweep tickers (no extra events are
	// scheduled, so the executed-event count is identical with telemetry
	// on or off). The registry must be private to this network's engine.
	Telemetry *telemetry.Registry

	// DisableFusion turns off the idle-path cut-through fast path
	// (DESIGN.md §3.9) and runs every hop through the full
	// transmit→txDone→deliver event chain. Results are bit-identical
	// either way — fusion only reduces the executed-event count — so this
	// exists for the equivalence tests and for A/B measurement. Fusion is
	// also forced off when the telemetry registry carries a packet trace
	// or a live tap, whose mid-serialization snapshots would otherwise
	// observe the inlined tx-done counters early.
	DisableFusion bool
}

// WithDefaults returns cfg with unset fields filled in.
func (cfg Config) WithDefaults() Config {
	if cfg.NumLeaves == 0 {
		cfg.NumLeaves = 2
	}
	if cfg.NumSpines == 0 {
		cfg.NumSpines = 2
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 32
	}
	if cfg.LinksPerSpine == 0 {
		cfg.LinksPerSpine = 2
	}
	if cfg.AccessRateBps == 0 {
		cfg.AccessRateBps = 10e9
	}
	if cfg.FabricRateBps == 0 {
		cfg.FabricRateBps = 40e9
	}
	if cfg.AccessPropDelay == 0 {
		cfg.AccessPropDelay = 2 * sim.Microsecond
	}
	if cfg.FabricPropDelay == 0 {
		cfg.FabricPropDelay = sim.Microsecond
	}
	if cfg.EdgeBufBytes == 0 {
		// A hot access port on a shared-buffer leaf ASIC can claim a
		// large share of the chip's ~12 MB.
		cfg.EdgeBufBytes = 6 << 20
	}
	if cfg.FabricBufBytes == 0 {
		cfg.FabricBufBytes = 8 << 20 // 8 MB per fabric port
	}
	if cfg.HostBufBytes == 0 {
		// ≈ Linux pfifo_fast (1000 × MTU) plus driver ring: senders can
		// overrun their own NIC in slow start, and SACK recovery handles
		// it, as on real hosts.
		cfg.HostBufBytes = 2 << 20
	}
	if cfg.Params == (core.Params{}) {
		if cfg.Scheme == SchemeCONGAFlow {
			cfg.Params = core.CongaFlowParams()
		} else {
			cfg.Params = core.DefaultParams()
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.VNI == 0 {
		cfg.VNI = 1
	}
	return cfg
}

// Validate reports the first configuration error.
func (cfg Config) Validate() error {
	c := cfg.WithDefaults()
	switch {
	case c.NumLeaves < 2:
		return fmt.Errorf("fabric: need at least 2 leaves, have %d", c.NumLeaves)
	case c.NumSpines < 1:
		return fmt.Errorf("fabric: need at least 1 spine, have %d", c.NumSpines)
	case c.HostsPerLeaf < 1:
		return fmt.Errorf("fabric: need at least 1 host per leaf, have %d", c.HostsPerLeaf)
	case c.LinksPerSpine < 1:
		return fmt.Errorf("fabric: need at least 1 link per leaf-spine pair, have %d", c.LinksPerSpine)
	case c.NumSpines*c.LinksPerSpine > c.Params.MaxUplinks:
		return fmt.Errorf("fabric: %d uplinks per leaf exceeds LBTag space %d",
			c.NumSpines*c.LinksPerSpine, c.Params.MaxUplinks)
	case c.FabricPropDelay <= 0:
		// Zero lookahead would serialize (or deadlock) the space-parallel
		// engine, whose window size is exactly this delay.
		return fmt.Errorf("fabric: FabricPropDelay %v must be positive (it is the parallel-mode lookahead)",
			c.FabricPropDelay)
	case c.AccessPropDelay <= 0:
		return fmt.Errorf("fabric: AccessPropDelay %v must be positive", c.AccessPropDelay)
	case len(c.LeafSchemes) > c.NumLeaves:
		return fmt.Errorf("fabric: %d per-leaf schemes for %d leaves", len(c.LeafSchemes), c.NumLeaves)
	}
	for i, s := range c.LeafSchemes {
		if _, ok := schemeNames[s]; !ok {
			return fmt.Errorf("fabric: unknown scheme %v for leaf %d", s, i)
		}
	}
	return c.Params.Validate()
}

// Network is a wired Leaf-Spine fabric attached to a simulation engine.
type Network struct {
	Engine *sim.Engine
	Cfg    Config

	Hosts  []*Host
	Leaves []*LeafSwitch
	Spines []*SpineSwitch

	fabricLinks []*Link
	rng         *sim.Rand
	pool        *PacketPool // pools[0]; the only pool when sequential

	// Space-parallel partition state (see partition.go). A network built by
	// NewNetwork has one domain: engines = [Engine], pools = [pool], no
	// mailboxes. dreActive[d] lists domain d's fabric links with a nonzero
	// DRE register (that domain's decay dirty-list); domFabIdx[d] /
	// domLeafIdx[d] index fabricLinks / Leaves by owning domain for the
	// per-domain tickers and series sampling.
	domains    int
	engines    []*sim.Engine
	pools      []*PacketPool
	dreActive  [][]*Link
	domFabIdx  [][]int
	domLeafIdx [][]int
	mail       [][]*mailbox // mail[src][dst]; nil diagonal; nil when sequential
	deliv      []*deliverer // per-domain cross-arrival injector; nil when sequential

	// chainFlags[d] marks, while domain d executes a pure-arrival event,
	// that idle sends may chain hops synchronously; nil when fusion is off
	// (see Config.DisableFusion and Link.fastTransmit).
	chainFlags []*chainFlag

	// Telemetry series, parallel to fabricLinks / Leaves; all nil when
	// series probes are off. Samples are taken inside the existing ticker
	// callbacks (see NewNetwork) so telemetry adds no events.
	tel         *telemetry.Registry
	telQueue    []*telemetry.Series   // queue depth per fabric link
	telDRE      []*telemetry.Series   // DRE register per fabric link
	telFlowlet  []*telemetry.Series   // live flowlet entries per leaf (nil entry: no table)
	telFlTables []*core.FlowletTable  // table behind telFlowlet[i]
	telTbl      [][]*telemetry.Series // CongestionToLeaf max metric per leaf per uplink
	telLeafCore []*core.Leaf          // CONGA state behind telTbl[i]
	telStale    []*telemetry.Series   // feedback staleness per leaf (nil entry: no hooks)
	telHooks    []*telemetry.DecisionHooks
}

// noteDREActive is each fabric link's dreNotify hook: it runs on the first
// transmission after the link's register drained to zero, in the link's
// owning domain (transmission is domain-local).
func (n *Network) noteDREActive(l *Link) { n.dreActive[l.dom] = append(n.dreActive[l.dom], l) }

// Pool returns the network's packet pool. Transports normally allocate via
// Host.NewPacket; the accessor exists for stats and tests.
func (n *Network) Pool() *PacketPool { return n.pool }

// NewNetwork builds the fabric described by cfg on the given engine and
// starts the DRE decay and flowlet sweep tickers. It is the single-domain
// case of NewPartitionedNetwork (see partition.go).
func NewNetwork(eng *sim.Engine, cfg Config) (*Network, error) {
	return NewPartitionedNetwork([]*sim.Engine{eng}, cfg)
}

// flowletCarrier is implemented by strategies that keep a flowlet table
// (CONGA, CONGA-Flow, local); congaCarrier by those with full CONGA state.
// Optional interfaces keep Strategy itself unchanged for implementers.
type flowletCarrier interface{ FlowletTable() *core.FlowletTable }
type congaCarrier interface{ Core() *core.Leaf }

// wireTelemetry attaches the registry's hooks to every link and host and
// registers the series probes and counter collectors. It must run before
// the simulation starts; it never runs during one.
func (n *Network) wireTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.tel = reg
	tr := reg.Trace()
	hook := func(l *Link) {
		l.tel = reg.Link(l.Name)
		l.trace = tr
	}
	for _, l := range n.fabricLinks {
		hook(l)
	}
	for _, h := range n.Hosts {
		hook(h.out)
		// Per-domain shard so concurrent domains never share a counter
		// cache line; shard 0 is the registry's own TCP block, so a
		// sequential network is wired exactly as before.
		h.tcpTel = reg.TCPShard(h.Leaf % n.domains)
		h.trace = tr
		h.traceName = fmt.Sprintf("h%d", h.ID)
	}
	for _, ls := range n.Leaves {
		for _, l := range ls.downlinks {
			hook(l)
		}
	}

	series := reg.Options().Series
	if series {
		n.telQueue = make([]*telemetry.Series, len(n.fabricLinks))
		n.telDRE = make([]*telemetry.Series, len(n.fabricLinks))
		for i, l := range n.fabricLinks {
			n.telQueue[i] = reg.NewSeries("queue."+l.Name, "bytes")
			n.telDRE[i] = reg.NewSeries("dre."+l.Name, "bytes")
		}
		n.telFlowlet = make([]*telemetry.Series, len(n.Leaves))
		n.telFlTables = make([]*core.FlowletTable, len(n.Leaves))
		n.telTbl = make([][]*telemetry.Series, len(n.Leaves))
		n.telLeafCore = make([]*core.Leaf, len(n.Leaves))
		n.telStale = make([]*telemetry.Series, len(n.Leaves))
		n.telHooks = make([]*telemetry.DecisionHooks, len(n.Leaves))
	}
	for i, ls := range n.Leaves {
		fc, ok := ls.strategy.(flowletCarrier)
		if !ok {
			continue
		}
		leafID, table := ls.ID, fc.FlowletTable()
		reg.AddCollector(func() {
			reg.RecordFlowlets(leafID, table.Installs, table.Expired, table.Evicts)
		})
		if series {
			n.telFlowlet[i] = reg.NewSeries(fmt.Sprintf("flowlets.leaf%d", leafID), "entries")
			n.telFlTables[i] = table
		}
		cc, ok := ls.strategy.(congaCarrier)
		if !ok {
			continue
		}
		cl := cc.Core()
		// Decision-plane hooks: per-leaf structs, written only by the
		// owning leaf's domain, so they need no parallel-mode rejection.
		if h := reg.Decisions(leafID, len(ls.uplinks), len(n.Leaves)); h != nil {
			cl.Hooks = h
			ls.decisions = h
			if series {
				n.telStale[i] = reg.NewSeries(fmt.Sprintf("staleness.leaf%d", leafID), "ns")
				n.telHooks[i] = h
			}
		}
		if series {
			row := make([]*telemetry.Series, len(ls.uplinks))
			for u := range row {
				row[u] = reg.NewSeries(fmt.Sprintf("congtbl.leaf%d.up%d", leafID, u), "metric")
			}
			n.telTbl[i] = row
			n.telLeafCore[i] = cl
		}
	}
}

// sampleLinkSeries records queue depth and DRE register for domain d's
// fabric links; called from that domain's DRE-decay ticker when series
// probes are on. Each series is only ever touched by its link's owning
// domain, so parallel domains sample concurrently without sharing.
func (n *Network) sampleLinkSeries(d int, now sim.Time) {
	for _, i := range n.domFabIdx[d] {
		l := n.fabricLinks[i]
		n.telQueue[i].Observe(now, float64(l.qlen))
		n.telDRE[i].Observe(now, l.dre.X())
	}
}

// sampleStaleness drains each leaf's feedback-staleness window into its
// series: the mean age of the winning remote metric over the
// congestion-aware decisions since the previous sample. Called from the
// DRE-decay ticker (the same safe point that samples link series and
// publishes taps); windows with no aged decisions leave a gap instead of
// fabricating a zero.
func (n *Network) sampleStaleness(d int, now sim.Time) {
	for _, i := range n.domLeafIdx[d] {
		h := n.telHooks[i]
		if h == nil {
			continue
		}
		if mean, ok := h.TakeStaleness(); ok {
			n.telStale[i].Observe(now, mean)
		}
	}
}

// sampleLeafSeries records flowlet-table occupancy and per-uplink
// CongestionToLeaf max metrics for domain d's leaves; called from that
// domain's flowlet-sweep ticker.
func (n *Network) sampleLeafSeries(d int, now sim.Time) {
	for _, i := range n.domLeafIdx[d] {
		if s := n.telFlowlet[i]; s != nil {
			s.Observe(now, float64(n.telFlTables[i].Live()))
		}
		if row := n.telTbl[i]; row != nil {
			cl := n.telLeafCore[i]
			for u, su := range row {
				su.Observe(now, float64(cl.ToLeaf.MaxMetric(u, now)))
			}
		}
	}
}

// Telemetry returns the registry wired into this network, or nil.
func (n *Network) Telemetry() *telemetry.Registry { return n.tel }

// MustNetwork is NewNetwork for tests and examples where a config error is
// a programming bug.
func MustNetwork(eng *sim.Engine, cfg Config) *Network {
	n, err := NewNetwork(eng, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

func (n *Network) newStrategy(ls *LeafSwitch) Strategy {
	rng := n.rng.Split()
	scheme := n.Cfg.Scheme
	if ls.ID < len(n.Cfg.LeafSchemes) {
		scheme = n.Cfg.LeafSchemes[ls.ID]
	}
	switch scheme {
	case SchemeECMP:
		return &ecmpStrategy{ls: ls}
	case SchemeCONGA:
		return newCongaStrategy(ls, "conga", n.Cfg.Params, rng, n.Cfg.ExplicitFeedback)
	case SchemeCONGAFlow:
		return newCongaStrategy(ls, "conga-flow", n.Cfg.Params, rng, n.Cfg.ExplicitFeedback)
	case SchemeLocal:
		return newLocalStrategy(ls, n.Cfg.Params, rng)
	case SchemeSpray:
		return &sprayStrategy{ls: ls}
	case SchemeWCMP:
		return newWCMPStrategy(ls, n.Cfg.WCMPWeights)
	default:
		panic(fmt.Sprintf("fabric: unknown scheme %v", n.Cfg.Scheme))
	}
}

// NumLeaves returns the leaf count.
func (n *Network) NumLeaves() int { return len(n.Leaves) }

// HostLeaf returns the leaf a host attaches to.
func (n *Network) HostLeaf(host int) int { return n.Hosts[host].Leaf }

// Host returns host i.
func (n *Network) Host(i int) *Host { return n.Hosts[i] }

// FabricLinks returns every leaf↔spine link, for stats collection.
func (n *Network) FabricLinks() []*Link { return n.fabricLinks }

// FailLink takes down both directions of parallel link k between leaf and
// spine, like unplugging a cable. It panics on out-of-range arguments — a
// mis-specified failure would silently invalidate an experiment.
func (n *Network) FailLink(leaf, spine, k int) {
	up, down := n.linkPair(leaf, spine, k)
	up.SetUp(false)
	down.SetUp(false)
}

// RestoreLink re-enables both directions of the given link.
func (n *Network) RestoreLink(leaf, spine, k int) {
	up, down := n.linkPair(leaf, spine, k)
	up.SetUp(true)
	down.SetUp(true)
}

func (n *Network) linkPair(leaf, spine, k int) (up, down *Link) {
	if leaf < 0 || leaf >= len(n.Leaves) || spine < 0 || spine >= len(n.Spines) ||
		k < 0 || k >= n.Cfg.LinksPerSpine {
		panic(fmt.Sprintf("fabric: no link (leaf=%d, spine=%d, k=%d)", leaf, spine, k))
	}
	uplinkIdx := spine*n.Cfg.LinksPerSpine + k
	return n.Leaves[leaf].uplinks[uplinkIdx], n.Spines[spine].down[leaf][k]
}

// TotalDrops sums packet drops over every link in the fabric, including
// access links.
func (n *Network) TotalDrops() uint64 {
	var d uint64
	for _, l := range n.fabricLinks {
		d += l.Drops
	}
	for _, h := range n.Hosts {
		d += h.out.Drops
	}
	for _, ls := range n.Leaves {
		for _, l := range ls.downlinks {
			d += l.Drops
		}
		d += ls.NoRouteDrops
	}
	for _, ss := range n.Spines {
		d += ss.NoRouteDrops
	}
	return d
}
