package fabric

import (
	"testing"

	"conga/internal/core"
	"conga/internal/sim"
)

// testSink counts delivered packets and bytes.
type testSink struct {
	packets int
	bytes   int64
	lastSeq int64
	reorder int
}

func (s *testSink) Receive(p *Packet, _ sim.Time) {
	s.packets++
	s.bytes += int64(p.Payload)
	if p.Seq < s.lastSeq {
		s.reorder++
	}
	s.lastSeq = p.Seq
}

// flood sends fixed-size packets of one flow at a constant rate from src to
// dst, bypassing any transport (a UDP blaster).
func flood(eng *sim.Engine, net *Network, flowID uint64, src, dst *Host, dstPort int,
	payload int, rateBps float64, start, stop sim.Time) {
	interval := sim.Time(float64(payload+HeaderOverhead) * 8 / rateBps * float64(sim.Second))
	var seq int64
	var send func(now sim.Time)
	send = func(now sim.Time) {
		if now >= stop {
			return
		}
		p := &Packet{
			FlowID: flowID, DstHost: dst.ID, SrcPort: int(flowID), DstPort: dstPort,
			Seq: seq, Payload: payload, SentAt: now,
		}
		seq += int64(payload)
		src.Send(p, now)
		eng.At(now+interval, send)
	}
	eng.At(start, send)
}

func smallTestConfig(scheme Scheme) Config {
	p := core.DefaultParams()
	p.FlowletTableSize = 4096
	return Config{
		NumLeaves:     2,
		NumSpines:     2,
		HostsPerLeaf:  4,
		LinksPerSpine: 1,
		AccessRateBps: 1e9,
		FabricRateBps: 1e9,
		Scheme:        scheme,
		Params:        p,
		Seed:          7,
	}
}

func TestNetworkConstruction(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeCONGA))
	if len(n.Hosts) != 8 || len(n.Leaves) != 2 || len(n.Spines) != 2 {
		t.Fatalf("topology sizes: %d hosts, %d leaves, %d spines",
			len(n.Hosts), len(n.Leaves), len(n.Spines))
	}
	if got := len(n.Leaves[0].Uplinks()); got != 2 {
		t.Fatalf("leaf 0 has %d uplinks, want 2", got)
	}
	if got := len(n.FabricLinks()); got != 8 {
		t.Fatalf("%d fabric links, want 8 (2 leaves × 2 spines × 2 dirs)", got)
	}
	for i, h := range n.Hosts {
		if h.ID != i {
			t.Fatalf("host %d has ID %d", i, h.ID)
		}
		if want := i / 4; h.Leaf != want {
			t.Fatalf("host %d on leaf %d, want %d", i, h.Leaf, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumLeaves: 1},
		{NumSpines: -1},
		{HostsPerLeaf: -1},
		{NumSpines: 9, LinksPerSpine: 2}, // 18 uplinks > 16 LBTags
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(sim.New(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestCrossLeafDelivery(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	src, dst := n.Host(0), n.Host(4) // different leaves
	sink := &testSink{}
	dst.Bind(5000, sink)
	flood(eng, n, 1, src, dst, 5000, 1000, 1e8, 0, 10*sim.Millisecond)
	eng.Run(12 * sim.Millisecond)
	if sink.packets == 0 {
		t.Fatal("no packets delivered across the fabric")
	}
	// ~10ms at 1e8 bps with 1058B frames → ~118 packets.
	if sink.packets < 100 || sink.packets > 130 {
		t.Fatalf("delivered %d packets, want ≈118", sink.packets)
	}
	if sink.reorder != 0 {
		t.Fatalf("%d reordered packets on a single path", sink.reorder)
	}
	if n.TotalDrops() != 0 {
		t.Fatalf("%d drops on an uncongested path", n.TotalDrops())
	}
}

func TestIntraLeafDeliveryBypassesFabric(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	src, dst := n.Host(0), n.Host(1) // same leaf
	sink := &testSink{}
	dst.Bind(5000, sink)
	flood(eng, n, 1, src, dst, 5000, 1000, 1e8, 0, 5*sim.Millisecond)
	eng.Run(6 * sim.Millisecond)
	if sink.packets == 0 {
		t.Fatal("no local delivery")
	}
	for _, l := range n.FabricLinks() {
		if l.TxPackets != 0 {
			t.Fatalf("intra-rack traffic leaked onto fabric link %s", l.Name)
		}
	}
}

func TestDeliveryLatency(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeECMP)
	n := MustNetwork(eng, cfg)
	src, dst := n.Host(0), n.Host(4)
	var arrival sim.Time
	dst.Bind(5000, recvFunc(func(p *Packet, now sim.Time) { arrival = now }))
	p := &Packet{FlowID: 9, DstHost: dst.ID, DstPort: 5000, Payload: 1000}
	eng.At(0, func(now sim.Time) { src.Send(p, now) })
	eng.Run(sim.MaxTime)

	// Expected: 4 hops. Access hops serialize 1058 B, fabric hops 1112 B
	// (encap) at 1 Gbps; prop = 2+1+1+2 µs.
	wire := float64(p.WireSize()*8) / 1e9
	fwire := float64(p.FabricWireSize()*8) / 1e9
	want := sim.Time((2*wire+2*fwire)*1e9) + 6*sim.Microsecond
	if arrival < want-sim.Microsecond || arrival > want+sim.Microsecond {
		t.Fatalf("one-way latency %v, want ≈%v", arrival, want)
	}
}

type recvFunc func(p *Packet, now sim.Time)

func (f recvFunc) Receive(p *Packet, now sim.Time) { f(p, now) }

func TestDropTailQueueOverflow(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeECMP)
	cfg.EdgeBufBytes = 10000 // tiny buffer
	n := MustNetwork(eng, cfg)
	src, dst := n.Host(0), n.Host(4)
	sink := &testSink{}
	dst.Bind(5000, sink)
	// Two hosts under leaf 0 send full-rate to one receiver: its access
	// downlink is 2:1 oversubscribed and must drop.
	flood(eng, n, 1, src, dst, 5000, 1000, 1e9, 0, 5*sim.Millisecond)
	flood(eng, n, 2, n.Host(1), dst, 5000, 1000, 1e9, 0, 5*sim.Millisecond)
	eng.Run(6 * sim.Millisecond)
	down := n.Leaves[1].Downlink(dst.ID)
	if down.Drops == 0 {
		t.Fatal("oversubscribed downlink dropped nothing")
	}
	if down.QueuedBytes() > cfg.EdgeBufBytes {
		t.Fatalf("queue %d exceeded cap %d", down.QueuedBytes(), cfg.EdgeBufBytes)
	}
	if sink.packets == 0 {
		t.Fatal("everything dropped")
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	ls := n.Leaves[0]
	p := &Packet{FlowID: 77, SrcHost: 0, DstHost: 4, SrcPort: 1, DstPort: 2}
	first := ls.Strategy().SelectUplink(p, 1, 0)
	for i := 0; i < 50; i++ {
		if got := ls.Strategy().SelectUplink(p, 1, sim.Time(i)); got != first {
			t.Fatalf("ECMP moved flow from uplink %d to %d", first, got)
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	ls := n.Leaves[0]
	counts := map[int]int{}
	for f := uint64(0); f < 1000; f++ {
		p := &Packet{FlowID: f, SrcHost: 0, DstHost: 4, SrcPort: int(f), DstPort: 2}
		counts[ls.Strategy().SelectUplink(p, 1, 0)]++
	}
	if len(counts) != 2 || counts[0] < 350 || counts[1] < 350 {
		t.Fatalf("ECMP spread skewed: %v", counts)
	}
	_ = eng
}

func TestECMPAvoidsFailedUplink(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	n.FailLink(0, 0, 0) // leaf 0's uplink to spine 0
	ls := n.Leaves[0]
	for f := uint64(0); f < 100; f++ {
		p := &Packet{FlowID: f, SrcHost: 0, DstHost: 4, SrcPort: int(f), DstPort: 2}
		if got := ls.Strategy().SelectUplink(p, 1, 0); got != 1 {
			t.Fatalf("ECMP picked failed uplink %d", got)
		}
	}
}

func TestSprayRoundRobins(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeSpray))
	ls := n.Leaves[0]
	p := &Packet{FlowID: 1, DstHost: 4}
	a := ls.Strategy().SelectUplink(p, 1, 0)
	b := ls.Strategy().SelectUplink(p, 1, 0)
	c := ls.Strategy().SelectUplink(p, 1, 0)
	if a == b || b != ls.Strategy().SelectUplink(p, 1, 0) == false && false {
		t.Fatal("unreachable")
	}
	if a == b || a != c {
		t.Fatalf("spray sequence %d,%d,%d not round-robin", a, b, c)
	}
	_ = eng
}

func TestWCMPWeights(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeWCMP)
	cfg.WCMPWeights = []float64{2, 1} // uplink 0 gets 2/3 of flows
	n := MustNetwork(eng, cfg)
	ls := n.Leaves[0]
	counts := map[int]int{}
	for f := uint64(0); f < 3000; f++ {
		p := &Packet{FlowID: f, SrcHost: 0, DstHost: 4, SrcPort: int(f)}
		counts[ls.Strategy().SelectUplink(p, 1, 0)]++
	}
	frac := float64(counts[0]) / 3000
	if frac < 0.62 || frac > 0.71 {
		t.Fatalf("WCMP uplink 0 got %.2f of flows, want ≈0.67 (%v)", frac, counts)
	}
	_ = eng
}

func TestFailLinkPanicsOutOfRange(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	defer func() {
		if recover() == nil {
			t.Error("FailLink out of range did not panic")
		}
	}()
	n.FailLink(0, 5, 0)
}

func TestFailAndRestoreLink(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	n.FailLink(0, 1, 0)
	if n.Leaves[0].Uplinks()[1].Up() {
		t.Fatal("uplink still up after FailLink")
	}
	if n.Spines[1].Downlinks(0)[0].Up() {
		t.Fatal("downlink still up after FailLink")
	}
	n.RestoreLink(0, 1, 0)
	if !n.Leaves[0].Uplinks()[1].Up() {
		t.Fatal("uplink down after RestoreLink")
	}
}

// TestCongaCEMarkingAndFeedback drives the full leaf-to-leaf loop on real
// links: saturating one spine path must raise CE at the receiver, flow back
// as feedback, and appear in the sender's Congestion-To-Leaf table.
func TestCongaCEMarkingAndFeedback(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.NumSpines = 1 // single path: all traffic shares spine 0
	n := MustNetwork(eng, cfg)
	src, dst := n.Host(0), n.Host(4)
	sink := &testSink{}
	dst.Bind(5000, sink)
	// Saturate the 1 Gbps fabric path.
	flood(eng, n, 1, src, dst, 5000, 1400, 0.95e9, 0, 5*sim.Millisecond)
	// Reverse traffic to carry feedback.
	rsink := &testSink{}
	src.Bind(6000, rsink)
	flood(eng, n, 2, dst, src, 6000, 100, 1e7, 0, 5*sim.Millisecond)
	eng.Run(5 * sim.Millisecond)

	srcStrat := n.Leaves[0].Strategy().(*congaStrategy)
	got := srcStrat.Core().ToLeaf.Metric(1, 0, eng.Now())
	if got < 5 {
		t.Fatalf("sender's remote metric for the saturated path = %d, want ≥5", got)
	}
}

// TestCongaAvoidsCongestedRemotePath reproduces the mechanism behind
// Figure 2: with one spine path congested by cross traffic the CONGA leaf
// must steer new flowlets to the other spine.
func TestCongaAvoidsCongestedRemotePath(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	// Halve the capacity of the path through spine 1 (the Fig. 2 setup).
	cfg.FabricLinkRate = func(leaf, spine, k int) float64 {
		if spine == 1 {
			return 0.5e9
		}
		return 0
	}
	n := MustNetwork(eng, cfg)
	dst := n.Host(4)
	sink := &testSink{}
	dst.Bind(5000, sink)
	rsink := &testSink{}
	n.Host(0).Bind(6000, rsink)

	// Offer 1.2 Gbps from leaf 0 to leaf 1 across 8 flows (capacity: 1.5
	// Gbps total, 1 + 0.5). A congestion-oblivious split overloads the
	// slow path; CONGA should converge to ~2:1 in favour of spine 0.
	for f := uint64(0); f < 8; f++ {
		flood(eng, n, 10+f, n.Host(0), dst, 5000, 1400, 0.15e9, 0, 20*sim.Millisecond)
	}
	flood(eng, n, 99, dst, n.Host(0), 6000, 100, 1e7, 0, 20*sim.Millisecond)
	eng.Run(20 * sim.Millisecond)

	up := n.Leaves[0].Uplinks()
	fast, slow := float64(up[0].TxBytes), float64(up[1].TxBytes)
	if fast < slow*1.4 {
		t.Fatalf("CONGA did not favour the fast path: fast=%.0f slow=%.0f bytes", fast, slow)
	}
	// And the slow path must still be used (not starved): optimal is 2:1.
	if slow < fast/8 {
		t.Fatalf("CONGA starved the slow path: fast=%.0f slow=%.0f", fast, slow)
	}
}

func TestSchemeParseRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeECMP, SchemeCONGA, SchemeCONGAFlow, SchemeLocal, SchemeSpray, SchemeWCMP} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme parsed")
	}
}

func TestHostPortBinding(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	h := n.Host(0)
	h.Bind(100, &testSink{})
	defer func() {
		if recover() == nil {
			t.Error("double bind did not panic")
		}
	}()
	h.Bind(100, &testSink{})
}

func TestHostAllocPortSkipsBound(t *testing.T) {
	n := MustNetwork(sim.New(), smallTestConfig(SchemeECMP))
	h := n.Host(0)
	p1 := h.AllocPort()
	h.Bind(p1, &testSink{})
	p2 := h.AllocPort()
	if p1 == p2 {
		t.Fatal("AllocPort returned a bound port")
	}
}

func TestLinkFailureDropsTraffic(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeECMP)
	cfg.NumSpines = 1
	n := MustNetwork(eng, cfg)
	n.FailLink(0, 0, 0)
	sink := &testSink{}
	n.Host(4).Bind(5000, sink)
	flood(eng, n, 1, n.Host(0), n.Host(4), 5000, 1000, 1e8, 0, sim.Millisecond)
	eng.Run(2 * sim.Millisecond)
	if sink.packets != 0 {
		t.Fatalf("%d packets delivered over a fully failed fabric", sink.packets)
	}
	if n.Leaves[0].NoRouteDrops == 0 {
		t.Fatal("no NoRouteDrops recorded")
	}
}

func TestDREDirtyListDrainsAndReactivates(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeCONGA))
	src, dst := n.Host(0), n.Host(4)
	dst.Bind(5000, &testSink{})
	flood(eng, n, 1, src, dst, 5000, 1000, 1e8, 0, 5*sim.Millisecond)
	eng.Run(5 * sim.Millisecond)
	if len(n.dreActive[0]) == 0 {
		t.Fatal("no fabric links on the DRE dirty-list while carrying traffic")
	}
	// A long idle period must decay every register to exactly zero and
	// empty the dirty-list (the decay ticker snaps and drops drained
	// links).
	eng.Run(100 * sim.Millisecond)
	if got := len(n.dreActive[0]); got != 0 {
		t.Fatalf("%d links still on the dirty-list after 95 ms idle", got)
	}
	for _, l := range n.FabricLinks() {
		if x := l.DRE().X(); x != 0 {
			t.Fatalf("link %s register %v after long idle, want exactly 0", l.Name, x)
		}
	}
	// New traffic must re-register links and produce nonzero metrics again.
	flood(eng, n, 2, src, dst, 5000, 1000, 1e8, eng.Now(), eng.Now()+5*sim.Millisecond)
	eng.Run(eng.Now() + 2*sim.Millisecond)
	if len(n.dreActive[0]) == 0 {
		t.Fatal("dirty-list empty while traffic is flowing again")
	}
	any := false
	for _, l := range n.FabricLinks() {
		if l.DRE().X() > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no fabric link accumulated DRE after reactivation")
	}
}
