package fabric

import (
	"testing"

	"conga/internal/sim"
)

func TestPoolGetPutRecycles(t *testing.T) {
	pp := &PacketPool{}
	p := pp.Get()
	if pp.Allocs != 1 || pp.Recycled != 0 {
		t.Fatalf("after first Get: Allocs=%d Recycled=%d", pp.Allocs, pp.Recycled)
	}
	p.Payload = 1460
	p.SackN = 2
	pp.Put(p)
	q := pp.Get()
	if q != p {
		t.Fatal("Get did not reuse the released packet")
	}
	if pp.Recycled != 1 {
		t.Fatalf("Recycled = %d, want 1", pp.Recycled)
	}
	if q.Payload != 0 || q.SackN != 0 {
		t.Fatalf("recycled packet not zeroed: Payload=%d SackN=%d", q.Payload, q.SackN)
	}
}

func TestPoolIgnoresForeignAndDoubleRelease(t *testing.T) {
	pp := &PacketPool{}
	// Foreign packets (tests construct them directly) must never be
	// recycled under their owner's feet.
	foreign := &Packet{Payload: 99}
	pp.Put(foreign)
	if len(pp.free) != 0 {
		t.Fatal("foreign packet entered the pool")
	}
	if foreign.Payload != 99 {
		t.Fatal("foreign packet was zeroed")
	}
	// Double release is a no-op: Put clears the pooled mark.
	p := pp.Get()
	pp.Put(p)
	pp.Put(p)
	if len(pp.free) != 1 {
		t.Fatalf("double Put produced %d free entries, want 1", len(pp.free))
	}
	// Nil pool (links built outside a Network) degrades to plain allocation.
	var nilPool *PacketPool
	if nilPool.Get() == nil {
		t.Fatal("nil pool Get returned nil")
	}
	nilPool.Put(&Packet{})
}

// TestPoolRecyclesThroughFabric drives a real network and checks that the
// packet population stabilizes: after warm-up, deliveries are served from
// recycled packets rather than fresh allocations.
func TestPoolRecyclesThroughFabric(t *testing.T) {
	eng := sim.New()
	n := MustNetwork(eng, smallTestConfig(SchemeECMP))
	src, dst := n.Host(0), n.Host(4)
	dst.Bind(9000, &testSink{})
	const count = 500
	sent := 0
	var tick sim.Event
	tick = func(now sim.Time) {
		p := src.NewPacket()
		p.FlowID = 1
		p.DstHost = dst.ID
		p.DstPort = 9000
		p.Payload = 1460
		p.SentAt = now
		src.Send(p, now)
		sent++
		if sent < count {
			eng.After(100*sim.Microsecond, tick)
		}
	}
	eng.At(0, tick)
	eng.Run(sim.MaxTime)
	pp := n.Pool()
	if pp.Allocs == 0 {
		t.Fatal("pool never allocated")
	}
	if pp.Recycled == 0 {
		t.Fatal("pool never recycled: packets are not being released")
	}
	// Packets are spaced far wider than their one-way latency, so the
	// steady-state population is a handful and recycles must dominate.
	if pp.Allocs > 50 {
		t.Fatalf("%d allocations for %d sequential packets; releases are leaking", pp.Allocs, count)
	}
}
