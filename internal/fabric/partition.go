package fabric

import (
	"fmt"
	"slices"

	"conga/internal/sim"
)

// Space-parallel fabric partitioning (see DESIGN.md §3.6).
//
// A partitioned network splits the fabric into P domains, one engine each:
// leaf l (with its hosts and access links) belongs to domain l mod P, and
// spine s to domain s mod P. Every link is owned by the domain of its
// *transmitting* node — the side that runs Send/transmit/txDone and owns the
// queue, DRE, and counters — so the only cross-domain edges are leaf↔spine
// links whose two ends hash to different domains. Those carry at least
// FabricPropDelay of propagation, which is exactly the lookahead the window
// runner (sim.ParallelEngine) needs: a packet finishing serialization at
// time t inside a window [base, base+W) cannot arrive before t+W ≥ base+W,
// i.e. never inside the window being executed.
//
// Cross-domain links do not schedule their delivery event directly (the
// destination's engine belongs to another goroutine). Instead txDone drops
// the packet into the link's mailbox — one per (src domain, dst domain)
// pair, written only by the source worker during window execution and read
// only by the destination worker during the exchange phase, so the barrier
// ordering makes locks unnecessary. The destination then merges all its
// incoming mailboxes in (time, srcDomain, srcSeq) order, a total order
// independent of goroutine scheduling, which keeps parallel runs
// bit-reproducible for a fixed partition.

// mailEntry is one cross-domain packet in transit: it left its link's
// transmitter and must be handed to the link's destination node at time at.
type mailEntry struct {
	p    *Packet
	at   sim.Time
	link *Link
}

// mailbox buffers packets from one source domain to one destination domain
// until the next exchange phase. Entry order is the source engine's
// deterministic execution order, which the merge uses as srcSeq.
type mailbox struct {
	entries []mailEntry
}

func (mb *mailbox) push(p *Packet, at sim.Time, l *Link) {
	mb.entries = append(mb.entries, mailEntry{p: p, at: at, link: l})
}

// xArrival is a mailbox entry tagged with its deterministic merge key
// (at, src, seq). The key is unique — one source domain produces one seq
// sequence — so even an unstable sort yields exactly one order.
type xArrival struct {
	p    *Packet
	at   sim.Time
	link *Link
	src  int32
	seq  int32
}

// pendingArrival pairs a merged packet with the link it arrived on until
// its delivery event fires.
type pendingArrival struct {
	p    *Packet
	link *Link
}

// deliverer injects merged cross-domain arrivals into one domain's engine.
// Each window's merge becomes one xBatch — a FIFO of arrivals spliced into
// the engine as a single sorted stream (sim.Engine.Splice) instead of one
// heap insertion per entry. Within a batch the splice preserves the merge
// order exactly (consecutive engine seqs), and across batches the engine's
// (time, seq) order decides: batches may overlap in time once fused sends
// commit arrivals with long serialization tails crossing a window
// boundary, which is why each batch carries its own queue and bound event
// rather than sharing one ring.
type deliverer struct {
	eng   *sim.Engine
	merge []xArrival // scratch buffer reused across exchanges
	times []sim.Time // scratch splice times, reused across exchanges
	free  []*xBatch  // recycled batches
	last  *xBatch    // most recently spliced batch, for tests
	chain *chainFlag // owning domain's arrival-context flag; nil without fusion
}

// xBatch is one exchanged window's worth of arrivals: queue[head:] pairs
// one-to-one, in order, with the remaining firings of its spliced stream.
type xBatch struct {
	dv    *deliverer
	queue []pendingArrival
	head  int
	fn    sim.Event
}

func newDeliverer(eng *sim.Engine) *deliverer {
	return &deliverer{eng: eng}
}

func (dv *deliverer) getBatch() *xBatch {
	if n := len(dv.free); n > 0 {
		b := dv.free[n-1]
		dv.free[n-1] = nil
		dv.free = dv.free[:n-1]
		return b
	}
	b := &xBatch{dv: dv}
	b.fn = b.deliver
	return b
}

func (b *xBatch) deliver(now sim.Time) {
	e := b.queue[b.head]
	b.queue[b.head] = pendingArrival{}
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
		b.dv.free = append(b.dv.free, b)
	}
	if c := b.dv.chain; c != nil && !e.link.dstIsHost {
		// Same switch-arrival chain context as Link.deliver: the handler
		// is this firing's tail, so downstream idle hops may fuse into it.
		c.active = true
		e.link.dst.handle(e.p, e.link, now)
		c.active = false
		return
	}
	e.link.dst.handle(e.p, e.link, now)
}

// Exchange drains every mailbox destined for domain d and schedules the
// deliveries on d's engine in (time, srcDomain, srcSeq) order. It is the
// per-window exchange callback for sim.ParallelEngine: it runs on domain
// d's worker goroutine after all domains have reached the window edge, and
// every drained arrival must be at or after windowEnd (the lookahead
// guarantee; a violation is a partitioning bug and panics).
func (n *Network) Exchange(d int, windowEnd sim.Time) {
	dv := n.deliv[d]
	merge := dv.merge[:0]
	for s := range n.mail {
		mb := n.mail[s][d]
		if mb == nil {
			continue
		}
		for i := range mb.entries {
			e := &mb.entries[i]
			if e.p != nil {
				merge = append(merge, xArrival{p: e.p, at: e.at, link: e.link, src: int32(s), seq: int32(i)})
			}
			// A nil p is a tombstone: a fused packet killed by a
			// mid-serialization link failure before the window closed
			// (Link.SetUp). It simply doesn't merge.
			*e = mailEntry{}
		}
		mb.entries = mb.entries[:0]
	}
	if len(merge) == 0 {
		dv.merge = merge[:0]
		return
	}
	slices.SortFunc(merge, func(a, b xArrival) int {
		switch {
		case a.at != b.at:
			return int(a.at - b.at)
		case a.src != b.src:
			return int(a.src - b.src)
		default:
			return int(a.seq - b.seq)
		}
	})
	b := dv.getBatch()
	times := dv.times[:0]
	for i := range merge {
		a := &merge[i]
		if a.at < windowEnd {
			panic(fmt.Sprintf("fabric: cross-domain arrival on %s at %v inside window ending %v (lookahead violated)",
				a.link.Name, a.at, windowEnd))
		}
		b.queue = append(b.queue, pendingArrival{p: a.p, link: a.link})
		times = append(times, a.at)
	}
	// One sorted splice for the whole window instead of len(merge) heap
	// pushes; the entries take consecutive engine seqs, preserving the
	// deterministic (time, srcDomain, srcSeq) merge order exactly.
	dv.eng.Splice(times, b.fn)
	dv.last = b
	dv.times = times[:0]
	dv.merge = merge[:0]
}

// Domains returns the number of partition domains (1 for a sequential
// network).
func (n *Network) Domains() int { return n.domains }

// DomainEngine returns domain d's engine.
func (n *Network) DomainEngine(d int) *sim.Engine { return n.engines[d] }

// LeafDomain returns the domain owning leaf (and its hosts).
func (n *Network) LeafDomain(leaf int) int { return leaf % n.domains }

// HostDomain returns the domain owning host.
func (n *Network) HostDomain(host int) int { return n.LeafDomain(n.Hosts[host].Leaf) }

// DomainPool returns domain d's packet pool.
func (n *Network) DomainPool(d int) *PacketPool { return n.pools[d] }

// NewPartitionedNetwork builds the fabric described by cfg across one
// engine per domain, for execution under sim.ParallelEngine with window
// cfg.FabricPropDelay. With a single engine it builds exactly the network
// NewNetwork does — NewNetwork delegates here — and every construction
// decision (link order, RNG splits, ticker order) is independent of the
// partition count, so the model is identical at any P; only event
// interleaving across domains may differ.
func NewPartitionedNetwork(engines []*sim.Engine, cfg Config) (*Network, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("fabric: need at least one engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	P := len(engines)
	if P > cfg.NumLeaves {
		return nil, fmt.Errorf("fabric: %d parallel domains exceed %d leaves (one leaf per domain minimum)",
			P, cfg.NumLeaves)
	}
	if P > 1 && cfg.Telemetry != nil {
		opts := cfg.Telemetry.Options()
		switch {
		case opts.Trace:
			return nil, fmt.Errorf("fabric: packet trace is not supported under the parallel engine (single shared trace buffer)")
		case opts.Tap || opts.Hub != nil:
			return nil, fmt.Errorf("fabric: live taps are not supported under the parallel engine")
		case opts.Decisions && opts.DecisionTrace:
			// Per-leaf decision hooks (counters, path matrices, staleness
			// series) are domain-owned and stay available; only the single
			// shared audit buffer is rejected.
			return nil, fmt.Errorf("fabric: the decision trace is not supported under the parallel engine (single shared audit buffer); run sequentially for the audit trail, or keep Decisions without DecisionTrace")
		}
	}

	n := &Network{
		Engine:  engines[0],
		Cfg:     cfg,
		rng:     sim.NewRand(cfg.Seed),
		engines: engines,
		domains: P,
	}
	n.pools = make([]*PacketPool, P)
	for d := range n.pools {
		n.pools[d] = &PacketPool{}
	}
	n.pool = n.pools[0]
	n.dreActive = make([][]*Link, P)
	n.domFabIdx = make([][]int, P)
	n.domLeafIdx = make([][]int, P)
	if P > 1 {
		n.mail = make([][]*mailbox, P)
		for s := range n.mail {
			n.mail[s] = make([]*mailbox, P)
			for d := range n.mail[s] {
				if d != s {
					n.mail[s][d] = &mailbox{}
				}
			}
		}
		n.deliv = make([]*deliverer, P)
		for d := range n.deliv {
			n.deliv[d] = newDeliverer(engines[d])
		}
	}

	// Hosts and leaves. Leaf l and everything below it live in domain l%P.
	for leaf := 0; leaf < cfg.NumLeaves; leaf++ {
		dom := leaf % P
		eng, pool := engines[dom], n.pools[dom]
		ls := &LeafSwitch{ID: leaf, net: n, vni: cfg.VNI, pool: pool, hostIndex: make(map[int]int)}
		n.Leaves = append(n.Leaves, ls)
		n.domLeafIdx[dom] = append(n.domLeafIdx[dom], leaf)
		for i := 0; i < cfg.HostsPerLeaf; i++ {
			hostID := leaf*cfg.HostsPerLeaf + i
			h := newHost(hostID, leaf, pool)
			h.out = NewLink(eng, LinkConfig{
				Name:      fmt.Sprintf("h%d->l%d", hostID, leaf),
				RateBps:   cfg.AccessRateBps,
				PropDelay: cfg.AccessPropDelay,
				BufBytes:  cfg.HostBufBytes,
				Params:    cfg.Params,
				Pool:      pool,
			}, ls)
			h.out.dom = dom
			down := NewLink(eng, LinkConfig{
				Name:      fmt.Sprintf("l%d->h%d", leaf, hostID),
				RateBps:   cfg.AccessRateBps,
				PropDelay: cfg.AccessPropDelay,
				BufBytes:  cfg.EdgeBufBytes,
				Params:    cfg.Params,
				Pool:      pool,
			}, h)
			down.dom = dom
			ls.hostIndex[hostID] = len(ls.downlinks)
			ls.downlinks = append(ls.downlinks, down)
			n.Hosts = append(n.Hosts, h)
		}
	}

	// Spines and fabric links. Spine s lives in domain s%P; each direction
	// of a leaf↔spine link is owned by its transmitter, so a pair spanning
	// two domains gets a mailbox in each direction.
	for s := 0; s < cfg.NumSpines; s++ {
		ss := &SpineSwitch{ID: s, pool: n.pools[s%P], down: make([][]*Link, cfg.NumLeaves)}
		n.Spines = append(n.Spines, ss)
	}
	for leaf := 0; leaf < cfg.NumLeaves; leaf++ {
		ls := n.Leaves[leaf]
		ld := leaf % P
		for s := 0; s < cfg.NumSpines; s++ {
			ss := n.Spines[s]
			sd := s % P
			for k := 0; k < cfg.LinksPerSpine; k++ {
				rate := cfg.FabricRateBps
				if cfg.FabricLinkRate != nil {
					if r := cfg.FabricLinkRate(leaf, s, k); r > 0 {
						rate = r
					}
				}
				up := NewLink(engines[ld], LinkConfig{
					Name:      fmt.Sprintf("l%d->s%d.%d", leaf, s, k),
					RateBps:   rate,
					PropDelay: cfg.FabricPropDelay,
					BufBytes:  cfg.FabricBufBytes,
					Fabric:    true,
					Params:    cfg.Params,
					Pool:      n.pools[ld],
				}, ss)
				up.dom = ld
				down := NewLink(engines[sd], LinkConfig{
					Name:      fmt.Sprintf("s%d.%d->l%d", s, k, leaf),
					RateBps:   rate,
					PropDelay: cfg.FabricPropDelay,
					BufBytes:  cfg.FabricBufBytes,
					Fabric:    true,
					Params:    cfg.Params,
					Pool:      n.pools[sd],
				}, ls)
				down.dom = sd
				if ld != sd {
					up.xq = n.mail[ld][sd]
					down.xq = n.mail[sd][ld]
				}
				ls.uplinks = append(ls.uplinks, up)
				ls.uplinkSpine = append(ls.uplinkSpine, s)
				ss.down[leaf] = append(ss.down[leaf], down)
				n.fabricLinks = append(n.fabricLinks, up, down)
				n.domFabIdx[ld] = append(n.domFabIdx[ld], len(n.fabricLinks)-2)
				n.domFabIdx[sd] = append(n.domFabIdx[sd], len(n.fabricLinks)-1)
			}
		}
	}

	// Strategies (need uplinks wired first). The RNG split sequence runs in
	// leaf ID order regardless of P, so per-leaf strategies are seeded
	// identically at any partition count.
	for _, ls := range n.Leaves {
		ls.strategy = n.newStrategy(ls)
	}

	// Telemetry hooks and series (no-op when cfg.Telemetry is nil).
	n.wireTelemetry(cfg.Telemetry)

	// Idle-path cut-through: enabled unless explicitly disabled or a
	// packet trace / live tap is attached (those observe per-event timing
	// that fusion compresses; see DESIGN.md §3.9). The decision is static
	// for the run, so the hot path tests a plain bool per send.
	fuse := !cfg.DisableFusion
	if cfg.Telemetry != nil {
		o := cfg.Telemetry.Options()
		if o.Trace || o.Tap || o.Hub != nil {
			fuse = false
		}
	}
	if fuse {
		n.chainFlags = make([]*chainFlag, P)
		for d := range n.chainFlags {
			n.chainFlags[d] = &chainFlag{}
		}
		wire := func(l *Link) {
			l.fuse = true
			l.chain = n.chainFlags[l.dom]
		}
		for _, l := range n.fabricLinks {
			wire(l)
		}
		for _, h := range n.Hosts {
			wire(h.out)
		}
		for _, ls := range n.Leaves {
			for _, l := range ls.downlinks {
				wire(l)
			}
		}
		for d := range n.deliv {
			n.deliv[d].chain = n.chainFlags[d]
		}
	}

	// DRE decay: one ticker per domain drives the estimators of that
	// domain's links that carried traffic recently. Links register
	// themselves on first transmission (Link.transmit) onto their owning
	// domain's dirty-list and are dropped once their register decays to
	// zero, so an idle fabric does no per-link work per period. Telemetry
	// rides this ticker for its queue/DRE samples instead of scheduling its
	// own events, keeping the executed-event count identical either way.
	notify := n.noteDREActive
	for _, l := range n.fabricLinks {
		l.dreNotify = notify
	}
	for d := 0; d < P; d++ {
		dom := d
		sim.NewTicker(engines[dom], cfg.Params.TDRE, func(now sim.Time) {
			act := n.dreActive[dom]
			kept := act[:0]
			for _, l := range act {
				l.dre.Decay()
				if l.dre.Active() {
					kept = append(kept, l)
				} else {
					l.dreListed = false
				}
			}
			for i := len(kept); i < len(act); i++ {
				act[i] = nil
			}
			n.dreActive[dom] = kept
			if n.telQueue != nil {
				n.sampleLinkSeries(dom, now)
			}
			if n.telStale != nil {
				n.sampleStaleness(dom, now)
			}
			// The streaming tap publishes here too: the DRE tick is an
			// existing safe point, so snapshot handoff adds no events and the
			// executed-event count stays identical with a tap attached.
			// (Taps are rejected under P>1, where PublishTap is a no-op.)
			n.tel.PublishTap(now)
		})
	}
	// Flowlet age sweep per leaf, every Tfl, on the leaf's own domain;
	// telemetry samples table occupancy and congestion-table metrics on the
	// same tick.
	for d := 0; d < P; d++ {
		dom := d
		sim.NewTicker(engines[dom], cfg.Params.Tfl, func(now sim.Time) {
			for _, leaf := range n.domLeafIdx[dom] {
				n.Leaves[leaf].strategy.Tick(now)
			}
			if n.telFlowlet != nil {
				n.sampleLeafSeries(dom, now)
			}
		})
	}
	return n, nil
}
