package fabric

import (
	"fmt"

	"conga/internal/core"
	"conga/internal/sim"
)

// Scheme identifies a leaf load-balancing strategy. These are the schemes
// compared in the paper's evaluation (§5) plus the §2.4 strawmen.
type Scheme int

const (
	// SchemeECMP hashes each flow to an uplink, with no congestion
	// awareness — the deployed state of the art the paper argues against.
	SchemeECMP Scheme = iota
	// SchemeCONGA is the paper's contribution: global congestion-aware
	// flowlet load balancing with leaf-to-leaf feedback.
	SchemeCONGA
	// SchemeCONGAFlow is CONGA with a 13 ms flowlet timeout: one
	// congestion-aware decision per flow (§5, "CONGA-Flow").
	SchemeCONGAFlow
	// SchemeLocal is a Flare-like local-only scheme: flowlet switching
	// using only the leaf's local uplink DREs. It exists to reproduce the
	// §2.4 result that local congestion-awareness can be worse than ECMP
	// under asymmetry.
	SchemeLocal
	// SchemeSpray sprays packets round-robin across up uplinks
	// (per-packet, DRB-style). Optimal balance, maximal reordering.
	SchemeSpray
	// SchemeWCMP is static weighted random per-flow splitting; weights
	// are chosen from topology (§2.4's "oblivious routing" strawman).
	SchemeWCMP
)

var schemeNames = map[Scheme]string{
	SchemeECMP:      "ecmp",
	SchemeCONGA:     "conga",
	SchemeCONGAFlow: "conga-flow",
	SchemeLocal:     "local",
	SchemeSpray:     "spray",
	SchemeWCMP:      "wcmp",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme converts a name (as printed by String) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("fabric: unknown scheme %q", name)
}

// Strategy is the per-leaf load-balancing policy. The leaf switch calls
// SelectUplink for every packet entering the fabric, PrepareHeader to fill
// the overlay header, and OnFabricArrival for every packet leaving it.
type Strategy interface {
	Name() string
	// SelectUplink returns the uplink index for a packet to dstLeaf, or
	// −1 if no uplink is usable.
	SelectUplink(p *Packet, dstLeaf int, now sim.Time) int
	// PrepareHeader fills p.Hdr for transmission on uplink.
	PrepareHeader(p *Packet, dstLeaf, uplink int, now sim.Time)
	// OnFabricArrival processes the overlay header of a packet for which
	// this leaf is the destination TEP.
	OnFabricArrival(p *Packet, srcLeaf int, now sim.Time)
	// Tick runs periodic housekeeping; the leaf calls it every Tfl.
	Tick(now sim.Time)
}

func flowHash(p *Packet) uint64 {
	if h := p.lbHash; h != 0 {
		return h
	}
	h := HashFlow(p.FlowID, p.SrcHost, p.DstHost, p.SrcPort, p.DstPort)
	p.lbHash = h // 0 stays uncached (recomputed), so the memo is exact
	return h
}

// HashFlow computes the load-balancing flow hash for the given packet
// identity — the exact value flowHash memoizes on packets. Transports whose
// endpoints have a fixed 5-tuple precompute it once per connection and stamp
// outgoing packets with SetLBHash, taking the hash off the fabric's
// per-packet hot path entirely.
func HashFlow(flowID uint64, srcHost, dstHost, srcPort, dstPort int) uint64 {
	return core.FlowHash(flowID, uint64(srcHost), uint64(dstHost),
		uint64(srcPort)<<16|uint64(dstPort), 6)
}

// --- ECMP ---

type ecmpStrategy struct {
	ls *LeafSwitch
}

func (s *ecmpStrategy) Name() string { return "ecmp" }

func (s *ecmpStrategy) SelectUplink(p *Packet, dstLeaf int, _ sim.Time) int {
	return hashOverMask(s.ls.PathUsable(dstLeaf), flowHash(p))
}

func (s *ecmpStrategy) PrepareHeader(p *Packet, _, uplink int, _ sim.Time) {
	p.Hdr = core.Header{VNI: s.ls.vni, LBTag: uint8(uplink)}
}

func (s *ecmpStrategy) OnFabricArrival(*Packet, int, sim.Time) {}
func (s *ecmpStrategy) Tick(sim.Time)                          {}

// hashOverUp deterministically maps hash onto the set of currently-up
// links, mirroring an ECMP group whose members are withdrawn on failure.
// It is hashOverMask inlined over the links directly: this runs once per
// packet per spine hop, so materializing a mask slice here would put an
// allocation on the packet hot path.
func hashOverUp(links []*Link, hash uint64) int {
	n := 0
	for _, l := range links {
		if l.Up() {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := int(hash % uint64(n))
	for i, l := range links {
		if !l.Up() {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

// hashOverMask maps hash onto the set of usable members.
func hashOverMask(usable []bool, hash uint64) int {
	n := 0
	for _, ok := range usable {
		if ok {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := int(hash % uint64(n))
	for i, ok := range usable {
		if !ok {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1
}

// --- CONGA / CONGA-Flow ---

type congaStrategy struct {
	ls       *LeafSwitch
	leaf     *core.Leaf
	name     string
	localBuf []uint8
	allowed  []bool
	// Explicit feedback (optional, §3.3 discussion): sentTo tracks which
	// leaves this leaf piggybacked feedback to since the last Tick; a
	// leaf with pending changed metrics and no reverse traffic gets a
	// small control packet instead.
	explicit bool
	sentTo   []bool
	// CtrlPackets counts explicit feedback packets emitted.
	CtrlPackets uint64
}

func newCongaStrategy(ls *LeafSwitch, name string, p core.Params, rng *sim.Rand, explicit bool) *congaStrategy {
	n := len(ls.uplinks)
	return &congaStrategy{
		ls:       ls,
		leaf:     core.NewLeaf(ls.ID, ls.net.NumLeaves(), n, p, rng),
		name:     name,
		localBuf: make([]uint8, n),
		allowed:  make([]bool, n),
		explicit: explicit,
		sentTo:   make([]bool, ls.net.NumLeaves()),
	}
}

func (s *congaStrategy) Name() string { return s.name }

// Core returns the underlying algorithm state, for tests and diagnostics.
func (s *congaStrategy) Core() *core.Leaf { return s.leaf }

// FlowletTable exposes the leaf's flowlet table for telemetry; strategies
// without one simply don't implement the method (see Network.wireTelemetry).
func (s *congaStrategy) FlowletTable() *core.FlowletTable { return s.leaf.Flowlets }

func (s *congaStrategy) SelectUplink(p *Packet, dstLeaf int, now sim.Time) int {
	usable := s.ls.PathUsable(dstLeaf)
	for i, l := range s.ls.uplinks {
		s.localBuf[i] = l.Metric()
		s.allowed[i] = usable[i]
	}
	up, _ := s.leaf.SelectUplink(flowHash(p), dstLeaf, s.localBuf, s.allowed, now)
	return up
}

func (s *congaStrategy) PrepareHeader(p *Packet, dstLeaf, uplink int, now sim.Time) {
	p.Hdr = s.leaf.PrepareHeader(dstLeaf, uplink, s.ls.vni, now)
	if s.explicit {
		s.sentTo[dstLeaf] = true
	}
}

func (s *congaStrategy) OnFabricArrival(p *Packet, srcLeaf int, now sim.Time) {
	s.leaf.OnFabricArrival(srcLeaf, p.Hdr, now)
}

func (s *congaStrategy) Tick(now sim.Time) {
	s.leaf.SweepFlowlets()
	if !s.explicit {
		return
	}
	for leaf := range s.sentTo {
		if leaf == s.ls.ID {
			continue
		}
		if !s.sentTo[leaf] && s.leaf.FromLeaf.HasChanged(leaf) {
			hdr := s.leaf.PrepareHeader(leaf, 0, s.ls.vni, now)
			s.CtrlPackets++
			s.ls.sendControl(leaf, hdr, now)
		}
		s.sentTo[leaf] = false
	}
}

// --- Local congestion-aware (Flare-like) ---

type localStrategy struct {
	ls       *LeafSwitch
	flowlets *core.FlowletTable
	rng      *sim.Rand
	localBuf []uint8
	zeros    []uint8
	allowed  []bool
}

func newLocalStrategy(ls *LeafSwitch, p core.Params, rng *sim.Rand) *localStrategy {
	n := len(ls.uplinks)
	return &localStrategy{
		ls:       ls,
		flowlets: core.NewFlowletTable(p),
		rng:      rng,
		localBuf: make([]uint8, n),
		zeros:    make([]uint8, n),
		allowed:  make([]bool, n),
	}
}

func (s *localStrategy) Name() string { return "local" }

// FlowletTable exposes the strategy's flowlet table for telemetry.
func (s *localStrategy) FlowletTable() *core.FlowletTable { return s.flowlets }

func (s *localStrategy) SelectUplink(p *Packet, dstLeaf int, now sim.Time) int {
	hash := flowHash(p)
	usable := s.ls.PathUsable(dstLeaf)
	port, active := s.flowlets.Lookup(hash, now)
	if active && port >= 0 && usable[port] {
		return port
	}
	for i, l := range s.ls.uplinks {
		s.localBuf[i] = l.Metric()
		s.allowed[i] = usable[i]
	}
	choice := core.Decide(s.localBuf, s.zeros, s.allowed, port, s.rng)
	if choice >= 0 {
		s.flowlets.Install(hash, choice, now)
	}
	return choice
}

func (s *localStrategy) PrepareHeader(p *Packet, _, uplink int, _ sim.Time) {
	p.Hdr = core.Header{VNI: s.ls.vni, LBTag: uint8(uplink)}
}

func (s *localStrategy) OnFabricArrival(*Packet, int, sim.Time) {}
func (s *localStrategy) Tick(sim.Time)                          { s.flowlets.Sweep() }

// --- Per-packet spraying ---

type sprayStrategy struct {
	ls   *LeafSwitch
	next int
}

func (s *sprayStrategy) Name() string { return "spray" }

func (s *sprayStrategy) SelectUplink(_ *Packet, dstLeaf int, _ sim.Time) int {
	usable := s.ls.PathUsable(dstLeaf)
	n := len(s.ls.uplinks)
	for i := 0; i < n; i++ {
		idx := (s.next + i) % n
		if usable[idx] {
			s.next = idx + 1
			return idx
		}
	}
	return -1
}

func (s *sprayStrategy) PrepareHeader(p *Packet, _, uplink int, _ sim.Time) {
	p.Hdr = core.Header{VNI: s.ls.vni, LBTag: uint8(uplink)}
}

func (s *sprayStrategy) OnFabricArrival(*Packet, int, sim.Time) {}
func (s *sprayStrategy) Tick(sim.Time)                          {}

// --- Static weighted (WCMP) ---

type wcmpStrategy struct {
	ls      *LeafSwitch
	weights []float64 // per uplink, need not be normalized
}

func newWCMPStrategy(ls *LeafSwitch, weights []float64) *wcmpStrategy {
	n := len(ls.uplinks)
	w := make([]float64, n)
	if len(weights) == 0 {
		for i := range w {
			w[i] = 1
		}
	} else {
		copy(w, weights)
	}
	return &wcmpStrategy{ls: ls, weights: w}
}

func (s *wcmpStrategy) Name() string { return "wcmp" }

func (s *wcmpStrategy) SelectUplink(p *Packet, dstLeaf int, _ sim.Time) int {
	usable := s.ls.PathUsable(dstLeaf)
	total := 0.0
	for i := range s.ls.uplinks {
		if usable[i] {
			total += s.weights[i]
		}
	}
	if total <= 0 {
		return -1
	}
	// Per-flow deterministic weighted choice: map the flow hash to [0, 1)
	// and walk the weight CDF, so flows never reorder.
	u := float64(flowHash(p)>>11) / (1 << 53) * total
	for i := range s.ls.uplinks {
		if !usable[i] {
			continue
		}
		u -= s.weights[i]
		if u < 0 {
			return i
		}
	}
	// Float round-off: return the last usable link.
	for i := len(s.ls.uplinks) - 1; i >= 0; i-- {
		if usable[i] {
			return i
		}
	}
	return -1
}

func (s *wcmpStrategy) PrepareHeader(p *Packet, _, uplink int, _ sim.Time) {
	p.Hdr = core.Header{VNI: s.ls.vni, LBTag: uint8(uplink)}
}

func (s *wcmpStrategy) OnFabricArrival(*Packet, int, sim.Time) {}
func (s *wcmpStrategy) Tick(sim.Time)                          {}
