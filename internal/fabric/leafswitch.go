package fabric

import (
	"conga/internal/core"
	"conga/internal/sim"
	"conga/internal/telemetry"
)

// LeafSwitch is a top-of-rack switch and overlay tunnel endpoint (TEP). On
// the way up it encapsulates host packets, runs the load-balancing strategy
// to pick an uplink, and stamps the CONGA header; on the way down it hands
// the header to the strategy (feedback + CE observation) and decapsulates.
// Local (intra-rack) traffic never enters the fabric, as in the paper's
// overlay.
type LeafSwitch struct {
	ID  int
	net *Network

	uplinks     []*Link // index = LBTag
	uplinkSpine []int   // spine ID per uplink
	downlinks   []*Link // per local host, indexed by position under this leaf
	hostIndex   map[int]int

	strategy  Strategy
	vni       uint32
	pool      *PacketPool // owning domain's pool (== net.pool when sequential)
	usableBuf []bool

	// decisions feeds the decision-plane path load matrix with payload
	// bytes per (uplink, dstLeaf); nil when telemetry is off or the leaf
	// runs a non-CONGA strategy, making the hot-path site one branch.
	decisions *telemetry.DecisionHooks

	// NoRouteDrops counts packets dropped because no uplink was usable.
	NoRouteDrops uint64
	// UpPackets / DownPackets count fabric-bound and fabric-received
	// packets, for sanity checks in tests.
	UpPackets, DownPackets uint64
}

// Strategy returns the leaf's load-balancing strategy.
func (ls *LeafSwitch) Strategy() Strategy { return ls.strategy }

// Uplinks returns the leaf's uplinks; index i is LBTag i.
func (ls *LeafSwitch) Uplinks() []*Link { return ls.uplinks }

// UplinkSpine returns the spine the given uplink attaches to.
func (ls *LeafSwitch) UplinkSpine(uplink int) int { return ls.uplinkSpine[uplink] }

// PathUsable reports, per uplink, whether a packet sent on it can reach
// dstLeaf: the uplink itself must be up and its spine must retain at least
// one live downlink to dstLeaf. This models routing convergence after a
// failure — a fabric withdraws a spine from the ECMP group of leaves it
// can no longer reach. The returned slice is reused across calls.
func (ls *LeafSwitch) PathUsable(dstLeaf int) []bool {
	if ls.usableBuf == nil {
		ls.usableBuf = make([]bool, len(ls.uplinks))
	}
	for i, l := range ls.uplinks {
		ok := l.Up()
		if ok {
			ok = false
			for _, d := range ls.net.Spines[ls.uplinkSpine[i]].Downlinks(dstLeaf) {
				if d.Up() {
					ok = true
					break
				}
			}
		}
		ls.usableBuf[i] = ok
	}
	return ls.usableBuf
}

// Downlink returns the link toward a local host, or nil if the host is not
// under this leaf.
func (ls *LeafSwitch) Downlink(host int) *Link {
	if i, ok := ls.hostIndex[host]; ok {
		return ls.downlinks[i]
	}
	return nil
}

func (ls *LeafSwitch) handle(p *Packet, from *Link, now sim.Time) {
	if from != nil && from.fab {
		ls.fromFabric(p, now)
		return
	}
	ls.fromHost(p, now)
}

func (ls *LeafSwitch) fromHost(p *Packet, now sim.Time) {
	dstLeaf := ls.net.HostLeaf(p.DstHost)
	if dstLeaf == ls.ID {
		// Intra-rack: switch locally, no overlay.
		ls.Downlink(p.DstHost).Send(p, now)
		return
	}
	up := ls.strategy.SelectUplink(p, dstLeaf, now)
	if up < 0 {
		ls.NoRouteDrops++
		ls.pool.Put(p)
		return
	}
	p.SrcLeaf = ls.ID
	p.DstLeaf = dstLeaf
	ls.strategy.PrepareHeader(p, dstLeaf, up, now)
	ls.UpPackets++
	if ls.decisions != nil {
		ls.decisions.AddBytes(up, dstLeaf, p.Payload)
	}
	ls.uplinks[up].Send(p, now)
}

func (ls *LeafSwitch) fromFabric(p *Packet, now sim.Time) {
	ls.DownPackets++
	ls.strategy.OnFabricArrival(p, p.SrcLeaf, now)
	if p.Ctrl {
		// Explicit feedback terminates at the TEP.
		ls.pool.Put(p)
		return
	}
	dl := ls.Downlink(p.DstHost)
	if dl == nil {
		// Misrouted packet: the spine sent us traffic for a host we do
		// not own. Count it as a routing drop; it indicates a topology
		// wiring bug.
		ls.NoRouteDrops++
		ls.pool.Put(p)
		return
	}
	dl.Send(p, now)
}

// sendControl emits a leaf-to-leaf control packet (explicit feedback)
// toward dstLeaf on any currently usable uplink.
func (ls *LeafSwitch) sendControl(dstLeaf int, hdr core.Header, now sim.Time) {
	up := hashOverMask(ls.PathUsable(dstLeaf), uint64(now)^uint64(dstLeaf)*0x9e3779b97f4a7c15)
	if up < 0 {
		return
	}
	// The control packet is itself a fabric packet: its CE observation is
	// valid for the uplink it rides, so tag it accordingly.
	hdr.LBTag = uint8(up)
	p := ls.pool.Get()
	p.SrcLeaf = ls.ID
	p.DstLeaf = dstLeaf
	p.Ctrl = true
	p.Hdr = hdr
	p.SentAt = now
	ls.uplinks[up].Send(p, now)
}
