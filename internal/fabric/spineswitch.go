package fabric

import "conga/internal/sim"

// SpineSwitch forwards fabric packets to their destination leaf using the
// outer (overlay) header only. When several parallel links lead to the same
// leaf (link aggregation), it picks one by hashing the flow, exactly as the
// paper's footnote 3 describes ("the spine switches pick one using standard
// ECMP hashing"). Each spine downlink carries a DRE, and transiting packets
// pick up its congestion metric in their CE field (done in Link).
type SpineSwitch struct {
	ID   int
	pool *PacketPool

	// down[leaf] lists the parallel links toward that leaf.
	down [][]*Link

	// NoRouteDrops counts packets with no surviving link to their leaf.
	NoRouteDrops uint64
}

// Downlinks returns the parallel links toward leaf.
func (ss *SpineSwitch) Downlinks(leaf int) []*Link { return ss.down[leaf] }

func (ss *SpineSwitch) handle(p *Packet, _ *Link, now sim.Time) {
	links := ss.down[p.DstLeaf]
	idx := hashOverUp(links, flowHash(p))
	if idx < 0 {
		ss.NoRouteDrops++
		ss.pool.Put(p)
		return
	}
	links[idx].Send(p, now)
}
