package fabric

// PacketPool recycles Packet objects within one engine's fabric. The
// simulator is single-threaded per engine, so the pool needs no locking;
// parallelism across experiments uses one network (and pool) per goroutine.
//
// Ownership rule: whoever terminates a packet's journey releases it —
// the host on delivery, the link on a drop, the leaf/spine on a routing
// drop, and the destination TEP for control packets. Transports allocate
// via Host.NewPacket and must not touch a packet after handing it to Send.
// Packets constructed directly (tests, external drivers) are ignored by
// Put and stay garbage-collected, so foreign pointers are never recycled
// under their owner's feet.
type PacketPool struct {
	free []*Packet

	// Allocs counts pool misses (fresh heap allocations); Recycled counts
	// Gets served from the free list. Exported via counters for tests.
	Allocs   uint64
	Recycled uint64
}

// Get returns a zeroed pool-owned packet.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.Recycled++
		p.pooled = true
		return p
	}
	pp.Allocs++
	return &Packet{pooled: true}
}

// Put releases a packet back to the pool. Packets not allocated by Get
// (or already released) are left alone.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil || !p.pooled {
		return
	}
	*p = Packet{}
	pp.free = append(pp.free, p)
}
