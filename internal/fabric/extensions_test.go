package fabric

import (
	"testing"

	"conga/internal/core"
	"conga/internal/sim"
)

// TestExplicitFeedbackWorksWithoutReverseTraffic: under strictly one-way
// traffic, piggybacking has nothing to ride on — the sender's remote
// metrics stay empty. With explicit feedback enabled, the destination leaf
// emits control packets and the sender learns the path congestion anyway.
func TestExplicitFeedbackWorksWithoutReverseTraffic(t *testing.T) {
	run := func(explicit bool) uint8 {
		eng := sim.New()
		cfg := smallTestConfig(SchemeCONGA)
		cfg.NumSpines = 1
		cfg.ExplicitFeedback = explicit
		n := MustNetwork(eng, cfg)
		sink := &testSink{}
		n.Host(4).Bind(5000, sink)
		// One-way saturating flood; no reverse flows at all.
		flood(eng, n, 1, n.Host(0), n.Host(4), 5000, 1400, 0.95e9, 0, 5*sim.Millisecond)
		eng.Run(5 * sim.Millisecond)
		strat := n.Leaves[0].Strategy().(*congaStrategy)
		return strat.Core().ToLeaf.Metric(1, 0, eng.Now())
	}
	withOut := run(false)
	if withOut != 0 {
		t.Fatalf("remote metric learned without reverse traffic or explicit feedback: %d", withOut)
	}
	with := run(true)
	if with < 5 {
		t.Fatalf("explicit feedback did not deliver congestion state: metric %d", with)
	}
}

func TestExplicitFeedbackCountsControlPackets(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.ExplicitFeedback = true
	n := MustNetwork(eng, cfg)
	sink := &testSink{}
	n.Host(4).Bind(5000, sink)
	flood(eng, n, 1, n.Host(0), n.Host(4), 5000, 1400, 0.5e9, 0, 3*sim.Millisecond)
	eng.Run(3 * sim.Millisecond)
	dstStrat := n.Leaves[1].Strategy().(*congaStrategy)
	if dstStrat.CtrlPackets == 0 {
		t.Fatal("destination leaf never emitted explicit feedback")
	}
}

func TestExplicitFeedbackSuppressedByReverseTraffic(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.ExplicitFeedback = true
	n := MustNetwork(eng, cfg)
	sink := &testSink{}
	n.Host(4).Bind(5000, sink)
	rsink := &testSink{}
	n.Host(0).Bind(6000, rsink)
	// Brisk traffic in both directions: piggybacking suffices, so control
	// packets should be rare relative to sweep ticks.
	flood(eng, n, 1, n.Host(0), n.Host(4), 5000, 1400, 0.5e9, 0, 5*sim.Millisecond)
	flood(eng, n, 2, n.Host(4), n.Host(0), 6000, 1400, 0.5e9, 0, 5*sim.Millisecond)
	eng.Run(5 * sim.Millisecond)
	dstStrat := n.Leaves[1].Strategy().(*congaStrategy)
	// 5 ms / Tfl(500µs) = 10 ticks; with reverse traffic flowing every
	// tick should have piggybacked instead.
	if dstStrat.CtrlPackets > 2 {
		t.Fatalf("explicit feedback fired %d times despite reverse traffic", dstStrat.CtrlPackets)
	}
}

// TestPerLeafSchemesMixedFabric: leaf 0 runs CONGA while leaf 1 runs ECMP
// (incremental deployment). Both directions must still deliver traffic and
// the CONGA side must keep its congestion awareness.
func TestPerLeafSchemesMixedFabric(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeECMP)
	cfg.LeafSchemes = []Scheme{SchemeCONGA, SchemeECMP}
	n := MustNetwork(eng, cfg)
	if n.Leaves[0].Strategy().Name() != "conga" || n.Leaves[1].Strategy().Name() != "ecmp" {
		t.Fatalf("per-leaf schemes not applied: %s / %s",
			n.Leaves[0].Strategy().Name(), n.Leaves[1].Strategy().Name())
	}
	aSink, bSink := &testSink{}, &testSink{}
	n.Host(4).Bind(5000, aSink)
	n.Host(0).Bind(5001, bSink)
	flood(eng, n, 1, n.Host(0), n.Host(4), 5000, 1000, 1e8, 0, 2*sim.Millisecond)
	flood(eng, n, 2, n.Host(4), n.Host(0), 5001, 1000, 1e8, 0, 2*sim.Millisecond)
	eng.Run(3 * sim.Millisecond)
	if aSink.packets == 0 || bSink.packets == 0 {
		t.Fatalf("mixed fabric dropped a direction: %d / %d", aSink.packets, bSink.packets)
	}
}

func TestPerLeafSchemesValidation(t *testing.T) {
	cfg := smallTestConfig(SchemeECMP)
	cfg.LeafSchemes = []Scheme{SchemeECMP, SchemeCONGA, SchemeECMP} // 3 schemes, 2 leaves
	if _, err := NewNetwork(sim.New(), cfg); err == nil {
		t.Fatal("oversized LeafSchemes accepted")
	}
	cfg = smallTestConfig(SchemeECMP)
	cfg.LeafSchemes = []Scheme{Scheme(99)}
	if _, err := NewNetwork(sim.New(), cfg); err == nil {
		t.Fatal("bogus per-leaf scheme accepted")
	}
}

// TestSumPathMetricAccumulates: with PathMetricSum, CE adds up across hops
// instead of taking the max.
func TestSumPathMetricAccumulates(t *testing.T) {
	eng := sim.New()
	cfg := smallTestConfig(SchemeCONGA)
	cfg.NumSpines = 1
	p := core.DefaultParams()
	p.FlowletTableSize = 1024
	p.PathMetric = core.PathMetricSum
	cfg.Params = p
	n := MustNetwork(eng, cfg)

	// Preload both fabric links on the path with metric 3 each.
	up := n.Leaves[0].Uplinks()[0]
	down := n.Spines[0].Downlinks(1)[0]
	scale := up.Rate() / 8 * p.Tau().Seconds()
	up.DRE().Add(int(0.45 * scale))   // metric 3
	down.DRE().Add(int(0.45 * scale)) // metric 3

	var seenCE uint8
	orig := n.Leaves[1].strategy
	n.Leaves[1].strategy = &tapStrategy{Strategy: orig,
		probe: &congaProbe{onArrival: func(pk *Packet) { seenCE = pk.Hdr.CE }}}
	sink := &testSink{}
	n.Host(4).Bind(800, sink)
	pk := &Packet{FlowID: 3, DstHost: 4, DstPort: 800, Payload: 100}
	eng.At(0, func(now sim.Time) { n.Host(0).Send(pk, now) })
	eng.Run(sim.MaxTime)
	if seenCE != 6 {
		t.Fatalf("sum-metric CE = %d, want 6 (3+3)", seenCE)
	}
}

func TestMarkCESaturatesAtWireLimit(t *testing.T) {
	if got := core.MarkCE(core.PathMetricSum, 6, 5); got != 7 {
		t.Fatalf("saturating sum = %d, want 7", got)
	}
	if got := core.MarkCE(core.PathMetricMax, 6, 5); got != 6 {
		t.Fatalf("max marking = %d, want 6", got)
	}
}
