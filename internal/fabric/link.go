package fabric

import (
	"fmt"

	"conga/internal/core"
	"conga/internal/sim"
	"conga/internal/telemetry"
)

// Link is a unidirectional link with a drop-tail output queue, a fixed
// rate, and a propagation delay. Fabric links (leaf↔spine) additionally
// carry a DRE and stamp the CONGA CE field of transiting packets; this is
// the "Per-link Congestion Measurement" box of Figure 4.
type Link struct {
	Name string

	eng   *sim.Engine
	pool  *PacketPool
	rate  float64 // bits per second
	prop  sim.Time
	dst   node
	fab   bool // fabric link: encap overhead + DRE + CE marking
	up    bool
	maxQ  int // queue capacity in bytes (excluding the packet in service)
	qhead int
	queue []*Packet
	qlen  int // queued bytes
	busy  bool

	// The packet being serialized and the FIFO of packets in propagation.
	// Tx-done and delivery events are bound method values created once at
	// construction, so the per-packet hot path schedules no closures.
	txPkt     *Packet
	txSize    int
	inflight  []*Packet
	infHead   int
	txDoneFn  sim.Event
	deliverFn sim.Event

	// Space-parallel partition wiring (see partition.go): dom is the
	// domain of the transmitting node (which owns eng, pool, queue, DRE
	// and counters); xq, when non-nil, marks a cross-domain link whose
	// deliveries go through a window-exchange mailbox instead of a
	// directly scheduled event. Both are zero on sequential networks.
	dom int
	xq  *mailbox

	dre        *core.DRE // nil on access links
	pathMetric core.PathMetric
	// The owning network's decay ticker only visits links with a nonzero
	// DRE register. dreNotify (set by the network) registers this link on
	// its dirty-list the first time traffic arrives after the register hit
	// zero; dreListed is owned by the ticker, which clears it when it
	// drops the drained link from the list.
	dreNotify func(*Link)
	dreListed bool

	// Counters, exported for the stats collectors.
	TxPackets uint64
	TxBytes   uint64 // wire bytes actually serialized
	Drops     uint64
	DropBytes uint64

	// Telemetry hooks, nil when telemetry is off: every instrumentation
	// site below is a single nil check (see internal/telemetry).
	tel   *telemetry.LinkCounters
	trace *telemetry.PacketTrace
}

// LinkConfig parameterizes NewLink.
type LinkConfig struct {
	Name      string
	RateBps   float64
	PropDelay sim.Time
	BufBytes  int
	Fabric    bool // carries overlay traffic: encap overhead, DRE, CE marking
	Params    core.Params
	// Pool, when set, receives packets the link drops. Links built by
	// NewNetwork share the network's pool.
	Pool *PacketPool
}

// NewLink creates a link delivering to dst. Fabric links get a DRE sized to
// the link rate.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst node) *Link {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("fabric: link %q rate %v must be positive", cfg.Name, cfg.RateBps))
	}
	if cfg.BufBytes <= 0 {
		panic(fmt.Sprintf("fabric: link %q buffer %d must be positive", cfg.Name, cfg.BufBytes))
	}
	l := &Link{
		Name: cfg.Name,
		eng:  eng,
		pool: cfg.Pool,
		rate: cfg.RateBps,
		prop: cfg.PropDelay,
		dst:  dst,
		fab:  cfg.Fabric,
		up:   true,
		maxQ: cfg.BufBytes,
	}
	l.txDoneFn = l.txDone
	l.deliverFn = l.deliver
	if cfg.Fabric {
		l.dre = NewLinkDRE(cfg.RateBps, cfg.Params)
		l.pathMetric = cfg.Params.PathMetric
	}
	return l
}

// NewLinkDRE builds the DRE for a fabric link; split out so tests can
// construct DREs the same way the fabric does.
func NewLinkDRE(rateBps float64, p core.Params) *core.DRE {
	return core.NewDRE(rateBps, p)
}

// Rate returns the link rate in bits per second.
func (l *Link) Rate() float64 { return l.rate }

// Up reports whether the link is in service.
func (l *Link) Up() bool { return l.up }

// SetUp administratively raises or fails the link. Failing a link drops
// everything queued (as pulling a cable does) and resets its DRE.
func (l *Link) SetUp(up bool) {
	l.up = up
	if !up {
		for _, p := range l.queue[l.qhead:] {
			l.Drops++
			if l.tel != nil {
				l.tel.Drops++
			}
			l.pool.Put(p)
		}
		l.queue = l.queue[:0]
		l.qhead = 0
		l.qlen = 0
		if l.dre != nil {
			l.dre.Reset()
		}
	}
}

// DRE returns the link's rate estimator (nil for access links).
func (l *Link) DRE() *core.DRE { return l.dre }

// Metric returns the link's quantized congestion metric, 0 for access
// links.
func (l *Link) Metric() uint8 {
	if l.dre == nil {
		return 0
	}
	return l.dre.Quantized()
}

// QueuedBytes returns the bytes waiting in the queue (not counting the
// packet in service).
func (l *Link) QueuedBytes() int { return l.qlen }

func (l *Link) wireSize(p *Packet) int {
	if l.fab {
		return p.FabricWireSize()
	}
	return p.WireSize()
}

// Send enqueues p for transmission. If the queue is full the packet is
// dropped (drop-tail). A downed link drops everything.
func (l *Link) Send(p *Packet, now sim.Time) {
	if !l.up {
		l.Drops++
		l.DropBytes += uint64(l.wireSize(p))
		l.noteDrop(p, now)
		l.pool.Put(p)
		return
	}
	if l.busy {
		if l.qlen+l.wireSize(p) > l.maxQ {
			l.Drops++
			l.DropBytes += uint64(l.wireSize(p))
			l.noteDrop(p, now)
			l.pool.Put(p)
			return
		}
		l.queue = append(l.queue, p)
		l.qlen += l.wireSize(p)
		if l.tel != nil {
			l.tel.Enqueues++
		}
		return
	}
	if l.tel != nil {
		l.tel.Enqueues++
	}
	l.transmit(p, now)
}

// noteDrop feeds the telemetry hooks on a drop; both hooks are nil with
// telemetry off, making this two predictable branches on the drop path.
func (l *Link) noteDrop(p *Packet, now sim.Time) {
	if l.tel != nil {
		l.tel.Drops++
	}
	if l.trace != nil {
		l.trace.Record(now, telemetry.TraceDrop, l.Name, p.FlowID,
			p.SrcHost, p.DstHost, p.SrcPort, p.DstPort, p.Seq, p.Payload)
	}
}

func (l *Link) transmit(p *Packet, now sim.Time) {
	l.busy = true
	size := l.wireSize(p)
	// CONGA congestion marking (§3.3 step 2): as the packet traverses the
	// link its CE field picks up the link's congestion metric (max or
	// saturating sum per the configured path metric). Marking at transmit
	// start models the ASIC updating the field as the packet leaves the
	// port.
	if l.fab {
		if l.tel != nil {
			prev := p.Hdr.CE
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
			if p.Hdr.CE > prev {
				l.tel.CEMarks++
			}
		} else {
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
		}
		l.dre.Add(size)
		if !l.dreListed && l.dreNotify != nil {
			l.dreListed = true
			l.dreNotify(l)
		}
	}
	l.txPkt, l.txSize = p, size
	serialization := sim.Time(float64(size) * 8 / l.rate * float64(sim.Second))
	l.eng.At(now+serialization, l.txDoneFn)
}

func (l *Link) txDone(now sim.Time) {
	p, size := l.txPkt, l.txSize
	l.txPkt = nil
	l.TxPackets++
	l.TxBytes += uint64(size)
	if l.tel != nil {
		l.tel.Dequeues++
	}
	if l.up {
		if l.xq != nil {
			// Cross-domain link: the destination's engine belongs to
			// another worker goroutine, so the arrival is exported to the
			// (srcDomain, dstDomain) mailbox and scheduled there during
			// the next window exchange. The propagation delay is at least
			// the window size, so the arrival always lands beyond the
			// window being executed.
			l.xq.push(p, now+l.prop, l)
		} else {
			// Delivery events for this link all share l.deliverFn; the inflight
			// FIFO maps each firing back to its packet. That pairing is sound
			// because serialization keeps tx-done times strictly increasing,
			// propagation delay is constant, and the engine breaks time ties in
			// scheduling order.
			l.inflight = append(l.inflight, p)
			l.eng.At(now+l.prop, l.deliverFn)
		}
	} else {
		l.noteDrop(p, now)
		l.pool.Put(p)
	}
	l.next(now)
}

func (l *Link) deliver(now sim.Time) {
	p := l.inflight[l.infHead]
	l.inflight[l.infHead] = nil
	l.infHead++
	if l.infHead > 32 && l.infHead*2 >= len(l.inflight) {
		n := copy(l.inflight, l.inflight[l.infHead:])
		l.inflight = l.inflight[:n]
		l.infHead = 0
	}
	l.dst.handle(p, l, now)
}

func (l *Link) next(now sim.Time) {
	l.busy = false
	if l.qhead < len(l.queue) {
		p := l.queue[l.qhead]
		l.queue[l.qhead] = nil
		l.qhead++
		// Compact the ring once the dead prefix dominates.
		if l.qhead > 64 && l.qhead*2 >= len(l.queue) {
			n := copy(l.queue, l.queue[l.qhead:])
			l.queue = l.queue[:n]
			l.qhead = 0
		}
		l.qlen -= l.wireSize(p)
		l.transmit(p, now)
	}
}
