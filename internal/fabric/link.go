package fabric

import (
	"fmt"

	"conga/internal/core"
	"conga/internal/sim"
	"conga/internal/telemetry"
)

// Link is a unidirectional link with a drop-tail output queue, a fixed
// rate, and a propagation delay. Fabric links (leaf↔spine) additionally
// carry a DRE and stamp the CONGA CE field of transiting packets; this is
// the "Per-link Congestion Measurement" box of Figure 4.
type Link struct {
	Name string

	eng   *sim.Engine
	pool  *PacketPool
	rate  float64 // bits per second
	prop  sim.Time
	dst   node
	fab   bool // fabric link: encap overhead + DRE + CE marking
	up    bool
	maxQ  int // queue capacity in bytes (excluding the packet in service)
	qhead int
	queue []*Packet
	qlen  int // queued bytes
	busy  bool

	// The packet being serialized and the FIFO of packets in propagation.
	// Tx-done and delivery events are bound method values created once at
	// construction, so the per-packet hot path schedules no closures.
	txPkt     *Packet
	txSize    int
	inflight  []*Packet
	infHead   int
	txDoneFn  sim.Event
	deliverFn sim.Event

	// Idle-path cut-through (DESIGN.md §3.9). When fuse is set and the
	// transmitter is free with an empty queue, Send applies the transmit
	// and tx-done side effects inline and schedules the next-hop arrival
	// directly (one event instead of the txDone→deliver pair), or — inside
	// an arrival context with nothing pending in between — calls the
	// destination handler synchronously (zero events for the hop). freeAt
	// claims the transmitter through the fused serialization; packets
	// hitting a live claim queue as usual and a lazily armed drain event at
	// freeAt resumes the slow path, so contention costs exactly the
	// unfused event count. claimSeq is the engine sequence number reserved
	// for the claim at fuse time — the number the skipped txDone would have
	// carried — and the drain event is scheduled under it via AtSeq, so the
	// fused run breaks every (time, seq) tie exactly as the slow path does.
	// fusedPkt is the newest fused packet, which is the only one that can
	// still be on the wire if the link fails mid-serialization (SetUp
	// mirrors the slow path's in-service drop for it).
	fuse       bool
	dstIsHost  bool       // chains never extend into transport endpoints
	chain      *chainFlag // owning domain's arrival-context flag; nil ⇒ no chaining
	freeAt     sim.Time
	claimSeq   uint64
	fusedPkt   *Packet
	drainFn    sim.Event
	drainArmed bool

	// Space-parallel partition wiring (see partition.go): dom is the
	// domain of the transmitting node (which owns eng, pool, queue, DRE
	// and counters); xq, when non-nil, marks a cross-domain link whose
	// deliveries go through a window-exchange mailbox instead of a
	// directly scheduled event. Both are zero on sequential networks.
	dom int
	xq  *mailbox

	dre        *core.DRE // nil on access links
	pathMetric core.PathMetric
	// The owning network's decay ticker only visits links with a nonzero
	// DRE register. dreNotify (set by the network) registers this link on
	// its dirty-list the first time traffic arrives after the register hit
	// zero; dreListed is owned by the ticker, which clears it when it
	// drops the drained link from the list.
	dreNotify func(*Link)
	dreListed bool

	// Counters, exported for the stats collectors.
	TxPackets uint64
	TxBytes   uint64 // wire bytes actually serialized
	Drops     uint64
	DropBytes uint64

	// Telemetry hooks, nil when telemetry is off: every instrumentation
	// site below is a single nil check (see internal/telemetry).
	tel   *telemetry.LinkCounters
	trace *telemetry.PacketTrace
}

// LinkConfig parameterizes NewLink.
type LinkConfig struct {
	Name      string
	RateBps   float64
	PropDelay sim.Time
	BufBytes  int
	Fabric    bool // carries overlay traffic: encap overhead, DRE, CE marking
	Params    core.Params
	// Pool, when set, receives packets the link drops. Links built by
	// NewNetwork share the network's pool.
	Pool *PacketPool
}

// NewLink creates a link delivering to dst. Fabric links get a DRE sized to
// the link rate.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst node) *Link {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("fabric: link %q rate %v must be positive", cfg.Name, cfg.RateBps))
	}
	if cfg.BufBytes <= 0 {
		panic(fmt.Sprintf("fabric: link %q buffer %d must be positive", cfg.Name, cfg.BufBytes))
	}
	l := &Link{
		Name: cfg.Name,
		eng:  eng,
		pool: cfg.Pool,
		rate: cfg.RateBps,
		prop: cfg.PropDelay,
		dst:  dst,
		fab:  cfg.Fabric,
		up:   true,
		maxQ: cfg.BufBytes,
	}
	l.txDoneFn = l.txDone
	l.deliverFn = l.deliver
	l.drainFn = l.drain
	_, l.dstIsHost = dst.(*Host)
	if cfg.Fabric {
		l.dre = NewLinkDRE(cfg.RateBps, cfg.Params)
		l.pathMetric = cfg.Params.PathMetric
	}
	return l
}

// NewLinkDRE builds the DRE for a fabric link; split out so tests can
// construct DREs the same way the fabric does.
func NewLinkDRE(rateBps float64, p core.Params) *core.DRE {
	return core.NewDRE(rateBps, p)
}

// Rate returns the link rate in bits per second.
func (l *Link) Rate() float64 { return l.rate }

// Up reports whether the link is in service.
func (l *Link) Up() bool { return l.up }

// SetUp administratively raises or fails the link. Failing a link drops
// everything queued (as pulling a cable does) and resets its DRE.
func (l *Link) SetUp(up bool) {
	l.up = up
	if !up {
		for _, p := range l.queue[l.qhead:] {
			l.Drops++
			if l.tel != nil {
				l.tel.Drops++
			}
			l.pool.Put(p)
		}
		l.queue = l.queue[:0]
		l.qhead = 0
		l.qlen = 0
		if l.dre != nil {
			l.dre.Reset()
		}
		// A packet still serializing when the cable is pulled dies on the
		// wire. Both paths commit the arrival at transmit start (inflight
		// ring or mailbox), so the committed entry is tombstoned and the
		// arrival fires as a no-op. At most one packet can be mid-
		// serialization: the transmitter is serial, so every earlier one
		// finished before the next was accepted. The slow path's victim
		// still gets its tx counters (the fast path already counted at
		// transmit start), keeping fused and unfused totals identical.
		var victim *Packet
		if l.txPkt != nil {
			victim = l.txPkt
			l.txPkt = nil
			l.TxPackets++
			l.TxBytes += uint64(l.txSize)
			if l.tel != nil {
				l.tel.Dequeues++
			}
		} else if l.fusedPkt != nil && l.freeAt > l.eng.Now() {
			victim = l.fusedPkt
		}
		l.fusedPkt = nil
		if victim != nil {
			found := false
			if l.xq != nil {
				es := l.xq.entries
				for i := len(es) - 1; i >= 0; i-- {
					if es[i].p == victim {
						es[i].p = nil
						found = true
						break
					}
				}
			} else {
				for i := len(l.inflight) - 1; i >= l.infHead; i-- {
					if l.inflight[i] == victim {
						l.inflight[i] = nil
						found = true
						break
					}
				}
			}
			// A cross-domain entry already drained by a window exchange has
			// left this domain's reach; it delivers (the packet was fully
			// committed to the wire when the window closed).
			if found {
				l.noteDrop(victim, l.eng.Now())
				l.pool.Put(victim)
			}
		}
	}
}

// DRE returns the link's rate estimator (nil for access links).
func (l *Link) DRE() *core.DRE { return l.dre }

// Metric returns the link's quantized congestion metric, 0 for access
// links.
func (l *Link) Metric() uint8 {
	if l.dre == nil {
		return 0
	}
	return l.dre.Quantized()
}

// QueuedBytes returns the bytes waiting in the queue (not counting the
// packet in service).
func (l *Link) QueuedBytes() int { return l.qlen }

func (l *Link) wireSize(p *Packet) int {
	if l.fab {
		return p.FabricWireSize()
	}
	return p.WireSize()
}

// Send enqueues p for transmission. If the queue is full the packet is
// dropped (drop-tail). A downed link drops everything. A transmitter that
// is busy — serializing on the slow path, claimed by a fused send through
// freeAt, or with packets still queued behind such a claim — queues the
// packet; otherwise it transmits immediately, via the cut-through fast
// path when the link allows fusion.
func (l *Link) Send(p *Packet, now sim.Time) {
	if !l.up {
		l.Drops++
		l.DropBytes += uint64(l.wireSize(p))
		l.noteDrop(p, now)
		l.pool.Put(p)
		return
	}
	// A claim ending exactly now still blocks senders ordered before the
	// skipped txDone's sequence number: the slow-path transmitter would
	// still have been busy when they ran.
	if l.busy || l.freeAt > now || l.qhead < len(l.queue) ||
		(l.fuse && l.freeAt == now && l.eng.CurSeq() < l.claimSeq) {
		if l.qlen+l.wireSize(p) > l.maxQ {
			l.Drops++
			l.DropBytes += uint64(l.wireSize(p))
			l.noteDrop(p, now)
			l.pool.Put(p)
			return
		}
		l.queue = append(l.queue, p)
		l.qlen += l.wireSize(p)
		if l.tel != nil {
			l.tel.Enqueues++
		}
		// First packet behind a fused claim: arm the drain that stands in
		// for the skipped txDone's queue pop, at the exact time — and under
		// the exact sequence number — the skipped txDone would have run.
		if !l.busy && !l.drainArmed {
			l.drainArmed = true
			l.eng.AtSeq(l.freeAt, l.drainFn, l.claimSeq)
		}
		return
	}
	if l.tel != nil {
		l.tel.Enqueues++
	}
	if l.fuse {
		l.fastTransmit(p, now)
		return
	}
	l.transmit(p, now)
}

// fastTransmit is the idle-path cut-through: the transmit and tx-done side
// effects run inline at send time and the next-hop arrival is committed
// analytically at now+serialization+propagation. Equivalence to the slow
// path (DESIGN.md §3.9): queue occupancy is untouched either way, CE
// marking and DRE accounting happen at transmit start in both, arrival
// commitment (inflight ring or mailbox entry, and the delivery event's
// sequence number) happens at transmit start in both, and the skipped
// txDone's sequence number is reserved so contention and same-instant ties
// resolve identically. The tx-done counters move earlier only within the
// serialization interval — no event can observe the difference mid-claim
// except explicitly sampled counter snapshots, which is why tracing and
// live taps force fusion off.
func (l *Link) fastTransmit(p *Packet, now sim.Time) {
	size := l.wireSize(p)
	if l.fab {
		if l.tel != nil {
			prev := p.Hdr.CE
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
			if p.Hdr.CE > prev {
				l.tel.CEMarks++
			}
		} else {
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
		}
		l.dre.Add(size)
		if !l.dreListed && l.dreNotify != nil {
			l.dreListed = true
			l.dreNotify(l)
		}
	}
	serEnd := now + sim.Time(float64(size)*8/l.rate*float64(sim.Second))
	arrival := serEnd + l.prop
	l.TxPackets++
	l.TxBytes += uint64(size)
	if l.tel != nil {
		l.tel.Dequeues++
	}
	l.freeAt = serEnd
	l.claimSeq = l.eng.ReserveSeq() // the skipped txDone's number
	l.fusedPkt = p
	if l.xq != nil {
		// Cross-domain hop: one mailbox entry, zero local events. The slow
		// path consumes no further sequence numbers here either (its
		// mailbox push is seq-free), so parity holds.
		l.xq.push(p, arrival, l)
		return
	}
	if c := l.chain; c != nil && c.active && !l.dstIsHost && l.eng.ChainableTo(arrival) {
		// Hop chain: nothing is pending in (now, arrival], the arrival
		// handler is the tail of the current (pure-arrival) event, and the
		// destination is a switch whose handler reads only the explicit
		// time — so running it here is indistinguishable from the engine
		// executing a scheduled arrival. The handler runs under the
		// sequence number its delivery event would have carried, so any
		// same-instant claims it races against resolve identically. Fully
		// delivered, the packet can no longer be killed by a
		// mid-serialization link failure (any such failure event would have
		// blocked the chain).
		l.fusedPkt = nil
		prev := l.eng.SetCurSeq(l.eng.ReserveSeq())
		l.dst.handle(p, l, arrival)
		l.eng.SetCurSeq(prev)
		return
	}
	l.inflight = append(l.inflight, p)
	l.eng.At(arrival, l.deliverFn)
}

// drain retires an expired fused claim: it fires at freeAt — the instant
// the skipped txDone would have freed the transmitter — and starts the
// queued packet on the slow path.
func (l *Link) drain(now sim.Time) {
	l.drainArmed = false
	l.next(now)
}

// noteDrop feeds the telemetry hooks on a drop; both hooks are nil with
// telemetry off, making this two predictable branches on the drop path.
func (l *Link) noteDrop(p *Packet, now sim.Time) {
	if l.tel != nil {
		l.tel.Drops++
	}
	if l.trace != nil {
		l.trace.Record(now, telemetry.TraceDrop, l.Name, p.FlowID,
			p.SrcHost, p.DstHost, p.SrcPort, p.DstPort, p.Seq, p.Payload)
	}
}

func (l *Link) transmit(p *Packet, now sim.Time) {
	l.busy = true
	size := l.wireSize(p)
	// CONGA congestion marking (§3.3 step 2): as the packet traverses the
	// link its CE field picks up the link's congestion metric (max or
	// saturating sum per the configured path metric). Marking at transmit
	// start models the ASIC updating the field as the packet leaves the
	// port.
	if l.fab {
		if l.tel != nil {
			prev := p.Hdr.CE
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
			if p.Hdr.CE > prev {
				l.tel.CEMarks++
			}
		} else {
			p.Hdr.CE = core.MarkCE(l.pathMetric, p.Hdr.CE, l.dre.Quantized())
		}
		l.dre.Add(size)
		if !l.dreListed && l.dreNotify != nil {
			l.dreListed = true
			l.dreNotify(l)
		}
	}
	l.txPkt, l.txSize = p, size
	serEnd := now + sim.Time(float64(size)*8/l.rate*float64(sim.Second))
	l.eng.At(serEnd, l.txDoneFn)
	// The arrival is committed at transmit start, exactly as the fused fast
	// path commits it, so delivery events carry identical sequence numbers
	// in both modes and every same-instant tie breaks the same way. A link
	// failure before serEnd tombstones the committed entry (see SetUp).
	if l.xq != nil {
		// Cross-domain link: the destination's engine belongs to another
		// worker goroutine, so the arrival is exported to the (srcDomain,
		// dstDomain) mailbox and scheduled there during the next window
		// exchange. The propagation delay is at least the window size, so
		// the arrival always lands beyond the window being executed.
		l.xq.push(p, serEnd+l.prop, l)
	} else {
		// Delivery events for this link all share l.deliverFn; the inflight
		// FIFO maps each firing back to its packet. That pairing is sound
		// because serialization keeps arrival times strictly increasing,
		// propagation delay is constant, and the engine breaks time ties in
		// scheduling order.
		l.inflight = append(l.inflight, p)
		l.eng.At(serEnd+l.prop, l.deliverFn)
	}
}

func (l *Link) txDone(now sim.Time) {
	if l.txPkt != nil { // nil: killed by a mid-serialization SetUp
		l.txPkt = nil
		l.TxPackets++
		l.TxBytes += uint64(l.txSize)
		if l.tel != nil {
			l.tel.Dequeues++
		}
	}
	l.next(now)
}

func (l *Link) deliver(now sim.Time) {
	p := l.inflight[l.infHead]
	l.inflight[l.infHead] = nil
	l.infHead++
	if l.infHead > 32 && l.infHead*2 >= len(l.inflight) {
		n := copy(l.inflight, l.inflight[l.infHead:])
		l.inflight = l.inflight[:n]
		l.infHead = 0
	}
	if p == nil {
		// Tombstone: a fused packet killed by a mid-serialization link
		// failure (SetUp). The arrival slot still had to fire to keep the
		// ring's FIFO pairing intact.
		return
	}
	if c := l.chain; c != nil && !l.dstIsHost {
		// Switch-arrival context: while the destination handler runs,
		// downstream idle sends may collapse the next hop into this event
		// (see fastTransmit). Switch handlers forward at most one packet
		// and do it as their final action, so the handler is this event's
		// tail and the flag covers exactly the chainable region. Host
		// arrivals never set it: a transport may emit several packets and
		// keep computing after each send, which is not a pure tail.
		c.active = true
		l.dst.handle(p, l, now)
		c.active = false
		return
	}
	l.dst.handle(p, l, now)
}

// chainFlag marks, per partition domain, that the currently executing
// event is a pure packet arrival — its only remaining work is the
// destination handler — which is the context where idle-path sends may
// legally chain hops synchronously.
type chainFlag struct{ active bool }

func (l *Link) next(now sim.Time) {
	l.busy = false
	if l.qhead < len(l.queue) {
		p := l.queue[l.qhead]
		l.queue[l.qhead] = nil
		l.qhead++
		// Compact the ring once the dead prefix dominates.
		if l.qhead > 64 && l.qhead*2 >= len(l.queue) {
			n := copy(l.queue, l.queue[l.qhead:])
			l.queue = l.queue[:n]
			l.qhead = 0
		}
		l.qlen -= l.wireSize(p)
		l.transmit(p, now)
	}
}
