package fabric

// portTable is the host's port→Receiver demux: an open-addressed hash
// table with linear probing, sized to the live endpoints. It replaces a
// Go map, whose insert+delete per flow (two ports each) dominated the
// flow-lifecycle allocation profile: the table's backing arrays are
// allocated once and reused, so binding and unbinding ports in steady
// state allocates nothing.
//
// Layout: power-of-two capacity, key 0 as the empty sentinel (port 0 is
// never bindable — Host.Bind rejects it), Fibonacci-multiplicative
// hashing, and backward-shift deletion so probe chains stay dense without
// tombstones. The table is only ever probed point-wise (Bind, Unbind,
// AllocPort, packet demux); nothing iterates it, so probe order cannot
// leak into simulation behavior.
type portTable struct {
	keys []int32
	vals []Receiver
	live int
}

// minPortTableSize is the initial capacity: 16 slots cover the common
// few-live-flows-per-host case without growth.
const minPortTableSize = 16

func (t *portTable) init(n int) {
	t.keys = make([]int32, n)
	t.vals = make([]Receiver, n)
	t.live = 0
}

// slotFor maps a port to its home slot (Fibonacci hashing: multiply by
// 2^64/φ and keep high-ish bits, which scatters sequential ports well).
func (t *portTable) slotFor(port int32) int {
	h := uint64(uint32(port)) * 0x9E3779B97F4A7C15
	return int(h>>32) & (len(t.keys) - 1)
}

func (t *portTable) len() int { return t.live }

// get returns the receiver bound to port, if any.
func (t *portTable) get(port int) (Receiver, bool) {
	if t.live == 0 {
		return nil, false
	}
	p := int32(port)
	mask := len(t.keys) - 1
	for i := t.slotFor(p); t.keys[i] != 0; i = (i + 1) & mask {
		if t.keys[i] == p {
			return t.vals[i], true
		}
	}
	return nil, false
}

// has reports whether port is bound.
func (t *portTable) has(port int) bool {
	_, ok := t.get(port)
	return ok
}

// insert binds port to r, reporting false if the port is already bound.
func (t *portTable) insert(port int, r Receiver) bool {
	if t.keys == nil {
		t.init(minPortTableSize)
	}
	// Grow at 3/4 load so probe chains stay short; doubling keeps the
	// power-of-two mask.
	if (t.live+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	p := int32(port)
	mask := len(t.keys) - 1
	i := t.slotFor(p)
	for t.keys[i] != 0 {
		if t.keys[i] == p {
			return false
		}
		i = (i + 1) & mask
	}
	t.keys[i] = p
	t.vals[i] = r
	t.live++
	return true
}

// delete unbinds port (a no-op if unbound), using backward-shift deletion:
// entries displaced past the vacated slot move back into it, so lookups
// need no tombstones and long-lived tables never degrade.
func (t *portTable) delete(port int) {
	if t.live == 0 {
		return
	}
	p := int32(port)
	mask := len(t.keys) - 1
	i := t.slotFor(p)
	for t.keys[i] != p {
		if t.keys[i] == 0 {
			return
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.keys[i] = 0
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.keys[j] == 0 {
				t.live--
				return
			}
			// The entry at j may fill slot i only if i lies on its probe
			// path, i.e. its home slot is cyclically no later than i.
			if k := t.slotFor(t.keys[j]); (j-k)&mask >= (j-i)&mask {
				t.keys[i] = t.keys[j]
				t.vals[i] = t.vals[j]
				i = j
				break
			}
		}
	}
}

func (t *portTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k != 0 {
			t.insert(int(k), oldVals[i])
		}
	}
}
