package fabric

import (
	"fmt"

	"conga/internal/sim"
	"conga/internal/telemetry"
)

// Host is an end system: one access link up to its leaf, and a demux table
// delivering arriving packets to bound transport endpoints by destination
// port. Transports (internal/tcp, internal/mptcp) attach to hosts.
type Host struct {
	ID   int
	Leaf int // leaf switch this host attaches to

	out       *Link // host → leaf
	pool      *PacketPool
	recv      portTable
	nextPort  int
	maxEphem  int // AllocPort draws from [minPort, maxEphem]
	RxPackets uint64
	RxBytes   uint64

	// Telemetry hooks, nil when telemetry is off. tcpTel is shared by
	// every transport on the engine (fetched via TCPCounters at sender
	// construction); trace records host-level send/recv events.
	tcpTel    *telemetry.TCPCounters
	trace     *telemetry.PacketTrace
	traceName string
}

// The dynamic local-port range AllocPort draws from. minPort matches the
// traditional ephemeral-range start; maxPort bounds the space so the
// sequence wraps instead of growing without limit at large-fabric flow
// counts (ports must also stay well inside the table's int32 keys).
const (
	minPort = 10000
	maxPort = 1<<26 - 1
)

func newHost(id, leaf int, pool *PacketPool) *Host {
	return &Host{ID: id, Leaf: leaf, pool: pool, nextPort: minPort, maxEphem: maxPort}
}

// LimitEphemeralPorts shrinks AllocPort's range to [minPort, ceil]. The
// parallel harness pre-assigns receiver ports above that ceiling before the
// run, so sender-side allocations (which happen concurrently, one domain
// per goroutine, against this host's domain-local table) can never collide
// with them. Must be called before any AllocPort.
func (h *Host) LimitEphemeralPorts(ceil int) {
	if ceil <= minPort {
		panic(fmt.Sprintf("fabric: host %d ephemeral-port ceiling %d below floor %d", h.ID, ceil, minPort))
	}
	h.maxEphem = ceil
}

// NewPacket returns a zeroed packet from the fabric's pool. The packet is
// owned by the fabric once passed to Send: the terminal hop (delivery or
// drop) releases it, so the caller must not retain or reuse the pointer.
func (h *Host) NewPacket() *Packet { return h.pool.Get() }

// Bind registers r to receive packets addressed to port. It panics if the
// port is taken — two endpoints on one port is always a harness bug — or
// out of range (the demux table reserves 0 as its empty sentinel).
func (h *Host) Bind(port int, r Receiver) {
	if port <= 0 || port > 0x7FFFFFFF {
		panic(fmt.Sprintf("fabric: host %d Bind(%d): port out of range", h.ID, port))
	}
	if !h.recv.insert(port, r) {
		panic(fmt.Sprintf("fabric: host %d port %d already bound", h.ID, port))
	}
}

// Unbind releases a port.
func (h *Host) Unbind(port int) { h.recv.delete(port) }

// AllocPort returns a fresh unused local port from [minPort, maxPort] (or
// the lower ceiling set by LimitEphemeralPorts), wrapping around when the
// space is exhausted and skipping ports still bound to live receivers. It
// panics only if every port in the range is live — at which point the
// simulation has tens of millions of concurrent endpoints on one host and
// something else is already wrong.
func (h *Host) AllocPort() int { return h.allocPortIn(minPort, h.maxEphem) }

// allocPortIn is AllocPort over an explicit range (tests shrink it to
// exercise wraparound and exhaustion without 2²⁶ iterations).
func (h *Host) allocPortIn(lo, hi int) int {
	for span := hi - lo + 1; span > 0; span-- {
		p := h.nextPort
		if p < lo || p > hi {
			p = lo // wrap: previous allocation used hi (or the range moved)
		}
		h.nextPort = p + 1
		if !h.recv.has(p) {
			return p
		}
	}
	panic(fmt.Sprintf("fabric: host %d port space [%d, %d] exhausted (%d live receivers)",
		h.ID, lo, hi, h.recv.len()))
}

// Send transmits p on the host's access link. The caller must have filled
// the addressing fields.
func (h *Host) Send(p *Packet, now sim.Time) {
	p.SrcHost = h.ID
	if h.trace != nil {
		h.trace.Record(now, telemetry.TraceSend, h.traceName, p.FlowID,
			p.SrcHost, p.DstHost, p.SrcPort, p.DstPort, p.Seq, p.Payload)
	}
	h.out.Send(p, now)
}

// TCPCounters returns the engine-wide TCP telemetry counters, or nil when
// telemetry is off. Transports fetch this once at construction and bump it
// through a nil-checked pointer.
func (h *Host) TCPCounters() *telemetry.TCPCounters { return h.tcpTel }

// PacketTrace returns the engine-wide packet trace, or nil when tracing is
// off. Transports fetch it at construction to fire flight-recorder
// triggers (e.g. first RTO) through its nil-safe methods.
func (h *Host) PacketTrace() *telemetry.PacketTrace { return h.trace }

// AccessLink returns the host's uplink to its leaf, for counters and fault
// injection.
func (h *Host) AccessLink() *Link { return h.out }

// handle implements node: packets arriving from the leaf are demuxed to the
// bound receiver. Packets to unbound ports are dropped silently, like a
// host RST-ing unknown traffic; a counter records them for debugging.
// Delivery is the end of a packet's life: once the receiver returns, the
// packet goes back to the pool, so receivers must copy anything they keep.
func (h *Host) handle(p *Packet, _ *Link, now sim.Time) {
	h.RxPackets++
	h.RxBytes += uint64(p.WireSize())
	if h.trace != nil {
		h.trace.Record(now, telemetry.TraceRecv, h.traceName, p.FlowID,
			p.SrcHost, p.DstHost, p.SrcPort, p.DstPort, p.Seq, p.Payload)
	}
	if r, ok := h.recv.get(p.DstPort); ok {
		r.Receive(p, now)
	}
	h.pool.Put(p)
}
