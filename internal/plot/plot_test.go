package plot

import (
	"strings"
	"testing"
)

func sample(name, unit string, pts ...[2]float64) Series {
	return Series{Name: name, Unit: unit, Points: pts}
}

func TestLineRendersSeries(t *testing.T) {
	svg := Line([]Series{
		sample("queue.l0->s0.0", "bytes", [2]float64{0, 0}, [2]float64{5e6, 3000}, [2]float64{1e7, 1500}),
		sample("queue.l0->s0.1", "bytes", [2]float64{0, 0}, [2]float64{1e7, 2800}),
	}, Spec{Title: "queue depth", Width: 640, Height: 320})
	for _, want := range []string{"<svg", "</svg>", "queue depth", "bytes", "sim time (ms)",
		"queue.l0-&gt;s0.0", "queue.l0-&gt;s0.1", "<path"} {
		if !strings.Contains(svg, want) {
			t.Errorf("Line SVG missing %q", want)
		}
	}
	// Two series, two polylines.
	if got := strings.Count(svg, "<path"); got != 2 {
		t.Errorf("Line drew %d paths, want 2", got)
	}
}

func TestCDFRendersFractionAxis(t *testing.T) {
	svg := CDF([]Series{
		sample("imbalance", "ratio", [2]float64{1, 0.1}, [2]float64{1.5, 0.6}, [2]float64{2.4, 1}),
	}, Spec{Title: "imbalance CDF", Width: 640, Height: 320})
	for _, want := range []string{"<svg", "imbalance CDF", "cumulative fraction", "ratio",
		">0.25<", ">0.75<", ">1<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("CDF SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "sim time") {
		t.Error("CDF chart labeled its x axis as sim time")
	}
}

func TestDroppedNoteIsVisible(t *testing.T) {
	svg := Line([]Series{sample("a", "bytes", [2]float64{0, 1}, [2]float64{1, 2})},
		Spec{Title: "t", Width: 400, Height: 200, Dropped: 3})
	if !strings.Contains(svg, "3 more series not shown") {
		t.Error("dropped-series note missing from figure")
	}
}

func TestDecimateKeepsEndpoints(t *testing.T) {
	pts := make([][2]float64, 5000)
	for i := range pts {
		pts[i] = [2]float64{float64(i), float64(i)}
	}
	out := decimate(pts, 100)
	if len(out) > 101 {
		t.Fatalf("decimate kept %d points for budget 100", len(out))
	}
	if out[0] != pts[0] || out[len(out)-1] != pts[len(pts)-1] {
		t.Error("decimate lost an endpoint")
	}
}
