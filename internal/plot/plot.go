// Package plot renders paper-style figures as standalone SVG strings: a
// single-axis time-series line chart (queue depth over time, DRE register
// trajectories — the shapes of Figures 4 and 12) and a CDF chart
// (throughput imbalance, queue-depth distributions — Figures 12 and 11b).
//
// The package is shared by the congaplot CLI and the live-telemetry HTML
// dashboard, so it depends on nothing but the standard library and takes
// its input as plain [][2]float64 point lists.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart. For Line, Points are
// (time_ns, value); for CDF, (value, cumulative fraction in [0,1]).
type Series struct {
	Name   string
	Unit   string
	Points [][2]float64
}

// Spec is the chart frame.
type Spec struct {
	Title   string
	Width   int
	Height  int
	Dropped int // series cut by the palette cap, shown on the figure
}

// The categorical palette, assigned to series in fixed name order — a
// filter that changes which series are selected never repaints the
// survivors' identity within one invocation, and the hue order itself is
// never cycled or generated. MaxSeries is a hard readability cap; the
// caller reports how many series were dropped on the figure itself.
var palette = []string{
	"#2a78d6", "#eb6834", "#1baf7a", "#eda100",
	"#e87ba4", "#008300", "#4a3aa7", "#e34948",
}

// MaxSeries is the palette width: the most series one chart will draw.
const MaxSeries = 8

// Chart ink: text wears text tokens, never series colors.
const (
	surface   = "#fcfcfb"
	inkText   = "#0b0b0b"
	inkMuted  = "#52514e"
	inkGrid   = "#e8e7e3"
	inkAxis   = "#c9c8c4"
	maxPoints = 2000 // per-series polyline budget; beyond it, stride-decimate
)

// Line draws a single-axis time-series line chart of the series as a
// standalone SVG. Points are (time_ns, value); all series share one unit.
func Line(list []Series, spec Spec) string {
	// Data extent across every series.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, s := range list {
		for _, p := range s.Points {
			tMin, tMax = math.Min(tMin, p[0]), math.Max(tMax, p[0])
			vMin, vMax = math.Min(vMin, p[1]), math.Max(vMax, p[1])
		}
	}
	if tMax <= tMin {
		tMax = tMin + 1
	}
	// Magnitude charts anchor at zero unless the data goes negative.
	if vMin > 0 {
		vMin = 0
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}

	tUnit, tDiv := timeUnit(tMax - tMin)
	yTicks := niceTicks(vMin, vMax, 5)
	vMin, vMax = yTicks[0], yTicks[len(yTicks)-1]
	xTicks := niceTicks(tMin/tDiv, tMax/tDiv, 6)

	f := frame{
		spec: spec, list: list,
		xMin: tMin, xMax: tMax, yMin: vMin, yMax: vMax,
		xTicks: xTicks, xDiv: tDiv, yTicks: yTicks,
		xLabel: fmt.Sprintf("sim time (%s)", tUnit),
		sub:    yAxisLabel(list[0].Unit),
		yFmt:   fmtVal,
	}
	return f.draw()
}

// CDF draws a cumulative-distribution chart: x is the measured value (in
// the series' unit), y is the cumulative fraction on a fixed [0,1] axis.
func CDF(list []Series, spec Spec) string {
	xMin, xMax := math.Inf(1), math.Inf(-1)
	for _, s := range list {
		for _, p := range s.Points {
			xMin, xMax = math.Min(xMin, p[0]), math.Max(xMax, p[0])
		}
	}
	if xMin > 0 && xMin <= (xMax-xMin) {
		xMin = 0 // anchor at zero when the data starts near it
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	xTicks := niceTicks(xMin, xMax, 6)
	xMin, xMax = xTicks[0], xTicks[len(xTicks)-1]

	xLabel := list[0].Unit
	if xLabel == "" {
		xLabel = "value"
	}
	f := frame{
		spec: spec, list: list,
		xMin: xMin, xMax: xMax, yMin: 0, yMax: 1,
		xTicks: xTicks, xDiv: 1,
		yTicks: []float64{0, 0.25, 0.5, 0.75, 1},
		xLabel: xLabel,
		sub:    "cumulative fraction",
		yFmt:   func(v float64) string { return trimZero(fmt.Sprintf("%.2f", v)) },
	}
	return f.draw()
}

// frame is the shared chart skeleton: axes, grid, series polylines,
// legend and direct end-of-line labels. Line and CDF differ only in how
// they derive the axis extents, tick sets and labels.
type frame struct {
	spec                   Spec
	list                   []Series
	xMin, xMax, yMin, yMax float64
	xTicks                 []float64 // in display units (already divided by xDiv)
	xDiv                   float64   // raw-x per display-x (1e6 for ms, 1 for CDF)
	yTicks                 []float64
	xLabel, sub            string
	yFmt                   func(float64) string
}

func (f *frame) draw() string {
	list, spec := f.list, f.spec
	directLabels := len(list) >= 2 && len(list) <= 4
	marginL, marginR, marginT, marginB := 64.0, 20.0, 60.0, 44.0
	if directLabels {
		longest := 0
		for _, s := range list {
			if len(s.Name) > longest {
				longest = len(s.Name)
			}
		}
		marginR += math.Min(float64(longest)*6.6, 180)
	}
	w, h := float64(spec.Width), float64(spec.Height)
	plotW, plotH := w-marginL-marginR, h-marginT-marginB

	x := func(t float64) float64 { return marginL + (t-f.xMin)/(f.xMax-f.xMin)*plotW }
	y := func(v float64) float64 { return marginT + (1-(v-f.yMin)/(f.yMax-f.yMin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, sans-serif">`+"\n",
		spec.Width, spec.Height, spec.Width, spec.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", spec.Width, spec.Height, surface)

	// Title and subtitle (unit, plus the dropped-series note — visible, not
	// a silent cap).
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-size="16" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, inkText, esc(spec.Title))
	sub := f.sub
	if spec.Dropped > 0 {
		sub += fmt.Sprintf(" — %d more series not shown (narrow -series)", spec.Dropped)
	}
	fmt.Fprintf(&b, `<text x="%.0f" y="42" font-size="12" fill="%s">%s</text>`+"\n",
		marginL, inkMuted, esc(sub))

	// Recessive horizontal grid with y tick labels; one baseline axis.
	for _, tv := range f.yTicks {
		yy := y(tv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, yy, marginL+plotW, yy, inkGrid)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL-8, yy+4, inkMuted, esc(f.yFmt(tv)))
	}
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH, inkAxis)
	for _, tv := range f.xTicks {
		xx := x(tv * f.xDiv)
		if xx < marginL-0.5 || xx > marginL+plotW+0.5 {
			continue
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			xx, marginT+plotH+18, inkMuted, esc(fmtVal(tv)))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, h-10, inkMuted, esc(f.xLabel))

	// Series lines: 2px, round joins, native <title> tooltips.
	for i, s := range list {
		color := palette[i%len(palette)]
		pts := decimate(s.Points, maxPoints)
		var path strings.Builder
		for j, p := range pts {
			cmd := 'L'
			if j == 0 {
				cmd = 'M'
			}
			fmt.Fprintf(&path, "%c%.1f %.1f", cmd, x(p[0]), y(p[1]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"><title>%s</title></path>`+"\n",
			path.String(), color, esc(s.Name))
	}

	// Direct end-of-line labels for up to 4 series, nudged apart so they
	// never overlap; identity is carried by a colored tick beside muted
	// text, not by coloring the text itself.
	if directLabels {
		type endLab struct {
			name  string
			color string
			yPos  float64
		}
		labs := make([]endLab, len(list))
		for i, s := range list {
			last := s.Points[len(s.Points)-1]
			labs[i] = endLab{s.Name, palette[i%len(palette)], y(last[1])}
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i].yPos < labs[j].yPos })
		for i := 1; i < len(labs); i++ {
			if labs[i].yPos-labs[i-1].yPos < 14 {
				labs[i].yPos = labs[i-1].yPos + 14
			}
		}
		for _, l := range labs {
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
				marginL+plotW+4, l.yPos, marginL+plotW+14, l.yPos, l.color)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
				marginL+plotW+18, l.yPos+4, inkMuted, esc(l.name))
		}
	}

	// Legend: always present for >= 2 series (a single series is named by
	// the title), one horizontal row above the plot.
	if len(list) >= 2 {
		lx := marginL
		ly := marginT - 8
		for i, s := range list {
			color := palette[i%len(palette)]
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
				lx, ly-4, lx+14, ly-4, color)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
				lx+18, ly, inkMuted, esc(s.Name))
			lx += 24 + float64(len(s.Name))*6.6
			if lx > marginL+plotW-80 && i < len(list)-1 {
				break // remaining names are on the direct labels / tooltips
			}
		}
	}

	b.WriteString("</svg>\n")
	return b.String()
}

// decimate strides the points down to at most budget, always keeping the
// first and last point.
func decimate(pts [][2]float64, budget int) [][2]float64 {
	if len(pts) <= budget {
		return pts
	}
	stride := (len(pts) + budget - 1) / budget
	out := make([][2]float64, 0, budget+1)
	for i := 0; i < len(pts); i += stride {
		out = append(out, pts[i])
	}
	if out[len(out)-1] != pts[len(pts)-1] {
		out = append(out, pts[len(pts)-1])
	}
	return out
}

// timeUnit picks the display unit so the span reads in small numbers.
func timeUnit(spanNs float64) (string, float64) {
	switch {
	case spanNs >= 2e9:
		return "s", 1e9
	case spanNs >= 2e6:
		return "ms", 1e6
	case spanNs >= 2e3:
		return "µs", 1e3
	default:
		return "ns", 1
	}
}

// niceTicks returns ~n round-number ticks spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	step := niceStep((hi - lo) / float64(n))
	start := math.Floor(lo/step) * step
	var out []float64
	for v := start; v < hi+step/2; v += step {
		out = append(out, v)
	}
	return out
}

// niceStep rounds a raw step up to 1, 2, 2.5 or 5 times a power of ten.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch frac := raw / mag; {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 2.5:
		return 2.5 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// fmtVal renders an axis value compactly with an SI suffix.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e9:
		return trimZero(fmt.Sprintf("%.2f", v/1e9)) + "G"
	case av >= 1e6:
		return trimZero(fmt.Sprintf("%.2f", v/1e6)) + "M"
	case av >= 1e3:
		return trimZero(fmt.Sprintf("%.2f", v/1e3)) + "k"
	case av < 0.01:
		return fmt.Sprintf("%.2g", v)
	default:
		return trimZero(fmt.Sprintf("%.2f", v))
	}
}

func trimZero(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func yAxisLabel(unit string) string {
	if unit == "" {
		return "value"
	}
	return unit
}

// esc escapes text for SVG content.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
