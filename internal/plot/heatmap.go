package plot

import (
	"fmt"
	"math"
	"strings"
)

// HeatmapSpec is the input to Heatmap: a dense matrix of non-negative
// values with row and column labels. Values[r][c] belongs to RowLabels[r]
// and ColLabels[c]; rows shorter than ColLabels read as zero.
type HeatmapSpec struct {
	Title     string
	Subtitle  string
	Width     int
	Height    int
	Unit      string // shown on the color scale
	RowLabels []string
	ColLabels []string
	Values    [][]float64
}

// Heatmap draws a matrix heatmap as a standalone SVG: one shaded cell per
// (row, column) with its value printed when the cell is large enough, and
// a min→max color scale. It shares the line/CDF charts' ink so dashboard
// figures read as one family. Intended for the decision plane's path
// utilization matrix (rows = source uplinks, columns = destination
// leaves), but takes any labeled matrix.
func Heatmap(spec HeatmapSpec) string {
	if spec.Width <= 0 {
		spec.Width = 720
	}
	if spec.Height <= 0 {
		// Grow with the row count so tall matrices stay readable.
		spec.Height = 120 + 28*len(spec.RowLabels) + 40
	}
	rows, cols := len(spec.RowLabels), len(spec.ColLabels)
	vMax := 0.0
	for _, row := range spec.Values {
		for _, v := range row {
			vMax = math.Max(vMax, v)
		}
	}

	longest := 0
	for _, l := range spec.RowLabels {
		if len(l) > longest {
			longest = len(l)
		}
	}
	marginL := math.Max(64, 16+float64(longest)*6.6)
	marginR, marginT, marginB := 20.0, 78.0, 40.0
	w, h := float64(spec.Width), float64(spec.Height)
	plotW, plotH := w-marginL-marginR, h-marginT-marginB
	cellW, cellH := plotW/math.Max(1, float64(cols)), plotH/math.Max(1, float64(rows))

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, -apple-system, sans-serif">`+"\n",
		spec.Width, spec.Height, spec.Width, spec.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", spec.Width, spec.Height, surface)
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-size="16" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, inkText, esc(spec.Title))
	if spec.Subtitle != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="42" font-size="12" fill="%s">%s</text>`+"\n",
			marginL, inkMuted, esc(spec.Subtitle))
	}

	// Color scale: surface → the palette's lead blue, with a legend bar.
	scaleW := math.Min(180, plotW/2)
	sx := marginL + plotW - scaleW
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&b, `<rect x="%.1f" y="52" width="%.1f" height="8" fill="%s"/>`+"\n",
			sx+float64(i)*scaleW/32, scaleW/32+0.5, heatColor(float64(i)/31))
	}
	unit := spec.Unit
	if unit != "" {
		unit = " " + unit
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="70" font-size="10" fill="%s">0%s</text>`+"\n", sx, inkMuted, esc(unit))
	fmt.Fprintf(&b, `<text x="%.1f" y="70" font-size="10" fill="%s" text-anchor="end">%s%s</text>`+"\n",
		sx+scaleW, inkMuted, esc(fmtVal(vMax)), esc(unit))

	for r := 0; r < rows; r++ {
		yy := marginT + float64(r)*cellH
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL-8, yy+cellH/2+4, inkMuted, esc(spec.RowLabels[r]))
		for c := 0; c < cols; c++ {
			v := 0.0
			if r < len(spec.Values) && c < len(spec.Values[r]) {
				v = spec.Values[r][c]
			}
			frac := 0.0
			if vMax > 0 {
				frac = v / vMax
			}
			xx := marginL + float64(c)*cellW
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" stroke-width="1"><title>%s → %s: %s%s</title></rect>`+"\n",
				xx, yy, cellW, cellH, heatColor(frac), surface,
				esc(spec.RowLabels[r]), esc(spec.ColLabels[c]), esc(fmtVal(v)), esc(unit))
			if cellW >= 46 && cellH >= 16 {
				ink := inkMuted
				if frac > 0.6 {
					ink = surface // light text on dark cells
				}
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
					xx+cellW/2, yy+cellH/2+4, ink, esc(fmtVal(v)))
			}
		}
	}
	for c := 0; c < cols; c++ {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			marginL+(float64(c)+0.5)*cellW, marginT+plotH+16, inkMuted, esc(spec.ColLabels[c]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// heatColor maps frac in [0,1] onto the surface→blue ramp used by Heatmap.
func heatColor(frac float64) string {
	frac = math.Max(0, math.Min(1, frac))
	// surface #fcfcfb → palette[0] #2a78d6, linear in sRGB.
	lerp := func(a, b float64) int { return int(a + (b-a)*frac) }
	return fmt.Sprintf("#%02x%02x%02x",
		lerp(0xfc, 0x2a), lerp(0xfc, 0x78), lerp(0xfb, 0xd6))
}
