package stochmodel

import (
	"math"
	"testing"

	"conga/internal/sim"
	"conga/internal/workload"
)

func baseConfig() Config {
	return Config{
		Links:   4,
		Lambda:  1000,
		Dist:    workload.Fixed(100_000),
		Horizon: 1.0,
		Runs:    50,
		Seed:    1,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Links = 1 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Dist = nil },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Runs = 0 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestImbalanceDecaysWithTime(t *testing.T) {
	short := baseConfig()
	short.Horizon = 0.1
	long := baseConfig()
	long.Horizon = 10
	rs, err := Evaluate(short)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Evaluate(long)
	if err != nil {
		t.Fatal(err)
	}
	if rl.MeanImbalance >= rs.MeanImbalance {
		t.Fatalf("imbalance did not decay with t: %.4f (t=0.1) vs %.4f (t=10)",
			rs.MeanImbalance, rl.MeanImbalance)
	}
	// Theorem 2 predicts ~1/√t decay: 10× the horizon should shrink the
	// imbalance by very roughly √100 ≈ 10; accept a broad band.
	ratio := rs.MeanImbalance / rl.MeanImbalance
	if ratio < 3 {
		t.Fatalf("decay ratio %.2f too weak for 1/√t (expected ≈10)", ratio)
	}
}

// TestHeavyTailHarderToBalance is the qualitative content of Theorem 2:
// at equal mean load, a high-CV distribution leaves more imbalance.
func TestHeavyTailHarderToBalance(t *testing.T) {
	light := baseConfig()
	light.Runs = 200
	light.Dist = workload.Fixed(int64(workload.DataMining().Mean()))
	heavy := baseConfig()
	heavy.Runs = 200
	heavy.Dist = workload.DataMining()
	rl, err := Evaluate(light)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Evaluate(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if rh.MeanImbalance <= rl.MeanImbalance*1.5 {
		t.Fatalf("heavy tail not harder: fixed=%.4f data-mining=%.4f",
			rl.MeanImbalance, rh.MeanImbalance)
	}
}

// TestFlowletsReduceImbalance: chopping flows into independently placed
// flowlets must shrink the imbalance — the reason CONGA uses them.
func TestFlowletsReduceImbalance(t *testing.T) {
	flow := baseConfig()
	flow.Dist = workload.DataMining()
	flow.Runs = 200
	flowlet := flow
	flowlet.FlowletBytes = 500_000 // the §2.6.1 ~500 KB flowlet scale
	rf, err := Evaluate(flow)
	if err != nil {
		t.Fatal(err)
	}
	rfl, err := Evaluate(flowlet)
	if err != nil {
		t.Fatal(err)
	}
	if rfl.MeanImbalance >= rf.MeanImbalance {
		t.Fatalf("flowlets did not help: flow=%.4f flowlet=%.4f",
			rf.MeanImbalance, rfl.MeanImbalance)
	}
	if rfl.Pieces <= rf.Pieces {
		t.Fatal("flowlet run did not create more placement units")
	}
}

// TestBoundHolds checks E[χ(t)] ≤ 1/√(λe·t) for an empirical distribution
// at a comfortably large t.
func TestBoundHolds(t *testing.T) {
	cfg := baseConfig()
	cfg.Dist = workload.WebSearch()
	cfg.Horizon = 5
	cfg.Runs = 100
	r, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanImbalance > r.Bound {
		t.Fatalf("measured E[χ] %.4f exceeds Theorem 2 bound %.4f", r.MeanImbalance, r.Bound)
	}
}

func TestEffectiveLambdaFormula(t *testing.T) {
	got := EffectiveLambda(800, 4, 1)
	want := 800 / (8 * 4 * math.Log(4) * 2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("λe = %v, want %v", got, want)
	}
	if b := Bound(800, 4, 1, 2); math.Abs(b-1/math.Sqrt(want*2)) > 1e-9 {
		t.Fatalf("Bound = %v", b)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := Evaluate(baseConfig())
	b, _ := Evaluate(baseConfig())
	if a.MeanImbalance != b.MeanImbalance {
		t.Fatal("same seed, different result")
	}
	c := baseConfig()
	c.Seed = 2
	d, _ := Evaluate(c)
	if d.MeanImbalance == a.MeanImbalance {
		t.Fatal("different seed, same result")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := newTestRand()
	for _, mean := range []float64{3, 50, 2000} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, got)
		}
	}
}

func newTestRand() *sim.Rand { return sim.NewRand(99) }
