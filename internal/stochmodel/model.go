// Package stochmodel implements the §6.2 stochastic analysis of randomized
// load balancing: flows arrive as a Poisson process and are placed
// uniformly at random on one of n links; the traffic imbalance
//
//	χ(t) = (max_k A_k(t) − min_k A_k(t)) / (λ·E[S]·t/n)
//
// measures how far the realized byte counts drift apart. Theorem 2 bounds
// E[χ(t)] ≤ 1/√(λe·t) + O(1/t) with effective rate
//
//	λe = λ / (8·n·log n·(1 + CV²)),
//
// where CV is the coefficient of variation of the flow-size distribution —
// the formal version of "heavy workloads are harder to balance, and
// flowlets help by effectively multiplying the arrival rate".
//
// The package evaluates E[χ(t)] by Monte Carlo, both per-flow and
// per-flowlet (each flow chopped into independent flowlet-sized pieces),
// so the bound and the flowlet benefit can be checked against each other.
package stochmodel

import (
	"fmt"
	"math"

	"conga/internal/sim"
	"conga/internal/workload"
)

// Config parameterizes one imbalance evaluation.
type Config struct {
	// Links is n, the number of parallel links.
	Links int
	// Lambda is the flow arrival rate per second (across all links).
	Lambda float64
	// Dist draws flow sizes.
	Dist workload.SizeDist
	// Horizon is t, the observation window in seconds.
	Horizon float64
	// Runs is the number of Monte Carlo repetitions.
	Runs int
	// FlowletBytes, when positive, chops each flow into independently
	// placed pieces of at most this many bytes — randomized *flowlet*
	// load balancing instead of per-flow.
	FlowletBytes int64
	// Seed drives the simulation.
	Seed uint64
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.Links < 2:
		return fmt.Errorf("stochmodel: need ≥ 2 links, have %d", c.Links)
	case c.Lambda <= 0:
		return fmt.Errorf("stochmodel: Lambda %v must be positive", c.Lambda)
	case c.Dist == nil:
		return fmt.Errorf("stochmodel: no size distribution")
	case c.Horizon <= 0:
		return fmt.Errorf("stochmodel: Horizon %v must be positive", c.Horizon)
	case c.Runs <= 0:
		return fmt.Errorf("stochmodel: Runs %v must be positive", c.Runs)
	}
	return nil
}

// Result summarizes a Monte Carlo evaluation.
type Result struct {
	// MeanImbalance is the Monte Carlo estimate of E[χ(t)].
	MeanImbalance float64
	// Bound is Theorem 2's 1/√(λe·t) leading term.
	Bound float64
	// EffectiveLambda is λe.
	EffectiveLambda float64
	// Flows and Pieces count the generated flows and placed units.
	Flows, Pieces int
}

// Bound returns 1/√(λe·t) for the given parameters; cv is σ_S/E[S].
func Bound(lambda float64, links int, cv, t float64) float64 {
	le := EffectiveLambda(lambda, links, cv)
	return 1 / math.Sqrt(le*t)
}

// EffectiveLambda returns λe = λ / (8·n·log n·(1+cv²)).
func EffectiveLambda(lambda float64, links int, cv float64) float64 {
	n := float64(links)
	return lambda / (8 * n * math.Log(n) * (1 + cv*cv))
}

// Evaluate estimates E[χ(t)] by Monte Carlo.
func Evaluate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(cfg.Seed + 1)
	n := cfg.Links
	res := &Result{}
	meanSize := cfg.Dist.Mean()
	expected := cfg.Lambda * meanSize * cfg.Horizon / float64(n)

	sumChi := 0.0
	for run := 0; run < cfg.Runs; run++ {
		loads := make([]float64, n)
		// Poisson arrivals over (0, t): the count is Poisson(λt); since
		// only totals matter for A_k(t) with full flow sizes counted at
		// arrival (the theorem's A_k counts traffic *sent*, which for
		// the bound's purposes is the assigned volume), we draw the
		// count then place each flow.
		count := poisson(rng, cfg.Lambda*cfg.Horizon)
		for i := 0; i < count; i++ {
			size := cfg.Dist.Sample(rng)
			res.Flows++
			if cfg.FlowletBytes > 0 {
				for size > 0 {
					piece := size
					if piece > cfg.FlowletBytes {
						piece = cfg.FlowletBytes
					}
					loads[rng.Intn(n)] += float64(piece)
					size -= piece
					res.Pieces++
				}
			} else {
				loads[rng.Intn(n)] += float64(size)
				res.Pieces++
			}
		}
		min, max := loads[0], loads[0]
		for _, v := range loads[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		sumChi += (max - min) / expected
	}
	res.MeanImbalance = sumChi / float64(cfg.Runs)

	cv := 0.0
	if e, ok := cfg.Dist.(*workload.Empirical); ok {
		cv = e.CV()
	}
	res.EffectiveLambda = EffectiveLambda(cfg.Lambda, n, cv)
	res.Bound = 1 / math.Sqrt(res.EffectiveLambda*cfg.Horizon)
	return res, nil
}

// poisson draws a Poisson(mean) variate; for large means it uses the
// normal approximation, which is ample for Monte Carlo counting.
func poisson(rng *sim.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
