package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conga/internal/sim"
)

func sampleTrace(n int) *Trace {
	rec := &Recorder{Header: Header{
		Harness: "fct", Scheme: "conga", Workload: "enterprise",
		Load: 0.6, Seed: 7, TopoFP: Fingerprint("leaves=4"), Topo: "leaves=4",
		DurationNs: int64(40 * sim.Millisecond),
	}}
	var at sim.Time
	for i := 0; i < n; i++ {
		at += sim.Time(1000 + i*37)
		kind := KindWorkload
		if i%5 == 0 {
			kind = KindIncast
		}
		rec.Add(Flow{
			At: at, Src: i % 16, Dst: (i*7 + 3) % 16,
			FlowID: uint64(100 + i*16), Size: int64(1000 + i*i*13),
			Kind: kind,
		})
	}
	return rec.Trace()
}

func equalTraces(t *testing.T, want, got *Trace) {
	t.Helper()
	if want.Header != got.Header {
		t.Fatalf("header mismatch:\n want %+v\n  got %+v", want.Header, got.Header)
	}
	if len(want.Flows) != len(got.Flows) {
		t.Fatalf("flow count mismatch: want %d got %d", len(want.Flows), len(got.Flows))
	}
	for i := range want.Flows {
		if want.Flows[i] != got.Flows[i] {
			t.Fatalf("flow %d mismatch:\n want %+v\n  got %+v", i, want.Flows[i], got.Flows[i])
		}
	}
}

func TestRoundTripNDJSON(t *testing.T) {
	tr := sampleTrace(200)
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, tr, got)
	if !IsTraceFile(path) {
		t.Error("IsTraceFile = false for NDJSON trace")
	}
}

func TestRoundTripBinary(t *testing.T) {
	tr := sampleTrace(200)
	path := filepath.Join(t.TempDir(), "trace.gz")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, tr, got)
	if !IsTraceFile(path) {
		t.Error("IsTraceFile = false for binary trace")
	}

	// The binary format should be much denser than NDJSON.
	nd := filepath.Join(t.TempDir(), "trace.ndjson")
	if err := tr.Write(nd); err != nil {
		t.Fatal(err)
	}
	bi, _ := os.Stat(path)
	ni, _ := os.Stat(nd)
	if bi.Size()*4 > ni.Size() {
		t.Errorf("binary trace not compact: %d bytes vs %d NDJSON", bi.Size(), ni.Size())
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	rec := &Recorder{Header: Header{Harness: "fct"}}
	tr := rec.Trace()
	for _, name := range []string{"e.ndjson", "e.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := tr.Write(path); err != nil {
			t.Fatal(err)
		}
		got, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		equalTraces(t, tr, got)
	}
}

func TestCorruptTracesFailLoudly(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace(50)

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	nd := filepath.Join(dir, "ok.ndjson")
	if err := tr.Write(nd); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(nd)
	if err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "ok.gz")
	if err := tr.Write(gz); err != nil {
		t.Fatal(err)
	}
	rawGz, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		path string
		want string
	}{
		{"not json", write("garbage.ndjson", []byte("hello world\n")), "bad header line"},
		{"wrong meta key", write("wrongkey.ndjson", []byte(`{"something_else":{}}`+"\n")), "no replay_trace header"},
		{"truncated ndjson", write("trunc.ndjson", raw[:len(raw)/2]), "corrupt trace"},
		{"truncated gzip", write("trunc.gz", rawGz[:len(rawGz)/2]), ""},
		{"flipped gzip byte", write("flip.gz", append(append([]byte{}, rawGz[:len(rawGz)-4]...), 0, 0, 0, 0)), ""},
		{"empty file", write("empty.ndjson", nil), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(c.path)
			if err == nil {
				t.Fatalf("Read(%s) succeeded on corrupt input", c.path)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateCatchesHeaderLies(t *testing.T) {
	tr := sampleTrace(10)

	bad := *tr
	bad.Header.Flows = 99
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "promises 99 flows") {
		t.Errorf("flow-count lie not caught: %v", err)
	}

	bad = *tr
	bad.Header.Bytes += 5
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Errorf("byte-count lie not caught: %v", err)
	}

	bad = *tr
	bad.Header.Version = 42
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("unknown version not caught: %v", err)
	}

	// Out-of-order arrivals.
	flows := append([]Flow{}, tr.Flows...)
	flows[3], flows[4] = flows[4], flows[3]
	bad = Trace{Header: tr.Header, Flows: flows}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "precedes") {
		t.Errorf("out-of-order arrivals not caught: %v", err)
	}
}

func TestFingerprintMismatch(t *testing.T) {
	tr := sampleTrace(5)
	other := Fingerprint("leaves=8")
	if other == tr.Header.TopoFP {
		t.Fatal("distinct descs collided")
	}
	err := tr.CheckTopology(other, "leaves=8")
	if err == nil {
		t.Fatal("mismatched fingerprint accepted")
	}
	if !strings.Contains(err.Error(), "leaves=4") || !strings.Contains(err.Error(), "leaves=8") {
		t.Errorf("error %q should name both topologies", err)
	}
	if err := tr.CheckTopology(tr.Header.TopoFP, "leaves=4"); err != nil {
		t.Errorf("matching fingerprint rejected: %v", err)
	}
}

func TestIsTraceFileRejectsOtherFiles(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "trace.csv")
	os.WriteFile(csv, []byte("time_ns,event\n100,enqueue\n"), 0o644)
	if IsTraceFile(csv) {
		t.Error("IsTraceFile = true for a CSV packet trace")
	}
	if IsTraceFile(filepath.Join(dir, "missing")) {
		t.Error("IsTraceFile = true for a missing file")
	}
}
