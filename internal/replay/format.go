package replay

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"conga/internal/sim"
)

// Two interchangeable encodings of the same model:
//
//   - NDJSON: a {"replay_trace": <header>} meta line followed by one JSON
//     object per arrival. Greppable, diffable, and self-describing.
//   - Binary: a gzip stream holding a magic tag, the JSON header, and
//     varint-delta arrival records (~10 bytes/flow before compression vs
//     ~100 for NDJSON). gzip's trailing CRC makes truncation and bit rot
//     fail loudly on read.
//
// Write picks by filename (.gz → binary); Read sniffs the gzip magic, so a
// renamed file still loads.

// binaryMagic opens the (pre-gzip) binary stream.
const binaryMagic = "CONGARPL"

// jsonHeader is Header's wire form. The fingerprint travels as a hex
// string: JSON numbers above 2^53 aren't safe in every consumer, and hex is
// what the CLI prints anyway.
type jsonHeader struct {
	Version    int     `json:"version"`
	Harness    string  `json:"harness"`
	Scheme     string  `json:"scheme"`
	Workload   string  `json:"workload"`
	Load       float64 `json:"load"`
	Seed       uint64  `json:"seed"`
	TopoFP     string  `json:"topo_fp"`
	Topo       string  `json:"topo"`
	DurationNs int64   `json:"duration_ns"`
	Flows      int     `json:"flows"`
	Bytes      int64   `json:"bytes"`
	SpanNs     int64   `json:"span_ns"`
}

func (h Header) wire() jsonHeader {
	return jsonHeader{
		Version: h.Version, Harness: h.Harness, Scheme: h.Scheme,
		Workload: h.Workload, Load: h.Load, Seed: h.Seed,
		TopoFP: fmt.Sprintf("%016x", h.TopoFP), Topo: h.Topo,
		DurationNs: h.DurationNs, Flows: h.Flows, Bytes: h.Bytes, SpanNs: h.SpanNs,
	}
}

func (j jsonHeader) header() (Header, error) {
	var fp uint64
	if j.TopoFP != "" {
		if _, err := fmt.Sscanf(j.TopoFP, "%x", &fp); err != nil {
			return Header{}, fmt.Errorf("replay: bad topo_fp %q: %w", j.TopoFP, err)
		}
	}
	return Header{
		Version: j.Version, Harness: j.Harness, Scheme: j.Scheme,
		Workload: j.Workload, Load: j.Load, Seed: j.Seed,
		TopoFP: fp, Topo: j.Topo,
		DurationNs: j.DurationNs, Flows: j.Flows, Bytes: j.Bytes, SpanNs: j.SpanNs,
	}, nil
}

// jsonFlow is Flow's NDJSON wire form.
type jsonFlow struct {
	AtNs   int64  `json:"at_ns"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	FlowID uint64 `json:"flow"`
	Size   int64  `json:"size"`
	Kind   string `json:"kind,omitempty"`
}

// Write stores the trace at path: gzip'd binary when the name ends in
// ".gz", NDJSON otherwise.
func (t *Trace) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		err = t.writeBinary(f)
	} else {
		err = t.writeNDJSON(f)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("replay: writing %s: %w", path, err)
	}
	return f.Close()
}

// Read loads a trace from path, auto-detecting the format, and validates
// it; corrupt or mismatched files return an error rather than a partial
// trace.
func Read(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: not a replay trace (%w)", path, err)
	}
	var t *Trace
	if magic[0] == 0x1f && magic[1] == 0x8b { // gzip
		t, err = readBinary(br)
	} else {
		t, err = readNDJSON(br)
	}
	if err != nil {
		return nil, fmt.Errorf("replay: reading %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return t, nil
}

// IsTraceFile sniffs whether path looks like a replay trace (either
// format) without decoding the whole file. Tools that accept several file
// types (congatrace -read) use it to route.
func IsTraceFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	head := make([]byte, 64)
	n, _ := io.ReadFull(f, head)
	head = head[:n]
	if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
		// gzip: decompress just enough to check the magic tag.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return false
		}
		zr, err := gzip.NewReader(f)
		if err != nil {
			return false
		}
		defer zr.Close()
		tag := make([]byte, len(binaryMagic))
		if _, err := io.ReadFull(zr, tag); err != nil {
			return false
		}
		return string(tag) == binaryMagic
	}
	return strings.HasPrefix(strings.TrimSpace(string(head)), `{"replay_trace":`)
}

func (t *Trace) writeNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	meta, err := json.Marshal(map[string]jsonHeader{"replay_trace": t.Header.wire()})
	if err != nil {
		return err
	}
	bw.Write(meta)
	bw.WriteByte('\n')
	enc := json.NewEncoder(bw)
	for i := range t.Flows {
		f := &t.Flows[i]
		if err := enc.Encode(jsonFlow{
			AtNs: int64(f.At), Src: f.Src, Dst: f.Dst,
			FlowID: f.FlowID, Size: f.Size, Kind: f.Kind,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readNDJSON(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty file")
	}
	var meta map[string]jsonHeader
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, fmt.Errorf("bad header line: %w", err)
	}
	jh, ok := meta["replay_trace"]
	if !ok {
		return nil, fmt.Errorf("not a replay trace (no replay_trace header)")
	}
	h, err := jh.header()
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: h, Flows: make([]Flow, 0, h.Flows)}
	line := 1
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var jf jsonFlow
		if err := json.Unmarshal([]byte(raw), &jf); err != nil {
			return nil, fmt.Errorf("corrupt trace: line %d: %w", line, err)
		}
		t.Flows = append(t.Flows, Flow{
			At: sim.Time(jf.AtNs), Src: jf.Src, Dst: jf.Dst,
			FlowID: jf.FlowID, Size: jf.Size, Kind: jf.Kind,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Binary layout (inside gzip):
//
//	"CONGARPL"
//	uvarint len(headerJSON), headerJSON
//	uvarint nKinds, then per kind: uvarint len, bytes   (string table)
//	per flow: uvarint Δat | uvarint src | uvarint dst |
//	          uvarint ΔflowID (vs previous, IDs are non-decreasing per
//	          generator but not globally — so it is zig-zag encoded) |
//	          uvarint size | uvarint kindIndex
func (t *Trace) writeBinary(w io.Writer) error {
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	bw.WriteString(binaryMagic)

	hdr, err := json.Marshal(t.Header.wire())
	if err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putUvarint(uint64(len(hdr)))
	bw.Write(hdr)

	// Kind string table in first-appearance order.
	kindIdx := map[string]int{}
	var kinds []string
	for i := range t.Flows {
		k := t.Flows[i].Kind
		if _, ok := kindIdx[k]; !ok {
			kindIdx[k] = len(kinds)
			kinds = append(kinds, k)
		}
	}
	putUvarint(uint64(len(kinds)))
	for _, k := range kinds {
		putUvarint(uint64(len(k)))
		bw.WriteString(k)
	}

	var prevAt sim.Time
	var prevID uint64
	for i := range t.Flows {
		f := &t.Flows[i]
		putUvarint(uint64(f.At - prevAt))
		putUvarint(uint64(f.Src))
		putUvarint(uint64(f.Dst))
		putUvarint(zigzag(int64(f.FlowID - prevID)))
		putUvarint(uint64(f.Size))
		putUvarint(uint64(kindIdx[f.Kind]))
		prevAt, prevID = f.At, f.FlowID
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

func readBinary(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	br := bufio.NewReader(zr)

	tag := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, tag); err != nil {
		return nil, fmt.Errorf("corrupt trace: %w", err)
	}
	if string(tag) != binaryMagic {
		return nil, fmt.Errorf("not a replay trace (bad magic %q)", tag)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("corrupt trace: header length: %w", err)
	}
	if hlen > 1<<20 {
		return nil, fmt.Errorf("corrupt trace: implausible header length %d", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("corrupt trace: header: %w", err)
	}
	var jh jsonHeader
	if err := json.Unmarshal(hdr, &jh); err != nil {
		return nil, fmt.Errorf("corrupt trace: header JSON: %w", err)
	}
	h, err := jh.header()
	if err != nil {
		return nil, err
	}

	nKinds, err := binary.ReadUvarint(br)
	if err != nil || nKinds > 1<<10 {
		return nil, fmt.Errorf("corrupt trace: kind table (%d kinds, err %v)", nKinds, err)
	}
	kinds := make([]string, nKinds)
	for i := range kinds {
		klen, err := binary.ReadUvarint(br)
		if err != nil || klen > 1<<10 {
			return nil, fmt.Errorf("corrupt trace: kind %d length", i)
		}
		kb := make([]byte, klen)
		if _, err := io.ReadFull(br, kb); err != nil {
			return nil, fmt.Errorf("corrupt trace: kind %d: %w", i, err)
		}
		kinds[i] = string(kb)
	}

	if h.Flows < 0 || h.Flows > 1<<31 {
		return nil, fmt.Errorf("corrupt trace: implausible flow count %d", h.Flows)
	}
	t := &Trace{Header: h, Flows: make([]Flow, 0, h.Flows)}
	var prevAt sim.Time
	var prevID uint64
	for i := 0; i < h.Flows; i++ {
		var vals [6]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("corrupt trace: flow %d of %d truncated: %w", i, h.Flows, err)
			}
			vals[j] = v
		}
		if vals[5] >= uint64(len(kinds)) {
			return nil, fmt.Errorf("corrupt trace: flow %d references kind %d of %d", i, vals[5], len(kinds))
		}
		at := prevAt + sim.Time(vals[0])
		id := uint64(int64(prevID) + unzigzag(vals[3]))
		t.Flows = append(t.Flows, Flow{
			At: at, Src: int(vals[1]), Dst: int(vals[2]),
			FlowID: id, Size: int64(vals[4]), Kind: kinds[vals[5]],
		})
		prevAt, prevID = at, id
	}
	// Anything after the last flow is corruption, not padding.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("corrupt trace: trailing data after %d flows", h.Flows)
	}
	return t, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }
