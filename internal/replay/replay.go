// Package replay records and replays workload arrival sequences.
//
// The paper's headline results are comparisons — CONGA vs ECMP vs MPTCP on
// the same offered load — but a live Poisson generator draws a fresh random
// arrival sequence per run, so small FCT differences between schemes are
// confounded by workload noise. A replay trace removes that noise: it
// captures the exact flow-arrival sequence of one run — (start, src, dst,
// size, kind) per flow — so the identical offered load can be re-injected
// into any scheme, fabric configuration, or engine (sequential or
// space-parallel) for an apples-to-apples, matched-pairs comparison.
//
// A trace is a Header plus a flat arrival list. The header carries
// provenance (scheme, workload, load, seed, duration of the recording run)
// and a topology fingerprint; replaying refuses a fingerprint mismatch,
// because arrival src/dst host IDs are only meaningful on the fabric shape
// they were drawn for. Scheme, transport, link failures and buffer sizing
// are deliberately outside the fingerprint — varying those against a fixed
// workload is the whole point of replay.
//
// Two on-disk formats share the same model (see format.go): NDJSON for
// greppability and a gzip'd binary for compactness; Read auto-detects.
package replay

import (
	"fmt"

	"conga/internal/sim"
)

// Version is the trace format version this package writes. Readers accept
// only versions they know how to decode.
const Version = 1

// Flow kinds tag where an arrival came from, so mixed traces stay
// interpretable after replay.
const (
	// KindWorkload is an open-loop Poisson workload arrival (FCT and HDFS
	// background generators).
	KindWorkload = "workload"
	// KindIncast is one server's share of a synchronized Incast round.
	KindIncast = "incast"
)

// Flow is one recorded arrival: at time At, host Src starts sending Size
// bytes to host Dst under flow ID FlowID.
type Flow struct {
	At     sim.Time
	Src    int
	Dst    int
	FlowID uint64
	Size   int64
	Kind   string
}

// Header carries a trace's provenance and compatibility data.
type Header struct {
	// Version is the format version the trace was written with.
	Version int
	// Harness names the recording experiment ("fct", "incast", "hdfs").
	Harness string
	// Scheme, Workload, Load and Seed describe the recording run. They are
	// provenance, not constraints: a trace recorded under ECMP replays under
	// CONGA unchanged.
	Scheme   string
	Workload string
	Load     float64
	Seed     uint64
	// TopoFP fingerprints the fabric shape the arrivals were drawn for;
	// Topo is its human-readable form. Replay requires an exact match.
	TopoFP uint64
	Topo   string
	// DurationNs is the recording run's arrival window; replay reuses it so
	// the replayed engine horizon matches the recorded one.
	DurationNs int64
	// Flows and Bytes summarize the arrival list (validated on read).
	Flows int
	Bytes int64
	// SpanNs is the time of the last arrival.
	SpanNs int64
}

// Trace is a complete recorded workload.
type Trace struct {
	Header Header
	Flows  []Flow
}

// Fingerprint hashes a canonical topology description (64-bit FNV-1a).
// Callers build the description; the hash is what headers store and
// replay compares.
func Fingerprint(desc string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(desc); i++ {
		h ^= uint64(desc[i])
		h *= prime64
	}
	return h
}

// CheckTopology returns a loud error when the trace was recorded on a
// different fabric shape than the one about to replay it.
func (t *Trace) CheckTopology(fp uint64, desc string) error {
	if t.Header.TopoFP != fp {
		return fmt.Errorf("replay: trace recorded on topology %q (fp %016x) cannot replay on %q (fp %016x): arrival host IDs are only valid on the recorded fabric shape",
			t.Header.Topo, t.Header.TopoFP, desc, fp)
	}
	return nil
}

// Validate checks internal consistency: header counts against the arrival
// list, monotone arrival times, and known version. Read calls it; harnesses
// replaying an in-memory trace should too.
func (t *Trace) Validate() error {
	if t.Header.Version != Version {
		return fmt.Errorf("replay: unsupported trace version %d (this build reads version %d)", t.Header.Version, Version)
	}
	if t.Header.Flows != len(t.Flows) {
		return fmt.Errorf("replay: corrupt trace: header promises %d flows, file carries %d", t.Header.Flows, len(t.Flows))
	}
	var bytes int64
	var last sim.Time
	for i, f := range t.Flows {
		if f.At < last {
			return fmt.Errorf("replay: corrupt trace: arrival %d at %v precedes arrival %d at %v", i, f.At, i-1, last)
		}
		if f.Size <= 0 {
			return fmt.Errorf("replay: corrupt trace: arrival %d has non-positive size %d", i, f.Size)
		}
		if f.Src < 0 || f.Dst < 0 {
			return fmt.Errorf("replay: corrupt trace: arrival %d has negative host (src %d, dst %d)", i, f.Src, f.Dst)
		}
		last = f.At
		bytes += f.Size
	}
	if t.Header.Bytes != bytes {
		return fmt.Errorf("replay: corrupt trace: header promises %d bytes, arrivals sum to %d", t.Header.Bytes, bytes)
	}
	return nil
}

// Recorder accumulates arrivals during a run. The experiment harness fills
// Header when the run starts and appends one Flow per arrival; Trace seals
// the result.
type Recorder struct {
	Header Header
	flows  []Flow
}

// Add appends one arrival. Harness hooks call it in arrival order.
func (r *Recorder) Add(f Flow) {
	r.flows = append(r.flows, f)
}

// Len returns the number of recorded arrivals.
func (r *Recorder) Len() int { return len(r.flows) }

// Trace seals the recording: the header's summary fields are recomputed
// from the arrival list and the finished trace is returned. The recorder
// may keep recording afterwards; Trace copies nothing (the caller must not
// mutate the returned flows).
func (r *Recorder) Trace() *Trace {
	h := r.Header
	h.Version = Version
	h.Flows = len(r.flows)
	h.Bytes = 0
	h.SpanNs = 0
	for _, f := range r.flows {
		h.Bytes += f.Size
		if int64(f.At) > h.SpanNs {
			h.SpanNs = int64(f.At)
		}
	}
	return &Trace{Header: h, Flows: r.flows}
}
