package sim

import (
	"testing"
)

// TestSpliceOrderAgainstEvents interleaves a spliced batch with ordinary
// events sharing timestamps and checks the exact (time, seq) execution
// order: spliced entries take consecutive seqs at the call, so an ordinary
// event scheduled before the splice wins its time tie, and one scheduled
// after loses it.
func TestSpliceOrderAgainstEvents(t *testing.T) {
	e := New()
	var order []int
	rec := func(id int) Event { return func(Time) { order = append(order, id) } }
	e.At(10, rec(1)) // before the splice: wins the t=10 tie
	e.Splice([]Time{5, 10, 20}, rec(100))
	e.At(10, rec(2)) // after the splice: loses the t=10 tie
	e.At(15, rec(3))
	e.Run(MaxTime)
	want := []int{100, 1, 100, 2, 3, 100}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
	if e.Pending() != 0 || e.Live() != 0 {
		t.Fatalf("pending %d live %d after drain", e.Pending(), e.Live())
	}
}

// TestSpliceOverlappingStreams runs two overlapping batches (as the
// parallel fabric produces when a long serialization tail crosses a window
// boundary) and checks they merge by (time, seq).
func TestSpliceOverlappingStreams(t *testing.T) {
	e := New()
	var order []int
	e.Splice([]Time{10, 30, 50}, func(Time) { order = append(order, 1) })
	e.Splice([]Time{20, 30, 40}, func(Time) { order = append(order, 2) })
	e.Run(MaxTime)
	want := []int{1, 2, 1, 2, 2, 1} // 10, 20, 30(batch1 first: smaller seq), 30, 40, 50
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestSpliceCountsAndBounds checks live/pending accounting, the Run(until)
// cut, executed counting, and buffer reuse across batches.
func TestSpliceCountsAndBounds(t *testing.T) {
	e := New()
	n := 0
	e.Splice([]Time{1, 2, 3, 4}, func(Time) { n++ })
	if e.Pending() != 4 || e.Live() != 4 {
		t.Fatalf("pending %d live %d after splice, want 4/4", e.Pending(), e.Live())
	}
	if at, ok := e.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v %v, want 1 true", at, ok)
	}
	e.Run(2)
	if n != 2 || e.Pending() != 2 || e.Now() != 2 {
		t.Fatalf("after Run(2): fired %d, pending %d, now %v", n, e.Pending(), e.Now())
	}
	e.Run(MaxTime)
	if n != 4 || e.Executed() != 4 {
		t.Fatalf("fired %d executed %d, want 4/4", n, e.Executed())
	}
	// A second batch must reuse the recycled buffer.
	if len(e.timeBufs) != 1 {
		t.Fatalf("expected 1 recycled buffer, have %d", len(e.timeBufs))
	}
	e.Splice([]Time{10}, func(Time) { n++ })
	if len(e.timeBufs) != 0 {
		t.Fatal("second splice should take the recycled buffer")
	}
	e.Run(MaxTime)
	if n != 5 {
		t.Fatalf("fired %d, want 5", n)
	}
}

// TestSpliceRejectsUnsorted pins the validation contract.
func TestSpliceRejectsUnsorted(t *testing.T) {
	e := New()
	for _, times := range [][]Time{{10, 5}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Splice(%v) should panic", times)
				}
			}()
			e.Splice(times, func(Time) {})
		}()
	}
	e.Splice(nil, func(Time) {}) // empty batch is a no-op
	if e.Pending() != 0 {
		t.Fatal("empty splice must not count")
	}
}

// TestChainableTo pins the cut-through legality test: chainable exactly
// when (now, t] is event-free — daemon events included — and t does not
// cross the Run bound.
func TestChainableTo(t *testing.T) {
	e := New()
	var got []bool
	e.At(10, func(Time) {
		got = append(got,
			e.ChainableTo(14), // nothing until 15: ok
			e.ChainableTo(15), // event exactly at 15 blocks
			e.ChainableTo(60), // past it too
		)
	})
	e.At(15, func(Time) {})
	e.AtDaemon(30, func(now Time) {
		got = append(got,
			e.ChainableTo(35), // nothing pending at all, within bound
			e.ChainableTo(50), // exactly the Run bound: ok (closed interval)
			e.ChainableTo(51), // past the Run bound
		)
	})
	e.Run(50)
	want := []bool{true, false, false, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChainableTo results %v, want %v", got, want)
		}
	}
	// Outside Run nothing is chainable (runUntil is reset).
	if e.ChainableTo(100) {
		t.Fatal("ChainableTo must be false outside Run")
	}
	// Spliced entries must block chains like ordinary events.
	e2 := New()
	e2.At(5, func(Time) {
		if e2.ChainableTo(20) {
			t.Fatal("spliced entry at 20 should block ChainableTo(20)")
		}
		if !e2.ChainableTo(19) {
			t.Fatal("nothing before 20: ChainableTo(19) should hold")
		}
	})
	e2.Splice([]Time{20}, func(Time) {})
	e2.Run(MaxTime)
}
