package sim

import (
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic PRNG (xoshiro256**, seeded via
// SplitMix64). Experiments create one Rand per logical stream (workload
// arrivals, flow sizes, ECMP tie-breaks, ...) so that changing one consumer
// does not perturb the others — a property math/rand's shared source lacks.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	// SplitMix64 seeding, as recommended by the xoshiro authors.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is a deterministic function of
// this generator's state, advancing this generator once. It is used to hand
// independent streams to sub-components.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, debiased.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1, via
// inversion. Inversion is slower than ziggurat but branch-free determinism
// matters more here than speed.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Box-Muller polar
// method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
