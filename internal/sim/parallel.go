package sim

import (
	"fmt"
	"sync"
)

// ParallelEngine executes several single-threaded Engines in lockstep
// bounded time windows — conservative space-parallel simulation in the
// YAWNS/bounded-lag style. The caller partitions the model into domains
// with one engine each, such that any cross-domain interaction scheduled by
// an event at time t takes effect no earlier than t+window (the lookahead
// guarantee; for the CONGA fabric the window is the leaf↔spine propagation
// delay). Under that guarantee, all domains can execute the half-open
// window [base, base+window) concurrently without ever receiving an event
// for a time they have already passed.
//
// Per window, each worker goroutine:
//
//  1. runs its engine to the window edge (events with t < base+window),
//  2. waits on a barrier so every domain's cross-domain sends are complete,
//  3. runs its exchange callback, which drains incoming mailboxes and
//     schedules the deliveries (all at t ≥ base+window) on its own engine,
//  4. waits on a second barrier whose last arriver decides, with every
//     worker parked, whether the run is done and where the next window
//     starts (fast-forwarding over idle gaps to the earliest pending
//     event).
//
// Determinism: each engine is only ever advanced by its own worker, the
// barriers order mailbox writes before reads, and exchange callbacks are
// required to merge deliveries in a scheduling-independent order (the
// fabric merges by (time, source domain, source sequence)). A run is then
// bit-reproducible for a fixed engine count and partition, regardless of
// how the goroutines are scheduled.
//
// Termination matches Engine.Run's spirit: the run stops when no engine
// has live (non-daemon) events left, or when the next window would start
// past the until bound. Unlike a sequential Run(until), trailing
// daemon-only housekeeping after the last live event is not executed — it
// could no longer affect any observable outcome.
type ParallelEngine struct {
	engines  []*Engine
	window   Time
	exchange []func(windowEnd Time)

	// Window state, written only by the decide step (one goroutine, all
	// others parked on the barrier) and read by workers after the barrier
	// release that the write happened-before.
	base  Time
	runTo Time
	until Time
	done  bool

	bar barrier
}

// NewParallelEngine couples the given per-domain engines into a window
// runner. All engines must start at the same clock (normally zero) and the
// window must be positive and no larger than the model's cross-domain
// lookahead.
func NewParallelEngine(engines []*Engine, window Time) *ParallelEngine {
	if len(engines) == 0 {
		panic("sim: ParallelEngine needs at least one engine")
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: ParallelEngine window %v must be positive", window))
	}
	for _, e := range engines[1:] {
		if e.Now() != engines[0].Now() {
			panic("sim: ParallelEngine engines must start at the same clock")
		}
	}
	pe := &ParallelEngine{
		engines:  engines,
		window:   window,
		exchange: make([]func(Time), len(engines)),
	}
	pe.bar.init(len(engines))
	return pe
}

// Engines returns the per-domain engines.
func (pe *ParallelEngine) Engines() []*Engine { return pe.engines }

// Window returns the window (lookahead) size.
func (pe *ParallelEngine) Window() Time { return pe.window }

// SetExchange installs domain d's cross-domain merge callback. It runs on
// domain d's worker goroutine once per window, after every domain has
// reached the window edge, and must schedule any deliveries destined for
// domain d on engines[d] at times ≥ windowEnd. A nil callback is valid for
// domains that never receive cross-domain traffic.
func (pe *ParallelEngine) SetExchange(d int, fn func(windowEnd Time)) {
	pe.exchange[d] = fn
}

// Run executes windows until no live events remain anywhere or the next
// window would begin after until (events with t ≤ until still run, matching
// Engine.Run's closed interval). It returns the latest engine clock.
// Run must not be re-entered concurrently.
func (pe *ParallelEngine) Run(until Time) Time {
	if len(pe.engines) == 1 {
		// One domain is just a sequential run; skip the barrier machinery.
		return pe.engines[0].Run(until)
	}
	pe.until = until
	pe.base = pe.engines[0].Now()
	pe.decide(true)
	if !pe.done {
		var wg sync.WaitGroup
		wg.Add(len(pe.engines))
		for d := range pe.engines {
			go func(d int) {
				defer wg.Done()
				pe.worker(d)
			}(d)
		}
		wg.Wait()
	}
	max := pe.engines[0].Now()
	for _, e := range pe.engines[1:] {
		if e.Now() > max {
			max = e.Now()
		}
	}
	return max
}

// worker is one domain's window loop.
func (pe *ParallelEngine) worker(d int) {
	eng := pe.engines[d]
	fn := pe.exchange[d]
	for {
		windowEnd := pe.base + pe.window
		eng.Run(pe.runTo)
		// Barrier A: every domain has reached the window edge, so all
		// mailbox writes for this window happened-before the release.
		pe.bar.wait(nil)
		if fn != nil {
			fn(windowEnd)
		}
		// Barrier B: merges are complete everywhere; the last arriver
		// decides termination and the next window with all workers parked.
		pe.bar.wait(func() { pe.decide(false) })
		if pe.done {
			return
		}
	}
}

// decide computes, with exclusive access to every engine, whether any live
// work remains and where the next window starts. first seeds the initial
// window from the engines' starting clock.
func (pe *ParallelEngine) decide(first bool) {
	live := 0
	min := MaxTime
	for _, e := range pe.engines {
		live += e.Live()
		if t, ok := e.NextAt(); ok && t < min {
			min = t
		}
	}
	next := pe.base
	if !first {
		next += pe.window
	}
	// Fast-forward over idle gaps: nothing anywhere is scheduled before
	// min, so the next window can start there. This makes sparse phases
	// (drain, long RTOs) cost one barrier round instead of thousands.
	if min > next {
		next = min
	}
	if live == 0 || next > pe.until {
		pe.done = true
		return
	}
	pe.base = next
	pe.runTo = next + pe.window - 1
	if pe.runTo > pe.until || pe.runTo < next { // clamp; also guards overflow
		pe.runTo = pe.until
	}
}

// barrier is a reusable phase barrier. The last arriver may run an action
// while every other participant is parked, which is how the window runner
// gets a safe global snapshot between phases without a second lock.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	phase uint64
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

// wait blocks until all n participants have called it. The last arriver
// runs action (if non-nil) before releasing the others; everything it
// writes is ordered before their return.
func (b *barrier) wait(action func()) {
	b.mu.Lock()
	p := b.phase
	b.count++
	if b.count == b.n {
		if action != nil {
			action()
		}
		b.count = 0
		b.phase++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.phase == p {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
