package sim

import (
	"sort"
	"testing"
)

// Spans chosen to exercise every wheel level plus the far-future heap:
// level 0 (< 4.1 µs), level 1 (< ~2.1 ms), level 2 (< ~1.07 s),
// level 3 (< ~9.2 min), and beyond the wheel horizon.
var crossLevelDeltas = []Time{
	0, 1, 100, 4095, // level 0
	4096, 50 * Microsecond, 2 * Millisecond, // level 1
	3 * Millisecond, 500 * Millisecond, // level 2
	2 * Second, 8 * 60 * Second, // level 3
	10 * 60 * Second, 3600 * Second, // far heap
}

func TestWheelMultiLevelSpansRunInOrder(t *testing.T) {
	e := New()
	var got []Time
	// Insert in reverse so correctness depends on ordering, not insertion.
	for i := len(crossLevelDeltas) - 1; i >= 0; i-- {
		at := crossLevelDeltas[i]
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run(MaxTime)
	if len(got) != len(crossLevelDeltas) {
		t.Fatalf("ran %d events, want %d", len(got), len(crossLevelDeltas))
	}
	for i, at := range crossLevelDeltas {
		if got[i] != at {
			t.Fatalf("event %d ran at %v, want %v", i, got[i], at)
		}
	}
}

func TestWheelHeapSameTimeTieBreaksByInsertionOrder(t *testing.T) {
	e := New()
	var got []string
	tie := 700 * Second
	// From now=0, 700 s is beyond the wheel horizon (~9.2 min): far heap.
	e.At(tie, func(Time) { got = append(got, "heap") })
	e.At(200*Second, func(Time) {})
	e.Run(200*Second + 1)
	// The wheel drained, so this insert re-anchors at now=200 s and the
	// same timestamp now lands in the wheel. The heap-resident event was
	// scheduled first and must still run first.
	e.At(tie, func(Time) { got = append(got, "wheel") })
	e.At(tie, func(Time) { got = append(got, "wheel2") })
	e.Run(MaxTime)
	want := []string{"heap", "wheel", "wheel2"}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %v, want %v", i, got, want)
		}
	}
}

// A bounded Run can cascade the wheel's windows past `until` and then hand
// control back; a later schedule into the gap behind the advanced level-0
// base must not collide with already-cascaded slots.
func TestWheelInsertBehindBaseAfterBoundedRun(t *testing.T) {
	e := New()
	var got []Time
	record := func(now Time) { got = append(got, now) }
	e.At(10000, record) // overflow level 1 from now=0
	e.Run(5000)         // cascades; returns with now=5000 < wheel base
	if e.Now() != 5000 {
		t.Fatalf("now = %v, want 5000", e.Now())
	}
	e.At(6000, record) // behind the advanced level-0 base
	e.At(9096, record) // same level-0 slot as 5000+4096 would be
	e.Run(MaxTime)
	want := []Time{6000, 9096, 10000}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %v, want %v", i, got, want)
		}
	}
}

func TestWheelCancelAcrossLevels(t *testing.T) {
	e := New()
	var got []Time
	var hs []EventHandle
	for _, at := range crossLevelDeltas {
		at := at
		hs = append(hs, e.At(at, func(now Time) { got = append(got, now) }))
	}
	// Cancel every other event, spanning every level and the far heap.
	for i, h := range hs {
		if i%2 == 1 {
			if !h.Cancel() {
				t.Fatalf("cancel %d failed", i)
			}
		}
	}
	if got := e.Pending(); got != (len(hs)+1)/2 {
		t.Fatalf("pending = %d, want %d", got, (len(hs)+1)/2)
	}
	e.Run(MaxTime)
	var want []Time
	for i, at := range crossLevelDeltas {
		if i%2 == 0 {
			want = append(want, at)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %v, want %v", i, got, want)
		}
	}
}

// Randomized stress across all wheel levels: batches of events with spans
// from sub-slot to beyond the wheel horizon, interleaved with bounded runs
// and cancellations. Execution order must match a (time, seq) sort of the
// surviving events, exactly as with the reference heap engine.
func TestWheelRandomizedCrossLevelOrder(t *testing.T) {
	e := New()
	r := NewRand(42)
	type rec struct {
		at        Time
		seq       int
		cancelled bool
	}
	var all []rec
	var hs []EventHandle
	var got []int
	spans := []Time{4096, 2 * Millisecond, Second, 9 * 60 * Second, 3600 * Second}
	for batch := 0; batch < 40; batch++ {
		for i := 0; i < 100; i++ {
			span := spans[r.Intn(len(spans))]
			at := e.Now() + Time(r.Intn(int(span)))
			seq := len(all)
			all = append(all, rec{at: at, seq: seq})
			if r.Intn(8) == 0 {
				e.AtDaemon(at, func(Time) { got = append(got, seq) })
				hs = append(hs, EventHandle{}) // daemons stay uncancelled
			} else {
				hs = append(hs, e.At(at, func(Time) { got = append(got, seq) }))
			}
		}
		for i := 0; i < 30; i++ {
			k := r.Intn(len(hs))
			if hs[k].Cancel() {
				all[k].cancelled = true
			}
		}
		e.Run(e.Now() + Time(r.Intn(int(3*Second))))
	}
	// Bounded final drain: Run(MaxTime) would stop once only daemon
	// events remain, but here the daemons are part of the expected order.
	e.Run(e.Now() + 2*3600*Second)
	var expect []rec
	for _, w := range all {
		if !w.cancelled {
			expect = append(expect, w)
		}
	}
	sort.SliceStable(expect, func(i, j int) bool {
		if expect[i].at != expect[j].at {
			return expect[i].at < expect[j].at
		}
		return expect[i].seq < expect[j].seq
	})
	if len(got) != len(expect) {
		t.Fatalf("ran %d events, want %d", len(got), len(expect))
	}
	for i := range expect {
		if got[i] != expect[i].seq {
			t.Fatalf("execution order diverged at %d: got %d, want %d", i, got[i], expect[i].seq)
		}
	}
}
