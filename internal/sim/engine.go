// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes events in
// (time, insertion-order) order, so two runs with the same seed and the same
// sequence of schedule calls produce identical results. All CONGA fabric,
// transport, and workload models in this repository are built on top of it.
//
// The engine is intentionally single-threaded: datacenter fabric experiments
// are run one engine per goroutine, and parallelism is obtained by running
// independent experiments concurrently (see internal/runner).
//
// The event queue is a concrete 4-ary min-heap specialized to
// *scheduledEvent — no container/heap interface dispatch — and executed or
// cancelled events are recycled through a per-engine free list, so the
// steady-state hot path (schedule → run → recycle) does not allocate.
// Handles stay safe across recycling via a per-event generation counter.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations expressed in engine ticks (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Running an engine until
// MaxTime effectively means "until the event queue drains".
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to engine ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds converts virtual time to floating-point seconds, which is
// convenient when reporting rates and completion times.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with the standard library's duration formatting.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are one-shot; recurring behaviour is
// built by rescheduling from within the callback (see Ticker).
type Event func(now Time)

// scheduledEvent is pooled: after an event runs or is cancelled the engine
// bumps gen and pushes the object onto its free list, so outstanding
// EventHandles (which captured the old gen) can never act on the recycled
// slot's next occupant.
type scheduledEvent struct {
	at     Time
	seq    uint64 // insertion order; breaks ties deterministically
	fn     Event
	gen    uint64 // incremented on recycle; invalidates stale handles
	daemon bool   // housekeeping; does not keep Run(MaxTime) alive
	idx    int    // heap index; -1 when not queued
}

// EventHandle identifies a scheduled event so it can be cancelled.
// The zero value is not a valid handle.
type EventHandle struct {
	eng *Engine
	ev  *scheduledEvent
	gen uint64
}

// Cancel prevents the event from running. The event is removed from the
// queue immediately — its closure is dropped and the slot recycled, so a
// cancelled event retains no memory until its time arrives. Cancelling an
// already-executed or already-cancelled event is a no-op. It reports whether
// the event was still pending.
func (h EventHandle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.idx < 0 {
		return false
	}
	if !ev.daemon {
		h.eng.live--
	}
	h.eng.heapRemove(ev.idx)
	h.eng.recycle(ev)
	return true
}

// Pending reports whether the event is still scheduled to run.
func (h EventHandle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.idx >= 0
}

// Engine is a discrete-event simulator. The zero value is ready to use; New
// is provided for symmetry with the rest of the repository.
type Engine struct {
	now     Time
	queue   []*scheduledEvent // 4-ary min-heap on (at, seq)
	free    []*scheduledEvent // recycled event objects
	nextSeq uint64
	live    int // pending non-daemon events
	// executed counts events that have run, for diagnostics and tests.
	executed uint64
	stopped  bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue. Cancelled
// events are removed eagerly, so they never linger in this count.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently reordering time would corrupt every
// downstream measurement.
func (e *Engine) At(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, false)
}

// AtDaemon schedules a housekeeping event: it runs like any other, but
// pending daemon events alone do not keep Run(MaxTime) alive. Periodic
// infrastructure (DRE decay, flowlet sweeps) uses daemon events so "run
// until the workload finishes" terminates.
func (e *Engine) AtDaemon(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, true)
}

func (e *Engine) schedule(t Time, fn Event, daemon bool) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.at, ev.seq, ev.fn, ev.daemon = t, e.nextSeq, fn, daemon
	e.nextSeq++
	if !daemon {
		e.live++
	}
	e.heapPush(ev)
	return EventHandle{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn Event) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// recycle returns an executed or cancelled event to the free list,
// invalidating any handles that still point at it.
func (e *Engine) recycle(ev *scheduledEvent) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty, the until time is
// reached, or Stop is called. Events scheduled exactly at until still run
// (the interval is closed), which makes "run until end of measurement
// window" natural to express. It returns the time of the last executed event
// or until, whichever is smaller.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		// With no live (non-daemon) work left, an unbounded run is done:
		// only periodic housekeeping remains and it would tick forever.
		if until == MaxTime && e.live == 0 {
			break
		}
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		e.heapPopRoot()
		e.now = next.at
		fn := next.fn
		if !next.daemon {
			e.live--
		}
		e.executed++
		// Recycle before running: the handle's generation no longer
		// matches, so fn cancelling its own (spent) handle is a no-op, and
		// events fn schedules can reuse the slot immediately.
		e.recycle(next)
		fn(e.now)
	}
	// When the queue drains before until, advance the clock to until so
	// callers can express "idle until the end of the window" — except for
	// MaxTime, which means "run to completion" and should leave the clock at
	// the last event.
	if e.now < until && until != MaxTime && len(e.queue) == 0 {
		e.now = until
	}
	return e.now
}

// --- 4-ary min-heap on (at, seq) ---
//
// A 4-ary heap halves the tree depth of a binary heap: sift-down compares
// more children per level but touches half as many cache lines, which wins
// for the push/pop-dominated access pattern of a simulator event loop.

func eventLess(a, b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *scheduledEvent) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue)-1, ev)
}

// heapPopRoot removes the minimum event. The caller already holds e.queue[0].
func (e *Engine) heapPopRoot() {
	q := e.queue
	q[0].idx = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
}

// heapRemove deletes the event at index i, restoring heap order.
func (e *Engine) heapRemove(i int) {
	q := e.queue
	q[i].idx = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i == n {
		return
	}
	if i > 0 && eventLess(last, q[(i-1)>>2]) {
		e.siftUp(i, last)
	} else {
		e.siftDown(i, last)
	}
}

// siftUp places ev at index i or above. The slot at i is treated as a hole:
// ev is only written once its final position is known.
func (e *Engine) siftUp(i int, ev *scheduledEvent) {
	q := e.queue
	for i > 0 {
		parent := (i - 1) >> 2
		pe := q[parent]
		if !eventLess(ev, pe) {
			break
		}
		q[i] = pe
		pe.idx = i
		i = parent
	}
	q[i] = ev
	ev.idx = i
}

// siftDown places ev at index i or below.
func (e *Engine) siftDown(i int, ev *scheduledEvent) {
	q := e.queue
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		best := q[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], best) {
				m, best = j, q[j]
			}
		}
		if !eventLess(best, ev) {
			break
		}
		q[i] = best
		best.idx = i
		i = m
	}
	q[i] = ev
	ev.idx = i
}

// Ticker invokes fn every period until cancelled. It is the building block
// for the DRE decay timer and the flowlet age sweep.
type Ticker struct {
	engine *Engine
	period Time
	fn     Event
	handle EventHandle
	tickFn Event // bound once so rescheduling does not allocate
	done   bool
}

// NewTicker schedules fn to run every period, with the first invocation one
// full period from now. A non-positive period panics.
func NewTicker(e *Engine, period Time, fn Event) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tickFn = t.tick
	t.handle = e.AtDaemon(e.now+period, t.tickFn)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done { // fn may have stopped the ticker
		t.handle = t.engine.AtDaemon(now+t.period, t.tickFn)
	}
}

// Stop cancels future invocations.
func (t *Ticker) Stop() {
	t.done = true
	t.handle.Cancel()
}
