// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes events in
// (time, insertion-order) order, so two runs with the same seed and the same
// sequence of schedule calls produce identical results. All CONGA fabric,
// transport, and workload models in this repository are built on top of it.
//
// The engine is intentionally single-threaded: datacenter fabric experiments
// are run one engine per goroutine, and parallelism is obtained by running
// independent experiments concurrently.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations expressed in engine ticks (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Running an engine until
// MaxTime effectively means "until the event queue drains".
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to engine ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds converts virtual time to floating-point seconds, which is
// convenient when reporting rates and completion times.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with the standard library's duration formatting.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are one-shot; recurring behaviour is
// built by rescheduling from within the callback (see Ticker).
type Event func(now Time)

type scheduledEvent struct {
	at     Time
	seq    uint64 // insertion order; breaks ties deterministically
	fn     Event
	eng    *Engine
	dead   bool // cancelled
	daemon bool // housekeeping; does not keep Run(MaxTime) alive
	idx    int  // heap index, maintained by eventQueue
}

// EventHandle identifies a scheduled event so it can be cancelled.
// The zero value is not a valid handle.
type EventHandle struct {
	ev *scheduledEvent
}

// Cancel prevents the event from running. Cancelling an already-executed or
// already-cancelled event is a no-op. It reports whether the event was still
// pending.
func (h EventHandle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	h.ev.fn = nil
	if !h.ev.daemon && h.ev.eng != nil {
		h.ev.eng.live--
	}
	return true
}

// Pending reports whether the event is still scheduled to run.
func (h EventHandle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.idx >= 0 }

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use; New
// is provided for symmetry with the rest of the repository.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	live    int // pending non-daemon events
	// executed counts events that have run, for diagnostics and tests.
	executed uint64
	stopped  bool
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently reordering time would corrupt every
// downstream measurement.
func (e *Engine) At(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, false)
}

// AtDaemon schedules a housekeeping event: it runs like any other, but
// pending daemon events alone do not keep Run(MaxTime) alive. Periodic
// infrastructure (DRE decay, flowlet sweeps) uses daemon events so "run
// until the workload finishes" terminates.
func (e *Engine) AtDaemon(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, true)
}

func (e *Engine) schedule(t Time, fn Event, daemon bool) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &scheduledEvent{at: t, seq: e.nextSeq, fn: fn, eng: e, daemon: daemon}
	e.nextSeq++
	if !daemon {
		e.live++
	}
	heap.Push(&e.queue, ev)
	return EventHandle{ev: ev}
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn Event) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty, the until time is
// reached, or Stop is called. Events scheduled exactly at until still run
// (the interval is closed), which makes "run until end of measurement
// window" natural to express. It returns the time of the last executed event
// or until, whichever is smaller.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		// With no live (non-daemon) work left, an unbounded run is done:
		// only periodic housekeeping remains and it would tick forever.
		if until == MaxTime && e.live == 0 {
			break
		}
		next := e.queue[0]
		if next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		if next.dead {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		next.dead = true
		if !next.daemon {
			e.live--
		}
		e.executed++
		fn(e.now)
	}
	// When the queue drains before until, advance the clock to until so
	// callers can express "idle until the end of the window" — except for
	// MaxTime, which means "run to completion" and should leave the clock at
	// the last event.
	if e.now < until && until != MaxTime && len(e.queue) == 0 {
		e.now = until
	}
	return e.now
}

// Ticker invokes fn every period until cancelled. It is the building block
// for the DRE decay timer and the flowlet age sweep.
type Ticker struct {
	engine *Engine
	period Time
	fn     Event
	handle EventHandle
	done   bool
}

// NewTicker schedules fn to run every period, with the first invocation one
// full period from now. A non-positive period panics.
func NewTicker(e *Engine, period Time, fn Event) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.handle = e.AtDaemon(e.now+period, t.tick)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done { // fn may have stopped the ticker
		t.handle = t.engine.AtDaemon(now+t.period, t.tick)
	}
}

// Stop cancels future invocations.
func (t *Ticker) Stop() {
	t.done = true
	t.handle.Cancel()
}
