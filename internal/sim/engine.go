// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps virtual time as int64 nanoseconds and executes events in
// (time, insertion-order) order, so two runs with the same seed and the same
// sequence of schedule calls produce identical results. All CONGA fabric,
// transport, and workload models in this repository are built on top of it.
//
// The engine is intentionally single-threaded: datacenter fabric experiments
// are run one engine per goroutine, and parallelism is obtained by running
// independent experiments concurrently (see internal/runner).
//
// The event queue is a hierarchical timing wheel: a near-horizon level of
// 4096 one-tick slots (sized to the serialization + propagation band where
// almost all packet events land), three cascading overflow levels covering
// ~2 ms, ~1 s and ~9 min, and a 4-ary min-heap fallback for anything beyond
// the wheel (or behind its base after a window advance). Push and pop are
// O(1) on the wheel; the heap is consulted only by comparing its root
// against the wheel minimum, so the (time, seq) execution order is exact no
// matter where an event is stored. Executed or cancelled events are
// recycled through a per-engine free list, so the steady-state hot path
// (schedule → run → recycle) does not allocate. Handles stay safe across
// recycling via a per-event generation counter. See DESIGN.md for the
// bucket-sizing and determinism argument.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations expressed in engine ticks (nanoseconds).
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time. Running an engine until
// MaxTime effectively means "until the event queue drains".
const MaxTime = Time(math.MaxInt64)

// Duration converts a standard library duration to engine ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds converts virtual time to floating-point seconds, which is
// convenient when reporting rates and completion times.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with the standard library's duration formatting.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are one-shot; recurring behaviour is
// built by rescheduling from within the callback (see Ticker).
type Event func(now Time)

// Timing-wheel geometry. Level 0 has one-tick slots so a slot never mixes
// timestamps: within one 4096-aligned block, slot index IS time order, and
// FIFO order within a slot IS seq order (appends are seq-monotone, see the
// cascade invariant in DESIGN.md). Each overflow level widens slots by
// 2^lvlBits.
const (
	l0Bits  = 12 // 4096 one-tick slots ≈ 4.1 µs of near horizon
	l0Size  = 1 << l0Bits
	lvlBits = 9 // 512 slots per overflow level
	lvlSize = 1 << lvlBits
	numLvls = 3 // overflow levels: ~2.1 ms, ~1.07 s, ~9.2 min horizons
)

// Event location markers (scheduledEvent.lvl).
const (
	locNone = -1          // not queued
	locFar  = numLvls + 1 // 4-ary fallback heap
)

// scheduledEvent is pooled: after an event runs or is cancelled the engine
// bumps gen and pushes the object onto its free list, so outstanding
// EventHandles (which captured the old gen) can never act on the recycled
// slot's next occupant.
type scheduledEvent struct {
	at  Time
	seq uint64 // insertion order; breaks ties deterministically
	fn  Event
	gen uint64 // incremented on recycle; invalidates stale handles

	prev, next *scheduledEvent // intrusive wheel-bucket list links

	idx    int32 // far-heap index (locFar only)
	slot   int32 // wheel slot index (levels 0..numLvls)
	lvl    int8  // locNone, 0..numLvls (wheel level), or locFar
	daemon bool  // housekeeping; does not keep Run(MaxTime) alive
}

// bucket is one timing-wheel slot: a FIFO doubly-linked list of events.
type bucket struct{ head, tail *scheduledEvent }

// EventHandle identifies a scheduled event so it can be cancelled.
// The zero value is not a valid handle.
type EventHandle struct {
	eng *Engine
	ev  *scheduledEvent
	gen uint64
}

// Cancel prevents the event from running. The event is removed from the
// queue immediately — its closure is dropped and the slot recycled, so a
// cancelled event retains no memory until its time arrives. Cancelling an
// already-executed or already-cancelled event is a no-op. It reports whether
// the event was still pending.
func (h EventHandle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.lvl == locNone {
		return false
	}
	e := h.eng
	if !ev.daemon {
		e.live--
	}
	e.remove(ev)
	e.pending--
	e.recycle(ev)
	return true
}

// Pending reports whether the event is still scheduled to run.
func (h EventHandle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.lvl != locNone
}

// Engine is a discrete-event simulator. The zero value is ready to use; New
// is provided for symmetry with the rest of the repository.
type Engine struct {
	now     Time
	nextSeq uint64
	live    int // pending non-daemon events
	pending int // all pending events
	// executed counts events that have run, for diagnostics and tests.
	executed uint64
	stopped  bool

	// Timing wheel. winEnd[k] is the exclusive end of level k's window and
	// is always aligned to level k's block size 2^(l0Bits + k·lvlBits), so
	// each level's occupied slots live in a suffix of a single aligned
	// block and slot index order equals time order. wheelCount tracks
	// events resident in any wheel level; when it reaches zero the windows
	// re-anchor at the current clock on the next insert.
	l0       [l0Size]bucket
	l0words  [l0Size / 64]uint64
	l0sum    uint64 // bit i set ⇔ l0words[i] != 0
	lvl      [numLvls][lvlSize]bucket
	lvlWords [numLvls][lvlSize / 64]uint64
	winEnd   [numLvls + 1]Time
	wheel    int // events resident in the wheel

	// far holds events beyond the wheel horizon — or (rarely) behind the
	// wheel base after a cascade overshot a bounded Run — as a 4-ary
	// min-heap on (at, seq). Its root is compared against the wheel
	// minimum at every pop, so placement never affects execution order.
	far []*scheduledEvent

	free []*scheduledEvent // recycled event objects

	// Splice streams: batches of pre-sorted same-callback firings that
	// bypass per-event wheel insertion (see Splice). Streams are consulted
	// alongside the wheel/heap minimum at every pop, so their entries
	// execute in exact (time, seq) order relative to ordinary events.
	streams  []spliceStream
	timeBufs [][]Time // recycled stream time buffers

	// runUntil is the bound of the Run call currently executing (MaxTime
	// for unbounded runs, 0 outside Run). ChainableTo uses it so callers
	// collapsing future work into the current event can never run work the
	// bounded Run would have left pending.
	runUntil Time

	// curSeq is the sequence number of the event currently executing. The
	// fabric's cut-through fast path compares it against reserved sequence
	// numbers to replay the slow path's exact tie-breaking (see ReserveSeq).
	curSeq uint64
}

// spliceStream is one Splice batch: len(times)-head firings of fn at
// ascending times, holding the consecutive sequence numbers seq0+head… so
// the whole batch preserves its submission order against ordinary events.
type spliceStream struct {
	times []Time
	head  int
	seq0  uint64
	fn    Event
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events that have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue. Cancelled
// events are removed eagerly, so they never linger in this count.
func (e *Engine) Pending() int { return e.pending }

// Live returns the number of pending non-daemon events. The window runner
// (ParallelEngine) sums it across domains to decide global termination, the
// same criterion Run(MaxTime) applies to a single engine.
func (e *Engine) Live() int { return e.live }

// NextAt returns the timestamp of the earliest pending event (daemon or
// not, scheduled or spliced) and whether one exists. Peeking may cascade
// the timing wheel but never reorders or executes anything.
func (e *Engine) NextAt() (Time, bool) {
	var t Time
	ok := false
	if ev := e.nextEvent(); ev != nil {
		t, ok = ev.at, true
	}
	for i := range e.streams {
		st := &e.streams[i]
		if at := st.times[st.head]; !ok || at < t {
			t, ok = at, true
		}
	}
	return t, ok
}

// ChainableTo reports whether executing work for time t synchronously from
// within the current event is indistinguishable from scheduling it: the
// interval (Now, t] holds no pending event (daemon ticks included) and t is
// within the current Run bound, so nothing could have interleaved with —
// or cut off — the collapsed work. It is the legality test for the fabric's
// idle-path cut-through chains.
func (e *Engine) ChainableTo(t Time) bool {
	if t > e.runUntil {
		return false
	}
	if at, ok := e.NextAt(); ok && at <= t {
		return false
	}
	return true
}

// Splice schedules one firing of fn per entry of times, which must be
// ascending (ties allowed) and not in the past. The whole batch costs one
// buffer copy instead of len(times) queue insertions, and the entries take
// consecutive sequence numbers as if scheduled back-to-back at the call —
// so interleaving with ordinary events is exactly that of a loop over At,
// only cheaper. Entries are non-daemon and cannot be cancelled. times is
// copied; the caller may reuse it immediately.
func (e *Engine) Splice(times []Time, fn Event) {
	n := len(times)
	if n == 0 {
		return
	}
	prev := e.now
	for _, t := range times {
		if t < prev {
			panic(fmt.Sprintf("sim: Splice times must be ascending and not before now %v (got %v after %v)", e.now, t, prev))
		}
		prev = t
	}
	var buf []Time
	if k := len(e.timeBufs); k > 0 {
		buf = e.timeBufs[k-1]
		e.timeBufs = e.timeBufs[:k-1]
	}
	buf = append(buf[:0], times...)
	e.streams = append(e.streams, spliceStream{times: buf, seq0: e.nextSeq, fn: fn})
	e.nextSeq += uint64(n)
	e.live += n
	e.pending += n
}

// streamMinIdx returns the index of the stream whose head entry is the
// (time, seq) minimum across all active streams, or −1 when none exist.
func (e *Engine) streamMinIdx() int {
	best := -1
	var bt Time
	var bs uint64
	for i := range e.streams {
		st := &e.streams[i]
		at, seq := st.times[st.head], st.seq0+uint64(st.head)
		if best < 0 || at < bt || (at == bt && seq < bs) {
			best, bt, bs = i, at, seq
		}
	}
	return best
}

// dropStream recycles stream i's buffer once its entries are spent.
func (e *Engine) dropStream(i int) {
	e.timeBufs = append(e.timeBufs, e.streams[i].times[:0])
	last := len(e.streams) - 1
	e.streams[i] = e.streams[last]
	e.streams[last] = spliceStream{}
	e.streams = e.streams[:last]
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, and silently reordering time would corrupt every
// downstream measurement.
func (e *Engine) At(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, false)
}

// CurSeq returns the sequence number of the event currently executing. It
// is only meaningful inside an event callback.
func (e *Engine) CurSeq() uint64 { return e.curSeq }

// SetCurSeq overrides the executing event's logical sequence number and
// returns the previous value. The fabric's cut-through chains use it to run
// a collapsed arrival handler under the sequence number the handler's
// scheduled event would have carried, so any tie-sensitive decisions the
// handler makes match the uncollapsed execution exactly. Callers must
// restore the previous value before returning.
func (e *Engine) SetCurSeq(s uint64) uint64 {
	prev := e.curSeq
	e.curSeq = s
	return prev
}

// ReserveSeq allocates and returns the next sequence number without
// scheduling anything. A reserved number may later back an AtSeq call (at
// most once) or be left unused; holes in the sequence space are harmless
// because tie-breaking only needs uniqueness and monotonicity. The fabric's
// idle-path fusion reserves the sequence numbers its skipped slow-path
// events would have consumed, which keeps every (time, seq) tie in the
// fused run identical to the unfused one.
func (e *Engine) ReserveSeq() uint64 {
	s := e.nextSeq
	e.nextSeq++
	return s
}

// AtSeq schedules fn at absolute time t under a sequence number previously
// obtained from ReserveSeq. t may equal Now: the event then runs within the
// current instant, ordered against the instant's remaining events by seq.
// The event is non-daemon. Each reserved number must back at most one AtSeq
// call.
func (e *Engine) AtSeq(t Time, fn Event, seq uint64) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.at, ev.seq, ev.fn, ev.daemon = t, seq, fn, false
	e.live++
	e.pending++
	if e.wheel == 0 {
		e.anchor()
	}
	e.place(ev)
	e.restoreBucketOrder(ev)
	return EventHandle{eng: e, ev: ev, gen: ev.gen}
}

// restoreBucketOrder moves ev — just appended to its wheel bucket's tail —
// backward past any higher-seq entries, restoring the buckets' seq-sorted
// invariant after an out-of-order AtSeq insert. Far-heap events order
// themselves. Reserved-seq inserts are rare (a fused link claim turning
// contended), so the backward walk is not on the hot path.
func (e *Engine) restoreBucketOrder(ev *scheduledEvent) {
	if ev.lvl == locFar || ev.lvl == locNone {
		return
	}
	var b *bucket
	if ev.lvl == 0 {
		b = &e.l0[ev.slot]
	} else {
		b = &e.lvl[ev.lvl-1][ev.slot]
	}
	for ev.prev != nil && ev.prev.seq > ev.seq {
		p := ev.prev
		p.next = ev.next
		if ev.next != nil {
			ev.next.prev = p
		} else {
			b.tail = p
		}
		ev.prev = p.prev
		if p.prev != nil {
			p.prev.next = ev
		} else {
			b.head = ev
		}
		ev.next = p
		p.prev = ev
	}
}

// AtDaemon schedules a housekeeping event: it runs like any other, but
// pending daemon events alone do not keep Run(MaxTime) alive. Periodic
// infrastructure (DRE decay, flowlet sweeps) uses daemon events so "run
// until the workload finishes" terminates.
func (e *Engine) AtDaemon(t Time, fn Event) EventHandle {
	return e.schedule(t, fn, true)
}

func (e *Engine) schedule(t Time, fn Event, daemon bool) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &scheduledEvent{}
	}
	ev.at, ev.seq, ev.fn, ev.daemon = t, e.nextSeq, fn, daemon
	e.nextSeq++
	if !daemon {
		e.live++
	}
	e.pending++
	if e.wheel == 0 {
		// The wheel is empty, so its windows can be re-anchored at the
		// clock for free. This keeps the near horizon tight across
		// drain/refill cycles and makes the zero-value Engine work.
		e.anchor()
	}
	e.place(ev)
	return EventHandle{eng: e, ev: ev, gen: ev.gen}
}

// anchor positions every wheel window so that level k's window is the
// aligned block containing now. Only valid when the wheel is empty.
func (e *Engine) anchor() {
	for k := 0; k <= numLvls; k++ {
		span := Time(1) << (l0Bits + k*lvlBits)
		e.winEnd[k] = (e.now &^ (span - 1)) + span
	}
}

// place routes ev into the wheel level whose window covers ev.at, or into
// the far heap when no window does. It does not touch live/pending.
func (e *Engine) place(ev *scheduledEvent) {
	t := ev.at
	if t < e.winEnd[0] {
		if t >= e.winEnd[0]-l0Size {
			s := int32(t & (l0Size - 1))
			ev.lvl, ev.slot = 0, s
			b := &e.l0[s]
			if b.tail == nil {
				b.head = ev
				ev.prev = nil
				e.l0words[s>>6] |= 1 << (uint32(s) & 63)
				e.l0sum |= 1 << (uint32(s) >> 6)
			} else {
				ev.prev = b.tail
				b.tail.next = ev
			}
			b.tail = ev
			ev.next = nil
			e.wheel++
			return
		}
		// Behind the level-0 block: a cascade overshot a bounded Run and
		// the caller scheduled into the gap.
		e.farPush(ev)
		return
	}
	for k := 1; k <= numLvls; k++ {
		if t < e.winEnd[k] {
			shift := uint(l0Bits + (k-1)*lvlBits)
			s := int32((t >> shift) & (lvlSize - 1))
			ev.lvl, ev.slot = int8(k), s
			b := &e.lvl[k-1][s]
			if b.tail == nil {
				b.head = ev
				ev.prev = nil
				e.lvlWords[k-1][s>>6] |= 1 << (uint32(s) & 63)
			} else {
				ev.prev = b.tail
				b.tail.next = ev
			}
			b.tail = ev
			ev.next = nil
			e.wheel++
			return
		}
	}
	e.farPush(ev) // beyond the wheel horizon
}

// remove unlinks ev from wherever it is queued (wheel bucket or far heap).
func (e *Engine) remove(ev *scheduledEvent) {
	if ev.lvl == locFar {
		e.farRemove(int(ev.idx))
		ev.lvl = locNone
		return
	}
	var b *bucket
	s := ev.slot
	if ev.lvl == 0 {
		b = &e.l0[s]
	} else {
		b = &e.lvl[ev.lvl-1][s]
	}
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	if b.head == nil {
		if ev.lvl == 0 {
			e.l0words[s>>6] &^= 1 << (uint32(s) & 63)
			if e.l0words[s>>6] == 0 {
				e.l0sum &^= 1 << (uint32(s) >> 6)
			}
		} else {
			e.lvlWords[ev.lvl-1][s>>6] &^= 1 << (uint32(s) & 63)
		}
	}
	ev.prev, ev.next = nil, nil
	ev.lvl = locNone
	e.wheel--
}

// wheelMin returns the earliest event resident in the wheel, cascading
// overflow buckets toward level 0 as needed; nil when the wheel is empty.
// Within a level, slot index order is time order (each window is a suffix
// of one aligned block) and bucket FIFO order is seq order, so the head of
// the lowest occupied level-0 slot is the exact (time, seq) minimum.
func (e *Engine) wheelMin() *scheduledEvent {
	for {
		if e.l0sum != 0 {
			w := bits.TrailingZeros64(e.l0sum)
			s := w<<6 + bits.TrailingZeros64(e.l0words[w])
			return e.l0[s].head
		}
		if !e.cascade() {
			return nil
		}
	}
}

// cascade moves the earliest occupied bucket of the lowest non-empty
// overflow level down one level, advancing the windows below it. It
// reports whether any bucket moved.
func (e *Engine) cascade() bool {
	for k := 1; k <= numLvls; k++ {
		s := -1
		for w, word := range e.lvlWords[k-1] {
			if word != 0 {
				s = w<<6 + bits.TrailingZeros64(word)
				break
			}
		}
		if s < 0 {
			continue
		}
		b := &e.lvl[k-1][s]
		head := b.head
		shift := uint(l0Bits + (k-1)*lvlBits)
		base := (head.at >> shift) << shift // bucket start; aligned to 2^shift
		// The new level-(k−1) window is exactly this bucket's span; every
		// window below starts empty at its base. base is aligned to
		// 2^(l0Bits+(k−1)·lvlBits), which is also block-aligned for every
		// lower level, so the suffix-of-one-block invariant holds.
		e.winEnd[k-1] = base + Time(1)<<shift
		for j := k - 2; j >= 0; j-- {
			e.winEnd[j] = base
		}
		// Detach the bucket and redistribute. The bucket list is in seq
		// order and the target slots are empty (the levels below were
		// exhausted, and direct inserts for these times were impossible
		// before the window advance), so per-slot FIFO order stays seq
		// order.
		b.head, b.tail = nil, nil
		e.lvlWords[k-1][s>>6] &^= 1 << (uint(s) & 63)
		for ev := head; ev != nil; {
			next := ev.next
			ev.prev, ev.next = nil, nil
			e.wheel--
			e.place(ev)
			ev = next
		}
		return true
	}
	return false
}

// nextEvent returns the earliest pending event without removing it (the
// wheel may cascade as a side effect), or nil when nothing is pending.
func (e *Engine) nextEvent() *scheduledEvent {
	var w *scheduledEvent
	if e.wheel > 0 {
		w = e.wheelMin()
	}
	if len(e.far) > 0 {
		f := e.far[0]
		if w == nil || eventLess(f, w) {
			return f
		}
	}
	return w
}

// popMin removes and returns the earliest pending event (cascading as
// needed), or nil when nothing is pending. It is nextEvent+remove fused
// for Run's hot loop: the minimum is almost always the head of the lowest
// occupied level-0 slot, which unlinks with two stores and at most two
// bitmap clears — none of remove's generic prev/level dispatch. It does
// not touch pending; the caller owns that bookkeeping, as with remove.
func (e *Engine) popMin() *scheduledEvent {
	var w *scheduledEvent
	var ws int32
	if e.wheel > 0 {
		for {
			if e.l0sum != 0 {
				wd := bits.TrailingZeros64(e.l0sum)
				ws = int32(wd<<6 + bits.TrailingZeros64(e.l0words[wd]))
				w = e.l0[ws].head
				break
			}
			if !e.cascade() {
				break
			}
		}
	}
	if len(e.far) > 0 {
		f := e.far[0]
		if w == nil || eventLess(f, w) {
			e.farRemove(0)
			f.lvl = locNone
			return f
		}
	}
	if w == nil {
		return nil
	}
	b := &e.l0[ws]
	b.head = w.next
	if w.next != nil {
		w.next.prev = nil
	} else {
		b.tail = nil
		e.l0words[ws>>6] &^= 1 << (uint32(ws) & 63)
		if e.l0words[ws>>6] == 0 {
			e.l0sum &^= 1 << (uint32(ws) >> 6)
		}
	}
	w.next = nil
	w.lvl = locNone
	e.wheel--
	return w
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn Event) EventHandle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// recycle returns an executed or cancelled event to the free list,
// invalidating any handles that still point at it.
func (e *Engine) recycle(ev *scheduledEvent) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty, the until time is
// reached, or Stop is called. Events scheduled exactly at until still run
// (the interval is closed), which makes "run until end of measurement
// window" natural to express. It returns the time of the last executed event
// or until, whichever is smaller.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	e.runUntil = until
	defer func() { e.runUntil = 0 }()
	for e.pending > 0 && !e.stopped {
		// With no live (non-daemon) work left, an unbounded run is done:
		// only periodic housekeeping remains and it would tick forever.
		if until == MaxTime && e.live == 0 {
			break
		}
		var next *scheduledEvent
		if len(e.streams) > 0 {
			// Splice streams are live (a parallel window): peek, compare
			// against the stream minimum, and only then remove.
			next = e.nextEvent()
			if si := e.streamMinIdx(); si >= 0 {
				st := &e.streams[si]
				at := st.times[st.head]
				if next == nil || at < next.at || (at == next.at && st.seq0+uint64(st.head) < next.seq) {
					if at > until {
						e.now = until
						return e.now
					}
					fn := st.fn
					e.curSeq = st.seq0 + uint64(st.head)
					st.head++
					if st.head == len(st.times) {
						e.dropStream(si)
					}
					e.pending--
					e.live--
					e.now = at
					e.executed++
					fn(e.now)
					continue
				}
			}
			if next.at > until {
				e.now = until
				return e.now
			}
			e.remove(next)
		} else {
			// No streams: pop the minimum directly. If it lies beyond the
			// bounded run it goes back into the wheel (restoring its
			// bucket-head position — it was the minimum, so it re-enters
			// its slot with the smallest seq) for a later Run to find.
			next = e.popMin()
			if next.at > until {
				e.now = until
				e.place(next)
				e.restoreBucketOrder(next)
				return e.now
			}
		}
		e.pending--
		e.now = next.at
		e.curSeq = next.seq
		fn := next.fn
		if !next.daemon {
			e.live--
		}
		e.executed++
		// Recycle before running: the handle's generation no longer
		// matches, so fn cancelling its own (spent) handle is a no-op, and
		// events fn schedules can reuse the slot immediately.
		e.recycle(next)
		fn(e.now)
	}
	// When the queue drains before until, advance the clock to until so
	// callers can express "idle until the end of the window" — except for
	// MaxTime, which means "run to completion" and should leave the clock at
	// the last event.
	if e.now < until && until != MaxTime && e.pending == 0 {
		e.now = until
	}
	return e.now
}

// --- far-future fallback: 4-ary min-heap on (at, seq) ---
//
// Only events beyond the wheel horizon (or behind its base) land here, so
// the heap is almost always tiny; its root is compared against the wheel
// minimum at every pop, which keeps the global (time, seq) order exact.

func eventLess(a, b *scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) farPush(ev *scheduledEvent) {
	ev.lvl = locFar
	e.far = append(e.far, ev)
	e.siftUp(len(e.far)-1, ev)
}

// farPopRoot removes the minimum far event.
func (e *Engine) farPopRoot() {
	q := e.far
	q[0].lvl = locNone
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.far = q[:n]
	if n > 0 {
		e.siftDown(0, last)
	}
}

// farRemove deletes the far event at index i, restoring heap order.
func (e *Engine) farRemove(i int) {
	q := e.far
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.far = q[:n]
	if i == n {
		return
	}
	if i > 0 && eventLess(last, q[(i-1)>>2]) {
		e.siftUp(i, last)
	} else {
		e.siftDown(i, last)
	}
}

// siftUp places ev at index i or above. The slot at i is treated as a hole:
// ev is only written once its final position is known.
func (e *Engine) siftUp(i int, ev *scheduledEvent) {
	q := e.far
	for i > 0 {
		parent := (i - 1) >> 2
		pe := q[parent]
		if !eventLess(ev, pe) {
			break
		}
		q[i] = pe
		pe.idx = int32(i)
		i = parent
	}
	q[i] = ev
	ev.idx = int32(i)
}

// siftDown places ev at index i or below.
func (e *Engine) siftDown(i int, ev *scheduledEvent) {
	q := e.far
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		best := q[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], best) {
				m, best = j, q[j]
			}
		}
		if !eventLess(best, ev) {
			break
		}
		q[i] = best
		best.idx = int32(i)
		i = m
	}
	q[i] = ev
	ev.idx = int32(i)
}

// Ticker invokes fn every period until cancelled. It is the building block
// for the DRE decay timer and the flowlet age sweep.
type Ticker struct {
	engine *Engine
	period Time
	fn     Event
	handle EventHandle
	tickFn Event // bound once so rescheduling does not allocate
	done   bool
}

// NewTicker schedules fn to run every period, with the first invocation one
// full period from now. A non-positive period panics.
func NewTicker(e *Engine, period Time, fn Event) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tickFn = t.tick
	t.handle = e.AtDaemon(e.now+period, t.tickFn)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.done {
		return
	}
	t.fn(now)
	if !t.done { // fn may have stopped the ticker
		t.handle = t.engine.AtDaemon(now+t.period, t.tickFn)
	}
}

// Stop cancels future invocations.
func (t *Ticker) Stop() {
	t.done = true
	t.handle.Cancel()
}
