package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRandDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestRandIntnRoughlyUniform(t *testing.T) {
	r := NewRand(3)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", i, c, want)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRandExpFloat64Mean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestRandNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRandShufflePreservesElements(t *testing.T) {
	r := NewRand(19)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(23)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide %d/100 times", same)
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := New()
	fn := func(Time) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), fn)
		if i%1024 == 1023 {
			e.Run(Time(i))
		}
	}
	e.Run(MaxTime)
}
