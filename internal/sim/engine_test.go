package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run(MaxTime)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func(Time) { order = append(order, i) })
	}
	e.Run(MaxTime)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered at index %d: got %d", i, v)
		}
	}
}

func TestEngineClockAdvancesToEventTime(t *testing.T) {
	e := New()
	var seen Time
	e.At(5*Microsecond, func(now Time) { seen = now })
	e.Run(MaxTime)
	if seen != 5*Microsecond {
		t.Fatalf("callback saw now=%v, want 5µs", seen)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("engine clock %v, want 5µs", e.Now())
	}
}

func TestEngineRunUntilIsInclusive(t *testing.T) {
	e := New()
	ran := 0
	e.At(100, func(Time) { ran++ })
	e.At(101, func(Time) { ran++ })
	e.Run(100)
	if ran != 1 {
		t.Fatalf("ran %d events, want exactly the one at t=100", ran)
	}
	if e.Now() != 100 {
		t.Fatalf("clock %v, want 100", e.Now())
	}
}

func TestEngineRunAdvancesClockWhenQueueEmpty(t *testing.T) {
	e := New()
	e.Run(7 * Millisecond)
	if e.Now() != 7*Millisecond {
		t.Fatalf("clock %v, want 7ms", e.Now())
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(10, func(Time) {
		e.After(25, func(now Time) { at = now })
	})
	e.Run(MaxTime)
	if at != 35 {
		t.Fatalf("relative event at %v, want 35", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run(MaxTime)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestEventHandleCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.At(10, func(Time) { ran = true })
	if !h.Pending() {
		t.Fatal("handle should be pending before run")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report false")
	}
	e.Run(MaxTime)
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEventHandleCancelAfterRunIsNoop(t *testing.T) {
	e := New()
	h := e.At(10, func(Time) {})
	e.Run(MaxTime)
	if h.Cancel() {
		t.Fatal("cancelling an executed event should report false")
	}
}

func TestCancelRemovesEventFromQueueImmediately(t *testing.T) {
	e := New()
	var hs []EventHandle
	for i := 0; i < 10; i++ {
		hs = append(hs, e.At(Time(100+i), func(Time) {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", e.Pending())
	}
	// A cancelled event must leave the queue at once — not linger (holding
	// its closure live) until its scheduled time arrives.
	hs[3].Cancel()
	hs[7].Cancel()
	if e.Pending() != 8 {
		t.Fatalf("Pending() = %d after two cancels, want 8", e.Pending())
	}
	e.Run(MaxTime)
	if e.Executed() != 8 {
		t.Fatalf("executed %d, want 8", e.Executed())
	}
}

func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	e := New()
	h := e.At(10, func(Time) {})
	e.Run(MaxTime)
	// The executed event's slot is recycled; this new event may reuse it.
	ran := false
	e.At(20, func(Time) { ran = true })
	if h.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if h.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	e.Run(MaxTime)
	if !ran {
		t.Fatal("event scheduled after recycle did not run")
	}
}

func TestRandomizedScheduleCancelKeepsOrder(t *testing.T) {
	e := New()
	r := NewRand(7)
	type rec struct {
		at        Time
		seq       int
		cancelled bool
	}
	var want []rec
	var hs []EventHandle
	var got []int
	for i := 0; i < 2000; i++ {
		at := Time(r.Intn(500))
		i := i
		want = append(want, rec{at: at, seq: i})
		hs = append(hs, e.At(at, func(Time) { got = append(got, i) }))
	}
	for i := 0; i < 700; i++ {
		k := r.Intn(len(hs))
		if hs[k].Cancel() {
			want[k].cancelled = true
		}
	}
	e.Run(MaxTime)
	var expect []int
	for at := Time(0); at < 500; at++ {
		for _, w := range want {
			if w.at == at && !w.cancelled {
				expect = append(expect, w.seq)
			}
		}
	}
	if len(got) != len(expect) {
		t.Fatalf("ran %d events, want %d", len(got), len(expect))
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Fatalf("execution order diverged at %d: got %d, want %d", i, got[i], expect[i])
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func(Time) { ran++; e.Stop() })
	e.At(20, func(Time) { ran++ })
	e.Run(MaxTime)
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	// Run can resume afterwards.
	e.Run(MaxTime)
	if ran != 2 {
		t.Fatalf("ran %d events after resume, want 2", ran)
	}
}

func TestEngineExecutedCount(t *testing.T) {
	e := New()
	for i := Time(1); i <= 10; i++ {
		e.At(i, func(Time) {})
	}
	e.Run(MaxTime)
	if e.Executed() != 10 {
		t.Fatalf("executed %d, want 10", e.Executed())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := New()
	var fires []Time
	NewTicker(e, 10*Microsecond, func(now Time) { fires = append(fires, now) })
	e.Run(35 * Microsecond)
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times, want %d (%v)", len(fires), len(want), fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 10, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(1000) // bounded: tickers are daemon events and don't keep MaxTime runs alive

	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", count)
	}
}

func TestTickerNonPositivePeriodPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(e, 0, func(Time) {})
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Fatalf("Duration(1ms) = %v", Duration(time.Millisecond))
	}
	if got := (2500 * Microsecond).Seconds(); got != 0.0025 {
		t.Fatalf("Seconds() = %v, want 0.0025", got)
	}
}

func TestEngineManyEventsDrainCompletely(t *testing.T) {
	e := New()
	const n = 10000
	r := NewRand(1)
	ran := 0
	for i := 0; i < n; i++ {
		e.At(Time(r.Intn(1000)), func(Time) { ran++ })
	}
	e.Run(MaxTime)
	if ran != n {
		t.Fatalf("ran %d, want %d", ran, n)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

func TestRunMaxTimeStopsWhenOnlyDaemonsRemain(t *testing.T) {
	e := New()
	ticks := 0
	NewTicker(e, 10, func(Time) { ticks++ })
	done := false
	e.At(35, func(Time) { done = true })
	e.Run(MaxTime)
	if !done {
		t.Fatal("live event did not run")
	}
	// Ticker fired at 10, 20, 30 alongside the live event; after t=35 no
	// live work remains so the run must terminate.
	if ticks != 3 {
		t.Fatalf("ticker fired %d times, want 3", ticks)
	}
	if e.Now() != 35 {
		t.Fatalf("clock %v, want 35", e.Now())
	}
}

func TestCancelLiveEventAllowsMaxTimeRunToEnd(t *testing.T) {
	e := New()
	NewTicker(e, 10, func(Time) {})
	h := e.At(1000, func(Time) {})
	h.Cancel()
	e.Run(MaxTime) // must not hang: the only live event was cancelled
	if e.Executed() != 0 {
		t.Fatalf("executed %d events, want 0", e.Executed())
	}
}
