package sim

import (
	"slices"
	"testing"
)

// testFabric is a minimal cross-domain model over P engines: domains send
// each other timestamped integers through per-pair mailboxes with exactly
// window lookahead, mirroring how the fabric package uses ParallelEngine.
// Mailboxes are written during the window phase (by the source worker) and
// drained during the exchange phase (by the destination worker); the
// barrier between the phases orders the accesses, so there are no locks —
// the same discipline internal/fabric/partition.go follows.
type testFabric struct {
	pe    *ParallelEngine
	boxes [][][]testMsg // [src][dst]
	logs  [][]testMsg   // per-domain execution log
	calls []int         // per-domain exchange invocations
}

type testMsg struct {
	at  Time
	src int
	seq int
	val int
}

func newTestFabric(p int, window Time) *testFabric {
	engines := make([]*Engine, p)
	for i := range engines {
		engines[i] = New()
	}
	f := &testFabric{
		pe:    NewParallelEngine(engines, window),
		boxes: make([][][]testMsg, p),
		logs:  make([][]testMsg, p),
		calls: make([]int, p),
	}
	for s := range f.boxes {
		f.boxes[s] = make([][]testMsg, p)
	}
	for d := 0; d < p; d++ {
		dd := d
		f.pe.SetExchange(dd, func(windowEnd Time) { f.exchangeInto(dd, windowEnd) })
	}
	return f
}

// send queues val for domain dst at time at (must be ≥ now+window).
func (f *testFabric) send(src, dst int, at Time, val int) {
	f.boxes[src][dst] = append(f.boxes[src][dst], testMsg{at: at, src: src, val: val})
}

// exchangeInto drains domain d's incoming mailboxes in deterministic
// (at, src, seq) order and schedules each message's delivery on d's engine.
func (f *testFabric) exchangeInto(d int, windowEnd Time) {
	f.calls[d]++
	var merge []testMsg
	for s := range f.boxes {
		for i, m := range f.boxes[s][d] {
			m.seq = i
			merge = append(merge, m)
		}
		f.boxes[s][d] = f.boxes[s][d][:0]
	}
	slices.SortFunc(merge, func(a, b testMsg) int {
		if a.at != b.at {
			return int(a.at - b.at)
		}
		if a.src != b.src {
			return a.src - b.src
		}
		return a.seq - b.seq
	})
	eng := f.pe.Engines()[d]
	for _, m := range merge {
		if m.at < windowEnd {
			panic("test fabric: lookahead violated")
		}
		mm := m
		eng.At(m.at, func(now Time) {
			f.logs[d] = append(f.logs[d], testMsg{at: now, src: mm.src, seq: mm.seq, val: mm.val})
		})
	}
}

func TestParallelEngineValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no engines", func() { NewParallelEngine(nil, 1000) })
	mustPanic("zero window", func() { NewParallelEngine([]*Engine{New()}, 0) })
	mustPanic("negative window", func() { NewParallelEngine([]*Engine{New()}, -5) })
	mustPanic("clock mismatch", func() {
		a, b := New(), New()
		a.At(1, func(Time) {})
		a.Run(10)
		NewParallelEngine([]*Engine{a, b}, 1000)
	})
}

// TestParallelEngineSingleDomain checks the degenerate one-engine form is
// exactly a sequential run, including daemon semantics and the closed
// interval at until.
func TestParallelEngineSingleDomain(t *testing.T) {
	eng := New()
	var ran []Time
	for _, at := range []Time{5, 999, 1000, 2500} {
		a := at
		eng.At(a, func(now Time) { ran = append(ran, now) })
	}
	pe := NewParallelEngine([]*Engine{eng}, 1000)
	end := pe.Run(2500)
	if want := []Time{5, 999, 1000, 2500}; !slices.Equal(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	if end != 2500 {
		t.Fatalf("end clock %v, want 2500", end)
	}
}

// TestParallelEngineWindowBoundary schedules events exactly on the window
// edges: t = W-1 is the last tick inside window 0, t = W the first of
// window 1. Both must execute exactly once at their own time, and an event
// at exactly until must still run (closed interval, as in Engine.Run).
func TestParallelEngineWindowBoundary(t *testing.T) {
	const W = 1000
	f := newTestFabric(2, W)
	engs := f.pe.Engines()
	var ran0 []Time
	for _, at := range []Time{0, W - 1, W, 2*W - 1, 2 * W, 3 * W} {
		a := at
		engs[0].At(a, func(now Time) { ran0 = append(ran0, now) })
	}
	end := f.pe.Run(3 * W)
	want := []Time{0, W - 1, W, 2*W - 1, 2 * W, 3 * W}
	if !slices.Equal(ran0, want) {
		t.Fatalf("ran %v, want %v", ran0, want)
	}
	if end < 3*W {
		t.Fatalf("end clock %v, want ≥ %v", end, 3*W)
	}
}

// TestParallelEngineExchangeAtWindowEnd sends a cross-domain message whose
// arrival lands exactly on windowEnd — the earliest time the lookahead
// guarantee permits and the boundary the half-open window must not have
// passed yet. The delivery must execute at precisely that tick.
func TestParallelEngineExchangeAtWindowEnd(t *testing.T) {
	const W = 1000
	f := newTestFabric(2, W)
	engs := f.pe.Engines()
	// Domain 0 transmits at t=0 (window [0, W)); arrival at exactly 0+W.
	engs[0].At(0, func(now Time) { f.send(0, 1, now+W, 42) })
	// Keep domain 1 alive past the boundary so the run cannot end early.
	engs[1].At(2*W, func(Time) {})
	f.pe.Run(4 * W)
	if len(f.logs[1]) != 1 || f.logs[1][0].at != W || f.logs[1][0].val != 42 {
		t.Fatalf("domain 1 log = %+v, want one delivery of 42 at t=%d", f.logs[1], W)
	}
}

// TestParallelEngineCancelAcrossWindows cancels an event that lives several
// windows in the future from an earlier window, both same-domain and for a
// delivery scheduled by a previous exchange. The cancelled events must not
// run, and with no live work left the run must terminate before until.
func TestParallelEngineCancelAcrossWindows(t *testing.T) {
	const W = 1000
	f := newTestFabric(2, W)
	engs := f.pe.Engines()

	victimRan := false
	victim := engs[0].At(10*W, func(Time) { victimRan = true })
	engs[0].At(1, func(Time) {
		if !victim.Cancel() {
			t.Error("victim was not pending at cancel time")
		}
	})

	// Cross-domain delivery at 3W, cancelled by a later same-domain event
	// at 3W-1 — i.e. after the exchange has already scheduled it.
	f.send(0, 1, 3*W, 7) // pre-loaded mailbox, drained in the first exchange
	var delivered []testMsg
	engs[1].At(3*W-1, func(Time) {
		// The delivery event lives on engine 1's own queue now; find and
		// cancel is modelled here by engine-1-local state.
		delivered = f.logs[1]
	})
	engs[1].At(2, func(Time) {})
	f.pe.Run(100 * W)

	if victimRan {
		t.Fatal("cancelled event executed")
	}
	if len(delivered) != 0 {
		t.Fatalf("deliveries before 3W-1: %+v, want none", delivered)
	}
	// The pre-loaded delivery itself was NOT cancelled and must have run.
	if len(f.logs[1]) != 1 || f.logs[1][0].at != 3*W {
		t.Fatalf("domain 1 log = %+v, want one delivery at %d", f.logs[1], 3*W)
	}
}

// TestParallelEngineFastForward verifies idle gaps cost one barrier round,
// not gap/window rounds: two events a million windows apart must not drive
// a million exchanges.
func TestParallelEngineFastForward(t *testing.T) {
	const W = 1000
	const far = 1_000_000 * W
	f := newTestFabric(2, W)
	engs := f.pe.Engines()
	var ran []Time
	engs[0].At(0, func(now Time) { ran = append(ran, now) })
	engs[1].At(far, func(now Time) { ran = append(ran, now) })
	f.pe.Run(2 * far)
	if len(ran) != 2 || ran[0] != 0 || ran[1] != far {
		t.Fatalf("ran %v, want [0 %d]", ran, far)
	}
	if f.calls[0] > 8 {
		t.Fatalf("%d exchange rounds for two events; fast-forward is broken", f.calls[0])
	}
}

// TestParallelEngineDeterministic runs a 4-domain ring of cross-domain
// message cascades twice and requires identical per-domain execution logs —
// the (at, src, seq) merge discipline must make results independent of
// goroutine scheduling.
func TestParallelEngineDeterministic(t *testing.T) {
	const W = 1000
	run := func() [][]testMsg {
		f := newTestFabric(4, W)
		engs := f.pe.Engines()
		for d := 0; d < 4; d++ {
			dd := d
			eng := engs[dd]
			var hops int
			var hop func(now Time)
			hop = func(now Time) {
				hops++
				if hops > 64 {
					return
				}
				// Fan out to both neighbours at the same timestamp so the
				// merge order, not arrival timing, decides the log.
				f.send(dd, (dd+1)%4, now+W, dd*1000+hops)
				f.send(dd, (dd+3)%4, now+W, dd*1000+hops)
				eng.At(now+W, hop)
			}
			eng.At(Time(dd), hop)
		}
		f.pe.Run(70 * W)
		return f.logs
	}
	a, b := run(), run()
	for d := range a {
		if !slices.Equal(a[d], b[d]) {
			t.Fatalf("domain %d logs differ between runs:\n%+v\n%+v", d, a[d], b[d])
		}
	}
	if len(a[0]) == 0 {
		t.Fatal("no cross-domain deliveries happened")
	}
}
