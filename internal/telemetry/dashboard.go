package telemetry

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"conga/internal/plot"
)

// wantsHTML reports whether the client is a browser: the JSON overview
// stays the default for curl and congaplot (Accept: */*); only an explicit
// text/html preference gets the dashboard.
func wantsHTML(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/html")
}

// handleDashboard renders the browsable run dashboard: the sweep/run
// overview plus, for the selected run (?run=, default first), its series
// charted as inline SVG via internal/plot — one chart per unit, so queue
// depths in bytes and DRE rates in bits/s never share an axis. The page
// self-refreshes while the selected run is live; every figure is rendered
// server-side from the same immutable snapshots the JSON endpoints serve,
// so a browser can never perturb the engines.
func (h *Hub) handleDashboard(w http.ResponseWriter, r *http.Request) {
	sel := r.URL.Query().Get("run")
	names := h.Runs()
	if sel == "" && len(names) > 0 {
		sel = names[0]
	}
	tap := h.Run(sel)

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>conga live telemetry</title><style>` +
		`body{font-family:system-ui,-apple-system,sans-serif;margin:24px;background:#fcfcfb;color:#0b0b0b}` +
		`h1{font-size:20px}h2{font-size:15px;margin:24px 0 8px}` +
		`table{border-collapse:collapse;font-size:13px}` +
		`td,th{padding:3px 12px 3px 0;text-align:left;border-bottom:1px solid #e8e7e3}` +
		`th{color:#52514e;font-weight:500}` +
		`a{color:#2a78d6;text-decoration:none}a:hover{text-decoration:underline}` +
		`.cur{font-weight:600}.muted{color:#52514e}` +
		`svg{margin:8px 16px 8px 0}` +
		`</style></head><body>`)
	b.WriteString(`<h1>conga live telemetry</h1>`)

	h.mu.Lock()
	sweep := h.sweep
	h.mu.Unlock()
	if sweep != nil {
		done, total := sweep()
		fmt.Fprintf(&b, `<p class="muted">sweep: %d of %d runs finished</p>`, done, total)
	}

	// Run table; the selected run is bold, the rest link to themselves.
	b.WriteString(`<table><tr><th>run</th><th>sim time</th><th>flows</th><th>events</th><th>state</th></tr>`)
	allDone := len(names) > 0
	for _, n := range names {
		s := h.Run(n).Load()
		rj := runHeadline(n, s, nil)
		if !rj.Done {
			allDone = false
		}
		state := "running"
		if rj.Done {
			state = "done"
		}
		name := html.EscapeString(n)
		cell := fmt.Sprintf(`<a href="/?run=%s">%s</a>`, url.QueryEscape(n), name)
		if n == sel {
			cell = fmt.Sprintf(`<span class="cur">%s</span>`, name)
		}
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%v</td><td>%d / %d</td><td>%d</td><td>%s</td></tr>`,
			cell, time.Duration(rj.SimTimeNs), rj.FlowsDone, rj.FlowsGen, rj.Events, state)
	}
	b.WriteString(`</table>`)
	if len(names) == 0 {
		b.WriteString(`<p class="muted">no runs attached yet</p>`)
	}

	// Finished runs' flushed telemetry directories: the dashboard stays a
	// browsable archive after the live taps go quiet.
	if archives := h.Archives(); len(archives) > 0 {
		b.WriteString(`<h2>finished runs — flushed telemetry</h2>` +
			`<table><tr><th>run</th><th>directory</th><th>files</th></tr>`)
		for _, a := range archives {
			var links []string
			for _, f := range a.Files {
				links = append(links, fmt.Sprintf(`<a href="/files/%s/%s">%s</a>`,
					url.PathEscape(a.Name), url.PathEscape(f), html.EscapeString(f)))
			}
			fmt.Fprintf(&b, `<tr><td>%s</td><td class="muted">%s</td><td>%s</td></tr>`,
				html.EscapeString(a.Name), html.EscapeString(a.Dir), strings.Join(links, " · "))
		}
		b.WriteString(`</table>`)
	}

	refresh := !allDone
	if tap != nil {
		if s := tap.Load(); s != nil {
			h.dashboardRun(&b, sel, s)
			refresh = !s.Done
		}
	}

	b.WriteString(`<p class="muted">JSON: <a href="/counters">/counters</a> · ` +
		`<a href="/series">/series</a> · SSE: <a href="/stream">/stream</a> · ` +
		`figures also via: congaplot -url http://&lt;addr&gt;</p>`)
	if refresh {
		// Plain meta refresh: no script, and a finished page stops reloading.
		b.WriteString(`<script>setTimeout(function(){location.reload()},2000)</script>`)
	}
	b.WriteString(`</body></html>`)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	_, _ = w.Write([]byte(b.String()))
}

// dashboardRun renders one run's series charts (grouped by unit) and its
// counter table into the page.
func (h *Hub) dashboardRun(b *strings.Builder, name string, s *Snapshot) {
	fmt.Fprintf(b, `<h2>%s — series</h2>`, html.EscapeString(name))
	groups := map[string][]plot.Series{}
	for _, sr := range s.Series {
		if len(sr.Points) == 0 {
			continue
		}
		ps := plot.Series{Name: sr.Name, Unit: sr.Unit}
		ps.Points = make([][2]float64, 0, len(sr.Points))
		for _, p := range sr.Points {
			ps.Points = append(ps.Points, [2]float64{float64(p.T), p.V})
		}
		groups[sr.Unit] = append(groups[sr.Unit], ps)
	}
	if len(groups) == 0 {
		b.WriteString(`<p class="muted">no series (run without -telemetry series, or none observed yet)</p>`)
	}
	units := make([]string, 0, len(groups))
	for u := range groups {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		list := groups[u]
		sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
		dropped := 0
		if len(list) > plot.MaxSeries {
			dropped = len(list) - plot.MaxSeries
			list = list[:plot.MaxSeries]
		}
		title := u
		if title == "" {
			title = "series"
		}
		b.WriteString(plot.Line(list, plot.Spec{Title: title, Width: 640, Height: 320, Dropped: dropped}))
	}

	if rowLabels, colLabels, values, unit := PathMatrix(s.Paths); len(values) > 0 {
		fmt.Fprintf(b, `<h2>%s — path load</h2>`, html.EscapeString(name))
		var sums []string
		for _, sm := range s.PathSums {
			sums = append(sums, fmt.Sprintf("l%d imbalance %.2f entropy %.2f", sm.Leaf, sm.Imbalance, sm.Entropy))
		}
		b.WriteString(plot.Heatmap(plot.HeatmapSpec{
			Title:     "path utilization (uplink × destination leaf)",
			Subtitle:  strings.Join(sums, " · "),
			Width:     640,
			Unit:      unit,
			RowLabels: rowLabels,
			ColLabels: colLabels,
			Values:    values,
		}))
	}

	if len(s.Counters) > 0 {
		fmt.Fprintf(b, `<h2>%s — counters</h2>`, html.EscapeString(name))
		b.WriteString(`<table><tr><th>group</th><th>name</th><th>counter</th><th>value</th></tr>`)
		for _, c := range s.Counters {
			fmt.Fprintf(b, `<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>`,
				html.EscapeString(c.Group), html.EscapeString(c.Name), html.EscapeString(c.Counter), c.Value)
		}
		b.WriteString(`</table>`)
	}
}
