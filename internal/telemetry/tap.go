package telemetry

import (
	"sync/atomic"
	"time"

	"conga/internal/sim"
)

// Progress is harness-level run progress surfaced through tap snapshots.
// The harness registers a closure (Registry.SetProgress) that reads its own
// counters; the closure runs on the engine goroutine at publish time, so it
// needs no synchronization.
type Progress struct {
	// FlowsGenerated / FlowsCompleted count workload flows started and
	// finished (for Incast runs: rounds).
	FlowsGenerated, FlowsCompleted int
	// Events is the engine's executed-event count at snapshot time.
	Events uint64
}

// TapSeries is one series' state inside a snapshot: a private copy of the
// retained points plus the stride, so a reader can compute deltas against
// its previous snapshot (see DeltaSince).
type TapSeries struct {
	Name   string
	Unit   string
	Stride int
	Points []Point
}

// Snapshot is one immutable published view of a registry. Every field —
// including the points and counter rows — is a private copy made at the
// safe point; once published, nothing mutates it, which is what makes
// concurrent readers race-free by construction.
type Snapshot struct {
	// Seq increments per publish (1-based); a reader polls Load and acts
	// only when Seq advances.
	Seq uint64
	// SimTime is the engine's clock at the safe point; Wall is the
	// wall-clock publish time (unix nanoseconds) so readers can compute
	// events/sec across snapshots.
	SimTime sim.Time
	Wall    int64
	// Done marks the final snapshot, published by the harness after the
	// engine stops (SSE streams close on it).
	Done     bool
	Progress Progress
	Counters []CounterRow
	Series   []TapSeries
	// Paths is the decision plane's path load matrix (non-empty cells in
	// (leaf, uplink, dstLeaf) order) with per-leaf balance summaries; both
	// empty unless decision hooks are on.
	Paths    []PathRow
	PathSums []PathSummary
}

// SeriesDelta is the part of a snapshot's series a reader has not seen yet.
type SeriesDelta struct {
	Name   string
	Unit   string
	Stride int
	// Reset reports that the series was compacted (stride grew) since the
	// previous snapshot, so Points replaces — rather than extends — what
	// the reader accumulated.
	Reset  bool
	Points []Point
}

// DeltaSince returns the per-series deltas between prev (which may be nil:
// everything is new) and s.
func (s *Snapshot) DeltaSince(prev *Snapshot) []SeriesDelta {
	if s == nil {
		return nil
	}
	prevIdx := map[string]TapSeries{}
	if prev != nil {
		for _, ps := range prev.Series {
			prevIdx[ps.Name] = ps
		}
	}
	out := make([]SeriesDelta, 0, len(s.Series))
	for _, cur := range s.Series {
		d := SeriesDelta{Name: cur.Name, Unit: cur.Unit, Stride: cur.Stride}
		if ps, ok := prevIdx[cur.Name]; ok && ps.Stride == cur.Stride && len(ps.Points) <= len(cur.Points) {
			d.Points = cur.Points[len(ps.Points):]
		} else {
			d.Reset = true
			d.Points = cur.Points
		}
		out = append(out, d)
	}
	return out
}

// Tap is the lock-free handoff between one engine and any number of reader
// goroutines. The engine builds a fresh immutable Snapshot at a safe point
// and publishes it with a single atomic pointer store; readers Load the
// pointer whenever they like. There is no lock, no channel, and no
// back-pressure: a slow reader simply observes fewer snapshots, and the
// engine never blocks or schedules events on the tap's behalf — which is
// why an attached reader cannot perturb the simulation.
type Tap struct {
	cur atomic.Pointer[Snapshot]

	// Engine-side publish throttling state; touched only by the owning
	// engine goroutine.
	interval  sim.Time
	wallMin   time.Duration
	lastSim   sim.Time
	lastWall  time.Time
	seq       uint64
	published bool
}

func newTap(interval sim.Time, wallMin time.Duration) *Tap {
	return &Tap{interval: interval, wallMin: wallMin}
}

// Load returns the latest published snapshot, or nil before the first
// publish. Safe to call from any goroutine and on a nil receiver.
func (t *Tap) Load() *Snapshot {
	if t == nil {
		return nil
	}
	return t.cur.Load()
}

// Tap returns the registry's streaming tap, or nil when disabled.
func (r *Registry) Tap() *Tap {
	if r == nil {
		return nil
	}
	return r.tap
}

// SetProgress registers the closure PublishTap calls (on the engine
// goroutine) to fill Snapshot.Progress.
func (r *Registry) SetProgress(fn func() Progress) {
	if r == nil {
		return
	}
	r.progress = fn
}

// PublishTap publishes a snapshot if the tap is enabled and both throttle
// gates (sim-time interval, wall-clock minimum) have elapsed. The fabric
// calls it from the DRE-decay ticker — an existing safe point — so
// publishing adds no events and consumes no engine randomness.
func (r *Registry) PublishTap(now sim.Time) {
	if r == nil || r.tap == nil {
		return
	}
	t := r.tap
	if t.published {
		if now-t.lastSim < t.interval {
			return
		}
		if t.wallMin > 0 && time.Since(t.lastWall) < t.wallMin {
			return
		}
	}
	r.publish(now, false)
}

// FinishTap publishes the final snapshot (Done=true), unconditionally. The
// harness calls it after the engine stops and collectors ran.
func (r *Registry) FinishTap(now sim.Time) {
	if r == nil || r.tap == nil {
		return
	}
	r.publish(now, true)
}

func (r *Registry) publish(now sim.Time, done bool) {
	t := r.tap
	t.seq++
	snap := &Snapshot{
		Seq:     t.seq,
		SimTime: now,
		Wall:    time.Now().UnixNano(),
		Done:    done,
	}
	if r.progress != nil {
		snap.Progress = r.progress()
	}
	r.Collect()
	snap.Counters = r.CounterRows()
	snap.Paths = r.PathRows()
	snap.PathSums = r.PathSummaries()
	if len(r.series) > 0 {
		snap.Series = make([]TapSeries, 0, len(r.series))
		for _, s := range r.series {
			snap.Series = append(snap.Series, TapSeries{
				Name:   s.Name(),
				Unit:   s.Unit(),
				Stride: s.Stride(),
				Points: append([]Point(nil), s.Points()...),
			})
		}
	}
	t.lastSim = now
	t.lastWall = time.Now()
	t.published = true
	t.cur.Store(snap)
}
