package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIndexContentNegotiation: "/" stays JSON for API clients (curl,
// congaplot) and becomes the HTML dashboard only when the client prefers
// text/html.
func TestIndexContentNegotiation(t *testing.T) {
	hub := NewHub()
	r := tapRegistry(hub, "demo")
	r.Link("l0->s0.0").Enqueues = 3
	s := r.NewSeries("queue.l0->s0.0", "bytes")
	s.Observe(10, 1500)
	s.Observe(20, 2900)
	r.Collect()
	r.FinishTap(20)

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+"/", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.Header.Get("Content-Type"), string(body)
	}

	// Default and explicit */* stay JSON.
	for _, accept := range []string{"", "*/*", "application/json"} {
		ct, body := get(accept)
		if !strings.HasPrefix(ct, "application/json") || !strings.Contains(body, `"runs"`) {
			t.Fatalf("Accept=%q: got %s: %.80s", accept, ct, body)
		}
	}

	// A browser Accept header gets the dashboard: HTML with the run name,
	// an inline SVG chart of the series, and the counter rows.
	ct, body := get("text/html,application/xhtml+xml,*/*;q=0.8")
	if !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("browser Accept: content type %s", ct)
	}
	for _, want := range []string{"<svg", "demo", "queue.l0-&gt;s0.0", "enqueues"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q:\n%.400s", want, body)
		}
	}
	// The run is done, so the page must not keep reloading.
	if strings.Contains(body, "location.reload") {
		t.Error("finished dashboard still auto-refreshes")
	}

	// ?run= selects a run; an unknown one renders (with the run table) but
	// chartless rather than 404ing a browser.
	req, _ := http.NewRequest("GET", srv.URL+"/?run=demo", nil)
	req.Header.Set("Accept", "text/html")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body2), "<svg") {
		t.Fatalf("?run=demo dashboard: %s", resp.Status)
	}
}

// TestProvenanceInSinks: a registry stamped with replay provenance carries
// it into the counters and trace files of both sinks — as a "#" comment in
// CSV and a leading meta object in NDJSON — while series files stay clean
// two-column data.
func TestProvenanceInSinks(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	r := New(All(out))
	r.SetProvenance("replay harness=fct scheme=conga workload=enterprise load=0.5 seed=7 flows=42 fp=0123456789abcdef")
	r.Link("l0->s0.0").Enqueues = 1
	s := r.NewSeries("queue.l0->s0.0", "bytes")
	s.Observe(10, 1.5)
	r.Trace().Record(5, TraceSend, "h0", 1, 0, 1, 100, 200, 0, 1460)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(b)
	}
	for _, name := range []string{"counters.csv", "trace.csv"} {
		if got := read(name); !strings.HasPrefix(got, "# provenance=replay harness=fct") {
			t.Errorf("%s lacks provenance comment:\n%.120s", name, got)
		}
	}
	for _, name := range []string{"counters.ndjson", "trace.ndjson"} {
		if got := read(name); !strings.HasPrefix(got, `{"provenance":"replay harness=fct`) {
			t.Errorf("%s lacks provenance meta line:\n%.120s", name, got)
		}
	}
	if got := read("series_queue.l0-s0.0.csv"); strings.Contains(got, "provenance") {
		t.Errorf("series csv polluted with provenance:\n%.120s", got)
	}

	// Unstamped registries emit exactly the old format.
	r2 := New(All(filepath.Join(dir, "out2")))
	r2.Link("a").Enqueues = 1
	if err := r2.Flush(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "out2", "counters.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "group,name,counter,value") {
		t.Errorf("unstamped counters.csv changed:\n%.120s", b)
	}

	// nil-safety: stamping a nil registry is a no-op, not a panic.
	var nilReg *Registry
	nilReg.SetProvenance("x")
}
