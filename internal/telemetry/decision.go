package telemetry

import (
	"fmt"
	"math"
	"sort"

	"conga/internal/sim"
)

// DecisionReason classifies why a SelectUplink call produced its verdict.
type DecisionReason uint8

const (
	// ReasonSticky is a packet riding an active flowlet: no decision was
	// made, the packet followed the installed uplink.
	ReasonSticky DecisionReason = iota
	// ReasonNewFlowlet is the first flowlet of a flow (no prior entry in
	// the flowlet table).
	ReasonNewFlowlet
	// ReasonExpired is a flowlet whose inactivity gap elapsed, forcing a
	// fresh congestion-aware pick.
	ReasonExpired
	// ReasonEvicted is an active flowlet whose installed uplink became
	// unusable (link failure), forcing an immediate re-pick.
	ReasonEvicted
)

// String returns the reason name used in flushed decision files.
func (d DecisionReason) String() string {
	switch d {
	case ReasonSticky:
		return "sticky"
	case ReasonNewFlowlet:
		return "new-flowlet"
	case ReasonExpired:
		return "expired"
	case ReasonEvicted:
		return "evicted"
	}
	return "?"
}

// ParseDecisionReason inverts String.
func ParseDecisionReason(s string) (DecisionReason, bool) {
	switch s {
	case "sticky":
		return ReasonSticky, true
	case "new-flowlet":
		return ReasonNewFlowlet, true
	case "expired":
		return ReasonExpired, true
	case "evicted":
		return ReasonEvicted, true
	}
	return 0, false
}

// DecisionEvent is one recorded SelectUplink outcome.
type DecisionEvent struct {
	T       sim.Time
	SrcLeaf int
	DstLeaf int
	Uplink  int
	Reason  DecisionReason
	// AgeNs is the age of the winning uplink's remote congestion metric
	// since its last piggybacked feedback update, in simulated nanoseconds;
	// -1 means the entry had never been fed back (cold), or the event is a
	// sticky hit (no table consulted).
	AgeNs int64
	// Metrics is the candidate vector the decision minimized over:
	// combined max(local DRE, remote metric) per uplink. Empty for sticky
	// hits (the table is not consulted on that path).
	Metrics []uint8
}

// DecisionTrace is a bounded buffer of decision events with the same
// head/tail/reservoir capture policies as PacketTrace, minus filters and
// triggers. recorded+suppressed always equals the number of decisions seen.
type DecisionTrace struct {
	mode   CaptureMode
	events []DecisionEvent
	// Suppressed counts decisions not present in the retained set.
	Suppressed uint64
	seen       int

	start   int       // tail mode: ring index of the oldest retained event
	resSeen int       // reservoir mode: events offered to the reservoir
	rng     *sim.Rand // reservoir mode: private PRNG, never the engine's
}

func newDecisionTrace(capacity int, mode CaptureMode) *DecisionTrace {
	tr := &DecisionTrace{
		mode:   mode,
		events: make([]DecisionEvent, 0, capacity),
	}
	if mode == CaptureReservoir {
		tr.rng = sim.NewRand(reservoirSeed)
	}
	return tr
}

// record offers an event. metrics is copied into retained slots (reusing
// the evictee's backing array on overwrite, so a full trace stops
// allocating).
func (tr *DecisionTrace) record(t sim.Time, srcLeaf, dstLeaf, uplink int, reason DecisionReason, ageNs int64, metrics []uint8) {
	if tr == nil {
		return
	}
	tr.seen++
	ev := DecisionEvent{T: t, SrcLeaf: srcLeaf, DstLeaf: dstLeaf,
		Uplink: uplink, Reason: reason, AgeNs: ageNs}
	switch tr.mode {
	case CaptureTail:
		if len(tr.events) < cap(tr.events) {
			ev.Metrics = append([]uint8(nil), metrics...)
			tr.events = append(tr.events, ev)
		} else {
			ev.Metrics = append(tr.events[tr.start].Metrics[:0], metrics...)
			tr.events[tr.start] = ev
			tr.start++
			if tr.start == len(tr.events) {
				tr.start = 0
			}
			tr.Suppressed++ // the evicted oldest event
		}
	case CaptureReservoir:
		tr.resSeen++
		if len(tr.events) < cap(tr.events) {
			ev.Metrics = append([]uint8(nil), metrics...)
			tr.events = append(tr.events, ev)
		} else {
			if j := tr.rng.Intn(tr.resSeen); j < len(tr.events) {
				ev.Metrics = append(tr.events[j].Metrics[:0], metrics...)
				tr.events[j] = ev
			}
			tr.Suppressed++
		}
	default: // CaptureHead
		if len(tr.events) < cap(tr.events) {
			ev.Metrics = append([]uint8(nil), metrics...)
			tr.events = append(tr.events, ev)
		} else {
			tr.Suppressed++
		}
	}
}

// Mode returns the trace's capture mode.
func (tr *DecisionTrace) Mode() CaptureMode {
	if tr == nil {
		return CaptureHead
	}
	return tr.mode
}

// Events returns the recorded events in time order (same rotation/sorting
// contract as PacketTrace.Events).
func (tr *DecisionTrace) Events() []DecisionEvent {
	if tr == nil {
		return nil
	}
	switch tr.mode {
	case CaptureTail:
		if tr.start == 0 {
			return tr.events
		}
		out := make([]DecisionEvent, 0, len(tr.events))
		out = append(out, tr.events[tr.start:]...)
		out = append(out, tr.events[:tr.start]...)
		return out
	case CaptureReservoir:
		out := append([]DecisionEvent(nil), tr.events...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
		return out
	}
	return tr.events
}

// Len returns the number of recorded events.
func (tr *DecisionTrace) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.events)
}

// Info returns the trace's capture policy and outcome in the shared
// CaptureInfo shape (trigger fields stay zero: decision traces have no
// triggers). Safe on a nil receiver.
func (tr *DecisionTrace) Info() CaptureInfo {
	if tr == nil {
		return CaptureInfo{}
	}
	return CaptureInfo{
		Mode:       tr.mode,
		Cap:        cap(tr.events),
		Recorded:   len(tr.events),
		Seen:       tr.seen,
		Suppressed: tr.Suppressed,
	}
}

// DecisionHooks is the per-leaf decision-plane hook struct: core.Leaf holds
// a nil pointer to one (zero overhead when off) and reports every
// SelectUplink outcome through it. Each instance is written only by its
// owning leaf, so the space-parallel engine needs no sharding: leaves are
// domain-owned and the per-leaf structs merge deterministically (leaf
// order) at flush.
type DecisionHooks struct {
	Leaf    int
	uplinks int
	leaves  int

	// Reason counters (monotonic).
	Sticky, NewFlowlet, Expired, Evicted uint64
	// Cold counts congestion-aware picks whose winning table entry had
	// never received feedback (AgeNs = -1).
	Cold uint64

	// flowlets/bytes are the path load matrices, [uplink*leaves+dstLeaf]:
	// flowlet installs routed and payload bytes sent per
	// (uplink, destination leaf) pair.
	flowlets []uint64
	bytes    []uint64

	// Feedback-staleness accumulation window, drained by TakeStaleness at
	// the DRE safe point.
	staleSum int64
	staleN   int64

	trace *DecisionTrace // shared bounded trace; nil unless enabled (sequential only)
}

// Decision records one SelectUplink outcome. ageNs is the winning remote
// metric's feedback age (-1 = cold or sticky); metrics is the candidate
// vector (borrowed — copied if retained). Safe on a nil receiver so the
// core hook site is a single branch.
func (h *DecisionHooks) Decision(t sim.Time, dstLeaf, uplink int, reason DecisionReason, ageNs int64, metrics []uint8) {
	if h == nil {
		return
	}
	switch reason {
	case ReasonSticky:
		h.Sticky++
	case ReasonNewFlowlet:
		h.NewFlowlet++
	case ReasonExpired:
		h.Expired++
	case ReasonEvicted:
		h.Evicted++
	}
	if reason != ReasonSticky && uplink >= 0 {
		if i := uplink*h.leaves + dstLeaf; i < len(h.flowlets) {
			h.flowlets[i]++
		}
		if ageNs >= 0 {
			h.staleSum += ageNs
			h.staleN++
		} else {
			h.Cold++
		}
	}
	h.trace.record(t, h.Leaf, dstLeaf, uplink, reason, ageNs, metrics)
}

// AddBytes accounts payload bytes leaving on an uplink toward a
// destination leaf. Called by the fabric layer per uplink send; safe on a
// nil receiver.
func (h *DecisionHooks) AddBytes(uplink, dstLeaf, n int) {
	if h == nil || uplink < 0 {
		return
	}
	if i := uplink*h.leaves + dstLeaf; i < len(h.bytes) {
		h.bytes[i] += uint64(n)
	}
}

// TakeStaleness drains the feedback-staleness window: the mean feedback
// age (ns) over the congestion-aware decisions since the last call. ok is
// false when the window saw no aged decisions.
func (h *DecisionHooks) TakeStaleness() (mean float64, ok bool) {
	if h == nil || h.staleN == 0 {
		return 0, false
	}
	mean = float64(h.staleSum) / float64(h.staleN)
	h.staleSum, h.staleN = 0, 0
	return mean, true
}

// Decisions returns the number of congestion-aware (non-sticky) outcomes.
func (h *DecisionHooks) Decisions() uint64 {
	if h == nil {
		return 0
	}
	return h.NewFlowlet + h.Expired + h.Evicted
}

// PathRow is one non-empty cell of a leaf's path load matrix.
type PathRow struct {
	Leaf    int `json:"leaf"` // source leaf
	Uplink  int `json:"uplink"`
	DstLeaf int `json:"dst_leaf"`
	// Flowlets counts flowlet routings onto this (uplink, dstLeaf) path;
	// Bytes counts payload bytes sent on it.
	Flowlets uint64 `json:"flowlets"`
	Bytes    uint64 `json:"bytes"`
}

// PathSummary condenses one leaf's matrix into balance figures over its
// per-uplink byte totals.
type PathSummary struct {
	Leaf     int    `json:"leaf"`
	Flowlets uint64 `json:"flowlets"`
	Bytes    uint64 `json:"bytes"`
	// Imbalance is max/mean of per-uplink byte totals: 1.0 is a perfect
	// spread, k means the hottest uplink carries k× the average.
	Imbalance float64 `json:"imbalance"`
	// Entropy is the Shannon entropy of the uplink byte shares normalized
	// by log2(uplinks): 1.0 is uniform, 0 is single-path.
	Entropy float64 `json:"entropy"`
}

// Decisions returns (creating on first use) the decision hooks for a leaf,
// or nil when the decision plane is off — callers wire unconditionally,
// exactly like Link. uplinks and leaves size the path matrices.
func (r *Registry) Decisions(leaf, uplinks, leaves int) *DecisionHooks {
	if r == nil || !r.opts.Decisions {
		return nil
	}
	for _, h := range r.decisions {
		if h.Leaf == leaf {
			return h
		}
	}
	h := &DecisionHooks{
		Leaf:     leaf,
		uplinks:  uplinks,
		leaves:   leaves,
		flowlets: make([]uint64, uplinks*leaves),
		bytes:    make([]uint64, uplinks*leaves),
		trace:    r.decTrace,
	}
	r.decisions = append(r.decisions, h)
	return h
}

// DecisionTrace returns the shared bounded decision trace, or nil when
// disabled.
func (r *Registry) DecisionTrace() *DecisionTrace {
	if r == nil {
		return nil
	}
	return r.decTrace
}

// DecisionHooksAll returns every leaf's hooks sorted by leaf ID.
func (r *Registry) DecisionHooksAll() []*DecisionHooks {
	if r == nil {
		return nil
	}
	out := append([]*DecisionHooks(nil), r.decisions...)
	sort.Slice(out, func(i, j int) bool { return out[i].Leaf < out[j].Leaf })
	return out
}

// PathRows returns the non-empty path load matrix cells across every leaf,
// in (leaf, uplink, dstLeaf) order — the deterministic merge of the
// per-domain shards under the parallel engine.
func (r *Registry) PathRows() []PathRow {
	if r == nil {
		return nil
	}
	var rows []PathRow
	for _, h := range r.DecisionHooksAll() {
		for up := 0; up < h.uplinks; up++ {
			for dst := 0; dst < h.leaves; dst++ {
				i := up*h.leaves + dst
				if h.flowlets[i] == 0 && h.bytes[i] == 0 {
					continue
				}
				rows = append(rows, PathRow{Leaf: h.Leaf, Uplink: up,
					DstLeaf: dst, Flowlets: h.flowlets[i], Bytes: h.bytes[i]})
			}
		}
	}
	return rows
}

// PathSummaries returns one balance summary per leaf with any recorded
// path activity, sorted by leaf.
func (r *Registry) PathSummaries() []PathSummary {
	if r == nil {
		return nil
	}
	var out []PathSummary
	for _, h := range r.DecisionHooksAll() {
		s := PathSummary{Leaf: h.Leaf}
		perUp := make([]uint64, h.uplinks)
		for up := 0; up < h.uplinks; up++ {
			for dst := 0; dst < h.leaves; dst++ {
				i := up*h.leaves + dst
				s.Flowlets += h.flowlets[i]
				s.Bytes += h.bytes[i]
				perUp[up] += h.bytes[i]
			}
		}
		if s.Flowlets == 0 && s.Bytes == 0 {
			continue
		}
		s.Imbalance, s.Entropy = balance(perUp)
		out = append(out, s)
	}
	return out
}

// balance computes max/mean imbalance and normalized Shannon entropy over
// per-uplink byte totals.
func balance(perUp []uint64) (imbalance, entropy float64) {
	var total, max uint64
	for _, b := range perUp {
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 || len(perUp) == 0 {
		return 0, 0
	}
	mean := float64(total) / float64(len(perUp))
	imbalance = float64(max) / mean
	if len(perUp) == 1 {
		return imbalance, 1
	}
	for _, b := range perUp {
		if b == 0 {
			continue
		}
		p := float64(b) / float64(total)
		entropy -= p * math.Log2(p)
	}
	entropy /= math.Log2(float64(len(perUp)))
	return imbalance, entropy
}

// PathMatrix arranges path rows into a dense labeled matrix for rendering
// (plot.Heatmap): one matrix row per (source leaf, uplink) pair with any
// activity, one column per destination leaf, cell values in bytes — or
// flowlet counts when no byte accounting was recorded (unit reports
// which). Rows must be in PathRows order.
func PathMatrix(rows []PathRow) (rowLabels, colLabels []string, values [][]float64, unit string) {
	if len(rows) == 0 {
		return nil, nil, nil, ""
	}
	var totalBytes uint64
	dstSet := map[int]bool{}
	for _, r := range rows {
		totalBytes += r.Bytes
		dstSet[r.DstLeaf] = true
	}
	dsts := make([]int, 0, len(dstSet))
	for d := range dstSet {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	dstCol := make(map[int]int, len(dsts))
	for c, d := range dsts {
		dstCol[d] = c
		colLabels = append(colLabels, fmt.Sprintf("→l%d", d))
	}
	unit = "bytes"
	if totalBytes == 0 {
		unit = "flowlets"
	}
	curLeaf, curUp := -1, -1
	for _, r := range rows {
		if r.Leaf != curLeaf || r.Uplink != curUp {
			curLeaf, curUp = r.Leaf, r.Uplink
			rowLabels = append(rowLabels, fmt.Sprintf("l%d up%d", r.Leaf, r.Uplink))
			values = append(values, make([]float64, len(dsts)))
		}
		v := float64(r.Bytes)
		if totalBytes == 0 {
			v = float64(r.Flowlets)
		}
		values[len(values)-1][dstCol[r.DstLeaf]] = v
	}
	return rowLabels, colLabels, values, unit
}

// DecisionTotals sums the per-leaf reason counters.
type DecisionTotals struct {
	Sticky, NewFlowlet, Expired, Evicted, Cold uint64
}

// DecisionTotals sums reason counters across every leaf's hooks.
func (r *Registry) DecisionTotals() DecisionTotals {
	var t DecisionTotals
	if r == nil {
		return t
	}
	for _, h := range r.decisions {
		t.Sticky += h.Sticky
		t.NewFlowlet += h.NewFlowlet
		t.Expired += h.Expired
		t.Evicted += h.Evicted
		t.Cold += h.Cold
	}
	return t
}
