package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hub collects the streaming taps of one or more runs so a single HTTP
// server can expose them. Registries attach themselves at New time (via
// Options.Hub); parallel sweeps attach one tap per run from worker
// goroutines, so the registration map is mutex-protected — but reads of the
// taps themselves stay lock-free (Tap.Load).
type Hub struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*Tap
	auto   int

	// archives are finished runs' flushed telemetry directories, in
	// registration order, so the dashboard stays a browsable archive after
	// the live taps go quiet.
	archives []Archive

	sweep func() (done, total int)
}

// Archive is one finished run's flushed telemetry directory as listed on
// the hub index: the run name, the directory, and its sink file names.
type Archive struct {
	Name  string   `json:"name"`
	Dir   string   `json:"dir"`
	Files []string `json:"files"`
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{byName: map[string]*Tap{}}
}

// Attach registers a tap under name ("" = auto "run-N") and returns the
// name used. Re-attaching a name replaces the previous tap (congabench
// reuses tags across sections).
func (h *Hub) Attach(name string, tap *Tap) string {
	if h == nil || tap == nil {
		return name
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if name == "" {
		h.auto++
		name = fmt.Sprintf("run-%d", h.auto)
	}
	if _, ok := h.byName[name]; !ok {
		h.order = append(h.order, name)
	}
	h.byName[name] = tap
	return name
}

func (h *Hub) attach(name string, tap *Tap) { h.Attach(name, tap) }

// AddArchive registers a finished run's flushed telemetry directory under
// name ("" = the directory's base name) and returns the name used. The
// directory is listed once (re-registering a name replaces its entry), and
// only plain files present at registration time are ever served — the
// /files/ handler rejects anything else.
func (h *Hub) AddArchive(name, dir string) string {
	if h == nil || dir == "" {
		return name
	}
	if name == "" {
		name = filepath.Base(dir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return name
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.archives {
		if h.archives[i].Name == name {
			h.archives[i] = Archive{Name: name, Dir: dir, Files: files}
			return name
		}
	}
	h.archives = append(h.archives, Archive{Name: name, Dir: dir, Files: files})
	return name
}

// Archives returns the registered finished-run directories in registration
// order.
func (h *Hub) Archives() []Archive {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Archive(nil), h.archives...)
}

// handleFiles serves one sink file of a registered archive:
// GET /files/<run>/<file>. Only file names recorded by AddArchive are
// served (no path traversal: the request path must match a listed name
// exactly).
func (h *Hub) handleFiles(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/files/")
	run, file, ok := strings.Cut(rest, "/")
	if !ok || file == "" || strings.Contains(file, "/") {
		http.NotFound(w, r)
		return
	}
	for _, a := range h.Archives() {
		if a.Name != run {
			continue
		}
		for _, f := range a.Files {
			if f == file {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				http.ServeFile(w, r, filepath.Join(a.Dir, f))
				return
			}
		}
	}
	http.NotFound(w, r)
}

// SetSweepProgress registers a closure reporting sweep-level progress
// (runs finished / total), shown on the index and overview stream.
func (h *Hub) SetSweepProgress(fn func() (done, total int)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sweep = fn
	h.mu.Unlock()
}

// Runs returns the attached run names in attach order.
func (h *Hub) Runs() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// Run returns the named run's tap, or — for name "" — the first attached
// run's tap. Returns nil when absent.
func (h *Hub) Run(name string) *Tap {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if name == "" && len(h.order) > 0 {
		name = h.order[0]
	}
	return h.byName[name]
}

// runJSON is the wire form of one run's headline state.
type runJSON struct {
	Name         string  `json:"name"`
	Seq          uint64  `json:"seq"`
	SimTimeNs    int64   `json:"sim_time_ns"`
	WallNs       int64   `json:"wall_ns"`
	Done         bool    `json:"done"`
	FlowsGen     int     `json:"flows_generated"`
	FlowsDone    int     `json:"flows_completed"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

func runHeadline(name string, s, prev *Snapshot) runJSON {
	r := runJSON{Name: name}
	if s == nil {
		return r
	}
	r.Seq = s.Seq
	r.SimTimeNs = int64(s.SimTime)
	r.WallNs = s.Wall
	r.Done = s.Done
	r.FlowsGen = s.Progress.FlowsGenerated
	r.FlowsDone = s.Progress.FlowsCompleted
	r.Events = s.Progress.Events
	if prev != nil && s.Wall > prev.Wall && s.Progress.Events >= prev.Progress.Events {
		dt := float64(s.Wall-prev.Wall) / 1e9
		r.EventsPerSec = float64(s.Progress.Events-prev.Progress.Events) / dt
	}
	return r
}

// Handler returns the hub's HTTP handler:
//
//	GET /                  run overview + sweep progress (JSON; an Accept
//	                       header preferring text/html gets the browsable
//	                       dashboard with inline-SVG charts instead)
//	GET /counters?run=R    latest counter rows for run R (JSON)
//	GET /series?run=R      series names for run R (JSON)
//	GET /series/NAME?run=R latest retained points of one series (JSON)
//	GET /stream?run=R      SSE stream of run R's snapshots (series deltas)
//	GET /stream            SSE stream of the run overview
//
// Every response is derived from immutable snapshots obtained via Tap.Load,
// so handlers never synchronize with — and can never perturb — the engines.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.handleIndex)
	mux.HandleFunc("/counters", h.handleCounters)
	mux.HandleFunc("/series", h.handleSeriesIndex)
	mux.HandleFunc("/series/", h.handleSeries)
	mux.HandleFunc("/stream", h.handleStream)
	mux.HandleFunc("/files/", h.handleFiles)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (h *Hub) overview() map[string]any {
	h.mu.Lock()
	names := append([]string(nil), h.order...)
	taps := make([]*Tap, len(names))
	for i, n := range names {
		taps[i] = h.byName[n]
	}
	sweep := h.sweep
	h.mu.Unlock()

	runs := make([]runJSON, 0, len(names))
	for i, n := range names {
		runs = append(runs, runHeadline(n, taps[i].Load(), nil))
	}
	out := map[string]any{"runs": runs}
	if ar := h.Archives(); len(ar) > 0 {
		out["archives"] = ar
	}
	if sweep != nil {
		done, total := sweep()
		out["sweep"] = map[string]int{"done": done, "total": total}
	}
	return out
}

func (h *Hub) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if wantsHTML(r) {
		h.handleDashboard(w, r)
		return
	}
	writeJSON(w, h.overview())
}

// tapFor resolves the ?run= parameter; on failure it writes a 404 listing
// the known runs and returns nil.
func (h *Hub) tapFor(w http.ResponseWriter, r *http.Request) (string, *Tap) {
	name := r.URL.Query().Get("run")
	tap := h.Run(name)
	if tap == nil {
		http.Error(w, fmt.Sprintf("unknown run %q (runs: %s)", name, strings.Join(h.Runs(), ", ")), http.StatusNotFound)
		return "", nil
	}
	if name == "" && len(h.Runs()) > 0 {
		name = h.Runs()[0]
	}
	return name, tap
}

func (h *Hub) handleCounters(w http.ResponseWriter, r *http.Request) {
	name, tap := h.tapFor(w, r)
	if tap == nil {
		return
	}
	s := tap.Load()
	if s == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"run": name, "seq": s.Seq, "sim_time_ns": int64(s.SimTime),
		"done": s.Done, "counters": s.Counters,
	})
}

func (h *Hub) handleSeriesIndex(w http.ResponseWriter, r *http.Request) {
	name, tap := h.tapFor(w, r)
	if tap == nil {
		return
	}
	s := tap.Load()
	if s == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	names := make([]string, 0, len(s.Series))
	for _, sr := range s.Series {
		names = append(names, sr.Name)
	}
	sort.Strings(names)
	writeJSON(w, map[string]any{"run": name, "seq": s.Seq, "series": names})
}

// seriesJSON is the wire form of one series (also consumed by congaplot).
type seriesJSON struct {
	Run    string   `json:"run"`
	Probe  string   `json:"probe"`
	Unit   string   `json:"unit"`
	Stride int      `json:"stride"`
	Points [][2]any `json:"points"` // [time_ns, value]
}

func (h *Hub) handleSeries(w http.ResponseWriter, r *http.Request) {
	probe := strings.TrimPrefix(r.URL.Path, "/series/")
	name, tap := h.tapFor(w, r)
	if tap == nil {
		return
	}
	s := tap.Load()
	if s == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	for _, sr := range s.Series {
		if sr.Name == probe || sanitizeName(sr.Name) == probe {
			out := seriesJSON{Run: name, Probe: sr.Name, Unit: sr.Unit, Stride: sr.Stride}
			out.Points = make([][2]any, 0, len(sr.Points))
			for _, p := range sr.Points {
				out.Points = append(out.Points, [2]any{int64(p.T), p.V})
			}
			writeJSON(w, out)
			return
		}
	}
	http.Error(w, fmt.Sprintf("unknown series %q", probe), http.StatusNotFound)
}

// streamPoll is how often SSE handlers re-check the tap for a new snapshot.
var streamPoll = 200 * time.Millisecond

func sseSetup(w http.ResponseWriter) (http.Flusher, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	return fl, true
}

func sseEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	fl.Flush()
}

func (h *Hub) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("run") == "" && len(h.Runs()) != 1 {
		h.streamOverview(w, r)
		return
	}
	name, tap := h.tapFor(w, r)
	if tap == nil {
		return
	}
	fl, ok := sseSetup(w)
	if !ok {
		return
	}
	ticker := time.NewTicker(streamPoll)
	defer ticker.Stop()
	var prev *Snapshot
	for {
		s := tap.Load()
		if s != nil && (prev == nil || s.Seq != prev.Seq) {
			msg := map[string]any{
				"run":      runHeadline(name, s, prev),
				"counters": s.Counters,
				"series":   s.DeltaSince(prev),
			}
			sseEvent(w, fl, "snapshot", msg)
			prev = s
			if s.Done {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// streamOverview streams the run overview until every attached run is done.
func (h *Hub) streamOverview(w http.ResponseWriter, r *http.Request) {
	fl, ok := sseSetup(w)
	if !ok {
		return
	}
	ticker := time.NewTicker(streamPoll)
	defer ticker.Stop()
	var lastSum uint64
	first := true
	for {
		ov := h.overview()
		runs := ov["runs"].([]runJSON)
		var sum uint64
		allDone := len(runs) > 0
		for _, rj := range runs {
			sum += rj.Seq
			if !rj.Done {
				allDone = false
			}
		}
		if first || sum != lastSum {
			sseEvent(w, fl, "overview", ov)
			lastSum = sum
			first = false
			if allDone {
				return
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// Server is a running live-telemetry HTTP server.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an HTTP server for the hub on addr and returns immediately;
// the server runs until Close. Readers it serves only ever Load published
// snapshots, so serving during a run is safe by construction.
func Serve(addr string, h *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
