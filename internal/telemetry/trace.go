package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"conga/internal/sim"
)

// TraceKind classifies a packet-trace event.
type TraceKind uint8

const (
	// TraceSend is a host handing a packet to its access link.
	TraceSend TraceKind = iota
	// TraceRecv is a host delivering a packet to its transport.
	TraceRecv
	// TraceDrop is a link discarding a packet (tail drop or link down).
	TraceDrop
)

// String returns the event name used in flushed trace files.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	case TraceDrop:
		return "drop"
	}
	return "?"
}

// Filter restricts the packet trace by flow 5-tuple. Negative fields match
// anything; the zero value is normalized to match-all (flow IDs and host
// indices of 0 are never used as filter targets via a zero value — set
// SampleEvery or a field explicitly to opt in).
type Filter struct {
	// FlowID matches Packet.FlowID when >= 0.
	FlowID int64
	// SrcHost, DstHost, SrcPort, DstPort match the corresponding packet
	// fields when >= 0.
	SrcHost, DstHost, SrcPort, DstPort int
	// SampleEvery keeps 1 of every N matching events (0 and 1 both mean
	// every event).
	SampleEvery int
}

// MatchAll returns the filter that keeps every event.
func MatchAll() Filter {
	return Filter{FlowID: -1, SrcHost: -1, DstHost: -1, SrcPort: -1, DstPort: -1, SampleEvery: 1}
}

func (f Filter) normalized() Filter {
	if f == (Filter{}) {
		return MatchAll()
	}
	if f.SampleEvery < 1 {
		f.SampleEvery = 1
	}
	return f
}

// CaptureMode selects which matching events a full PacketTrace retains.
type CaptureMode uint8

const (
	// CaptureHead keeps the first TraceCap matching events and suppresses
	// the rest: cheapest mode, right for "how does the run start".
	CaptureHead CaptureMode = iota
	// CaptureTail is the flight recorder: a ring that overwrites the
	// oldest retained event, so the trace always holds the last TraceCap
	// events before the run (or a trigger) stopped it.
	CaptureTail
	// CaptureReservoir keeps a uniform random sample of all matching
	// events (Vitter's Algorithm R) using a private deterministic PRNG,
	// for an unbiased whole-run picture at bounded memory.
	CaptureReservoir
)

// String returns the mode name used in flushed trace headers.
func (m CaptureMode) String() string {
	switch m {
	case CaptureHead:
		return "head"
	case CaptureTail:
		return "tail"
	case CaptureReservoir:
		return "reservoir"
	}
	return "?"
}

// ParseCaptureMode parses "head", "tail" or "reservoir" (as accepted by the
// CLI -trace-mode flags and emitted by String).
func ParseCaptureMode(s string) (CaptureMode, error) {
	switch s {
	case "head", "":
		return CaptureHead, nil
	case "tail":
		return CaptureTail, nil
	case "reservoir":
		return CaptureReservoir, nil
	}
	return 0, fmt.Errorf("telemetry: unknown capture mode %q (want head, tail or reservoir)", s)
}

// Trigger is a bitmask of conditions that freeze the trace (after an
// optional TraceStopAfter countdown), flight-recorder style: the buffer
// stops evolving so it holds the events leading up to the condition.
type Trigger uint8

const (
	// TriggerFirstDrop freezes the trace when the first TraceDrop event is
	// recorded (detected inside Record, before the filter runs, so a
	// flow-filtered trace still stops on any drop in the fabric).
	TriggerFirstDrop Trigger = 1 << iota
	// TriggerFirstRTO freezes the trace when the first TCP retransmission
	// timeout fires anywhere on the engine (via PacketTrace.TriggerRTO,
	// called from the sender's timeout path).
	TriggerFirstRTO
)

// String returns the trigger names ("first-drop", "first-rto",
// "first-drop|first-rto", or "none") used in flushed trace headers.
func (g Trigger) String() string {
	var parts []string
	if g&TriggerFirstDrop != 0 {
		parts = append(parts, "first-drop")
	}
	if g&TriggerFirstRTO != 0 {
		parts = append(parts, "first-rto")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ParseTrigger parses a trigger spec: "", "none", or a |-separated list of
// "first-drop" / "first-rto" / "drop" / "rto".
func ParseTrigger(s string) (Trigger, error) {
	var g Trigger
	if s == "" || s == "none" {
		return 0, nil
	}
	for _, part := range strings.Split(s, "|") {
		switch part {
		case "first-drop", "drop":
			g |= TriggerFirstDrop
		case "first-rto", "rto":
			g |= TriggerFirstRTO
		default:
			return 0, fmt.Errorf("telemetry: unknown trace trigger %q (want first-drop, first-rto or none)", part)
		}
	}
	return g, nil
}

// TraceEvent is one recorded packet event.
type TraceEvent struct {
	T       sim.Time
	Kind    TraceKind
	Where   string // host or link name
	FlowID  uint64
	Src     int
	Dst     int
	SrcPort int
	DstPort int
	Seq     int64
	Payload int
}

// reservoirSeed is the fixed seed for the reservoir's private PRNG. The
// stream is independent of every engine PRNG (the trace never consumes
// engine randomness), so reservoir tracing cannot perturb the simulation,
// and a fixed seed keeps the retained sample reproducible across runs.
const reservoirSeed = 0x9e3779b97f4a7c15

// PacketTrace is a bounded buffer of packet events matched by a Filter.
// What happens when it fills depends on the CaptureMode: head stops
// recording, tail overwrites the oldest event, reservoir keeps a uniform
// sample. Every retained-set eviction (and every event recorded-then-
// overwritten) bumps Suppressed, so recorded+suppressed always equals the
// number of matching events seen.
//
// A Trigger freezes the buffer when its condition first fires (after
// recording StopAfter further events), answering "what happened right
// before the collapse" without post-processing.
type PacketTrace struct {
	filter Filter
	mode   CaptureMode
	events []TraceEvent
	// Suppressed counts matching events not present in the retained set:
	// capacity-suppressed (head), ring-evicted (tail), not-retained
	// (reservoir), and events arriving after a trigger froze the buffer.
	Suppressed uint64
	seen       int // matching events observed, for SampleEvery

	start   int       // tail mode: ring index of the oldest retained event
	resSeen int       // reservoir mode: events offered to the reservoir
	rng     *sim.Rand // reservoir mode: private PRNG, never the engine's

	trigger   Trigger
	stopAfter int // events still recorded after the trigger fires
	frozen    bool

	// Triggered reports whether a trigger condition fired; TriggeredAt and
	// TriggerReason record when and which ("first-drop", "first-rto", or a
	// caller-supplied reason via TriggerStop).
	Triggered     bool
	TriggeredAt   sim.Time
	TriggerReason string
}

func newPacketTrace(capacity int, f Filter, mode CaptureMode, trigger Trigger, stopAfter int) *PacketTrace {
	tr := &PacketTrace{
		filter:  f,
		mode:    mode,
		events:  make([]TraceEvent, 0, capacity),
		trigger: trigger,
	}
	if stopAfter > 0 {
		tr.stopAfter = stopAfter
	}
	if mode == CaptureReservoir {
		tr.rng = sim.NewRand(reservoirSeed)
	}
	return tr
}

// Mode returns the trace's capture mode.
func (tr *PacketTrace) Mode() CaptureMode {
	if tr == nil {
		return CaptureHead
	}
	return tr.mode
}

// Record offers an event to the trace. Trigger conditions are evaluated
// before the filter, then the event is recorded if it matches and the
// buffer's capture mode retains it. Scalar parameters (rather than a packet
// struct) keep telemetry free of a fabric dependency. Safe on a nil
// receiver.
func (tr *PacketTrace) Record(t sim.Time, kind TraceKind, where string, flowID uint64, src, dst, sport, dport int, seq int64, payload int) {
	if tr == nil {
		return
	}
	firedNow := false
	if kind == TraceDrop && tr.trigger&TriggerFirstDrop != 0 && !tr.Triggered {
		// Fire but don't freeze yet: the triggering drop itself is the
		// event of interest and must be retained (when it matches the
		// filter) before the countdown starts.
		tr.Triggered = true
		tr.TriggeredAt = t
		tr.TriggerReason = "first-drop"
		firedNow = true
	}
	f := &tr.filter
	match := true
	switch {
	case f.FlowID >= 0 && uint64(f.FlowID) != flowID:
		match = false
	case f.SrcHost >= 0 && f.SrcHost != src:
		match = false
	case f.DstHost >= 0 && f.DstHost != dst:
		match = false
	case f.SrcPort >= 0 && f.SrcPort != sport:
		match = false
	case f.DstPort >= 0 && f.DstPort != dport:
		match = false
	}
	if !match {
		// A triggering drop outside the filter still freezes the buffer
		// once its countdown is spent.
		if firedNow && tr.stopAfter == 0 {
			tr.frozen = true
		}
		return
	}
	tr.seen++
	if f.SampleEvery > 1 && (tr.seen-1)%f.SampleEvery != 0 {
		if firedNow && tr.stopAfter == 0 {
			tr.frozen = true
		}
		return
	}
	if tr.frozen {
		tr.Suppressed++
		return
	}
	ev := TraceEvent{
		T: t, Kind: kind, Where: where, FlowID: flowID,
		Src: src, Dst: dst, SrcPort: sport, DstPort: dport,
		Seq: seq, Payload: payload,
	}
	switch tr.mode {
	case CaptureTail:
		if len(tr.events) < cap(tr.events) {
			tr.events = append(tr.events, ev)
		} else {
			tr.events[tr.start] = ev
			tr.start++
			if tr.start == len(tr.events) {
				tr.start = 0
			}
			tr.Suppressed++ // the evicted oldest event
		}
	case CaptureReservoir:
		tr.resSeen++
		if len(tr.events) < cap(tr.events) {
			tr.events = append(tr.events, ev)
		} else {
			// Algorithm R: replace a uniform slot with probability
			// cap/resSeen. Either the current event or the one it evicts
			// ends up outside the retained set, so Suppressed++ both ways.
			if j := tr.rng.Intn(tr.resSeen); j < len(tr.events) {
				tr.events[j] = ev
			}
			tr.Suppressed++
		}
	default: // CaptureHead
		if len(tr.events) < cap(tr.events) {
			tr.events = append(tr.events, ev)
		} else {
			tr.Suppressed++
			return
		}
	}
	if tr.Triggered {
		// The triggering event itself does not consume the countdown:
		// StopAfter counts further events recorded past the trigger.
		if firedNow {
			if tr.stopAfter == 0 {
				tr.frozen = true
			}
			return
		}
		if tr.stopAfter > 0 {
			tr.stopAfter--
		}
		if tr.stopAfter == 0 {
			tr.frozen = true
		}
	}
}

// TriggerRTO notifies the trace that a TCP retransmission timeout fired;
// it freezes the buffer when TriggerFirstRTO is armed. Safe on a nil
// receiver, so the sender's timeout path needs no enable check.
func (tr *PacketTrace) TriggerRTO(now sim.Time) {
	if tr == nil || tr.trigger&TriggerFirstRTO == 0 || tr.Triggered {
		return
	}
	tr.fire(now, "first-rto")
}

// TriggerStop manually fires the flight-recorder stop (the harness or a
// test deciding "this is the moment of interest"). Safe on a nil receiver;
// a second trigger is ignored.
func (tr *PacketTrace) TriggerStop(now sim.Time, reason string) {
	if tr == nil || tr.Triggered {
		return
	}
	tr.fire(now, reason)
}

func (tr *PacketTrace) fire(now sim.Time, reason string) {
	tr.Triggered = true
	tr.TriggeredAt = now
	tr.TriggerReason = reason
	if tr.stopAfter == 0 {
		tr.frozen = true
	}
}

// Frozen reports whether a trigger has stopped the trace.
func (tr *PacketTrace) Frozen() bool {
	return tr != nil && tr.frozen
}

// Events returns the recorded events in time order. In head and reservoir
// mode before rotation is needed the slice may alias the buffer; callers
// must not modify it. Tail mode returns a rotated copy (oldest first);
// reservoir mode returns a time-sorted copy.
func (tr *PacketTrace) Events() []TraceEvent {
	if tr == nil {
		return nil
	}
	switch tr.mode {
	case CaptureTail:
		if tr.start == 0 {
			return tr.events
		}
		out := make([]TraceEvent, 0, len(tr.events))
		out = append(out, tr.events[tr.start:]...)
		out = append(out, tr.events[:tr.start]...)
		return out
	case CaptureReservoir:
		// Events enter in time order but replacements scramble slots;
		// re-sort by time for presentation. Ties keep slot order, which is
		// deterministic for a fixed seed.
		out := append([]TraceEvent(nil), tr.events...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
		return out
	}
	return tr.events
}

// Len returns the number of recorded events.
func (tr *PacketTrace) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.events)
}

// CaptureInfo is the trace's capture policy and outcome, emitted as a
// header by the sinks and summarized by cmd/congatrace.
type CaptureInfo struct {
	Mode          CaptureMode
	Cap           int
	Recorded      int
	Seen          int // matching events observed (before SampleEvery)
	Suppressed    uint64
	Trigger       Trigger
	Triggered     bool
	TriggeredAt   sim.Time
	TriggerReason string
}

// Info returns the trace's capture policy and outcome. Safe on a nil
// receiver (zero value).
func (tr *PacketTrace) Info() CaptureInfo {
	if tr == nil {
		return CaptureInfo{}
	}
	return CaptureInfo{
		Mode:          tr.mode,
		Cap:           cap(tr.events),
		Recorded:      len(tr.events),
		Seen:          tr.seen,
		Suppressed:    tr.Suppressed,
		Trigger:       tr.trigger,
		Triggered:     tr.Triggered,
		TriggeredAt:   tr.TriggeredAt,
		TriggerReason: tr.TriggerReason,
	}
}
