package telemetry

import "conga/internal/sim"

// TraceKind classifies a packet-trace event.
type TraceKind uint8

const (
	// TraceSend is a host handing a packet to its access link.
	TraceSend TraceKind = iota
	// TraceRecv is a host delivering a packet to its transport.
	TraceRecv
	// TraceDrop is a link discarding a packet (tail drop or link down).
	TraceDrop
)

// String returns the event name used in flushed trace files.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	case TraceDrop:
		return "drop"
	}
	return "?"
}

// Filter restricts the packet trace by flow 5-tuple. Negative fields match
// anything; the zero value is normalized to match-all (flow IDs and host
// indices of 0 are never used as filter targets via a zero value — set
// SampleEvery or a field explicitly to opt in).
type Filter struct {
	// FlowID matches Packet.FlowID when >= 0.
	FlowID int64
	// SrcHost, DstHost, SrcPort, DstPort match the corresponding packet
	// fields when >= 0.
	SrcHost, DstHost, SrcPort, DstPort int
	// SampleEvery keeps 1 of every N matching events (0 and 1 both mean
	// every event).
	SampleEvery int
}

// MatchAll returns the filter that keeps every event.
func MatchAll() Filter {
	return Filter{FlowID: -1, SrcHost: -1, DstHost: -1, SrcPort: -1, DstPort: -1, SampleEvery: 1}
}

func (f Filter) normalized() Filter {
	if f == (Filter{}) {
		return MatchAll()
	}
	if f.SampleEvery < 1 {
		f.SampleEvery = 1
	}
	return f
}

// TraceEvent is one recorded packet event.
type TraceEvent struct {
	T       sim.Time
	Kind    TraceKind
	Where   string // host or link name
	FlowID  uint64
	Src     int
	Dst     int
	SrcPort int
	DstPort int
	Seq     int64
	Payload int
}

// PacketTrace is a bounded buffer of packet events matched by a Filter.
// Once full it stops recording and counts suppressed events, so a trace can
// be left on for a whole run without unbounded growth.
type PacketTrace struct {
	filter Filter
	events []TraceEvent
	// Suppressed counts matching events dropped after the buffer filled.
	Suppressed uint64
	seen       int // matching events observed, for SampleEvery
}

func newPacketTrace(capacity int, f Filter) *PacketTrace {
	return &PacketTrace{filter: f, events: make([]TraceEvent, 0, capacity)}
}

// Record appends an event if it matches the filter and the buffer has room.
// Scalar parameters (rather than a packet struct) keep telemetry free of a
// fabric dependency. Safe on a nil receiver.
func (tr *PacketTrace) Record(t sim.Time, kind TraceKind, where string, flowID uint64, src, dst, sport, dport int, seq int64, payload int) {
	if tr == nil {
		return
	}
	f := &tr.filter
	if f.FlowID >= 0 && uint64(f.FlowID) != flowID {
		return
	}
	if f.SrcHost >= 0 && f.SrcHost != src {
		return
	}
	if f.DstHost >= 0 && f.DstHost != dst {
		return
	}
	if f.SrcPort >= 0 && f.SrcPort != sport {
		return
	}
	if f.DstPort >= 0 && f.DstPort != dport {
		return
	}
	tr.seen++
	if f.SampleEvery > 1 && (tr.seen-1)%f.SampleEvery != 0 {
		return
	}
	if len(tr.events) == cap(tr.events) {
		tr.Suppressed++
		return
	}
	tr.events = append(tr.events, TraceEvent{
		T: t, Kind: kind, Where: where, FlowID: flowID,
		Src: src, Dst: dst, SrcPort: sport, DstPort: dport,
		Seq: seq, Payload: payload,
	})
}

// Events returns the recorded events in time order. The slice aliases the
// buffer; callers must not modify it.
func (tr *PacketTrace) Events() []TraceEvent {
	if tr == nil {
		return nil
	}
	return tr.events
}

// Len returns the number of recorded events.
func (tr *PacketTrace) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.events)
}
