// Package telemetry is the observability subsystem for the simulator: a
// per-engine Registry of monotonic counters, fixed-capacity time-series
// probes, and an optional packet trace, flushed to CSV/NDJSON sinks after a
// run completes.
//
// Design constraints, in priority order:
//
//  1. Zero overhead when off. Hot-path objects (links, hosts, TCP senders)
//     hold a nil pointer to their hook struct; every instrumentation site is
//     a single nil check. No registry, no map lookups, no interfaces on the
//     packet path.
//  2. Observation never perturbs the simulation. Probes read state and bump
//     plain uint64 fields; they never schedule events, never consume random
//     numbers, and sinks only run after the engine has stopped. A run with
//     telemetry enabled executes the exact same event sequence — same
//     event count, same FCTs, same goodput — as one without.
//  3. Per-engine isolation. A Registry belongs to exactly one engine and is
//     not synchronized; parallel sweeps (internal/runner) give every engine
//     its own registry and never share one across goroutines.
//
// The package depends only on internal/sim and the standard library, so any
// layer (fabric, tcp, experiment harness) can hold hook structs without
// import cycles.
package telemetry

import (
	"fmt"
	"sort"
	"time"

	"conga/internal/sim"
)

// Options selects which probes a Registry activates. The zero value enables
// nothing; see All for the everything-on configuration the CLI -telemetry
// flag uses.
type Options struct {
	// Counters enables the monotonic counter hooks: per-link
	// enqueue/dequeue/drop and CE marks, per-leaf flowlet
	// create/expire/evict, and engine-wide TCP loss-recovery counters.
	Counters bool
	// Series enables the ring-buffer time-series probes (queue depth, DRE
	// register, flowlet-table occupancy, congestion-table metrics).
	Series bool
	// SeriesCap bounds each series' sample count; when a buffer fills it
	// halves its resolution instead of growing (see Series). Default 4096.
	SeriesCap int
	// Trace enables the packet trace sampler.
	Trace bool
	// TraceCap bounds the number of recorded trace events (default 65536);
	// once full, further events only bump the trace's Suppressed counter.
	TraceCap int
	// TraceFilter restricts the trace to matching packets. The zero value
	// matches everything.
	TraceFilter Filter
	// TraceMode selects what a full trace keeps: the head of the run
	// (default), the tail (flight recorder), or a uniform reservoir.
	TraceMode CaptureMode
	// TraceTrigger freezes the trace when a condition first fires (first
	// drop, first RTO); zero means never.
	TraceTrigger Trigger
	// TraceStopAfter records this many further matching events after the
	// trigger before freezing (0 = freeze at the trigger).
	TraceStopAfter int
	// Decisions enables the decision-plane hooks: per-leaf flowlet routing
	// reason counters, per-(uplink, dstLeaf) path load matrices, and the
	// feedback-staleness series. Per-leaf state only, so it works under the
	// space-parallel engine.
	Decisions bool
	// DecisionTrace additionally records individual SelectUplink outcomes
	// into one bounded audit buffer (requires Decisions). A single shared
	// buffer, so it is rejected under the parallel engine.
	DecisionTrace bool
	// DecisionCap bounds the decision trace (default 65536).
	DecisionCap int
	// DecisionMode selects what a full decision trace keeps, with the same
	// head/tail/reservoir semantics as TraceMode.
	DecisionMode CaptureMode
	// Tap enables the lock-free streaming tap: the engine publishes
	// immutable snapshots at collector safe points for concurrent readers
	// (the HTTP live endpoint, tests, monitoring goroutines).
	Tap bool
	// TapInterval is the minimum simulated time between tap snapshots
	// (default 1ms sim time).
	TapInterval sim.Time
	// TapWall is the minimum wall-clock time between tap snapshots
	// (default 100ms; negative disables the wall gate). It bounds snapshot
	// copying cost on fast runs without touching simulated behavior:
	// whether a safe point publishes is invisible to the simulation.
	TapWall time.Duration
	// Hub, when non-nil, receives the registry's tap at New time under
	// RunName, so an HTTP server can discover runs as a sweep starts them.
	Hub *Hub
	// RunName labels this registry's tap on the Hub ("" = auto "run-N").
	RunName string
	// Dir, when non-empty, is where Flush writes one CSV and one NDJSON
	// file per probe.
	Dir string
}

// All returns Options with every probe enabled at default capacities,
// flushing to dir ("" = keep in memory only).
func All(dir string) Options {
	return Options{Counters: true, Series: true, Trace: true,
		Decisions: true, DecisionTrace: true, Dir: dir}
}

func (o Options) withDefaults() Options {
	if o.SeriesCap <= 0 {
		o.SeriesCap = 4096
	}
	o.SeriesCap = (o.SeriesCap + 1) &^ 1 // even, so downsampling stays aligned
	if o.TraceCap <= 0 {
		o.TraceCap = 65536
	}
	o.TraceFilter = o.TraceFilter.normalized()
	if o.DecisionCap <= 0 {
		o.DecisionCap = 65536
	}
	if o.TapInterval <= 0 {
		o.TapInterval = sim.Time(1e6) // 1ms sim time
	}
	if o.TapWall == 0 {
		o.TapWall = 100 * time.Millisecond
	}
	return o
}

// LinkCounters is the per-link hook struct. The owning link bumps the
// fields directly; with telemetry off the link's pointer is nil and each
// site is one branch.
type LinkCounters struct {
	Name string
	// Enqueues counts packets accepted for transmission (queued or put
	// straight into service); Dequeues counts packets whose serialization
	// finished; Drops counts tail drops, down-link drops and queue flushes.
	Enqueues, Dequeues, Drops uint64
	// CEMarks counts transits that raised the packet's CONGA CE field
	// (fabric links only).
	CEMarks uint64
}

// TCPCounters aggregates loss-recovery activity across every sender on the
// engine (MPTCP subflows included). One struct per registry: senders are
// short-lived, so per-flow pull-at-end would miss closed flows.
type TCPCounters struct {
	// Retransmits counts retransmitted segments (fast recovery and RTO).
	Retransmits uint64
	// Timeouts counts RTO firings; FastRetx counts fast-recovery entries.
	Timeouts, FastRetx uint64
	// DupAcks counts duplicate ACKs seen by senders.
	DupAcks uint64
	// ReorderDefers counts dupACK thresholds that were deferred by the
	// RACK-style reordering window instead of triggering recovery.
	ReorderDefers uint64
}

// FlowletRow is the per-leaf flowlet-table counter snapshot, pulled from
// the table's own monotonic counters by a registered collector.
type FlowletRow struct {
	Leaf int
	// Creates counts flowlet installs, Expires gap-detector invalidations,
	// and Evicts installs that overwrote a still-live entry (hash
	// collision or immediate reuse).
	Creates, Expires, Evicts uint64
}

// CounterRow is one flushed counter value.
type CounterRow struct {
	Group   string // "link", "tcp", "flowlet"
	Name    string // link name, "" for tcp, "leafN" for flowlet rows
	Counter string
	Value   uint64
}

// Registry is the per-engine telemetry root: it owns the counter hook
// structs, the series buffers and the trace, and knows how to flush them.
// A nil *Registry is valid and means "telemetry off" everywhere.
type Registry struct {
	opts Options

	links   []*LinkCounters
	linkIdx map[string]*LinkCounters
	tcp     TCPCounters
	// tcpShards holds extra TCP counter blocks for the space-parallel
	// engine: shard 0 is r.tcp itself, shard d>0 is tcpShards[d-1], so a
	// sequential run is wired exactly as before. Each shard is written by
	// one domain goroutine only; TCPTotals sums them all.
	tcpShards []*TCPCounters

	flowlets []FlowletRow

	series  []*Series
	byName  map[string]*Series
	trace   *PacketTrace
	collect []func()

	// decisions holds one hook struct per leaf (created lazily by
	// Decisions); decTrace is the shared bounded audit buffer.
	decisions []*DecisionHooks
	decTrace  *DecisionTrace

	tap      *Tap
	progress func() Progress

	// provenance, when set, names the workload that drove the run (e.g. a
	// replay trace's identity); sinks stamp it into their headers.
	provenance string
}

// New returns a registry for the given options. It never returns nil (use a
// nil *Registry for "off"); options select which accessors hand out live
// hooks.
func New(opts Options) *Registry {
	opts = opts.withDefaults()
	r := &Registry{
		opts:    opts,
		linkIdx: make(map[string]*LinkCounters),
		byName:  make(map[string]*Series),
	}
	if opts.Trace {
		r.trace = newPacketTrace(opts.TraceCap, opts.TraceFilter,
			opts.TraceMode, opts.TraceTrigger, opts.TraceStopAfter)
	}
	if opts.Decisions && opts.DecisionTrace {
		r.decTrace = newDecisionTrace(opts.DecisionCap, opts.DecisionMode)
	}
	if opts.Tap {
		r.tap = newTap(opts.TapInterval, opts.TapWall)
		if opts.Hub != nil {
			opts.Hub.attach(opts.RunName, r.tap)
		}
	}
	return r
}

// Options returns the registry's (defaulted) options.
func (r *Registry) Options() Options { return r.opts }

// Link returns the counter hooks for the named link, creating them on first
// use. It returns nil — and allocates nothing — when counters are disabled
// or the registry itself is nil, so callers can wire unconditionally.
func (r *Registry) Link(name string) *LinkCounters {
	if r == nil || !r.opts.Counters {
		return nil
	}
	if c, ok := r.linkIdx[name]; ok {
		return c
	}
	c := &LinkCounters{Name: name}
	r.linkIdx[name] = c
	r.links = append(r.links, c)
	return c
}

// TCP returns the engine-wide TCP counter hooks, or nil when counters are
// disabled.
func (r *Registry) TCP() *TCPCounters {
	if r == nil || !r.opts.Counters {
		return nil
	}
	return &r.tcp
}

// TCPShard returns the TCP counter block for partition domain d, creating
// shards on first use. Shard 0 is the registry's own block (== TCP()), so
// sequential callers see no difference. Shards must be created before the
// run starts; the accessor is not goroutine-safe.
func (r *Registry) TCPShard(d int) *TCPCounters {
	if r == nil || !r.opts.Counters {
		return nil
	}
	if d == 0 {
		return &r.tcp
	}
	for len(r.tcpShards) < d {
		r.tcpShards = append(r.tcpShards, &TCPCounters{})
	}
	return r.tcpShards[d-1]
}

// Trace returns the packet trace, or nil when tracing is disabled.
func (r *Registry) Trace() *PacketTrace {
	if r == nil {
		return nil
	}
	return r.trace
}

// NewSeries registers a time-series probe and returns its buffer, or nil
// when series are disabled. Registering the same name twice returns the
// same buffer.
func (r *Registry) NewSeries(name, unit string) *Series {
	if r == nil || !r.opts.Series {
		return nil
	}
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := newSeries(name, unit, r.opts.SeriesCap)
	r.byName[name] = s
	r.series = append(r.series, s)
	return s
}

// Series returns the named series, or nil.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	return r.byName[name]
}

// AllSeries returns every registered series in registration order.
func (r *Registry) AllSeries() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// AddCollector registers a function Collect runs to pull counters that live
// on model objects (e.g. flowlet tables) into the registry. Collectors must
// be idempotent: they overwrite rather than accumulate.
func (r *Registry) AddCollector(fn func()) {
	if r == nil {
		return
	}
	r.collect = append(r.collect, fn)
}

// Collect runs the registered collectors. The experiment harness calls it
// once after the engine stops, before reading totals or flushing.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	for _, fn := range r.collect {
		fn()
	}
}

// RecordFlowlets stores (overwriting any previous row for the leaf) the
// flowlet counter snapshot collectors pull from a leaf's table.
func (r *Registry) RecordFlowlets(leaf int, creates, expires, evicts uint64) {
	if r == nil {
		return
	}
	for i := range r.flowlets {
		if r.flowlets[i].Leaf == leaf {
			r.flowlets[i] = FlowletRow{Leaf: leaf, Creates: creates, Expires: expires, Evicts: evicts}
			return
		}
	}
	r.flowlets = append(r.flowlets, FlowletRow{Leaf: leaf, Creates: creates, Expires: expires, Evicts: evicts})
}

// CounterRows returns every counter as flat rows in deterministic order:
// links in registration order, then TCP, then flowlet rows by leaf.
func (r *Registry) CounterRows() []CounterRow {
	if r == nil {
		return nil
	}
	rows := make([]CounterRow, 0, 4*len(r.links)+5+3*len(r.flowlets))
	for _, l := range r.links {
		rows = append(rows,
			CounterRow{"link", l.Name, "enqueues", l.Enqueues},
			CounterRow{"link", l.Name, "dequeues", l.Dequeues},
			CounterRow{"link", l.Name, "drops", l.Drops},
			CounterRow{"link", l.Name, "ce_marks", l.CEMarks},
		)
	}
	if r.opts.Counters {
		tcp := r.TCPTotals()
		rows = append(rows,
			CounterRow{"tcp", "", "retransmits", tcp.Retransmits},
			CounterRow{"tcp", "", "timeouts", tcp.Timeouts},
			CounterRow{"tcp", "", "fast_retx", tcp.FastRetx},
			CounterRow{"tcp", "", "dup_acks", tcp.DupAcks},
			CounterRow{"tcp", "", "reorder_defers", tcp.ReorderDefers},
		)
	}
	fl := append([]FlowletRow(nil), r.flowlets...)
	sort.Slice(fl, func(i, j int) bool { return fl[i].Leaf < fl[j].Leaf })
	for _, f := range fl {
		name := fmt.Sprintf("leaf%d", f.Leaf)
		rows = append(rows,
			CounterRow{"flowlet", name, "creates", f.Creates},
			CounterRow{"flowlet", name, "expires", f.Expires},
			CounterRow{"flowlet", name, "evicts", f.Evicts},
		)
	}
	for _, h := range r.DecisionHooksAll() {
		name := fmt.Sprintf("leaf%d", h.Leaf)
		rows = append(rows,
			CounterRow{"decision", name, "sticky", h.Sticky},
			CounterRow{"decision", name, "new_flowlet", h.NewFlowlet},
			CounterRow{"decision", name, "expired", h.Expired},
			CounterRow{"decision", name, "evicted", h.Evicted},
			CounterRow{"decision", name, "cold", h.Cold},
		)
	}
	return rows
}

// LinkTotals sums the per-link counters.
func (r *Registry) LinkTotals() (enq, deq, drops, ceMarks uint64) {
	if r == nil {
		return
	}
	for _, l := range r.links {
		enq += l.Enqueues
		deq += l.Dequeues
		drops += l.Drops
		ceMarks += l.CEMarks
	}
	return
}

// TCPTotals returns the engine-wide TCP counters summed over every
// partition shard (just the base block for a sequential run).
func (r *Registry) TCPTotals() TCPCounters {
	if r == nil {
		return TCPCounters{}
	}
	t := r.tcp
	for _, s := range r.tcpShards {
		t.Retransmits += s.Retransmits
		t.Timeouts += s.Timeouts
		t.FastRetx += s.FastRetx
		t.DupAcks += s.DupAcks
		t.ReorderDefers += s.ReorderDefers
	}
	return t
}

// FlowletTotals sums the per-leaf flowlet rows (valid after Collect).
func (r *Registry) FlowletTotals() (creates, expires, evicts uint64) {
	if r == nil {
		return
	}
	for _, f := range r.flowlets {
		creates += f.Creates
		expires += f.Expires
		evicts += f.Evicts
	}
	return
}

// Flush runs Collect and writes every probe to Options.Dir via both the CSV
// and NDJSON sinks. A registry with no Dir set flushes nowhere and returns
// nil; so does a nil registry.
func (r *Registry) Flush() error {
	if r == nil || r.opts.Dir == "" {
		return nil
	}
	return r.FlushTo(r.opts.Dir)
}

// FlushTo runs Collect and writes every probe into dir (created if needed)
// as one CSV and one NDJSON file per probe.
func (r *Registry) FlushTo(dir string) error {
	if r == nil {
		return nil
	}
	r.Collect()
	for _, sink := range []Sink{
		CSVSink{Dir: dir, Provenance: r.provenance},
		NDJSONSink{Dir: dir, Provenance: r.provenance},
	} {
		if err := r.flushSink(sink); err != nil {
			return err
		}
	}
	return nil
}

// SetProvenance records a one-line ancestry string for the run's data —
// typically the identity of the replay trace that drove it — which the
// flush sinks stamp into counters and trace headers. Safe on nil.
func (r *Registry) SetProvenance(s string) {
	if r == nil {
		return
	}
	r.provenance = s
}

// FlushSink runs Collect and writes every probe through a single sink.
func (r *Registry) FlushSink(sink Sink) error {
	if r == nil {
		return nil
	}
	r.Collect()
	return r.flushSink(sink)
}

func (r *Registry) flushSink(sink Sink) error {
	if r.opts.Counters {
		if err := sink.Counters(r.CounterRows()); err != nil {
			return err
		}
	}
	for _, s := range r.series {
		if err := sink.Series(s); err != nil {
			return err
		}
	}
	if r.trace != nil {
		if err := sink.Trace(r.trace); err != nil {
			return err
		}
	}
	if r.decTrace != nil {
		if err := sink.Decisions(r.decTrace); err != nil {
			return err
		}
	}
	if len(r.decisions) > 0 {
		if err := sink.Paths(r.PathRows(), r.PathSummaries()); err != nil {
			return err
		}
	}
	return nil
}

// ArchiveToHub registers the registry's flushed directory on its Hub, so
// the live dashboard keeps linking the run's sink files after it finishes.
// A no-op unless the registry has both a Hub and a flush Dir; the harness
// calls it once, after Flush succeeds.
func (r *Registry) ArchiveToHub() {
	if r == nil || r.opts.Hub == nil || r.opts.Dir == "" {
		return
	}
	r.opts.Hub.AddArchive(r.opts.RunName, r.opts.Dir)
}
