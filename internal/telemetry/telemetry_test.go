package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conga/internal/sim"
)

// --- nil safety -----------------------------------------------------------

func TestNilRegistryIsOff(t *testing.T) {
	var r *Registry
	if r.Link("a") != nil || r.TCP() != nil || r.Trace() != nil || r.NewSeries("x", "u") != nil {
		t.Fatal("nil registry handed out a live hook")
	}
	if r.CounterRows() != nil || r.AllSeries() != nil {
		t.Fatal("nil registry returned rows")
	}
	r.Collect()
	r.RecordFlowlets(0, 1, 2, 3)
	if err := r.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	var s *Series
	s.Observe(1, 2)
	if s.Len() != 0 || s.Stride() != 0 || s.Max() != 0 || (s.Last() != Point{}) {
		t.Fatal("nil series recorded")
	}
	var tr *PacketTrace
	tr.Record(1, TraceSend, "h0", 1, 0, 1, 2, 3, 4, 5)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace recorded")
	}
}

func TestDisabledOptionsHandOutNil(t *testing.T) {
	r := New(Options{}) // everything off
	if r.Link("a") != nil || r.TCP() != nil || r.Trace() != nil || r.NewSeries("x", "u") != nil {
		t.Fatal("disabled registry handed out a live hook")
	}
	if rows := r.CounterRows(); len(rows) != 0 {
		t.Fatalf("disabled registry produced %d counter rows", len(rows))
	}
}

// --- series downsampling --------------------------------------------------

// TestSeriesDownsampling drives a series well past its capacity and checks
// the invariants the probe design rests on: memory stays bounded, samples
// stay time-ordered on a uniform stride grid, and the buffer spans the whole
// run rather than only its head or tail.
func TestSeriesDownsampling(t *testing.T) {
	const capacity = 8
	r := New(Options{Series: true, SeriesCap: capacity})
	s := r.NewSeries("q", "bytes")
	const total = 1000
	for i := 0; i < total; i++ {
		s.Observe(sim.Time(i*10), float64(i))
	}
	if s.Len() > capacity {
		t.Fatalf("series grew to %d > cap %d", s.Len(), capacity)
	}
	if s.Len() < capacity/2 {
		t.Fatalf("series kept only %d of cap %d points", s.Len(), capacity)
	}
	pts := s.Points()
	stride := s.Stride()
	if stride < total/capacity {
		t.Fatalf("stride %d too small to have bounded %d observations", stride, total)
	}
	for i := 1; i < len(pts); i++ {
		if gap := pts[i].T - pts[i-1].T; gap != sim.Time(stride*10) {
			t.Fatalf("gap %v between points %d and %d, want uniform %v", gap, i-1, i, stride*10)
		}
	}
	if pts[0].T != 0 {
		t.Fatalf("first retained point at %v, want 0 (run start)", pts[0].T)
	}
	if last := pts[len(pts)-1]; total-int(last.V) > 2*stride {
		t.Fatalf("last retained point %v too far from the end of the run", last)
	}
	if s.Max() != pts[len(pts)-1].V {
		t.Fatalf("Max %v, want %v for a monotone series", s.Max(), pts[len(pts)-1].V)
	}
}

func TestSeriesCapForcedEven(t *testing.T) {
	r := New(Options{Series: true, SeriesCap: 7})
	if got := r.Options().SeriesCap; got != 8 {
		t.Fatalf("SeriesCap 7 normalized to %d, want 8", got)
	}
}

func TestNewSeriesSameNameSameBuffer(t *testing.T) {
	r := New(Options{Series: true})
	a, b := r.NewSeries("q", "bytes"), r.NewSeries("q", "bytes")
	if a != b {
		t.Fatal("same name returned distinct series")
	}
	if r.Series("q") != a || r.Series("missing") != nil {
		t.Fatal("Series lookup broken")
	}
	if len(r.AllSeries()) != 1 {
		t.Fatalf("AllSeries has %d entries, want 1", len(r.AllSeries()))
	}
}

// --- packet trace ---------------------------------------------------------

func TestTraceFilter(t *testing.T) {
	record := func(tr *PacketTrace) {
		tr.Record(1, TraceSend, "h0", 7, 0, 1, 100, 200, 0, 1460)
		tr.Record(2, TraceSend, "h0", 8, 0, 1, 100, 200, 0, 1460) // other flow
		tr.Record(3, TraceSend, "h2", 7, 2, 1, 100, 200, 0, 1460) // other src
		tr.Record(4, TraceRecv, "h1", 7, 0, 1, 100, 201, 0, 1460) // other dport
	}
	cases := []struct {
		name   string
		filter Filter
		want   int
	}{
		{"zero value matches all", Filter{}, 4},
		{"match-all", MatchAll(), 4},
		{"by flow", Filter{FlowID: 7, SrcHost: -1, DstHost: -1, SrcPort: -1, DstPort: -1}, 3},
		{"by src host", Filter{FlowID: -1, SrcHost: 0, DstHost: -1, SrcPort: -1, DstPort: -1}, 3},
		{"by dst port", Filter{FlowID: -1, SrcHost: -1, DstHost: -1, SrcPort: -1, DstPort: 200}, 3},
		{"flow and src", Filter{FlowID: 7, SrcHost: 0, DstHost: -1, SrcPort: -1, DstPort: -1}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := newPacketTrace(16, c.filter.normalized(), CaptureHead, 0, 0)
			record(tr)
			if tr.Len() != c.want {
				t.Fatalf("recorded %d events, want %d", tr.Len(), c.want)
			}
		})
	}
}

func TestTraceSampleEvery(t *testing.T) {
	f := MatchAll()
	f.SampleEvery = 4
	tr := newPacketTrace(100, f, CaptureHead, 0, 0)
	for i := 0; i < 20; i++ {
		tr.Record(sim.Time(i), TraceSend, "h0", 1, 0, 1, 1, 1, int64(i), 1)
	}
	if tr.Len() != 5 {
		t.Fatalf("recorded %d of 20 at SampleEvery=4, want 5", tr.Len())
	}
	for i, ev := range tr.Events() {
		if ev.Seq != int64(i*4) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i*4)
		}
	}
}

func TestTraceCapAndSuppressed(t *testing.T) {
	tr := newPacketTrace(4, MatchAll(), CaptureHead, 0, 0)
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i), TraceDrop, "l0", 1, 0, 1, 1, 1, 0, 1)
	}
	if tr.Len() != 4 {
		t.Fatalf("buffer holds %d, want cap 4", tr.Len())
	}
	if tr.Suppressed != 6 {
		t.Fatalf("Suppressed %d, want 6", tr.Suppressed)
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceSend.String() != "send" || TraceRecv.String() != "recv" || TraceDrop.String() != "drop" {
		t.Fatal("TraceKind names wrong")
	}
}

// --- counters and rows ----------------------------------------------------

func TestCounterRowsDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New(Options{Counters: true})
		r.Link("l0->s0").Enqueues = 10
		r.Link("l1->s0").Drops = 2
		r.TCP().Retransmits = 3
		r.RecordFlowlets(1, 5, 4, 0)
		r.RecordFlowlets(0, 7, 6, 1)
		return r
	}
	a, b := build().CounterRows(), build().CounterRows()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Flowlet rows must come out sorted by leaf regardless of record order.
	var flowletNames []string
	for _, row := range a {
		if row.Group == "flowlet" && row.Counter == "creates" {
			flowletNames = append(flowletNames, row.Name)
		}
	}
	if len(flowletNames) != 2 || flowletNames[0] != "leaf0" || flowletNames[1] != "leaf1" {
		t.Fatalf("flowlet rows out of order: %v", flowletNames)
	}
}

func TestRecordFlowletsOverwrites(t *testing.T) {
	r := New(Options{Counters: true})
	r.RecordFlowlets(0, 1, 1, 0)
	r.RecordFlowlets(0, 9, 8, 7)
	c, e, v := r.FlowletTotals()
	if c != 9 || e != 8 || v != 7 {
		t.Fatalf("totals %d/%d/%d after overwrite, want 9/8/7", c, e, v)
	}
}

func TestTotals(t *testing.T) {
	r := New(Options{Counters: true})
	r.Link("a").Enqueues = 5
	r.Link("a").Dequeues = 4
	r.Link("b").Drops = 1
	r.Link("b").CEMarks = 2
	enq, deq, drops, ce := r.LinkTotals()
	if enq != 5 || deq != 4 || drops != 1 || ce != 2 {
		t.Fatalf("link totals %d/%d/%d/%d", enq, deq, drops, ce)
	}
	r.TCP().Timeouts = 6
	if r.TCPTotals().Timeouts != 6 {
		t.Fatal("TCP totals not visible")
	}
}

func TestCollectorsRunOnCollect(t *testing.T) {
	r := New(Options{Counters: true})
	n := 0
	r.AddCollector(func() { n++; r.RecordFlowlets(0, uint64(n), 0, 0) })
	r.Collect()
	r.Collect()
	if n != 2 {
		t.Fatalf("collector ran %d times, want 2", n)
	}
	if c, _, _ := r.FlowletTotals(); c != 2 {
		t.Fatalf("collector result not overwritten: creates %d, want 2", c)
	}
}

// --- sinks ----------------------------------------------------------------

func TestFlushWritesCSVAndNDJSON(t *testing.T) {
	dir := t.TempDir()
	r := New(All(filepath.Join(dir, "out")))
	r.Link("l0->s0.0").Enqueues = 42
	r.TCP().Retransmits = 7
	s := r.NewSeries("queue.l0->s0.0", "bytes")
	s.Observe(10, 1.5)
	s.Observe(20, 2.5)
	r.Trace().Record(5, TraceSend, "h0", 1, 0, 1, 100, 200, 0, 1460)
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	read := func(name string) string {
		b, err := os.ReadFile(filepath.Join(dir, "out", name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		return string(b)
	}
	if got := read("counters.csv"); !strings.Contains(got, "link,l0->s0.0,enqueues,42") ||
		!strings.Contains(got, "tcp,,retransmits,7") {
		t.Fatalf("counters.csv missing rows:\n%s", got)
	}
	if got := read("counters.ndjson"); !strings.Contains(got, `"counter":"enqueues"`) ||
		!strings.Contains(got, `"value":42`) {
		t.Fatalf("counters.ndjson missing rows:\n%s", got)
	}
	// "->" sanitizes to "-" in file names.
	if got := read("series_queue.l0-s0.0.csv"); !strings.Contains(got, "10,1.5") ||
		!strings.Contains(got, "20,2.5") {
		t.Fatalf("series csv wrong:\n%s", got)
	}
	if got := read("series_queue.l0-s0.0.ndjson"); !strings.Contains(got, `"time_ns":10`) ||
		!strings.Contains(got, `"value":1.5`) {
		t.Fatalf("series ndjson wrong:\n%s", got)
	}
	if got := read("trace.csv"); !strings.Contains(got, "send") || !strings.Contains(got, "h0") {
		t.Fatalf("trace.csv wrong:\n%s", got)
	}
	if got := read("trace.ndjson"); !strings.Contains(got, `"event":"send"`) {
		t.Fatalf("trace.ndjson wrong:\n%s", got)
	}
}

func TestFlushWithoutDirIsNoop(t *testing.T) {
	r := New(Options{Counters: true})
	r.Link("a").Enqueues = 1
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush with no dir: %v", err)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"queue.l0->s0.0": "queue.l0-s0.0",
		"plain":          "plain",
		"a b/c":          "a-b-c",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
