package telemetry

import "conga/internal/sim"

// Point is one series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is a fixed-capacity time-series buffer that degrades resolution
// instead of growing: when full it discards every other retained sample and
// doubles its sampling stride, so memory is bounded at cap points while the
// buffer always spans the whole run at uniform (halved) resolution. The
// capacity is forced even so downsampling keeps retained samples aligned to
// the stride grid.
//
// Observe is O(1) amortized and allocation-free after construction; the
// probe callbacks on the engine tickers call it directly. A nil *Series is
// valid and records nothing, so wiring sites need no enable checks beyond
// the nil test.
type Series struct {
	name, unit string
	pts        []Point
	stride     int // keep 1 of every stride observations
	skip       int // observations dropped since the last kept one
}

func newSeries(name, unit string, capacity int) *Series {
	return &Series{name: name, unit: unit, pts: make([]Point, 0, capacity), stride: 1}
}

// Name returns the probe name (e.g. "queue.l0->s0.0").
func (s *Series) Name() string { return s.name }

// Unit returns the value unit (e.g. "bytes").
func (s *Series) Unit() string { return s.unit }

// Stride returns how many observations each retained point represents.
func (s *Series) Stride() int {
	if s == nil {
		return 0
	}
	return s.stride
}

// Observe records v at time t, subject to the current stride. Safe on a nil
// receiver.
func (s *Series) Observe(t sim.Time, v float64) {
	if s == nil {
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	if len(s.pts) == cap(s.pts) {
		// Halve resolution: keep samples at even indices. Capacity is
		// even, so after compaction the next retained observation is
		// exactly stride*2 away from the last kept one — the grid stays
		// uniform.
		half := len(s.pts) / 2
		for i := 0; i < half; i++ {
			s.pts[i] = s.pts[2*i]
		}
		s.pts = s.pts[:half]
		s.stride *= 2
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	s.skip = s.stride - 1
}

// Points returns the retained samples in time order. The slice aliases the
// buffer; callers must not modify it.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	return s.pts
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.pts)
}

// Last returns the most recent sample, or a zero Point when empty.
func (s *Series) Last() Point {
	if s == nil || len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[len(s.pts)-1]
}

// Max returns the largest retained value (0 when empty); convenient for
// "peak queue depth" style summaries in examples.
func (s *Series) Max() float64 {
	if s == nil {
		return 0
	}
	m := 0.0
	for _, p := range s.pts {
		if p.V > m {
			m = p.V
		}
	}
	return m
}
