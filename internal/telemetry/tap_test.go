package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// tapRegistry builds a registry with a live tap (wall gate disabled so
// tests control publishing purely with sim time) attached to hub.
func tapRegistry(hub *Hub, name string) *Registry {
	return New(Options{
		Counters: true, Series: true, SeriesCap: 16,
		Tap: true, TapInterval: 100, TapWall: -1,
		Hub: hub, RunName: name,
	})
}

func TestTapPublishGating(t *testing.T) {
	r := tapRegistry(nil, "")
	tap := r.Tap()
	if tap == nil {
		t.Fatal("tap requested but absent")
	}
	if tap.Load() != nil {
		t.Fatal("snapshot existed before any publish")
	}
	s := r.NewSeries("q", "bytes")
	s.Observe(10, 1)

	r.PublishTap(10)
	first := tap.Load()
	if first == nil || first.Seq != 1 || first.Done {
		t.Fatalf("first publish: %+v", first)
	}
	r.PublishTap(50) // within the 100ns sim interval: gated
	if tap.Load().Seq != 1 {
		t.Fatal("publish inside the sim interval was not gated")
	}
	s.Observe(120, 2)
	r.PublishTap(120)
	second := tap.Load()
	if second.Seq != 2 || len(second.Series) == 0 {
		t.Fatalf("second publish: %+v", second)
	}
	// Snapshots are immutable copies: later observations must not leak
	// into an already-published snapshot.
	nPts := len(second.Series[0].Points)
	s.Observe(130, 3)
	if len(tap.Load().Series[0].Points) != nPts {
		t.Fatal("published snapshot aliases the live series buffer")
	}

	r.FinishTap(125) // final publish ignores the interval gate
	last := tap.Load()
	if last.Seq != 3 || !last.Done {
		t.Fatalf("FinishTap: %+v", last)
	}
}

func TestSnapshotDeltaSince(t *testing.T) {
	mk := func(stride int, pts ...Point) *Snapshot {
		return &Snapshot{Series: []TapSeries{{Name: "q", Unit: "bytes", Stride: stride, Points: pts}}}
	}
	a := mk(1, Point{T: 1, V: 1}, Point{T: 2, V: 2})
	b := mk(1, Point{T: 1, V: 1}, Point{T: 2, V: 2}, Point{T: 3, V: 3})
	d := b.DeltaSince(a)
	if len(d) != 1 || d[0].Reset || len(d[0].Points) != 1 || d[0].Points[0].T != 3 {
		t.Fatalf("append-only delta: %+v", d)
	}
	// A stride change means the ring re-decimated: the delta must resend
	// everything with Reset so readers drop their accumulated view.
	c := mk(2, Point{T: 2, V: 2}, Point{T: 4, V: 4})
	d = c.DeltaSince(b)
	if len(d) != 1 || !d[0].Reset || len(d[0].Points) != 2 {
		t.Fatalf("stride-change delta: %+v", d)
	}
	// No previous snapshot: full resend.
	d = a.DeltaSince(nil)
	if len(d) != 1 || !d[0].Reset || len(d[0].Points) != 2 {
		t.Fatalf("first delta: %+v", d)
	}
}

func TestHubHTTPEndpoints(t *testing.T) {
	hub := NewHub()
	r := tapRegistry(hub, "demo")
	r.Link("l0->s0.0").Enqueues++
	s := r.NewSeries("queue.l0->s0.0", "bytes")
	s.Observe(10, 1500)
	r.Collect()
	r.FinishTap(10)

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string, v any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	var ov struct {
		Runs []struct {
			Name string `json:"name"`
			Done bool   `json:"done"`
		} `json:"runs"`
	}
	get("/", &ov)
	if len(ov.Runs) != 1 || ov.Runs[0].Name != "demo" || !ov.Runs[0].Done {
		t.Fatalf("overview: %+v", ov)
	}

	var cnt struct {
		Counters []CounterRow `json:"counters"`
	}
	get("/counters?run=demo", &cnt)
	found := false
	for _, row := range cnt.Counters {
		if row.Name == "l0->s0.0" && row.Counter == "enqueues" && row.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("enqueue counter missing from /counters: %+v", cnt.Counters)
	}

	var idx struct {
		Series []string `json:"series"`
	}
	get("/series", &idx)
	if len(idx.Series) != 1 || idx.Series[0] != "queue.l0->s0.0" {
		t.Fatalf("series index: %+v", idx)
	}

	// Both the raw name and its filesystem-sanitized form resolve.
	for _, path := range []string{"/series/queue.l0->s0.0", "/series/" + sanitizeName("queue.l0->s0.0")} {
		var sj seriesJSON
		get(path, &sj)
		if sj.Probe != "queue.l0->s0.0" || sj.Unit != "bytes" || len(sj.Points) != 1 {
			t.Fatalf("GET %s: %+v", path, sj)
		}
	}

	// Unknown run 404s and names the known runs.
	resp, err := srv.Client().Get(srv.URL + "/counters?run=nope")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 404 || !strings.Contains(string(body[:n]), "demo") {
		t.Fatalf("unknown run: %s %q", resp.Status, body[:n])
	}
}
