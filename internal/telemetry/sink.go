package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Sink receives a registry's probes at flush time. Sinks run only after the
// engine has stopped, so their cost never perturbs simulation order.
type Sink interface {
	Counters(rows []CounterRow) error
	Series(s *Series) error
	Trace(tr *PacketTrace) error
	// Decisions receives the bounded decision trace; Paths receives the
	// path load matrix cells plus per-leaf balance summaries.
	Decisions(tr *DecisionTrace) error
	Paths(rows []PathRow, sums []PathSummary) error
}

// sanitizeName makes a probe name filesystem-safe: "->" collapses to "-",
// any other character outside [A-Za-z0-9._-] becomes "-".
func sanitizeName(name string) string {
	name = strings.ReplaceAll(name, "->", "-")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, name)
}

func writeFile(dir, name string, emit func(w *bufio.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := emit(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CSVSink writes one CSV file per probe into Dir: counters.csv,
// series_<name>.csv (columns time_ns,value), trace.csv. When Provenance is
// set, counters.csv and trace.csv open with a "# provenance=..." comment
// naming the workload that drove the run.
type CSVSink struct {
	Dir        string
	Provenance string
}

// Counters implements Sink.
func (s CSVSink) Counters(rows []CounterRow) error {
	return writeFile(s.Dir, "counters.csv", func(w *bufio.Writer) error {
		if s.Provenance != "" {
			fmt.Fprintf(w, "# provenance=%s\n", s.Provenance)
		}
		fmt.Fprintln(w, "group,name,counter,value")
		for _, r := range rows {
			fmt.Fprintf(w, "%s,%s,%s,%d\n", r.Group, csvField(r.Name), r.Counter, r.Value)
		}
		return nil
	})
}

// Series implements Sink.
func (s CSVSink) Series(sr *Series) error {
	name := "series_" + sanitizeName(sr.Name()) + ".csv"
	return writeFile(s.Dir, name, func(w *bufio.Writer) error {
		fmt.Fprintf(w, "time_ns,value\n")
		for _, p := range sr.Points() {
			fmt.Fprintf(w, "%d,%s\n", int64(p.T), formatFloat(p.V))
		}
		return nil
	})
}

// captureComment renders the trace's capture policy as a CSV comment line
// (parsed back by cmd/congatrace -read).
func captureComment(info CaptureInfo) string {
	return fmt.Sprintf("# capture=%s cap=%d recorded=%d seen=%d suppressed=%d trigger=%s triggered=%t triggered_at_ns=%d reason=%s",
		info.Mode, info.Cap, info.Recorded, info.Seen, info.Suppressed,
		info.Trigger, info.Triggered, int64(info.TriggeredAt), sanitizeName(info.TriggerReason))
}

// Trace implements Sink.
func (s CSVSink) Trace(tr *PacketTrace) error {
	return writeFile(s.Dir, "trace.csv", func(w *bufio.Writer) error {
		if s.Provenance != "" {
			fmt.Fprintf(w, "# provenance=%s\n", s.Provenance)
		}
		fmt.Fprintln(w, captureComment(tr.Info()))
		fmt.Fprintln(w, "time_ns,event,where,flow,src,dst,sport,dport,seq,payload")
		for _, e := range tr.Events() {
			fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
				int64(e.T), e.Kind, csvField(e.Where), e.FlowID,
				e.Src, e.Dst, e.SrcPort, e.DstPort, e.Seq, e.Payload)
		}
		return nil
	})
}

// Decisions implements Sink: decisions.csv opens with the capture-policy
// comment (same format as trace.csv, no trigger fields in play) and lists
// one row per retained SelectUplink outcome; the candidate metric vector
// is "|"-separated inside one CSV field.
func (s CSVSink) Decisions(tr *DecisionTrace) error {
	return writeFile(s.Dir, "decisions.csv", func(w *bufio.Writer) error {
		if s.Provenance != "" {
			fmt.Fprintf(w, "# provenance=%s\n", s.Provenance)
		}
		fmt.Fprintln(w, captureComment(tr.Info()))
		fmt.Fprintln(w, "time_ns,src_leaf,dst_leaf,uplink,reason,age_ns,metrics")
		for _, e := range tr.Events() {
			fmt.Fprintf(w, "%d,%d,%d,%d,%s,%d,%s\n",
				int64(e.T), e.SrcLeaf, e.DstLeaf, e.Uplink, e.Reason,
				e.AgeNs, metricsField(e.Metrics))
		}
		return nil
	})
}

// Paths implements Sink: paths.csv lists the non-empty matrix cells, with
// one "# summary ..." comment per leaf carrying the balance figures.
func (s CSVSink) Paths(rows []PathRow, sums []PathSummary) error {
	return writeFile(s.Dir, "paths.csv", func(w *bufio.Writer) error {
		if s.Provenance != "" {
			fmt.Fprintf(w, "# provenance=%s\n", s.Provenance)
		}
		for _, sm := range sums {
			fmt.Fprintln(w, summaryComment(sm))
		}
		fmt.Fprintln(w, "leaf,uplink,dst_leaf,flowlets,bytes")
		for _, r := range rows {
			fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
				r.Leaf, r.Uplink, r.DstLeaf, r.Flowlets, r.Bytes)
		}
		return nil
	})
}

// metricsField renders a candidate metric vector as "3|0|7|2" ("" when the
// event carried none, i.e. sticky hits).
func metricsField(m []uint8) string {
	if len(m) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// summaryComment renders one leaf's balance summary as a CSV comment line
// (parsed back by cmd/congatrace -read).
func summaryComment(sm PathSummary) string {
	return fmt.Sprintf("# summary leaf=%d flowlets=%d bytes=%d imbalance=%s entropy=%s",
		sm.Leaf, sm.Flowlets, sm.Bytes,
		formatFloat(sm.Imbalance), formatFloat(sm.Entropy))
}

// csvField quotes a value if it contains a comma or quote (link names like
// "l0->s0.0" are clean, but be safe for arbitrary probe names).
func csvField(v string) string {
	if strings.ContainsAny(v, ",\"\n") {
		return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
	}
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NDJSONSink writes one newline-delimited-JSON file per probe into Dir:
// counters.ndjson, series_<name>.ndjson, trace.ndjson. Rows are hand-built
// (fields are numbers and already-sanitized short strings), keeping flush
// cheap for large traces.
type NDJSONSink struct {
	Dir        string
	Provenance string
}

// provenanceLine emits the {"provenance":...} meta line when set; readers
// (cmd/congatrace, cmd/congaplot) skip it by key.
func (s NDJSONSink) provenanceLine(w *bufio.Writer) {
	if s.Provenance != "" {
		fmt.Fprintf(w, `{"provenance":%s}`+"\n", jsonString(s.Provenance))
	}
}

// Counters implements Sink.
func (s NDJSONSink) Counters(rows []CounterRow) error {
	return writeFile(s.Dir, "counters.ndjson", func(w *bufio.Writer) error {
		s.provenanceLine(w)
		for _, r := range rows {
			fmt.Fprintf(w, `{"group":%s,"name":%s,"counter":%s,"value":%d}`+"\n",
				jsonString(r.Group), jsonString(r.Name), jsonString(r.Counter), r.Value)
		}
		return nil
	})
}

// Series implements Sink.
func (s NDJSONSink) Series(sr *Series) error {
	name := "series_" + sanitizeName(sr.Name()) + ".ndjson"
	unit := jsonString(sr.Unit())
	probe := jsonString(sr.Name())
	return writeFile(s.Dir, name, func(w *bufio.Writer) error {
		for _, p := range sr.Points() {
			fmt.Fprintf(w, `{"probe":%s,"unit":%s,"time_ns":%d,"value":%s}`+"\n",
				probe, unit, int64(p.T), jsonFloat(p.V))
		}
		return nil
	})
}

// Trace implements Sink.
func (s NDJSONSink) Trace(tr *PacketTrace) error {
	return writeFile(s.Dir, "trace.ndjson", func(w *bufio.Writer) error {
		s.provenanceLine(w)
		info := tr.Info()
		fmt.Fprintf(w, `{"capture":{"mode":%s,"cap":%d,"recorded":%d,"seen":%d,"suppressed":%d,"trigger":%s,"triggered":%t,"triggered_at_ns":%d,"reason":%s}}`+"\n",
			jsonString(info.Mode.String()), info.Cap, info.Recorded, info.Seen,
			info.Suppressed, jsonString(info.Trigger.String()), info.Triggered,
			int64(info.TriggeredAt), jsonString(info.TriggerReason))
		for _, e := range tr.Events() {
			fmt.Fprintf(w, `{"time_ns":%d,"event":%s,"where":%s,"flow":%d,"src":%d,"dst":%d,"sport":%d,"dport":%d,"seq":%d,"payload":%d}`+"\n",
				int64(e.T), jsonString(e.Kind.String()), jsonString(e.Where),
				e.FlowID, e.Src, e.Dst, e.SrcPort, e.DstPort, e.Seq, e.Payload)
		}
		return nil
	})
}

// Decisions implements Sink.
func (s NDJSONSink) Decisions(tr *DecisionTrace) error {
	return writeFile(s.Dir, "decisions.ndjson", func(w *bufio.Writer) error {
		s.provenanceLine(w)
		info := tr.Info()
		fmt.Fprintf(w, `{"capture":{"mode":%s,"cap":%d,"recorded":%d,"seen":%d,"suppressed":%d}}`+"\n",
			jsonString(info.Mode.String()), info.Cap, info.Recorded, info.Seen,
			info.Suppressed)
		for _, e := range tr.Events() {
			fmt.Fprintf(w, `{"time_ns":%d,"src_leaf":%d,"dst_leaf":%d,"uplink":%d,"reason":%s,"age_ns":%d,"metrics":%s}`+"\n",
				int64(e.T), e.SrcLeaf, e.DstLeaf, e.Uplink,
				jsonString(e.Reason.String()), e.AgeNs, metricsJSON(e.Metrics))
		}
		return nil
	})
}

// Paths implements Sink.
func (s NDJSONSink) Paths(rows []PathRow, sums []PathSummary) error {
	return writeFile(s.Dir, "paths.ndjson", func(w *bufio.Writer) error {
		s.provenanceLine(w)
		for _, sm := range sums {
			fmt.Fprintf(w, `{"summary":{"leaf":%d,"flowlets":%d,"bytes":%d,"imbalance":%s,"entropy":%s}}`+"\n",
				sm.Leaf, sm.Flowlets, sm.Bytes,
				jsonFloat(sm.Imbalance), jsonFloat(sm.Entropy))
		}
		for _, r := range rows {
			fmt.Fprintf(w, `{"leaf":%d,"uplink":%d,"dst_leaf":%d,"flowlets":%d,"bytes":%d}`+"\n",
				r.Leaf, r.Uplink, r.DstLeaf, r.Flowlets, r.Bytes)
		}
		return nil
	})
}

// metricsJSON renders a candidate metric vector as a JSON array.
func metricsJSON(m []uint8) string {
	if len(m) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	b.WriteByte(']')
	return b.String()
}

// jsonString quotes a string for JSON; probe and link names contain no
// control characters, but escape quotes and backslashes to stay correct.
func jsonString(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// jsonFloat renders a float as a valid JSON number (NaN/Inf become null —
// probes never produce them, but the output must stay parseable).
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "NI") { // NaN, +Inf, -Inf
		return "null"
	}
	return s
}
