package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conga/internal/sim"
)

func decisionOpts(mode CaptureMode, capacity int) Options {
	return Options{Decisions: true, DecisionTrace: true,
		DecisionCap: capacity, DecisionMode: mode}
}

// TestDecisionTraceHead: head keeps the first cap events and counts the
// rest as suppressed; recorded+suppressed always equals seen.
func TestDecisionTraceHead(t *testing.T) {
	r := New(decisionOpts(CaptureHead, 4))
	h := r.Decisions(0, 2, 2)
	for i := 0; i < 10; i++ {
		h.Decision(sim.Time(i), 1, i%2, ReasonNewFlowlet, int64(i), []uint8{1, 2})
	}
	tr := r.DecisionTrace()
	if tr.Len() != 4 {
		t.Fatalf("head kept %d, want 4", tr.Len())
	}
	info := tr.Info()
	if info.Recorded != 4 || info.Suppressed != 6 || info.Seen != 10 {
		t.Fatalf("accounting: %+v", info)
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.T != sim.Time(i) {
			t.Fatalf("head event %d has T=%d, want %d", i, ev.T, i)
		}
		if len(ev.Metrics) != 2 {
			t.Fatalf("event %d lost its metric vector", i)
		}
	}
}

// TestDecisionTraceTail: tail is a flight recorder — the last cap events
// survive, in time order.
func TestDecisionTraceTail(t *testing.T) {
	r := New(decisionOpts(CaptureTail, 4))
	h := r.Decisions(0, 2, 2)
	for i := 0; i < 10; i++ {
		h.Decision(sim.Time(i), 1, 0, ReasonExpired, -1, []uint8{uint8(i)})
	}
	tr := r.DecisionTrace()
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("tail kept %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := sim.Time(6 + i)
		if ev.T != want {
			t.Fatalf("tail event %d has T=%d, want %d", i, ev.T, want)
		}
		if len(ev.Metrics) != 1 || ev.Metrics[0] != uint8(6+i) {
			t.Fatalf("tail event %d carries wrong metrics %v", i, ev.Metrics)
		}
	}
	if info := tr.Info(); int(info.Suppressed)+info.Recorded != info.Seen {
		t.Fatalf("accounting: %+v", info)
	}
}

// TestDecisionTraceReservoir: the reservoir retains a uniform sample in
// time order with exact accounting, without touching engine randomness.
func TestDecisionTraceReservoir(t *testing.T) {
	r := New(decisionOpts(CaptureReservoir, 8))
	h := r.Decisions(0, 2, 2)
	for i := 0; i < 1000; i++ {
		h.Decision(sim.Time(i), 1, 0, ReasonNewFlowlet, 0, nil)
	}
	tr := r.DecisionTrace()
	if tr.Len() != 8 {
		t.Fatalf("reservoir kept %d, want 8", tr.Len())
	}
	if info := tr.Info(); int(info.Suppressed)+info.Recorded != info.Seen || info.Seen != 1000 {
		t.Fatalf("accounting: %+v", info)
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("reservoir events not in time order")
		}
	}
	// A sample of 8 from 1000 sequential offers that kept only the first 8
	// would mean Algorithm R never replaced anything — astronomically
	// unlikely with a working PRNG.
	if evs[len(evs)-1].T < 8 {
		t.Fatal("reservoir looks like head capture")
	}
}

// TestDecisionHooksMatrixAndStaleness covers the per-leaf aggregation:
// reason counters, the flowlets/bytes matrices, and the staleness window
// drain semantics.
func TestDecisionHooksMatrixAndStaleness(t *testing.T) {
	r := New(Options{Decisions: true})
	h := r.Decisions(0, 2, 3) // 2 uplinks, 3 leaves
	h.Decision(1, 1, 0, ReasonNewFlowlet, 100, nil)
	h.Decision(2, 1, 0, ReasonExpired, 300, nil)
	h.Decision(3, 2, 1, ReasonEvicted, -1, nil) // cold
	h.Decision(4, 1, 0, ReasonSticky, -1, nil)  // sticky: no matrix, no staleness
	h.AddBytes(0, 1, 1500)
	h.AddBytes(0, 1, 500)
	h.AddBytes(1, 2, 9000)

	if h.Sticky != 1 || h.NewFlowlet != 1 || h.Expired != 1 || h.Evicted != 1 || h.Cold != 1 {
		t.Fatalf("reason counters: %+v", *h)
	}
	mean, ok := h.TakeStaleness()
	if !ok || mean != 200 {
		t.Fatalf("staleness mean = %v ok=%v, want 200 true", mean, ok)
	}
	if _, ok := h.TakeStaleness(); ok {
		t.Fatal("window should be drained")
	}

	rows := r.PathRows()
	want := []PathRow{
		{Leaf: 0, Uplink: 0, DstLeaf: 1, Flowlets: 2, Bytes: 2000},
		{Leaf: 0, Uplink: 1, DstLeaf: 2, Flowlets: 1, Bytes: 9000},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows: %+v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}

	sums := r.PathSummaries()
	if len(sums) != 1 {
		t.Fatalf("summaries: %+v", sums)
	}
	sm := sums[0]
	if sm.Flowlets != 3 || sm.Bytes != 11000 {
		t.Fatalf("summary totals: %+v", sm)
	}
	// Per-uplink bytes 2000 and 9000: imbalance = 9000/5500, entropy =
	// H(2/11, 9/11)/log2(2).
	wantImb := 9000.0 / 5500.0
	p := 2000.0 / 11000.0
	wantEnt := -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
	if math.Abs(sm.Imbalance-wantImb) > 1e-9 || math.Abs(sm.Entropy-wantEnt) > 1e-9 {
		t.Fatalf("balance = %v/%v, want %v/%v", sm.Imbalance, sm.Entropy, wantImb, wantEnt)
	}
}

// TestPathMatrixShape checks the heatmap projection: row per (leaf,
// uplink), column per destination leaf, byte values, and the
// flowlet-count fallback when no bytes were recorded.
func TestPathMatrixShape(t *testing.T) {
	rows := []PathRow{
		{Leaf: 0, Uplink: 0, DstLeaf: 1, Flowlets: 2, Bytes: 2000},
		{Leaf: 0, Uplink: 1, DstLeaf: 2, Flowlets: 1, Bytes: 9000},
		{Leaf: 1, Uplink: 0, DstLeaf: 0, Flowlets: 5, Bytes: 100},
	}
	rowLabels, colLabels, values, unit := PathMatrix(rows)
	if unit != "bytes" {
		t.Fatalf("unit = %q", unit)
	}
	if len(rowLabels) != 3 || len(colLabels) != 3 || len(values) != 3 {
		t.Fatalf("shape: rows %v cols %v", rowLabels, colLabels)
	}
	if rowLabels[0] != "l0 up0" || colLabels[0] != "→l0" {
		t.Fatalf("labels: %v / %v", rowLabels, colLabels)
	}
	// l0 up1 → l2 is 9000; find its cell.
	foundCol := -1
	for c, lbl := range colLabels {
		if lbl == "→l2" {
			foundCol = c
		}
	}
	if foundCol < 0 || values[1][foundCol] != 9000 {
		t.Fatalf("matrix misplaced: %v", values)
	}

	// No bytes anywhere: fall back to flowlet counts.
	for i := range rows {
		rows[i].Bytes = 0
	}
	_, _, values, unit = PathMatrix(rows)
	if unit != "flowlets" || values[0][1] != 2 {
		t.Fatalf("fallback: unit=%q values=%v", unit, values)
	}

	if _, _, v, _ := PathMatrix(nil); v != nil {
		t.Fatal("empty input should produce no matrix")
	}
}

// TestDecisionSinkAccounting flushes a registry with a decision plane and
// checks the sink files carry the capture header and summary comments.
func TestDecisionSinkAccounting(t *testing.T) {
	dir := t.TempDir()
	opts := decisionOpts(CaptureHead, 16)
	opts.Dir = dir
	r := New(opts)
	h := r.Decisions(0, 2, 2)
	h.Decision(5, 1, 1, ReasonNewFlowlet, 40, []uint8{3, 1})
	h.AddBytes(1, 1, 777)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"decisions.csv", "decisions.ndjson", "paths.csv", "paths.ndjson"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data := string(raw)
		switch name {
		case "decisions.csv":
			if !strings.Contains(data, "# capture=head cap=16 recorded=1 seen=1 suppressed=0") {
				t.Fatalf("%s missing capture header:\n%s", name, data)
			}
			if !strings.Contains(data, "5,0,1,1,new-flowlet,40,3|1") {
				t.Fatalf("%s missing event row:\n%s", name, data)
			}
		case "decisions.ndjson":
			if !strings.Contains(data, `"metrics":[3,1]`) {
				t.Fatalf("%s missing metrics:\n%s", name, data)
			}
		case "paths.csv":
			if !strings.Contains(data, "# summary leaf=0 ") || !strings.Contains(data, "0,1,1,1,777") {
				t.Fatalf("%s content:\n%s", name, data)
			}
		case "paths.ndjson":
			if !strings.Contains(data, `{"summary":{"leaf":0,`) {
				t.Fatalf("%s content:\n%s", name, data)
			}
		}
	}
}
