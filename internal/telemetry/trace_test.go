package telemetry

import (
	"reflect"
	"testing"

	"conga/internal/sim"
)

// rec offers one event with distinguishable time/kind and fixed plumbing.
func rec(tr *PacketTrace, t sim.Time, kind TraceKind) {
	tr.Record(t, kind, "l0->s0.0", 1, 0, 1, 10, 20, int64(t), 1500)
}

// checkInvariant asserts the accounting identity every capture mode must
// preserve: retained + suppressed == matching events seen.
func checkInvariant(t *testing.T, tr *PacketTrace) {
	t.Helper()
	info := tr.Info()
	if info.Recorded+int(info.Suppressed) != info.Seen {
		t.Fatalf("capture accounting broken: recorded %d + suppressed %d != seen %d",
			info.Recorded, info.Suppressed, info.Seen)
	}
}

func TestCaptureTailRing(t *testing.T) {
	tr := newPacketTrace(4, MatchAll(), CaptureTail, 0, 0)
	for i := 1; i <= 10; i++ {
		rec(tr, sim.Time(i), TraceSend)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("tail ring holds %d events, want 4", len(evs))
	}
	for i, want := range []sim.Time{7, 8, 9, 10} {
		if evs[i].T != want {
			t.Fatalf("tail event %d at t=%d, want t=%d (ring not rotated oldest-first)", i, evs[i].T, want)
		}
	}
	info := tr.Info()
	if info.Suppressed != 6 || info.Seen != 10 {
		t.Fatalf("tail accounting: suppressed %d seen %d, want 6 and 10", info.Suppressed, info.Seen)
	}
	checkInvariant(t, tr)
}

func TestCaptureReservoirSample(t *testing.T) {
	const capacity, total = 8, 200
	sample := func() []TraceEvent {
		tr := newPacketTrace(capacity, MatchAll(), CaptureReservoir, 0, 0)
		for i := 1; i <= total; i++ {
			rec(tr, sim.Time(i), TraceSend)
		}
		checkInvariant(t, tr)
		if got := tr.Info().Suppressed; got != total-capacity {
			t.Fatalf("reservoir suppressed %d, want %d", got, total-capacity)
		}
		return tr.Events()
	}
	evs := sample()
	if len(evs) != capacity {
		t.Fatalf("reservoir holds %d events, want %d", len(evs), capacity)
	}
	seen := map[sim.Time]bool{}
	for i, e := range evs {
		if i > 0 && evs[i-1].T > e.T {
			t.Fatalf("reservoir events not time-sorted: %d before %d", evs[i-1].T, e.T)
		}
		if e.T < 1 || e.T > total || seen[e.T] {
			t.Fatalf("reservoir produced invalid or duplicate event t=%d", e.T)
		}
		seen[e.T] = true
	}
	// The sample must not degenerate to the head: with 200 offered events
	// and capacity 8, retaining only the first 8 would mean Algorithm R
	// never replaced anything.
	allHead := true
	for _, e := range evs {
		if e.T > capacity {
			allHead = false
		}
	}
	if allHead {
		t.Fatal("reservoir kept exactly the first events; replacement never happened")
	}
	// Private fixed-seed PRNG: the retained sample is reproducible.
	if again := sample(); !reflect.DeepEqual(evs, again) {
		t.Fatalf("reservoir sample not deterministic:\nfirst  %v\nsecond %v", evs, again)
	}
}

func TestTriggerFirstDropStopAfter(t *testing.T) {
	tr := newPacketTrace(64, MatchAll(), CaptureHead, TriggerFirstDrop, 2)
	for i := 1; i <= 3; i++ {
		rec(tr, sim.Time(i), TraceSend)
	}
	rec(tr, 4, TraceDrop)
	if !tr.Triggered || tr.TriggeredAt != 4 || tr.TriggerReason != "first-drop" {
		t.Fatalf("trigger state after drop: %+v", tr.Info())
	}
	if tr.Frozen() {
		t.Fatal("froze before the stop-after countdown ran")
	}
	for i := 5; i <= 9; i++ {
		rec(tr, sim.Time(i), TraceSend)
	}
	if !tr.Frozen() {
		t.Fatal("never froze after the countdown")
	}
	evs := tr.Events()
	// 3 sends + the triggering drop (retained, does not consume the
	// countdown) + 2 post-trigger events.
	if len(evs) != 6 || evs[3].Kind != TraceDrop || evs[5].T != 6 {
		t.Fatalf("retained %d events ending t=%d, want 6 ending t=6: %v", len(evs), evs[len(evs)-1].T, evs)
	}
	if got := tr.Info().Suppressed; got != 3 {
		t.Fatalf("suppressed %d events after freeze, want 3", got)
	}
	checkInvariant(t, tr)
}

func TestTriggerFirstDropImmediate(t *testing.T) {
	tr := newPacketTrace(64, MatchAll(), CaptureHead, TriggerFirstDrop, 0)
	rec(tr, 1, TraceSend)
	rec(tr, 2, TraceDrop)
	rec(tr, 3, TraceSend)
	if !tr.Frozen() {
		t.Fatal("stop-after 0 must freeze on the triggering drop")
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[1].Kind != TraceDrop {
		t.Fatalf("want [send drop], got %v", evs)
	}
	checkInvariant(t, tr)
}

// TestTriggerDropOutsideFilter pins the flight-recorder contract: a trace
// filtered to one flow still freezes on the first drop anywhere in the
// fabric — the drop event itself just isn't retained.
func TestTriggerDropOutsideFilter(t *testing.T) {
	f := MatchAll()
	f.FlowID = 1
	tr := newPacketTrace(64, f, CaptureHead, TriggerFirstDrop, 0)
	rec(tr, 1, TraceSend) // flow 1, retained
	tr.Record(2, TraceDrop, "l1->s0.0", 99, 2, 3, 30, 40, 0, 1500)
	if !tr.Triggered || !tr.Frozen() {
		t.Fatal("drop outside the filter must still fire and freeze the trigger")
	}
	rec(tr, 3, TraceSend) // flow 1, but frozen
	evs := tr.Events()
	if len(evs) != 1 || evs[0].T != 1 {
		t.Fatalf("want only the pre-drop flow-1 event, got %v", evs)
	}
	checkInvariant(t, tr)
}

func TestTriggerRTO(t *testing.T) {
	var nilTrace *PacketTrace
	nilTrace.TriggerRTO(1) // must not panic: senders call unconditionally

	tr := newPacketTrace(64, MatchAll(), CaptureTail, TriggerFirstRTO, 0)
	rec(tr, 1, TraceSend)
	tr.TriggerRTO(2)
	tr.TriggerRTO(3) // second RTO is ignored; the first one wins
	rec(tr, 4, TraceSend)
	info := tr.Info()
	if !info.Triggered || info.TriggeredAt != 2 || info.TriggerReason != "first-rto" {
		t.Fatalf("RTO trigger state: %+v", info)
	}
	if tr.Len() != 1 || info.Suppressed != 1 {
		t.Fatalf("post-RTO event not suppressed: len %d suppressed %d", tr.Len(), info.Suppressed)
	}
	// A trace without the RTO trigger armed ignores the notification.
	un := newPacketTrace(64, MatchAll(), CaptureHead, TriggerFirstDrop, 0)
	un.TriggerRTO(5)
	if un.Triggered {
		t.Fatal("TriggerRTO fired on a trace armed only for drops")
	}
}

func TestTriggerStopManual(t *testing.T) {
	tr := newPacketTrace(64, MatchAll(), CaptureTail, 0, 0)
	rec(tr, 1, TraceSend)
	tr.TriggerStop(2, "operator mark")
	rec(tr, 3, TraceSend)
	info := tr.Info()
	if !info.Triggered || info.TriggerReason != "operator mark" || !tr.Frozen() {
		t.Fatalf("manual stop state: %+v", info)
	}
	if tr.Len() != 1 {
		t.Fatalf("events recorded after manual stop: %d", tr.Len())
	}
}

func TestCaptureParseRoundTrips(t *testing.T) {
	for _, m := range []CaptureMode{CaptureHead, CaptureTail, CaptureReservoir} {
		got, err := ParseCaptureMode(m.String())
		if err != nil || got != m {
			t.Fatalf("mode %v round-trip: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseCaptureMode("ring"); err == nil {
		t.Fatal("ParseCaptureMode accepted garbage")
	}
	for _, g := range []Trigger{0, TriggerFirstDrop, TriggerFirstRTO, TriggerFirstDrop | TriggerFirstRTO} {
		got, err := ParseTrigger(g.String())
		if err != nil || got != g {
			t.Fatalf("trigger %v (%q) round-trip: got %v err %v", g, g.String(), got, err)
		}
	}
	if _, err := ParseTrigger("on-fire"); err == nil {
		t.Fatal("ParseTrigger accepted garbage")
	}
}
