package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHubArchiveServesFlushedFiles: a flushed run registered on the hub
// appears in the dashboard's archive table and its sink files are served
// read-only under /files/<run>/<file> — and only the files recorded at
// registration time, so the endpoint cannot be walked out of the
// directory or into files created later.
func TestHubArchiveServesFlushedFiles(t *testing.T) {
	hub := NewHub()
	dir := t.TempDir()
	opts := All(dir)
	opts.Hub = hub
	opts.RunName = "fct"
	r := New(opts)
	r.Link("l0->s0.0").Enqueues = 2
	h := r.Decisions(0, 2, 2)
	h.Decision(5, 1, 1, ReasonNewFlowlet, 10, []uint8{1, 2})
	h.AddBytes(1, 1, 100)
	r.Collect()
	r.FinishTap(5)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	r.ArchiveToHub()

	// A file created after registration must not be served.
	if err := os.WriteFile(filepath.Join(dir, "later.txt"), []byte("no"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path, accept string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/files/fct/decisions.csv", ""); code != 200 ||
		!strings.Contains(body, "time_ns,src_leaf,dst_leaf,uplink,reason,age_ns,metrics") {
		t.Fatalf("decisions.csv: %d\n%.200s", code, body)
	}
	if code, body := get("/files/fct/paths.csv", ""); code != 200 ||
		!strings.Contains(body, "0,1,1,1,100") {
		t.Fatalf("paths.csv: %d\n%.200s", code, body)
	}
	for _, path := range []string{
		"/files/fct/later.txt",          // not in the frozen listing
		"/files/fct/../archive_test.go", // traversal
		"/files/nope/counters.csv",      // unknown run
		"/files/fct/",                   // no file
	} {
		if code, _ := get(path, ""); code == 200 {
			t.Errorf("%s should not be served", path)
		}
	}

	// The dashboard lists the archive with links.
	if _, body := get("/", "text/html"); !strings.Contains(body, "flushed telemetry") ||
		!strings.Contains(body, "/files/fct/decisions.csv") {
		t.Errorf("dashboard missing archive table:\n%.400s", body)
	}

	// JSON overview carries the archive entry too.
	if _, body := get("/", ""); !strings.Contains(body, `"archives"`) {
		t.Errorf("overview missing archives:\n%.200s", body)
	}

	// Re-registering the same run replaces, not duplicates.
	r.ArchiveToHub()
	if got := len(hub.Archives()); got != 1 {
		t.Fatalf("duplicate registration: %d archives", got)
	}
}
