package traceanalysis

import (
	"testing"

	"conga/internal/sim"
	"conga/internal/workload"
)

func genCfg() GenConfig {
	return GenConfig{
		Flows:         300,
		Dist:          workload.DataMining(),
		LinkRateBps:   10e9,
		BurstBytes:    64 << 10,
		MeanRateBps:   1e9,
		ArrivalWindow: 10 * sim.Millisecond,
		Seed:          3,
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Flows = 0 },
		func(c *GenConfig) { c.Dist = nil },
		func(c *GenConfig) { c.LinkRateBps = 0 },
		func(c *GenConfig) { c.BurstBytes = 0 },
		func(c *GenConfig) { c.MeanRateBps = 0 },
		func(c *GenConfig) { c.MeanRateBps = 20e9 }, // above line rate
	}
	for i, mutate := range bad {
		c := genCfg()
		mutate(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateConservesBytes(t *testing.T) {
	tr, err := Generate(genCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ByFlow) != 300 {
		t.Fatalf("%d flows, want 300", len(tr.ByFlow))
	}
	var sum int64
	for _, bursts := range tr.ByFlow {
		for _, b := range bursts {
			sum += b.Bytes
			if b.End < b.Start {
				t.Fatal("burst ends before it starts")
			}
			if b.Bytes <= 0 || b.Bytes > 64<<10 {
				t.Fatalf("burst size %d outside (0, 64KB]", b.Bytes)
			}
		}
	}
	if sum != tr.TotalBytes {
		t.Fatalf("TotalBytes %d ≠ burst sum %d", tr.TotalBytes, sum)
	}
}

func TestBurstsAreTimeOrderedPerFlow(t *testing.T) {
	tr, err := Generate(genCfg())
	if err != nil {
		t.Fatal(err)
	}
	for id, bursts := range tr.ByFlow {
		for i := 1; i < len(bursts); i++ {
			if bursts[i].Start < bursts[i-1].End {
				t.Fatalf("flow %d bursts overlap", id)
			}
		}
	}
}

// TestFlowletizeGapSemantics uses a hand-built trace to pin the gap rule.
func TestFlowletizeGapSemantics(t *testing.T) {
	ms := sim.Millisecond
	tr := &Trace{ByFlow: map[uint64][]Burst{
		1: {
			{FlowID: 1, Start: 0, End: 1 * ms, Bytes: 100},
			{FlowID: 1, Start: 2 * ms, End: 3 * ms, Bytes: 200},   // 1 ms gap
			{FlowID: 1, Start: 10 * ms, End: 11 * ms, Bytes: 400}, // 7 ms gap
		},
	}}
	// Gap threshold 2 ms: the 1 ms gap does not split, the 7 ms one does.
	got := tr.Flowletize(2 * ms)
	if len(got) != 2 {
		t.Fatalf("flowlets %v, want 2", got)
	}
	if got[0]+got[1] != 700 || (got[0] != 300 && got[0] != 400) {
		t.Fatalf("flowlet sizes %v, want {300, 400}", got)
	}
	// Huge gap: one flowlet of everything.
	if got := tr.Flowletize(100 * ms); len(got) != 1 || got[0] != 700 {
		t.Fatalf("no-split flowletization %v, want [700]", got)
	}
	// Tiny gap: every burst its own flowlet.
	if got := tr.Flowletize(1); len(got) != 3 {
		t.Fatalf("per-burst flowletization %v, want 3 pieces", got)
	}
}

func TestFlowletizeConservesBytes(t *testing.T) {
	tr, err := Generate(genCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, gap := range []sim.Time{100 * sim.Microsecond, 500 * sim.Microsecond, 250 * sim.Millisecond} {
		var sum int64
		for _, s := range tr.Flowletize(gap) {
			sum += s
		}
		if sum != tr.TotalBytes {
			t.Fatalf("gap %v: flowlets carry %d bytes, trace has %d", gap, sum, tr.TotalBytes)
		}
	}
}

// TestFigure5Shape reproduces the paper's Figure 5 ordering: smaller
// inactivity gaps concentrate the bytes in smaller transfers. The paper
// reports ≈2 orders of magnitude between the 250 ms (per-flow) and 500 µs
// curves at the byte-median.
func TestFigure5Shape(t *testing.T) {
	cfg := genCfg()
	cfg.Flows = 2000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mFlow := MedianBytesSize(tr.Flowletize(250 * sim.Millisecond))
	m500 := MedianBytesSize(tr.Flowletize(500 * sim.Microsecond))
	m100 := MedianBytesSize(tr.Flowletize(100 * sim.Microsecond))
	if !(m100 <= m500 && m500 < mFlow) {
		t.Fatalf("medians not ordered: 100µs=%d 500µs=%d flow=%d", m100, m500, mFlow)
	}
	if mFlow < 20*m500 {
		t.Fatalf("flowlet gain too small: flow median %d vs 500µs median %d", mFlow, m500)
	}
}

func TestBytesCDFBasics(t *testing.T) {
	cdf := BytesCDF([]int64{100, 100, 800})
	// 1000 bytes total: transfers ≤100 carry 200 (0.2); ≤800 carry all.
	if len(cdf) != 2 {
		t.Fatalf("CDF %v, want 2 points", cdf)
	}
	if cdf[0][0] != 100 || cdf[0][1] != 0.2 || cdf[1][1] != 1.0 {
		t.Fatalf("CDF %v", cdf)
	}
	if BytesCDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestMedianBytesSize(t *testing.T) {
	if m := MedianBytesSize([]int64{1, 1, 1, 97}); m != 97 {
		t.Fatalf("median-by-bytes %d, want 97 (the heavy transfer)", m)
	}
	if m := MedianBytesSize(nil); m != 0 {
		t.Fatalf("empty median %d", m)
	}
}

func TestConcurrencyStats(t *testing.T) {
	cfg := genCfg()
	cfg.Flows = 500
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	median, max := tr.ConcurrencyStats(sim.Millisecond)
	if median <= 0 || max < median {
		t.Fatalf("concurrency median=%d max=%d nonsensical", median, max)
	}
	// §2.6.1: concurrency is far below the flow count because flows are
	// bursty and short-lived at any instant.
	if max >= cfg.Flows {
		t.Fatalf("max concurrency %d not below flow count %d", max, cfg.Flows)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(genCfg())
	b, _ := Generate(genCfg())
	if a.TotalBytes != b.TotalBytes || a.Span != b.Span {
		t.Fatal("same seed produced different traces")
	}
}
