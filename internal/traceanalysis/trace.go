// Package traceanalysis reproduces the §2.6 measurement study: how data
// bytes distribute across transfer sizes when traffic is chopped into
// flowlets at different inactivity gaps (Figure 5), and how many flowlets
// are concurrently active (the table-sizing argument of §2.6.1).
//
// The paper analyzed 150 GB of production packet traces; those are
// proprietary, so this package generates synthetic traces with the
// burst structure the paper attributes to real datacenter traffic: flows
// transmit in NIC-offload-sized line-rate bursts separated by idle gaps
// (Kapoor et al.'s "bullet trains"), with flow sizes drawn from an
// empirical distribution. The flowletization algorithm applied to the
// trace is exactly the one the CONGA ASIC implements conceptually: a new
// flowlet starts whenever the inter-packet gap within a flow exceeds the
// inactivity threshold.
package traceanalysis

import (
	"fmt"
	"sort"

	"conga/internal/sim"
	"conga/internal/workload"
)

// Burst is one contiguous line-rate transmission of a flow.
type Burst struct {
	FlowID uint64
	Start  sim.Time
	End    sim.Time // transmission of the last byte
	Bytes  int64
}

// Trace is a set of bursts, ordered per flow.
type Trace struct {
	// Bursts grouped by flow, each group in time order.
	ByFlow map[uint64][]Burst
	// TotalBytes across the trace.
	TotalBytes int64
	// Span is the trace duration.
	Span sim.Time
}

// GenConfig parameterizes the synthetic trace generator.
type GenConfig struct {
	// Flows is the number of flows to generate.
	Flows int
	// Dist draws flow sizes.
	Dist workload.SizeDist
	// LinkRateBps is the host line rate during bursts.
	LinkRateBps float64
	// BurstBytes is the NIC-offload burst size (bytes sent back-to-back
	// at line rate); 64 KB matches TSO.
	BurstBytes int64
	// MeanRateBps is the flow's long-run average rate; the idle gap
	// between bursts is exponential with the mean that achieves it.
	MeanRateBps float64
	// ArrivalWindow spreads flow start times uniformly over this window.
	ArrivalWindow sim.Time
	Seed          uint64
}

// Validate reports the first invalid field.
func (c GenConfig) Validate() error {
	switch {
	case c.Flows <= 0:
		return fmt.Errorf("traceanalysis: Flows %d must be positive", c.Flows)
	case c.Dist == nil:
		return fmt.Errorf("traceanalysis: no size distribution")
	case c.LinkRateBps <= 0:
		return fmt.Errorf("traceanalysis: LinkRateBps must be positive")
	case c.BurstBytes <= 0:
		return fmt.Errorf("traceanalysis: BurstBytes must be positive")
	case c.MeanRateBps <= 0 || c.MeanRateBps > c.LinkRateBps:
		return fmt.Errorf("traceanalysis: MeanRateBps %v outside (0, line rate]", c.MeanRateBps)
	case c.ArrivalWindow < 0:
		return fmt.Errorf("traceanalysis: negative arrival window")
	}
	return nil
}

// Generate builds a synthetic trace.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRand(cfg.Seed + 7)
	tr := &Trace{ByFlow: make(map[uint64][]Burst, cfg.Flows)}

	// Idle gap mean: burst takes B·8/C; average rate R over a period
	// requires period B·8/R, so mean idle = B·8·(1/R − 1/C).
	meanIdle := float64(cfg.BurstBytes) * 8 * (1/cfg.MeanRateBps - 1/cfg.LinkRateBps)

	for f := 0; f < cfg.Flows; f++ {
		id := uint64(f + 1)
		size := cfg.Dist.Sample(rng)
		at := sim.Time(0)
		if cfg.ArrivalWindow > 0 {
			at = sim.Time(rng.Intn(int(cfg.ArrivalWindow)))
		}
		for size > 0 {
			b := cfg.BurstBytes
			if size < b {
				b = size
			}
			dur := sim.Time(float64(b) * 8 / cfg.LinkRateBps * float64(sim.Second))
			burst := Burst{FlowID: id, Start: at, End: at + dur, Bytes: b}
			tr.ByFlow[id] = append(tr.ByFlow[id], burst)
			tr.TotalBytes += b
			size -= b
			if burst.End > tr.Span {
				tr.Span = burst.End
			}
			gap := sim.Time(rng.ExpFloat64() * meanIdle * float64(sim.Second))
			at = burst.End + gap
		}
	}
	return tr, nil
}

// Flowletize splits every flow into flowlets at the given inactivity gap:
// a new flowlet starts when the idle interval between consecutive bursts
// exceeds gap. It returns the flowlet sizes in bytes.
func (tr *Trace) Flowletize(gap sim.Time) []int64 {
	var out []int64
	for _, bursts := range tr.ByFlow {
		cur := int64(0)
		last := sim.Time(-1)
		for _, b := range bursts {
			if last >= 0 && b.Start-last > gap {
				out = append(out, cur)
				cur = 0
			}
			cur += b.Bytes
			last = b.End
		}
		if cur > 0 {
			out = append(out, cur)
		}
	}
	return out
}

// BytesCDF returns the distribution of data bytes across transfer sizes —
// the y-axis of Figure 5: fraction of all bytes carried by transfers of
// size ≤ x, evaluated at each distinct transfer size.
func BytesCDF(sizes []int64) [][2]float64 {
	if len(sizes) == 0 {
		return nil
	}
	s := append([]int64(nil), sizes...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	total := 0.0
	for _, v := range s {
		total += float64(v)
	}
	var out [][2]float64
	run := 0.0
	for i, v := range s {
		run += float64(v)
		if i+1 < len(s) && s[i+1] == v {
			continue
		}
		out = append(out, [2]float64{float64(v), run / total})
	}
	return out
}

// MedianBytesSize returns the transfer size below which half of the bytes
// fall — the paper's headline statistic (≈30 MB for flows vs ≈500 KB for
// 500 µs flowlets).
func MedianBytesSize(sizes []int64) int64 {
	cdf := BytesCDF(sizes)
	for _, pt := range cdf {
		if pt[1] >= 0.5 {
			return int64(pt[0])
		}
	}
	if len(cdf) > 0 {
		return int64(cdf[len(cdf)-1][0])
	}
	return 0
}

// ConcurrencyStats reports the distribution of distinct active flows per
// interval (the §2.6.1 concurrent-flowlet census): median and maximum
// counts of flows with at least one burst overlapping each interval.
func (tr *Trace) ConcurrencyStats(interval sim.Time) (median, max int) {
	if tr.Span == 0 || interval <= 0 {
		return 0, 0
	}
	nBins := int(tr.Span/interval) + 1
	counts := make([]int, nBins)
	for _, bursts := range tr.ByFlow {
		seen := make(map[int]bool)
		for _, b := range bursts {
			for bin := int(b.Start / interval); bin <= int(b.End/interval) && bin < nBins; bin++ {
				if !seen[bin] {
					seen[bin] = true
					counts[bin]++
				}
			}
		}
	}
	sort.Ints(counts)
	return counts[len(counts)/2], counts[len(counts)-1]
}
