// Package mptcp models Multipath TCP as evaluated in the paper (§5): each
// connection opens N subflows (the paper follows Raiciu et al. and uses 8),
// each with its own 5-tuple so ECMP hashes them onto different paths, and
// couples their congestion-avoidance growth with the Linked Increases
// Algorithm (LIA, RFC 6356). Loss recovery, RTO, and slow start are
// inherited per-subflow from internal/tcp.
//
// Data is scheduled onto subflows in chunks, on demand, so faster subflows
// carry more bytes. Like the MPTCP versions of the paper's era, there is no
// opportunistic reinjection: a chunk claimed by a stalled subflow waits for
// that subflow's timer — one of the behaviours behind MPTCP's Incast
// fragility that the paper measures.
package mptcp

import (
	"fmt"

	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

// Config parameterizes an MPTCP connection.
type Config struct {
	// Subflows is the number of subflows per connection; the paper uses 8.
	Subflows int
	// TCP configures every subflow.
	TCP tcp.Config
	// ChunkSegments is the scheduler granularity in MSS units.
	ChunkSegments int
}

// DefaultConfig returns the paper's MPTCP setup: 8 subflows over default
// TCP parameters.
func DefaultConfig() Config {
	return Config{Subflows: 8, TCP: tcp.DefaultConfig(), ChunkSegments: 4}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.Subflows < 1 {
		return fmt.Errorf("mptcp: Subflows %d must be ≥ 1", c.Subflows)
	}
	if c.ChunkSegments < 1 {
		return fmt.Errorf("mptcp: ChunkSegments %d must be ≥ 1", c.ChunkSegments)
	}
	return c.TCP.Validate()
}

// Connection is an MPTCP connection transferring one byte stream from a
// source host to a destination host.
type Connection struct {
	eng *sim.Engine
	cfg Config

	senders   []*tcp.Sender
	receivers []*tcp.Receiver

	total     int64 // bytes requested by the application
	claimed   int64 // bytes handed to subflows
	ackedSubs int64 // bytes acked across subflows

	// OnComplete fires when every queued byte has been acknowledged.
	OnComplete func(now sim.Time)

	Started sim.Time
	closed  bool
	inPool  bool // currently parked on a Pool free list
}

// Dial creates an MPTCP connection from src to dst. flowIDBase seeds the
// subflow flow IDs (flowIDBase+i); keep bases Subflows apart.
func Dial(eng *sim.Engine, src, dst *fabric.Host, flowIDBase uint64, cfg Config) *Connection {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Connection{eng: eng, cfg: cfg, Started: eng.Now()}
	for i := 0; i < cfg.Subflows; i++ {
		port := dst.AllocPort()
		c.receivers = append(c.receivers, tcp.NewReceiver(dst, port))
		s := tcp.NewSender(eng, src, flowIDBase+uint64(i), dst.ID, port, cfg.TCP)
		idx := i
		// These closures capture only (c, idx), both of which survive pool
		// recycling unchanged, so they are bound once per Connection object
		// for its whole pooled lifetime.
		s.CAIncrease = func(acked int) { c.liaIncrease(idx, acked) }
		s.OnAcked = func(bytes int64, now sim.Time) { c.onSubflowAcked(idx, bytes, now) }
		c.senders = append(c.senders, s)
	}
	return c
}

// rebind resets a closed, recycled connection onto a new transfer: every
// subflow endpoint is re-addressed and protocol-reset through the tcp
// Rebind path (which preserves the LIA/scheduler callbacks bound at
// construction), and the scheduler state is zeroed. Port allocation order
// matches Dial exactly: per subflow, the destination port first, then the
// sender's source port.
func (c *Connection) rebind(eng *sim.Engine, src, dst *fabric.Host, flowIDBase uint64, cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c.eng = eng
	c.cfg = cfg
	c.total, c.claimed, c.ackedSubs = 0, 0, 0
	c.OnComplete = nil
	c.Started = eng.Now()
	c.closed = false
	for i, s := range c.senders {
		port := dst.AllocPort()
		c.receivers[i].Rebind(dst, port)
		s.Rebind(eng, src, flowIDBase+uint64(i), dst.ID, port, cfg.TCP)
	}
}

// Close tears down all subflows.
func (c *Connection) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.senders {
		s.Close()
	}
	for _, r := range c.receivers {
		r.Close()
	}
}

// Subflows returns the subflow senders, for inspection in tests and stats.
func (c *Connection) Subflows() []*tcp.Sender { return c.senders }

// Acked returns the total bytes acknowledged across subflows.
func (c *Connection) Acked() int64 { return c.ackedSubs }

// Transfer queues n more bytes onto the connection.
func (c *Connection) Transfer(n int64, now sim.Time) {
	if n <= 0 {
		panic(fmt.Sprintf("mptcp: Transfer(%d)", n))
	}
	c.total += n
	// Prime every subflow with an initial chunk; later chunks are claimed
	// as ACKs open windows.
	for i := range c.senders {
		c.refill(i, now)
	}
}

func (c *Connection) chunk() int64 {
	return int64(c.cfg.ChunkSegments * c.cfg.TCP.MSS)
}

// refill hands subflow i more data if it is running dry and unclaimed bytes
// remain. "Running dry" means its queued-unsent backlog is below one chunk:
// enough to keep the pipe busy without stranding large amounts of data on a
// subflow that later stalls.
func (c *Connection) refill(i int, now sim.Time) {
	s := c.senders[i]
	if c.claimed >= c.total || s.QueuedUnsent() >= c.chunk() {
		return
	}
	n := c.chunk()
	if rem := c.total - c.claimed; rem < n {
		n = rem
	}
	c.claimed += n
	s.Queue(n, now)
}

func (c *Connection) onSubflowAcked(i int, bytes int64, now sim.Time) {
	c.ackedSubs += bytes
	c.refill(i, now)
	if c.ackedSubs >= c.total && c.claimed >= c.total && c.OnComplete != nil {
		c.OnComplete(now)
	}
}

// liaIncrease implements RFC 6356's coupled increase for subflow i: per
// ACK, w_i grows by min(α·acked·MSS/Σw, acked·MSS/w_i), where
//
//	α = Σw · max_j(w_j/rtt_j²) / (Σ_j w_j/rtt_j)².
//
// α makes the aggregate no more aggressive than one TCP on the best path;
// the min() caps a subflow at its standalone Reno growth.
func (c *Connection) liaIncrease(i int, acked int) {
	s := c.senders[i]
	mss := float64(c.cfg.TCP.MSS)

	var totalW, denom, maxTerm float64
	for _, sf := range c.senders {
		w := sf.Cwnd()
		rtt := sf.SRTT().Seconds()
		if rtt <= 0 {
			// No sample yet: this subflow has not carried traffic, so
			// it contributes (almost) nothing to the aggregate.
			rtt = 1.0 // 1 s sentinel keeps its weight negligible
		}
		totalW += w
		denom += w / rtt
		if term := w / (rtt * rtt); term > maxTerm {
			maxTerm = term
		}
	}
	if totalW <= 0 || denom <= 0 {
		s.AddCwnd(mss * mss / s.Cwnd())
		return
	}
	alpha := totalW * maxTerm / (denom * denom)
	coupled := alpha * float64(acked) * mss / totalW
	solo := float64(acked) * mss / s.Cwnd()
	if coupled > solo {
		coupled = solo
	}
	s.AddCwnd(coupled)
}

// Flow mirrors tcp.StartFlow for MPTCP: transfer size bytes and report the
// completion time.
type Flow struct {
	Conn    *Connection
	Size    int64
	Started sim.Time

	pool         *Pool
	onDone       func(f *Flow, now sim.Time)
	onCompleteFn func(now sim.Time) // finish, bound once per Flow object
	inPool       bool
}

// StartFlow begins an MPTCP transfer of size bytes from src to dst.
func StartFlow(eng *sim.Engine, src, dst *fabric.Host, flowIDBase uint64, size int64,
	cfg Config, onDone func(f *Flow, now sim.Time)) *Flow {
	return (*Pool)(nil).StartFlow(eng, src, dst, flowIDBase, size, cfg, onDone)
}

// finish is the connection's OnComplete: tear the subflows down (ports
// recycle first, as in tcp.Flow), run the caller's callback, then return
// the flow and connection to the pool.
func (f *Flow) finish(now sim.Time) {
	f.Conn.Close()
	if f.onDone != nil {
		f.onDone(f, now)
	}
	if f.pool != nil {
		f.pool.putFlow(f)
	}
}

// FCT returns the flow completion time given the completion timestamp.
func (f *Flow) FCT(done sim.Time) sim.Time { return done - f.Started }

// Pool recycles Connections (with their subflow senders and receivers
// attached) and Flows within one engine, the MPTCP counterpart of
// tcp.FlowPool. A connection's per-subflow LIA and scheduler closures are
// bound once at construction and survive recycling — the whole point of
// keeping endpoints attached to their connection — while the tcp Rebind
// path fully resets per-transfer protocol state. A nil *Pool is valid
// everywhere and falls back to fresh allocation.
type Pool struct {
	conns      []*Connection
	splitConns []*Connection // sender-only connections for cross-domain flows (split.go)
	flows      []*Flow
	halves     []*HalfFlow

	// Allocs counts pool misses; Recycled counts connections reused.
	ConnAllocs   uint64
	ConnRecycled uint64
}

// NewPool returns an empty pool for one engine.
func NewPool() *Pool { return &Pool{} }

// Dial is mptcp.Dial drawing from the pool; a nil pool allocates fresh. A
// recycled connection whose subflow count no longer matches cfg is
// discarded (the configuration changed mid-run, which real harnesses
// never do).
func (p *Pool) Dial(eng *sim.Engine, src, dst *fabric.Host, flowIDBase uint64, cfg Config) *Connection {
	if p != nil {
		for n := len(p.conns); n > 0; n = len(p.conns) {
			c := p.conns[n-1]
			p.conns[n-1] = nil
			p.conns = p.conns[:n-1]
			c.inPool = false
			if len(c.senders) != cfg.Subflows {
				continue
			}
			p.ConnRecycled++
			c.rebind(eng, src, dst, flowIDBase, cfg)
			return c
		}
		p.ConnAllocs++
	}
	return Dial(eng, src, dst, flowIDBase, cfg)
}

// PutConn releases a closed connection to the pool. Connections that are
// still open, already pooled, or given to a nil pool are left alone.
func (p *Pool) PutConn(c *Connection) {
	if p == nil || c == nil || !c.closed || c.inPool {
		return
	}
	c.OnComplete = nil
	c.inPool = true
	p.conns = append(p.conns, c)
}

// StartFlow is mptcp.StartFlow drawing the Flow and its Connection from
// the pool (nil pool = fresh allocation). When pooled, the flow returns to
// the pool right after onDone, so the callback must not retain the *Flow
// or its connection.
func (p *Pool) StartFlow(eng *sim.Engine, src, dst *fabric.Host, flowIDBase uint64, size int64,
	cfg Config, onDone func(f *Flow, now sim.Time)) *Flow {
	if size <= 0 {
		size = 1
	}
	f := p.getFlow()
	f.pool = p
	f.onDone = onDone
	f.Conn = p.Dial(eng, src, dst, flowIDBase, cfg)
	f.Size = size
	f.Started = eng.Now()
	f.Conn.OnComplete = f.onCompleteFn
	f.Conn.Transfer(size, eng.Now())
	return f
}

func (p *Pool) getFlow() *Flow {
	if p != nil {
		if n := len(p.flows); n > 0 {
			f := p.flows[n-1]
			p.flows[n-1] = nil
			p.flows = p.flows[:n-1]
			f.inPool = false
			return f
		}
	}
	f := &Flow{}
	f.onCompleteFn = f.finish
	return f
}

func (p *Pool) putFlow(f *Flow) {
	if p == nil || f == nil || f.inPool {
		return
	}
	p.PutConn(f.Conn)
	f.Conn = nil
	f.onDone = nil
	f.inPool = true
	p.flows = append(p.flows, f)
}
