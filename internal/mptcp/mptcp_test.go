package mptcp

import (
	"testing"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

func testNet(t testing.TB) (*sim.Engine, *fabric.Network) {
	t.Helper()
	eng := sim.New()
	p := core.DefaultParams()
	p.FlowletTableSize = 4096
	n := fabric.MustNetwork(eng, fabric.Config{
		NumLeaves:     2,
		NumSpines:     2,
		HostsPerLeaf:  4,
		LinksPerSpine: 1,
		AccessRateBps: 1e9,
		FabricRateBps: 1e9,
		Scheme:        fabric.SchemeECMP,
		Params:        p,
		Seed:          5,
	})
	return eng, n
}

func testConfig() Config {
	c := DefaultConfig()
	c.TCP.MinRTO = 10 * sim.Millisecond
	c.TCP.InitRTO = 50 * sim.Millisecond
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.Subflows = 0
	if err := c.Validate(); err == nil {
		t.Fatal("0 subflows accepted")
	}
	c = DefaultConfig()
	c.ChunkSegments = 0
	if err := c.Validate(); err == nil {
		t.Fatal("0 chunk segments accepted")
	}
}

func TestTransferCompletesExactly(t *testing.T) {
	eng, n := testNet(t)
	const size = 3<<20 + 12345
	var fct sim.Time
	f := StartFlow(eng, n.Host(0), n.Host(4), 100, size, testConfig(), func(fl *Flow, now sim.Time) {
		fct = fl.FCT(now)
	})
	eng.Run(sim.MaxTime)
	if fct == 0 {
		t.Fatal("transfer did not complete")
	}
	if got := f.Conn.Acked(); got != size {
		t.Fatalf("acked %d bytes, want %d", got, size)
	}
	// 3 MB at 1 Gbps ≈ 25 ms; allow generous overheads.
	if fct > 100*sim.Millisecond {
		t.Fatalf("FCT %v far beyond line rate", fct)
	}
}

func TestSubflowsUseDistinctFlowIDs(t *testing.T) {
	eng, n := testNet(t)
	c := Dial(eng, n.Host(0), n.Host(4), 500, testConfig())
	defer c.Close()
	seen := map[uint64]bool{}
	for _, s := range c.Subflows() {
		if seen[s.FlowID()] {
			t.Fatalf("duplicate subflow flow ID %d", s.FlowID())
		}
		seen[s.FlowID()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("%d subflows, want 8", len(seen))
	}
}

func TestSubflowsSpreadAcrossPaths(t *testing.T) {
	eng, n := testNet(t)
	var fct sim.Time
	StartFlow(eng, n.Host(0), n.Host(4), 700, 8<<20, testConfig(), func(f *Flow, now sim.Time) {
		fct = f.FCT(now)
	})
	eng.Run(sim.MaxTime)
	if fct == 0 {
		t.Fatal("no completion")
	}
	up := n.Leaves[0].Uplinks()
	if up[0].TxPackets == 0 || up[1].TxPackets == 0 {
		t.Fatalf("subflows did not spread: uplink tx = %d, %d", up[0].TxPackets, up[1].TxPackets)
	}
}

// TestLIACouplingLessAggressiveThanNTCPs is the defining property of LIA:
// N coupled subflows through one bottleneck must take roughly one TCP's
// share, not N shares.
func TestLIACouplingLessAggressiveThanNTCPs(t *testing.T) {
	eng, n := testNet(t)
	cfg := testConfig()
	// One MPTCP connection and one plain TCP compete for host 4's access
	// downlink.
	mf := StartFlow(eng, n.Host(0), n.Host(4), 1000, 1<<30, cfg, nil)
	tf := tcp.StartFlow(eng, n.Host(1), n.Host(4), 2000, 1<<30, cfg.TCP, nil)
	eng.Run(200 * sim.Millisecond)
	mBytes := mf.Conn.Acked()
	tBytes := tf.Sender.Stats().BytesAcked
	ratio := float64(mBytes) / float64(tBytes)
	// Uncoupled 8 subflows would take ~8×; LIA should stay below ~3× and
	// above ~1/3 (it may still be somewhat more aggressive in slow start).
	if ratio > 3.5 || ratio < 0.28 {
		t.Fatalf("MPTCP/TCP share ratio %.2f (m=%d t=%d); LIA coupling broken", ratio, mBytes, tBytes)
	}
}

func TestChunkSchedulerFavoursFastSubflow(t *testing.T) {
	eng, n := testNet(t)
	cfg := testConfig()
	cfg.Subflows = 2
	f := StartFlow(eng, n.Host(0), n.Host(4), 3000, 4<<20, cfg, nil)
	eng.Run(sim.MaxTime)
	s := f.Conn.Subflows()
	a := s[0].Stats().BytesAcked
	b := s[1].Stats().BytesAcked
	if a+b != 4<<20 {
		t.Fatalf("subflow bytes %d+%d ≠ total", a, b)
	}
	if a == 0 || b == 0 {
		t.Fatalf("scheduler starved a subflow: %d/%d", a, b)
	}
}

func TestRepeatedTransfersOnOneConnection(t *testing.T) {
	eng, n := testNet(t)
	c := Dial(eng, n.Host(0), n.Host(4), 4000, testConfig())
	defer c.Close()
	done := 0
	c.OnComplete = func(now sim.Time) {
		done++
		if done < 3 {
			c.Transfer(1<<20, now)
		}
	}
	c.Transfer(1<<20, 0)
	eng.Run(sim.MaxTime)
	if done != 3 {
		t.Fatalf("%d transfer completions, want 3", done)
	}
	if c.Acked() != 3<<20 {
		t.Fatalf("acked %d, want 3 MB", c.Acked())
	}
}

func TestTransferPanicsOnNonPositive(t *testing.T) {
	eng, n := testNet(t)
	c := Dial(eng, n.Host(0), n.Host(4), 5000, testConfig())
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Error("Transfer(0) did not panic")
		}
	}()
	c.Transfer(0, 0)
}

func TestIncastBurstinessExceedsTCP(t *testing.T) {
	// The §5.3 mechanism: many MPTCP senders to one receiver contend with
	// 8× as many subflows, overflowing the receiver's access-port buffer
	// more than plain TCP does.
	run := func(useMPTCP bool) uint64 {
		eng, n := testNet(t)
		cfg := testConfig()
		for i := 0; i < 3; i++ {
			src := n.Host(i)
			if useMPTCP {
				StartFlow(eng, src, n.Host(4), uint64(9000+100*i), 2<<20, cfg, nil)
			} else {
				tcp.StartFlow(eng, src, n.Host(4), uint64(9000+100*i), 2<<20, cfg.TCP, nil)
			}
		}
		eng.Run(sim.MaxTime)
		return n.Leaves[1].Downlink(4).Drops
	}
	mptcpDrops := run(true)
	tcpDrops := run(false)
	if mptcpDrops < tcpDrops {
		t.Fatalf("MPTCP (%d drops) was gentler than TCP (%d) at the incast port", mptcpDrops, tcpDrops)
	}
}
