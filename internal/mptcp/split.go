package mptcp

import (
	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

// Split connections: the sender half of an MPTCP connection whose subflow
// receivers live in another space-parallel partition domain (see
// internal/fabric/partition.go). The parallel harness pre-binds one
// tcp.Receiver per subflow on the destination host — at consecutive ports
// dstPortBase..dstPortBase+Subflows-1 — inside the destination's domain,
// and the connection here carries only the senders. Close's receiver loop
// walks an empty slice, and the receivers (purely reactive) stay bound on
// the destination side; the pool keeps split connections on their own free
// list so a full connection's rebind never sees a missing receiver.

// DialSplit creates the sender half of an MPTCP connection from src to the
// receivers already bound at dstHost ports dstPortBase+i (subflow i).
// flowIDBase seeds the subflow flow IDs exactly as Dial does.
func DialSplit(eng *sim.Engine, src *fabric.Host, flowIDBase uint64,
	dstHost, dstPortBase int, cfg Config) *Connection {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Connection{eng: eng, cfg: cfg, Started: eng.Now()}
	for i := 0; i < cfg.Subflows; i++ {
		s := tcp.NewSender(eng, src, flowIDBase+uint64(i), dstHost, dstPortBase+i, cfg.TCP)
		idx := i
		// Bound once per Connection object, as in Dial.
		s.CAIncrease = func(acked int) { c.liaIncrease(idx, acked) }
		s.OnAcked = func(bytes int64, now sim.Time) { c.onSubflowAcked(idx, bytes, now) }
		c.senders = append(c.senders, s)
	}
	return c
}

// rebindSplit is Connection.rebind for split connections: only the sender
// endpoints are re-addressed (there are no attached receivers to move).
func (c *Connection) rebindSplit(eng *sim.Engine, src *fabric.Host, flowIDBase uint64,
	dstHost, dstPortBase int, cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c.eng = eng
	c.cfg = cfg
	c.total, c.claimed, c.ackedSubs = 0, 0, 0
	c.OnComplete = nil
	c.Started = eng.Now()
	c.closed = false
	for i, s := range c.senders {
		s.Rebind(eng, src, flowIDBase+uint64(i), dstHost, dstPortBase+i, cfg.TCP)
	}
}

// HalfFlow mirrors tcp.HalfFlow for MPTCP: a one-shot transfer over a split
// connection, reporting its completion time from the sender side.
type HalfFlow struct {
	Conn    *Connection
	Size    int64
	Started sim.Time

	pool         *Pool
	onDone       func(f *HalfFlow, now sim.Time)
	onCompleteFn func(now sim.Time) // finish, bound once per HalfFlow object
	inPool       bool
}

// finish is the split connection's OnComplete: tear the senders down, run
// the caller's callback, then return the flow and connection to the pool.
func (f *HalfFlow) finish(now sim.Time) {
	f.Conn.Close()
	if f.onDone != nil {
		f.onDone(f, now)
	}
	if f.pool != nil {
		f.pool.putHalf(f)
	}
}

// FCT returns the flow completion time given the completion timestamp.
func (f *HalfFlow) FCT(done sim.Time) sim.Time { return done - f.Started }

// DialSplit is mptcp.DialSplit drawing from the pool's split-connection
// free list; a nil pool allocates fresh. Recycled connections whose subflow
// count no longer matches cfg are discarded, as in Dial.
func (p *Pool) DialSplit(eng *sim.Engine, src *fabric.Host, flowIDBase uint64,
	dstHost, dstPortBase int, cfg Config) *Connection {
	if p != nil {
		for n := len(p.splitConns); n > 0; n = len(p.splitConns) {
			c := p.splitConns[n-1]
			p.splitConns[n-1] = nil
			p.splitConns = p.splitConns[:n-1]
			c.inPool = false
			if len(c.senders) != cfg.Subflows {
				continue
			}
			p.ConnRecycled++
			c.rebindSplit(eng, src, flowIDBase, dstHost, dstPortBase, cfg)
			return c
		}
		p.ConnAllocs++
	}
	return DialSplit(eng, src, flowIDBase, dstHost, dstPortBase, cfg)
}

// putConnSplit releases a closed split connection to its own free list.
func (p *Pool) putConnSplit(c *Connection) {
	if p == nil || c == nil || !c.closed || c.inPool {
		return
	}
	c.OnComplete = nil
	c.inPool = true
	p.splitConns = append(p.splitConns, c)
}

// StartHalfFlow begins an MPTCP transfer of size bytes from src to the
// receivers already bound at dstHost ports dstPortBase+i. When pooled, the
// flow returns to the pool right after onDone, so the callback must not
// retain the *HalfFlow or its connection.
func (p *Pool) StartHalfFlow(eng *sim.Engine, src *fabric.Host, flowIDBase uint64,
	dstHost, dstPortBase int, size int64, cfg Config, onDone func(f *HalfFlow, now sim.Time)) *HalfFlow {
	if size <= 0 {
		size = 1
	}
	f := p.getHalf()
	f.pool = p
	f.onDone = onDone
	f.Conn = p.DialSplit(eng, src, flowIDBase, dstHost, dstPortBase, cfg)
	f.Size = size
	f.Started = eng.Now()
	f.Conn.OnComplete = f.onCompleteFn
	f.Conn.Transfer(size, eng.Now())
	return f
}

func (p *Pool) getHalf() *HalfFlow {
	if p != nil {
		if n := len(p.halves); n > 0 {
			f := p.halves[n-1]
			p.halves[n-1] = nil
			p.halves = p.halves[:n-1]
			f.inPool = false
			return f
		}
	}
	f := &HalfFlow{}
	f.onCompleteFn = f.finish
	return f
}

func (p *Pool) putHalf(f *HalfFlow) {
	if p == nil || f == nil || f.inPool {
		return
	}
	p.putConnSplit(f.Conn)
	f.Conn = nil
	f.onDone = nil
	f.inPool = true
	p.halves = append(p.halves, f)
}
