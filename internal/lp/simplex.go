// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c·x
//	subject to  A[i]·x (≤ or =) b[i]   for each row i
//	            x ≥ 0
//
// It exists to compute the optimal (coordinated) routing in the bottleneck
// routing game of §6.1 — minimizing the maximum link utilization over all
// feasible traffic splits — against which the Nash flows reached by
// CONGA-style selfish routing are compared (the Price of Anarchy).
//
// The implementation is a classic tableau simplex with Bland's rule, which
// guarantees termination at the cost of speed; the anarchy instances are
// tiny (hundreds of variables), so robustness wins.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Common solver failures.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Problem is one linear program.
type Problem struct {
	// C is the objective (maximized).
	C []float64
	// A and B give the constraint rows.
	A [][]float64
	B []float64
	// Eq[i] marks row i as an equality; false means ≤.
	Eq []bool
}

// Validate reports structural errors.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: empty objective")
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Eq) {
		return fmt.Errorf("lp: A/B/Eq sizes disagree: %d/%d/%d", len(p.A), len(p.B), len(p.Eq))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Solve returns an optimal x and the objective value.
func Solve(p *Problem) ([]float64, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	m := len(p.A)

	// Canonicalize: make every b non-negative.
	a := make([][]float64, m)
	b := make([]float64, m)
	eq := make([]bool, m)
	flipped := make([]bool, m)
	for i := range p.A {
		a[i] = append([]float64(nil), p.A[i]...)
		b[i] = p.B[i]
		eq[i] = p.Eq[i]
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
			flipped[i] = true
			// ≤ with negative rhs flips to ≥, handled via surplus+artificial.
		}
	}

	// Column layout: [x (n)] [slack/surplus] [artificial], with explicit
	// per-row bookkeeping of which columns exist.
	slackCol := make([]int, m) // -1 if none
	artCol := make([]int, m)   // -1 if none
	cols := n
	for i := 0; i < m; i++ {
		slackCol[i] = -1
		artCol[i] = -1
		switch {
		case eq[i]:
			artCol[i] = 0 // assigned below
		case flipped[i]:
			// Became ≥: surplus (−1 coefficient) + artificial.
			slackCol[i] = 0
			artCol[i] = 0
		default:
			slackCol[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		if slackCol[i] == 0 {
			slackCol[i] = cols
			cols++
		}
	}
	artStart := cols
	for i := 0; i < m; i++ {
		if artCol[i] == 0 {
			artCol[i] = cols
			cols++
		}
	}

	// Tableau rows: m constraints; columns: cols + rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, cols+1)
		copy(t[i], a[i])
		if s := slackCol[i]; s >= 0 {
			if flipped[i] && !eq[i] {
				t[i][s] = -1 // surplus
			} else {
				t[i][s] = 1
			}
		}
		if ac := artCol[i]; ac >= 0 {
			t[i][ac] = 1
			basis[i] = ac
		} else {
			basis[i] = slackCol[i]
		}
		t[i][cols] = b[i]
	}

	// Phase 1: minimize Σ artificials (maximize −Σ).
	if artStart < cols {
		obj := make([]float64, cols+1)
		for c := artStart; c < cols; c++ {
			obj[c] = -1
		}
		// Price out artificial basics.
		reduced := priceOut(obj, t, basis)
		if err := iterate(t, basis, reduced, cols); err != nil {
			return nil, 0, err
		}
		// reduced[cols] = −(phase-1 objective) = Σ artificial values at
		// optimum; any residual artificial mass means no feasible point.
		if reduced[cols] > eps {
			return nil, 0, ErrInfeasible
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i, bv := range basis {
			if bv < artStart {
				continue
			}
			pivoted := false
			for c := 0; c < artStart; c++ {
				if math.Abs(t[i][c]) > eps {
					pivot(t, basis, i, c)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real variables: redundant.
				basis[i] = -1
			}
		}
	}

	// Phase 2: original objective over the real variables.
	obj := make([]float64, cols+1)
	copy(obj, p.C)
	reduced := priceOut(obj, t, basis)
	// Forbid artificials from re-entering.
	for c := artStart; c < cols; c++ {
		reduced[c] = math.Inf(-1)
	}
	if err := iterate(t, basis, reduced, artStart); err != nil {
		return nil, 0, err
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv >= 0 && bv < n {
			x[bv] = t[i][cols]
		}
	}
	val := 0.0
	for j := range x {
		val += p.C[j] * x[j]
	}
	return x, val, nil
}

// priceOut returns the reduced-cost row for the given objective and basis:
// reduced[j] = obj[j] − Σ_i obj[basis[i]]·t[i][j], with the running
// objective value in reduced[cols].
func priceOut(obj []float64, t [][]float64, basis []int) []float64 {
	cols := len(t[0]) - 1
	reduced := make([]float64, cols+1)
	copy(reduced, obj)
	for i, bv := range basis {
		if bv < 0 {
			continue
		}
		cb := obj[bv]
		if cb == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			reduced[j] -= cb * t[i][j]
		}
	}
	return reduced
}

// iterate runs simplex pivots on the tableau until optimal, considering
// entering columns < enterLimit. Bland's rule: smallest-index entering and
// leaving variables, which precludes cycling.
func iterate(t [][]float64, basis []int, reduced []float64, enterLimit int) error {
	m := len(t)
	cols := len(t[0]) - 1
	for iter := 0; ; iter++ {
		if iter > 200000 {
			return fmt.Errorf("lp: iteration limit reached")
		}
		enter := -1
		for c := 0; c < enterLimit; c++ {
			if reduced[c] > eps {
				enter = c
				break
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if basis[i] < 0 || t[i][enter] <= eps {
				continue
			}
			ratio := t[i][cols] / t[i][enter]
			if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter)
		// Update reduced costs by the same elimination.
		f := reduced[enter]
		if f != 0 {
			for j := 0; j <= cols; j++ {
				reduced[j] -= f * t[leave][j]
			}
			reduced[enter] = 0
		}
	}
}

// pivot makes column c basic in row r.
func pivot(t [][]float64, basis []int, r, c int) {
	cols := len(t[0]) - 1
	pv := t[r][c]
	for j := 0; j <= cols; j++ {
		t[r][j] /= pv
	}
	t[r][c] = 1
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			t[i][j] -= f * t[r][j]
		}
		t[i][c] = 0
	}
	basis[r] = c
}
