package lp

import (
	"math"
	"testing"

	"conga/internal/sim"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, z=36.
	p := &Problem{
		C:  []float64{3, 5},
		A:  [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B:  []float64{4, 12, 18},
		Eq: []bool{false, false, false},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 36) || !approx(x[0], 2) || !approx(x[1], 6) {
		t.Fatalf("got x=%v v=%v, want (2,6) 36", x, v)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 10, y ≤ 6 → x=4, y=6, z=16.
	p := &Problem{
		C:  []float64{1, 2},
		A:  [][]float64{{1, 1}, {0, 1}},
		B:  []float64{10, 6},
		Eq: []bool{true, false},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 16) || !approx(x[0], 4) || !approx(x[1], 6) {
		t.Fatalf("got x=%v v=%v, want (4,6) 16", x, v)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// max −x s.t. −x ≤ −3 (i.e. x ≥ 3) → x=3, v=−3.
	p := &Problem{
		C:  []float64{-1},
		A:  [][]float64{{-1}},
		B:  []float64{-3},
		Eq: []bool{false},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3) || !approx(v, -3) {
		t.Fatalf("got x=%v v=%v, want x=3 v=-3", x, v)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3.
	p := &Problem{
		C:  []float64{1},
		A:  [][]float64{{1}, {-1}},
		B:  []float64{1, -3},
		Eq: []bool{false, false},
	}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		C:  []float64{1, 0},
		A:  [][]float64{{0, 1}},
		B:  []float64{5},
		Eq: []bool{false},
	}
	if _, _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints around the same vertex must not cycle.
	p := &Problem{
		C:  []float64{1, 1},
		A:  [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}},
		B:  []float64{2, 2, 2, 4},
		Eq: []bool{false, false, false, false},
	}
	_, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 4) {
		t.Fatalf("v=%v, want 4", v)
	}
}

func TestSolveValidation(t *testing.T) {
	bad := []*Problem{
		{},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Eq: []bool{false}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Eq: []bool{false}},
	}
	for i, p := range bad {
		if _, _, err := Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

// TestBottleneckRoutingShape solves the LP the anarchy package builds: two
// users on a 2-leaf/2-spine fabric with one thin path must split 2:1.
func TestBottleneckRoutingShape(t *testing.T) {
	// Variables: f0 (user via spine0), f1 (user via spine1), B.
	// min B ⇔ max −B, demand f0+f1 = 15, capacity f0 ≤ 10B, f1 ≤ 5B.
	p := &Problem{
		C: []float64{0, 0, -1},
		A: [][]float64{
			{1, 1, 0},
			{1, 0, -10},
			{0, 1, -5},
		},
		B:  []float64{15, 0, 0},
		Eq: []bool{true, false, false},
	}
	x, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[2], 1) {
		t.Fatalf("optimal bottleneck %v, want 1.0", x[2])
	}
	if !approx(x[0], 10) || !approx(x[1], 5) {
		t.Fatalf("split (%v, %v), want (10, 5)", x[0], x[1])
	}
}

// TestRandomFeasibleProblemsSatisfyConstraints fuzzes small LPs and checks
// that any returned solution actually satisfies its constraints.
func TestRandomFeasibleProblemsSatisfyConstraints(t *testing.T) {
	rng := sim.NewRand(123)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 3 // non-negative rows keep it bounded-ish
			}
			p.A = append(p.A, row)
			p.B = append(p.B, rng.Float64()*10)
			p.Eq = append(p.Eq, false)
		}
		// Ensure boundedness: add x_j ≤ 10 rows.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 10)
			p.Eq = append(p.Eq, false)
		}
		x, _, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, row := range p.A {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * x[j]
			}
			if lhs > p.B[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v (x=%v)", trial, i, lhs, p.B[i], x)
			}
		}
		for j, v := range x {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, v)
			}
		}
	}
}
