package conga

// One benchmark per paper artifact: each regenerates (a scaled-down
// instance of) the corresponding table or figure and reports domain
// metrics alongside ns/op. cmd/congabench runs the full-size versions;
// these exist so `go test -bench` exercises every experiment path and
// gives a stable cost baseline.

import (
	"testing"
	"time"

	"conga/internal/anarchy"
	"conga/internal/sim"
	"conga/internal/stochmodel"
	"conga/internal/traceanalysis"
	"conga/internal/workload"
)

// benchTopo is deliberately small: benchmarks measure simulator cost and
// exercise every code path, not paper-scale statistics.
func benchTopo() Topology {
	return Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 20}
}

// BenchmarkEngineRaw is a pure schedule/run loop on the bare event engine —
// no fabric, no transport — so engine-level regressions (heap cost, event
// allocation) are visible in isolation from the packet model.
func BenchmarkEngineRaw(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New()
	fn := func(sim.Time) {}
	for i := 0; i < b.N; i++ {
		base := eng.Now()
		// 64 events over 8 distinct timestamps: exercises both heap ordering
		// and the same-time insertion-order tie-break.
		for j := 0; j < 64; j++ {
			eng.At(base+sim.Time(j%8), fn)
		}
		eng.Run(sim.MaxTime)
	}
	b.ReportMetric(64, "events/op")
}

// benchIdleFabric measures the cost of pure fabric housekeeping: a network
// is built and the engine runs simulated time with zero flows, so the only
// work is the periodic DRE decay and flowlet sweep tickers. With dirty-list
// tickers this cost must not scale with the link count or flowlet-table
// size; the sub-benchmarks sweep the fabric size to make that visible.
func benchIdleFabric(b *testing.B, leaves int) {
	b.Helper()
	b.ReportAllocs()
	eng := sim.New()
	topo := Topology{Leaves: leaves, Spines: 2, HostsPerLeaf: 2, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 40}
	if _, err := topo.build(eng, SchemeCONGA, DefaultParams(), nil, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 10 ms of idle fabric: 500 DRE decay periods and 20 flowlet sweeps.
		eng.Run(eng.Now() + 10*sim.Millisecond)
	}
}

// BenchmarkIdleFabric2Leaves is the baseline-size idle fabric (16 fabric
// links, 2 flowlet tables).
func BenchmarkIdleFabric2Leaves(b *testing.B) { benchIdleFabric(b, 2) }

// BenchmarkIdleFabric8Leaves has 4× the links and tables of the baseline.
func BenchmarkIdleFabric8Leaves(b *testing.B) { benchIdleFabric(b, 8) }

// BenchmarkIdleFabric32Leaves has 16× the links and tables of the baseline.
func BenchmarkIdleFabric32Leaves(b *testing.B) { benchIdleFabric(b, 32) }

func benchFCT(b *testing.B, scheme Scheme, w Workload, load float64, fail bool) {
	b.Helper()
	b.ReportAllocs()
	topo := benchTopo()
	if fail {
		topo.FailedLinks = [][3]int{{1, 1, 1}}
	}
	var events uint64
	var norm float64
	for i := 0; i < b.N; i++ {
		res, err := RunFCT(FCTConfig{
			Topology:  topo,
			Scheme:    scheme,
			Workload:  w,
			Load:      load,
			Duration:  20 * time.Millisecond,
			MaxFlows:  250,
			Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		norm += res.NormFCT
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(norm/float64(b.N), "normFCT")
}

// benchScale runs one cell of the large-fabric ScaleConfig sweep. These
// are the PR 6 scale proof: with the allocation-free flow lifecycle,
// allocs/op must stay flat (warm-up only) as the fabric grows from 64 to
// 256 leaves — steady-state work recycles through the per-engine pools.
func benchScale(b *testing.B, leaves int, accessGbps float64, maxFlows int) {
	b.Helper()
	benchScaleP(b, leaves, accessGbps, maxFlows, 1)
}

// benchScaleP is benchScale with a space-parallel domain count: the same
// sweep cell executed by sim.ParallelEngine across `parallel` worker
// goroutines. ns/op against the sequential cell is the speedup the PR 7
// tentpole claims; events/op is deterministic per worker count and gated
// exactly by tools/benchguard.
func benchScaleP(b *testing.B, leaves int, accessGbps float64, maxFlows, parallel int) {
	b.Helper()
	b.ReportAllocs()
	// Take the cell from the sweep's own expansion so the benchmark and
	// `congabench scale` measure identical configurations.
	cfg := ScaleConfig{
		Leaves:     []int{leaves},
		AccessGbps: []float64{accessGbps},
		MaxFlows:   maxFlows,
		Parallel:   parallel,
	}.Configs()[0]
	var events uint64
	var norm float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := RunFCT(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		norm += res.NormFCT
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(norm/float64(b.N), "normFCT")
}

// BenchmarkScale64Leaves40G is the smallest sweep cell: 256 hosts at 40G.
func BenchmarkScale64Leaves40G(b *testing.B) { benchScale(b, 64, 40, 2000) }

// BenchmarkScale128Leaves40G doubles the fabric: 512 hosts at 40G.
func BenchmarkScale128Leaves40G(b *testing.B) { benchScale(b, 128, 40, 2000) }

// BenchmarkScale256Leaves40G is the largest 40G cell: 1024 hosts.
func BenchmarkScale256Leaves40G(b *testing.B) { benchScale(b, 256, 40, 2000) }

// BenchmarkScale256Leaves100G is the largest cell at 100G access/fabric.
func BenchmarkScale256Leaves100G(b *testing.B) { benchScale(b, 256, 100, 2000) }

// BenchmarkScale256Leaves40GParallel{2,4,8} run the largest 40G cell
// space-parallel. Compare ns/op with BenchmarkScale256Leaves40G for the
// speedup; each worker count has its own deterministic events/op.
func BenchmarkScale256Leaves40GParallel2(b *testing.B) { benchScaleP(b, 256, 40, 2000, 2) }
func BenchmarkScale256Leaves40GParallel4(b *testing.B) { benchScaleP(b, 256, 40, 2000, 4) }
func BenchmarkScale256Leaves40GParallel8(b *testing.B) { benchScaleP(b, 256, 40, 2000, 8) }

// BenchmarkFig02Asymmetry regenerates the Figure 2 scenario (ECMP vs local
// vs CONGA under capacity asymmetry).
func BenchmarkFig02Asymmetry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := RunFigure2(SchemeCONGA, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalGbps, "Gbps")
	}
}

// BenchmarkFig03TrafficMatrix regenerates the Figure 3 scenario.
func BenchmarkFig03TrafficMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFigure3(SchemeCONGA, true, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig05Flowlets regenerates the Figure 5 flowlet-size analysis.
func BenchmarkFig05Flowlets(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := traceanalysis.Generate(traceanalysis.GenConfig{
			Flows:         1000,
			Dist:          workload.Enterprise(),
			LinkRateBps:   10e9,
			BurstBytes:    64 << 10,
			MeanRateBps:   1e9,
			ArrivalWindow: 20 * sim.Millisecond,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, gap := range []sim.Time{250 * sim.Millisecond, 500 * sim.Microsecond, 100 * sim.Microsecond} {
			sizes := tr.Flowletize(gap)
			traceanalysis.MedianBytesSize(sizes)
		}
	}
}

// BenchmarkFig08Workloads regenerates the Figure 8 distribution statistics.
func BenchmarkFig08Workloads(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range []Workload{WorkloadEnterprise, WorkloadDataMining} {
			e := w.Dist().(*workload.Empirical)
			_ = e.BytesFraction(35e6)
			_ = e.CV()
		}
	}
}

// BenchmarkFig09Enterprise regenerates one Figure 9 cell (CONGA at 60%).
func BenchmarkFig09Enterprise(b *testing.B) {
	benchFCT(b, SchemeCONGA, WorkloadEnterprise, 0.6, false)
}

// BenchmarkFig09EnterpriseECMP is the ECMP baseline cell of Figure 9.
func BenchmarkFig09EnterpriseECMP(b *testing.B) {
	benchFCT(b, SchemeECMP, WorkloadEnterprise, 0.6, false)
}

// BenchmarkFig09EnterpriseMPTCP is the MPTCP cell of Figure 9.
func BenchmarkFig09EnterpriseMPTCP(b *testing.B) {
	benchFCT(b, SchemeMPTCPMarker, WorkloadEnterprise, 0.6, false)
}

// BenchmarkFig10DataMining regenerates one Figure 10 cell.
func BenchmarkFig10DataMining(b *testing.B) {
	benchFCT(b, SchemeCONGA, WorkloadDataMining, 0.6, false)
}

// BenchmarkFig11LinkFailure regenerates one Figure 11 cell (CONGA at 60%
// with the failed link).
func BenchmarkFig11LinkFailure(b *testing.B) {
	benchFCT(b, SchemeCONGA, WorkloadEnterprise, 0.6, true)
}

// BenchmarkFig11LinkFailureECMP is Figure 11's ECMP series.
func BenchmarkFig11LinkFailureECMP(b *testing.B) {
	benchFCT(b, SchemeECMP, WorkloadEnterprise, 0.6, true)
}

// BenchmarkFig12Imbalance regenerates the Figure 12 imbalance CDF.
func BenchmarkFig12Imbalance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunFCT(FCTConfig{
			Topology:         benchTopo(),
			Scheme:           SchemeCONGA,
			Workload:         WorkloadEnterprise,
			Load:             0.6,
			Duration:         50 * time.Millisecond,
			MaxFlows:         400,
			Transport:        TransportConfig{MinRTO: 10 * time.Millisecond},
			CollectImbalance: true,
			Seed:             uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ImbalanceMean, "imbalance")
	}
}

// BenchmarkFig13Incast regenerates one Figure 13 cell (fanout 8, TCP).
func BenchmarkFig13Incast(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunIncast(IncastConfig{
			Topology:     benchTopo(),
			Scheme:       SchemeCONGA,
			Transport:    TransportConfig{MinRTO: time.Millisecond},
			Fanout:       8,
			RequestBytes: 2 << 20,
			Rounds:       2,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GoodputFraction*100, "goodput%")
	}
}

// BenchmarkFig13IncastMPTCP is Figure 13's MPTCP series.
func BenchmarkFig13IncastMPTCP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunIncast(IncastConfig{
			Topology:     benchTopo(),
			Scheme:       SchemeCONGA,
			Transport:    TransportConfig{Kind: TransportMPTCP, MinRTO: time.Millisecond},
			Fanout:       8,
			RequestBytes: 2 << 20,
			Rounds:       2,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GoodputFraction*100, "goodput%")
	}
}

// BenchmarkFig14HDFS regenerates one Figure 14 trial.
func BenchmarkFig14HDFS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunHDFS(HDFSConfig{
			Topology:       benchTopo(),
			Scheme:         SchemeCONGA,
			Transport:      TransportConfig{MinRTO: 10 * time.Millisecond},
			BytesPerWriter: 2 << 20,
			BlockBytes:     512 << 10,
			DiskMBps:       400,
			BackgroundLoad: 0.3,
			Seed:           uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JobCompletion.Seconds(), "jobSec")
	}
}

// BenchmarkFig15LinkSpeeds regenerates one Figure 15 cell: 40G access.
func BenchmarkFig15LinkSpeeds(b *testing.B) {
	b.ReportAllocs()
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 2, LinksPerSpine: 1,
		AccessGbps: 40, FabricGbps: 40}
	for i := 0; i < b.N; i++ {
		_, err := RunFCT(FCTConfig{
			Topology:  topo,
			Scheme:    SchemeCONGA,
			Workload:  WorkloadWebSearch,
			Load:      0.5,
			Duration:  20 * time.Millisecond,
			MaxFlows:  250,
			Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16MultiFailure regenerates the Figure 16 multi-failure
// queue-length comparison at reduced scale.
func BenchmarkFig16MultiFailure(b *testing.B) {
	b.ReportAllocs()
	topo := Topology{Leaves: 3, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 10,
		FailedLinks: [][3]int{{0, 1, 0}, {2, 0, 1}}}
	for i := 0; i < b.N; i++ {
		res, err := RunFCT(FCTConfig{
			Topology:      topo,
			Scheme:        SchemeCONGA,
			Workload:      WorkloadWebSearch,
			Load:          0.5,
			Duration:      20 * time.Millisecond,
			MaxFlows:      250,
			Transport:     TransportConfig{MinRTO: 10 * time.Millisecond},
			CollectQueues: true,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.AvgQueueByLink
	}
}

// BenchmarkThm1PoA regenerates the §6.1 Price-of-Anarchy computation.
func BenchmarkThm1PoA(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRand(42)
	for i := 0; i < b.N; i++ {
		in := anarchy.Uniform(3, 3, 0, []anarchy.User{
			{Src: 0, Dst: 1, Demand: 1 + rng.Float64()*5},
			{Src: 1, Dst: 2, Demand: 1 + rng.Float64()*5},
			{Src: 2, Dst: 0, Demand: 1 + rng.Float64()*5},
		})
		for l := 0; l < 3; l++ {
			for s := 0; s < 3; s++ {
				in.CapUp[l][s] = 1 + rng.Float64()*9
				in.CapDown[s][l] = 1 + rng.Float64()*9
			}
		}
		poa, err := in.PoA([]uint64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		if poa > 2.01 {
			b.Fatalf("PoA %v exceeds Theorem 1 bound", poa)
		}
		b.ReportMetric(poa, "PoA")
	}
}

// BenchmarkThm2Imbalance regenerates the §6.2 stochastic imbalance model.
func BenchmarkThm2Imbalance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := stochmodel.Evaluate(stochmodel.Config{
			Links:   4,
			Lambda:  2000,
			Dist:    workload.WebSearch(),
			Horizon: 2,
			Runs:    50,
			Seed:    uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanImbalance, "chi")
	}
}

// BenchmarkAblationGapMode compares the ASIC age-bit flowlet detection to
// exact timestamps (the DESIGN.md ablation).
func BenchmarkAblationGapMode(b *testing.B) {
	b.ReportAllocs()
	p := DefaultParams()
	p.GapMode = 1 // core.GapModeTimestamp
	for i := 0; i < b.N; i++ {
		_, err := RunFCT(FCTConfig{
			Topology:  benchTopo(),
			Scheme:    SchemeCONGA,
			Params:    &p,
			Workload:  WorkloadEnterprise,
			Load:      0.6,
			Duration:  20 * time.Millisecond,
			MaxFlows:  250,
			Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
