package main

import (
	"fmt"
	"time"

	conga "conga"
	"conga/internal/anarchy"
	"conga/internal/sim"
	"conga/internal/stochmodel"
	"conga/internal/traceanalysis"
	"conga/internal/workload"
)

// fctTopo returns the experiment topology: the paper's testbed at full
// scale, or a 1/4-host, 1/10-rate version for -quick.
func fctTopo(quick bool) conga.Topology {
	if quick {
		// Half the testbed: same access speed (so flow durations and
		// concurrency match the paper), half the hosts, and halved LAG
		// members so the asymmetric-failure scenarios keep their shape.
		return conga.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 16, LinksPerSpine: 2,
			AccessGbps: 10, FabricGbps: 20}
	}
	return conga.Testbed()
}

func fctLoads(quick bool) []float64 {
	if quick {
		return []float64{0.3, 0.6}
	}
	return []float64{0.1, 0.3, 0.5, 0.7, 0.9}
}

func fctSchemes() []conga.Scheme {
	return []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGAFlow, conga.SchemeCONGA, conga.SchemeMPTCPMarker}
}

func fctConfig(quick bool, s conga.Scheme, w conga.Workload, load float64) conga.FCTConfig {
	cfg := conga.FCTConfig{
		Topology:  fctTopo(quick),
		Scheme:    s,
		Workload:  w,
		Load:      load,
		Transport: conga.TransportConfig{MinRTO: 10 * time.Millisecond},
		Duration:  150 * time.Millisecond,
		MaxFlows:  3000,
		Seed:      1,
	}
	if quick {
		cfg.Duration = 80 * time.Millisecond
		cfg.MaxFlows = 800
	}
	// The data-mining workload's byte-carrying flows run for tens to
	// hundreds of ms, so steady-state contention needs a longer arrival
	// window than the enterprise workload does.
	if w == conga.WorkloadDataMining {
		cfg.Duration = 300 * time.Millisecond
		cfg.MaxFlows = 1200
		if quick {
			cfg.Duration = 150 * time.Millisecond
			cfg.MaxFlows = 500
		}
	}
	cfg.Telemetry = telemetryFor(fmt.Sprintf("%s_%s_load%02d",
		conga.SchemeName(s), w, int(load*100)))
	return cfg
}

// --- Figure 2 ---

func runFig2(quick bool) {
	fmt.Println("Scenario: L0→L1 overload; (S1,L1) path at half capacity (cf. 90/80/100 Gbps).")
	fmt.Printf("%-12s %10s %10s %10s %14s\n", "scheme", "spine0", "spine1", "total", "split s0:s1")
	for _, s := range []conga.Scheme{conga.SchemeECMP, conga.SchemeLocal, conga.SchemeWCMP, conga.SchemeCONGA} {
		r, err := conga.RunFigure2(s, 1)
		check(err)
		ratio := r.SpineGbps[0] / max(r.SpineGbps[1], 1e-9)
		fmt.Printf("%-12s %9.2fG %9.2fG %9.2fG %11.2f:1\n",
			r.Scheme, r.SpineGbps[0], r.SpineGbps[1], r.TotalGbps, ratio)
	}
	fmt.Println("Paper shape: CONGA ≈ full capacity with a 2:1 split; ECMP strands the fast path.")
}

// --- Figure 3 ---

func runFig3(quick bool) {
	fmt.Println("Scenario: L1→L2 split must react to L0→L2 traffic on the shared S0→L2 link.")
	fmt.Printf("%-12s %-22s %12s %12s\n", "scheme", "case", "L1 via S0", "L1 via S1")
	for _, s := range []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA} {
		for _, busy := range []bool{false, true} {
			r, err := conga.RunFigure3(s, busy, 1)
			check(err)
			label := "(a) L0→L2 idle"
			if busy {
				label = "(b) L0→L2 active"
			}
			fmt.Printf("%-12s %-22s %11.2fG %11.2fG\n",
				r.Scheme, label, r.LeafUplinkGbps[1][0], r.LeafUplinkGbps[1][1])
		}
	}
	fmt.Println("Paper shape: CONGA shifts L1's traffic off S0 when L0 loads it; ECMP cannot.")
}

// --- Figure 5 ---

func runFig5(quick bool) {
	flows := 5000
	if quick {
		flows = 800
	}
	tr, err := traceanalysis.Generate(traceanalysis.GenConfig{
		Flows:         flows,
		Dist:          workload.Enterprise(),
		LinkRateBps:   10e9,
		BurstBytes:    64 << 10,
		MeanRateBps:   1e9,
		ArrivalWindow: 50 * sim.Millisecond,
		Seed:          1,
	})
	check(err)
	gaps := []struct {
		name string
		gap  sim.Time
	}{
		{"Flow (250ms)", 250 * sim.Millisecond},
		{"Flowlet (500µs)", 500 * sim.Microsecond},
		{"Flowlet (100µs)", 100 * sim.Microsecond},
	}
	fmt.Printf("%-18s %10s %16s %20s\n", "granularity", "transfers", "median-by-bytes", "bytes in ≤1MB xfers")
	for _, g := range gaps {
		sizes := tr.Flowletize(g.gap)
		cdf := traceanalysis.BytesCDF(sizes)
		under1MB := 0.0
		for _, pt := range cdf {
			if pt[0] <= 1e6 {
				under1MB = pt[1]
			}
		}
		fmt.Printf("%-18s %10d %15.2gB %19.1f%%\n",
			g.name, len(sizes), float64(traceanalysis.MedianBytesSize(sizes)), under1MB*100)
	}
	med, maxC := tr.ConcurrencyStats(sim.Millisecond)
	fmt.Printf("concurrent flows per 1ms interval: median %d, max %d (§2.6.1: 130 / <300)\n", med, maxC)
	fmt.Println("Paper shape: ~2 orders of magnitude smaller byte-median at 500µs gaps than per-flow.")
}

// --- Figure 8 ---

func runFig8(quick bool) {
	for _, w := range []conga.Workload{conga.WorkloadEnterprise, conga.WorkloadDataMining} {
		e := w.Dist().(*workload.Empirical)
		fmt.Printf("%s: mean %.3g B, CV %.1f, bytes from flows ≤35MB: %.0f%%\n",
			e.Name(), e.Mean(), e.CV(), e.BytesFraction(35e6)*100)
		fmt.Printf("  %-12s", "size:")
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			fmt.Printf(" %10.3g", e.Quantile(q))
		}
		fmt.Printf("\n  %-12s", "flow CDF:")
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			fmt.Printf(" %10.2f", q)
		}
		fmt.Println()
	}
}

// --- Figures 9 and 10 ---

func runFCTFigure(quick bool, w conga.Workload) {
	loads := fctLoads(quick)
	schemes := fctSchemes()
	var cfgs []conga.FCTConfig
	for _, s := range schemes {
		for _, load := range loads {
			cfgs = append(cfgs, fctConfig(quick, s, w, load))
		}
	}
	// Section (a) streams: configs are scheme-major and RunFCTsStream emits
	// in config order, so each scheme's row prints the moment its last load
	// finishes, while later schemes are still simulating.
	results := map[string]map[float64]*conga.FCTResult{}
	fmt.Println("(a) overall average FCT, normalized to optimal:")
	printLoadHeader(loads, true)
	_, err := conga.RunFCTsStream(cfgs, func(i int, r *conga.FCTResult, err error) {
		if err != nil {
			return // surfaced via the returned error below
		}
		name := conga.SchemeName(schemes[i/len(loads)])
		if results[name] == nil {
			results[name] = map[float64]*conga.FCTResult{}
		}
		results[name][loads[i%len(loads)]] = r
		if i%len(loads) == len(loads)-1 {
			printSeriesRow(name, loads, results[name], func(r *conga.FCTResult) float64 { return r.NormFCT }, true)
		}
	}, &sweepProg)
	check(err)
	fmt.Println("(b) small flows (<100KB) avg FCT, normalized to ECMP:")
	printSeriesVsECMP(loads, results, func(r *conga.FCTResult) float64 { return float64(r.SmallAvgFCT) })
	fmt.Println("(c) large flows (>10MB) avg FCT, normalized to ECMP:")
	printSeriesVsECMP(loads, results, func(r *conga.FCTResult) float64 { return float64(r.LargeAvgFCT) })
	fmt.Println("completion counts (generated → completed within drain):")
	printSeries(loads, results, func(r *conga.FCTResult) float64 { return float64(r.Completed) }, false)
}

// perf toggles the events/s + wall tail; it goes on each sweep's primary
// table, not on the derived views of the same runs ((b), (c), counts).
func printLoadHeader(loads []float64, perf bool) {
	fmt.Printf("  %-12s", "load:")
	for _, l := range loads {
		fmt.Printf(" %8.0f%%", l*100)
	}
	if perf {
		fmt.Print(perfHeader())
	}
	fmt.Println()
}

func printSeriesRow(name string, loads []float64, series map[float64]*conga.FCTResult, metric func(*conga.FCTResult) float64, perf bool) {
	fmt.Printf("  %-12s", name)
	for _, l := range loads {
		fmt.Printf(" %9.2f", metric(series[l]))
	}
	if perf {
		var ev uint64
		var wall time.Duration
		for _, l := range loads {
			ev += series[l].Events
			wall += series[l].Wall
		}
		fmt.Print(perfCols(ev, wall))
	}
	fmt.Println()
}

func printSeries(loads []float64, results map[string]map[float64]*conga.FCTResult, metric func(*conga.FCTResult) float64, perf bool) {
	printLoadHeader(loads, perf)
	for _, name := range []string{"ecmp", "conga-flow", "conga", "mptcp"} {
		if series, ok := results[name]; ok {
			printSeriesRow(name, loads, series, metric, perf)
		}
	}
}

func printSeriesVsECMP(loads []float64, results map[string]map[float64]*conga.FCTResult, metric func(*conga.FCTResult) float64) {
	fmt.Printf("  %-12s", "load:")
	for _, l := range loads {
		fmt.Printf(" %8.0f%%", l*100)
	}
	fmt.Println()
	for _, name := range []string{"ecmp", "conga-flow", "conga", "mptcp"} {
		series, ok := results[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-12s", name)
		for _, l := range loads {
			base := metric(results["ecmp"][l])
			v := 0.0
			if base > 0 {
				v = metric(series[l]) / base
			}
			fmt.Printf(" %9.2f", v)
		}
		fmt.Println()
	}
}

func runFig9(quick bool)  { runFCTFigure(quick, conga.WorkloadEnterprise) }
func runFig10(quick bool) { runFCTFigure(quick, conga.WorkloadDataMining) }

// --- Figure 11 ---

func runFig11(quick bool) {
	topo := fctTopo(quick)
	topo.FailedLinks = [][3]int{{1, 1, 1}} // one of the Leaf1↔Spine1 pair
	loads := []float64{0.1, 0.3, 0.5, 0.7}
	if quick {
		loads = []float64{0.3, 0.6}
	}
	schemes := fctSchemes()
	for _, w := range []conga.Workload{conga.WorkloadEnterprise, conga.WorkloadDataMining} {
		fmt.Printf("(%s) overall average FCT normalized to optimal, WITH link failure:\n", w)
		var cfgs []conga.FCTConfig
		for _, s := range schemes {
			for _, load := range loads {
				cfg := fctConfig(quick, s, w, load)
				cfg.Topology = topo
				cfgs = append(cfgs, cfg)
			}
		}
		rs, err := runFCTs(cfgs)
		check(err)
		results := map[string]map[float64]*conga.FCTResult{}
		for i, r := range rs {
			name := conga.SchemeName(schemes[i/len(loads)])
			if results[name] == nil {
				results[name] = map[float64]*conga.FCTResult{}
			}
			results[name][loads[i%len(loads)]] = r
		}
		printSeries(loads, results, func(r *conga.FCTResult) float64 { return r.NormFCT }, true)
	}

	fmt.Println("(c) hotspot queue occupancy CDF, data-mining at 60% load:")
	fmt.Printf("  %-12s %10s %10s %10s %10s%s\n", "scheme", "p50", "p90", "p99", "max", perfHeader())
	var qcfgs []conga.FCTConfig
	for _, s := range schemes {
		cfg := fctConfig(quick, s, conga.WorkloadDataMining, 0.6)
		cfg.Topology = topo
		cfg.CollectQueues = true
		qcfgs = append(qcfgs, cfg)
	}
	qrs, err := runFCTs(qcfgs)
	check(err)
	for i, s := range schemes {
		r := qrs[i]
		q := func(target float64) float64 {
			v := 0.0
			for _, pt := range r.HotspotQueueCDF {
				if pt[1] <= target {
					v = pt[0]
				}
			}
			return v / 1e6
		}
		maxq := 0.0
		if n := len(r.HotspotQueueCDF); n > 0 {
			maxq = r.HotspotQueueCDF[n-1][0] / 1e6
		}
		fmt.Printf("  %-12s %9.2fM %9.2fM %9.2fM %9.2fM%s\n",
			conga.SchemeName(s), q(0.5), q(0.9), q(0.99), maxq, perfCols(r.Events, r.Wall))
	}
	fmt.Println("Paper shape: ECMP collapses past 50% load; CONGA best, with far smaller hotspot queues.")
}

// --- Figure 12 ---

func runFig12(quick bool) {
	fmt.Println("Throughput imbalance (MAX−MIN)/AVG across leaf-0 uplinks, 10ms windows, 60% load:")
	for _, w := range []conga.Workload{conga.WorkloadEnterprise, conga.WorkloadDataMining} {
		fmt.Printf("  %s:\n", w)
		fmt.Printf("    %-12s %8s %8s %8s%s\n", "scheme", "mean", "p50", "p90", perfHeader())
		var cfgs []conga.FCTConfig
		for _, s := range fctSchemes() {
			cfg := fctConfig(quick, s, w, 0.6)
			cfg.CollectImbalance = true
			cfg.Duration = 200 * time.Millisecond // ≥20 imbalance windows
			cfg.MaxFlows *= 2
			cfgs = append(cfgs, cfg)
		}
		rs, err := runFCTs(cfgs)
		check(err)
		for i, s := range fctSchemes() {
			r := rs[i]
			p := func(q float64) float64 {
				v := 0.0
				for _, pt := range r.ImbalanceCDF {
					if pt[1] <= q {
						v = pt[0]
					}
				}
				return v
			}
			fmt.Printf("    %-12s %8.3f %8.3f %8.3f%s\n",
				conga.SchemeName(s), r.ImbalanceMean, p(0.5), p(0.9), perfCols(r.Events, r.Wall))
		}
	}
	fmt.Println("Paper shape: CONGA ≤ MPTCP ≪ ECMP imbalance.")
}

// --- Figure 13 ---

func runFig13(quick bool) {
	topo := fctTopo(quick)
	fanouts := []int{1, 4, 8, 16, 24, 32, 48, 63}
	reqBytes := int64(10 << 20)
	rounds := 4
	if quick {
		fanouts = []int{1, 4, 8, 14}
		reqBytes = 2 << 20
		rounds = 2
	}
	setups := []struct {
		name   string
		kind   conga.Transport
		minRTO time.Duration
	}{
		{"CONGA+TCP (200ms)", conga.TransportTCP, 200 * time.Millisecond},
		{"CONGA+TCP (1ms)", conga.TransportTCP, time.Millisecond},
		{"MPTCP (200ms)", conga.TransportMPTCP, 200 * time.Millisecond},
		{"MPTCP (1ms)", conga.TransportMPTCP, time.Millisecond},
	}
	// One flat batch across mtu×setup×fanout. Configs are row-major
	// (mtu, setup, fanout) and the streaming runner emits in config order,
	// so each table row prints as soon as its last fan-in finishes.
	mtus := []int{1500, 9000}
	type rowKey struct{ mtu, setup int }
	var cfgs []conga.IncastConfig
	var rowOf []rowKey
	var fanOf []int
	for mi, mtu := range mtus {
		for si, setup := range setups {
			for _, f := range fanouts {
				if f >= topo.Leaves*topo.HostsPerLeaf {
					continue
				}
				cfgs = append(cfgs, conga.IncastConfig{
					Topology:     topo,
					Scheme:       conga.SchemeCONGA,
					Transport:    conga.TransportConfig{Kind: setup.kind, MinRTO: setup.minRTO, MTU: mtu},
					Fanout:       f,
					RequestBytes: reqBytes,
					Rounds:       rounds,
					Timeout:      time.Duration(rounds) * 10 * time.Second,
					Telemetry:    telemetryFor(fmt.Sprintf("incast_%s_mtu%d_f%d", setup.kind, mtu, f)),
				})
				rowOf = append(rowOf, rowKey{mi, si})
				fanOf = append(fanOf, f)
			}
		}
	}
	vals := map[rowKey]map[int]float64{}
	type rowCost struct {
		ev   uint64
		wall time.Duration
	}
	cost := map[rowKey]*rowCost{}
	headerDone := -1
	_, err := conga.RunIncastsStream(cfgs, func(i int, r *conga.IncastResult, err error) {
		if err != nil {
			return // surfaced via the returned error below
		}
		k := rowOf[i]
		if vals[k] == nil {
			vals[k] = map[int]float64{}
			cost[k] = &rowCost{}
		}
		vals[k][fanOf[i]] = r.GoodputFraction
		cost[k].ev += r.Events
		cost[k].wall += r.Wall
		if i+1 < len(cfgs) && rowOf[i+1] == k {
			return // row not complete yet
		}
		if k.mtu != headerDone {
			fmt.Printf("MTU %d — goodput %% of access link vs fan-in:\n", mtus[k.mtu])
			fmt.Printf("  %-22s", "fanout:")
			for _, f := range fanouts {
				fmt.Printf(" %6d", f)
			}
			fmt.Print(perfHeader())
			fmt.Println()
			headerDone = k.mtu
		}
		fmt.Printf("  %-22s", setups[k.setup].name)
		for _, f := range fanouts {
			if v, ok := vals[k][f]; ok {
				fmt.Printf(" %5.0f%%", v*100)
			} else {
				fmt.Printf(" %6s", "-")
			}
		}
		fmt.Print(perfCols(cost[k].ev, cost[k].wall))
		fmt.Println()
	}, &sweepProg)
	check(err)
	fmt.Println("Paper shape: MPTCP collapses at high fan-in (worst with jumbo frames); CONGA+TCP stays high.")
}

// --- Figure 14 ---

func runFig14(quick bool) {
	trials := 10
	topo := conga.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 16, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 40}
	bytesPer := int64(8 << 20)
	if quick {
		trials = 3
		topo.HostsPerLeaf = 8
		bytesPer = 4 << 20
	}
	for _, failed := range []bool{false, true} {
		label := "(a) baseline topology"
		t := topo
		if failed {
			label = "(b) with link failure"
			t.FailedLinks = [][3]int{{1, 1, 1}}
		}
		fmt.Printf("%s — job completion times over %d trials (seconds):\n", label, trials)
		schemes := []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA, conga.SchemeMPTCPMarker}
		var cfgs []conga.HDFSConfig
		for _, s := range schemes {
			for trial := 0; trial < trials; trial++ {
				cfgs = append(cfgs, conga.HDFSConfig{
					Topology:       t,
					Scheme:         s,
					Transport:      conga.TransportConfig{Kind: transportFor(s), MinRTO: 10 * time.Millisecond},
					BytesPerWriter: bytesPer,
					DiskMBps:       400,
					BackgroundLoad: 0.4,
					Seed:           uint64(trial + 1),
				})
			}
		}
		// Configs are scheme-major, so each scheme's row streams out as
		// soon as its last trial completes.
		secs := make([]float64, len(cfgs))
		evs := make([]uint64, len(cfgs))
		walls := make([]time.Duration, len(cfgs))
		_, err := conga.RunHDFSTrialsStream(cfgs, func(i int, r *conga.HDFSResult, err error) {
			if err != nil {
				return // surfaced via the returned error below
			}
			secs[i] = r.JobCompletion.Seconds()
			evs[i] = r.Events
			walls[i] = r.Wall
			if i%trials != trials-1 {
				return
			}
			s := i / trials
			fmt.Printf("  %-8s", conga.SchemeName(schemes[s]))
			var sum, worst float64
			var ev uint64
			var wall time.Duration
			for trial := 0; trial < trials; trial++ {
				sec := secs[s*trials+trial]
				sum += sec
				if sec > worst {
					worst = sec
				}
				ev += evs[s*trials+trial]
				wall += walls[s*trials+trial]
				fmt.Printf(" %6.2f", sec)
			}
			fmt.Printf("   | mean %.2f worst %.2f%s\n", sum/float64(trials), worst, perfCols(ev, wall))
		}, &sweepProg)
		check(err)
	}
	fmt.Println("Paper shape: failure ≈ doubles ECMP job times; CONGA nearly unaffected; MPTCP volatile.")
}

func transportFor(s conga.Scheme) conga.Transport {
	if s == conga.SchemeMPTCPMarker {
		return conga.TransportMPTCP
	}
	return conga.TransportTCP
}

// --- Figure 15 ---

func runFig15(quick bool) {
	loads := []float64{0.3, 0.5, 0.7}
	type topoCase struct {
		name string
		topo conga.Topology
	}
	cases := []topoCase{
		{"10G access / 40G fabric", conga.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 16,
			LinksPerSpine: 1, AccessGbps: 10, FabricGbps: 40}},
		{"40G access / 40G fabric", conga.Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4,
			LinksPerSpine: 1, AccessGbps: 40, FabricGbps: 40}},
	}
	if quick {
		cases[0].topo.HostsPerLeaf = 8
		cases[1].topo.HostsPerLeaf = 2
	}
	for _, c := range cases {
		fmt.Printf("%s — web-search workload, CONGA FCT normalized to ECMP:\n", c.name)
		fmt.Printf("  %-8s", "load:")
		for _, l := range loads {
			fmt.Printf(" %7.0f%%", l*100)
		}
		fmt.Println()
		var cfgs []conga.FCTConfig
		for _, l := range loads {
			for _, s := range []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA} {
				cfg := fctConfig(quick, s, conga.WorkloadWebSearch, l)
				cfg.Topology = c.topo
				cfgs = append(cfgs, cfg)
			}
		}
		rs, err := runFCTs(cfgs)
		check(err)
		fmt.Printf("  %-8s", "conga")
		var ev uint64
		var wall time.Duration
		for i := range loads {
			base := float64(rs[2*i].AvgFCT)
			cng := float64(rs[2*i+1].AvgFCT)
			ev += rs[2*i].Events + rs[2*i+1].Events
			wall += rs[2*i].Wall + rs[2*i+1].Wall
			fmt.Printf(" %8.2f", cng/base)
		}
		fmt.Print(perfCols(ev, wall))
		fmt.Println()
	}
	fmt.Println("Paper shape: CONGA's win over ECMP is larger, and appears at lower load, when access ≈ fabric speed.")
}

// --- Figure 16 ---

func runFig16(quick bool) {
	// Scaled version of the paper's 288-port fabric: 6 leaves × 4 spines
	// with 2-member LAGs, sized so hosts can actually offer the target
	// load (bisection ≈ host capacity).
	topo := conga.Topology{Leaves: 6, Spines: 4, HostsPerLeaf: 4, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 5}
	// 9 deterministic pseudo-random failures, as in the paper's scenario.
	rng := sim.NewRand(2014)
	seen := map[[3]int]bool{}
	for len(topo.FailedLinks) < 9 {
		f := [3]int{rng.Intn(topo.Leaves), rng.Intn(topo.Spines), rng.Intn(topo.LinksPerSpine)}
		if !seen[f] {
			seen[f] = true
			topo.FailedLinks = append(topo.FailedLinks, f)
		}
	}
	fmt.Printf("6 leaves × 4 spines × 2 links, 9 failed links, web-search at 60%% load.\n")
	type agg struct {
		spineDown, leafUp float64
		ev                uint64
		wall              time.Duration
	}
	out := map[string]agg{}
	schemes := []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA}
	var cfgs []conga.FCTConfig
	for _, s := range schemes {
		cfg := fctConfig(quick, s, conga.WorkloadWebSearch, 0.6)
		cfg.Topology = topo
		cfg.CollectQueues = true
		cfgs = append(cfgs, cfg)
	}
	rs, err := runFCTs(cfgs)
	check(err)
	for i, s := range schemes {
		r := rs[i]
		var a agg
		var nd, nu int
		for name, q := range r.AvgQueueByLink {
			if name[0] == 's' { // spine→leaf downlinks are named "s<i>..."
				a.spineDown += q
				nd++
			} else {
				a.leafUp += q
				nu++
			}
		}
		a.spineDown /= float64(max(1, nd))
		a.leafUp /= float64(max(1, nu))
		a.ev, a.wall = r.Events, r.Wall
		out[conga.SchemeName(s)] = a
	}
	fmt.Printf("  %-8s %22s %22s%s\n", "scheme", "avg spine-downlink queue", "avg leaf-uplink queue", perfHeader())
	for _, name := range []string{"ecmp", "conga"} {
		fmt.Printf("  %-8s %21.0fB %21.0fB%s\n", name, out[name].spineDown, out[name].leafUp,
			perfCols(out[name].ev, out[name].wall))
	}
	if out["conga"].spineDown > 0 {
		fmt.Printf("  ECMP/CONGA spine-downlink queue ratio: %.1f×\n",
			out["ecmp"].spineDown/out["conga"].spineDown)
	}
	fmt.Println("Paper shape: ECMP's queues ≈10× CONGA's at the spine downlinks adjacent to failures.")
}

func max[T int | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// --- Figure 17 / Theorem 1 ---

func runFig17(quick bool) {
	fmt.Println("Bottleneck routing game: Nash (selfish, CONGA-like) vs optimal (coordinated).")
	// The Figure 2 instance: PoA = 1 (CONGA optimal in simple asymmetry).
	in := anarchy.Uniform(2, 2, 10, []anarchy.User{{Src: 0, Dst: 1, Demand: 15}})
	in.CapDown[1][1] = 5
	_, opt, err := in.OptimalBottleneck()
	check(err)
	_, nash, err := in.Nash(anarchy.NashOptions{})
	check(err)
	fmt.Printf("  Figure-2 instance: optimal bottleneck %.3f, Nash %.3f, PoA %.3f\n", opt, nash, nash/opt)

	// Random instances: empirical PoA stays within Theorem 1's bound of 2.
	trials := 200
	if quick {
		trials = 40
	}
	rng := sim.NewRand(99)
	worst := 1.0
	for i := 0; i < trials; i++ {
		leaves, spines := 2+rng.Intn(4), 2+rng.Intn(4)
		var users []anarchy.User
		for u := 0; u < 1+rng.Intn(6); u++ {
			src, dst := rng.Intn(leaves), rng.Intn(leaves)
			for dst == src {
				dst = rng.Intn(leaves)
			}
			users = append(users, anarchy.User{Src: src, Dst: dst, Demand: 0.5 + 9*rng.Float64()})
		}
		inst := anarchy.Uniform(leaves, spines, 0, users)
		for l := 0; l < leaves; l++ {
			for s := 0; s < spines; s++ {
				inst.CapUp[l][s] = 1 + 9*rng.Float64()
			}
		}
		for s := 0; s < spines; s++ {
			for l := 0; l < leaves; l++ {
				inst.CapDown[s][l] = 1 + 9*rng.Float64()
			}
		}
		poa, err := inst.PoA([]uint64{0, 1, 2})
		check(err)
		if poa > worst {
			worst = poa
		}
	}
	fmt.Printf("  worst PoA over %d random asymmetric instances: %.3f (Theorem 1 bound: 2)\n", trials, worst)
}

// --- Theorem 2 ---

func runThm2(quick bool) {
	runs := 300
	if quick {
		runs = 60
	}
	fmt.Println("E[χ(t)] (traffic imbalance) for randomized placement on 4 links, λ=2000 flows/s:")
	fmt.Printf("  %-28s %8s %10s %10s %10s\n", "distribution", "t (s)", "per-flow", "per-flowlet", "bound")
	for _, d := range []workload.SizeDist{
		workload.WebSearch(),
		workload.DataMining(),
	} {
		for _, horizon := range []float64{0.5, 2, 8} {
			base := stochmodel.Config{
				Links: 4, Lambda: 2000, Dist: d, Horizon: horizon, Runs: runs, Seed: 5,
			}
			rf, err := stochmodel.Evaluate(base)
			check(err)
			fl := base
			fl.FlowletBytes = 500 << 10
			rfl, err := stochmodel.Evaluate(fl)
			check(err)
			fmt.Printf("  %-28s %8.1f %10.4f %10.4f %10.4f\n",
				d.Name(), horizon, rf.MeanImbalance, rfl.MeanImbalance, rf.Bound)
		}
	}
	fmt.Println("Paper shape: imbalance ∝ 1/√t, grows with CV, shrinks with flowlet placement.")
}

// --- Ablations ---

func runAblation(quick bool) {
	topo := fctTopo(quick)
	topo.FailedLinks = [][3]int{{1, 1, 1}}
	base := conga.DefaultParams()
	cases := []struct {
		name   string
		mutate func(*conga.Params)
	}{
		{"default (Q=3, τ=160µs, Tfl=500µs)", func(*conga.Params) {}},
		{"Q=2 (coarser metrics)", func(p *conga.Params) { p.Q = 2 }},
		{"Q=6 (finer metrics)", func(p *conga.Params) { p.Q = 6 }},
		{"τ=40µs (jumpy DRE)", func(p *conga.Params) { p.TDRE = 5 * sim.Microsecond }},
		{"τ=640µs (sluggish DRE)", func(p *conga.Params) { p.TDRE = 80 * sim.Microsecond }},
		{"Tfl=100µs (eager flowlets)", func(p *conga.Params) { p.Tfl = 100 * sim.Microsecond }},
		{"Tfl=13ms (per-flow)", func(p *conga.Params) { p.Tfl = 13 * sim.Millisecond }},
		{"timestamp gap mode", func(p *conga.Params) { p.GapMode = 1 }},
		{"sum path metric (§7)", func(p *conga.Params) { p.PathMetric = 1 }},
	}
	fmt.Println("CONGA parameter sensitivity — enterprise at 60% load with link failure:")
	fmt.Printf("  %-36s %10s %10s %10s%s\n", "variant", "normFCT", "drops", "timeouts", perfHeader())
	var cfgs []conga.FCTConfig
	names := make([]string, 0, len(cases)+1)
	for _, c := range cases {
		p := base
		c.mutate(&p)
		cfg := fctConfig(quick, conga.SchemeCONGA, conga.WorkloadEnterprise, 0.6)
		cfg.Topology = topo
		cfg.Params = &p
		cfgs = append(cfgs, cfg)
		names = append(names, c.name)
	}
	// Per-packet CONGA (Figure 1's rightmost branch): a near-zero flowlet
	// gap with a reordering-resilient TCP.
	{
		p := base
		p.Tfl = 2 * sim.Microsecond
		p.GapMode = 1 // timestamp mode: per-packet decisions without sweep cost
		cfg := fctConfig(quick, conga.SchemeCONGA, conga.WorkloadEnterprise, 0.6)
		cfg.Topology = topo
		cfg.Params = &p
		cfg.Transport.ReorderWindow = 300 * time.Microsecond
		cfgs = append(cfgs, cfg)
		names = append(names, "per-packet CONGA + reorder-resilient TCP")
	}
	rs, err := runFCTs(cfgs)
	check(err)
	for i, r := range rs {
		fmt.Printf("  %-36s %10.2f %10d %10d%s\n", names[i], r.NormFCT, r.Drops, r.Timeouts,
			perfCols(r.Events, r.Wall))
	}
	fmt.Println("Paper shape (§3.6): performance robust across Q=3..6, τ=100..500µs, Tfl=300µs..1ms.")
}
