// Command congabench regenerates every table and figure of the CONGA paper
// (SIGCOMM 2014) on the packet-level simulator, printing the same series
// the paper plots. Absolute numbers differ from the hardware testbed; the
// shapes — which scheme wins, by roughly what factor, and where crossovers
// fall — are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	congabench               # run everything at default scale
//	congabench -fig 11       # one figure
//	congabench -quick        # reduced scale (CI-sized)
//	congabench -list         # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	conga "conga"
)

type experiment struct {
	id   string
	desc string
	run  func(q bool)
}

var experiments = []experiment{
	{"fig2", "Figure 2: static vs local vs global LB under capacity asymmetry", runFig2},
	{"fig3", "Figure 3: optimal split depends on the traffic matrix", runFig3},
	{"fig5", "Figure 5: bytes CDF vs flowlet inactivity gap", runFig5},
	{"fig8", "Figure 8: empirical workload size and byte CDFs", runFig8},
	{"fig9", "Figure 9: FCT vs load, enterprise workload, baseline topology", runFig9},
	{"fig10", "Figure 10: FCT vs load, data-mining workload, baseline topology", runFig10},
	{"fig11", "Figure 11: FCT and hotspot queue under a link failure", runFig11},
	{"fig12", "Figure 12: leaf-uplink throughput-imbalance CDF at 60% load", runFig12},
	{"fig13", "Figure 13: Incast goodput vs fan-in (minRTO × MTU)", runFig13},
	{"fig14", "Figure 14: HDFS TestDFSIO job completion times", runFig14},
	{"fig15", "Figure 15: 10G vs 40G access links, FCT normalized to ECMP", runFig15},
	{"fig16", "Figure 16: per-port queues under multiple link failures", runFig16},
	{"fig17", "Figure 17 / Theorem 1: Price of Anarchy of the bottleneck game", runFig17},
	{"thm2", "Theorem 2: traffic imbalance vs time, flow sizes, flowlets", runThm2},
	{"ablation", "Ablations: parameter sensitivity (Q, τ, Tfl, gap mode)", runAblation},
	{"scale", "Scale sweep: 64/128/256-leaf fabrics at 40G/100G access", runScale},
	{"replay", "Paired A/B comparison: every scheme on one recorded trace, bootstrap CIs", runReplay},
}

// telemetryDir, when set via -telemetry, makes every figure run emit its
// counters and series into a tagged subdirectory. telemetrySeq numbers the
// subdirectories in config-construction order so sweep points stay
// distinguishable; construction is sequential even though the runs fan out
// across workers, and each run owns its private registry (per-engine
// isolation).
var (
	telemetryDir string
	telemetrySeq int

	// hub is non-nil when -serve is set; every run's tap attaches to it so
	// the live endpoint can watch a whole figure sweep converge. sweepProg
	// counts experiment completions across all Run*Stream calls.
	hub       *conga.TelemetryHub
	sweepProg conga.SweepProgress
)

// runFCTs is conga.RunFCTs routed through the sweep progress counter, so
// the -serve sweep view counts non-streaming sections too.
func runFCTs(cfgs []conga.FCTConfig) ([]*conga.FCTResult, error) {
	return conga.RunFCTsStream(cfgs, nil, &sweepProg)
}

// telemetryFor returns per-run telemetry options flushing into a tagged
// subdirectory, or nil when neither -telemetry nor -serve is set. Packet
// traces stay off for sweeps — hundreds of runs × 64K events is noise, not
// observability; use congasim -telemetry for a traced single run.
func telemetryFor(tag string) *conga.TelemetryOptions {
	if telemetryDir == "" && hub == nil {
		return nil
	}
	telemetrySeq++
	name := fmt.Sprintf("%03d_%s", telemetrySeq, tag)
	dir := ""
	if telemetryDir != "" {
		dir = filepath.Join(telemetryDir, name)
	}
	opts := conga.TelemetryAll(dir)
	opts.Trace = false
	if hub != nil {
		opts.Tap = true
		opts.Hub = hub
		opts.RunName = name
	}
	return opts
}

func main() {
	fig := flag.String("fig", "all", "experiment id (fig2..fig17, thm2, ablation, scale) or 'all'")
	quick := flag.Bool("quick", false, "reduced scale for a fast pass")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.IntVar(&scaleParallel, "parallel", 1, "space-parallel domains per scale-sweep cell (>1 partitions each fabric across worker goroutines)")
	flag.StringVar(&telemetryDir, "telemetry", "", "emit telemetry counters and series for every run into tagged subdirectories of this directory")
	serveAddr := flag.String("serve", "", "serve the live telemetry endpoint on this address (e.g. :8080) while sweeps run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			defer f.Close()
			runtime.GC() // drop dead objects so the profile shows what's retained
			check(pprof.WriteHeapProfile(f))
		}()
	}

	if *serveAddr != "" {
		hub = conga.NewTelemetryHub()
		hub.SetSweepProgress(func() (done, total int) {
			_, finished, expected := sweepProg.Counts()
			return int(finished), int(expected)
		})
		srv, err := conga.ServeTelemetry(*serveAddr, hub)
		check(err)
		defer srv.Close()
		fmt.Printf("live telemetry on http://%s (endpoints: /, /counters, /series, /stream; ?run=<name>)\n", srv.Addr)
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-9s %s\n", e.id, e.desc)
		}
		return
	}

	ran := false
	for _, e := range experiments {
		if *fig != "all" && !strings.EqualFold(*fig, e.id) &&
			!strings.EqualFold("fig "+strings.TrimPrefix(*fig, "fig"), e.id) {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", strings.ToUpper(e.id), e.desc)
		fmt.Printf("==================================================================\n")
		e.run(*quick)
		fmt.Printf("[%s done in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
		os.Exit(2)
	}
}

// perfHeader and perfCols format the throughput tail appended to every
// sweep table row: the row's executed simulator events per wall-clock
// second, and the wall time the row's runs cost. With parallel workers the
// wall column sums per-run cost, so it reads as CPU time spent, not
// elapsed time.
func perfHeader() string {
	return fmt.Sprintf(" %9s %9s", "events/s", "wall")
}

func perfCols(events uint64, wall time.Duration) string {
	if wall <= 0 {
		return fmt.Sprintf(" %9s %9s", "-", "-")
	}
	return fmt.Sprintf(" %8.1fM %9s",
		float64(events)/wall.Seconds()/1e6, wall.Round(10*time.Millisecond))
}

// sortedKeys returns map keys in order, for deterministic table output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "congabench:", err)
		os.Exit(1)
	}
}
