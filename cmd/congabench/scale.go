package main

import (
	"fmt"
	"time"

	conga "conga"
)

// runScale sweeps the large-fabric grid (64/128/256 leaves at 40G and
// 100G access) — the scale regime the paper argues CONGA's O(leaves)
// state makes reachable, an order of magnitude past its 32-leaf testbed.
// Rows stream as cells finish; cells run in parallel, one engine and one
// set of object pools per cell.
// scaleParallel is the -parallel flag: space-parallel domains per cell.
var scaleParallel int

func runScale(quick bool) {
	cfg := conga.ScaleConfig{Scheme: conga.SchemeCONGA, Parallel: scaleParallel}
	if quick {
		cfg.Leaves = []int{8, 16}
		cfg.MaxFlows = 300
	}
	fmt.Printf("  %-7s %-7s %-8s %-10s %-10s %-10s%s %s\n",
		"leaves", "hosts", "access", "normFCT", "avgFCT", "events", perfHeader(), "elapsed")
	start := time.Now()
	_, err := conga.RunScaleStream(cfg, func(i int, p conga.ScalePoint, err error) {
		if err != nil {
			fmt.Printf("  %-7d %-7d %-8s error: %v\n", p.Leaves, p.Hosts,
				fmt.Sprintf("%gG", p.AccessGbps), err)
			return
		}
		fmt.Printf("  %-7d %-7d %-8s %-10.3f %-10s %-10d%s %v\n",
			p.Leaves, p.Hosts, fmt.Sprintf("%gG", p.AccessGbps),
			p.Result.NormFCT, p.Result.AvgFCT.Round(time.Microsecond),
			p.Result.Events, perfCols(p.Result.Events, p.Result.Wall),
			time.Since(start).Round(time.Millisecond))
	}, &sweepProg)
	check(err)
	fmt.Println("Expected shape: normFCT stays near 1 as the fabric grows — CONGA's leaf-local state keeps load balanced without per-fabric tuning.")
}
