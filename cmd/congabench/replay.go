package main

import (
	"fmt"
	"time"

	conga "conga"
)

// runReplay is the paired A/B comparison on a recorded trace: record one
// workload under ECMP, then replay the identical arrival sequence into
// every scheme and report matched-pairs FCT deltas against the ECMP
// baseline with bootstrap confidence intervals. Where Figure 9 compares
// schemes across independently drawn workloads, this isolates the scheme
// effect: every flow is the same size, from the same host, at the same
// instant, under every scheme.
func runReplay(quick bool) {
	base := fctConfig(quick, conga.SchemeECMP, conga.WorkloadEnterprise, 0.6)
	base.Telemetry = telemetryFor("replay_record_ecmp")
	base.Record = true
	rec, err := conga.RunFCT(base)
	check(err)
	h := rec.Trace.Header
	fmt.Printf("recorded %d flows (%.1f MB offered) under %s/%s at %.0f%% load on %s\n\n",
		h.Flows, float64(h.Bytes)/1e6, h.Scheme, h.Workload, h.Load*100, h.Topo)

	fmt.Printf("%-11s %7s %12s %12s %26s %18s %6s\n",
		"scheme", "pairs", "mean ECMP", "mean B", "Δmean [95% CI]", "ratio [95% CI]", "wins")
	for _, s := range []conga.Scheme{conga.SchemeCONGA, conga.SchemeCONGAFlow, conga.SchemeMPTCPMarker} {
		res, err := conga.RunReplayCompare(conga.ReplayCompareConfig{
			Trace: rec.Trace,
			A:     fctConfig(quick, conga.SchemeECMP, conga.WorkloadEnterprise, 0.6),
			B:     fctConfig(quick, s, conga.WorkloadEnterprise, 0.6),
		})
		check(err)
		o := res.Overall
		fmt.Printf("%-11s %7d %12v %12v %9v [%8v, %8v] %5.2f [%4.2f, %4.2f] %5.0f%%\n",
			conga.SchemeName(s), o.Pairs,
			o.MeanA.Round(time.Microsecond), o.MeanB.Round(time.Microsecond),
			o.MeanDelta.Round(time.Microsecond),
			o.DeltaLo.Round(time.Microsecond), o.DeltaHi.Round(time.Microsecond),
			o.MeanRatio, o.RatioLo, o.RatioHi, o.WinFraction*100)
		for _, b := range []conga.PairedBucket{res.Small, res.Large} {
			if b.Pairs == 0 {
				continue
			}
			fmt.Printf("  %-9s %7d %12v %12v %9v [%8v, %8v] %5.2f [%4.2f, %4.2f] %5.0f%%\n",
				b.Name, b.Pairs,
				b.MeanA.Round(time.Microsecond), b.MeanB.Round(time.Microsecond),
				b.MeanDelta.Round(time.Microsecond),
				b.DeltaLo.Round(time.Microsecond), b.DeltaHi.Round(time.Microsecond),
				b.MeanRatio, b.RatioLo, b.RatioHi, b.WinFraction*100)
		}
		if res.UnmatchedA+res.UnmatchedB > 0 {
			fmt.Printf("  (unpaired: %d only under ECMP, %d only under %s)\n",
				res.UnmatchedA, res.UnmatchedB, conga.SchemeName(s))
		}
	}
	fmt.Println("\nΔmean = mean(B) − mean(ECMP) over matched pairs (negative: B faster);")
	fmt.Println("ratio = mean(B)/mean(ECMP); wins = fraction of flows B finished first.")
	fmt.Println("CIs are percentile bootstrap over resampled flow pairs (1000 resamples).")
}
