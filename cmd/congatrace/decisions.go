package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// decisionSummary accumulates the audit-trail rows of a decisions.csv /
// decisions.ndjson sink file: reason mix, per-(src,uplink,dst) path heat,
// and the feedback-age distribution of the winning remote metrics.
type decisionSummary struct {
	total   int64
	reasons map[string]int64
	paths   map[[3]int64]int64
	ageSum  int64
	ageMax  int64
	ageN    int64
	cold    int64
	tMin    int64
	tMax    int64
	haveAny bool
}

func newDecisionSummary() *decisionSummary {
	return &decisionSummary{reasons: map[string]int64{}, paths: map[[3]int64]int64{}}
}

func (s *decisionSummary) add(tNs, src, dst, uplink int64, reason string, ageNs int64) {
	s.total++
	s.reasons[reason]++
	if reason != "sticky" && uplink >= 0 {
		s.paths[[3]int64{src, uplink, dst}]++
	}
	switch {
	case ageNs >= 0:
		s.ageSum += ageNs
		s.ageN++
		if ageNs > s.ageMax {
			s.ageMax = ageNs
		}
	case reason != "sticky":
		s.cold++
	}
	if !s.haveAny || tNs < s.tMin {
		s.tMin = tNs
	}
	if !s.haveAny || tNs > s.tMax {
		s.tMax = tNs
	}
	s.haveAny = true
}

// isDecisionFile reports whether path is a decision-trace sink file
// (decisions.csv / decisions.ndjson, any directory).
func isDecisionFile(path string) bool {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return strings.HasPrefix(base, "decisions")
}

// readDecisions summarizes a flowlet routing audit trail flushed by the
// telemetry decision plane: capture policy and suppression accounting,
// the routing-reason mix, and the hottest (srcLeaf, uplink, dstLeaf) paths.
func readDecisions(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var cap capture
	sum := newDecisionSummary()
	ndjson := strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".json")
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if ndjson {
			scanDecisionJSON(line, &cap, sum)
		} else {
			scanDecisionCSV(line, &cap, sum)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	printDecisionReport(path, cap, sum)
	return nil
}

func scanDecisionCSV(line string, cap *capture, sum *decisionSummary) {
	switch {
	case strings.HasPrefix(line, "time_ns,"):
		return
	case strings.HasPrefix(line, "# provenance="):
		cap.provenance = strings.TrimPrefix(line, "# provenance=")
		return
	case strings.HasPrefix(line, "#"):
		parseCaptureComment(line, cap)
		return
	}
	// time_ns,src_leaf,dst_leaf,uplink,reason,age_ns,metrics — no field is
	// ever quoted (reason is an enum name, metrics use "|").
	fields := strings.Split(line, ",")
	if len(fields) < 6 {
		return
	}
	var nums [4]int64
	for i := range nums {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			return
		}
		nums[i] = v
	}
	age, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil {
		return
	}
	sum.add(nums[0], nums[1], nums[2], nums[3], fields[4], age)
}

func scanDecisionJSON(line string, cap *capture, sum *decisionSummary) {
	if strings.HasPrefix(line, `{"provenance":`) {
		var meta struct {
			Provenance string `json:"provenance"`
		}
		if err := json.Unmarshal([]byte(line), &meta); err == nil {
			cap.provenance = meta.Provenance
		}
		return
	}
	if strings.HasPrefix(line, `{"capture":`) {
		var meta struct {
			Capture capture `json:"capture"`
		}
		if err := json.Unmarshal([]byte(line), &meta); err == nil {
			prov := cap.provenance
			*cap = meta.Capture
			cap.present = true
			cap.provenance = prov
		}
		return
	}
	var ev struct {
		TimeNs  int64  `json:"time_ns"`
		SrcLeaf int64  `json:"src_leaf"`
		DstLeaf int64  `json:"dst_leaf"`
		Uplink  int64  `json:"uplink"`
		Reason  string `json:"reason"`
		AgeNs   *int64 `json:"age_ns"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.AgeNs == nil {
		return
	}
	sum.add(ev.TimeNs, ev.SrcLeaf, ev.DstLeaf, ev.Uplink, ev.Reason, *ev.AgeNs)
}

func printDecisionReport(path string, c capture, sum *decisionSummary) {
	fmt.Printf("decision trail: %s\n", path)
	if c.provenance != "" {
		fmt.Printf("provenance: %s\n", c.provenance)
	}
	if !c.present {
		fmt.Println("capture: unknown (no capture header)")
	} else {
		fmt.Printf("capture: %s, capacity %d decisions\n", c.Mode, c.Cap)
		fmt.Printf("  recorded %d of %d decisions seen; %d suppressed by the %s policy\n",
			c.Recorded, c.Seen, c.Suppressed, c.Mode)
		if c.Recorded+c.Suppressed != c.Seen {
			fmt.Printf("  WARNING: recorded+suppressed = %d != seen %d (file truncated or mixed?)\n",
				c.Recorded+c.Suppressed, c.Seen)
		}
	}
	if !sum.haveAny {
		fmt.Println("decisions: none recorded")
		return
	}
	span := time.Duration(sum.tMax - sum.tMin)
	fmt.Printf("decisions: %d recorded over %v (%v .. %v)\n",
		sum.total, span, time.Duration(sum.tMin), time.Duration(sum.tMax))

	reasons := make([]string, 0, len(sum.reasons))
	for k := range sum.reasons {
		reasons = append(reasons, k)
	}
	sort.Slice(reasons, func(i, j int) bool { return sum.reasons[reasons[i]] > sum.reasons[reasons[j]] })
	for _, k := range reasons {
		n := sum.reasons[k]
		fmt.Printf("  %-12s %10d  (%5.1f%%)\n", k, n, float64(n)/float64(sum.total)*100)
	}

	if sum.ageN > 0 {
		fmt.Printf("feedback age of winning remote metric: mean %v, max %v over %d routed flowlets (%d cold — never fed back)\n",
			time.Duration(sum.ageSum/sum.ageN), time.Duration(sum.ageMax), sum.ageN, sum.cold)
	} else if sum.cold > 0 {
		fmt.Printf("feedback age: all %d routed flowlets chose uplinks with no feedback yet (cold table)\n", sum.cold)
	}

	if len(sum.paths) == 0 {
		return
	}
	type hot struct {
		key [3]int64
		n   int64
	}
	hots := make([]hot, 0, len(sum.paths))
	for k, n := range sum.paths {
		hots = append(hots, hot{k, n})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].n != hots[j].n {
			return hots[i].n > hots[j].n
		}
		return hots[i].key[0] < hots[j].key[0] ||
			hots[i].key[0] == hots[j].key[0] && (hots[i].key[1] < hots[j].key[1] ||
				hots[i].key[1] == hots[j].key[1] && hots[i].key[2] < hots[j].key[2])
	})
	top := len(hots)
	if top > 10 {
		top = 10
	}
	fmt.Printf("hottest paths (of %d used): src leaf × uplink → dst leaf\n", len(hots))
	for _, h := range hots[:top] {
		fmt.Printf("  l%d up%d -> l%d %10d flowlets\n", h.key[0], h.key[1], h.key[2], h.n)
	}
}
