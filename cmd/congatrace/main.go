// Command congatrace reproduces the §2.6 measurement analysis (Figure 5):
// generate a synthetic bursty datacenter trace and report how data bytes
// distribute across transfer sizes when the trace is flowletized at
// different inactivity gaps, plus the concurrent-flowlet census that sizes
// the ASIC's flowlet table.
//
// A second mode reads back a trace file and prints a summary. For a
// packet trace flushed by the telemetry subsystem (trace.csv or
// trace.ndjson from a -telemetry run) it prints the capture policy —
// mode, trigger, how many events were suppressed by the flight-recorder
// ring or reservoir — plus a per-event-kind summary. For a flowlet
// routing audit trail (decisions.csv or decisions.ndjson from a
// -decisions run) it prints the capture policy, the recorded-plus-
// suppressed accounting, the routing-reason mix, the feedback age of the
// winning remote metrics, and the hottest (srcLeaf, uplink, dstLeaf)
// paths. For a workload
// replay trace (congasim -record, either NDJSON or gzip'd binary) it
// prints the header — format version, recording provenance, topology
// fingerprint, flow count — and the arrival mix.
//
// Usage:
//
//	congatrace [-flows 5000] [-workload enterprise] [-rate 10] [-burst 65536]
//	congatrace -read out/telemetry/trace.csv
//	congatrace -read out/telemetry/decisions.csv
//	congatrace -read run.trace.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"conga/internal/sim"
	"conga/internal/traceanalysis"
	"conga/internal/workload"
)

func main() {
	var (
		flows    = flag.Int("flows", 5000, "number of flows in the trace")
		dist     = flag.String("workload", "enterprise", "enterprise, data-mining, web-search")
		rateGbps = flag.Float64("rate", 10, "host line rate in Gbps")
		meanGbps = flag.Float64("meanrate", 1, "per-flow average rate in Gbps")
		burst    = flag.Int64("burst", 64<<10, "NIC offload burst size in bytes")
		window   = flag.Duration("window", 50*time.Millisecond, "flow arrival window")
		seed     = flag.Uint64("seed", 1, "random seed")
		read     = flag.String("read", "", "read back a trace file (telemetry trace.csv/trace.ndjson, or a workload replay trace) instead of generating one")
	)
	flag.Parse()

	if *read != "" {
		if err := readTrace(*read); err != nil {
			fmt.Fprintln(os.Stderr, "congatrace:", err)
			os.Exit(1)
		}
		return
	}

	var d workload.SizeDist
	switch *dist {
	case "enterprise":
		d = workload.Enterprise()
	case "data-mining":
		d = workload.DataMining()
	case "web-search":
		d = workload.WebSearch()
	default:
		fmt.Fprintf(os.Stderr, "congatrace: unknown workload %q\n", *dist)
		os.Exit(2)
	}

	tr, err := traceanalysis.Generate(traceanalysis.GenConfig{
		Flows:         *flows,
		Dist:          d,
		LinkRateBps:   *rateGbps * 1e9,
		BurstBytes:    *burst,
		MeanRateBps:   *meanGbps * 1e9,
		ArrivalWindow: sim.Duration(*window),
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "congatrace:", err)
		os.Exit(1)
	}

	fmt.Printf("trace: %d flows, %.1f GB, %.1f ms span\n",
		*flows, float64(tr.TotalBytes)/1e9, tr.Span.Seconds()*1e3)
	fmt.Printf("%-18s %12s %18s\n", "granularity", "transfers", "median size by bytes")
	for _, g := range []struct {
		name string
		gap  sim.Time
	}{
		{"Flow (250ms)", 250 * sim.Millisecond},
		{"Flowlet (500µs)", 500 * sim.Microsecond},
		{"Flowlet (100µs)", 100 * sim.Microsecond},
	} {
		sizes := tr.Flowletize(g.gap)
		fmt.Printf("%-18s %12d %17.3gB\n", g.name, len(sizes),
			float64(traceanalysis.MedianBytesSize(sizes)))
	}

	fmt.Println("\nbytes CDF vs transfer size (Figure 5 series):")
	fmt.Printf("%12s %14s %14s %14s\n", "size ≤", "flow(250ms)", "flowlet(500µs)", "flowlet(100µs)")
	marks := []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	cdfs := [][][2]float64{
		traceanalysis.BytesCDF(tr.Flowletize(250 * sim.Millisecond)),
		traceanalysis.BytesCDF(tr.Flowletize(500 * sim.Microsecond)),
		traceanalysis.BytesCDF(tr.Flowletize(100 * sim.Microsecond)),
	}
	for _, m := range marks {
		fmt.Printf("%12.0e", m)
		for _, cdf := range cdfs {
			frac := 0.0
			for _, pt := range cdf {
				if pt[0] <= m {
					frac = pt[1]
				}
			}
			fmt.Printf(" %13.1f%%", frac*100)
		}
		fmt.Println()
	}

	med, max := tr.ConcurrencyStats(sim.Millisecond)
	fmt.Printf("\nconcurrent flows per 1ms: median %d, max %d\n", med, max)
}
