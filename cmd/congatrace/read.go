package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"conga/internal/replay"
)

// readTrace prints a summary of any trace file this repo produces: a
// workload replay trace (internal/replay, either format — header with
// version, fingerprint and flow count), a flowlet routing audit trail
// (decisions.csv / decisions.ndjson from a -decisions run), or a packet
// trace flushed by internal/telemetry: trace.csv (header comment line "# capture=...
// cap=... suppressed=...") or trace.ndjson (leading {"capture":{...}}
// meta object). Older files without the header still summarize; the
// capture section just reports "unknown (no capture header)".
func readTrace(path string) error {
	if replay.IsTraceFile(path) {
		return readReplayTrace(path)
	}
	if isDecisionFile(path) {
		return readDecisions(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if strings.HasSuffix(path, ".ndjson") || strings.HasSuffix(path, ".json") {
		return readNDJSON(path, f)
	}
	return readCSV(path, f)
}

// readReplayTrace summarizes a workload replay trace: provenance header,
// compatibility fingerprint, and the arrival mix.
func readReplayTrace(path string) error {
	tr, err := replay.Read(path)
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Printf("replay trace: %s (format version %d)\n", path, h.Version)
	fmt.Printf("recorded by: %s harness, scheme %s, workload %s, load %.0f%%, seed %d\n",
		h.Harness, h.Scheme, h.Workload, h.Load*100, h.Seed)
	fmt.Printf("topology: %s (fingerprint %016x — replay requires this fabric shape)\n", h.Topo, h.TopoFP)
	fmt.Printf("flows: %d arrivals, %.1f MB offered, spanning %v of a %v window\n",
		h.Flows, float64(h.Bytes)/1e6, time.Duration(h.SpanNs), time.Duration(h.DurationNs))
	if len(tr.Flows) == 0 {
		return nil
	}
	kinds := map[string]int{}
	kindBytes := map[string]int64{}
	var minSize, maxSize int64
	minSize = tr.Flows[0].Size
	for _, f := range tr.Flows {
		kinds[f.Kind]++
		kindBytes[f.Kind] += f.Size
		if f.Size < minSize {
			minSize = f.Size
		}
		if f.Size > maxSize {
			maxSize = f.Size
		}
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := k
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("  %-12s %8d arrivals, %10.1f MB\n", name, kinds[k], float64(kindBytes[k])/1e6)
	}
	fmt.Printf("sizes: %d B .. %.1f MB, mean %.1f KB\n",
		minSize, float64(maxSize)/1e6, float64(h.Bytes)/float64(h.Flows)/1e3)
	return nil
}

// capture is the policy block both formats carry. Fields mirror
// telemetry.CaptureInfo but are parsed from the file so the reader works
// on traces produced by other builds.
type capture struct {
	present    bool
	provenance string
	Mode       string `json:"mode"`
	Cap        int64  `json:"cap"`
	Recorded   int64  `json:"recorded"`
	Seen       int64  `json:"seen"`
	Suppressed int64  `json:"suppressed"`
	Trigger    string `json:"trigger"`
	Triggered  bool   `json:"triggered"`
	AtNs       int64  `json:"triggered_at_ns"`
	Reason     string `json:"reason"`
}

// eventSummary accumulates per-kind counts and the time span while
// scanning event rows.
type eventSummary struct {
	total   int64
	kinds   map[string]int64
	flows   map[int64]struct{}
	tMin    int64
	tMax    int64
	haveAny bool
}

func newEventSummary() *eventSummary {
	return &eventSummary{kinds: map[string]int64{}, flows: map[int64]struct{}{}}
}

func (s *eventSummary) add(tNs int64, kind string, flow int64) {
	s.total++
	s.kinds[kind]++
	s.flows[flow] = struct{}{}
	if !s.haveAny || tNs < s.tMin {
		s.tMin = tNs
	}
	if !s.haveAny || tNs > s.tMax {
		s.tMax = tNs
	}
	s.haveAny = true
}

func readCSV(path string, f *os.File) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cap capture
	sum := newEventSummary()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "time_ns,"):
			continue
		case strings.HasPrefix(line, "# provenance="):
			cap.provenance = strings.TrimPrefix(line, "# provenance=")
			continue
		case strings.HasPrefix(line, "#"):
			parseCaptureComment(line, &cap)
			continue
		}
		// time_ns,event,where,flow,... — time and event are never quoted;
		// flow is field 3 when "where" is unquoted (link and host names
		// contain no commas; a quoted where just loses the flow count for
		// that row, nothing else).
		fields := strings.Split(line, ",")
		if len(fields) < 4 {
			continue
		}
		tNs, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			continue
		}
		flow := int64(-1)
		if v, err := strconv.ParseInt(fields[3], 10, 64); err == nil {
			flow = v
		}
		sum.add(tNs, fields[1], flow)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	printTraceReport(path, cap, sum)
	return nil
}

// parseCaptureComment parses the "# capture=head cap=65536 recorded=..."
// line CSVSink writes as the first line of trace.csv.
func parseCaptureComment(line string, c *capture) {
	for _, tok := range strings.Fields(strings.TrimPrefix(line, "#")) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			continue
		}
		switch k {
		case "capture":
			c.Mode, c.present = v, true
		case "cap":
			c.Cap, _ = strconv.ParseInt(v, 10, 64)
		case "recorded":
			c.Recorded, _ = strconv.ParseInt(v, 10, 64)
		case "seen":
			c.Seen, _ = strconv.ParseInt(v, 10, 64)
		case "suppressed":
			c.Suppressed, _ = strconv.ParseInt(v, 10, 64)
		case "trigger":
			c.Trigger = v
		case "triggered":
			c.Triggered = v == "true"
		case "triggered_at_ns":
			c.AtNs, _ = strconv.ParseInt(v, 10, 64)
		case "reason":
			c.Reason = v
		}
	}
}

func readNDJSON(path string, f *os.File) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cap capture
	sum := newEventSummary()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, `{"provenance":`) {
			var meta struct {
				Provenance string `json:"provenance"`
			}
			if err := json.Unmarshal([]byte(line), &meta); err == nil {
				cap.provenance = meta.Provenance
			}
			continue
		}
		if strings.HasPrefix(line, `{"capture":`) {
			var meta struct {
				Capture capture `json:"capture"`
			}
			if err := json.Unmarshal([]byte(line), &meta); err == nil {
				cap = meta.Capture
				cap.present = true
			}
			continue
		}
		var ev struct {
			TimeNs int64  `json:"time_ns"`
			Event  string `json:"event"`
			Flow   int64  `json:"flow"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue
		}
		sum.add(ev.TimeNs, ev.Event, ev.Flow)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	printTraceReport(path, cap, sum)
	return nil
}

func printTraceReport(path string, c capture, sum *eventSummary) {
	fmt.Printf("trace: %s\n", path)
	if c.provenance != "" {
		fmt.Printf("provenance: %s\n", c.provenance)
	}
	if !c.present {
		fmt.Println("capture: unknown (no capture header; pre-policy trace, assumed keep-head)")
	} else {
		fmt.Printf("capture: %s, capacity %d events\n", c.Mode, c.Cap)
		fmt.Printf("  recorded %d of %d matching events seen; %d suppressed by the %s policy\n",
			c.Recorded, c.Seen, c.Suppressed, c.Mode)
		switch {
		case c.Trigger == "" || c.Trigger == "none":
			fmt.Println("  trigger: none")
		case c.Triggered:
			fmt.Printf("  trigger: %s — FIRED at %v (%s); trace frozen\n",
				c.Trigger, time.Duration(c.AtNs), c.Reason)
		default:
			fmt.Printf("  trigger: %s — armed, never fired\n", c.Trigger)
		}
	}
	if !sum.haveAny {
		fmt.Println("events: none recorded")
		return
	}
	span := time.Duration(sum.tMax - sum.tMin)
	fmt.Printf("events: %d recorded over %v (%v .. %v), %d distinct flows\n",
		sum.total, span, time.Duration(sum.tMin), time.Duration(sum.tMax), len(sum.flows))
	kinds := make([]string, 0, len(sum.kinds))
	for k := range sum.kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return sum.kinds[kinds[i]] > sum.kinds[kinds[j]] })
	for _, k := range kinds {
		n := sum.kinds[k]
		fmt.Printf("  %-12s %10d  (%5.1f%%)\n", k, n, float64(n)/float64(sum.total)*100)
	}
}
