// Command congaplot renders the paper-style figures (queue depth over
// time, DRE register trajectories, congestion-table maxima — the shapes of
// Figures 4 and 12) as standalone SVG files, from either a flushed
// telemetry directory or a live -serve endpoint. The SVG renderer itself
// lives in internal/plot, shared with the live dashboard.
//
// Usage:
//
//	congasim -telemetry out/tel -queues
//	congaplot -dir out/tel -series 'queue\.' -out queue.svg
//	congaplot -url http://localhost:8080 -run fct -series 'dre\.' -out dre.svg
//	congaplot -dir out/tel -list
//
//	congasim -scheme conga -cdfout out/cdf
//	congaplot -cdf -dir out/cdf -series imbalance -out imbalance.svg
//
//	congasim -telemetry out/tel -decisions
//	congaplot -heatmap -dir out/tel -out heatmap.svg
//
// With -heatmap the input is the decision plane's path load matrix
// (paths.ndjson or paths.csv from a congasim -decisions run) and the figure
// is a (srcLeaf, uplink) × dstLeaf heatmap of bytes routed per path, with
// each leaf's imbalance and entropy figures in the subtitle.
//
// The chart is a single-axis line chart: all selected series must share a
// unit (mixing units would need a second y-axis, which congaplot refuses
// by design — run it twice and get two figures instead). With -cdf the
// inputs are cdf_*.csv distribution files (value,fraction rows from
// congasim -cdfout) and the y axis is the fixed [0,1] cumulative fraction
// — the form of the paper's Figure 12 (throughput imbalance) and 11b
// (hotspot queue depth).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"conga/internal/plot"
)

func main() {
	var (
		dir     = flag.String("dir", "", "telemetry directory flushed by a -telemetry run (reads series_*.ndjson, falling back to series_*.csv); with -cdf, a directory of cdf_*.csv files")
		liveURL = flag.String("url", "", "base URL of a live -serve endpoint (e.g. http://localhost:8080) instead of -dir")
		run     = flag.String("run", "", "run name on the live endpoint (default: first attached run)")
		sel     = flag.String("series", ".", "regexp selecting which series to plot, matched against probe names")
		out     = flag.String("out", "congaplot.svg", "output SVG path")
		title   = flag.String("title", "", "chart title (default: derived from the selected series)")
		width   = flag.Int("width", 860, "SVG width in px")
		height  = flag.Int("height", 440, "SVG height in px")
		list    = flag.Bool("list", false, "list available series names and exit")
		cdf     = flag.Bool("cdf", false, "CDF input mode: read cdf_*.csv distribution files (value,fraction) and plot cumulative fraction on a [0,1] axis")
		heatmap = flag.Bool("heatmap", false, "heatmap input mode: read the decision plane's paths.ndjson/paths.csv (congasim -decisions) and render the path-utilization matrix")
		tMin    = flag.Duration("tmin", 0, "clip points before this sim time (time-series mode only)")
		tMax    = flag.Duration("tmax", 0, "clip points after this sim time (0 = no clip; time-series mode only)")
	)
	flag.Parse()

	if (*dir == "") == (*liveURL == "") {
		die(fmt.Errorf("exactly one of -dir or -url is required"))
	}
	if *cdf && *liveURL != "" {
		die(fmt.Errorf("-cdf reads distribution files; use it with -dir"))
	}
	if *heatmap {
		if *liveURL != "" {
			die(fmt.Errorf("-heatmap reads path matrix files; use it with -dir"))
		}
		if *cdf {
			die(fmt.Errorf("-heatmap and -cdf are separate figures; pick one"))
		}
		die(renderHeatmap(*dir, *out, *title, *width))
		return
	}
	re, err := regexp.Compile(*sel)
	die(err)

	var all []plot.Series
	switch {
	case *cdf:
		all, err = loadCDFDir(*dir)
	case *dir != "":
		all, err = loadDir(*dir)
	default:
		all, err = loadURL(*liveURL, *run)
	}
	die(err)
	if len(all) == 0 {
		if *cdf {
			die(fmt.Errorf("no cdf_*.csv files found (generate them with congasim -cdfout)"))
		}
		die(fmt.Errorf("no series found (is this a telemetry directory with series enabled?)"))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })

	if *list {
		for _, s := range all {
			fmt.Printf("%-40s %8d points  unit=%s\n", s.Name, len(s.Points), s.Unit)
		}
		return
	}

	var picked []plot.Series
	for _, s := range all {
		if !*cdf {
			s.Points = clipWindow(s.Points, float64(tMin.Nanoseconds()), float64(tMax.Nanoseconds()))
		}
		if re.MatchString(s.Name) && len(s.Points) > 0 {
			picked = append(picked, s)
		}
	}
	if len(picked) == 0 {
		die(fmt.Errorf("no series match %q (use -list to see names)", *sel))
	}

	// One axis: refuse mixed units rather than inventing a second scale.
	units := map[string]bool{}
	for _, s := range picked {
		units[s.Unit] = true
	}
	if len(units) > 1 {
		names := make([]string, 0, len(units))
		for u := range units {
			names = append(names, u)
		}
		sort.Strings(names)
		die(fmt.Errorf("selected series mix units (%s); narrow -series and render one figure per unit",
			strings.Join(names, ", ")))
	}

	// The palette has 8 fixed slots; beyond that the chart would be
	// unreadable anyway. Keep the first 8 in name order and say so on the
	// figure — never drop series silently.
	dropped := 0
	if len(picked) > plot.MaxSeries {
		dropped = len(picked) - plot.MaxSeries
		picked = picked[:plot.MaxSeries]
	}

	t := *title
	if t == "" {
		t = defaultTitle(picked)
		if *cdf {
			t += " CDF"
		}
	}
	spec := plot.Spec{Title: t, Width: *width, Height: *height, Dropped: dropped}
	var svg string
	if *cdf {
		svg = plot.CDF(picked, spec)
	} else {
		svg = plot.Line(picked, spec)
	}
	die(os.WriteFile(*out, []byte(svg), 0o644))
	fmt.Printf("congaplot: wrote %s (%d series", *out, len(picked))
	if dropped > 0 {
		fmt.Printf(", %d dropped — narrow -series", dropped)
	}
	fmt.Println(")")
}

// clipWindow keeps points with tMin <= t <= tMax (tMax 0 = unbounded).
func clipWindow(pts [][2]float64, tMin, tMax float64) [][2]float64 {
	if tMin <= 0 && tMax <= 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if p[0] >= tMin && (tMax <= 0 || p[0] <= tMax) {
			out = append(out, p)
		}
	}
	return out
}

// defaultTitle derives a figure title from the common prefix of the
// selected probe names ("queue.l0->s0.0, ..." → "queue").
func defaultTitle(picked []plot.Series) string {
	prefix := picked[0].Name
	for _, s := range picked[1:] {
		for !strings.HasPrefix(s.Name, prefix) && prefix != "" {
			prefix = prefix[:len(prefix)-1]
		}
	}
	prefix = strings.Trim(prefix, ".-> ")
	if prefix == "" {
		return "telemetry series"
	}
	return prefix
}

// loadDir reads series from a flushed telemetry directory, preferring the
// NDJSON files (they carry probe name and unit inline) and falling back to
// CSV (probe name reconstructed from the filename, unit from the "# unit="
// comment when present).
func loadDir(dir string) ([]plot.Series, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "series_*.ndjson"))
	if err != nil {
		return nil, err
	}
	if len(paths) > 0 {
		var out []plot.Series
		for _, p := range paths {
			s, err := loadNDJSON(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			out = append(out, s)
		}
		return out, nil
	}
	paths, err = filepath.Glob(filepath.Join(dir, "series_*.csv"))
	if err != nil {
		return nil, err
	}
	var out []plot.Series
	for _, p := range paths {
		s, err := loadCSV(p, "series_")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// loadCDFDir reads the cdf_*.csv distribution files congasim -cdfout
// writes: a "# unit=..." comment, a value,fraction header, then rows.
func loadCDFDir(dir string) ([]plot.Series, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "cdf_*.csv"))
	if err != nil {
		return nil, err
	}
	var out []plot.Series
	for _, p := range paths {
		s, err := loadCSV(p, "cdf_")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func loadNDJSON(path string) (plot.Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return plot.Series{}, err
	}
	s := plot.Series{Name: seriesNameFromFile(path, "series_", ".ndjson")}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var row struct {
			Probe  string  `json:"probe"`
			Unit   string  `json:"unit"`
			TimeNs int64   `json:"time_ns"`
			Value  float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return plot.Series{}, err
		}
		if row.Probe != "" {
			s.Name = row.Probe
		}
		if row.Unit != "" {
			s.Unit = row.Unit
		}
		s.Points = append(s.Points, [2]float64{float64(row.TimeNs), row.Value})
	}
	return s, nil
}

// loadCSV reads a two-column CSV (time_ns,value or value,fraction),
// skipping the header row and "#" comment lines; a "# unit=..." comment
// sets the series unit.
func loadCSV(path, prefix string) (plot.Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return plot.Series{}, err
	}
	s := plot.Series{Name: seriesNameFromFile(path, prefix, ".csv")}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "", strings.HasPrefix(line, "time_ns"), strings.HasPrefix(line, "value"):
			continue
		case strings.HasPrefix(line, "#"):
			if u, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(line, "#")), "unit="); ok {
				s.Unit = u
			}
			continue
		}
		aStr, bStr, ok := strings.Cut(line, ",")
		if !ok {
			continue
		}
		a, err1 := strconv.ParseFloat(aStr, 64)
		b, err2 := strconv.ParseFloat(bStr, 64)
		if err1 != nil || err2 != nil {
			return plot.Series{}, fmt.Errorf("bad row %q", line)
		}
		s.Points = append(s.Points, [2]float64{a, b})
	}
	return s, nil
}

func seriesNameFromFile(path, prefix, ext string) string {
	base := strings.TrimSuffix(filepath.Base(path), ext)
	return strings.TrimPrefix(base, prefix)
}

// loadURL reads series from a live -serve endpoint: /series for the name
// index, then /series/<name> for each.
func loadURL(base, run string) ([]plot.Series, error) {
	base = strings.TrimRight(base, "/")
	q := ""
	if run != "" {
		q = "?run=" + url.QueryEscape(run)
	}
	var index struct {
		Series []string `json:"series"`
	}
	if err := getJSON(base+"/series"+q, &index); err != nil {
		return nil, err
	}
	var out []plot.Series
	for _, name := range index.Series {
		var sj struct {
			Probe  string   `json:"probe"`
			Unit   string   `json:"unit"`
			Points [][2]any `json:"points"`
		}
		if err := getJSON(base+"/series/"+url.PathEscape(name)+q, &sj); err != nil {
			return nil, err
		}
		s := plot.Series{Name: sj.Probe, Unit: sj.Unit}
		for _, p := range sj.Points {
			t, okT := asFloat(p[0])
			v, okV := asFloat(p[1])
			if okT && okV {
				s.Points = append(s.Points, [2]float64{t, v})
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

func getJSON(u string, v any) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "congaplot:", err)
		os.Exit(1)
	}
}
