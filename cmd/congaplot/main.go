// Command congaplot renders the paper-style figures (queue depth over
// time, DRE register trajectories, congestion-table maxima — the shapes of
// Figures 4 and 12) as standalone SVG files, from either a flushed
// telemetry directory or a live -serve endpoint.
//
// Usage:
//
//	congasim -telemetry out/tel -queues
//	congaplot -dir out/tel -series 'queue\.' -out queue.svg
//	congaplot -url http://localhost:8080 -run fct -series 'dre\.' -out dre.svg
//	congaplot -dir out/tel -list
//
// The chart is a single-axis line chart: all selected series must share a
// unit (mixing units would need a second y-axis, which congaplot refuses
// by design — run it twice and get two figures instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// series is one named line on the chart.
type series struct {
	Name   string
	Unit   string
	Points [][2]float64 // (time_ns, value)
}

func main() {
	var (
		dir     = flag.String("dir", "", "telemetry directory flushed by a -telemetry run (reads series_*.ndjson, falling back to series_*.csv)")
		liveURL = flag.String("url", "", "base URL of a live -serve endpoint (e.g. http://localhost:8080) instead of -dir")
		run     = flag.String("run", "", "run name on the live endpoint (default: first attached run)")
		sel     = flag.String("series", ".", "regexp selecting which series to plot, matched against probe names")
		out     = flag.String("out", "congaplot.svg", "output SVG path")
		title   = flag.String("title", "", "chart title (default: derived from the selected series)")
		width   = flag.Int("width", 860, "SVG width in px")
		height  = flag.Int("height", 440, "SVG height in px")
		list    = flag.Bool("list", false, "list available series names and exit")
		tMin    = flag.Duration("tmin", 0, "clip points before this sim time")
		tMax    = flag.Duration("tmax", 0, "clip points after this sim time (0 = no clip)")
	)
	flag.Parse()

	if (*dir == "") == (*liveURL == "") {
		die(fmt.Errorf("exactly one of -dir or -url is required"))
	}
	re, err := regexp.Compile(*sel)
	die(err)

	var all []series
	if *dir != "" {
		all, err = loadDir(*dir)
	} else {
		all, err = loadURL(*liveURL, *run)
	}
	die(err)
	if len(all) == 0 {
		die(fmt.Errorf("no series found (is this a telemetry directory with series enabled?)"))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })

	if *list {
		for _, s := range all {
			fmt.Printf("%-40s %8d points  unit=%s\n", s.Name, len(s.Points), s.Unit)
		}
		return
	}

	var picked []series
	for _, s := range all {
		s.Points = clipWindow(s.Points, float64(tMin.Nanoseconds()), float64(tMax.Nanoseconds()))
		if re.MatchString(s.Name) && len(s.Points) > 0 {
			picked = append(picked, s)
		}
	}
	if len(picked) == 0 {
		die(fmt.Errorf("no series match %q (use -list to see names)", *sel))
	}

	// One axis: refuse mixed units rather than inventing a second y-scale.
	units := map[string]bool{}
	for _, s := range picked {
		units[s.Unit] = true
	}
	if len(units) > 1 {
		names := make([]string, 0, len(units))
		for u := range units {
			names = append(names, u)
		}
		sort.Strings(names)
		die(fmt.Errorf("selected series mix units (%s); narrow -series and render one figure per unit",
			strings.Join(names, ", ")))
	}

	// The palette has 8 fixed slots; beyond that the chart would be
	// unreadable anyway. Keep the first 8 in name order and say so on the
	// figure — never drop series silently.
	dropped := 0
	if len(picked) > maxSeries {
		dropped = len(picked) - maxSeries
		picked = picked[:maxSeries]
	}

	t := *title
	if t == "" {
		t = defaultTitle(picked)
	}
	svg := render(picked, chartSpec{
		Title: t, Width: *width, Height: *height, Dropped: dropped,
	})
	die(os.WriteFile(*out, []byte(svg), 0o644))
	fmt.Printf("congaplot: wrote %s (%d series", *out, len(picked))
	if dropped > 0 {
		fmt.Printf(", %d dropped — narrow -series", dropped)
	}
	fmt.Println(")")
}

// clipWindow keeps points with tMin <= t <= tMax (tMax 0 = unbounded).
func clipWindow(pts [][2]float64, tMin, tMax float64) [][2]float64 {
	if tMin <= 0 && tMax <= 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if p[0] >= tMin && (tMax <= 0 || p[0] <= tMax) {
			out = append(out, p)
		}
	}
	return out
}

// defaultTitle derives a figure title from the common prefix of the
// selected probe names ("queue.l0->s0.0, ..." → "queue").
func defaultTitle(picked []series) string {
	prefix := picked[0].Name
	for _, s := range picked[1:] {
		for !strings.HasPrefix(s.Name, prefix) && prefix != "" {
			prefix = prefix[:len(prefix)-1]
		}
	}
	prefix = strings.Trim(prefix, ".-> ")
	if prefix == "" {
		return "telemetry series"
	}
	return prefix
}

// loadDir reads series from a flushed telemetry directory, preferring the
// NDJSON files (they carry probe name and unit inline) and falling back to
// CSV (probe name reconstructed from the filename, unit unknown).
func loadDir(dir string) ([]series, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "series_*.ndjson"))
	if err != nil {
		return nil, err
	}
	if len(paths) > 0 {
		var out []series
		for _, p := range paths {
			s, err := loadNDJSON(p)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			out = append(out, s)
		}
		return out, nil
	}
	paths, err = filepath.Glob(filepath.Join(dir, "series_*.csv"))
	if err != nil {
		return nil, err
	}
	var out []series
	for _, p := range paths {
		s, err := loadCSV(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func loadNDJSON(path string) (series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return series{}, err
	}
	s := series{Name: seriesNameFromFile(path, ".ndjson")}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var row struct {
			Probe  string  `json:"probe"`
			Unit   string  `json:"unit"`
			TimeNs int64   `json:"time_ns"`
			Value  float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return series{}, err
		}
		if row.Probe != "" {
			s.Name = row.Probe
		}
		if row.Unit != "" {
			s.Unit = row.Unit
		}
		s.Points = append(s.Points, [2]float64{float64(row.TimeNs), row.Value})
	}
	return s, nil
}

func loadCSV(path string) (series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return series{}, err
	}
	s := series{Name: seriesNameFromFile(path, ".csv")}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || (i == 0 && strings.HasPrefix(line, "time_ns")) {
			continue
		}
		tStr, vStr, ok := strings.Cut(line, ",")
		if !ok {
			continue
		}
		t, err1 := strconv.ParseFloat(tStr, 64)
		v, err2 := strconv.ParseFloat(vStr, 64)
		if err1 != nil || err2 != nil {
			return series{}, fmt.Errorf("bad row %q", line)
		}
		s.Points = append(s.Points, [2]float64{t, v})
	}
	return s, nil
}

func seriesNameFromFile(path, ext string) string {
	base := strings.TrimSuffix(filepath.Base(path), ext)
	return strings.TrimPrefix(base, "series_")
}

// loadURL reads series from a live -serve endpoint: /series for the name
// index, then /series/<name> for each.
func loadURL(base, run string) ([]series, error) {
	base = strings.TrimRight(base, "/")
	q := ""
	if run != "" {
		q = "?run=" + url.QueryEscape(run)
	}
	var index struct {
		Series []string `json:"series"`
	}
	if err := getJSON(base+"/series"+q, &index); err != nil {
		return nil, err
	}
	var out []series
	for _, name := range index.Series {
		var sj struct {
			Probe  string   `json:"probe"`
			Unit   string   `json:"unit"`
			Points [][2]any `json:"points"`
		}
		if err := getJSON(base+"/series/"+url.PathEscape(name)+q, &sj); err != nil {
			return nil, err
		}
		s := series{Name: sj.Probe, Unit: sj.Unit}
		for _, p := range sj.Points {
			t, okT := asFloat(p[0])
			v, okV := asFloat(p[1])
			if okT && okV {
				s.Points = append(s.Points, [2]float64{t, v})
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

func getJSON(u string, v any) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "congaplot:", err)
		os.Exit(1)
	}
}
