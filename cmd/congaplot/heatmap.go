package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"conga/internal/plot"
	"conga/internal/telemetry"
)

// renderHeatmap draws the path-utilization figure from the decision plane's
// flushed path load matrix: one row per (srcLeaf, uplink), one column per
// destination leaf, cell heat = bytes routed (flowlet counts when the run
// recorded no bytes). Input is paths.ndjson (preferred) or paths.csv from a
// congasim -decisions run.
func renderHeatmap(dir, out, title string, width int) error {
	rows, sums, err := loadPaths(dir)
	if err != nil {
		return err
	}
	rowLabels, colLabels, values, unit := telemetry.PathMatrix(rows)
	if len(values) == 0 {
		return fmt.Errorf("no path load cells in %s (run congasim with -decisions)", dir)
	}
	if title == "" {
		title = "path utilization (uplink × destination leaf)"
	}
	var parts []string
	for _, sm := range sums {
		parts = append(parts, fmt.Sprintf("l%d imbalance %.2f entropy %.2f", sm.Leaf, sm.Imbalance, sm.Entropy))
	}
	svg := plot.Heatmap(plot.HeatmapSpec{
		Title:     title,
		Subtitle:  strings.Join(parts, " · "),
		Width:     width,
		Unit:      unit,
		RowLabels: rowLabels,
		ColLabels: colLabels,
		Values:    values,
	})
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("congaplot: wrote %s (%d paths, %d leaves)\n", out, len(rows), len(sums))
	return nil
}

// loadPaths reads the path load matrix sink files back into rows and
// per-leaf summaries.
func loadPaths(dir string) ([]telemetry.PathRow, []telemetry.PathSummary, error) {
	if p := filepath.Join(dir, "paths.ndjson"); fileExists(p) {
		return loadPathsNDJSON(p)
	}
	if p := filepath.Join(dir, "paths.csv"); fileExists(p) {
		return loadPathsCSV(p)
	}
	return nil, nil, fmt.Errorf("no paths.ndjson or paths.csv in %s (run congasim with -decisions)", dir)
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.Mode().IsRegular()
}

func loadPathsNDJSON(path string) ([]telemetry.PathRow, []telemetry.PathSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []telemetry.PathRow
	var sums []telemetry.PathSummary
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, `{"provenance":`) {
			continue
		}
		if strings.HasPrefix(line, `{"summary":`) {
			var meta struct {
				Summary telemetry.PathSummary `json:"summary"`
			}
			if err := json.Unmarshal([]byte(line), &meta); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			sums = append(sums, meta.Summary)
			continue
		}
		var r telemetry.PathRow
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		rows = append(rows, r)
	}
	return rows, sums, nil
}

func loadPathsCSV(path string) ([]telemetry.PathRow, []telemetry.PathSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []telemetry.PathRow
	var sums []telemetry.PathSummary
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "", strings.HasPrefix(line, "leaf,"):
			continue
		case strings.HasPrefix(line, "# summary "):
			sums = append(sums, parseSummaryComment(line))
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, nil, fmt.Errorf("%s: bad row %q", path, line)
		}
		var nums [5]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: bad row %q: %w", path, line, err)
			}
			nums[i] = v
		}
		rows = append(rows, telemetry.PathRow{
			Leaf: int(nums[0]), Uplink: int(nums[1]), DstLeaf: int(nums[2]),
			Flowlets: uint64(nums[3]), Bytes: uint64(nums[4]),
		})
	}
	return rows, sums, nil
}

// parseSummaryComment parses "# summary leaf=0 flowlets=12 bytes=345
// imbalance=1.2 entropy=0.9" back into a PathSummary.
func parseSummaryComment(line string) telemetry.PathSummary {
	var sm telemetry.PathSummary
	for _, tok := range strings.Fields(strings.TrimPrefix(line, "#")) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			continue
		}
		switch k {
		case "leaf":
			n, _ := strconv.Atoi(v)
			sm.Leaf = n
		case "flowlets":
			n, _ := strconv.ParseUint(v, 10, 64)
			sm.Flowlets = n
		case "bytes":
			n, _ := strconv.ParseUint(v, 10, 64)
			sm.Bytes = n
		case "imbalance":
			sm.Imbalance, _ = strconv.ParseFloat(v, 64)
		case "entropy":
			sm.Entropy, _ = strconv.ParseFloat(v, 64)
		}
	}
	return sm
}
