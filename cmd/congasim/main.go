// Command congasim runs a single CONGA fabric experiment from the command
// line: pick a topology, scheme, workload and load, and get the paper's
// metrics (FCTs by bucket, drops, retransmissions, optional imbalance and
// queue statistics) on stdout.
//
// Examples:
//
//	congasim                                    # testbed, CONGA, enterprise, 60%
//	congasim -scheme ecmp -load 0.9 -workload data-mining
//	congasim -scheme mptcp -fail 1,1,1          # MPTCP with a failed link
//	congasim -mode incast -fanout 32 -minrto 1ms
//	congasim -mode fig2 -scheme local
//	congasim -scheme ecmp -record run.trace.gz       # capture the workload
//	congasim -scheme conga -replay run.trace.gz      # re-inject it elsewhere
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	conga "conga"
	"conga/internal/replay"
	"conga/internal/telemetry"
)

func main() {
	var (
		mode     = flag.String("mode", "fct", "experiment: fct, incast, hdfs, fig2, fig3")
		scheme   = flag.String("scheme", "conga", "ecmp, conga, conga-flow, local, spray, wcmp, mptcp")
		workload = flag.String("workload", "enterprise", "enterprise, data-mining, web-search")
		load     = flag.Float64("load", 0.6, "offered load as a fraction of bisection bandwidth")
		duration = flag.Duration("duration", 100*time.Millisecond, "arrival window (simulated)")
		maxFlows = flag.Int("maxflows", 5000, "bound on generated flows")
		seed     = flag.Uint64("seed", 1, "random seed")

		leaves    = flag.Int("leaves", 2, "leaf switches")
		spines    = flag.Int("spines", 2, "spine switches")
		hosts     = flag.Int("hosts", 32, "hosts per leaf")
		linksPer  = flag.Int("links", 2, "parallel links per leaf-spine pair")
		accessG   = flag.Float64("access", 10, "access link Gbps")
		fabricG   = flag.Float64("fabric", 40, "fabric link Gbps")
		failSpec  = flag.String("fail", "", "failed links as leaf,spine,k[;leaf,spine,k...]")
		transport = flag.String("transport", "", "tcp or mptcp (defaults by scheme)")
		minRTO    = flag.Duration("minrto", 200*time.Millisecond, "TCP minimum RTO")
		mtu       = flag.Int("mtu", 1500, "MTU in bytes")
		imbalance = flag.Bool("imbalance", false, "collect Figure-12 imbalance stats")
		queues    = flag.Bool("queues", false, "collect queue occupancy stats")
		parallel  = flag.Int("parallel", 1, "space-parallel domains for fct mode (>1 partitions the fabric across that many worker goroutines)")

		fanout = flag.Int("fanout", 16, "incast fan-in (incast mode)")
		reqMB  = flag.Int("reqmb", 10, "incast request size in MB")

		recordPath = flag.String("record", "", "record the flow-arrival sequence to this trace file (.gz = compact binary, else NDJSON)")
		replayPath = flag.String("replay", "", "replay a recorded trace instead of generating a workload (fct mode; scheme/transport/failures may differ from the recording)")
		cdfOut     = flag.String("cdfout", "", "write collected CDFs (-imbalance, -queues) as value,fraction CSVs into this directory (congaplot -cdf renders them)")

		telemetryDir  = flag.String("telemetry", "", "enable telemetry and write one CSV + NDJSON file per probe into this directory")
		telemetryFlow = flag.Int64("telemetry-flow", -1, "restrict the packet trace to this flow ID (-1 = all flows)")
		traceMode     = flag.String("trace-mode", "head", "packet-trace capture mode when full: head, tail (flight recorder), reservoir")
		traceTrigger  = flag.String("trace-trigger", "none", "freeze the trace on a condition: none, first-drop, first-rto (|-combinable)")
		traceStop     = flag.Int("trace-stop-after", 0, "record this many further events after the trigger before freezing")
		decisions     = flag.Bool("decisions", false, "enable the decision plane (requires -telemetry or -serve): flowlet routing audit trail, path load matrices, feedback-staleness series")
		serveAddr     = flag.String("serve", "", "serve the live telemetry endpoint on this address (e.g. :8080) while the run executes")
		linger        = flag.Duration("linger", 0, "keep the -serve endpoint up this long after the run finishes")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			die(err)
			defer f.Close()
			runtime.GC() // drop dead objects so the profile shows what's retained
			die(pprof.WriteHeapProfile(f))
		}()
	}

	sch, err := parseScheme(*scheme)
	die(err)
	topo := conga.Topology{
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts, LinksPerSpine: *linksPer,
		AccessGbps: *accessG, FabricGbps: *fabricG,
	}
	topo.FailedLinks, err = parseFailures(*failSpec)
	die(err)

	tc := conga.TransportConfig{MinRTO: *minRTO, MTU: *mtu}
	switch *transport {
	case "mptcp":
		tc.Kind = conga.TransportMPTCP
	case "", "tcp":
	default:
		die(fmt.Errorf("unknown transport %q", *transport))
	}

	var tel *conga.TelemetryOptions
	if *telemetryDir != "" || *serveAddr != "" {
		tel = conga.TelemetryAll(*telemetryDir)
		if *telemetryFlow >= 0 {
			tel.TraceFilter.FlowID = *telemetryFlow
			tel.TraceFilter.SrcHost, tel.TraceFilter.DstHost = -1, -1
			tel.TraceFilter.SrcPort, tel.TraceFilter.DstPort = -1, -1
		}
		tel.TraceMode, err = telemetry.ParseCaptureMode(*traceMode)
		die(err)
		tel.TraceTrigger, err = telemetry.ParseTrigger(*traceTrigger)
		die(err)
		tel.TraceStopAfter = *traceStop
		// The decision plane is opt-in on the CLI: the audit trail and path
		// matrices only appear with -decisions. Under -parallel the per-leaf
		// hooks stay on but the single shared audit buffer must go.
		tel.Decisions, tel.DecisionTrace = *decisions, *decisions
		tel.DecisionMode = tel.TraceMode
		if *decisions && *parallel > 1 {
			tel.DecisionTrace = false
			fmt.Printf("decisions: audit trail disabled under -parallel %d (no deterministic merge); path matrices and staleness series remain on\n", *parallel)
		}
	} else if *decisions {
		die(fmt.Errorf("-decisions needs telemetry enabled; add -telemetry DIR or -serve ADDR"))
	}

	// -serve exposes the run live: the engine publishes tap snapshots at
	// its collector safe points and the HTTP readers only ever load them,
	// so watching a run never changes it.
	var srv *conga.TelemetryServer
	if *serveAddr != "" {
		hub := conga.NewTelemetryHub()
		tel.Tap = true
		tel.Hub = hub
		tel.RunName = *mode
		srv, err = conga.ServeTelemetry(*serveAddr, hub)
		die(err)
		fmt.Printf("live telemetry on http://%s (endpoints: /, /counters, /series, /series/<name>, /stream)\n", srv.Addr)
	}

	switch *mode {
	case "fct":
		w, err := parseWorkload(*workload)
		die(err)
		cfg := conga.FCTConfig{
			Topology: topo, Scheme: sch, Workload: w, Load: *load,
			Transport: tc, Duration: *duration, MaxFlows: *maxFlows, Seed: *seed,
			CollectImbalance: *imbalance, CollectQueues: *queues,
			Telemetry: tel, Parallel: *parallel,
			Record: *recordPath != "",
		}
		if *replayPath != "" {
			tr, err := replay.Read(*replayPath)
			die(err)
			cfg.Replay = tr
			h := tr.Header
			fmt.Printf("replaying %s: %d flows (%.1f MB) recorded under %s/%s load %.0f%% on %s\n",
				*replayPath, h.Flows, float64(h.Bytes)/1e6, h.Scheme, h.Workload, h.Load*100, h.Topo)
		}
		res, err := conga.RunFCT(cfg)
		die(err)
		printFCT(res)
		printTelemetry(res.Telemetry, *telemetryDir)
		writeTrace(*recordPath, res.Trace)
		writeCDFs(*cdfOut, res)
	case "incast":
		res, err := conga.RunIncast(conga.IncastConfig{
			Topology: topo, Scheme: sch, Transport: tc,
			Fanout: *fanout, RequestBytes: int64(*reqMB) << 20, Seed: *seed,
			Telemetry: tel, Record: *recordPath != "",
		})
		die(err)
		fmt.Printf("fanout %d: goodput %.1f%% of access rate, %d rounds, %d drops at client port, %d RTOs\n",
			res.Fanout, res.GoodputFraction*100, res.CompletedRounds, res.Drops, res.Timeouts)
		printTelemetry(res.Telemetry, *telemetryDir)
		writeTrace(*recordPath, res.Trace)
	case "hdfs":
		res, err := conga.RunHDFS(conga.HDFSConfig{
			Topology: topo, Scheme: sch, Transport: tc,
			BackgroundLoad: *load, Seed: *seed,
			Telemetry: tel, Record: *recordPath != "",
		})
		die(err)
		fmt.Printf("job completion %.2fs (completed=%v), %d blocks, %d MB replicated, %d background flows\n",
			res.JobCompletion.Seconds(), res.Completed, res.Blocks, res.ReplicaBytes>>20, res.BackgroundFlows)
		printTelemetry(res.Telemetry, *telemetryDir)
		writeTrace(*recordPath, res.Trace)
	case "fig2":
		res, err := conga.RunFigure2(sch, *seed)
		die(err)
		fmt.Printf("%s: spine0 %.2fG spine1 %.2fG total %.2fG\n",
			res.Scheme, res.SpineGbps[0], res.SpineGbps[1], res.TotalGbps)
	case "fig3":
		for _, busy := range []bool{false, true} {
			res, err := conga.RunFigure3(sch, busy, *seed)
			die(err)
			fmt.Printf("%s L0-busy=%-5v: L1 via S0 %.2fG, via S1 %.2fG\n",
				res.Scheme, busy, res.LeafUplinkGbps[1][0], res.LeafUplinkGbps[1][1])
		}
	default:
		die(fmt.Errorf("unknown mode %q", *mode))
	}

	if srv != nil {
		if *linger > 0 {
			fmt.Printf("run finished; serving final snapshot for %v on http://%s\n", *linger, srv.Addr)
			time.Sleep(*linger)
		}
		srv.Close()
	}
}

func printFCT(r *conga.FCTResult) {
	fmt.Printf("scheme=%s workload=%s load=%.0f%%\n", r.Scheme, r.Workload, r.Load*100)
	fmt.Printf("flows: generated %d, completed %d\n", r.Generated, r.Completed)
	fmt.Printf("FCT: avg %v, p99 %v, norm(avg) %.2f, norm(per-flow) %.2f\n",
		r.AvgFCT.Round(time.Microsecond), r.P99FCT.Round(time.Microsecond), r.NormFCT, r.NormFCTPerFlow)
	fmt.Printf("buckets: small(<100KB) avg %v over %d, large(>10MB) avg %v over %d\n",
		r.SmallAvgFCT.Round(time.Microsecond), r.SmallCount, r.LargeAvgFCT.Round(time.Millisecond), r.LargeCount)
	fmt.Printf("loss: %d drops, %d retransmitted segments, %d RTOs\n", r.Drops, r.Retransmits, r.Timeouts)
	if r.ImbalanceCDF != nil {
		fmt.Printf("uplink imbalance: mean %.3f over %d windows\n", r.ImbalanceMean, len(r.ImbalanceCDF))
	}
	if r.HotspotQueueCDF != nil {
		maxq := r.HotspotQueueCDF[len(r.HotspotQueueCDF)-1][0]
		fmt.Printf("hotspot queue: max %.2f MB\n", maxq/1e6)
	}
	fmt.Printf("cost: %v simulated, %d events\n", r.SimTime, r.Events)
}

// writeTrace stores a recorded arrival trace (no-op when recording was
// off or the harness had nothing to record).
func writeTrace(path string, tr *replay.Trace) {
	if path == "" {
		return
	}
	if tr == nil {
		fmt.Println("record: nothing recorded (mode records no arrivals)")
		return
	}
	die(tr.Write(path))
	fmt.Printf("recorded %d flows (%.1f MB offered) to %s\n",
		tr.Header.Flows, float64(tr.Header.Bytes)/1e6, path)
}

// writeCDFs emits the run's collected CDFs as value,fraction CSVs that
// congaplot -cdf renders (paper Figures 12 and 11b).
func writeCDFs(dir string, r *conga.FCTResult) {
	if dir == "" {
		return
	}
	if r.ImbalanceCDF == nil && r.HotspotQueueCDF == nil {
		fmt.Println("cdfout: no CDFs collected (pass -imbalance and/or -queues)")
		return
	}
	die(os.MkdirAll(dir, 0o755))
	write := func(name, unit string, cdf conga.CDF) {
		if cdf == nil {
			return
		}
		f, err := os.Create(filepath.Join(dir, name))
		die(err)
		fmt.Fprintf(f, "# unit=%s\n", unit)
		fmt.Fprintln(f, "value,fraction")
		for _, p := range cdf {
			fmt.Fprintf(f, "%g,%g\n", p[0], p[1])
		}
		die(f.Close())
		fmt.Printf("cdfout: wrote %s\n", filepath.Join(dir, name))
	}
	write("cdf_imbalance.csv", "ratio", r.ImbalanceCDF)
	write("cdf_queue_hotspot.csv", "bytes", r.HotspotQueueCDF)
	for name, cdf := range r.QueueCDFs {
		write("cdf_queue_"+sanitize(name)+".csv", "bytes", cdf)
	}
}

// sanitize mirrors the telemetry sinks' filename rules.
func sanitize(name string) string {
	name = strings.ReplaceAll(name, "->", "-")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, name)
}

func printTelemetry(reg *conga.TelemetryRegistry, dir string) {
	if reg == nil {
		return
	}
	enq, deq, drops, ce := reg.LinkTotals()
	tcp := reg.TCPTotals()
	creates, expires, evicts := reg.FlowletTotals()
	fmt.Printf("telemetry: links enq %d deq %d drops %d ce-marks %d; tcp retx %d rto %d dupacks %d; flowlets created %d expired %d evicted %d\n",
		enq, deq, drops, ce, tcp.Retransmits, tcp.Timeouts, tcp.DupAcks, creates, expires, evicts)
	dest := dir
	if dest == "" {
		dest = "(in memory)"
	}
	fmt.Printf("telemetry: %d series, %d trace events -> %s\n", len(reg.AllSeries()), reg.Trace().Len(), dest)
	if tr := reg.Trace(); tr != nil {
		info := tr.Info()
		if info.Triggered {
			fmt.Printf("telemetry: trace capture=%s suppressed=%d trigger=%s fired at %v (%s)\n",
				info.Mode, info.Suppressed, info.Trigger, time.Duration(info.TriggeredAt), info.TriggerReason)
		} else if info.Mode != telemetry.CaptureHead || info.Trigger != 0 {
			fmt.Printf("telemetry: trace capture=%s suppressed=%d trigger=%s (not fired)\n",
				info.Mode, info.Suppressed, info.Trigger)
		}
	}
	if dt := reg.DecisionTotals(); dt.Sticky+dt.NewFlowlet+dt.Expired+dt.Evicted > 0 {
		fmt.Printf("decisions: sticky %d new-flowlet %d expired %d evicted %d cold %d",
			dt.Sticky, dt.NewFlowlet, dt.Expired, dt.Evicted, dt.Cold)
		if tr := reg.DecisionTrace(); tr != nil {
			info := tr.Info()
			fmt.Printf("; audit trail capture=%s recorded=%d suppressed=%d", info.Mode, info.Recorded, info.Suppressed)
		}
		fmt.Println()
		for _, sm := range reg.PathSummaries() {
			fmt.Printf("decisions: leaf%d routed %d flowlets %d MB; uplink imbalance %.2f entropy %.2f\n",
				sm.Leaf, sm.Flowlets, sm.Bytes>>20, sm.Imbalance, sm.Entropy)
		}
	}
}

func parseScheme(s string) (conga.Scheme, error) {
	if s == "mptcp" {
		return conga.SchemeMPTCPMarker, nil
	}
	return conga.ParseScheme(s)
}

func parseWorkload(s string) (conga.Workload, error) {
	switch s {
	case "enterprise":
		return conga.WorkloadEnterprise, nil
	case "data-mining":
		return conga.WorkloadDataMining, nil
	case "web-search":
		return conga.WorkloadWebSearch, nil
	}
	return 0, fmt.Errorf("unknown workload %q", s)
}

func parseFailures(spec string) ([][3]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out [][3]int
	for _, part := range strings.Split(spec, ";") {
		fields := strings.Split(part, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad failure spec %q (want leaf,spine,k)", part)
		}
		var f [3]int
		for i, fs := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(fs))
			if err != nil {
				return nil, fmt.Errorf("bad failure spec %q: %v", part, err)
			}
			f[i] = v
		}
		out = append(out, f)
	}
	return out, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "congasim:", err)
		os.Exit(1)
	}
}
