package conga

import (
	"reflect"
	"testing"
	"time"
)

// fusionCells is the equivalence matrix: the paper-artifact configurations
// the fused engine must reproduce bit-for-bit. Fig09 is the steady-state
// FCT sweep, Fig11 adds a failed fabric link (asymmetry plus the SetUp
// drop paths), and Scale64 is the smallest large-fabric sweep cell (many
// leaves, 40G links, pooled flows). Each runs sequentially and, where
// listed, space-parallel with two domains (mailbox export + window-merge
// splice paths).
func fusionCells() []struct {
	name     string
	parallel []int
	cfg      FCTConfig
} {
	fig09 := FCTConfig{
		Topology:  benchTopo(),
		Scheme:    SchemeCONGA,
		Workload:  WorkloadEnterprise,
		Load:      0.6,
		Duration:  10 * time.Millisecond,
		MaxFlows:  150,
		Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
		Seed:      7,
		// Per-flow FCT vectors: a single reordered completion fails the
		// comparison flow by flow, not just in the aggregate stats.
		CollectFlows: true,
	}
	fig11 := fig09
	fig11.Topology.FailedLinks = [][3]int{{1, 1, 1}}
	fig11.Seed = 11

	scale64 := ScaleConfig{
		Leaves:     []int{64},
		AccessGbps: []float64{40},
		MaxFlows:   600, // the sweep cell's shape at test-friendly flow count
	}.Configs()[0]
	scale64.CollectFlows = true
	scale64.Seed = 3

	return []struct {
		name     string
		parallel []int
		cfg      FCTConfig
	}{
		{"Fig09", []int{1, 2}, fig09},
		{"Fig11", []int{1}, fig11},
		{"Scale64", []int{1, 2}, scale64},
	}
}

// TestFusionEquivalence is the cut-through fast path's correctness
// contract (DESIGN.md §3.9): with fusion on, every observable of a run —
// per-flow FCT vectors, normalized FCT, drops, retransmits, queue CDFs,
// goodput — must be bit-identical to the unfused engine on the same
// seeded configuration. Only the executed-event count may differ, and it
// must actually differ (shrink), or the fast path never engaged and the
// test proves nothing.
func TestFusionEquivalence(t *testing.T) {
	for _, cell := range fusionCells() {
		for _, par := range cell.parallel {
			cfg := cell.cfg
			cfg.Parallel = par

			fused, err := RunFCT(cfg)
			if err != nil {
				t.Fatalf("%s/p%d fused: %v", cell.name, par, err)
			}
			cfg.Topology.DisableFusion = true
			slow, err := RunFCT(cfg)
			if err != nil {
				t.Fatalf("%s/p%d unfused: %v", cell.name, par, err)
			}

			if fused.Events >= slow.Events {
				t.Errorf("%s/p%d: fusion executed %d events, unfused %d — fast path never engaged",
					cell.name, par, fused.Events, slow.Events)
			}
			f, s := *fused, *slow
			f.Events, s.Events = 0, 0
			f.Wall, s.Wall = 0, 0
			if !reflect.DeepEqual(f, s) {
				t.Errorf("%s/p%d: fused run diverged from unfused\nfused:   %+v\nunfused: %+v",
					cell.name, par, f, s)
			}
		}
	}
}

// TestFusionEquivalenceIncast is the Fig13 leg of the matrix: the Incast
// micro-benchmark runs every round to completion, so besides the result
// struct the telemetry counter totals must agree exactly — fused links
// apply tx-side counters at serialization start rather than end, which is
// observable mid-run but must never survive a quiesced run.
func TestFusionEquivalenceIncast(t *testing.T) {
	cfg := IncastConfig{
		Topology:     benchTopo(),
		Scheme:       SchemeCONGA,
		Transport:    TransportConfig{MinRTO: time.Millisecond},
		Fanout:       8,
		RequestBytes: 1 << 20,
		Rounds:       2,
		Seed:         5,
		Telemetry:    &TelemetryOptions{Counters: true},
	}
	fused, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology.DisableFusion = true
	slow, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if fused.Events >= slow.Events {
		t.Errorf("fusion executed %d events, unfused %d — fast path never engaged",
			fused.Events, slow.Events)
	}
	freg, sreg := fused.Telemetry, slow.Telemetry
	fused.Telemetry, slow.Telemetry = nil, nil
	fused.Events, slow.Events = 0, 0
	fused.Wall, slow.Wall = 0, 0
	if !reflect.DeepEqual(fused, slow) {
		t.Fatalf("fused incast diverged from unfused\nfused:   %+v\nunfused: %+v", fused, slow)
	}
	if !reflect.DeepEqual(freg.CounterRows(), sreg.CounterRows()) {
		t.Fatalf("telemetry counter totals differ after quiesce\nfused:   %+v\nunfused: %+v",
			freg.CounterRows(), sreg.CounterRows())
	}
	if enq, _, _, _ := freg.LinkTotals(); enq == 0 {
		t.Fatal("counters observed nothing; the comparison proves nothing")
	}
}

// TestFusionAutoDisabledByTrace pins the fallback contract: a packet trace
// (or live tap) observes mid-serialization state, so requesting one forces
// every link onto the slow path. The proof is the executed-event count —
// with tracing on, a fusion-allowed run must cost exactly as many events
// as a DisableFusion run, not just produce the same results.
func TestFusionAutoDisabledByTrace(t *testing.T) {
	cfg := FCTConfig{
		Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
			AccessGbps: 10, FabricGbps: 10},
		Scheme:       SchemeCONGA,
		Workload:     WorkloadEnterprise,
		Load:         0.5,
		Duration:     8 * time.Millisecond,
		MaxFlows:     80,
		Seed:         9,
		CollectFlows: true,
		Telemetry:    TelemetryAll(""),
	}
	traced, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology.DisableFusion = true
	slow, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *traced, *slow
	a.Telemetry, b.Telemetry = nil, nil
	a.Wall, b.Wall = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("traced run differs from explicit DisableFusion\ntraced: %+v\nslow:   %+v", a, b)
	}
	if a.Events != b.Events {
		t.Fatalf("trace did not force the slow path: %d events vs %d", a.Events, b.Events)
	}
}
