package conga

import (
	"testing"
	"time"
)

func TestRunHDFSCompletes(t *testing.T) {
	res, err := RunHDFS(HDFSConfig{
		Topology:       quickTopo(),
		Scheme:         SchemeCONGA,
		Transport:      TransportConfig{MinRTO: 10 * time.Millisecond},
		Writers:        8,
		BytesPerWriter: 1 << 20,
		BlockBytes:     256 << 10,
		DiskMBps:       200,
		BackgroundLoad: 0.2,
		Timeout:        20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("HDFS job did not complete")
	}
	if res.JobCompletion <= 0 || res.JobCompletion > 20*time.Second {
		t.Fatalf("job completion %v out of range", res.JobCompletion)
	}
	if res.Blocks != 8*4 {
		t.Fatalf("%d blocks, want 32", res.Blocks)
	}
	if res.BackgroundFlows == 0 {
		t.Fatal("no background traffic generated")
	}
}

func TestRunHDFSDeterministic(t *testing.T) {
	cfg := HDFSConfig{
		Topology:       quickTopo(),
		Scheme:         SchemeECMP,
		Writers:        4,
		BytesPerWriter: 512 << 10,
		BlockBytes:     128 << 10,
		DiskMBps:       200,
		Seed:           7,
	}
	a, err := RunHDFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHDFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.JobCompletion != b.JobCompletion {
		t.Fatalf("same seed, different job times: %v vs %v", a.JobCompletion, b.JobCompletion)
	}
}

// TestHDFSFailureDegradesECMPMore is the Figure 14 shape at test scale.
func TestHDFSFailureDegradesECMPMore(t *testing.T) {
	// Paper-rate links matter here: at 10G the DRE metrics discriminate
	// paths; at toy 1G rates the whole fabric saturates into bufferbloat
	// and every scheme thrashes alike.
	run := func(s Scheme, seed uint64) time.Duration {
		topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 2,
			AccessGbps: 10, FabricGbps: 20,
			FailedLinks: [][3]int{{1, 1, 1}}}
		res, err := RunHDFS(HDFSConfig{
			Topology:       topo,
			Scheme:         s,
			Transport:      TransportConfig{MinRTO: 10 * time.Millisecond},
			Writers:        16,
			BytesPerWriter: 2 << 20,
			BlockBytes:     512 << 10,
			DiskMBps:       2000, // network-bound
			BackgroundLoad: 0.45,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.JobCompletion
	}
	var ecmpFail, congaFail time.Duration
	for seed := uint64(1); seed <= 3; seed++ {
		ecmpFail += run(SchemeECMP, seed)
		congaFail += run(SchemeCONGA, seed)
	}
	if float64(congaFail) > float64(ecmpFail)*1.15 {
		t.Fatalf("CONGA slower than ECMP on the degraded fabric: %v vs %v", congaFail, ecmpFail)
	}
}

func TestRunFigure2WCMPBetweenECMPAndCONGA(t *testing.T) {
	// Static weights tuned to this topology (2:1) should beat ECMP but a
	// traffic-matrix change would break them (Figure 3); here just check
	// WCMP lands in a sane range.
	w, err := RunFigure2(SchemeWCMP, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := RunFigure2(SchemeECMP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalGbps < e.TotalGbps*0.95 {
		t.Fatalf("WCMP (%.2f) collapsed below ECMP (%.2f)", w.TotalGbps, e.TotalGbps)
	}
}

func TestOptimalFCTJumboFramesFaster(t *testing.T) {
	std := TransportConfig{MTU: 1500}.withDefaults()
	jumbo := TransportConfig{MTU: 9000}.withDefaults()
	size := int64(10 << 20)
	if OptimalFCT(Topology{}, jumbo, size) >= OptimalFCT(Topology{}, std, size) {
		t.Fatal("jumbo frames did not reduce the optimal FCT (less header overhead)")
	}
}

func TestTransportConfigDefaults(t *testing.T) {
	tc := TransportConfig{}.withDefaults()
	if tc.MTU != 1500 || tc.MinRTO != 200*time.Millisecond || tc.Subflows != 8 {
		t.Fatalf("defaults wrong: %+v", tc)
	}
	c := tc.tcpConfig()
	if c.MSS != 1460 {
		t.Fatalf("MSS = %d", c.MSS)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeForFabricMapsMPTCP(t *testing.T) {
	s, tr, err := schemeForFabric(SchemeMPTCPMarker, TransportTCP)
	if err != nil || s != SchemeECMP || tr != TransportMPTCP {
		t.Fatalf("MPTCP marker mapping: %v %v %v", s, tr, err)
	}
	if _, _, err := schemeForFabric(Scheme(42), TransportTCP); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestRunFCTRejectsBadScheme(t *testing.T) {
	_, err := RunFCT(FCTConfig{Scheme: Scheme(42), Load: 0.5})
	if err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestRunFCTWCMPWithWeights(t *testing.T) {
	cfg := quickFCT(SchemeWCMP, WorkloadEnterprise, 0.3)
	cfg.WCMPWeights = []float64{1, 1, 1, 1}
	cfg.MaxFlows = 100
	res, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("WCMP run completed nothing")
	}
}

// TestCONGAFlowOneDecisionPerFlow: with the 13 ms timeout, a flow's
// packets all take one path — verified indirectly by zero reordering even
// under congestion-driven re-decisions.
func TestCONGAFlowStillBeatsECMPUnderFailure(t *testing.T) {
	topo := quickTopo()
	topo.FailedLinks = [][3]int{{1, 1, 1}}
	run := func(s Scheme) float64 {
		cfg := quickFCT(s, WorkloadEnterprise, 0.6)
		cfg.Topology = topo
		cfg.Duration = 40 * time.Millisecond
		cfg.MaxFlows = 500
		r, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.NormFCT
	}
	ecmp := run(SchemeECMP)
	cflow := run(SchemeCONGAFlow)
	// CONGA-Flow makes congestion-aware per-flow decisions: it must not
	// be (meaningfully) worse than congestion-oblivious ECMP.
	if cflow > ecmp*1.10 {
		t.Fatalf("CONGA-Flow (%.2f) worse than ECMP (%.2f) under failure", cflow, ecmp)
	}
}

func TestAllSchemesList(t *testing.T) {
	if len(AllSchemes()) != 7 {
		t.Fatalf("AllSchemes has %d entries", len(AllSchemes()))
	}
}

func TestWorkloadStringUnknown(t *testing.T) {
	if Workload(99).String() == "" {
		t.Fatal("unknown workload produced empty name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dist() on unknown workload did not panic")
		}
	}()
	Workload(99).Dist()
}

func TestIncastResultDropsAtClientPort(t *testing.T) {
	topo := quickTopo()
	topo.EdgeBufBytes = 256 << 10
	res, err := RunIncast(IncastConfig{
		Topology:     topo,
		Scheme:       SchemeECMP,
		Transport:    TransportConfig{MinRTO: time.Millisecond},
		Fanout:       12,
		RequestBytes: 3 << 20,
		Rounds:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("incast into a 256KB port buffer dropped nothing")
	}
	if res.Timeouts == 0 {
		t.Fatal("incast produced no RTOs despite drops")
	}
}
