package conga

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"conga/internal/runner"
)

// TestTelemetryDoesNotPerturbSimulation is the "probes observe, never
// schedule" acceptance test: the same seeded config must produce a
// bit-identical result — event count, FCTs, drops, everything — with
// telemetry fully enabled as with it off. Samplers piggyback on the existing
// DRE and flowlet tickers, counters are plain field bumps, and sinks only
// run post-engine, so nothing about the event sequence may change.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	for _, scheme := range []Scheme{SchemeECMP, SchemeCONGA, SchemeMPTCPMarker} {
		cfg := FCTConfig{
			// TelemetryAll includes the packet trace, which forces the fused
			// fast path off (its mid-serialization snapshots would observe
			// the early-applied tx counters); pin the baseline to the same
			// slow path so the executed-event count compares bit-for-bit
			// too. Fused-vs-unfused equivalence has its own test
			// (TestFusionEquivalence).
			Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
				AccessGbps: 10, FabricGbps: 10, DisableFusion: true},
			Scheme:   scheme,
			Workload: WorkloadEnterprise,
			Load:     0.6,
			Duration: 10 * time.Millisecond,
			MaxFlows: 120,
			Seed:     7,
			// Per-flow FCT vectors sharpen the bit-identity check: any
			// reordered completion shows up flow by flow, not just in the
			// aggregate stats.
			CollectFlows: true,
		}
		off, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := TelemetryAll("") // every probe on, no flush dir
		cfg.Telemetry = opts
		on, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if on.Telemetry == nil {
			t.Fatalf("%s: telemetry requested but result carries none", on.Scheme)
		}
		reg := on.Telemetry
		on.Telemetry = nil
		off.Wall, on.Wall = 0, 0 // wall clock is environment, not behavior
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("%s: telemetry changed the simulation\noff: %+v\non:  %+v", off.Scheme, off, on)
		}
		// The probes must have actually observed something, or the test
		// proves nothing.
		if enq, _, _, _ := reg.LinkTotals(); enq == 0 {
			t.Fatalf("%s: no enqueues counted", off.Scheme)
		}
		if len(reg.AllSeries()) == 0 {
			t.Fatalf("%s: no series registered", off.Scheme)
		}
		// TelemetryAll includes the decision plane, so the bit-identity
		// check above already covers it; here make sure it observed real
		// decisions on the scheme that has a decision plane.
		if off.Scheme == "conga" {
			dt := reg.DecisionTotals()
			if dt.Sticky+dt.NewFlowlet+dt.Expired+dt.Evicted == 0 {
				t.Fatal("conga: decision hooks recorded nothing")
			}
			tr := reg.DecisionTrace()
			if tr == nil || tr.Len() == 0 {
				t.Fatal("conga: decision trace empty")
			}
			if info := tr.Info(); info.Recorded+int(info.Suppressed) != info.Seen {
				t.Fatalf("conga: capture accounting broken: recorded %d + suppressed %d != seen %d",
					info.Recorded, info.Suppressed, info.Seen)
			}
			if len(reg.PathRows()) == 0 {
				t.Fatal("conga: path load matrix empty")
			}
		}

		// Space-parallel leg of the matrix: the same non-perturbation
		// contract holds per worker count. Trace/Tap/Hub are rejected under
		// Parallel>1 (single-engine machinery), so this leg runs the probes
		// parallel mode supports — counters and series — and demands the
		// bit-identical result parallel determinism guarantees.
		pcfg := cfg
		pcfg.Parallel = 2
		pcfg.Telemetry = nil
		poff, err := RunFCT(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		// Decision hooks are per-leaf and domain-owned, so they stay on
		// under parallel; only the shared DecisionTrace buffer is rejected.
		pcfg.Telemetry = &TelemetryOptions{Counters: true, Series: true, Decisions: true}
		pon, err := RunFCT(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if pon.Telemetry == nil {
			t.Fatalf("%s parallel: telemetry requested but result carries none", pon.Scheme)
		}
		preg := pon.Telemetry
		pon.Telemetry = nil
		poff.Wall, pon.Wall = 0, 0
		if !reflect.DeepEqual(poff, pon) {
			t.Fatalf("%s parallel: telemetry changed the simulation\noff: %+v\non:  %+v", poff.Scheme, poff, pon)
		}
		if enq, _, _, _ := preg.LinkTotals(); enq == 0 {
			t.Fatalf("%s parallel: no enqueues counted", poff.Scheme)
		}
		if poff.Scheme == "conga" && preg.DecisionTotals().Sticky == 0 {
			t.Fatal("conga parallel: decision hooks recorded nothing")
		}
	}
}

// TestDecisionTraceRejectedUnderParallel pins the loud-rejection contract:
// the decision audit trail is one bounded buffer with no deterministic
// per-domain merge, so asking for it under Parallel>1 must fail with an
// error that names the sequential alternative rather than silently
// dropping events or racing.
func TestDecisionTraceRejectedUnderParallel(t *testing.T) {
	cfg := FCTConfig{
		Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
			AccessGbps: 10, FabricGbps: 10},
		Scheme:    SchemeCONGA,
		Workload:  WorkloadEnterprise,
		Load:      0.5,
		Duration:  5 * time.Millisecond,
		MaxFlows:  40,
		Seed:      1,
		Parallel:  2,
		Telemetry: &TelemetryOptions{Counters: true, Decisions: true, DecisionTrace: true},
	}
	if _, err := RunFCT(cfg); err == nil {
		t.Fatal("DecisionTrace with Parallel=2 should be rejected")
	} else if !strings.Contains(err.Error(), "decision trace") {
		t.Fatalf("rejection should name the decision trace, got: %v", err)
	}
	// Dropping just the trace keeps the rest of the decision plane working.
	cfg.Telemetry = &TelemetryOptions{Counters: true, Decisions: true}
	res, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.DecisionTotals().Sticky == 0 {
		t.Fatal("decision counters should work under Parallel=2")
	}
	if res.Telemetry.DecisionTrace() != nil {
		t.Fatal("no trace was requested")
	}
}

// TestTelemetryDoesNotPerturbIncast covers the goodput acceptance metric on
// the Incast micro-benchmark.
func TestTelemetryDoesNotPerturbIncast(t *testing.T) {
	cfg := IncastConfig{
		// Fusion off on both sides: the traced run would fall back to the
		// slow path anyway and the event counts would differ by design
		// (TestFusionEquivalenceIncast covers fused-vs-unfused identity).
		Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 1,
			AccessGbps: 10, FabricGbps: 10, DisableFusion: true},
		Scheme: SchemeCONGA,
		Fanout: 8,
		Rounds: 2,
		Seed:   3,
	}
	off, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := TelemetryAll("")
	cfg.Telemetry = opts
	on, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Telemetry == nil {
		t.Fatal("telemetry requested but result carries none")
	}
	on.Telemetry = nil
	off.Wall, on.Wall = 0, 0 // wall clock is environment, not behavior
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("telemetry changed incast results\noff: %+v\non:  %+v", off, on)
	}
}

// TestTelemetryRegistriesIsolatedAcrossEngines drives ≥8 concurrent engines
// through runner.MapStream, all with telemetry on, and asserts per-engine
// isolation: every run owns a distinct registry, and duplicate configs
// produce identical counter rows regardless of which worker ran them. Run
// under -race this also proves no registry state is shared across engines.
func TestTelemetryRegistriesIsolatedAcrossEngines(t *testing.T) {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessGbps: 10, FabricGbps: 10}
	opts := TelemetryAll("") // shared options value is fine; each run builds its own registry
	var cfgs []FCTConfig
	for rep := 0; rep < 2; rep++ { // duplicates land on different workers
		for _, s := range []Scheme{SchemeECMP, SchemeCONGA} {
			for seed := uint64(1); seed <= 2; seed++ {
				cfgs = append(cfgs, FCTConfig{
					Topology: topo, Scheme: s, Workload: WorkloadEnterprise,
					Load: 0.5, Duration: 8 * time.Millisecond, MaxFlows: 60,
					Seed: seed, Telemetry: opts,
				})
			}
		}
	}
	if len(cfgs) < 8 {
		t.Fatalf("test wants ≥8 engines, built %d", len(cfgs))
	}
	streamed := 0
	results, err := runner.MapStream(8, cfgs, RunFCT, func(i int, r *FCTResult, err error) {
		streamed++
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(cfgs) {
		t.Fatalf("emit saw %d results, want %d", streamed, len(cfgs))
	}

	seen := make(map[*TelemetryRegistry]int)
	for i, r := range results {
		if r.Telemetry == nil {
			t.Fatalf("run %d has no registry", i)
		}
		if j, dup := seen[r.Telemetry]; dup {
			t.Fatalf("runs %d and %d share a registry", j, i)
		}
		seen[r.Telemetry] = i
	}

	// Duplicate configs (i and i+half) must agree counter for counter.
	half := len(cfgs) / 2
	for i := 0; i < half; i++ {
		a, b := results[i].Telemetry.CounterRows(), results[i+half].Telemetry.CounterRows()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("duplicate config %d: counter rows differ across workers\na: %+v\nb: %+v", i, a, b)
		}
		if enq, _, _, _ := results[i].Telemetry.LinkTotals(); enq == 0 {
			t.Fatalf("run %d counted nothing", i)
		}
	}
}
