package conga

import (
	"reflect"
	"testing"
	"time"

	"conga/internal/runner"
)

// TestTelemetryDoesNotPerturbSimulation is the "probes observe, never
// schedule" acceptance test: the same seeded config must produce a
// bit-identical result — event count, FCTs, drops, everything — with
// telemetry fully enabled as with it off. Samplers piggyback on the existing
// DRE and flowlet tickers, counters are plain field bumps, and sinks only
// run post-engine, so nothing about the event sequence may change.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	for _, scheme := range []Scheme{SchemeECMP, SchemeCONGA, SchemeMPTCPMarker} {
		cfg := FCTConfig{
			Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
				AccessGbps: 10, FabricGbps: 10},
			Scheme:   scheme,
			Workload: WorkloadEnterprise,
			Load:     0.6,
			Duration: 10 * time.Millisecond,
			MaxFlows: 120,
			Seed:     7,
		}
		off, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := TelemetryAll("") // every probe on, no flush dir
		cfg.Telemetry = opts
		on, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if on.Telemetry == nil {
			t.Fatalf("%s: telemetry requested but result carries none", on.Scheme)
		}
		reg := on.Telemetry
		on.Telemetry = nil
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("%s: telemetry changed the simulation\noff: %+v\non:  %+v", off.Scheme, off, on)
		}
		// The probes must have actually observed something, or the test
		// proves nothing.
		if enq, _, _, _ := reg.LinkTotals(); enq == 0 {
			t.Fatalf("%s: no enqueues counted", off.Scheme)
		}
		if len(reg.AllSeries()) == 0 {
			t.Fatalf("%s: no series registered", off.Scheme)
		}

		// Space-parallel leg of the matrix: the same non-perturbation
		// contract holds per worker count. Trace/Tap/Hub are rejected under
		// Parallel>1 (single-engine machinery), so this leg runs the probes
		// parallel mode supports — counters and series — and demands the
		// bit-identical result parallel determinism guarantees.
		pcfg := cfg
		pcfg.Parallel = 2
		pcfg.Telemetry = nil
		poff, err := RunFCT(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		pcfg.Telemetry = &TelemetryOptions{Counters: true, Series: true}
		pon, err := RunFCT(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if pon.Telemetry == nil {
			t.Fatalf("%s parallel: telemetry requested but result carries none", pon.Scheme)
		}
		preg := pon.Telemetry
		pon.Telemetry = nil
		if !reflect.DeepEqual(poff, pon) {
			t.Fatalf("%s parallel: telemetry changed the simulation\noff: %+v\non:  %+v", poff.Scheme, poff, pon)
		}
		if enq, _, _, _ := preg.LinkTotals(); enq == 0 {
			t.Fatalf("%s parallel: no enqueues counted", poff.Scheme)
		}
	}
}

// TestTelemetryDoesNotPerturbIncast covers the goodput acceptance metric on
// the Incast micro-benchmark.
func TestTelemetryDoesNotPerturbIncast(t *testing.T) {
	cfg := IncastConfig{
		Topology: Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 1,
			AccessGbps: 10, FabricGbps: 10},
		Scheme: SchemeCONGA,
		Fanout: 8,
		Rounds: 2,
		Seed:   3,
	}
	off, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := TelemetryAll("")
	cfg.Telemetry = opts
	on, err := RunIncast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Telemetry == nil {
		t.Fatal("telemetry requested but result carries none")
	}
	on.Telemetry = nil
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("telemetry changed incast results\noff: %+v\non:  %+v", off, on)
	}
}

// TestTelemetryRegistriesIsolatedAcrossEngines drives ≥8 concurrent engines
// through runner.MapStream, all with telemetry on, and asserts per-engine
// isolation: every run owns a distinct registry, and duplicate configs
// produce identical counter rows regardless of which worker ran them. Run
// under -race this also proves no registry state is shared across engines.
func TestTelemetryRegistriesIsolatedAcrossEngines(t *testing.T) {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessGbps: 10, FabricGbps: 10}
	opts := TelemetryAll("") // shared options value is fine; each run builds its own registry
	var cfgs []FCTConfig
	for rep := 0; rep < 2; rep++ { // duplicates land on different workers
		for _, s := range []Scheme{SchemeECMP, SchemeCONGA} {
			for seed := uint64(1); seed <= 2; seed++ {
				cfgs = append(cfgs, FCTConfig{
					Topology: topo, Scheme: s, Workload: WorkloadEnterprise,
					Load: 0.5, Duration: 8 * time.Millisecond, MaxFlows: 60,
					Seed: seed, Telemetry: opts,
				})
			}
		}
	}
	if len(cfgs) < 8 {
		t.Fatalf("test wants ≥8 engines, built %d", len(cfgs))
	}
	streamed := 0
	results, err := runner.MapStream(8, cfgs, RunFCT, func(i int, r *FCTResult, err error) {
		streamed++
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(cfgs) {
		t.Fatalf("emit saw %d results, want %d", streamed, len(cfgs))
	}

	seen := make(map[*TelemetryRegistry]int)
	for i, r := range results {
		if r.Telemetry == nil {
			t.Fatalf("run %d has no registry", i)
		}
		if j, dup := seen[r.Telemetry]; dup {
			t.Fatalf("runs %d and %d share a registry", j, i)
		}
		seen[r.Telemetry] = i
	}

	// Duplicate configs (i and i+half) must agree counter for counter.
	half := len(cfgs) / 2
	for i := 0; i < half; i++ {
		a, b := results[i].Telemetry.CounterRows(), results[i+half].Telemetry.CounterRows()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("duplicate config %d: counter rows differ across workers\na: %+v\nb: %+v", i, a, b)
		}
		if enq, _, _, _ := results[i].Telemetry.LinkTotals(); enq == 0 {
			t.Fatalf("run %d counted nothing", i)
		}
	}
}
