package conga

import (
	"fmt"

	"conga/internal/fabric"
	"conga/internal/replay"
	"conga/internal/sim"
	"conga/internal/workload"
)

// This file glues internal/replay to the FCT harness: fingerprinting the
// topology, building trace headers, and re-injecting a recorded arrival
// sequence with the exact event structure of the live generator so that
// same-scheme replay is bit-identical (same events/op, same per-flow FCTs).

// fingerprintDesc canonically describes the fabric *shape* — the fields
// that make recorded host IDs meaningful. Scheme, transport, link
// failures, per-link rate overrides and buffer sizes are deliberately
// excluded: varying those against a fixed workload is the point of replay.
func (t Topology) fingerprintDesc() string {
	return fmt.Sprintf("leaves=%d spines=%d hosts/leaf=%d links/spine=%d access=%gG fabric=%gG",
		t.Leaves, t.Spines, t.HostsPerLeaf, t.LinksPerSpine, t.AccessGbps, t.FabricGbps)
}

// traceHeader builds the provenance header for a recording run. cfg must
// already have defaults applied.
func (cfg FCTConfig) traceHeader(workloadName string) replay.Header {
	desc := cfg.Topology.fingerprintDesc()
	return replay.Header{
		Harness:    "fct",
		Scheme:     SchemeName(cfg.Scheme),
		Workload:   workloadName,
		Load:       cfg.Load,
		Seed:       cfg.Seed,
		TopoFP:     replay.Fingerprint(desc),
		Topo:       desc,
		DurationNs: int64(cfg.Duration),
	}
}

// checkReplay validates a trace against the (defaulted) config about to
// replay it.
func (cfg FCTConfig) checkReplay() error {
	t := cfg.Replay
	if err := t.Validate(); err != nil {
		return err
	}
	desc := cfg.Topology.fingerprintDesc()
	if err := t.CheckTopology(replay.Fingerprint(desc), desc); err != nil {
		return err
	}
	// The fingerprint proves the shape matches; still bound the host IDs so
	// a forged header cannot crash the harness.
	hosts := cfg.Topology.Leaves * cfg.Topology.HostsPerLeaf
	for i, f := range t.Flows {
		if f.Src >= hosts || f.Dst >= hosts {
			return fmt.Errorf("replay: corrupt trace: arrival %d names host %d→%d beyond the fabric's %d hosts", i, f.Src, f.Dst, hosts)
		}
	}
	return nil
}

// replayInjector re-injects a recorded arrival sequence. It mirrors the
// live generator's event structure exactly — one engine event per arrival
// whose body starts the flow and then schedules the next arrival — so a
// same-scheme replay creates events in the identical order the recording
// run did. (The live generator's RNG is a private stream; not consuming it
// changes nothing else.)
type replayInjector struct {
	eng     *sim.Engine
	net     *fabric.Network
	flows   []replay.Flow
	next    int
	start   workload.Starter
	observe func(replay.Flow) // re-recording during replay (tests use this)
	startFn sim.Event         // bound once; walks flows allocation-free

	// Generated and OfferedBytes mirror workload.Generator's counters.
	Generated    int
	OfferedBytes int64
}

func newReplayInjector(eng *sim.Engine, net *fabric.Network, flows []replay.Flow, start workload.Starter, observe func(replay.Flow)) *replayInjector {
	r := &replayInjector{eng: eng, net: net, flows: flows, start: start, observe: observe}
	r.startFn = r.inject
	return r
}

// Start schedules the first arrival (as Generator.Start schedules the
// first live arrival before the engine runs).
func (r *replayInjector) Start() {
	if len(r.flows) > 0 {
		r.eng.At(r.flows[0].At, r.startFn)
	}
}

func (r *replayInjector) inject(now sim.Time) {
	f := &r.flows[r.next]
	r.next++
	r.Generated++
	r.OfferedBytes += f.Size
	if r.observe != nil {
		r.observe(*f)
	}
	r.start(r.net.Host(f.Src), r.net.Host(f.Dst), f.FlowID, f.Size)
	if r.next < len(r.flows) {
		r.eng.At(r.flows[r.next].At, r.startFn)
	}
}

// traceFromArrivals seals a trace from a fully materialized arrival list
// (the parallel path, which pregenerates; the sequential path records live
// through an Observe hook instead).
func (cfg FCTConfig) traceFromArrivals(workloadName string, arrivals []workload.Arrival) *replay.Trace {
	rec := &replay.Recorder{Header: cfg.traceHeader(workloadName)}
	for _, a := range arrivals {
		rec.Add(replay.Flow{At: a.At, Src: a.Src, Dst: a.Dst, FlowID: a.FlowID, Size: a.Size, Kind: replay.KindWorkload})
	}
	return rec.Trace()
}

// traceProvenance is the one-line run ancestry string stamped into
// telemetry sink headers, so flushed data always names the workload that
// drove it. verb is "replay" or "record".
func traceProvenance(verb string, h replay.Header) string {
	return fmt.Sprintf("%s harness=%s scheme=%s workload=%s load=%g seed=%d flows=%d fp=%016x",
		verb, h.Harness, h.Scheme, h.Workload, h.Load, h.Seed, h.Flows, h.TopoFP)
}
