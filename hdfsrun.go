package conga

import (
	"fmt"
	"time"

	"conga/internal/fabric"
	"conga/internal/hdfs"
	"conga/internal/mptcp"
	"conga/internal/replay"
	"conga/internal/sim"
	"conga/internal/stats"
	"conga/internal/tcp"
	"conga/internal/telemetry"
	"conga/internal/workload"
)

// HDFSConfig describes a Figure 14 trial: a TestDFSIO-like replicated
// write job with background enterprise traffic.
type HDFSConfig struct {
	Topology  Topology
	Scheme    Scheme
	Transport TransportConfig

	// Writers, BytesPerWriter and BlockBytes size the job (scaled down
	// from the paper's 63 writers × ~16 GB).
	Writers        int
	BytesPerWriter int64
	BlockBytes     int64
	// DiskMBps is the per-node disk write rate.
	DiskMBps float64

	// BackgroundLoad adds enterprise-workload traffic at this fraction of
	// bisection bandwidth (the paper's setup, §5.4).
	BackgroundLoad float64

	// Timeout bounds the trial in simulated time.
	Timeout time.Duration

	// Telemetry, when non-nil, enables the observability subsystem (see
	// FCTConfig.Telemetry); the registry returns in HDFSResult.Telemetry.
	Telemetry *TelemetryOptions

	// SampleCap, when > 0, records background-flow completion times into a
	// bounded reservoir (see FCTConfig.SampleCap) and reports them in
	// HDFSResult.BackgroundFCTMean/P99. Off by default: background flows
	// are load, not measurement.
	SampleCap int

	// Record, when true, captures the background workload's arrival
	// sequence (kind "workload") in HDFSResult.Trace. The replicated-write
	// job itself is closed-loop (block pipelines chain on completion), so
	// only the open-loop background traffic records.
	Record bool

	Seed uint64
}

func (c HDFSConfig) withDefaults() HDFSConfig {
	c.Topology = c.Topology.withDefaults()
	c.Transport = c.Transport.withDefaults()
	if c.Writers == 0 {
		c.Writers = c.Topology.Leaves*c.Topology.HostsPerLeaf - 1
	}
	if c.BytesPerWriter == 0 {
		c.BytesPerWriter = 8 << 20
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 1 << 20
	}
	if c.DiskMBps == 0 {
		c.DiskMBps = 100
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// HDFSResult reports one trial.
type HDFSResult struct {
	Scheme string
	// JobCompletion is the TestDFSIO job completion time (Figure 14's
	// y-axis).
	JobCompletion time.Duration
	// Completed reports whether the job finished within Timeout.
	Completed bool
	// Blocks and ReplicaBytes describe the work done.
	Blocks       int
	ReplicaBytes int64
	// BackgroundFlows counts background transfers generated;
	// BackgroundCompleted how many finished before the engine stopped.
	BackgroundFlows     int
	BackgroundCompleted int
	// BackgroundFCTMean / BackgroundFCTP99 summarize background-flow
	// completion times when HDFSConfig.SampleCap is set (mean exact, P99 a
	// reservoir estimate).
	BackgroundFCTMean time.Duration
	BackgroundFCTP99  time.Duration
	// Events counts executed simulator events; Wall the real time the run
	// cost (events/sec reporting). Wall measures the environment, not the
	// simulation: determinism comparisons must zero both first.
	Events uint64
	Wall   time.Duration

	// Telemetry is the run's populated registry when requested.
	Telemetry *TelemetryRegistry

	// Trace is the recorded background arrival sequence when
	// HDFSConfig.Record was set (nil when BackgroundLoad is 0).
	Trace *replay.Trace
}

// RunHDFS executes one Figure 14 trial.
func RunHDFS(cfg HDFSConfig) (*HDFSResult, error) {
	start := time.Now()
	res, err := runHDFS(cfg)
	if res != nil {
		res.Wall = time.Since(start)
	}
	return res, err
}

func runHDFS(cfg HDFSConfig) (*HDFSResult, error) {
	cfg = cfg.withDefaults()
	fabScheme, transport, err := schemeForFabric(cfg.Scheme, cfg.Transport.Kind)
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	var reg *TelemetryRegistry
	if cfg.Telemetry != nil {
		reg = telemetry.New(*cfg.Telemetry)
	}
	net, err := cfg.Topology.build(eng, fabScheme, DefaultParams(), nil, cfg.Seed, reg)
	if err != nil {
		return nil, err
	}

	tcpCfg := cfg.Transport.tcpConfig()
	mpCfg := mptcp.Config{Subflows: cfg.Transport.Subflows, TCP: tcpCfg, ChunkSegments: 4}

	// Background enterprise traffic for the whole trial window. With
	// SampleCap set, completion times go into a bounded reservoir; the
	// recording callback runs after a flow's endpoints close and schedules
	// nothing, so attaching it does not change the simulation.
	var bg stats.Sample
	bgDone := 0
	if cfg.SampleCap > 0 {
		bg.Reservoir(cfg.SampleCap, cfg.Seed+401)
	}
	// Per-engine pools, shared by the background workload and the HDFS
	// replication pipeline below so every flow on this engine recycles
	// through the same free lists.
	pool := tcp.NewFlowPool()
	mpool := mptcp.NewPool()
	var gen *workload.Generator
	var traceRec *replay.Recorder
	if cfg.BackgroundLoad > 0 {
		record := func(fct sim.Time) {
			bgDone++
			if cfg.SampleCap > 0 {
				bg.Add(fct.Seconds())
			}
		}
		tcpDone := func(f *tcp.Flow, now sim.Time) { record(f.FCT(now)) }
		mptcpDone := func(f *mptcp.Flow, now sim.Time) { record(f.FCT(now)) }
		starter := func(src, dst *fabric.Host, id uint64, size int64) {
			if transport == TransportMPTCP {
				mpool.StartFlow(eng, src, dst, id, size, mpCfg, mptcpDone)
			} else {
				pool.StartFlow(eng, src, dst, id, size, tcpCfg, tcpDone)
			}
		}
		var observe func(workload.Arrival)
		if cfg.Record {
			desc := cfg.Topology.fingerprintDesc()
			traceRec = &replay.Recorder{Header: replay.Header{
				Harness: "hdfs", Scheme: SchemeName(cfg.Scheme),
				Workload: workload.Enterprise().Name(), Load: cfg.BackgroundLoad,
				Seed: cfg.Seed + 99, TopoFP: replay.Fingerprint(desc), Topo: desc,
				DurationNs: int64(cfg.Timeout),
			}}
			observe = func(a workload.Arrival) {
				traceRec.Add(replay.Flow{At: a.At, Src: a.Src, Dst: a.Dst, FlowID: a.FlowID, Size: a.Size, Kind: replay.KindWorkload})
			}
		}
		gen, err = workload.NewGenerator(eng, net, workload.GenConfig{
			Load:          cfg.BackgroundLoad,
			Dist:          workload.Enterprise(),
			Duration:      sim.Duration(cfg.Timeout),
			InterLeafOnly: true,
			Stride:        uint64(cfg.Transport.Subflows),
			Seed:          cfg.Seed + 99,
			Observe:       observe,
		}, starter)
		if err != nil {
			return nil, err
		}
		gen.Start()
	}

	// The job itself replicates with TCP regardless of the background
	// transport, as HDFS does.
	jobTCP := tcpCfg
	jobRes, err := hdfs.Run(eng, net, hdfs.Config{
		Writers:        cfg.Writers,
		BytesPerWriter: cfg.BytesPerWriter,
		BlockBytes:     cfg.BlockBytes,
		DiskBps:        cfg.DiskMBps * 8e6,
		TCP:            jobTCP,
		Pool:           pool,
		Seed:           cfg.Seed,
	}, func(r *hdfs.Result, now sim.Time) {
		// Stop promptly once the job completes; lingering background
		// flows don't affect the measurement.
		eng.Stop()
	})
	if err != nil {
		return nil, err
	}

	reg.SetProgress(func() telemetry.Progress {
		p := telemetry.Progress{FlowsCompleted: bgDone, Events: eng.Executed()}
		if gen != nil {
			p.FlowsGenerated = gen.Generated
		}
		return p
	})

	eng.Run(sim.Duration(cfg.Timeout))

	res := &HDFSResult{
		Scheme:       SchemeName(cfg.Scheme),
		Blocks:       jobRes.Blocks,
		ReplicaBytes: jobRes.ReplicaBytes,
		Events:       eng.Executed(),
	}
	if gen != nil {
		res.BackgroundFlows = gen.Generated
		res.BackgroundCompleted = bgDone
		if cfg.SampleCap > 0 {
			res.BackgroundFCTMean = time.Duration(bg.Mean() * 1e9)
			res.BackgroundFCTP99 = time.Duration(bg.Quantile(0.99) * 1e9)
		}
	}
	if jobRes.CompletionTime > 0 {
		res.Completed = true
		res.JobCompletion = time.Duration(jobRes.CompletionTime)
	} else {
		res.JobCompletion = cfg.Timeout
	}
	if reg != nil {
		reg.Collect()
		reg.FinishTap(eng.Now())
		if err := reg.Flush(); err != nil {
			return nil, fmt.Errorf("conga: telemetry flush: %w", err)
		}
		reg.ArchiveToHub()
		res.Telemetry = reg
	}
	if traceRec != nil {
		res.Trace = traceRec.Trace()
	}
	return res, nil
}
