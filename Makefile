GO ?= go

.PHONY: build test race vet bench bench-engine check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing code: the parallel experiment runner
# and everything it drives. Engines are single-threaded, so a race here
# means experiment isolation is broken.
race:
	$(GO) test -race ./internal/... .

vet:
	$(GO) vet ./...

# Full paper-artifact benchmarks (minutes).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Fast engine micro-benchmark (seconds) for hot-path iterations.
bench-engine:
	$(GO) test -bench BenchmarkEngineRaw -run '^$$' .

check: build vet test race
