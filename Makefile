GO ?= go

.PHONY: build test race vet lint bench bench-engine bench-quick bench-parallel bench-guard bench-guard-parallel bench-profile replay-smoke decision-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing code: the parallel experiment runner
# and everything it drives. Engines are single-threaded, so a race here
# means experiment isolation is broken.
race:
	$(GO) test -race ./internal/... .

vet:
	$(GO) vet ./...

# Minimal lint: vet plus a gofmt cleanliness check. Deliberately no
# third-party linters — the build must work with nothing but the Go
# toolchain (no network, no staticcheck install).
lint: vet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Full paper-artifact benchmarks (minutes).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Fast engine micro-benchmark (seconds) for hot-path iterations.
bench-engine:
	$(GO) test -bench BenchmarkEngineRaw -run '^$$' .

# Quick smoke benchmark for CI and pre-commit: the engine hot path at a
# fixed iteration count (so ns/op is stable enough for the benchguard
# regression gate), one full figure experiment, and one large-fabric scale
# cell (64 leaves, ~17M events) at a single iteration. Catches gross perf
# or allocation regressions in about a minute without the full artifact
# sweep.
bench-quick:
	$(GO) test -bench 'BenchmarkEngineRaw$$' -benchtime 200000x -run '^$$' .
	$(GO) test -bench 'BenchmarkFig09Enterprise$$' -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkScale64Leaves40G$$' -benchtime 1x -run '^$$' .

# Space-parallel scale benchmarks: the largest 40G cell sequential and at
# 2/4/8 domains. ns/op ratios are the PR 7 speedup claim; events/op is
# deterministic per worker count.
bench-parallel:
	$(GO) test -bench 'BenchmarkScale256Leaves40G(Parallel[248])?$$' -benchtime 1x -run '^$$' .

# Gate bench-quick output against the recorded baseline: ns/op (15%) on the
# engine micro-bench, events/op (exact) and allocs/op (10%) on every
# benchmark with a baseline entry (CI runs this on
# every PR; >15% ns/op regression on the engine hot path fails the build).
bench-guard:
	$(MAKE) bench-quick | tee bench-quick.txt
	$(GO) run ./tools/benchguard -baseline BENCH_PR10.json -max-regress 0.15 \
		-require 'BenchmarkEngineRaw,BenchmarkFig09Enterprise' bench-quick.txt

# Gate the space-parallel scale cells: events/op exact per worker count,
# and ≥2.5× ns/op speedup at 8 workers over sequential (auto-skipped with
# a warning on machines with fewer than 8 procs, where the events/op exact
# gates still pin determinism).
bench-guard-parallel:
	$(MAKE) bench-parallel | tee bench-parallel.txt
	$(GO) run ./tools/benchguard -baseline BENCH_PR10.json \
		-require 'BenchmarkScale256Leaves40G,BenchmarkScale256Leaves40GParallel2,BenchmarkScale256Leaves40GParallel4,BenchmarkScale256Leaves40GParallel8' \
		-speedup 'BenchmarkScale256Leaves40GParallel8:BenchmarkScale256Leaves40G:2.5' \
		bench-parallel.txt

# One Fig09 run under the CPU profiler (~0.5 s of profiled simulation).
# CI uploads fig09.cpu.prof as an artifact so a perf regression flagged by
# bench-guard comes with the profile that explains it.
bench-profile:
	$(GO) test -bench 'BenchmarkFig09Enterprise$$' -benchtime 1x -run '^$$' \
		-cpuprofile fig09.cpu.prof .

# End-to-end record/replay smoke (~1 min): record a workload trace with
# congasim, verify congatrace reads its header back, replay the identical
# arrival sequence into CONGA, then run the paired ECMP-vs-every-scheme
# comparison with bootstrap CIs at -quick scale. CI uploads the recorded
# trace as an artifact.
replay-smoke:
	$(GO) build -o /tmp/congasim ./cmd/congasim
	/tmp/congasim -scheme ecmp -leaves 2 -spines 2 -hosts 8 -duration 10ms \
		-maxflows 300 -minrto 10ms -record replay-smoke.trace.gz
	$(GO) run ./cmd/congatrace -read replay-smoke.trace.gz
	/tmp/congasim -scheme conga -leaves 2 -spines 2 -hosts 8 -minrto 10ms \
		-replay replay-smoke.trace.gz
	$(GO) run ./cmd/congabench -fig replay -quick

# End-to-end decision-plane smoke (~30 s): a short CONGA run with one
# failed link and -decisions on, then assert the audit trail and path
# matrix sinks are non-empty, summarize the trail with congatrace, and
# render the path-utilization heatmap. CI uploads the sinks and figure.
decision-smoke:
	$(GO) build -o /tmp/congasim ./cmd/congasim
	/tmp/congasim -scheme conga -duration 20ms -maxflows 500 -minrto 10ms \
		-fail 0,1,0 -telemetry decision-smoke.tel -decisions
	test -s decision-smoke.tel/decisions.csv
	test -s decision-smoke.tel/paths.csv
	$(GO) run ./cmd/congatrace -read decision-smoke.tel/decisions.csv
	$(GO) run ./cmd/congaplot -heatmap -dir decision-smoke.tel -out decision-heatmap.svg
	test -s decision-heatmap.svg

check: build vet test race
