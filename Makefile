GO ?= go

.PHONY: build test race vet bench bench-engine bench-quick bench-guard check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing code: the parallel experiment runner
# and everything it drives. Engines are single-threaded, so a race here
# means experiment isolation is broken.
race:
	$(GO) test -race ./internal/... .

vet:
	$(GO) vet ./...

# Full paper-artifact benchmarks (minutes).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Fast engine micro-benchmark (seconds) for hot-path iterations.
bench-engine:
	$(GO) test -bench BenchmarkEngineRaw -run '^$$' .

# Quick smoke benchmark for CI and pre-commit: the engine hot path at a
# fixed iteration count (so ns/op is stable enough for the benchguard
# regression gate), one full figure experiment, and one large-fabric scale
# cell (64 leaves, ~17M events) at a single iteration. Catches gross perf
# or allocation regressions in about a minute without the full artifact
# sweep.
bench-quick:
	$(GO) test -bench 'BenchmarkEngineRaw$$' -benchtime 200000x -run '^$$' .
	$(GO) test -bench 'BenchmarkFig09Enterprise$$' -benchtime 1x -run '^$$' .
	$(GO) test -bench 'BenchmarkScale64Leaves40G$$' -benchtime 1x -run '^$$' .

# Gate bench-quick output against the recorded baseline: ns/op (15%) on the
# engine micro-bench, events/op (exact) and allocs/op (10%) on every
# benchmark with a baseline entry (CI runs this on
# every PR; >15% ns/op regression on the engine hot path fails the build).
bench-guard:
	$(MAKE) bench-quick | tee bench-quick.txt
	$(GO) run ./tools/benchguard -baseline BENCH_PR6.json -max-regress 0.15 bench-quick.txt

check: build vet test race
