GO ?= go

.PHONY: build test race vet bench bench-engine bench-quick check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing code: the parallel experiment runner
# and everything it drives. Engines are single-threaded, so a race here
# means experiment isolation is broken.
race:
	$(GO) test -race ./internal/... .

vet:
	$(GO) vet ./...

# Full paper-artifact benchmarks (minutes).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Fast engine micro-benchmark (seconds) for hot-path iterations.
bench-engine:
	$(GO) test -bench BenchmarkEngineRaw -run '^$$' .

# Quick smoke benchmark for CI and pre-commit: the engine hot path plus one
# full figure experiment, a single iteration each. Catches gross perf or
# allocation regressions in about a minute without the full artifact sweep.
bench-quick:
	$(GO) test -bench 'BenchmarkEngineRaw$$|BenchmarkFig09Enterprise$$' -benchtime 1x -run '^$$' .

check: build vet test race
