module conga

go 1.22
