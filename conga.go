// Package conga is a faithful, laptop-scale reproduction of "CONGA:
// Distributed Congestion-Aware Load Balancing for Datacenters" (Alizadeh et
// al., SIGCOMM 2014).
//
// The package exposes the experiment harness: describe a Leaf-Spine
// topology, pick a load-balancing scheme (ECMP, CONGA, CONGA-Flow, a
// local-only congestion-aware scheme, per-packet spraying, or static
// weighted splitting), attach a workload (the paper's empirical enterprise,
// data-mining and web-search distributions, Incast patterns, or an HDFS
// benchmark model), and run it on a deterministic packet-level simulator.
// Results come back as the statistics the paper reports: flow completion
// times by size bucket, throughput-imbalance CDFs, queue occupancy CDFs,
// and Incast goodput.
//
// The CONGA algorithm itself — DRE congestion estimation, flowlet
// detection, leaf-to-leaf feedback, and the min-max decision rule — lives
// in internal/core and is documented there; this package is how you drive
// it.
//
// # Quick start
//
//	res, err := conga.RunFCT(conga.FCTConfig{
//		Scheme:   conga.SchemeCONGA,
//		Workload: conga.WorkloadEnterprise,
//		Load:     0.6,
//	})
//
// See examples/ for complete programs and DESIGN.md for the map from the
// paper's figures to the experiment entry points.
package conga

import (
	"fmt"
	"time"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
	"conga/internal/telemetry"
)

// TelemetryOptions selects the observability probes for a run: monotonic
// counters (per-link enqueue/dequeue/drop/CE-mark, flowlet
// create/expire/evict, TCP loss recovery), fixed-capacity time series
// (queue depth, DRE register, flowlet occupancy, congestion-table metrics,
// feedback staleness), a 5-tuple-filterable packet trace, and the decision
// plane (flowlet routing audit trail, per-(uplink, dstLeaf) path load
// matrices). See internal/telemetry for the
// zero-overhead-when-off design and the determinism guarantee: probes
// observe, they never schedule, so enabling telemetry changes no simulation
// outcome.
type TelemetryOptions = telemetry.Options

// TelemetryRegistry holds a run's collected telemetry; experiment results
// expose it for programmatic access after the run, and it flushes one CSV
// and one NDJSON file per probe when Options.Dir is set.
type TelemetryRegistry = telemetry.Registry

// TelemetryAll returns options with every probe enabled, flushing to dir
// after the run ("" keeps everything in memory).
func TelemetryAll(dir string) *TelemetryOptions {
	o := telemetry.All(dir)
	return &o
}

// TelemetryHub aggregates the live streaming taps of one or more runs so a
// single HTTP endpoint can expose them while engines are still running;
// see ServeTelemetry and internal/telemetry's safe-point handoff design.
type TelemetryHub = telemetry.Hub

// TelemetryServer is a running live-telemetry HTTP server.
type TelemetryServer = telemetry.Server

// NewTelemetryHub returns an empty hub; point TelemetryOptions.Hub at it
// (with Tap enabled) so runs attach their taps as they start.
func NewTelemetryHub() *TelemetryHub { return telemetry.NewHub() }

// ServeTelemetry starts the live-telemetry HTTP server for hub on addr
// (e.g. ":8080", or ":0" for an ephemeral port reported in Server.Addr).
// Its readers only ever load published immutable snapshots, so serving
// during a run cannot perturb any engine.
func ServeTelemetry(addr string, hub *TelemetryHub) (*TelemetryServer, error) {
	return telemetry.Serve(addr, hub)
}

// Scheme selects the leaf load-balancing policy.
type Scheme = fabric.Scheme

// The available schemes. See the fabric package for their semantics.
const (
	SchemeECMP      = fabric.SchemeECMP
	SchemeCONGA     = fabric.SchemeCONGA
	SchemeCONGAFlow = fabric.SchemeCONGAFlow
	SchemeLocal     = fabric.SchemeLocal
	SchemeSpray     = fabric.SchemeSpray
	SchemeWCMP      = fabric.SchemeWCMP
)

// ParseScheme converts a scheme name ("ecmp", "conga", "conga-flow",
// "local", "spray", "wcmp") to a Scheme.
func ParseScheme(name string) (Scheme, error) { return fabric.ParseScheme(name) }

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeECMP, SchemeCONGAFlow, SchemeCONGA, SchemeMPTCPMarker, SchemeLocal, SchemeSpray, SchemeWCMP}
}

// SchemeMPTCPMarker is not a fabric scheme: the paper's MPTCP baseline runs
// ECMP in the fabric with multipath at the hosts. It exists so result
// tables can carry an "mptcp" row; RunFCT treats it as ECMP + MPTCP
// transport.
const SchemeMPTCPMarker = Scheme(100)

// Transport selects the end-host protocol.
type Transport int

// Supported transports.
const (
	TransportTCP Transport = iota
	TransportMPTCP
)

func (t Transport) String() string {
	if t == TransportMPTCP {
		return "mptcp"
	}
	return "tcp"
}

// Topology describes a Leaf-Spine fabric. The zero value is the paper's
// baseline testbed (Figure 7a): 2 leaves × 2 spines × 2 parallel 40 Gbps
// links, 32 hosts per leaf at 10 Gbps (2:1 oversubscription).
type Topology struct {
	Leaves        int
	Spines        int
	HostsPerLeaf  int
	LinksPerSpine int
	AccessGbps    float64
	FabricGbps    float64

	// FailedLinks lists (leaf, spine, k) triples taken down before the
	// experiment starts, as in Figures 7b, 11, 14b and 16.
	FailedLinks [][3]int

	// FabricLinkGbps optionally overrides individual link capacities (the
	// §2.4 asymmetry scenarios). Return 0 to keep FabricGbps.
	FabricLinkGbps func(leaf, spine, k int) float64

	// EdgeBufBytes / FabricBufBytes override the switch buffer per port.
	EdgeBufBytes   int
	FabricBufBytes int

	// DisableFusion turns off the idle-path event-fusion fast path and
	// runs every hop through discrete transmit/txDone/deliver events.
	// Results are bit-identical either way (only the executed-event count
	// differs); the switch exists for equivalence testing and debugging.
	DisableFusion bool
}

// Testbed returns the paper's baseline testbed topology explicitly.
func Testbed() Topology {
	return Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 32, LinksPerSpine: 2,
		AccessGbps: 10, FabricGbps: 40}
}

// withDefaults fills zero fields from the testbed baseline.
func (t Topology) withDefaults() Topology {
	base := Testbed()
	if t.Leaves == 0 {
		t.Leaves = base.Leaves
	}
	if t.Spines == 0 {
		t.Spines = base.Spines
	}
	if t.HostsPerLeaf == 0 {
		t.HostsPerLeaf = base.HostsPerLeaf
	}
	if t.LinksPerSpine == 0 {
		t.LinksPerSpine = base.LinksPerSpine
	}
	if t.AccessGbps == 0 {
		t.AccessGbps = base.AccessGbps
	}
	if t.FabricGbps == 0 {
		t.FabricGbps = base.FabricGbps
	}
	return t
}

// fabricConfig lowers a Topology plus scheme/params onto the simulator.
func (t Topology) fabricConfig(scheme Scheme, params core.Params, wcmpWeights []float64, seed uint64, tel *telemetry.Registry) fabric.Config {
	cfg := fabric.Config{
		NumLeaves:      t.Leaves,
		NumSpines:      t.Spines,
		HostsPerLeaf:   t.HostsPerLeaf,
		LinksPerSpine:  t.LinksPerSpine,
		AccessRateBps:  t.AccessGbps * 1e9,
		FabricRateBps:  t.FabricGbps * 1e9,
		EdgeBufBytes:   t.EdgeBufBytes,
		FabricBufBytes: t.FabricBufBytes,
		Scheme:         scheme,
		Params:         params,
		WCMPWeights:    wcmpWeights,
		Seed:           seed,
		Telemetry:      tel,
		DisableFusion:  t.DisableFusion,
	}
	if t.FabricLinkGbps != nil {
		f := t.FabricLinkGbps
		cfg.FabricLinkRate = func(leaf, spine, k int) float64 {
			return f(leaf, spine, k) * 1e9
		}
	}
	return cfg
}

// build instantiates the network and applies link failures. tel (nil when
// telemetry is off) is wired through the fabric before any event runs.
func (t Topology) build(eng *sim.Engine, scheme Scheme, params core.Params, wcmp []float64, seed uint64, tel *telemetry.Registry) (*fabric.Network, error) {
	return t.buildPartitioned([]*sim.Engine{eng}, scheme, params, wcmp, seed, tel)
}

// buildPartitioned is build across one engine per partition domain, for
// the space-parallel runner (see parallel_fct.go). Link failures are
// applied before the run starts, so the up/down flags are immutable while
// domains execute concurrently.
func (t Topology) buildPartitioned(engines []*sim.Engine, scheme Scheme, params core.Params, wcmp []float64, seed uint64, tel *telemetry.Registry) (*fabric.Network, error) {
	n, err := fabric.NewPartitionedNetwork(engines, t.fabricConfig(scheme, params, wcmp, seed, tel))
	if err != nil {
		return nil, err
	}
	for _, f := range t.FailedLinks {
		n.FailLink(f[0], f[1], f[2])
	}
	return n, nil
}

// TransportConfig tunes the end-host stack.
type TransportConfig struct {
	Kind Transport
	// MTU in bytes (1500 default; the Incast experiments also use 9000).
	MTU int
	// MinRTO clamps the retransmission timer (Linux default 200 ms; 1 ms
	// is the Incast-tuned setting).
	MinRTO time.Duration
	// Subflows for MPTCP (default 8).
	Subflows int
	// ReorderWindow, when positive, enables RACK-style reordering
	// resilience in TCP — required for per-packet CONGA (Figure 1's
	// rightmost branch).
	ReorderWindow time.Duration
}

func (tc TransportConfig) withDefaults() TransportConfig {
	if tc.MTU == 0 {
		tc.MTU = 1500
	}
	if tc.MinRTO == 0 {
		tc.MinRTO = 200 * time.Millisecond
	}
	if tc.Subflows == 0 {
		tc.Subflows = 8
	}
	return tc
}

func (tc TransportConfig) tcpConfig() tcp.Config {
	c := tcp.DefaultConfig()
	c.MSS = tcp.MTUToMSS(tc.MTU)
	c.MinRTO = sim.Duration(tc.MinRTO)
	// Connections are modelled post-handshake, so an RTT estimate exists
	// before the first data segment: the pre-sample RTO is the clamped
	// floor rather than RFC 6298's cold 1 s.
	c.InitRTO = c.MinRTO
	if min := 5 * sim.Millisecond; c.InitRTO < min {
		c.InitRTO = min
	}
	// TCP Small Queues + receive-buffer autotuning bound how far a single
	// DC flow's window can run past the path BDP.
	c.MaxCwnd = 2 << 20
	c.ReorderWindow = sim.Duration(tc.ReorderWindow)
	return c
}

// Params re-exports the CONGA parameter block (§3.6 knobs).
type Params = core.Params

// DefaultParams returns the paper's default CONGA parameters.
func DefaultParams() Params { return core.DefaultParams() }

// schemeForFabric maps the presentation-level scheme (which includes the
// MPTCP marker) to the fabric scheme and transport actually run.
func schemeForFabric(s Scheme, t Transport) (Scheme, Transport, error) {
	if s == SchemeMPTCPMarker {
		return SchemeECMP, TransportMPTCP, nil
	}
	switch s {
	case SchemeECMP, SchemeCONGA, SchemeCONGAFlow, SchemeLocal, SchemeSpray, SchemeWCMP:
		return s, t, nil
	default:
		return 0, 0, fmt.Errorf("conga: unknown scheme %v", s)
	}
}

// SchemeName names a scheme including the MPTCP pseudo-scheme.
func SchemeName(s Scheme) string {
	if s == SchemeMPTCPMarker {
		return "mptcp"
	}
	return s.String()
}
