package conga

import (
	"fmt"
	"runtime"
	"time"

	"conga/internal/runner"
)

// ScaleConfig describes a large-fabric scale sweep — the ROADMAP's
// fig15-style open item: topologies an order of magnitude beyond the
// paper's 32-leaf evaluation, at 40G/100G access rates. Each (leaves,
// access-rate) cell runs one FCT experiment; the allocation-free flow
// lifecycle (tcp.FlowPool, port table, pooled packets and events) is what
// keeps these runs GC-flat as the fabric and flow count grow.
type ScaleConfig struct {
	// Leaves lists the fabric widths to sweep (default 64, 128, 256).
	Leaves []int
	// AccessGbps lists the access link rates to sweep (default 40, 100).
	// Fabric links run at the same rate, the fig15 "access ≈ fabric"
	// regime; with 2·Spines·LinksPerSpine uplinks per leaf the fabric
	// stays rearrangeably non-blocking for HostsPerLeaf ≤ 4·Spines·Links.
	AccessGbps []float64
	// HostsPerLeaf, Spines and LinksPerSpine fix the per-leaf shape
	// (defaults 4, 4, 2 — 8 uplinks, inside the LBTag space).
	HostsPerLeaf  int
	Spines        int
	LinksPerSpine int

	Scheme    Scheme
	Workload  Workload
	Load      float64
	Transport TransportConfig

	// Duration is each cell's arrival window; MaxFlows bounds each cell
	// (the knob that keeps a 256-leaf sweep minutes, not hours).
	Duration time.Duration
	MaxFlows int

	Seed uint64

	// Parallel, when > 1, runs each cell space-parallel across that many
	// domain engines (FCTConfig.Parallel). The sweep's own cell-level
	// worker pool shrinks by the same factor so the two levels of
	// parallelism do not oversubscribe the machine.
	Parallel int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Leaves) == 0 {
		c.Leaves = []int{64, 128, 256}
	}
	if len(c.AccessGbps) == 0 {
		c.AccessGbps = []float64{40, 100}
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 4
	}
	if c.Spines == 0 {
		c.Spines = 4
	}
	if c.LinksPerSpine == 0 {
		c.LinksPerSpine = 2
	}
	if c.Load == 0 {
		c.Load = 0.6
	}
	if c.Transport.MinRTO == 0 {
		// Datacenter-tuned RTO: at 40G+ rates the default 200 ms clamp
		// would turn any loss into a stall longer than the whole run.
		c.Transport.MinRTO = 10 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Millisecond
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ScalePoint pairs one sweep cell with its result.
type ScalePoint struct {
	Leaves     int
	Hosts      int
	AccessGbps float64
	Result     *FCTResult
}

// Configs expands the sweep grid into per-cell FCTConfigs, leaves-major
// (all access rates for the smallest fabric first). The i-th config
// corresponds to the i-th point RunScale returns.
func (c ScaleConfig) Configs() []FCTConfig {
	cfgs, _ := c.withDefaults().expand()
	return cfgs
}

func (c ScaleConfig) expand() ([]FCTConfig, []ScalePoint) {
	cfgs := make([]FCTConfig, 0, len(c.Leaves)*len(c.AccessGbps))
	pts := make([]ScalePoint, 0, cap(cfgs))
	for _, leaves := range c.Leaves {
		for _, gbps := range c.AccessGbps {
			cfgs = append(cfgs, FCTConfig{
				Topology: Topology{
					Leaves:        leaves,
					Spines:        c.Spines,
					HostsPerLeaf:  c.HostsPerLeaf,
					LinksPerSpine: c.LinksPerSpine,
					AccessGbps:    gbps,
					FabricGbps:    gbps,
				},
				Scheme:    c.Scheme,
				Workload:  c.Workload,
				Load:      c.Load,
				Transport: c.Transport,
				Duration:  c.Duration,
				MaxFlows:  c.MaxFlows,
				Seed:      c.Seed,
				Parallel:  c.Parallel,
			})
			pts = append(pts, ScalePoint{
				Leaves:     leaves,
				Hosts:      leaves * c.HostsPerLeaf,
				AccessGbps: gbps,
			})
		}
	}
	return cfgs, pts
}

// RunScale executes the sweep across the parallel runner (one engine, one
// network and one set of pools per cell) and returns points in grid order.
func RunScale(cfg ScaleConfig) ([]ScalePoint, error) {
	return RunScaleStream(cfg, nil, nil)
}

// RunScaleStream is RunScale with a streaming callback: emit fires once
// per cell in grid order as soon as it (and all earlier cells) have
// finished. A non-nil prog tracks sweep progress.
func RunScaleStream(cfg ScaleConfig, emit func(i int, p ScalePoint, err error), prog *SweepProgress) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	if got, max := cfg.Spines*cfg.LinksPerSpine, DefaultParams().MaxUplinks; got > max {
		return nil, fmt.Errorf("conga: scale sweep needs %d uplinks per leaf, LBTag space allows %d", got, max)
	}
	cfgs, pts := cfg.expand()
	// With space-parallel cells each run already occupies cfg.Parallel
	// cores; divide the cell-level pool so total goroutines ≈ NumCPU.
	workers := 0
	if cfg.Parallel > 1 {
		workers = runtime.NumCPU() / cfg.Parallel
		if workers < 1 {
			workers = 1
		}
	}
	results, err := runner.MapStreamP(workers, cfgs, RunFCT, func(i int, r *FCTResult, err error) {
		if emit != nil {
			pts[i].Result = r
			emit(i, pts[i], err)
		}
	}, prog)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		pts[i].Result = r
	}
	return pts, nil
}
