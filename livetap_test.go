package conga

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"conga/internal/telemetry"
)

// liveTopo is the small fabric the live-tap tests run on.
var liveTopo = Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
	AccessGbps: 10, FabricGbps: 10}

// TestLiveTapConcurrentEngines drives >= 8 concurrent engines, each
// publishing tap snapshots into one shared hub served over HTTP, while
// reader goroutines hammer the endpoint mid-run. Under -race this is the
// proof that the lock-free snapshot handoff is sound: engines publish from
// their tick safe points, readers only ever Load immutable snapshots, and
// the hub map is the only synchronized structure. Duplicate configs must
// still produce bit-identical results — concurrent observation cannot
// perturb any engine.
func TestLiveTapConcurrentEngines(t *testing.T) {
	hub := NewTelemetryHub()
	srv, err := ServeTelemetry("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	var cfgs []FCTConfig
	for rep := 0; rep < 2; rep++ { // rep 0 and 1 are identical configs
		for seed := uint64(1); seed <= 4; seed++ {
			opts := TelemetryAll("")
			opts.Trace = false
			opts.Tap = true
			opts.TapWall = -1 // publish every tap interval; stress the readers
			opts.Hub = hub
			opts.RunName = fmt.Sprintf("rep%d-seed%d", rep, seed)
			cfgs = append(cfgs, FCTConfig{
				Topology: liveTopo, Scheme: SchemeCONGA, Workload: WorkloadEnterprise,
				Load: 0.5, Duration: 8 * time.Millisecond, MaxFlows: 60,
				Seed: seed, Telemetry: opts,
			})
		}
	}
	if len(cfgs) < 8 {
		t.Fatalf("test wants >= 8 engines, built %d", len(cfgs))
	}

	var prog SweepProgress
	hub.SetSweepProgress(func() (int, int) {
		_, finished, total := prog.Counts()
		return int(finished), int(total)
	})

	// Readers poll the overview and every run's counters until the sweep
	// finishes; they tolerate 404s (runs attach as workers start them).
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { readerDone <- struct{}{} }()
			client := &http.Client{Timeout: 2 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				urls := []string{base + "/"}
				for _, c := range cfgs {
					urls = append(urls, base+"/counters?run="+c.Telemetry.RunName,
						base+"/series?run="+c.Telemetry.RunName)
				}
				resp, err := client.Get(urls[g%len(urls)])
				if err == nil {
					_ = json.NewDecoder(resp.Body).Decode(&map[string]any{})
					resp.Body.Close()
				}
			}
		}(g)
	}

	results, err := RunFCTsStream(cfgs, nil, &prog)
	close(stop)
	for g := 0; g < 4; g++ {
		<-readerDone
	}
	if err != nil {
		t.Fatal(err)
	}

	if runs := hub.Runs(); len(runs) != len(cfgs) {
		t.Fatalf("hub has %d runs, want %d: %v", len(runs), len(cfgs), runs)
	}
	for _, c := range cfgs {
		tap := hub.Run(c.Telemetry.RunName)
		if tap == nil {
			t.Fatalf("run %s never attached", c.Telemetry.RunName)
		}
		s := tap.Load()
		if s == nil || !s.Done {
			t.Fatalf("run %s final snapshot missing or not Done: %+v", c.Telemetry.RunName, s)
		}
		if s.Progress.FlowsCompleted == 0 || s.Progress.Events == 0 {
			t.Fatalf("run %s progress empty: %+v", c.Telemetry.RunName, s.Progress)
		}
	}
	if _, finished, total := prog.Counts(); finished != int64(len(cfgs)) || total != int64(len(cfgs)) {
		t.Fatalf("sweep progress %d/%d, want %d/%d", finished, total, len(cfgs), len(cfgs))
	}

	// rep 0 and rep 1 ran the same seeds on different workers while
	// readers polled: results must be bit-identical.
	half := len(cfgs) / 2
	for i := 0; i < half; i++ {
		a, b := *results[i], *results[i+half]
		a.Telemetry, b.Telemetry = nil, nil
		a.Wall, b.Wall = 0, 0 // wall clock is environment, not behavior
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("live observation perturbed run %d:\na: %+v\nb: %+v", i, a, b)
		}
	}
}

// TestLiveObservabilityDoesNotPerturb is the end-to-end determinism
// acceptance test for the observability plane: a run with the streaming
// tap published to an HTTP hub, an SSE reader consuming snapshot deltas
// mid-run, AND a triggered flight-recorder trace must produce results
// bit-identical to the same seeded run with telemetry off entirely.
func TestLiveObservabilityDoesNotPerturb(t *testing.T) {
	// The tap and trace force the fused fast path off, so pin the baseline
	// to the same slow path — otherwise only the executed-event count would
	// differ (see TestFusionEquivalence for the fused-vs-unfused contract).
	topo := liveTopo
	topo.DisableFusion = true
	cfg := FCTConfig{
		Topology: topo, Scheme: SchemeCONGA, Workload: WorkloadEnterprise,
		Load: 0.6, Duration: 10 * time.Millisecond, MaxFlows: 120, Seed: 7,
	}
	off, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []telemetry.CaptureMode{telemetry.CaptureTail, telemetry.CaptureReservoir} {
		hub := NewTelemetryHub()
		srv, err := ServeTelemetry("127.0.0.1:0", hub)
		if err != nil {
			t.Fatal(err)
		}

		opts := TelemetryAll("")
		opts.TraceMode = mode
		opts.TraceCap = 256 // force suppression so the capture policy is exercised
		opts.TraceTrigger = telemetry.TriggerFirstRTO | telemetry.TriggerFirstDrop
		opts.TraceStopAfter = 32
		opts.Tap = true
		opts.TapWall = -1
		opts.Hub = hub
		opts.RunName = "live"
		cfg.Telemetry = opts

		// SSE reader: retries until the run attaches, then consumes
		// snapshot events until the server closes the stream on Done.
		type sseResult struct {
			snapshots int
			err       error
		}
		sseCh := make(chan sseResult, 1)
		go func() {
			deadline := time.Now().Add(30 * time.Second)
			for {
				resp, err := http.Get("http://" + srv.Addr + "/stream?run=live")
				if err != nil {
					sseCh <- sseResult{err: err}
					return
				}
				if resp.StatusCode != http.StatusOK { // run not attached yet
					resp.Body.Close()
					if time.Now().After(deadline) {
						sseCh <- sseResult{err: fmt.Errorf("stream never became ready: %s", resp.Status)}
						return
					}
					time.Sleep(2 * time.Millisecond)
					continue
				}
				n := 0
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
					if strings.HasPrefix(sc.Text(), "event: snapshot") {
						n++
					}
				}
				resp.Body.Close()
				sseCh <- sseResult{snapshots: n}
				return
			}
		}()

		on, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sse := <-sseCh
		srv.Close()
		if sse.err != nil {
			t.Fatalf("%v: SSE reader: %v", mode, sse.err)
		}
		if sse.snapshots == 0 {
			t.Fatalf("%v: SSE reader saw no snapshots", mode)
		}

		reg := on.Telemetry
		if reg == nil {
			t.Fatalf("%v: no registry", mode)
		}
		on.Telemetry = nil
		off.Wall, on.Wall = 0, 0 // wall clock is environment, not behavior
		if !reflect.DeepEqual(off, on) {
			t.Fatalf("%v: live observability changed the simulation\noff: %+v\non:  %+v", mode, off, on)
		}

		// The trace must have really exercised the policy: capped, with
		// suppression accounted for.
		info := reg.Trace().Info()
		if info.Mode != mode || info.Cap != 256 {
			t.Fatalf("trace policy not applied: %+v", info)
		}
		if info.Recorded+int(info.Suppressed) != info.Seen {
			t.Fatalf("%v: capture accounting broken: %+v", mode, info)
		}
		if info.Suppressed == 0 {
			t.Fatalf("%v: trace never hit its cap; the test proves nothing: %+v", mode, info)
		}
	}
}

// TestFCTSampleCapBoundsMemory pins the SampleCap satellite: a capped run
// must not change the simulation (generated/completed/drops identical) and
// exact statistics (mean, min, max) must match the uncapped run exactly —
// only quantiles are estimated from the reservoir.
func TestFCTSampleCapBoundsMemory(t *testing.T) {
	cfg := FCTConfig{
		Topology: liveTopo, Scheme: SchemeCONGA, Workload: WorkloadEnterprise,
		Load: 0.6, Duration: 10 * time.Millisecond, MaxFlows: 200, Seed: 11,
	}
	full, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SampleCap = 32
	capped, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Generated != capped.Generated || full.Completed != capped.Completed ||
		full.Drops != capped.Drops || full.Events != capped.Events {
		t.Fatalf("SampleCap changed the simulation:\nfull:   %+v\ncapped: %+v", full, capped)
	}
	if full.AvgFCT != capped.AvgFCT || full.SmallAvgFCT != capped.SmallAvgFCT {
		t.Fatalf("reservoir mean drifted: %v vs %v", full.AvgFCT, capped.AvgFCT)
	}
	if capped.P99FCT <= 0 || capped.P99FCT > 10*full.P99FCT {
		t.Fatalf("estimated p99 implausible: %v vs exact %v", capped.P99FCT, full.P99FCT)
	}
}
