// Command benchguard is the CI benchmark regression gate: it parses `go
// test -bench` output, looks each benchmark's baseline up in a
// BENCH_*.json record, and exits nonzero on a regression.
//
// Three metrics are gated, each with its own policy:
//
//   - ns/op      — wall-clock; allowed to drift up to -max-regress (15%).
//   - events/op  — simulation event count; must match the baseline EXACTLY.
//     Figure benchmarks run fixed seeds, so any drift means the simulation
//     itself changed behavior (the determinism guarantee broke), not that
//     the machine was slow.
//   - allocs/op  — heap allocations; allowed up to -max-alloc-regress (10%)
//     to absorb runtime/map noise while still catching real allocation
//     regressions on the packet path.
//
// Every benchmark present in the output that has a baseline entry is
// checked; -require lists benchmarks that must appear in the output (so a
// silently-skipped benchmark can't pass the gate).
//
// Usage:
//
//	make bench-quick | tee bench-quick.txt
//	go run ./tools/benchguard -baseline BENCH_PR9.json bench-quick.txt
//
// With -update OUT.json the tool regenerates a baseline instead of gating:
// every benchmark in the output is recorded (all reported metrics, not
// just the gated three), benchmarks absent from the output are carried
// forward from -baseline unchanged, and an environment block (goos,
// goarch, cpu from the output header, plus the recording command) is
// embedded so a future reader knows what machine the numbers mean on.
// Because events/op is the determinism contract, -update REFUSES to write
// a baseline whose events/op differs from -baseline unless
// -expect-events-change is passed; when it is, the change is annotated in
// the entry's note rather than slipping in silently.
//
// The baseline schema is the one BENCH_PR2.json uses:
// {"benchmarks": {"<name>": {"after": {"ns_op": N, "events_op": N, "allocs_op": N}}}}.
// A metric absent from (or zero in) the baseline is not gated for that
// benchmark, so entries can opt in per metric.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a benchmark result line, e.g.
// "BenchmarkFig09Enterprise-8  1  6.2e+08 ns/op  5265648 B/op  634045 allocs/op  5086806 events/op  1.912 normFCT".
// The -N suffix is GOMAXPROCS, captured so the speedup gate can tell
// whether the machine had enough cores for a parallel run to mean anything.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+(.*)$`)

// metricPair matches one "<value> <unit>" measurement within the line tail.
var metricPair = regexp.MustCompile(`([\d.eE+-]+)\s+([^\s]+)`)

// headerLine matches the `go test` environment preamble ("goos: linux",
// "cpu: Intel(R) ..."); -update copies these into the baseline's
// environment block.
var headerLine = regexp.MustCompile(`^(goos|goarch|cpu|pkg):\s+(.*)$`)

// baselineEntry is one benchmark's record. After maps the JSON metric key
// (ns_op, events_op, B_op, allocs_op, normFCT, ...) to its value; the
// gate only interprets the three keys it has policies for, but -update
// round-trips every metric the benchmark reported.
type baselineEntry struct {
	After map[string]float64 `json:"after"`
	Note  string             `json:"note,omitempty"`
}

type baselineFile struct {
	Description string                    `json:"description,omitempty"`
	Environment map[string]string         `json:"environment,omitempty"`
	Benchmarks  map[string]*baselineEntry `json:"benchmarks"`
}

// measured holds the metrics parsed from one benchmark output line,
// keyed by the output unit ("ns/op", "events/op", ...).
type measured map[string]float64

// metricKey converts a benchmark output unit to its baseline JSON key:
// "ns/op" -> "ns_op", "goodput%" -> "goodput_pct", "normFCT" -> "normFCT".
func metricKey(unit string) string {
	k := strings.ReplaceAll(unit, "/", "_")
	k = strings.ReplaceAll(k, "%", "_pct")
	return k
}

func main() {
	var (
		baselinePath    = flag.String("baseline", "BENCH_PR6.json", "baseline JSON file")
		maxRegress      = flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression over baseline")
		maxAllocRegress = flag.Float64("max-alloc-regress", 0.10, "allowed fractional allocs/op regression over baseline")
		require         = flag.String("require", "BenchmarkEngineRaw,BenchmarkFig09Enterprise,BenchmarkScale64Leaves40G",
			"comma-separated benchmarks that must be present in the output")
		nsBenches = flag.String("ns-benches", "BenchmarkEngineRaw",
			"comma-separated benchmarks whose ns/op is gated; others only gate events/op and allocs/op (single-iteration figure runs are too wall-clock-noisy across machines)")
		speedups = flag.String("speedup", "",
			"comma-separated FAST:SLOW:RATIO triples: FAST's ns/op must beat SLOW's by at least RATIO× (e.g. BenchmarkScale256Leaves40GParallel8:BenchmarkScale256Leaves40G:2.5)")
		speedupMinProcs = flag.Int("speedup-min-procs", 8,
			"skip the -speedup gates (with a loud warning) when the run had fewer GOMAXPROCS than this — a starved machine cannot show parallel speedup")
		updatePath = flag.String("update", "",
			"write a regenerated baseline to this path instead of gating; benchmarks missing from the output are carried forward from -baseline")
		expectEventsChange = flag.Bool("expect-events-change", false,
			"allow -update to record an events/op that differs from -baseline (the change is annotated in the entry's note); without this flag a changed events/op aborts the update")
		desc = flag.String("desc", "",
			"description for the regenerated baseline (-update); empty keeps the old baseline's description")
		command = flag.String("command", "",
			"recording command noted in the regenerated baseline's environment block (-update)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse %s: %v", *baselinePath, err)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	results := map[string]measured{}
	procs := map[string]int{}
	env := map[string]string{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if h := headerLine.FindStringSubmatch(line); h != nil && h[1] != "pkg" {
			env[h[1]] = h[2]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		got := measured{}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			got[pair[2]] = v
		}
		if len(got) > 0 {
			results[m[1]] = got // last run wins, as `go test -count` would
			procs[m[1]], _ = strconv.Atoi(m[2])
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output: %v", err)
	}

	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := results[name]; !ok {
			fatal("required benchmark %s missing from output (did it run?)", name)
		}
	}

	if *updatePath != "" {
		update(*updatePath, *baselinePath, &base, results, env, *desc, *command, *expectEventsChange)
		return
	}

	gateNs := map[string]bool{}
	for _, name := range strings.Split(*nsBenches, ",") {
		gateNs[strings.TrimSpace(name)] = true
	}

	failures := 0
	checked := 0
	for name, got := range results {
		entry := base.Benchmarks[name]
		if entry == nil {
			continue
		}
		checked++
		if gateNs[name] {
			failures += gate(name, "ns/op", got["ns/op"], entry.After["ns_op"], *maxRegress)
		}
		failures += gate(name, "events/op", got["events/op"], entry.After["events_op"], 0)
		failures += gate(name, "allocs/op", got["allocs/op"], entry.After["allocs_op"], *maxAllocRegress)
	}
	if checked == 0 {
		fatal("no benchmark in the output has a baseline entry in %s", *baselinePath)
	}

	for _, spec := range strings.Split(*speedups, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		failures += gateSpeedup(spec, results, procs, *speedupMinProcs)
	}

	if failures > 0 {
		fatal("%d metric(s) regressed", failures)
	}
}

// update regenerates a baseline from the measured results, carrying
// forward old entries whose benchmarks did not run. The events/op guard
// is the point: a baseline update is the one place a behavior change can
// be laundered past the exact-match gate, so a changed events/op aborts
// unless the caller passed -expect-events-change, and an allowed change
// is written into the entry's note where a reviewer will see it.
func update(path, baselinePath string, base *baselineFile, results map[string]measured, env map[string]string, desc, command string, expectEventsChange bool) {
	out := baselineFile{
		Description: desc,
		Environment: map[string]string{},
		Benchmarks:  map[string]*baselineEntry{},
	}
	if out.Description == "" {
		out.Description = base.Description
	}
	for k, v := range env {
		out.Environment[k] = v
	}
	if command != "" {
		out.Environment["command"] = command
	} else if c, ok := base.Environment["command"]; ok {
		out.Environment["command"] = c
	}

	var eventsChanged []string
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := &baselineEntry{After: map[string]float64{}}
		for unit, v := range results[name] {
			entry.After[metricKey(unit)] = v
		}
		if old := base.Benchmarks[name]; old != nil {
			oldEv, newEv := old.After["events_op"], entry.After["events_op"]
			if oldEv > 0 && newEv > 0 && oldEv != newEv {
				eventsChanged = append(eventsChanged,
					fmt.Sprintf("%s: %.0f -> %.0f (%+.1f%%)", name, oldEv, newEv, (newEv-oldEv)/oldEv*100))
				entry.Note = fmt.Sprintf(
					"events/op changed from %.0f (%+.1f%%) — acknowledged via -expect-events-change",
					oldEv, (newEv-oldEv)/oldEv*100)
			}
		}
		out.Benchmarks[name] = entry
	}
	// Carry forward baselines the run didn't re-measure, marked so their
	// numbers aren't mistaken for this recording's environment.
	for name, old := range base.Benchmarks {
		if _, ok := out.Benchmarks[name]; ok {
			continue
		}
		carried := &baselineEntry{After: old.After, Note: old.Note}
		if !strings.Contains(carried.Note, "carried forward") {
			carried.Note = strings.TrimSpace("carried forward (not re-measured in this update). " + carried.Note)
		}
		out.Benchmarks[name] = carried
	}

	if len(eventsChanged) > 0 && !expectEventsChange {
		fatal("refusing to update: events/op changed vs %s for:\n  %s\nevents/op is the determinism contract — pass -expect-events-change only if the simulation was INTENDED to execute a different event count with identical results",
			baselinePath, strings.Join(eventsChanged, "\n  "))
	}

	f, err := os.Create(path)
	if err != nil {
		fatal("write baseline: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		fatal("encode baseline: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("close baseline: %v", err)
	}
	fmt.Printf("benchguard: wrote %s (%d measured, %d carried forward", path, len(names), len(out.Benchmarks)-len(names))
	if len(eventsChanged) > 0 {
		fmt.Printf(", %d events/op change(s) annotated", len(eventsChanged))
	}
	fmt.Println(")")
	for _, c := range eventsChanged {
		fmt.Printf("benchguard: events/op change: %s\n", c)
	}
}

// gateSpeedup enforces one FAST:SLOW:RATIO spec: the parallel benchmark's
// ns/op must undercut the sequential one's by at least RATIO×. ns/op of a
// parallel run only means something when the machine actually has the
// cores, so on a run below minProcs the gate is skipped with a warning
// loud enough to show up in CI logs (the events/op exact gates above still
// pin determinism there).
func gateSpeedup(spec string, results map[string]measured, procs map[string]int, minProcs int) int {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		fatal("bad -speedup spec %q (want FAST:SLOW:RATIO)", spec)
	}
	fast, slow := parts[0], parts[1]
	minRatio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || minRatio <= 0 {
		fatal("bad -speedup ratio in %q", spec)
	}
	fastGot, ok := results[fast]
	if !ok {
		fatal("speedup gate: benchmark %s missing from output (did it run?)", fast)
	}
	slowGot, ok := results[slow]
	if !ok {
		fatal("speedup gate: benchmark %s missing from output (did it run?)", slow)
	}
	if p := procs[fast]; p < minProcs {
		fmt.Fprintf(os.Stderr, "benchguard: WARNING: skipping speedup gate %s vs %s — run had GOMAXPROCS=%d, need ≥ %d for parallel speedup to be measurable\n",
			fast, slow, p, minProcs)
		return 0
	}
	fastNs, slowNs := fastGot["ns/op"], slowGot["ns/op"]
	if fastNs <= 0 || slowNs <= 0 {
		fatal("speedup gate: %s or %s reported no ns/op", fast, slow)
	}
	ratio := slowNs / fastNs
	if ratio < minRatio {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL speedup %s vs %s: %.2f×, floor %.2f×\n",
			fast, slow, ratio, minRatio)
		return 1
	}
	fmt.Printf("benchguard: ok   speedup %s vs %s: %.2f× (floor %.2f×)\n", fast, slow, ratio, minRatio)
	return 0
}

// gate checks one metric against its baseline with a fractional tolerance
// (0 = exact match required) and returns 1 on failure. A zero/absent
// baseline or measurement skips the check: not every benchmark reports
// every metric, and baselines opt in per metric.
func gate(bench, metric string, got, want, tolerance float64) int {
	if want <= 0 || got <= 0 {
		return 0
	}
	delta := (got - want) / want * 100
	if tolerance == 0 {
		if got != want {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s: %v vs baseline %v (%+.2f%%, exact match required — simulation behavior changed)\n",
				bench, metric, got, want, delta)
			return 1
		}
		fmt.Printf("benchguard: ok   %s %s: %v (exact)\n", bench, metric, got)
		return 0
	}
	if got > want*(1+tolerance) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s: %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
			bench, metric, got, want, delta, tolerance*100)
		return 1
	}
	fmt.Printf("benchguard: ok   %s %s: %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
		bench, metric, got, want, delta, tolerance*100)
	return 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
