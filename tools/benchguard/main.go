// Command benchguard is the CI benchmark regression gate: it parses `go
// test -bench` output, looks the named benchmark's baseline up in a
// BENCH_*.json record, and exits nonzero if the measured ns/op regressed by
// more than the allowed fraction.
//
// Usage:
//
//	go test -bench BenchmarkEngineRaw -benchtime 200000x -run '^$' . | tee out.txt
//	go run ./tools/benchguard -baseline BENCH_PR2.json -max-regress 0.15 out.txt
//
// The baseline file's schema is the one BENCH_PR2.json uses:
// {"benchmarks": {"<name>": {"after": {"ns_op": <number>}}}}. Only ns/op is
// gated — events/op and allocs/op invariance is asserted by tests, and
// wall-clock is the one axis that can drift without failing anything else.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches e.g. "BenchmarkEngineRaw-8   200000   1423 ns/op   64.0 events/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

type baselineFile struct {
	Benchmarks map[string]struct {
		After struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR2.json", "baseline JSON file")
		bench        = flag.String("bench", "BenchmarkEngineRaw", "benchmark to gate")
		maxRegress   = flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression over baseline")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse %s: %v", *baselinePath, err)
	}
	entry, ok := base.Benchmarks[*bench]
	if !ok || entry.After.NsOp <= 0 {
		fatal("%s has no after.ns_op baseline for %s", *baselinePath, *bench)
	}
	want := entry.After.NsOp

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	got, found := 0.0, false
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil || m[1] != *bench {
			continue
		}
		got, err = strconv.ParseFloat(m[2], 64)
		if err != nil {
			fatal("bad ns/op %q: %v", m[2], err)
		}
		found = true
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output: %v", err)
	}
	if !found {
		fatal("no %s result in bench output (did the benchmark run?)", *bench)
	}

	limit := want * (1 + *maxRegress)
	delta := (got - want) / want * 100
	if got > limit {
		fatal("%s regressed: %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
			*bench, got, want, delta, *maxRegress*100)
	}
	fmt.Printf("benchguard: %s %.0f ns/op vs baseline %.0f (%+.1f%%, limit +%.0f%%) — ok\n",
		*bench, got, want, delta, *maxRegress*100)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
