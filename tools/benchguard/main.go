// Command benchguard is the CI benchmark regression gate: it parses `go
// test -bench` output, looks each benchmark's baseline up in a
// BENCH_*.json record, and exits nonzero on a regression.
//
// Three metrics are gated, each with its own policy:
//
//   - ns/op      — wall-clock; allowed to drift up to -max-regress (15%).
//   - events/op  — simulation event count; must match the baseline EXACTLY.
//     Figure benchmarks run fixed seeds, so any drift means the simulation
//     itself changed behavior (the determinism guarantee broke), not that
//     the machine was slow.
//   - allocs/op  — heap allocations; allowed up to -max-alloc-regress (10%)
//     to absorb runtime/map noise while still catching real allocation
//     regressions on the packet path.
//
// Every benchmark present in the output that has a baseline entry is
// checked; -require lists benchmarks that must appear in the output (so a
// silently-skipped benchmark can't pass the gate).
//
// Usage:
//
//	make bench-quick | tee bench-quick.txt
//	go run ./tools/benchguard -baseline BENCH_PR6.json bench-quick.txt
//
// The baseline schema is the one BENCH_PR2.json uses:
// {"benchmarks": {"<name>": {"after": {"ns_op": N, "events_op": N, "allocs_op": N}}}}.
// A metric absent from (or zero in) the baseline is not gated for that
// benchmark, so entries can opt in per metric.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches a benchmark result line, e.g.
// "BenchmarkFig09Enterprise-8  1  6.2e+08 ns/op  5265648 B/op  634045 allocs/op  5086806 events/op  1.912 normFCT".
// The -N suffix is GOMAXPROCS, captured so the speedup gate can tell
// whether the machine had enough cores for a parallel run to mean anything.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+(.*)$`)

// metricPair matches one "<value> <unit>" measurement within the line tail.
var metricPair = regexp.MustCompile(`([\d.eE+-]+)\s+([^\s]+)`)

type baselineMetrics struct {
	NsOp     float64 `json:"ns_op"`
	EventsOp float64 `json:"events_op"`
	AllocsOp float64 `json:"allocs_op"`
}

type baselineFile struct {
	Benchmarks map[string]struct {
		After baselineMetrics `json:"after"`
	} `json:"benchmarks"`
}

// measured holds the metrics parsed from one benchmark output line.
type measured map[string]float64

func main() {
	var (
		baselinePath    = flag.String("baseline", "BENCH_PR6.json", "baseline JSON file")
		maxRegress      = flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression over baseline")
		maxAllocRegress = flag.Float64("max-alloc-regress", 0.10, "allowed fractional allocs/op regression over baseline")
		require         = flag.String("require", "BenchmarkEngineRaw,BenchmarkFig09Enterprise,BenchmarkScale64Leaves40G",
			"comma-separated benchmarks that must be present in the output")
		nsBenches = flag.String("ns-benches", "BenchmarkEngineRaw",
			"comma-separated benchmarks whose ns/op is gated; others only gate events/op and allocs/op (single-iteration figure runs are too wall-clock-noisy across machines)")
		speedups = flag.String("speedup", "",
			"comma-separated FAST:SLOW:RATIO triples: FAST's ns/op must beat SLOW's by at least RATIO× (e.g. BenchmarkScale256Leaves40GParallel8:BenchmarkScale256Leaves40G:2.5)")
		speedupMinProcs = flag.Int("speedup-min-procs", 8,
			"skip the -speedup gates (with a loud warning) when the run had fewer GOMAXPROCS than this — a starved machine cannot show parallel speedup")
	)
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parse %s: %v", *baselinePath, err)
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}

	results := map[string]measured{}
	procs := map[string]int{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		got := measured{}
		for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			got[pair[2]] = v
		}
		if len(got) > 0 {
			results[m[1]] = got // last run wins, as `go test -count` would
			procs[m[1]], _ = strconv.Atoi(m[2])
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read bench output: %v", err)
	}

	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := results[name]; !ok {
			fatal("required benchmark %s missing from output (did it run?)", name)
		}
	}

	gateNs := map[string]bool{}
	for _, name := range strings.Split(*nsBenches, ",") {
		gateNs[strings.TrimSpace(name)] = true
	}

	failures := 0
	checked := 0
	for name, got := range results {
		entry, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		checked++
		if gateNs[name] {
			failures += gate(name, "ns/op", got["ns/op"], entry.After.NsOp, *maxRegress)
		}
		failures += gate(name, "events/op", got["events/op"], entry.After.EventsOp, 0)
		failures += gate(name, "allocs/op", got["allocs/op"], entry.After.AllocsOp, *maxAllocRegress)
	}
	if checked == 0 {
		fatal("no benchmark in the output has a baseline entry in %s", *baselinePath)
	}

	for _, spec := range strings.Split(*speedups, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		failures += gateSpeedup(spec, results, procs, *speedupMinProcs)
	}

	if failures > 0 {
		fatal("%d metric(s) regressed", failures)
	}
}

// gateSpeedup enforces one FAST:SLOW:RATIO spec: the parallel benchmark's
// ns/op must undercut the sequential one's by at least RATIO×. ns/op of a
// parallel run only means something when the machine actually has the
// cores, so on a run below minProcs the gate is skipped with a warning
// loud enough to show up in CI logs (the events/op exact gates above still
// pin determinism there).
func gateSpeedup(spec string, results map[string]measured, procs map[string]int, minProcs int) int {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		fatal("bad -speedup spec %q (want FAST:SLOW:RATIO)", spec)
	}
	fast, slow := parts[0], parts[1]
	minRatio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || minRatio <= 0 {
		fatal("bad -speedup ratio in %q", spec)
	}
	fastGot, ok := results[fast]
	if !ok {
		fatal("speedup gate: benchmark %s missing from output (did it run?)", fast)
	}
	slowGot, ok := results[slow]
	if !ok {
		fatal("speedup gate: benchmark %s missing from output (did it run?)", slow)
	}
	if p := procs[fast]; p < minProcs {
		fmt.Fprintf(os.Stderr, "benchguard: WARNING: skipping speedup gate %s vs %s — run had GOMAXPROCS=%d, need ≥ %d for parallel speedup to be measurable\n",
			fast, slow, p, minProcs)
		return 0
	}
	fastNs, slowNs := fastGot["ns/op"], slowGot["ns/op"]
	if fastNs <= 0 || slowNs <= 0 {
		fatal("speedup gate: %s or %s reported no ns/op", fast, slow)
	}
	ratio := slowNs / fastNs
	if ratio < minRatio {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL speedup %s vs %s: %.2f×, floor %.2f×\n",
			fast, slow, ratio, minRatio)
		return 1
	}
	fmt.Printf("benchguard: ok   speedup %s vs %s: %.2f× (floor %.2f×)\n", fast, slow, ratio, minRatio)
	return 0
}

// gate checks one metric against its baseline with a fractional tolerance
// (0 = exact match required) and returns 1 on failure. A zero/absent
// baseline or measurement skips the check: not every benchmark reports
// every metric, and baselines opt in per metric.
func gate(bench, metric string, got, want, tolerance float64) int {
	if want <= 0 || got <= 0 {
		return 0
	}
	delta := (got - want) / want * 100
	if tolerance == 0 {
		if got != want {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s: %v vs baseline %v (%+.2f%%, exact match required — simulation behavior changed)\n",
				bench, metric, got, want, delta)
			return 1
		}
		fmt.Printf("benchguard: ok   %s %s: %v (exact)\n", bench, metric, got)
		return 0
	}
	if got > want*(1+tolerance) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL %s %s: %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
			bench, metric, got, want, delta, tolerance*100)
		return 1
	}
	fmt.Printf("benchguard: ok   %s %s: %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
		bench, metric, got, want, delta, tolerance*100)
	return 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
