// Quickstart: build the paper's testbed fabric, run the same enterprise
// workload once under ECMP and once under CONGA, and compare flow
// completion times.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	conga "conga"
)

func main() {
	// The paper's baseline testbed (Figure 7a): 2 leaves × 2 spines with
	// 2×40G links each, 32 hosts per leaf at 10G — 2:1 oversubscribed.
	topo := conga.Testbed()

	for _, scheme := range []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA} {
		res, err := conga.RunFCT(conga.FCTConfig{
			Topology: topo,
			Scheme:   scheme,
			Workload: conga.WorkloadEnterprise,
			Load:     0.6, // 60% of bisection bandwidth
			Duration: 50 * time.Millisecond,
			MaxFlows: 1500,
			// Telemetry is off by default and costs nothing; enabling it
			// counts every enqueue, drop, retransmit and flowlet without
			// changing the simulation's outcome.
			Telemetry: conga.TelemetryAll(""), // "" = keep in memory, write no files
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s: %4d flows, avg FCT %8v (%.2f× optimal), p99 %8v, drops %d\n",
			res.Scheme, res.Completed,
			res.AvgFCT.Round(time.Microsecond), res.NormFCT,
			res.P99FCT.Round(time.Microsecond), res.Drops)
		tel := res.Telemetry
		_, _, drops, ceMarks := tel.LinkTotals()
		tcp := tel.TCPTotals()
		flowlets, _, _ := tel.FlowletTotals()
		fmt.Printf("        telemetry: %d link drops, %d CE marks, %d retransmits, %d flowlets\n",
			drops, ceMarks, tcp.Retransmits, flowlets)
	}

	fmt.Println("\nOn the symmetric fabric the schemes are close (the paper's §5.2.1);")
	fmt.Println("run examples/linkfailure to see them diverge under asymmetry.")
}
