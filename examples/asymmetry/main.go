// Asymmetry: the §2.4 design-decision scenarios (Figures 2 and 3) that
// motivate global congestion awareness.
//
// Figure 2: with the (S1, L1) path at half capacity, a scheme that only
// sees local uplink congestion cannot tell the spines apart — TCP's
// backpressure even makes the weak path look *less* loaded. CONGA's
// leaf-to-leaf feedback finds the right 2:1 split.
//
// Figure 3: the optimal split depends on other leaves' traffic, so no
// static weighting (WCMP) can be right in both cases.
//
// Run with:
//
//	go run ./examples/asymmetry
package main

import (
	"fmt"
	"log"

	conga "conga"
)

func main() {
	fmt.Println("=== Figure 2: capacity asymmetry on the remote hop ===")
	fmt.Println("Demand exceeds capacity; paths through S0/S1 can carry 10/5 Gbps.")
	for _, s := range []conga.Scheme{conga.SchemeECMP, conga.SchemeLocal, conga.SchemeWCMP, conga.SchemeCONGA} {
		r, err := conga.RunFigure2(s, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s delivered %5.2f Gbps (S0 %.2f / S1 %.2f)\n",
			r.Scheme, r.TotalGbps, r.SpineGbps[0], r.SpineGbps[1])
	}

	fmt.Println()
	fmt.Println("=== Figure 3: the right split depends on the traffic matrix ===")
	fmt.Println("L0 reaches the fabric only via S0. How should L1 split its L1→L2 traffic?")
	for _, s := range []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGA} {
		for _, busy := range []bool{false, true} {
			r, err := conga.RunFigure3(s, busy, 1)
			if err != nil {
				log.Fatal(err)
			}
			label := "L0 idle  "
			if busy {
				label = "L0 active"
			}
			fmt.Printf("  %-8s %s: L1 sends %.2f Gbps via S0, %.2f via S1\n",
				r.Scheme, label, r.LeafUplinkGbps[1][0], r.LeafUplinkGbps[1][1])
		}
	}
	fmt.Println("\nCONGA shifts L1's traffic off the shared S0 path when L0 loads it;")
	fmt.Println("a static split (ECMP/WCMP) cannot be correct in both cases (§2.4).")
}
