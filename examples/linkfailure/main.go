// Link failure: the paper's headline scenario (Figure 7b / Figure 11).
// One of the two 40G links between Leaf 1 and Spine 1 fails, leaving the
// fabric asymmetric: ECMP keeps splitting 50/50 and drives the surviving
// link past saturation at ≥50% load, while CONGA routes around the
// bottleneck using leaf-to-leaf congestion feedback.
//
// Run with:
//
//	go run ./examples/linkfailure
package main

import (
	"fmt"
	"log"
	"time"

	conga "conga"
)

func main() {
	topo := conga.Testbed()
	topo.FailedLinks = [][3]int{{1, 1, 1}} // leaf 1 ↔ spine 1, second LAG member

	fmt.Println("Topology: testbed with one Leaf1-Spine1 link failed (75% bisection).")
	fmt.Printf("%-12s %8s %14s %12s %10s %8s %10s %10s\n",
		"scheme", "load", "avgFCT", "norm", "drops", "RTOs", "retx", "flowlets")

	for _, load := range []float64{0.3, 0.6} {
		for _, scheme := range []conga.Scheme{conga.SchemeECMP, conga.SchemeCONGAFlow, conga.SchemeCONGA, conga.SchemeMPTCPMarker} {
			res, err := conga.RunFCT(conga.FCTConfig{
				Topology: topo,
				Scheme:   scheme,
				Workload: conga.WorkloadEnterprise,
				Load:     load,
				Duration: 50 * time.Millisecond,
				MaxFlows: 1500,
				// Count retransmits and flowlets per run; telemetry
				// observes without changing any result.
				Telemetry: conga.TelemetryAll(""),
			})
			if err != nil {
				log.Fatal(err)
			}
			tcp := res.Telemetry.TCPTotals()
			flowlets, _, _ := res.Telemetry.FlowletTotals()
			fmt.Printf("%-12s %7.0f%% %14v %11.2fx %10d %8d %10d %10d\n",
				conga.SchemeName(scheme), load*100,
				res.AvgFCT.Round(time.Microsecond), res.NormFCT, res.Drops, res.Timeouts,
				tcp.Retransmits, flowlets)
		}
		fmt.Println()
	}
	fmt.Println("Paper result: with the failure, CONGA achieves ~5× better FCT than ECMP")
	fmt.Println("at high load because ECMP overloads the surviving Spine1→Leaf1 link.")
}
