// Incast: the §5.3 micro-benchmark. A client repeatedly requests a 10 MB
// file striped across N servers; all servers answer at once and collide at
// the client's access link. MPTCP's 8 subflows per connection multiply the
// synchronized burst and collapse under buffer pressure; CONGA leaves TCP
// untouched and keeps goodput high.
//
// Run with:
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"
	"time"

	conga "conga"
)

func main() {
	topo := conga.Testbed()
	fanouts := []int{1, 8, 16, 32, 48, 63}

	fmt.Println("Incast goodput (% of the client's 10G access link), 10MB striped requests:")
	fmt.Printf("%-22s", "fanout:")
	for _, f := range fanouts {
		fmt.Printf(" %6d", f)
	}
	fmt.Println()

	for _, setup := range []struct {
		name   string
		kind   conga.Transport
		minRTO time.Duration
	}{
		{"CONGA+TCP (200ms)", conga.TransportTCP, 200 * time.Millisecond},
		{"CONGA+TCP (1ms)", conga.TransportTCP, time.Millisecond},
		{"MPTCP (200ms)", conga.TransportMPTCP, 200 * time.Millisecond},
		{"MPTCP (1ms)", conga.TransportMPTCP, time.Millisecond},
	} {
		fmt.Printf("%-22s", setup.name)
		for _, f := range fanouts {
			res, err := conga.RunIncast(conga.IncastConfig{
				Topology:     topo,
				Scheme:       conga.SchemeCONGA,
				Transport:    conga.TransportConfig{Kind: setup.kind, MinRTO: setup.minRTO},
				Fanout:       f,
				RequestBytes: 10 << 20,
				Rounds:       3,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %5.0f%%", res.GoodputFraction*100)
		}
		fmt.Println()
	}

	fmt.Println("\nPaper result (Figure 13): CONGA+TCP sustains 2–8× MPTCP's goodput at high fan-in.")
}
