package conga

import (
	"fmt"
	"time"

	"conga/internal/mptcp"
	"conga/internal/replay"
	"conga/internal/sim"
	"conga/internal/stats"
	"conga/internal/tcp"
	"conga/internal/telemetry"
)

// IncastConfig describes the §5.3 Incast micro-benchmark: one client
// repeatedly requests a file striped across N servers; all servers respond
// simultaneously, colliding at the client's access link.
type IncastConfig struct {
	Topology  Topology
	Scheme    Scheme
	Transport TransportConfig

	// Fanout is N, the number of servers striping the response.
	Fanout int
	// RequestBytes is the total response size per request (paper: 10 MB).
	RequestBytes int64
	// Rounds is how many synchronized requests to issue back-to-back.
	Rounds int
	// Timeout bounds the whole run of simulated time.
	Timeout time.Duration

	// Telemetry, when non-nil, enables the observability subsystem (see
	// FCTConfig.Telemetry); the registry returns in IncastResult.Telemetry.
	Telemetry *TelemetryOptions

	// SampleCap, when > 0, bounds the per-round completion-time sample via
	// reservoir sampling (see FCTConfig.SampleCap); means stay exact.
	SampleCap int

	// Record, when true, captures every round's per-server transfer as an
	// arrival (kind "incast") in IncastResult.Trace. Incast is closed-loop
	// — each round starts when the previous one completes — so the trace
	// documents the offered sequence for provenance and analysis; replay
	// is through the open-loop FCT harness.
	Record bool

	Seed uint64
}

func (c IncastConfig) withDefaults() IncastConfig {
	c.Topology = c.Topology.withDefaults()
	c.Transport = c.Transport.withDefaults()
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = 10 << 20
	}
	if c.Rounds == 0 {
		c.Rounds = 5
	}
	if c.Timeout == 0 {
		c.Timeout = 20 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// IncastResult reports the effective client goodput.
type IncastResult struct {
	Fanout int
	// GoodputFraction is the achieved goodput over the client access-link
	// rate — the y-axis of Figure 13.
	GoodputFraction float64
	// CompletedRounds counts requests fully answered within Timeout.
	CompletedRounds int
	// TotalTime is the simulated time to finish all rounds.
	TotalTime time.Duration
	// Drops counts losses at the client's access port.
	Drops uint64
	// Timeouts aggregates sender RTOs, the Incast signature.
	Timeouts uint64
	// RoundTimeMean / RoundTimeP99 summarize per-round completion times
	// (the mean is exact even under IncastConfig.SampleCap).
	RoundTimeMean time.Duration
	RoundTimeP99  time.Duration
	// Events counts executed simulator events; Wall the real time the run
	// cost (events/sec reporting). Wall measures the environment, not the
	// simulation: determinism comparisons must zero both first.
	Events uint64
	Wall   time.Duration

	// Telemetry is the run's populated registry when requested.
	Telemetry *TelemetryRegistry

	// Trace is the recorded arrival sequence when IncastConfig.Record was
	// set.
	Trace *replay.Trace
}

// RunIncast executes the Incast micro-benchmark and returns the effective
// throughput. The client is host 0; servers are the next Fanout hosts
// (spread across both racks, as in the testbed where all 63 other servers
// respond).
func RunIncast(cfg IncastConfig) (*IncastResult, error) {
	start := time.Now()
	res, err := runIncast(cfg)
	if res != nil {
		res.Wall = time.Since(start)
	}
	return res, err
}

func runIncast(cfg IncastConfig) (*IncastResult, error) {
	cfg = cfg.withDefaults()
	fabScheme, transport, err := schemeForFabric(cfg.Scheme, cfg.Transport.Kind)
	if err != nil {
		return nil, err
	}
	totalHosts := cfg.Topology.Leaves * cfg.Topology.HostsPerLeaf
	if cfg.Fanout >= totalHosts {
		return nil, fmt.Errorf("conga: fanout %d needs more than %d hosts", cfg.Fanout, totalHosts)
	}

	eng := sim.New()
	var reg *TelemetryRegistry
	if cfg.Telemetry != nil {
		reg = telemetry.New(*cfg.Telemetry)
	}
	net, err := cfg.Topology.build(eng, fabScheme, DefaultParams(), nil, cfg.Seed, reg)
	if err != nil {
		return nil, err
	}

	client := net.Host(0)
	perServer := cfg.RequestBytes / int64(cfg.Fanout)
	if perServer < 1 {
		perServer = 1
	}
	tcpCfg := cfg.Transport.tcpConfig()
	mpCfg := mptcp.Config{Subflows: cfg.Transport.Subflows, TCP: tcpCfg, ChunkSegments: 4}

	// Persistent connections: one sender per server, created up front, so
	// RTT estimators are warm when the synchronized burst hits — matching
	// the benchmark applications the paper cites. They live for the whole
	// run, so the per-engine pool only uniformizes construction here; the
	// rounds themselves allocate nothing.
	pool := tcp.NewFlowPool()
	type server struct {
		tcpSend *tcp.Sender
		mpConn  *mptcp.Connection
	}
	servers := make([]server, cfg.Fanout)
	remaining := 0
	var roundStart sim.Time
	var roundsDone int
	var busyTime sim.Time
	var startRound func(now sim.Time)

	var roundTimes stats.Sample
	if cfg.SampleCap > 0 {
		roundTimes.Reservoir(cfg.SampleCap, cfg.Seed+301)
	} else {
		roundTimes.Reserve(cfg.Rounds)
	}

	onServerDone := func(now sim.Time) {
		remaining--
		if remaining > 0 {
			return
		}
		busyTime += now - roundStart
		roundTimes.Add((now - roundStart).Seconds())
		roundsDone++
		if roundsDone < cfg.Rounds {
			startRound(now)
		}
	}

	for i := 0; i < cfg.Fanout; i++ {
		srcHost := net.Host(i + 1)
		switch transport {
		case TransportMPTCP:
			// The connection allocates and owns its client-side receivers.
			conn := mptcp.Dial(eng, srcHost, client, uint64(1000+i*16), mpCfg)
			conn.OnComplete = onServerDone
			servers[i].mpConn = conn
		default:
			port := client.AllocPort()
			pool.NewReceiver(client, port)
			s := pool.NewSender(eng, srcHost, uint64(1000+i*16), client.ID, port, tcpCfg)
			s.OnAllAcked = onServerDone
			servers[i].tcpSend = s
		}
	}

	var traceRec *replay.Recorder
	if cfg.Record {
		desc := cfg.Topology.fingerprintDesc()
		traceRec = &replay.Recorder{Header: replay.Header{
			Harness: "incast", Scheme: SchemeName(cfg.Scheme), Workload: "incast",
			Seed: cfg.Seed, TopoFP: replay.Fingerprint(desc), Topo: desc,
			DurationNs: int64(cfg.Timeout),
		}}
	}
	startRound = func(now sim.Time) {
		roundStart = now
		remaining = cfg.Fanout
		for i, sv := range servers {
			if traceRec != nil {
				traceRec.Add(replay.Flow{
					At: now, Src: i + 1, Dst: client.ID,
					FlowID: uint64(1000 + i*16), Size: perServer,
					Kind: replay.KindIncast,
				})
			}
			if sv.mpConn != nil {
				sv.mpConn.Transfer(perServer, now)
			} else {
				sv.tcpSend.Queue(perServer, now)
			}
		}
	}
	reg.SetProgress(func() telemetry.Progress {
		return telemetry.Progress{
			FlowsGenerated: cfg.Rounds,
			FlowsCompleted: roundsDone,
			Events:         eng.Executed(),
		}
	})

	eng.At(0, func(now sim.Time) { startRound(now) })
	eng.Run(sim.Duration(cfg.Timeout))

	var rtos uint64
	for _, sv := range servers {
		if sv.mpConn != nil {
			for _, s := range sv.mpConn.Subflows() {
				rtos += s.Stats().Timeouts
			}
		} else {
			rtos += sv.tcpSend.Stats().Timeouts
		}
	}

	res := &IncastResult{
		Fanout:          cfg.Fanout,
		CompletedRounds: roundsDone,
		TotalTime:       time.Duration(eng.Now()),
		Events:          eng.Executed(),
		Drops:           net.Leaves[0].Downlink(client.ID).Drops,
		Timeouts:        rtos,
		RoundTimeMean:   time.Duration(roundTimes.Mean() * 1e9),
		RoundTimeP99:    time.Duration(roundTimes.Quantile(0.99) * 1e9),
	}
	if roundsDone > 0 && busyTime > 0 {
		bytes := float64(perServer) * float64(cfg.Fanout) * float64(roundsDone)
		goodput := bytes * 8 / busyTime.Seconds()
		res.GoodputFraction = goodput / (cfg.Topology.AccessGbps * 1e9)
	}
	if reg != nil {
		reg.Collect()
		reg.FinishTap(eng.Now())
		if err := reg.Flush(); err != nil {
			return nil, fmt.Errorf("conga: telemetry flush: %w", err)
		}
		reg.ArchiveToHub()
		res.Telemetry = reg
	}
	if traceRec != nil {
		res.Trace = traceRec.Trace()
	}
	return res, nil
}
