package conga

import (
	"time"

	"conga/internal/fabric"
	"conga/internal/sim"
	"conga/internal/tcp"
)

// AsymmetryResult reports the §2.4 scenarios: sustained throughput of
// long-lived TCP traffic over an asymmetric fabric.
type AsymmetryResult struct {
	Scheme string
	// SpineGbps is the delivered throughput through each spine (summed
	// over that spine's downlinks).
	SpineGbps []float64
	// TotalGbps is the aggregate delivered throughput — the quantity
	// Figure 2 reports as 90 / 80 / 100 for ECMP / local / CONGA.
	TotalGbps float64
	// LeafUplinkGbps[leaf] gives each source leaf's per-uplink sending
	// rate, which exposes the traffic split decisions directly.
	LeafUplinkGbps [][]float64
}

// RunFigure2 reproduces the Figure 2 scenario at reduced scale: leaf 0
// offers more TCP traffic to leaf 1 than the fabric can carry, and the
// (S1, L1) link has half the capacity of the others (as after a partial
// LAG failure). The load-balancing question is how leaf 0 splits across
// the spines when only the *remote* half of the lower path is thin.
//
// Paper outcome: static ECMP splits 50/50 and strands capacity; a local
// congestion-aware scheme is *worse* than ECMP (TCP backpressure makes the
// lower path look idle locally, attracting more traffic); CONGA's
// leaf-to-leaf feedback finds the ~2:1 split and delivers full capacity.
func RunFigure2(scheme Scheme, seed uint64) (*AsymmetryResult, error) {
	topo := Topology{
		Leaves: 2, Spines: 2, HostsPerLeaf: 16, LinksPerSpine: 1,
		AccessGbps: 1, FabricGbps: 10,
		// Only the spine1↔leaf1 link is thin; leaf 0's own uplinks are
		// symmetric, so a local-only view cannot see the asymmetry.
		FabricLinkGbps: func(leaf, spine, k int) float64 {
			if leaf == 1 && spine == 1 {
				return 5
			}
			return 0
		},
	}
	return runLongLivedLoad(topo, scheme, seed,
		[]pair{{srcLeaf: 0, dstLeaf: 1, flows: 16}}, 400*time.Millisecond)
}

// RunFigure3 reproduces Figure 3: three leaves, two spines, with leaf 0
// attached only to spine 0 (its spine-1 link failed). Leaf 1 sends to leaf
// 2 continuously; scenario (b) adds leaf0→leaf2 traffic, which consumes
// the shared S0→L2 link and changes leaf 1's optimal split — something no
// static weighting can track (§2.4).
func RunFigure3(scheme Scheme, withL0Traffic bool, seed uint64) (*AsymmetryResult, error) {
	topo := Topology{
		Leaves: 3, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 1,
		AccessGbps: 1, FabricGbps: 4,
		FailedLinks: [][3]int{{0, 1, 0}}, // L0 reaches the fabric via S0 only
	}
	// L0's cross traffic (when present) starts first so the congestion it
	// creates on the shared S0→L2 link is already visible when L1's flows
	// make (and RTO-revisit) their path decisions. L1's demand matches
	// one spine path, so where it lands is a pure LB decision.
	pairs := []pair{{srcLeaf: 1, dstLeaf: 2, flows: 4, startAt: 40 * time.Millisecond}}
	if withL0Traffic {
		pairs = append(pairs, pair{srcLeaf: 0, dstLeaf: 2, flows: 6})
	}
	return runLongLivedLoad(topo, scheme, seed, pairs, 400*time.Millisecond)
}

type pair struct {
	srcLeaf, dstLeaf, flows int
	startAt                 time.Duration
}

// runLongLivedLoad saturates the given leaf pairs with long-lived TCP
// flows and measures delivered throughput per spine over the second half
// of the run (the first half is TCP/CONGA convergence warm-up).
func runLongLivedLoad(topo Topology, scheme Scheme, seed uint64, pairs []pair,
	dur time.Duration) (*AsymmetryResult, error) {
	fabScheme, _, err := schemeForFabric(scheme, TransportTCP)
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	net, err := topo.build(eng, fabScheme, DefaultParams(), nil, seed, nil)
	if err != nil {
		return nil, err
	}
	tcpCfg := TransportConfig{}.withDefaults().tcpConfig()
	tcpCfg.MinRTO = 10 * sim.Millisecond
	tcpCfg.InitRTO = 50 * sim.Millisecond

	id := uint64(1)
	for _, pr := range pairs {
		pr := pr
		eng.At(sim.Duration(pr.startAt), func(sim.Time) {
			for i := 0; i < pr.flows; i++ {
				src := net.Host(pr.srcLeaf*topo.HostsPerLeaf + i%topo.HostsPerLeaf)
				dst := net.Host(pr.dstLeaf*topo.HostsPerLeaf + i%topo.HostsPerLeaf)
				tcp.StartFlow(eng, src, dst, id, 1<<40, tcpCfg, nil) // effectively infinite
				id++
			}
		})
	}

	half := sim.Duration(dur) / 2
	eng.Run(half)
	spineStart := make([]uint64, topo.Spines)
	for s := range spineStart {
		spineStart[s] = spineTxBytes(net, s, topo.Leaves)
	}
	upStart := make([][]uint64, topo.Leaves)
	for leaf := range upStart {
		for _, l := range net.Leaves[leaf].Uplinks() {
			upStart[leaf] = append(upStart[leaf], l.TxBytes)
		}
	}
	eng.Run(2 * half)

	res := &AsymmetryResult{
		Scheme:         SchemeName(scheme),
		SpineGbps:      make([]float64, topo.Spines),
		LeafUplinkGbps: make([][]float64, topo.Leaves),
	}
	window := half.Seconds()
	for s := 0; s < topo.Spines; s++ {
		gbps := float64(spineTxBytes(net, s, topo.Leaves)-spineStart[s]) * 8 / window / 1e9
		res.SpineGbps[s] = gbps
		res.TotalGbps += gbps
	}
	for leaf := 0; leaf < topo.Leaves; leaf++ {
		for i, l := range net.Leaves[leaf].Uplinks() {
			gbps := float64(l.TxBytes-upStart[leaf][i]) * 8 / window / 1e9
			res.LeafUplinkGbps[leaf] = append(res.LeafUplinkGbps[leaf], gbps)
		}
	}
	return res, nil
}

func spineTxBytes(net *fabric.Network, s, leaves int) uint64 {
	var total uint64
	for leaf := 0; leaf < leaves; leaf++ {
		for _, l := range net.Spines[s].Downlinks(leaf) {
			total += l.TxBytes
		}
	}
	return total
}
