package conga

import (
	"fmt"
	"sort"
	"time"

	"conga/internal/core"
	"conga/internal/mptcp"
	"conga/internal/replay"
	"conga/internal/sim"
	"conga/internal/stats"
	"conga/internal/tcp"
	"conga/internal/telemetry"
	"conga/internal/workload"
)

// recvPortBase splits every host's port space between the two sides of a
// cross-domain flow: receivers are pre-bound at recvPortBase and above
// before the run starts, and LimitEphemeralPorts keeps concurrent sender
// port allocation (which runs inside the source host's domain) strictly
// below it. No port decision is therefore ever made across a domain
// boundary during the run.
const recvPortBase = 1 << 25

// parArrival is one pregenerated flow arrival routed to its source
// domain's start queue. dstPort is the pre-assigned receiver port (base
// port for MPTCP's consecutive subflow ports).
type parArrival struct {
	at      sim.Time
	src     int
	dst     int
	flowID  uint64
	size    int64
	dstPort int
}

// parDomain is one domain's private slice of the experiment: its engine,
// transport pools, results recorder and the arrivals whose source host it
// owns. Nothing here is shared — domains meet only through the fabric's
// mailboxes — so the completion callbacks need no locks.
type parDomain struct {
	id    int
	eng   *sim.Engine
	pool  *tcp.FlowPool
	mpool *mptcp.Pool
	rec   *stats.FCTRecorder

	retx     uint64
	timeouts uint64
	flows    []FlowFCT // populated when CollectFlows is set

	arrivals []parArrival
	next     int
	startFn  sim.Event // bound once; walks arrivals allocation-free
}

// runFCTParallel is RunFCT for cfg.Parallel > 1: the fabric is partitioned
// into cfg.Parallel domains, one engine and one worker goroutine each,
// executed in bounded windows of FabricPropDelay by sim.ParallelEngine.
//
// The sequential run's live Poisson generator and single flow-object pool
// do not decompose across engines, so the parallel path restructures the
// harness while offering the bit-identical workload:
//
//   - Arrivals are pregenerated on one RNG (consumed in exactly the live
//     order), then routed to the source host's domain, which starts each
//     flow at its arrival time through a per-domain cursor event.
//   - Receivers are pre-bound in the destination host's domain before the
//     run (ports from recvPortBase up), so flow setup never crosses a
//     domain boundary; senders run as tcp/mptcp half-flows whose teardown
//     is lazy (see internal/tcp/split.go for why that is correct TCP).
//   - Each domain records FCTs into its own recorder; recorders merge in
//     domain order after the run, so results are deterministic for a fixed
//     worker count regardless of goroutine scheduling.
//
// Options that structurally need one engine are rejected up front with
// errors naming the sequential alternative.
func runFCTParallel(cfg FCTConfig) (*FCTResult, error) {
	switch {
	case cfg.CollectImbalance:
		return nil, fmt.Errorf("conga: CollectImbalance is not supported with Parallel=%d (its sampler ticks on one engine but reads uplinks across domains); collect it on a sequential run", cfg.Parallel)
	case cfg.CollectQueues:
		return nil, fmt.Errorf("conga: CollectQueues is not supported with Parallel=%d (its sampler reads fabric links across domains); collect it on a sequential run", cfg.Parallel)
	case cfg.SampleCap > 0:
		return nil, fmt.Errorf("conga: SampleCap is not supported with Parallel=%d (per-domain reservoirs cannot merge into a uniform sample); use a sequential run or unbounded samples", cfg.Parallel)
	}
	if t := cfg.Telemetry; t != nil && (t.Trace || t.Tap || t.Hub != nil) {
		return nil, fmt.Errorf("conga: telemetry traces and live taps are not supported with Parallel=%d (they interleave events from all domains in one stream); counters and series remain available", cfg.Parallel)
	}
	if t := cfg.Telemetry; t != nil && t.Decisions && t.DecisionTrace {
		// The per-leaf decision hooks themselves are fine at any P (leaves
		// are domain-owned, flush merges them in leaf order); only the
		// single shared audit buffer has no deterministic parallel merge.
		return nil, fmt.Errorf("conga: the decision trace is not supported with Parallel=%d (one bounded audit buffer cannot merge per-domain decision streams deterministically); run sequentially for the audit trail — decision counters, path matrices and staleness series remain available", cfg.Parallel)
	}

	fabScheme, transport, err := schemeForFabric(cfg.Scheme, cfg.Transport.Kind)
	if err != nil {
		return nil, err
	}
	params := DefaultParams()
	if cfg.Scheme == SchemeCONGAFlow {
		params = core.CongaFlowParams()
	}
	if cfg.Params != nil {
		params = *cfg.Params
	}

	P := cfg.Parallel
	engines := make([]*sim.Engine, P)
	for i := range engines {
		engines[i] = sim.New()
	}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = telemetry.New(*cfg.Telemetry)
	}
	net, err := cfg.Topology.buildPartitioned(engines, fabScheme, params, cfg.WCMPWeights, cfg.Seed, reg)
	if err != nil {
		return nil, err
	}

	dist := cfg.Custom
	if dist == nil {
		dist = cfg.Workload.Dist()
	}

	tcpCfg := cfg.Transport.tcpConfig()
	mpCfg := mptcp.Config{Subflows: cfg.Transport.Subflows, TCP: tcpCfg, ChunkSegments: 4}
	subflows := 1
	if transport == TransportMPTCP {
		subflows = cfg.Transport.Subflows
	}

	// The arrival sequence is fully materialized before the run: either
	// pregenerated on the same RNG stream the sequential run consumes live
	// (so both modes offer the identical workload), or lifted straight out
	// of a replay trace.
	var arrivals []workload.Arrival
	var generated int
	if cfg.Replay != nil {
		if err := cfg.checkReplay(); err != nil {
			return nil, err
		}
		arrivals = make([]workload.Arrival, len(cfg.Replay.Flows))
		for i, f := range cfg.Replay.Flows {
			arrivals[i] = workload.Arrival{At: f.At, Src: f.Src, Dst: f.Dst, FlowID: f.FlowID, Size: f.Size}
		}
		generated = len(arrivals)
	} else {
		gen, err := workload.NewGenerator(engines[0], net, workload.GenConfig{
			Load:          cfg.Load,
			Dist:          dist,
			Duration:      sim.Duration(cfg.Duration),
			MaxFlows:      cfg.MaxFlows,
			InterLeafOnly: true,
			Stride:        uint64(subflows),
			Seed:          cfg.Seed,
		}, nil)
		if err != nil {
			return nil, err
		}
		arrivals = gen.Pregenerate()
		generated = gen.Generated
	}

	doms := make([]*parDomain, P)
	for d := range doms {
		doms[d] = &parDomain{
			id:    d,
			eng:   engines[d],
			pool:  tcp.NewFlowPool(),
			mpool: mptcp.NewPool(),
			rec:   stats.NewFCTRecorder(0),
		}
	}

	// Pre-bind every flow's receiver(s) in the destination host's domain
	// and route the arrival to the source host's domain. Binding before
	// the run is sound because receivers are purely reactive: no packet
	// addressed to a pre-bound port exists before its sender starts.
	for _, h := range net.Hosts {
		h.LimitEphemeralPorts(recvPortBase - 1)
	}
	nextRecv := make([]int, len(net.Hosts))
	for _, a := range arrivals {
		port := recvPortBase + nextRecv[a.Dst]
		nextRecv[a.Dst] += subflows
		for i := 0; i < subflows; i++ {
			tcp.NewReceiver(net.Host(a.Dst), port+i)
		}
		sd := net.HostDomain(a.Src)
		doms[sd].arrivals = append(doms[sd].arrivals, parArrival{
			at: a.At, src: a.Src, dst: a.Dst,
			flowID: a.FlowID, size: a.Size, dstPort: port,
		})
	}

	hook := cfg.testFlowHook
	for _, dd := range doms {
		d := dd
		tcpDone := func(f *tcp.HalfFlow, now sim.Time) {
			opt := sim.Duration(OptimalFCT(cfg.Topology, cfg.Transport, f.Size))
			d.rec.Record(f.Size, f.FCT(now), opt)
			st := f.Sender.Stats()
			d.retx += st.RetxSegments
			d.timeouts += st.Timeouts
			if cfg.CollectFlows {
				d.flows = append(d.flows, FlowFCT{ID: f.Sender.FlowID(), Size: f.Size, FCT: time.Duration(f.FCT(now))})
			}
			if hook != nil {
				hook(d.id, f.Sender.FlowID(), f.FCT(now))
			}
		}
		mptcpDone := func(f *mptcp.HalfFlow, now sim.Time) {
			opt := sim.Duration(OptimalFCT(cfg.Topology, cfg.Transport, f.Size))
			d.rec.Record(f.Size, f.FCT(now), opt)
			subs := f.Conn.Subflows()
			for _, s := range subs {
				st := s.Stats()
				d.retx += st.RetxSegments
				d.timeouts += st.Timeouts
			}
			if cfg.CollectFlows {
				d.flows = append(d.flows, FlowFCT{ID: subs[0].FlowID(), Size: f.Size, FCT: time.Duration(f.FCT(now))})
			}
			if hook != nil {
				hook(d.id, subs[0].FlowID(), f.FCT(now))
			}
		}
		d.startFn = func(now sim.Time) {
			a := &d.arrivals[d.next]
			d.next++
			src := net.Host(a.src)
			switch transport {
			case TransportMPTCP:
				d.mpool.StartHalfFlow(d.eng, src, a.flowID, a.dst, a.dstPort, a.size, mpCfg, mptcpDone)
			default:
				d.pool.StartHalfFlow(d.eng, src, a.flowID, a.dst, a.dstPort, a.size, tcpCfg, tcpDone)
			}
			if d.next < len(d.arrivals) {
				d.eng.At(d.arrivals[d.next].at, d.startFn)
			}
		}
		if len(d.arrivals) > 0 {
			d.eng.At(d.arrivals[0].at, d.startFn)
		}
	}

	pe := sim.NewParallelEngine(engines, net.Cfg.FabricPropDelay)
	for i := 0; i < P; i++ {
		d := i
		pe.SetExchange(d, func(windowEnd sim.Time) { net.Exchange(d, windowEnd) })
	}
	endAt := pe.Run(sim.Duration(cfg.Duration) + sim.Duration(cfg.DrainTimeout))

	// Deterministic merge: domain order, each recorder internally in its
	// engine's execution order.
	rec := stats.NewFCTRecorder(0)
	var retx, timeouts, events uint64
	for _, d := range doms {
		rec.Merge(d.rec)
		retx += d.retx
		timeouts += d.timeouts
		events += d.eng.Executed()
	}

	res := &FCTResult{
		Scheme:         SchemeName(cfg.Scheme),
		Workload:       dist.Name(),
		Load:           cfg.Load,
		Generated:      generated,
		Completed:      rec.Flows,
		AvgFCT:         time.Duration(rec.Overall.Mean() * 1e9),
		P99FCT:         time.Duration(rec.Overall.Quantile(0.99) * 1e9),
		NormFCT:        rec.NormOfMeans(),
		NormFCTPerFlow: rec.OverallNorm.Mean(),
		SmallAvgFCT:    time.Duration(rec.Small.Mean() * 1e9),
		LargeAvgFCT:    time.Duration(rec.Large.Mean() * 1e9),
		SmallCount:     rec.Small.N(),
		LargeCount:     rec.Large.N(),
		Drops:          net.TotalDrops(),
		Retransmits:    retx,
		Timeouts:       timeouts,
		SimTime:        time.Duration(endAt),
		Events:         events,
	}
	if reg != nil {
		if cfg.Replay != nil {
			reg.SetProvenance(traceProvenance("replay", cfg.Replay.Header))
		} else if cfg.Record {
			reg.SetProvenance(traceProvenance("record", cfg.traceHeader(dist.Name())))
		}
		reg.Collect()
		reg.FinishTap(endAt)
		if err := reg.Flush(); err != nil {
			return nil, fmt.Errorf("conga: telemetry flush: %w", err)
		}
		reg.ArchiveToHub()
		res.Telemetry = reg
	}
	if cfg.Record {
		if cfg.Replay != nil {
			// Re-recording a replay keeps the original kinds and workload
			// provenance; only the scheme/seed describe the current run.
			trrec := &replay.Recorder{Header: cfg.traceHeader(cfg.Replay.Header.Workload)}
			trrec.Header.Load = cfg.Replay.Header.Load
			for _, f := range cfg.Replay.Flows {
				trrec.Add(f)
			}
			res.Trace = trrec.Trace()
		} else {
			res.Trace = cfg.traceFromArrivals(dist.Name(), arrivals)
		}
	}
	if cfg.CollectFlows {
		var all []FlowFCT
		for _, d := range doms {
			all = append(all, d.flows...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		res.FlowFCTs = all
	}
	return res, nil
}
