package conga

import (
	"sort"
	"testing"
	"time"

	"conga/internal/sim"
)

// scaleCell returns the FCTConfig of one 40G scale-sweep cell at the given
// fabric width, sized down for test runtime.
func scaleCell(leaves, maxFlows int, dur time.Duration) FCTConfig {
	return FCTConfig{
		Topology: Topology{
			Leaves: leaves, Spines: 4, HostsPerLeaf: 4, LinksPerSpine: 2,
			AccessGbps: 40, FabricGbps: 40,
		},
		Scheme:    SchemeCONGA,
		Workload:  WorkloadEnterprise,
		Load:      0.6,
		Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
		Duration:  dur,
		MaxFlows:  maxFlows,
		Seed:      7,
	}
}

// TestParallelMatchesSequential checks that a space-parallel run offers the
// identical workload to the sequential run (same generated flow count, all
// completing) and lands within the accepted ±2% normalized-FCT band —
// parallel runs are deterministic but not bit-identical to sequential ones,
// because same-timestamp events in different domains interleave differently.
func TestParallelMatchesSequential(t *testing.T) {
	seqCfg := scaleCell(8, 200, 4*time.Millisecond)
	seq, err := RunFCT(seqCfg)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := seqCfg
	parCfg.Parallel = 4
	par, err := RunFCT(parCfg)
	if err != nil {
		t.Fatal(err)
	}

	if par.Generated != seq.Generated {
		t.Fatalf("generated: parallel %d, sequential %d", par.Generated, seq.Generated)
	}
	if par.Completed != seq.Completed {
		t.Fatalf("completed: parallel %d, sequential %d", par.Completed, seq.Completed)
	}
	if seq.NormFCT <= 0 || par.NormFCT <= 0 {
		t.Fatalf("norm FCT: parallel %v, sequential %v", par.NormFCT, seq.NormFCT)
	}
	// Parallel mode pre-assigns receiver ports, so flows hash onto
	// different paths than the sequential run — statistically equivalent,
	// not per-flow identical. At this test's 200-flow scale the band is
	// loose; the benchmark-scale ±2% gate lives in tools/benchguard.
	if diff := par.NormFCT/seq.NormFCT - 1; diff > 0.10 || diff < -0.10 {
		t.Fatalf("norm FCT drifted %+.2f%%: parallel %v, sequential %v",
			diff*100, par.NormFCT, seq.NormFCT)
	}
}

// flowFCT is one completed flow observed through the test hook.
type flowFCT struct {
	id  uint64
	fct sim.Time
}

// runParallelVector runs one parallel experiment and returns its per-flow
// FCT vector sorted by flow ID.
func runParallelVector(t *testing.T, cfg FCTConfig, workers int) []flowFCT {
	t.Helper()
	vecs := make([][]flowFCT, workers)
	cfg.Parallel = workers
	cfg.testFlowHook = func(dom int, id uint64, fct sim.Time) {
		vecs[dom] = append(vecs[dom], flowFCT{id, fct})
	}
	res, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var all []flowFCT
	for _, v := range vecs {
		all = append(all, v...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	if len(all) != res.Completed {
		t.Fatalf("hook saw %d flows, result reports %d", len(all), res.Completed)
	}
	return all
}

// TestParallelDeterministic256 is the -race stress test: a 256-leaf fabric
// run space-parallel at 2, 4 and 8 workers, twice each. For every worker
// count the two repetitions must produce identical per-flow FCT vectors —
// goroutine scheduling may reorder wall-clock execution but never results —
// and the race detector must stay silent across the domain barriers.
func TestParallelDeterministic256(t *testing.T) {
	cfg := scaleCell(256, 120, 2*time.Millisecond)
	for _, workers := range []int{2, 4, 8} {
		a := runParallelVector(t, cfg, workers)
		b := runParallelVector(t, cfg, workers)
		if len(a) == 0 {
			t.Fatalf("workers=%d: no flows completed", workers)
		}
		if len(a) != len(b) {
			t.Fatalf("workers=%d: run lengths differ: %d vs %d", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: flow %d differs: %+v vs %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestParallelRejectsUnsupportedOptions checks the fail-fast validation:
// every option that structurally needs a single engine is rejected with an
// error explaining the sequential alternative, and a partition wider than
// the fabric is impossible.
func TestParallelRejectsUnsupportedOptions(t *testing.T) {
	base := scaleCell(8, 50, time.Millisecond)
	cases := []struct {
		name string
		mut  func(*FCTConfig)
	}{
		{"imbalance", func(c *FCTConfig) { c.CollectImbalance = true }},
		{"queues", func(c *FCTConfig) { c.CollectQueues = true }},
		{"samplecap", func(c *FCTConfig) { c.SampleCap = 100 }},
		{"trace", func(c *FCTConfig) { c.Telemetry = &TelemetryOptions{Trace: true} }},
		{"tap", func(c *FCTConfig) { c.Telemetry = &TelemetryOptions{Tap: true} }},
		{"hub", func(c *FCTConfig) { c.Telemetry = &TelemetryOptions{Hub: NewTelemetryHub()} }},
		{"too-wide", func(c *FCTConfig) { c.Parallel = c.Topology.Leaves + 1 }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Parallel = 2
		tc.mut(&cfg)
		if _, err := RunFCT(cfg); err == nil {
			t.Errorf("%s: expected an error, got none", tc.name)
		}
	}
}

// TestParallelMPTCP exercises the split MPTCP path (pre-bound subflow
// receivers, sender-side half connections) end to end and its determinism.
func TestParallelMPTCP(t *testing.T) {
	cfg := scaleCell(8, 80, 2*time.Millisecond)
	cfg.Scheme = SchemeMPTCPMarker
	a := runParallelVector(t, cfg, 4)
	b := runParallelVector(t, cfg, 4)
	if len(a) == 0 {
		t.Fatal("no MPTCP flows completed")
	}
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestParallelTelemetryCounters checks that counters-and-series telemetry —
// the probes that are supported in parallel mode — can be enabled without
// perturbing results: per-flow FCT vectors with telemetry on and off are
// identical, and TCP counters aggregate across the per-domain shards.
func TestParallelTelemetryCounters(t *testing.T) {
	cfg := scaleCell(8, 80, 2*time.Millisecond)
	plain := runParallelVector(t, cfg, 4)

	cfg.Telemetry = &TelemetryOptions{Counters: true, Series: true}
	instr := runParallelVector(t, cfg, 4)
	if len(plain) != len(instr) {
		t.Fatalf("telemetry changed completion count: %d vs %d", len(plain), len(instr))
	}
	for i := range plain {
		if plain[i] != instr[i] {
			t.Fatalf("telemetry perturbed flow %d: %+v vs %+v", i, plain[i], instr[i])
		}
	}

	cfg.testFlowHook = nil
	res, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("telemetry registry missing from result")
	}
	enq, deq, _, _ := res.Telemetry.LinkTotals()
	if enq == 0 || deq == 0 {
		t.Fatalf("link counters empty: enqueues=%d dequeues=%d", enq, deq)
	}
	tot := res.Telemetry.TCPTotals()
	if tot.Retransmits != res.Retransmits || tot.Timeouts != res.Timeouts {
		t.Fatalf("per-domain TCP shards did not aggregate: telemetry (%d retx, %d timeouts), result (%d, %d)",
			tot.Retransmits, tot.Timeouts, res.Retransmits, res.Timeouts)
	}
}
