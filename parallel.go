package conga

import "conga/internal/runner"

// Parallel experiment execution. Each run builds its own engine and
// network, so runs share nothing and a fixed seed gives the same result
// whether executed sequentially or concurrently; results come back in
// config order. The figure sweeps in cmd/congabench are built on these.

// RunFCTs executes each FCT experiment on its own engine across a
// GOMAXPROCS-bounded worker pool and returns results in config order.
func RunFCTs(cfgs []FCTConfig) ([]*FCTResult, error) {
	return runner.Map(0, cfgs, RunFCT)
}

// RunFCTsStream is RunFCTs with a streaming callback: emit fires once per
// experiment in config order as soon as it (and all earlier configs) have
// finished, so sweeps can print rows while later runs are still going.
func RunFCTsStream(cfgs []FCTConfig, emit func(i int, r *FCTResult, err error)) ([]*FCTResult, error) {
	return runner.MapStream(0, cfgs, RunFCT, emit)
}

// RunIncasts executes Incast micro-benchmarks in parallel, results in
// config order.
func RunIncasts(cfgs []IncastConfig) ([]*IncastResult, error) {
	return runner.Map(0, cfgs, RunIncast)
}

// RunIncastsStream is RunIncasts with a per-completion, config-order
// callback.
func RunIncastsStream(cfgs []IncastConfig, emit func(i int, r *IncastResult, err error)) ([]*IncastResult, error) {
	return runner.MapStream(0, cfgs, RunIncast, emit)
}

// RunHDFSTrials executes HDFS trials in parallel, results in config order.
func RunHDFSTrials(cfgs []HDFSConfig) ([]*HDFSResult, error) {
	return runner.Map(0, cfgs, RunHDFS)
}

// RunHDFSTrialsStream is RunHDFSTrials with a per-completion, config-order
// callback.
func RunHDFSTrialsStream(cfgs []HDFSConfig, emit func(i int, r *HDFSResult, err error)) ([]*HDFSResult, error) {
	return runner.MapStream(0, cfgs, RunHDFS, emit)
}
