package conga

import "conga/internal/runner"

// Parallel experiment execution. Each run builds its own engine and
// network, so runs share nothing and a fixed seed gives the same result
// whether executed sequentially or concurrently; results come back in
// config order. The figure sweeps in cmd/congabench are built on these.

// RunFCTs executes each FCT experiment on its own engine across a
// GOMAXPROCS-bounded worker pool and returns results in config order.
func RunFCTs(cfgs []FCTConfig) ([]*FCTResult, error) {
	return runner.Map(0, cfgs, RunFCT)
}

// RunIncasts executes Incast micro-benchmarks in parallel, results in
// config order.
func RunIncasts(cfgs []IncastConfig) ([]*IncastResult, error) {
	return runner.Map(0, cfgs, RunIncast)
}

// RunHDFSTrials executes HDFS trials in parallel, results in config order.
func RunHDFSTrials(cfgs []HDFSConfig) ([]*HDFSResult, error) {
	return runner.Map(0, cfgs, RunHDFS)
}
