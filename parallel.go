package conga

import "conga/internal/runner"

// Parallel experiment execution. Each run builds its own engine and
// network, so runs share nothing and a fixed seed gives the same result
// whether executed sequentially or concurrently; results come back in
// config order. The figure sweeps in cmd/congabench are built on these.

// SweepProgress tracks how many experiments of a sweep have started and
// finished, with atomic counters a monitoring goroutine (the live
// telemetry endpoint's sweep view) can read while workers run. One
// instance may span several Run*Stream calls; totals accumulate.
type SweepProgress = runner.Progress

// RunFCTs executes each FCT experiment on its own engine across a
// GOMAXPROCS-bounded worker pool and returns results in config order.
func RunFCTs(cfgs []FCTConfig) ([]*FCTResult, error) {
	return runner.Map(0, cfgs, RunFCT)
}

// RunFCTsStream is RunFCTs with a streaming callback: emit fires once per
// experiment in config order as soon as it (and all earlier configs) have
// finished, so sweeps can print rows while later runs are still going. A
// non-nil prog tracks sweep progress.
func RunFCTsStream(cfgs []FCTConfig, emit func(i int, r *FCTResult, err error), prog *SweepProgress) ([]*FCTResult, error) {
	return runner.MapStreamP(0, cfgs, RunFCT, emit, prog)
}

// RunIncasts executes Incast micro-benchmarks in parallel, results in
// config order.
func RunIncasts(cfgs []IncastConfig) ([]*IncastResult, error) {
	return runner.Map(0, cfgs, RunIncast)
}

// RunIncastsStream is RunIncasts with a per-completion, config-order
// callback and optional sweep progress.
func RunIncastsStream(cfgs []IncastConfig, emit func(i int, r *IncastResult, err error), prog *SweepProgress) ([]*IncastResult, error) {
	return runner.MapStreamP(0, cfgs, RunIncast, emit, prog)
}

// RunHDFSTrials executes HDFS trials in parallel, results in config order.
func RunHDFSTrials(cfgs []HDFSConfig) ([]*HDFSResult, error) {
	return runner.Map(0, cfgs, RunHDFS)
}

// RunHDFSTrialsStream is RunHDFSTrials with a per-completion, config-order
// callback and optional sweep progress.
func RunHDFSTrialsStream(cfgs []HDFSConfig, emit func(i int, r *HDFSResult, err error), prog *SweepProgress) ([]*HDFSResult, error) {
	return runner.MapStreamP(0, cfgs, RunHDFS, emit, prog)
}
