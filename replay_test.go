package conga

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"conga/internal/replay"
)

// replayTestConfig is a small, fast experiment cell: quarter-testbed
// fabric, short arrival window.
func replayTestConfig(scheme Scheme) FCTConfig {
	return FCTConfig{
		Topology:  Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 2, AccessGbps: 10, FabricGbps: 20},
		Scheme:    scheme,
		Workload:  WorkloadEnterprise,
		Load:      0.5,
		Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
		Duration:  10 * time.Millisecond,
		MaxFlows:  400,
		Seed:      7,
	}
}

func sameFlowFCTs(t *testing.T, want, got []FlowFCT, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d flows vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: flow %d differs: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

// TestReplayBitIdenticalSameScheme is the core guarantee: replaying a
// recorded trace into the identical scheme/config reproduces the recording
// run bit-identically — same events executed, same per-flow FCT vector —
// including through an on-disk round trip in both formats.
func TestReplayBitIdenticalSameScheme(t *testing.T) {
	base := replayTestConfig(SchemeCONGA)
	base.Record = true
	base.CollectFlows = true
	orig, err := RunFCT(base)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Trace == nil || orig.Trace.Header.Flows == 0 {
		t.Fatal("recording produced no trace")
	}
	if orig.Trace.Header.Flows != orig.Generated {
		t.Fatalf("trace has %d flows, run generated %d", orig.Trace.Header.Flows, orig.Generated)
	}
	if orig.Completed == 0 || len(orig.FlowFCTs) != orig.Completed {
		t.Fatalf("CollectFlows kept %d of %d completed", len(orig.FlowFCTs), orig.Completed)
	}

	dir := t.TempDir()
	for _, name := range []string{"t.ndjson", "t.gz"} {
		path := filepath.Join(dir, name)
		if err := orig.Trace.Write(path); err != nil {
			t.Fatal(err)
		}
		tr, err := replay.Read(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg := replayTestConfig(SchemeCONGA)
		cfg.Replay = tr
		cfg.CollectFlows = true
		re, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if re.Events != orig.Events {
			t.Errorf("%s: replay executed %d events, recording %d", name, re.Events, orig.Events)
		}
		if re.Generated != orig.Generated || re.Completed != orig.Completed {
			t.Errorf("%s: replay %d/%d flows vs recording %d/%d", name,
				re.Generated, re.Completed, orig.Generated, orig.Completed)
		}
		sameFlowFCTs(t, orig.FlowFCTs, re.FlowFCTs, name)
		if re.NormFCT != orig.NormFCT {
			t.Errorf("%s: normFCT %v vs %v", name, re.NormFCT, orig.NormFCT)
		}
	}
}

// TestReplayAcrossSchemesKeepsArrivals replays an ECMP-recorded trace
// under CONGA and MPTCP, re-recording during replay: every scheme must see
// the byte-identical arrival sequence even though the flows' fates differ.
func TestReplayAcrossSchemesKeepsArrivals(t *testing.T) {
	base := replayTestConfig(SchemeECMP)
	base.Record = true
	orig, err := RunFCT(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, scheme := range []Scheme{SchemeCONGA, SchemeCONGAFlow, SchemeMPTCPMarker} {
		cfg := replayTestConfig(scheme)
		cfg.Replay = orig.Trace
		cfg.Record = true
		cfg.CollectFlows = true
		re, err := RunFCT(cfg)
		if err != nil {
			t.Fatalf("%s: %v", SchemeName(scheme), err)
		}
		if re.Trace == nil {
			t.Fatalf("%s: no re-recorded trace", SchemeName(scheme))
		}
		if len(re.Trace.Flows) != len(orig.Trace.Flows) {
			t.Fatalf("%s: %d arrivals vs %d", SchemeName(scheme), len(re.Trace.Flows), len(orig.Trace.Flows))
		}
		for i := range orig.Trace.Flows {
			if re.Trace.Flows[i] != orig.Trace.Flows[i] {
				t.Fatalf("%s: arrival %d differs: %+v vs %+v",
					SchemeName(scheme), i, re.Trace.Flows[i], orig.Trace.Flows[i])
			}
		}
		if re.Completed == 0 {
			t.Errorf("%s: replay completed no flows", SchemeName(scheme))
		}
		// The workload provenance survives re-recording; the scheme is the
		// new run's.
		if re.Trace.Header.Workload != orig.Trace.Header.Workload {
			t.Errorf("%s: workload provenance lost: %q", SchemeName(scheme), re.Trace.Header.Workload)
		}
		if re.Trace.Header.Scheme != SchemeName(scheme) {
			t.Errorf("re-recorded scheme = %q, want %q", re.Trace.Header.Scheme, SchemeName(scheme))
		}
	}
}

// TestReplayParallelDeterministic replays the same trace under the
// space-parallel engine: the recorded trace must load into Parallel ≥ 2,
// produce the identical per-flow FCT vector on repeated runs, and the
// parallel recording of the same cell must equal the sequential one
// (pregeneration draws the same RNG stream the live generator consumes).
func TestReplayParallelDeterministic(t *testing.T) {
	base := replayTestConfig(SchemeCONGA)
	base.Record = true
	orig, err := RunFCT(base)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential and parallel recordings of the same cell are the same
	// trace.
	pcfg := replayTestConfig(SchemeCONGA)
	pcfg.Record = true
	pcfg.Parallel = 2
	prec, err := RunFCT(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prec.Trace.Flows) != len(orig.Trace.Flows) {
		t.Fatalf("parallel recording has %d arrivals, sequential %d", len(prec.Trace.Flows), len(orig.Trace.Flows))
	}
	for i := range orig.Trace.Flows {
		if prec.Trace.Flows[i] != orig.Trace.Flows[i] {
			t.Fatalf("parallel arrival %d differs: %+v vs %+v", i, prec.Trace.Flows[i], orig.Trace.Flows[i])
		}
	}

	var first []FlowFCT
	for rep := 0; rep < 2; rep++ {
		cfg := replayTestConfig(SchemeCONGA)
		cfg.Replay = orig.Trace
		cfg.CollectFlows = true
		cfg.Parallel = 2
		re, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if re.Completed == 0 {
			t.Fatal("parallel replay completed no flows")
		}
		if rep == 0 {
			first = re.FlowFCTs
			continue
		}
		sameFlowFCTs(t, first, re.FlowFCTs, "parallel rep")
	}
}

// TestReplayRejectsMismatchedTopology records on one fabric shape and
// replays on another: the fingerprint check must refuse, naming both
// shapes, in both the sequential and parallel paths.
func TestReplayRejectsMismatchedTopology(t *testing.T) {
	base := replayTestConfig(SchemeECMP)
	base.Record = true
	base.MaxFlows = 50
	orig, err := RunFCT(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{0, 2} {
		cfg := replayTestConfig(SchemeCONGA)
		cfg.Topology.HostsPerLeaf = 4 // different shape
		cfg.Replay = orig.Trace
		cfg.Parallel = par
		_, err = RunFCT(cfg)
		if err == nil {
			t.Fatalf("parallel=%d: mismatched topology accepted", par)
		}
		if !strings.Contains(err.Error(), "hosts/leaf=8") || !strings.Contains(err.Error(), "hosts/leaf=4") {
			t.Errorf("parallel=%d: error %q should name both shapes", par, err)
		}
	}

	// Same shape under a *different* scheme and failed link must be fine.
	cfg := replayTestConfig(SchemeCONGA)
	cfg.Topology.FailedLinks = [][3]int{{0, 1, 0}}
	cfg.Replay = orig.Trace
	if _, err := RunFCT(cfg); err != nil {
		t.Errorf("failed-link replay rejected: %v", err)
	}

	// A corrupt trace (host beyond the fabric) must be refused even with a
	// matching fingerprint.
	forged := *orig.Trace
	forged.Flows = append([]replay.Flow{}, orig.Trace.Flows...)
	forged.Flows[0].Src = 10_000
	forged.Header.Flows = len(forged.Flows)
	cfg = replayTestConfig(SchemeCONGA)
	cfg.Replay = &forged
	if _, err := RunFCT(cfg); err == nil {
		t.Error("forged host ID accepted")
	}
}

// TestRunReplayCompare checks the paired A/B runner end to end: ECMP vs
// CONGA on one recorded trace, with deterministic matched-pairs statistics
// and coherent bootstrap intervals.
func TestRunReplayCompare(t *testing.T) {
	base := replayTestConfig(SchemeECMP)
	base.Record = true
	orig, err := RunFCT(base)
	if err != nil {
		t.Fatal(err)
	}

	cmpCfg := ReplayCompareConfig{
		Trace:     orig.Trace,
		A:         replayTestConfig(SchemeECMP),
		B:         replayTestConfig(SchemeCONGA),
		Resamples: 200,
	}
	res, err := RunReplayCompare(cmpCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Pairs == 0 {
		t.Fatal("no matched pairs")
	}
	if res.Overall.Pairs != len(res.Deltas) {
		t.Errorf("pairs %d but %d deltas", res.Overall.Pairs, len(res.Deltas))
	}
	if got := res.Overall.Pairs + res.UnmatchedA; got != res.A.Completed {
		t.Errorf("pairs+unmatchedA = %d, side A completed %d", got, res.A.Completed)
	}
	for _, b := range []PairedBucket{res.Overall, res.Small, res.Large} {
		if b.Pairs == 0 {
			continue
		}
		if b.DeltaLo > b.DeltaHi {
			t.Errorf("bucket %s: delta CI inverted [%v, %v]", b.Name, b.DeltaLo, b.DeltaHi)
		}
		if b.RatioLo > b.RatioHi {
			t.Errorf("bucket %s: ratio CI inverted [%v, %v]", b.Name, b.RatioLo, b.RatioHi)
		}
		if b.WinFraction < 0 || b.WinFraction > 1 {
			t.Errorf("bucket %s: win fraction %v", b.Name, b.WinFraction)
		}
	}
	// The A side replays the recording config exactly, so pairing is total
	// on A's completions against itself: verify determinism by re-running.
	res2, err := RunReplayCompare(cmpCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall != res2.Overall || res.Small != res2.Small || res.Large != res2.Large {
		t.Error("paired comparison is not deterministic across runs")
	}
}
