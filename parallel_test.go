package conga

import (
	"reflect"
	"testing"
	"time"

	"conga/internal/runner"
)

func detConfigs() []FCTConfig {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessGbps: 10, FabricGbps: 10}
	var cfgs []FCTConfig
	for _, s := range []Scheme{SchemeECMP, SchemeCONGA} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfgs = append(cfgs, FCTConfig{
				Topology: topo,
				Scheme:   s,
				Workload: WorkloadEnterprise,
				Load:     0.5,
				Duration: 10 * time.Millisecond,
				MaxFlows: 80,
				Seed:     seed,
			})
		}
	}
	return cfgs
}

// TestParallelRunsMatchSequential is the determinism regression test for
// the experiment runner: each engine is single-threaded and seeded, so the
// same config must produce byte-identical results whether it runs alone or
// alongside five siblings on a worker pool.
func TestParallelRunsMatchSequential(t *testing.T) {
	cfgs := detConfigs()
	seq := make([]*FCTResult, len(cfgs))
	for i, cfg := range cfgs {
		r, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}
	// Force multiple workers so the comparison is meaningful even on a
	// single-core machine, where GOMAXPROCS would fall back to sequential.
	par, err := runner.Map(4, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		a, b := *seq[i], *par[i]
		a.Wall, b.Wall = 0, 0 // wall clock is environment, not behavior
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("config %d (%s seed %d): parallel result differs from sequential\nseq: %+v\npar: %+v",
				i, seq[i].Scheme, cfgs[i].Seed, a, b)
		}
	}
}

// TestParallelPoolsIsolated drives nine engines — TCP, MPTCP and CONGA
// transports mixed — across eight workers at once, each run recycling
// flows through its own per-engine tcp.FlowPool and mptcp.Pool, and
// requires results identical to sequential execution. Under `make race`
// this is the proof that the pools are engine-private: any sharing of a
// free list, a recycled Sender, or a port table across engines shows up
// as a race or a result divergence here.
func TestParallelPoolsIsolated(t *testing.T) {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessGbps: 10, FabricGbps: 10}
	var cfgs []FCTConfig
	for _, s := range []Scheme{SchemeECMP, SchemeCONGA, SchemeMPTCPMarker} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfgs = append(cfgs, FCTConfig{
				Topology:  topo,
				Scheme:    s,
				Workload:  WorkloadEnterprise,
				Load:      0.5,
				Duration:  10 * time.Millisecond,
				MaxFlows:  120,
				Transport: TransportConfig{MinRTO: 10 * time.Millisecond},
				Seed:      seed,
			})
		}
	}
	seq := make([]*FCTResult, len(cfgs))
	for i, cfg := range cfgs {
		r, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}
	par, err := runner.MapStreamP(8, cfgs, RunFCT, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if seq[i].Events != par[i].Events || seq[i].NormFCT != par[i].NormFCT {
			t.Fatalf("config %d (%s seed %d): pooled parallel run diverged: events %d vs %d, normFCT %v vs %v",
				i, seq[i].Scheme, cfgs[i].Seed, seq[i].Events, par[i].Events, seq[i].NormFCT, par[i].NormFCT)
		}
	}
}

// TestParallelRerunIsStable re-runs the same batch and requires identical
// output — scheduling order across workers must never leak into results.
func TestParallelRerunIsStable(t *testing.T) {
	cfgs := detConfigs()
	a, err := runner.Map(4, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.Map(2, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		x, y := *a[i], *b[i]
		x.Wall, y.Wall = 0, 0 // wall clock is environment, not behavior
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("config %d: two parallel runs disagree", i)
		}
	}
}
