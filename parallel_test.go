package conga

import (
	"reflect"
	"testing"
	"time"

	"conga/internal/runner"
)

func detConfigs() []FCTConfig {
	topo := Topology{Leaves: 2, Spines: 2, HostsPerLeaf: 4, LinksPerSpine: 1,
		AccessGbps: 10, FabricGbps: 10}
	var cfgs []FCTConfig
	for _, s := range []Scheme{SchemeECMP, SchemeCONGA} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfgs = append(cfgs, FCTConfig{
				Topology: topo,
				Scheme:   s,
				Workload: WorkloadEnterprise,
				Load:     0.5,
				Duration: 10 * time.Millisecond,
				MaxFlows: 80,
				Seed:     seed,
			})
		}
	}
	return cfgs
}

// TestParallelRunsMatchSequential is the determinism regression test for
// the experiment runner: each engine is single-threaded and seeded, so the
// same config must produce byte-identical results whether it runs alone or
// alongside five siblings on a worker pool.
func TestParallelRunsMatchSequential(t *testing.T) {
	cfgs := detConfigs()
	seq := make([]*FCTResult, len(cfgs))
	for i, cfg := range cfgs {
		r, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = r
	}
	// Force multiple workers so the comparison is meaningful even on a
	// single-core machine, where GOMAXPROCS would fall back to sequential.
	par, err := runner.Map(4, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("config %d (%s seed %d): parallel result differs from sequential\nseq: %+v\npar: %+v",
				i, seq[i].Scheme, cfgs[i].Seed, seq[i], par[i])
		}
	}
}

// TestParallelRerunIsStable re-runs the same batch and requires identical
// output — scheduling order across workers must never leak into results.
func TestParallelRerunIsStable(t *testing.T) {
	cfgs := detConfigs()
	a, err := runner.Map(4, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.Map(2, cfgs, RunFCT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("config %d: two parallel runs disagree", i)
		}
	}
}
