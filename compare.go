package conga

import (
	"fmt"
	"time"

	"conga/internal/replay"
	"conga/internal/stats"
)

// ReplayCompareConfig describes a paired A/B comparison: one recorded
// trace replayed into two configurations (typically two schemes over the
// same fabric), with per-flow FCTs matched one-to-one by flow ID.
type ReplayCompareConfig struct {
	// Trace is the recorded workload both sides replay.
	Trace *replay.Trace
	// A and B are the two configurations under comparison. Their Replay,
	// Record and CollectFlows fields are managed by the runner; everything
	// else (Scheme, Transport, Params, failed links, buffers, Parallel) is
	// the caller's experimental contrast.
	A, B FCTConfig

	// Resamples is the bootstrap resample count (default 1000).
	Resamples int
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Seed seeds the bootstrap PRNG (default 1); the comparison is
	// deterministic for a fixed seed.
	Seed uint64
}

// PairedBucket summarizes the matched pairs of one flow-size bucket.
// Deltas are B−A: negative means B completed flows faster.
type PairedBucket struct {
	Name  string
	Pairs int

	MeanA, MeanB time.Duration
	// MeanDelta is mean(B−A) with its bootstrap confidence interval.
	MeanDelta        time.Duration
	DeltaLo, DeltaHi time.Duration
	// MeanRatio is mean(B)/mean(A) with its bootstrap confidence interval
	// (the normalized-FCT style headline: 0.8 → B is 20% faster).
	MeanRatio        float64
	RatioLo, RatioHi float64
	// WinFraction is the fraction of pairs B won outright.
	WinFraction float64
	// MedianDelta and P99Delta are per-pair delta quantiles.
	MedianDelta time.Duration
	P99Delta    time.Duration
}

// FlowDelta is one matched flow's outcome under both sides.
type FlowDelta struct {
	ID   uint64
	Size int64
	A, B time.Duration
}

// ReplayCompareResult carries both runs and the paired statistics.
type ReplayCompareResult struct {
	Header replay.Header
	A, B   *FCTResult

	// Overall, Small (<100 KB) and Large (>10 MB) bucket the pairs by flow
	// size, mirroring the paper's FCT breakdowns.
	Overall, Small, Large PairedBucket

	// Deltas lists every matched pair sorted by flow ID.
	Deltas []FlowDelta
	// UnmatchedA/B count flows that completed under only one side (e.g. a
	// flow that beat the drain timeout under one scheme but not the other);
	// they are excluded from the paired statistics.
	UnmatchedA, UnmatchedB int
}

func (c ReplayCompareConfig) withDefaults() ReplayCompareConfig {
	if c.Resamples == 0 {
		c.Resamples = 1000
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunReplayCompare replays one recorded workload into both configurations
// and reports matched-pairs FCT statistics with bootstrap confidence
// intervals. Because both sides see the identical arrival sequence, the
// per-flow deltas isolate the scheme effect from workload noise — the
// difference two independently seeded runs cannot separate.
func RunReplayCompare(cfg ReplayCompareConfig) (*ReplayCompareResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Trace == nil {
		return nil, fmt.Errorf("conga: RunReplayCompare needs a trace")
	}

	run := func(side FCTConfig) (*FCTResult, error) {
		side.Replay = cfg.Trace
		side.Record = false
		side.CollectFlows = true
		return RunFCT(side)
	}
	ra, err := run(cfg.A)
	if err != nil {
		return nil, fmt.Errorf("conga: replay side A: %w", err)
	}
	rb, err := run(cfg.B)
	if err != nil {
		return nil, fmt.Errorf("conga: replay side B: %w", err)
	}

	res := &ReplayCompareResult{Header: cfg.Trace.Header, A: ra, B: rb}

	// Match by flow ID: both slices are ID-sorted, so a single merge walk
	// pairs them.
	fa, fb := ra.FlowFCTs, rb.FlowFCTs
	var overall, small, large stats.PairedSample
	overall.Reserve(len(fa))
	i, j := 0, 0
	for i < len(fa) && j < len(fb) {
		switch {
		case fa[i].ID < fb[j].ID:
			res.UnmatchedA++
			i++
		case fa[i].ID > fb[j].ID:
			res.UnmatchedB++
			j++
		default:
			a, b := fa[i], fb[j]
			res.Deltas = append(res.Deltas, FlowDelta{ID: a.ID, Size: a.Size, A: a.FCT, B: b.FCT})
			av, bv := a.FCT.Seconds(), b.FCT.Seconds()
			overall.Add(av, bv)
			if a.Size < stats.SmallFlowMax {
				small.Add(av, bv)
			} else if a.Size > stats.LargeFlowMin {
				large.Add(av, bv)
			}
			i++
			j++
		}
	}
	res.UnmatchedA += len(fa) - i
	res.UnmatchedB += len(fb) - j

	res.Overall = cfg.bucket("overall", &overall)
	res.Small = cfg.bucket("small", &small)
	res.Large = cfg.bucket("large", &large)
	return res, nil
}

func (cfg ReplayCompareConfig) bucket(name string, p *stats.PairedSample) PairedBucket {
	b := PairedBucket{Name: name, Pairs: p.N()}
	if p.N() == 0 {
		return b
	}
	secs := func(v float64) time.Duration { return time.Duration(v * 1e9) }
	b.MeanA = secs(p.MeanA())
	b.MeanB = secs(p.MeanB())
	b.MeanDelta = secs(p.MeanDelta())
	lo, hi := p.MeanDeltaCI(cfg.Resamples, cfg.Confidence, cfg.Seed)
	b.DeltaLo, b.DeltaHi = secs(lo), secs(hi)
	b.MeanRatio = p.MeanRatio()
	b.RatioLo, b.RatioHi = p.MeanRatioCI(cfg.Resamples, cfg.Confidence, cfg.Seed+1)
	b.WinFraction = p.WinFraction()
	b.MedianDelta = secs(p.DeltaQuantile(0.50))
	b.P99Delta = secs(p.DeltaQuantile(0.99))
	return b
}
