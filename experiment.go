package conga

import (
	"fmt"
	"sort"
	"time"

	"conga/internal/core"
	"conga/internal/fabric"
	"conga/internal/mptcp"
	"conga/internal/replay"
	"conga/internal/sim"
	"conga/internal/stats"
	"conga/internal/tcp"
	"conga/internal/telemetry"
	"conga/internal/workload"
)

// Workload names a flow-size distribution.
type Workload int

// The paper's workloads (Figure 8 and §5.5).
const (
	WorkloadEnterprise Workload = iota
	WorkloadDataMining
	WorkloadWebSearch
)

func (w Workload) String() string {
	switch w {
	case WorkloadEnterprise:
		return "enterprise"
	case WorkloadDataMining:
		return "data-mining"
	case WorkloadWebSearch:
		return "web-search"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// SizeDist is a flow-size distribution; see the workload package for the
// built-ins and the Empirical constructor.
type SizeDist = workload.SizeDist

// Dist returns the distribution for a named workload.
func (w Workload) Dist() SizeDist {
	switch w {
	case WorkloadEnterprise:
		return workload.Enterprise()
	case WorkloadDataMining:
		return workload.DataMining()
	case WorkloadWebSearch:
		return workload.WebSearch()
	default:
		panic(fmt.Sprintf("conga: unknown workload %d", int(w)))
	}
}

// FCTConfig describes a flow-completion-time experiment (§5.2): an
// open-loop Poisson workload at a target load over a chosen topology and
// scheme.
type FCTConfig struct {
	Topology  Topology
	Scheme    Scheme
	Params    *Params // nil → paper defaults (CONGA-Flow gets its 13 ms timeout)
	Workload  Workload
	Custom    SizeDist // overrides Workload when non-nil
	Load      float64  // fraction of per-direction leaf bisection bandwidth
	Transport TransportConfig

	// Duration is the arrival window of simulated time. Flows started
	// inside it are allowed to finish afterwards, up to DrainTimeout.
	Duration     time.Duration
	DrainTimeout time.Duration
	// MaxFlows bounds the experiment (0 = unlimited).
	MaxFlows int

	Seed uint64

	// CollectImbalance samples leaf-0 uplink throughput imbalance over
	// 10 ms windows (Figure 12).
	CollectImbalance bool
	// CollectQueues samples every fabric queue (Figures 11c and 16).
	CollectQueues bool

	// Telemetry, when non-nil, enables the observability subsystem for
	// this run; the populated registry comes back in FCTResult.Telemetry
	// and flushes to Telemetry.Dir (if set) before RunFCT returns.
	// Enabling it never changes simulation outcomes.
	Telemetry *TelemetryOptions

	// SampleCap, when > 0, bounds every statistics buffer (FCT samples,
	// imbalance and queue samplers) to at most SampleCap retained
	// observations via reservoir sampling, so million-flow sweeps run at
	// fixed memory. Means, counts and extrema stay exact; quantiles and
	// CDFs become reservoir estimates. The reservoirs use their own
	// seeded PRNGs, so simulation outcomes are unaffected.
	SampleCap int

	WCMPWeights []float64

	// Record, when true, captures the exact flow-arrival sequence of this
	// run; the sealed trace comes back in FCTResult.Trace, ready for
	// Trace.Write and later replay. Recording observes arrivals as they
	// are drawn and never changes simulation outcomes.
	Record bool
	// Replay, when non-nil, re-injects this recorded arrival sequence
	// instead of drawing a live Poisson workload: Load, Workload, Custom,
	// MaxFlows and the workload seed are ignored, and Duration is taken
	// from the trace header so the run horizon matches the recording.
	// The trace must have been recorded on the same fabric shape
	// (topology fingerprints are compared; mismatches are refused), but
	// scheme, transport, link failures and buffer sizing are free to
	// differ — that is the point. Replaying into the identical
	// scheme/config reproduces the recording run bit-identically.
	Replay *replay.Trace
	// CollectFlows keeps every completed flow's (ID, size, FCT) in
	// FCTResult.FlowFCTs, sorted by flow ID — the raw material for
	// matched-pairs comparison (stats.PairedSample, RunReplayCompare).
	CollectFlows bool

	// Parallel, when > 1, runs this single experiment space-parallel: the
	// fabric is partitioned into Parallel domains (one engine and worker
	// goroutine each; see internal/fabric/partition.go) executed in bounded
	// time windows by sim.ParallelEngine. Results are deterministic for a
	// fixed Parallel value, and Parallel <= 1 keeps the exact sequential
	// code path. Parallel mode rejects the options that need a single
	// engine: CollectImbalance, CollectQueues, SampleCap, and telemetry
	// traces/taps.
	Parallel int

	// testFlowHook, when set, observes every completed flow as
	// (domain, flowID, fct) from that domain's goroutine; parallel-mode
	// determinism tests use it to capture per-flow FCT vectors. The hook
	// must be safe for concurrent calls from different domains.
	testFlowHook func(domain int, flowID uint64, fct sim.Time)
}

func (c FCTConfig) withDefaults() FCTConfig {
	c.Topology = c.Topology.withDefaults()
	if c.Duration == 0 {
		c.Duration = 40 * time.Millisecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 2 * time.Second
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Transport = c.Transport.withDefaults()
	return c
}

// CDF is a list of (value, cumulative-fraction) points.
type CDF = [][2]float64

// FlowFCT is one completed flow's identity and outcome, collected when
// FCTConfig.CollectFlows is set. Matching slices from two runs of the same
// trace pair one-to-one by ID.
type FlowFCT struct {
	ID   uint64
	Size int64
	FCT  time.Duration
}

// FCTResult carries the statistics of one experiment run.
type FCTResult struct {
	Scheme    string
	Workload  string
	Load      float64
	Generated int
	Completed int

	// AvgFCT is the mean completion time of finished flows.
	AvgFCT time.Duration
	// P99FCT is the 99th-percentile completion time.
	P99FCT time.Duration
	// NormFCT is mean(FCT)/mean(optimal FCT), the idle-network
	// normalization of Figures 9a, 10a and 11a/b (ratio of means: robust
	// to per-flow outliers).
	NormFCT float64
	// NormFCTPerFlow is the mean of per-flow FCT/optimal ratios; it is
	// tail-sensitive and reported for completeness.
	NormFCTPerFlow float64
	// SmallAvgFCT / LargeAvgFCT break the mean down by flow size
	// (< 100 KB, > 10 MB) for Figures 9b/c and 10b/c.
	SmallAvgFCT time.Duration
	LargeAvgFCT time.Duration
	SmallCount  int
	LargeCount  int

	// Drops counts packets lost anywhere in the fabric.
	Drops uint64
	// Retransmits and Timeouts aggregate sender loss recovery.
	Retransmits uint64
	Timeouts    uint64

	// ImbalanceCDF is the Figure 12 series (present when requested).
	ImbalanceCDF CDF
	// ImbalanceMean summarizes it.
	ImbalanceMean float64
	// QueueCDFs holds per-fabric-link queue occupancy CDFs by link name,
	// and HotspotQueueCDF the single most loaded link's (Figure 11c).
	QueueCDFs       map[string]CDF
	HotspotQueueCDF CDF
	// AvgQueueByLink reports each fabric link's mean queue in bytes
	// (Figure 16's per-port series).
	AvgQueueByLink map[string]float64

	// SimTime is how much virtual time ran; Events how many simulator
	// events executed (cost accounting for the bench harness).
	SimTime time.Duration
	Events  uint64
	// Wall is the real time the run cost (events/sec reporting in sweep
	// tables). It measures the environment, not the simulation:
	// determinism comparisons must zero it first.
	Wall time.Duration

	// Telemetry is the run's populated registry when FCTConfig.Telemetry
	// was set (already collected and flushed), nil otherwise.
	Telemetry *TelemetryRegistry

	// Trace is the sealed arrival recording when FCTConfig.Record was set.
	Trace *replay.Trace
	// FlowFCTs lists completed flows sorted by ID when
	// FCTConfig.CollectFlows was set.
	FlowFCTs []FlowFCT
}

// OptimalFCT returns the idle-network completion time used for
// normalization: wire-rate transmission on the access link, store-and-
// forward of one full segment on each subsequent hop, propagation both
// ways, and the final ACK's return. It deliberately excludes slow-start
// effects so the normalization is scheme-independent and monotone in size.
func OptimalFCT(t Topology, transport TransportConfig, size int64) time.Duration {
	tt := t.withDefaults()
	mss := tcp.MTUToMSS(transport.MTU)
	if mss <= 0 {
		mss = 1460
	}
	segments := (size + int64(mss) - 1) / int64(mss)
	wireBytes := size + segments*int64(fabric.HeaderOverhead)
	access := tt.AccessGbps * 1e9
	fab := tt.FabricGbps * 1e9

	// Pipeline: all bytes serialize once at the access link; the last
	// segment then stores-and-forwards across leaf→spine, spine→leaf and
	// leaf→host.
	lastSeg := size - (segments-1)*int64(mss)
	lastWire := float64(lastSeg + fabric.HeaderOverhead)
	transmit := float64(wireBytes*8)/access +
		(lastWire+float64(core.EncapOverhead))*8/fab + // leaf→spine
		(lastWire+float64(core.EncapOverhead))*8/fab + // spine→leaf
		lastWire*8/access // leaf→host

	// Propagation out (2 access + 2 fabric hops) plus the last ACK's trip
	// back (64 B over four hops plus the same propagation).
	const prop = 6e-6 // 2·2µs access + 2·1µs fabric
	ack := 64 * 8 * (2/access + 2/fab)
	return time.Duration((transmit + 2*prop + ack) * 1e9)
}

// RunFCT executes one FCT experiment. With cfg.Parallel > 1 the run is
// space-parallel across domain engines (see parallel_fct.go); otherwise it
// executes on the single sequential engine below.
func RunFCT(cfg FCTConfig) (*FCTResult, error) {
	start := time.Now()
	res, err := runFCT(cfg)
	if res != nil {
		res.Wall = time.Since(start)
	}
	return res, err
}

func runFCT(cfg FCTConfig) (*FCTResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Replay != nil && cfg.Replay.Header.DurationNs > 0 {
		// The replayed horizon is the recording's, not the caller's: an
		// arrival window shorter than the trace span would truncate it.
		cfg.Duration = time.Duration(cfg.Replay.Header.DurationNs)
	}
	if cfg.Parallel > 1 {
		return runFCTParallel(cfg)
	}
	fabScheme, transport, err := schemeForFabric(cfg.Scheme, cfg.Transport.Kind)
	if err != nil {
		return nil, err
	}
	params := DefaultParams()
	if cfg.Scheme == SchemeCONGAFlow {
		params = core.CongaFlowParams()
	}
	if cfg.Params != nil {
		params = *cfg.Params
	}

	eng := sim.New()
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = telemetry.New(*cfg.Telemetry)
	}
	net, err := cfg.Topology.build(eng, fabScheme, params, cfg.WCMPWeights, cfg.Seed, reg)
	if err != nil {
		return nil, err
	}

	dist := cfg.Custom
	if dist == nil {
		dist = cfg.Workload.Dist()
	}

	var rec *stats.FCTRecorder
	if cfg.SampleCap > 0 {
		rec = stats.NewFCTRecorder(0)
		rec.Bound(cfg.SampleCap, cfg.Seed)
	} else {
		rec = stats.NewFCTRecorder(cfg.MaxFlows)
	}
	var retx, timeouts uint64
	tcpCfg := cfg.Transport.tcpConfig()
	mpCfg := mptcp.Config{Subflows: cfg.Transport.Subflows, TCP: tcpCfg, ChunkSegments: 4}

	stride := uint64(1)
	if transport == TransportMPTCP {
		stride = uint64(cfg.Transport.Subflows)
	}

	// Per-engine object pools: flows, endpoints and MPTCP connections
	// recycle for the whole run, so the steady state of the workload loop
	// allocates nothing. The completion callbacks are created once per run
	// (not per flow) and recompute the per-flow optimal FCT from f.Size —
	// OptimalFCT is pure, so moving it from start to completion changes no
	// simulation event.
	pool := tcp.NewFlowPool()
	mpool := mptcp.NewPool()
	var flowLog []FlowFCT
	tcpDone := func(f *tcp.Flow, now sim.Time) {
		opt := sim.Duration(OptimalFCT(cfg.Topology, cfg.Transport, f.Size))
		rec.Record(f.Size, f.FCT(now), opt)
		st := f.Sender.Stats()
		retx += st.RetxSegments
		timeouts += st.Timeouts
		if cfg.CollectFlows {
			flowLog = append(flowLog, FlowFCT{ID: f.Sender.FlowID(), Size: f.Size, FCT: time.Duration(f.FCT(now))})
		}
	}
	mptcpDone := func(f *mptcp.Flow, now sim.Time) {
		opt := sim.Duration(OptimalFCT(cfg.Topology, cfg.Transport, f.Size))
		rec.Record(f.Size, f.FCT(now), opt)
		subs := f.Conn.Subflows()
		for _, s := range subs {
			st := s.Stats()
			retx += st.RetxSegments
			timeouts += st.Timeouts
		}
		if cfg.CollectFlows {
			flowLog = append(flowLog, FlowFCT{ID: subs[0].FlowID(), Size: f.Size, FCT: time.Duration(f.FCT(now))})
		}
	}
	starter := func(src, dst *fabric.Host, id uint64, size int64) {
		switch transport {
		case TransportMPTCP:
			mpool.StartFlow(eng, src, dst, id, size, mpCfg, mptcpDone)
		default:
			pool.StartFlow(eng, src, dst, id, size, tcpCfg, tcpDone)
		}
	}

	// The workload source is either a live Poisson generator or a replay
	// injector; both schedule one engine event per arrival whose body
	// starts the flow and then schedules the next arrival, so a replayed
	// run creates events in the identical order its recording did.
	var traceRec *replay.Recorder
	if cfg.Record {
		traceRec = &replay.Recorder{Header: cfg.traceHeader(dist.Name())}
	}
	var startSource func()
	var generated func() int
	if cfg.Replay != nil {
		if err := cfg.checkReplay(); err != nil {
			return nil, err
		}
		var obs func(replay.Flow)
		if traceRec != nil {
			// Re-recording a replay preserves the original workload
			// provenance; only scheme/seed describe the current run.
			traceRec.Header.Workload = cfg.Replay.Header.Workload
			traceRec.Header.Load = cfg.Replay.Header.Load
			obs = func(f replay.Flow) { traceRec.Add(f) }
		}
		inj := newReplayInjector(eng, net, cfg.Replay.Flows, starter, obs)
		startSource = inj.Start
		generated = func() int { return inj.Generated }
	} else {
		var observe func(workload.Arrival)
		if traceRec != nil {
			observe = func(a workload.Arrival) {
				traceRec.Add(replay.Flow{At: a.At, Src: a.Src, Dst: a.Dst, FlowID: a.FlowID, Size: a.Size, Kind: replay.KindWorkload})
			}
		}
		gen, err := workload.NewGenerator(eng, net, workload.GenConfig{
			Load:          cfg.Load,
			Dist:          dist,
			Duration:      sim.Duration(cfg.Duration),
			MaxFlows:      cfg.MaxFlows,
			InterLeafOnly: true,
			Stride:        stride,
			Seed:          cfg.Seed,
			Observe:       observe,
		}, starter)
		if err != nil {
			return nil, err
		}
		startSource = gen.Start
		generated = func() int { return gen.Generated }
	}

	// The samplers tick at fixed periods over a known horizon, so their
	// buffers can be sized exactly instead of growing during the run —
	// or bounded by SampleCap reservoirs when the caller asked for fixed
	// memory.
	horizon := sim.Duration(cfg.Duration) + sim.Duration(cfg.DrainTimeout)
	var imb *stats.ImbalanceSampler
	if cfg.CollectImbalance {
		imb = stats.NewImbalanceSampler(net.Leaves[0].Uplinks(), 10*sim.Millisecond)
		if cfg.SampleCap > 0 {
			imb.Values.Reservoir(cfg.SampleCap, cfg.Seed+101)
		} else {
			imb.Values.Reserve(int(horizon / (10 * sim.Millisecond)))
		}
		imb.Start(eng)
	}
	var qs *stats.QueueSampler
	if cfg.CollectQueues {
		qs = stats.NewQueueSampler(net.FabricLinks(), 100*sim.Microsecond)
		if cfg.SampleCap > 0 {
			qs.All.Reservoir(cfg.SampleCap, cfg.Seed+201)
			for i := range qs.PerLink {
				qs.PerLink[i].Reservoir(cfg.SampleCap, cfg.Seed+202+uint64(i))
			}
		} else {
			samples := int(horizon / (100 * sim.Microsecond))
			qs.All.Reserve(samples * len(net.FabricLinks()))
			for i := range qs.PerLink {
				qs.PerLink[i].Reserve(samples)
			}
		}
		qs.Start(eng)
	}

	// The streaming tap surfaces run progress in its snapshots; the
	// closure runs on the engine goroutine at publish safe points, so the
	// plain reads need no synchronization.
	reg.SetProgress(func() telemetry.Progress {
		return telemetry.Progress{
			FlowsGenerated: generated(),
			FlowsCompleted: rec.Flows,
			Events:         eng.Executed(),
		}
	})

	startSource()
	eng.Run(sim.Duration(cfg.Duration) + sim.Duration(cfg.DrainTimeout))

	res := &FCTResult{
		Scheme:         SchemeName(cfg.Scheme),
		Workload:       dist.Name(),
		Load:           cfg.Load,
		Generated:      generated(),
		Completed:      rec.Flows,
		AvgFCT:         time.Duration(rec.Overall.Mean() * 1e9),
		P99FCT:         time.Duration(rec.Overall.Quantile(0.99) * 1e9),
		NormFCT:        rec.NormOfMeans(),
		NormFCTPerFlow: rec.OverallNorm.Mean(),
		SmallAvgFCT:    time.Duration(rec.Small.Mean() * 1e9),
		LargeAvgFCT:    time.Duration(rec.Large.Mean() * 1e9),
		SmallCount:     rec.Small.N(),
		LargeCount:     rec.Large.N(),
		Drops:          net.TotalDrops(),
		Retransmits:    retx,
		Timeouts:       timeouts,
		SimTime:        time.Duration(eng.Now()),
		Events:         eng.Executed(),
	}
	if reg != nil {
		// Stamp trace ancestry into the sink headers: flushed telemetry
		// from a replayed (or recording) run names the workload behind it.
		if cfg.Replay != nil {
			reg.SetProvenance(traceProvenance("replay", cfg.Replay.Header))
		} else if traceRec != nil {
			reg.SetProvenance(traceProvenance("record", traceRec.Trace().Header))
		}
		reg.Collect()
		reg.FinishTap(eng.Now())
		if err := reg.Flush(); err != nil {
			return nil, fmt.Errorf("conga: telemetry flush: %w", err)
		}
		reg.ArchiveToHub()
		res.Telemetry = reg
	}
	if traceRec != nil {
		res.Trace = traceRec.Trace()
	}
	if cfg.CollectFlows {
		sort.Slice(flowLog, func(i, j int) bool { return flowLog[i].ID < flowLog[j].ID })
		res.FlowFCTs = flowLog
	}
	if imb != nil {
		res.ImbalanceCDF = imb.Values.CDF()
		res.ImbalanceMean = imb.Values.Mean()
	}
	if qs != nil {
		res.QueueCDFs = make(map[string]CDF, len(net.FabricLinks()))
		res.AvgQueueByLink = make(map[string]float64, len(net.FabricLinks()))
		hotIdx, hotMean := -1, -1.0
		for i, l := range net.FabricLinks() {
			res.QueueCDFs[l.Name] = qs.PerLink[i].CDF()
			m := qs.PerLink[i].Mean()
			res.AvgQueueByLink[l.Name] = m
			if m > hotMean {
				hotMean, hotIdx = m, i
			}
		}
		if hotIdx >= 0 {
			res.HotspotQueueCDF = qs.PerLink[hotIdx].CDF()
		}
	}
	return res, nil
}
