package conga

import (
	"testing"
	"time"
)

// quickTopo is a scaled-down testbed for fast integration tests: fewer
// hosts and 1/10 link speeds keep event counts low while preserving the
// 2:1 oversubscription and all mechanisms.
func quickTopo() Topology {
	return Topology{
		Leaves: 2, Spines: 2, HostsPerLeaf: 8, LinksPerSpine: 2,
		AccessGbps: 1, FabricGbps: 4,
	}
}

func quickFCT(scheme Scheme, w Workload, load float64) FCTConfig {
	return FCTConfig{
		Topology: quickTopo(),
		Scheme:   scheme,
		Workload: w,
		Load:     load,
		Duration: 30 * time.Millisecond,
		MaxFlows: 400,
		Transport: TransportConfig{
			MinRTO: 10 * time.Millisecond,
		},
		Seed: 42,
	}
}

func TestRunFCTBasics(t *testing.T) {
	res, err := RunFCT(quickFCT(SchemeCONGA, WorkloadEnterprise, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no flows completed")
	}
	if float64(res.Completed) < 0.9*float64(res.Generated) {
		t.Fatalf("only %d/%d flows completed", res.Completed, res.Generated)
	}
	if res.AvgFCT <= 0 || res.NormFCT < 1 {
		t.Fatalf("nonsense FCT stats: avg=%v norm=%v", res.AvgFCT, res.NormFCT)
	}
	if res.Scheme != "conga" || res.Workload != "enterprise" {
		t.Fatalf("labels wrong: %q %q", res.Scheme, res.Workload)
	}
}

func TestRunFCTAllSchemesComplete(t *testing.T) {
	for _, s := range []Scheme{SchemeECMP, SchemeCONGA, SchemeCONGAFlow, SchemeLocal, SchemeSpray, SchemeMPTCPMarker} {
		cfg := quickFCT(s, WorkloadEnterprise, 0.3)
		cfg.MaxFlows = 120
		res, err := RunFCT(cfg)
		if err != nil {
			t.Fatalf("%s: %v", SchemeName(s), err)
		}
		if res.Completed < res.Generated*8/10 {
			t.Fatalf("%s: %d/%d flows completed", SchemeName(s), res.Completed, res.Generated)
		}
	}
}

func TestRunFCTDeterministic(t *testing.T) {
	a, err := RunFCT(quickFCT(SchemeCONGA, WorkloadDataMining, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFCT(quickFCT(SchemeCONGA, WorkloadDataMining, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgFCT != b.AvgFCT || a.Completed != b.Completed || a.Drops != b.Drops {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestRunFCTSeedChangesOutcome(t *testing.T) {
	cfg := quickFCT(SchemeECMP, WorkloadEnterprise, 0.5)
	a, _ := RunFCT(cfg)
	cfg.Seed = 99
	b, _ := RunFCT(cfg)
	if a.AvgFCT == b.AvgFCT && a.Generated == b.Generated {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestLinkFailureCONGABeatsECMP is the paper's headline result (§5.2.2,
// Figure 11) in miniature: with one fabric link down and load past the
// point where ECMP's static split saturates the surviving link, CONGA's
// congestion-aware split must deliver much better FCTs.
func TestLinkFailureCONGABeatsECMP(t *testing.T) {
	base := quickTopo()
	base.FailedLinks = [][3]int{{1, 1, 1}} // one of leaf1-spine1's two links
	run := func(s Scheme) *FCTResult {
		cfg := quickFCT(s, WorkloadEnterprise, 0.60)
		cfg.Topology = base
		cfg.Duration = 40 * time.Millisecond
		cfg.MaxFlows = 600
		res, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ecmp := run(SchemeECMP)
	conga := run(SchemeCONGA)
	if conga.Completed < ecmp.Completed {
		t.Fatalf("CONGA completed fewer flows (%d) than ECMP (%d)", conga.Completed, ecmp.Completed)
	}
	if conga.NormFCT >= ecmp.NormFCT {
		t.Fatalf("CONGA norm FCT %.2f not better than ECMP %.2f under failure",
			conga.NormFCT, ecmp.NormFCT)
	}
}

func TestRunFCTCollectors(t *testing.T) {
	cfg := quickFCT(SchemeECMP, WorkloadEnterprise, 0.5)
	cfg.CollectImbalance = true
	cfg.CollectQueues = true
	res, err := RunFCT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ImbalanceCDF) == 0 {
		t.Fatal("imbalance CDF empty")
	}
	if len(res.QueueCDFs) != 16 { // 2 leaves × 2 spines × 2 links × 2 dirs
		t.Fatalf("%d queue CDFs, want 16", len(res.QueueCDFs))
	}
	if res.HotspotQueueCDF == nil {
		t.Fatal("no hotspot queue CDF")
	}
}

// TestImbalanceOrdering reproduces Figure 12's ordering: CONGA balances
// leaf uplinks better than ECMP (lower throughput imbalance).
func TestImbalanceOrdering(t *testing.T) {
	run := func(s Scheme) float64 {
		cfg := quickFCT(s, WorkloadDataMining, 0.6)
		cfg.CollectImbalance = true
		cfg.Duration = 60 * time.Millisecond
		cfg.MaxFlows = 800
		res, err := RunFCT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ImbalanceCDF == nil {
			t.Fatal("no imbalance data")
		}
		return res.ImbalanceMean
	}
	ecmp := run(SchemeECMP)
	conga := run(SchemeCONGA)
	if conga >= ecmp {
		t.Fatalf("CONGA imbalance %.3f not lower than ECMP %.3f", conga, ecmp)
	}
}

func TestOptimalFCTMonotone(t *testing.T) {
	tr := TransportConfig{}.withDefaults()
	prev := time.Duration(0)
	for _, size := range []int64{1, 1000, 100 << 10, 1 << 20, 100 << 20} {
		o := OptimalFCT(Topology{}, tr, size)
		if o <= prev {
			t.Fatalf("OptimalFCT not increasing at %d: %v ≤ %v", size, o, prev)
		}
		prev = o
	}
	// A 10 MB flow at 10 Gbps is ≥ 8 ms.
	if o := OptimalFCT(Topology{}, tr, 10<<20); o < 8*time.Millisecond {
		t.Fatalf("OptimalFCT(10MB) = %v, want ≥ 8ms", o)
	}
}

func TestRunIncastTCPHealthyAtModerateFanout(t *testing.T) {
	res, err := RunIncast(IncastConfig{
		Topology:     quickTopo(),
		Scheme:       SchemeCONGA,
		Transport:    TransportConfig{MinRTO: time.Millisecond},
		Fanout:       8,
		RequestBytes: 2 << 20,
		Rounds:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedRounds != 3 {
		t.Fatalf("completed %d rounds, want 3", res.CompletedRounds)
	}
	if res.GoodputFraction < 0.5 {
		t.Fatalf("TCP incast goodput %.2f at fanout 8, want ≥ 0.5", res.GoodputFraction)
	}
}

// TestIncastMPTCPWorseThanTCP checks Figure 13's core claim: at high
// fan-in, MPTCP's 8× subflows overflow the client port and TCP+CONGA
// sustains higher goodput.
func TestIncastMPTCPWorseThanTCP(t *testing.T) {
	run := func(kind Transport) float64 {
		topo := quickTopo()
		// Pressure regime of the paper's testbed: at fanout 14 the
		// client port buffer absorbs TCP's synchronized burst but not
		// MPTCP's 8×-subflow version of it.
		topo.EdgeBufBytes = 1 << 20
		res, err := RunIncast(IncastConfig{
			Topology:     topo,
			Scheme:       SchemeCONGA,
			Transport:    TransportConfig{Kind: kind, MinRTO: 200 * time.Millisecond},
			Fanout:       14,
			RequestBytes: 4 << 20,
			Rounds:       3,
			Timeout:      60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GoodputFraction
	}
	tcpG := run(TransportTCP)
	mptcpG := run(TransportMPTCP)
	if mptcpG >= tcpG {
		t.Fatalf("MPTCP goodput %.2f not worse than TCP %.2f in incast", mptcpG, tcpG)
	}
}

func TestRunIncastRejectsExcessFanout(t *testing.T) {
	_, err := RunIncast(IncastConfig{Topology: quickTopo(), Fanout: 16})
	if err == nil {
		t.Fatal("fanout = host count accepted")
	}
}

func TestFigure2Shapes(t *testing.T) {
	ecmp, err := RunFigure2(SchemeECMP, 1)
	if err != nil {
		t.Fatal(err)
	}
	conga, err := RunFigure2(SchemeCONGA, 1)
	if err != nil {
		t.Fatal(err)
	}
	// CONGA must deliver close to the 15 Gbps capacity and clearly more
	// than ECMP's static split.
	if conga.TotalGbps < 14 {
		t.Fatalf("CONGA total %.2f Gbps, want ≈ 15", conga.TotalGbps)
	}
	if conga.TotalGbps < ecmp.TotalGbps*1.1 {
		t.Fatalf("CONGA %.2f not ≥ 10%% better than ECMP %.2f", conga.TotalGbps, ecmp.TotalGbps)
	}
	// And the split through the spines must approach 2:1.
	ratio := conga.SpineGbps[0] / conga.SpineGbps[1]
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("CONGA spine split %.2f:1, want ≈ 2:1", ratio)
	}
}

func TestFigure3TrafficMatrixSensitivity(t *testing.T) {
	// Without L0 traffic, CONGA spreads L1→L2 over both spines; with L0
	// traffic on the shared S0→L2 link, CONGA shifts L1's share toward
	// S1. Static weights cannot do both (§2.4).
	quiet, err := RunFigure3(SchemeCONGA, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := RunFigure3(SchemeCONGA, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	quietS0 := quiet.LeafUplinkGbps[1][0]
	busyS0 := busy.LeafUplinkGbps[1][0]
	if busyS0 >= quietS0 {
		t.Fatalf("L1's spine-0 share did not shrink under L0 pressure: %.2f → %.2f", quietS0, busyS0)
	}
}

func TestSchemeNameIncludesMPTCP(t *testing.T) {
	if SchemeName(SchemeMPTCPMarker) != "mptcp" || SchemeName(SchemeCONGA) != "conga" {
		t.Fatal("scheme naming broken")
	}
}

func TestWorkloadDistNames(t *testing.T) {
	for _, w := range []Workload{WorkloadEnterprise, WorkloadDataMining, WorkloadWebSearch} {
		if w.Dist().Name() != w.String() {
			t.Fatalf("workload %v and dist %q disagree", w, w.Dist().Name())
		}
	}
}
